package sfcp

import (
	"io"

	"sfcp/internal/codec"
)

// BinaryMediaType is the MIME type under which sfcpd accepts instances in
// the binary wire format (see internal/codec for the layout).
const BinaryMediaType = "application/x-sfcp"

// EncodeBinary writes the instance to w in the sfcp binary wire format: a
// versioned little-endian header, varint-packed F and B, and an XXH64
// digest trailer, streamed through fixed-size chunks. The encoding is
// canonical — equal instances produce identical bytes.
func (ins Instance) EncodeBinary(w io.Writer) error {
	return codec.Encode(w, ins.F, ins.B)
}

// DecodeBinary reads one binary wire-format instance from r. The decoder
// works in fixed-size chunks, so peak extra memory beyond the returned
// arrays is O(chunk); corruption and truncation are reported as errors
// (the digest trailer is verified). A clean end of stream returns io.EOF.
func DecodeBinary(r io.Reader) (Instance, error) {
	f, b, err := codec.Decode(r)
	if err != nil {
		return Instance{}, err
	}
	return Instance{F: f, B: b}, nil
}

// DetectBinary reports whether prefix (4 bytes of lookahead suffice)
// starts an sfcp binary stream rather than the whitespace text format.
func DetectBinary(prefix []byte) bool { return codec.Detect(prefix) }

// EncodeLabelsBinary writes a solve result's dense Q-labels to w as a
// labels-only wire stream: the same chunked, digest-trailed framing as an
// instance, with a flags bit marking the single-array payload. It is the
// format sfcpd's GET /jobs/{id}/result serves under application/x-sfcp.
func EncodeLabelsBinary(w io.Writer, labels []int) error {
	return codec.EncodeLabels(w, labels)
}

// DecodeLabelsBinary reads one labels-only wire stream from r. Instance
// streams are rejected (the flags byte distinguishes the two kinds); a
// clean end of stream returns io.EOF.
func DecodeLabelsBinary(r io.Reader) ([]int, error) {
	return codec.DecodeLabels(r)
}

// DeltaBinaryMediaType is the MIME type under which sfcpd accepts deltas
// in the binary wire format on POST /instances/{digest}/delta.
const DeltaBinaryMediaType = "application/x-sfcp-delta"

// EncodeDeltaBinary writes a delta to w as a binary wire stream: the
// same chunked, digest-trailed framing as an instance, with a flags byte
// marking the edit-list payload (per edit: node, an F/B presence byte,
// and the present new values as varints).
func EncodeDeltaBinary(w io.Writer, delta Delta) error {
	edits := make([]codec.DeltaEdit, len(delta.Edits))
	for i, e := range delta.Edits {
		de := codec.DeltaEdit{Node: e.Node}
		if e.F != nil {
			de.SetF, de.F = true, *e.F
		}
		if e.B != nil {
			de.SetB, de.B = true, *e.B
		}
		edits[i] = de
	}
	return codec.EncodeDelta(w, edits)
}

// DecodeDeltaBinary reads one binary wire-format delta from r. Instance
// and labels streams are rejected by their flags; a clean end of stream
// returns io.EOF.
func DecodeDeltaBinary(r io.Reader) (Delta, error) {
	wireEdits, err := codec.DecodeDelta(r)
	if err != nil {
		return Delta{}, err
	}
	delta := Delta{Edits: make([]Edit, len(wireEdits))}
	for i, de := range wireEdits {
		e := Edit{Node: de.Node}
		if de.SetF {
			f := de.F
			e.F = &f
		}
		if de.SetB {
			b := de.B
			e.B = &b
		}
		delta.Edits[i] = e
	}
	return delta, nil
}

// BinaryDecoder streams instances out of a binary wire-format stream. Its
// chunked reads buffer ahead, so it — not repeated DecodeBinary calls on
// the same reader — is the way to drain concatenated instances:
//
//	dec := sfcp.NewBinaryDecoder(r)
//	for {
//		ins, err := dec.Decode()
//		if err == io.EOF {
//			break
//		}
//		...
//	}
type BinaryDecoder struct {
	r *codec.Reader
}

// NewBinaryDecoder returns a decoder reading wire-format instances from r.
func NewBinaryDecoder(r io.Reader) *BinaryDecoder {
	return &BinaryDecoder{r: codec.NewReader(r)}
}

// Decode reads the next instance; a clean end of stream returns io.EOF.
func (d *BinaryDecoder) Decode() (Instance, error) {
	f, b, err := d.r.Decode()
	if err != nil {
		return Instance{}, err
	}
	return Instance{F: f, B: b}, nil
}

// Digest returns the hex wire digest of the most recently decoded
// instance, a content address suitable as a cache key.
func (d *BinaryDecoder) Digest() string { return d.r.Digest() }
