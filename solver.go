package sfcp

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sfcp/internal/coarsest"
	"sfcp/internal/engine"
	"sfcp/internal/par"
)

// Algorithms lists every solver in declaration order — the canonical
// enumeration for CLIs, servers and tests.
func Algorithms() []Algorithm {
	return engine.Algorithms()
}

// ParseAlgorithm maps a name (as printed by Algorithm.String) back to its
// Algorithm value.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("sfcp: unknown algorithm %q (want one of %s)", name, algorithmNames())
}

func algorithmNames() string {
	s := ""
	for i, a := range Algorithms() {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s
}

// Digest returns a stable hex-encoded SHA-256 content address of the
// instance, suitable as a cache key: two instances share a digest iff they
// have identical F and B. Lengths are folded in, so (F, B) boundaries are
// unambiguous.
func (ins Instance) Digest() string {
	// The hash state sees exactly the byte stream of the original
	// one-Write-per-int implementation; batching ~4KiB per h.Write only
	// amortizes the hasher's per-call overhead, which otherwise dominates
	// content-addressing 10^8-element instances on the cache hot path.
	h := sha256.New()
	var buf [4096]byte
	n := 0
	writeInt := func(v int) {
		if n == len(buf) {
			h.Write(buf[:])
			n = 0
		}
		binary.LittleEndian.PutUint64(buf[n:], uint64(v))
		n += 8
	}
	writeInt(len(ins.F))
	for _, v := range ins.F {
		writeInt(v)
	}
	writeInt(len(ins.B))
	for _, v := range ins.B {
		writeInt(v)
	}
	h.Write(buf[:n])
	return hex.EncodeToString(h.Sum(nil))
}

// Solver is a reusable solving engine. Unlike the one-shot SolveWith it
// amortizes allocations across calls (the native-parallel working set is
// recycled through a per-worker scratch arena) and runs batch members
// concurrently under a bounded parallelism budget. A Solver is safe for
// concurrent use by multiple goroutines.
type Solver struct {
	opts    Options
	sem     chan struct{} // bounds in-flight batch members across all calls
	scratch sync.Pool     // *coarsest.Scratch, reused by native-parallel solves
}

// NewSolver returns a Solver that applies opts to every Solve and
// SolveBatch call. opts.Parallelism bounds how many batch members run at
// once (0 = NumCPU).
func NewSolver(opts Options) *Solver {
	p := par.Workers(opts.Parallelism)
	return &Solver{
		opts: opts,
		sem:  make(chan struct{}, p),
		scratch: sync.Pool{New: func() any {
			return new(coarsest.Scratch)
		}},
	}
}

// Options returns the options the solver was built with.
func (s *Solver) Options() Options { return s.opts }

// Solve computes the coarsest partition of one instance.
func (s *Solver) Solve(ins Instance) (Result, error) {
	return s.SolveContext(context.Background(), ins)
}

// SolveContext is Solve with cooperative cancellation: the parallel solvers
// poll ctx between refinement rounds (native-parallel) or simulated PRAM
// steps and return ctx.Err() within one round of a cancellation; the
// sequential solvers check ctx only on entry. A cancelled solve leaves the
// solver (and its scratch arenas) fully reusable.
func (s *Solver) SolveContext(ctx context.Context, ins Instance) (Result, error) {
	in := coarsest.Instance{F: ins.F, B: ins.B}
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	return s.solveValidated(ctx, in, s.opts.Workers)
}

func (s *Solver) solveValidated(ctx context.Context, in coarsest.Instance, workers int) (Result, error) {
	opts := s.opts
	opts.Workers = workers
	sc := s.scratch.Get().(*coarsest.Scratch)
	res, err := solveValidated(ctx, in, opts, sc)
	s.scratch.Put(sc)
	return res, err
}

// Plan resolves the execution plan the solver would use for ins without
// solving it (see PlanWith).
func (s *Solver) Plan(ins Instance) (Plan, error) {
	return PlanWith(ins, s.opts)
}

// SolvePlanned executes a previously resolved plan with the solver's seed
// and scratch arenas, without re-planning (see the package-level
// SolvePlanned).
func (s *Solver) SolvePlanned(ctx context.Context, ins Instance, plan Plan) (Result, error) {
	in := coarsest.Instance{F: ins.F, B: ins.B}
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	sc := s.scratch.Get().(*coarsest.Scratch)
	res, err := executePlan(ctx, in, plan, s.opts.Seed, sc)
	s.scratch.Put(sc)
	return res, err
}

// SolveBatchPlanned executes one previously resolved batch plan (see
// PlanBatch) over every instance, sequentially on the calling goroutine
// under a single shared scratch arena — the execution half of the
// coalescing fast path: N tiny solves pay one plan, one scratch
// checkout, and near-zero per-member allocation. Under a linear plan the
// valid members run back-to-back through coarsest.LinearSequentialBatch
// (one arena, one label slab for the whole batch); each member's
// Result.Timings.Solve then reports its size-proportional share of the
// batch pass. Results and errors are positional; an invalid member fails
// alone (its siblings still solve) and a nil error at position i means
// instances[i] solved.
func (s *Solver) SolveBatchPlanned(ctx context.Context, instances []Instance, plan Plan) ([]Result, []error) {
	results := make([]Result, len(instances))
	errs := make([]error, len(instances))
	sc := s.scratch.Get().(*coarsest.Scratch)
	defer s.scratch.Put(sc)
	totalN := 0
	for i, ins := range instances {
		in := coarsest.Instance{F: ins.F, B: ins.B}
		if err := in.Validate(); err != nil {
			errs[i] = err
			continue
		}
		totalN += len(ins.F)
	}
	if plan.Algorithm == AlgorithmLinear {
		if err := ctx.Err(); err != nil {
			for i := range errs {
				if errs[i] == nil {
					errs[i] = err
				}
			}
			return results, errs
		}
		// The valid-member staging slice is recycled across batches: on
		// the coalescing hot path a flush arrives every few hundred
		// microseconds and this is its only per-flush scratch besides the
		// label slab the members keep.
		mp, _ := batchMembersPool.Get().(*[]coarsest.Instance)
		if mp == nil {
			mp = new([]coarsest.Instance)
		}
		members := (*mp)[:0]
		for i, ins := range instances {
			if errs[i] == nil {
				members = append(members, coarsest.Instance{F: ins.F, B: ins.B})
			}
		}
		start := time.Now()
		labels, classes := coarsest.LinearSequentialBatch(members, sc)
		elapsed := time.Since(start)
		j := 0
		for i := range instances {
			if errs[i] != nil {
				continue
			}
			share := elapsed
			if totalN > 0 {
				share = elapsed * time.Duration(len(members[j].F)) / time.Duration(totalN)
			}
			results[i] = Result{
				Labels:     labels[j],
				NumClasses: classes[j],
				Plan:       &plan,
				Timings:    Timings{Solve: share},
			}
			j++
		}
		clear(members)
		*mp = members[:0]
		batchMembersPool.Put(mp)
		return results, errs
	}
	for i, ins := range instances {
		if errs[i] != nil {
			continue
		}
		results[i], errs[i] = executePlan(ctx, coarsest.Instance{F: ins.F, B: ins.B}, plan, s.opts.Seed, sc)
	}
	return results, errs
}

// batchMembersPool recycles SolveBatchPlanned's valid-member staging
// slices (they never escape: LinearSequentialBatch reads them and the
// returned labels live in their own slab).
var batchMembersPool sync.Pool

// SolveReader decodes one binary wire-format instance from r (see
// internal/codec) and solves it with the solver's algorithm. The decode is
// streamed in fixed-size chunks, so arbitrarily large instances cost no
// peak memory beyond their own arrays; an empty stream returns io.EOF.
// The chunked decode reads ahead, so bytes after the first instance may be
// consumed — to solve a stream of concatenated instances, drain a single
// NewBinaryDecoder and pass each Instance to Solve.
func (s *Solver) SolveReader(r io.Reader) (Result, error) {
	ins, err := DecodeBinary(r)
	if err != nil {
		return Result{}, err
	}
	return s.Solve(ins)
}

// SolveBatch solves every instance with the solver's algorithm, running up
// to Parallelism members concurrently. The host-worker budget (Workers) is
// split across concurrent members so a batch never oversubscribes the
// machine beyond a single wide solve. Results are positional.
//
// An invalid member no longer aborts its siblings: every valid instance is
// solved, failed positions hold the zero Result, and the returned error
// joins the per-member failures (each prefixed "instance %d:"), so
// errors.Is still matches the underlying causes. A nil error means every
// member solved.
func (s *Solver) SolveBatch(instances []Instance) ([]Result, error) {
	return s.SolveBatchContext(context.Background(), instances)
}

// SolveBatchContext is SolveBatch with cooperative cancellation, applied
// both while members wait for a concurrency slot and inside each parallel
// solve (see SolveContext). Members skipped by cancellation report
// ctx.Err() at their position.
func (s *Solver) SolveBatchContext(ctx context.Context, instances []Instance) ([]Result, error) {
	validated := make([]coarsest.Instance, len(instances))
	errs := make([]error, len(instances))
	for i, ins := range instances {
		validated[i] = coarsest.Instance{F: ins.F, B: ins.B}
		errs[i] = validated[i].Validate()
	}
	results := make([]Result, len(instances))

	// Split the worker budget over the members that can run at once.
	inflight := cap(s.sem)
	if len(instances) < inflight {
		inflight = len(instances)
	}
	perMember := 0
	if inflight > 0 {
		perMember = par.Workers(s.opts.Workers) / inflight
		if perMember < 1 {
			perMember = 1
		}
	}

	var wg sync.WaitGroup
	for i := range instances {
		if errs[i] != nil {
			continue
		}
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			errs[i] = ctx.Err()
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer func() {
				<-s.sem
				wg.Done()
			}()
			results[i], errs[i] = s.solveValidated(ctx, validated[i], perMember)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("instance %d: %w", i, err)
		}
	}
	return results, errors.Join(errs...)
}
