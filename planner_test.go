package sfcp

import (
	"reflect"
	"testing"

	"sfcp/internal/workload"
)

// TestResultCarriesPlan: every solve reports the resolved plan and stage
// timings, and AlgorithmAuto never leaks through unresolved.
func TestResultCarriesPlan(t *testing.T) {
	wl := workload.RandomFunction(3, 2000, 3)
	ins := Instance{F: wl.F, B: wl.B}
	res, err := SolveWith(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil {
		t.Fatal("Result.Plan is nil")
	}
	if res.Plan.Algorithm == AlgorithmAuto {
		t.Error("plan not resolved past auto")
	}
	if res.Plan.Reason == "" || !res.Plan.Features.Probed {
		t.Errorf("auto plan missing reason or probe features: %+v", res.Plan)
	}
	if res.Timings.Solve <= 0 {
		t.Errorf("missing solve timing: %+v", res.Timings)
	}

	// An explicit request resolves to itself, without probing.
	res, err = SolveWith(ins, Options{Algorithm: AlgorithmHopcroft})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Plan.Algorithm != AlgorithmHopcroft || res.Plan.Features.Probed {
		t.Errorf("explicit plan = %+v", res.Plan)
	}
}

// TestPlanWithMatchesSolve: the standalone planner returns exactly the
// plan a solve of the same (instance, options) executes, deterministically.
func TestPlanWithMatchesSolve(t *testing.T) {
	wl := workload.RandomPermutation(5, 3000, 3)
	ins := Instance{F: wl.F, B: wl.B}
	opts := Options{Workers: 2}

	plan, err := PlanWith(ins, opts)
	if err != nil {
		t.Fatal(err)
	}
	again, err := PlanWith(ins, opts)
	if err != nil || !reflect.DeepEqual(plan, again) {
		t.Fatalf("PlanWith not deterministic: %+v vs %+v (%v)", plan, again, err)
	}

	res, err := SolveWith(ins, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res.Plan, plan) {
		t.Errorf("solve executed plan %+v, PlanWith promised %+v", *res.Plan, plan)
	}

	s := NewSolver(opts)
	splan, err := s.Plan(ins)
	if err != nil || !reflect.DeepEqual(splan, plan) {
		t.Errorf("Solver.Plan = %+v, want %+v (%v)", splan, plan, err)
	}
	sres, err := s.Solve(ins)
	if err != nil {
		t.Fatal(err)
	}
	if sres.Plan == nil || !reflect.DeepEqual(*sres.Plan, plan) {
		t.Errorf("Solver result plan = %+v, want %+v", sres.Plan, plan)
	}

	if _, err := PlanWith(Instance{F: []int{5}, B: []int{0}}, Options{}); err == nil {
		t.Error("PlanWith accepted an invalid instance")
	}
}
