package workload

import (
	"testing"

	"sfcp/internal/circ"
	"sfcp/internal/coarsest"
)

func checkInstance(t *testing.T, name string, ins Instance, wantN int) {
	t.Helper()
	ci := coarsest.Instance{F: ins.F, B: ins.B}
	if len(ins.F) != wantN {
		t.Fatalf("%s: n = %d, want %d", name, len(ins.F), wantN)
	}
	if err := ci.Validate(); err != nil {
		t.Fatalf("%s: invalid instance: %v", name, err)
	}
}

func TestGeneratorsProduceValidInstances(t *testing.T) {
	checkInstance(t, "random", RandomFunction(1, 100, 3), 100)
	checkInstance(t, "perm", RandomPermutation(2, 64, 2), 64)
	checkInstance(t, "cyclefam", CycleFamily(3, 5, 12, 4), 60)
	checkInstance(t, "distinct", DistinctCycles(4, 7, 8, 3), 56)
	checkInstance(t, "broom", Broom(5, 200, 10, 4), 200)
	checkInstance(t, "star", Star(6, 50, 3), 50)
	checkInstance(t, "dfa", UnaryDFA(7, 80, 300), 80)
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RandomFunction(42, 50, 3)
	b := RandomFunction(42, 50, 3)
	for i := range a.F {
		if a.F[i] != b.F[i] || a.B[i] != b.B[i] {
			t.Fatal("RandomFunction not deterministic")
		}
	}
	c := RandomFunction(43, 50, 3)
	same := true
	for i := range a.F {
		if a.F[i] != c.F[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical instances")
	}
}

func TestPermutationIsBijective(t *testing.T) {
	ins := RandomPermutation(9, 128, 2)
	seen := make([]bool, 128)
	for _, v := range ins.F {
		if seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
}

func TestCycleFamilyAllEquivalent(t *testing.T) {
	// All cycles share a rotated pattern, so the coarsest partition has at
	// most `period` classes.
	ins := CycleFamily(11, 8, 12, 4)
	labels := coarsest.Moore(coarsest.Instance{F: ins.F, B: ins.B})
	if got := coarsest.NumClasses(labels); got > 4 {
		t.Fatalf("cycle family has %d classes, want <= 4", got)
	}
}

func TestBroomStructure(t *testing.T) {
	ins := Broom(12, 500, 16, 4)
	// Exactly the 16 cycle nodes must lie on cycles.
	state := coarsest.Instance{F: ins.F, B: ins.B}
	labels := coarsest.LinearSequential(state)
	_ = labels // structure validated by Validate + solver agreement below
	if !coarsest.SamePartition(coarsest.Moore(state), labels) {
		t.Fatal("solvers disagree on broom")
	}
}

func TestCircularStrings(t *testing.T) {
	s := CircularString(13, 100, 4)
	if len(s) != 100 {
		t.Fatal("bad length")
	}
	p := PeriodicCircularString(14, 96, 8, 3)
	if got := circ.SmallestRepeatingPrefix(p); got > 8 {
		t.Fatalf("periodic string has period %d, want <= 8", got)
	}
	r := RunHeavyCircularString(15, 200)
	if len(r) != 200 {
		t.Fatal("bad run-heavy length")
	}
}

func TestStringList(t *testing.T) {
	strs := StringList(16, 20, 400, 5)
	if len(strs) != 20 {
		t.Fatalf("m = %d", len(strs))
	}
	total := 0
	for _, s := range strs {
		if len(s) == 0 {
			t.Fatal("empty string generated")
		}
		total += len(s)
	}
	if total < 200 || total > 800 {
		t.Fatalf("total symbols %d far from requested 400", total)
	}
}
