// Package workload generates the input families used by the experiments in
// EXPERIMENTS.md: random functions (the generic case, whose pseudo-forests
// have ~sqrt(n) cycle nodes hanging with shallow trees), permutations (pure
// cycles), structured cycle families, deep brooms, stars, unary DFAs, and
// circular strings / string lists for the Section 3.1 subproblems. All
// generators are deterministic given the seed.
package workload

import (
	"math/rand"
)

// Instance mirrors coarsest.Instance without importing it (keeps the
// package usable from benchmarks of any layer).
type Instance struct {
	F []int
	B []int
}

// RandomFunction draws f uniformly from all n^n functions and B uniformly
// over `blocks` labels. The expected structure: ~sqrt(pi n/8) cycle nodes,
// ~log n components.
func RandomFunction(seed int64, n, blocks int) Instance {
	rng := rand.New(rand.NewSource(seed))
	f := make([]int, n)
	b := make([]int, n)
	for i := range f {
		f[i] = rng.Intn(n)
		b[i] = rng.Intn(blocks)
	}
	return Instance{F: f, B: b}
}

// RandomPermutation draws a uniform permutation (pure cycles, no trees) —
// the Section 3 regime.
func RandomPermutation(seed int64, n, blocks int) Instance {
	rng := rand.New(rand.NewSource(seed))
	b := make([]int, n)
	for i := range b {
		b[i] = rng.Intn(blocks)
	}
	return Instance{F: rng.Perm(n), B: b}
}

// CycleFamily builds k disjoint cycles of length l whose B-strings are the
// same periodic pattern rotated by a per-cycle shift, so all cycles are
// equivalent: the adversarial case for cycle partitioning (classes must be
// discovered through m.s.p. alignment, not hashing of raw strings).
func CycleFamily(seed int64, k, l, period int) Instance {
	rng := rand.New(rand.NewSource(seed))
	if period > l {
		period = l
	}
	pattern := make([]int, period)
	for i := range pattern {
		pattern[i] = rng.Intn(3)
	}
	n := k * l
	f := make([]int, n)
	b := make([]int, n)
	for c := 0; c < k; c++ {
		shift := rng.Intn(period)
		for i := 0; i < l; i++ {
			idx := c*l + i
			f[idx] = c*l + (i+1)%l
			b[idx] = pattern[(i+shift)%period]
		}
	}
	return Instance{F: f, B: b}
}

// DistinctCycles builds k cycles of length l with mostly-random labels, so
// most cycles fall into distinct classes.
func DistinctCycles(seed int64, k, l, blocks int) Instance {
	rng := rand.New(rand.NewSource(seed))
	n := k * l
	f := make([]int, n)
	b := make([]int, n)
	for c := 0; c < k; c++ {
		for i := 0; i < l; i++ {
			idx := c*l + i
			f[idx] = c*l + (i+1)%l
			b[idx] = rng.Intn(blocks)
		}
	}
	return Instance{F: f, B: b}
}

// Broom builds one cycle of length cyc with (n-cyc)/paths long chains
// attached: the deep-tree regime of Section 4. Labels partially match the
// cycle pattern so both marked and unmarked tree phases are exercised.
func Broom(seed int64, n, cyc, paths int) Instance {
	rng := rand.New(rand.NewSource(seed))
	if cyc < 1 {
		cyc = 1
	}
	if cyc > n {
		cyc = n
	}
	if paths < 1 {
		paths = 1
	}
	f := make([]int, n)
	b := make([]int, n)
	for i := 0; i < cyc; i++ {
		f[i] = (i + 1) % cyc
		b[i] = i % 3
	}
	rest := n - cyc
	per := rest / paths
	idx := cyc
	for p := 0; p < paths && idx < n; p++ {
		attach := rng.Intn(cyc)
		prev := attach
		limit := per
		if p == paths-1 {
			limit = n - idx
		}
		for j := 0; j < limit && idx < n; j++ {
			f[idx] = prev
			if rng.Intn(4) == 0 {
				b[idx] = rng.Intn(3)
			} else {
				b[idx] = (b[prev] - 1 + 3) % 3 // mostly matching the cycle walk
			}
			prev = idx
			idx++
		}
	}
	for ; idx < n; idx++ { // safety: attach leftovers directly
		f[idx] = rng.Intn(cyc)
		b[idx] = rng.Intn(3)
	}
	return Instance{F: f, B: b}
}

// Star attaches n-1 leaves to a single self-loop: the widest, shallowest
// forest.
func Star(seed int64, n, blocks int) Instance {
	rng := rand.New(rand.NewSource(seed))
	f := make([]int, n)
	b := make([]int, n)
	for i := 1; i < n; i++ {
		b[i] = rng.Intn(blocks)
	}
	return Instance{F: f, B: b}
}

// UnaryDFA models minimization of a deterministic automaton over a
// one-letter alphabet with `states` states and a random accepting set of
// the given density (per mille): F is the transition function, B the
// accept/reject partition. This is the application domain of Srikant [18].
func UnaryDFA(seed int64, states, acceptPerMille int) Instance {
	rng := rand.New(rand.NewSource(seed))
	f := make([]int, states)
	b := make([]int, states)
	for i := range f {
		f[i] = rng.Intn(states)
		if rng.Intn(1000) < acceptPerMille {
			b[i] = 1
		}
	}
	return Instance{F: f, B: b}
}

// CircularString returns a random circular string of length n over
// {0..sigma-1}.
func CircularString(seed int64, n, sigma int) []int {
	rng := rand.New(rand.NewSource(seed))
	s := make([]int, n)
	for i := range s {
		s[i] = rng.Intn(sigma)
	}
	return s
}

// PeriodicCircularString returns a circular string of length n that is the
// repetition of a random primitive block of the given period (n must be a
// multiple of period for exact periodicity; the tail is truncated
// otherwise).
func PeriodicCircularString(seed int64, n, period, sigma int) []int {
	rng := rand.New(rand.NewSource(seed))
	block := make([]int, period)
	for i := range block {
		block[i] = rng.Intn(sigma)
	}
	s := make([]int, n)
	for i := range s {
		s[i] = block[i%period]
	}
	return s
}

// RunHeavyCircularString returns a string with long runs of the minimum
// symbol — the stress case for the marking step of the m.s.p. algorithms.
func RunHeavyCircularString(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	s := make([]int, n)
	i := 0
	for i < n {
		run := 1 + rng.Intn(8)
		sym := rng.Intn(3)
		for j := 0; j < run && i < n; j++ {
			s[i] = sym
			i++
		}
	}
	return s
}

// StringList returns m strings of geometric-ish lengths totalling roughly
// total symbols over {0..sigma-1}.
func StringList(seed int64, m, total, sigma int) [][]int {
	rng := rand.New(rand.NewSource(seed))
	strs := make([][]int, m)
	remaining := total
	for i := range strs {
		avg := remaining / (m - i)
		l := 1
		if avg > 1 {
			l = 1 + rng.Intn(2*avg-1)
		}
		if l > remaining-(m-i-1) {
			l = remaining - (m - i - 1)
		}
		if l < 1 {
			l = 1
		}
		s := make([]int, l)
		for j := range s {
			s[j] = rng.Intn(sigma)
		}
		strs[i] = s
		remaining -= l
	}
	return strs
}
