package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"sfcp"
	"sfcp/internal/calib"
	"sfcp/internal/jobs"
	"sfcp/internal/store"
	"sfcp/internal/workload"
)

// A7TieredStorage measures what the durable tier costs and buys: the
// blob store's spill (encode+write) and read-back (open+decode)
// throughput against the in-memory store on the same payloads, and the
// cold-start cost of journal replay plus manager recovery over a
// realistically mixed job population. Emits one JSON document (like
// A4–A6) for BENCH_A7.json trajectory tracking.
func A7TieredStorage(cfg Config) {
	type blobRow struct {
		N           int     `json:"n"`
		WireBytes   int64   `json:"wire_bytes"`
		FilePutNS   int64   `json:"file_put_ns"`
		FileGetNS   int64   `json:"file_get_ns"`
		MemPutNS    int64   `json:"mem_put_ns"`
		MemGetNS    int64   `json:"mem_get_ns"`
		FilePutMBps float64 `json:"file_put_mb_s"`
		FileGetMBps float64 `json:"file_get_mb_s"`
	}
	type recoveryRow struct {
		Jobs         int   `json:"jobs"`
		Queued       int   `json:"queued"`
		Done         int   `json:"done"`
		JournalBytes int64 `json:"journal_bytes"`
		OpenNS       int64 `json:"journal_open_ns"`
		RecoverNS    int64 `json:"manager_recover_ns"`
		Requeued     int64 `json:"requeued"`
		Restored     int64 `json:"restored"`
	}
	doc := struct {
		Experiment string                `json:"experiment"`
		Title      string                `json:"title"`
		GOMAXPROCS int                   `json:"gomaxprocs"`
		Host       calib.HostFingerprint `json:"host"`
		Blob       []blobRow             `json:"blob_rows"`
		Recovery   []recoveryRow         `json:"recovery_rows"`
	}{
		Experiment: "A7",
		Title:      "tiered storage: blob spill/read throughput and cold-start recovery",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host:       calib.Fingerprint(),
	}
	fail := func(err error) {
		fmt.Fprintf(cfg.Out, "{\"experiment\":\"A7\",\"error\":%q}\n", err.Error())
	}

	dir, err := os.MkdirTemp("", "sfcp-a7-*")
	if err != nil {
		fail(err)
		return
	}
	defer os.RemoveAll(dir)

	// Part 1: spill and read-back throughput, file vs memory, over the
	// payload sizes the spill threshold actually sees (SpillN defaults
	// to 1<<16). Min-of-reps per op sheds scheduler and page-cache
	// warmup noise; the wire bytes are what actually crossed the store.
	fileBlobs, err := store.OpenFileBlobStore(filepath.Join(dir, "blobs"))
	if err != nil {
		fail(err)
		return
	}
	memBlobs := store.NewMemBlobStore()
	reps := 5
	if cfg.Quick {
		reps = 3
	}
	for _, n := range sizes(cfg, []int{1 << 16, 1 << 18, 1 << 20, 1 << 22}, []int{1 << 14, 1 << 16}) {
		wl := workload.RandomFunction(cfg.Seed+int64(n), n, 3)
		ins := sfcp.Instance{F: wl.F, B: wl.B}
		key := ins.Digest()

		measure := func(op func() error) (time.Duration, error) {
			best := time.Duration(1<<63 - 1)
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				if err := op(); err != nil {
					return 0, err
				}
				if d := time.Since(t0); d < best {
					best = d
				}
			}
			return best, nil
		}
		put := func(dst store.BlobStore) (written int64, err error) {
			pr, pw := io.Pipe()
			go func() { pw.CloseWithError(ins.EncodeBinary(pw)) }()
			return dst.Put(key, pr)
		}
		get := func(src store.BlobStore) error {
			rc, err := src.Get(key)
			if err != nil {
				return err
			}
			defer rc.Close()
			_, err = sfcp.DecodeBinary(rc)
			return err
		}

		var wire int64
		filePut, err := measure(func() error { n, err := put(fileBlobs); wire = n; return err })
		if err != nil {
			fail(err)
			return
		}
		fileGet, err := measure(func() error { return get(fileBlobs) })
		if err != nil {
			fail(err)
			return
		}
		memPut, err := measure(func() error { _, err := put(memBlobs); return err })
		if err != nil {
			fail(err)
			return
		}
		memGet, err := measure(func() error { return get(memBlobs) })
		if err != nil {
			fail(err)
			return
		}
		doc.Blob = append(doc.Blob, blobRow{
			N:           n,
			WireBytes:   wire,
			FilePutNS:   int64(filePut),
			FileGetNS:   int64(fileGet),
			MemPutNS:    int64(memPut),
			MemGetNS:    int64(memGet),
			FilePutMBps: float64(wire) / filePut.Seconds() / 1e6,
			FileGetMBps: float64(wire) / fileGet.Seconds() / 1e6,
		})
	}

	// Part 2: cold-start recovery. Build a journal holding a mixed
	// population — three quarters terminal, one quarter stranded
	// non-terminal with persisted payloads — then time exactly what a
	// daemon restart pays: journal replay (open) and manager recovery
	// (scan, requeue, restore).
	jobsTotal := 1000
	if cfg.Quick {
		jobsTotal = 200
	}
	journalPath := filepath.Join(dir, "jobs.journal")
	journal, err := store.OpenFileJobStore(journalPath, nil)
	if err != nil {
		fail(err)
		return
	}
	const insN = 64
	wl := workload.RandomFunction(cfg.Seed, insN, 3)
	queuedIns := sfcp.Instance{F: wl.F, B: wl.B}
	digest := queuedIns.Digest()
	if _, err := fileBlobs.Put(digest, pipeEncode(queuedIns)); err != nil {
		fail(err)
		return
	}
	queued, done := 0, 0
	for i := 0; i < jobsTotal; i++ {
		rec := store.JobRecord{
			ID:          fmt.Sprintf("a7-%05d", i),
			Seq:         uint64(i + 1),
			Algorithm:   sfcp.AlgorithmLinear.String(),
			N:           insN,
			State:       "queued",
			SubmittedAt: time.Now(),
		}
		if i%4 == 0 {
			rec.InstanceDigest = digest
			queued++
		} else {
			rec.State = "done"
			rec.FinishedAt = time.Now()
			rec.NumClasses = 3
			rec.ResultKey = store.ResultKey(rec.Algorithm, 0, digest)
			done++
		}
		if err := journal.Put(rec); err != nil {
			fail(err)
			return
		}
	}
	if err := journal.Close(); err != nil {
		fail(err)
		return
	}
	st, err := os.Stat(journalPath)
	if err != nil {
		fail(err)
		return
	}

	t0 := time.Now()
	journal2, err := store.OpenFileJobStore(journalPath, nil)
	if err != nil {
		fail(err)
		return
	}
	openDur := time.Since(t0)
	t1 := time.Now()
	m := jobs.New(jobs.Config{
		Journal:                 journal2,
		Blobs:                   fileBlobs,
		DispatchersPerAlgorithm: 1,
	}, func(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (sfcp.Result, bool, error) {
		res, err := sfcp.SolveWith(ins, sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
		return res, false, err
	})
	recoverDur := time.Since(t1)
	counts := m.Counts()
	m.Close()
	journal2.Close()
	doc.Recovery = append(doc.Recovery, recoveryRow{
		Jobs:         jobsTotal,
		Queued:       queued,
		Done:         done,
		JournalBytes: st.Size(),
		OpenNS:       int64(openDur),
		RecoverNS:    int64(recoverDur),
		Requeued:     counts.Requeued,
		Restored:     counts.Restored,
	})

	enc := json.NewEncoder(cfg.Out)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// pipeEncode streams an instance's wire encoding as a reader, the same
// shape the job manager uses to spill payloads.
func pipeEncode(ins sfcp.Instance) io.Reader {
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(ins.EncodeBinary(pw)) }()
	return pr
}
