package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; covered by the non-short test run")
	}
	for _, e := range All() {
		var buf bytes.Buffer
		e.Run(Config{Out: &buf, Quick: true, Seed: 7})
		out := buf.String()
		if len(out) == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
		for _, bad := range []string{"DISAGREE", "WRONG RESULT", "SOLVERS DISAGREE"} {
			if strings.Contains(out, bad) {
				t.Errorf("%s reported %q:\n%s", e.ID, bad, out)
			}
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("E1"); !ok {
		t.Error("E1 not found")
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("E99 should not exist")
	}
	if len(IDs()) != len(All()) {
		t.Error("IDs/All mismatch")
	}
}

func TestE9ContainsPaperValues(t *testing.T) {
	var buf bytes.Buffer
	E9PaperExamples(Config{Out: &buf, Quick: true, Seed: 1})
	out := buf.String()
	for _, want := range []string{
		"partitions equivalent: true",
		"classes = 4",
		"prefix length = 4",
		"[3 6 9 2 8 4 1 3 5 7]", // Example 3.4 derived string (rotated)
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E9 output missing %q:\n%s", want, out)
		}
	}
}
