package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"sfcp/internal/calib"
	"sfcp/internal/engine"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; covered by the non-short test run")
	}
	for _, e := range All() {
		var buf bytes.Buffer
		e.Run(Config{Out: &buf, Quick: true, Seed: 7})
		out := buf.String()
		if len(out) == 0 {
			t.Errorf("%s produced no output", e.ID)
		}
		for _, bad := range []string{"DISAGREE", "WRONG RESULT", "SOLVERS DISAGREE"} {
			if strings.Contains(out, bad) {
				t.Errorf("%s reported %q:\n%s", e.ID, bad, out)
			}
		}
	}
}

// TestRunOneRestoresProfile pins the fix for experiments leaking a fitted
// calibration profile into the process-global planner: whatever an
// experiment installs via engine.SetProfile, RunOne must undo, so the
// order of -exp invocations (or position within -all) cannot skew later
// measurements.
func TestRunOneRestoresProfile(t *testing.T) {
	orig := engine.InstalledProfile()
	defer engine.SetProfile(orig)

	mutator := Experiment{ID: "TX", Title: "installs a profile", Run: func(Config) {
		engine.SetProfile(&calib.Profile{Version: 1})
	}}
	cfg := Config{Out: io.Discard, Quick: true, Seed: 1}

	sentinel := &calib.Profile{Version: 1}
	engine.SetProfile(sentinel)
	RunOne(mutator, cfg)
	if got := engine.InstalledProfile(); got != sentinel {
		t.Errorf("installed profile after RunOne = %p, want sentinel %p", got, sentinel)
	}

	// The defaults case: nothing installed must stay nothing installed,
	// not become a pinned copy of the defaults.
	engine.SetProfile(nil)
	RunOne(mutator, cfg)
	if got := engine.InstalledProfile(); got != nil {
		t.Errorf("installed profile after RunOne = %p, want nil (defaults)", got)
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("E1"); !ok {
		t.Error("E1 not found")
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("E99 should not exist")
	}
	if len(IDs()) != len(All()) {
		t.Error("IDs/All mismatch")
	}
}

func TestE9ContainsPaperValues(t *testing.T) {
	var buf bytes.Buffer
	E9PaperExamples(Config{Out: &buf, Quick: true, Seed: 1})
	out := buf.String()
	for _, want := range []string{
		"partitions equivalent: true",
		"classes = 4",
		"prefix length = 4",
		"[3 6 9 2 8 4 1 3 5 7]", // Example 3.4 derived string (rotated)
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E9 output missing %q:\n%s", want, out)
		}
	}
}
