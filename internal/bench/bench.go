// Package bench regenerates every experiment in EXPERIMENTS.md. The paper
// has no empirical section, so the "tables and figures" to reproduce are
// its stated complexity bounds, comparisons with prior algorithms, and
// worked examples; each experiment turns one claim into a measured table.
//
//sfcpvet:ignore-file enginedispatch -- the experiments compare raw solver entry points against each other; routing them through the engine would measure the planner instead of the algorithms
package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"sfcp"
	"sfcp/internal/batcher"
	"sfcp/internal/calib"
	"sfcp/internal/circ"
	"sfcp/internal/coarsest"
	"sfcp/internal/engine"
	"sfcp/internal/intsort"
	"sfcp/internal/listrank"
	"sfcp/internal/partition"
	"sfcp/internal/pram"
	"sfcp/internal/strsort"
	"sfcp/internal/workload"
)

// Config controls an experiment run.
type Config struct {
	// Out receives the table (default os.Stdout set by the caller).
	Out io.Writer
	// Quick shrinks the sweeps for CI-speed runs.
	Quick bool
	// Seed of all workloads.
	Seed int64
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config)
}

// All lists every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Theorem 5.1: parallel time O(log n)", E1Time},
		{"E2", "Theorem 5.1: work O(n log log n)", E2Work},
		{"E3", "Lemma 3.7: m.s.p. algorithms", E3MSP},
		{"E4", "Lemma 3.8: string sorting", E4StringSort},
		{"E5", "Lemma 3.11: cycle partitioning", E5CyclePartition},
		{"E6", "Lemma 4.3: tree labeling", E6TreeLabel},
		{"E7", "Intro: comparison with prior algorithms", E7Comparison},
		{"E8", "Practical wall-clock speedup", E8Speedup},
		{"E9", "Fig. 1 and worked examples", E9PaperExamples},
		{"E10", "Remark 3.2: BB table memory", E10BBMemory},
		{"A1", "Ablation: integer sorting strategies", A1IntSort},
		{"A2", "Ablation: list ranking methods", A2ListRank},
		{"A3", "Ablation: m.s.p. recursion cutoff", A3Cutoff},
		{"A4", "Planner crossover: auto vs forced algorithms (JSON)", A4PlannerCrossover},
		{"A5", "Coalescing front door: micro-batched vs per-request small solves (JSON)", A5Coalescing},
		{"A6", "Planner calibration: fitted profile and the measured curves behind it (JSON)", A6Calibration},
		{"A7", "Tiered storage: blob spill/read throughput and cold-start recovery (JSON)", A7TieredStorage},
		{"A8", "Incremental re-solve: delta-apply latency vs full re-solve (JSON)", A8IncrementalResolve},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func lglg(n int) float64 {
	lg := math.Log2(float64(n))
	if lg < 2 {
		return 1
	}
	return math.Log2(lg)
}

func sizes(cfg Config, full, quick []int) []int {
	if cfg.Quick {
		return quick
	}
	return full
}

func newTable(cfg Config) *tabwriter.Writer {
	return tabwriter.NewWriter(cfg.Out, 2, 4, 2, ' ', tabwriter.AlignRight)
}

// E1Time measures the parallel rounds of the full solver: Theorem 5.1
// claims O(log n) time, so rounds/log2(n) should flatten. The simulator's
// prefix sums are plain O(log n)-round trees (the paper assumes the
// accelerated O(log n / log log n) CRCW scans), so the honest expectation
// is a flat-to-mildly-drifting rounds/(log n * log log n) column.
func E1Time(cfg Config) {
	fmt.Fprintln(cfg.Out, "E1: ParallelPRAM rounds vs n (random function and permutation workloads)")
	w := newTable(cfg)
	fmt.Fprintln(w, "n\trounds(rand)\tr/log n\tr/(log n·loglog n)\trounds(perm)\tr/log n\t")
	for _, n := range sizes(cfg, []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}, []int{1 << 10, 1 << 12}) {
		lg := math.Log2(float64(n))
		rand := workload.RandomFunction(cfg.Seed, n, 3)
		rr := coarsest.ParallelPRAM(coarsest.Instance{F: rand.F, B: rand.B}, coarsest.ParallelOptions{}).Stats.Rounds
		// Permutations (cycle-heavy) are capped a size lower: their
		// batched m.s.p. phase is the host-slowest part of the simulator.
		pr := int64(-1)
		if n <= 1<<14 {
			perm := workload.RandomPermutation(cfg.Seed+1, n, 3)
			pr = coarsest.ParallelPRAM(coarsest.Instance{F: perm.F, B: perm.B}, coarsest.ParallelOptions{}).Stats.Rounds
		}
		if pr >= 0 {
			fmt.Fprintf(w, "%d\t%d\t%.1f\t%.1f\t%d\t%.1f\t\n",
				n, rr, float64(rr)/lg, float64(rr)/(lg*lglg(n)), pr, float64(pr)/lg)
		} else {
			fmt.Fprintf(w, "%d\t%d\t%.1f\t%.1f\t-\t-\t\n",
				n, rr, float64(rr)/lg, float64(rr)/(lg*lglg(n)))
		}
	}
	w.Flush()
}

// E2Work measures total operations: Theorem 5.1 claims O(n log log n), so
// work/(n log log n) should flatten while work/n drifts up only as log log.
func E2Work(cfg Config) {
	fmt.Fprintln(cfg.Out, "E2: ParallelPRAM work vs n (modeled Bhatt sorting; see DESIGN.md)")
	w := newTable(cfg)
	fmt.Fprintln(w, "n\twork(rand)\tw/n\tw/(n·loglog n)\twork(perm)\tw/(n·loglog n)\t")
	for _, n := range sizes(cfg, []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}, []int{1 << 10, 1 << 12}) {
		rand := workload.RandomFunction(cfg.Seed, n, 3)
		rw := coarsest.ParallelPRAM(coarsest.Instance{F: rand.F, B: rand.B}, coarsest.ParallelOptions{}).Stats.Work
		fn := float64(n)
		if n <= 1<<14 {
			perm := workload.RandomPermutation(cfg.Seed+1, n, 3)
			pw := coarsest.ParallelPRAM(coarsest.Instance{F: perm.F, B: perm.B}, coarsest.ParallelOptions{}).Stats.Work
			fmt.Fprintf(w, "%d\t%d\t%.1f\t%.1f\t%d\t%.1f\t\n",
				n, rw, float64(rw)/fn, float64(rw)/(fn*lglg(n)), pw, float64(pw)/(fn*lglg(n)))
		} else {
			fmt.Fprintf(w, "%d\t%d\t%.1f\t%.1f\t-\t-\t\n",
				n, rw, float64(rw)/fn, float64(rw)/(fn*lglg(n)))
		}
	}
	w.Flush()
}

// E3MSP compares the m.s.p. algorithms: efficient (Lemma 3.7,
// O(n log log n) work) against simple (O(n log n) work) and the sequential
// linear-time algorithms. The work ratio simple/efficient must grow like
// log n / log log n.
func E3MSP(cfg Config) {
	fmt.Fprintln(cfg.Out, "E3: minimal starting point of a circular string")
	w := newTable(cfg)
	fmt.Fprintln(w, "n\tsimple work\ts/(n·log n)\tefficient work\te/(n·loglog n)\tratio s/e\tseq Booth\t")
	for _, n := range sizes(cfg, []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}, []int{1 << 10, 1 << 12}) {
		s := workload.CircularString(cfg.Seed+int64(n), n, 4)
		if circ.SmallestRepeatingPrefix(s) != n {
			s[0]++ // force primitivity
		}
		mS := pram.New(pram.ArbitraryCRCW)
		cS := mS.NewArrayFromInts(s)
		mS.ResetStats()
		idxS := circ.SimpleMSPPRAM(mS, cS)
		workS := mS.Stats().Work

		mE := pram.New(pram.ArbitraryCRCW)
		cE := mE.NewArrayFromInts(s)
		mE.ResetStats()
		idxE := circ.EfficientMSPPRAM(mE, cE, circ.Options{})
		workE := mE.Stats().Work

		t0 := time.Now()
		idxB := circ.BoothMSP(s)
		seq := time.Since(t0)
		if idxS != idxB || idxE != idxB {
			fmt.Fprintf(w, "%d\tDISAGREE(%d/%d/%d)\t\t\t\t\t\t\n", n, idxS, idxE, idxB)
			continue
		}
		fn := float64(n)
		lg := math.Log2(fn)
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%d\t%.2f\t%.2f\t%v\t\n",
			n, workS, float64(workS)/(fn*lg), workE, float64(workE)/(fn*lglg(n)),
			float64(workS)/float64(workE), seq.Round(time.Microsecond))
	}
	w.Flush()
}

// E4StringSort compares Algorithm sorting strings (Lemma 3.8) against the
// comparison-network baseline.
func E4StringSort(cfg Config) {
	fmt.Fprintln(cfg.Out, "E4: sorting variable-length strings (total symbols = n)")
	w := newTable(cfg)
	fmt.Fprintln(w, "n\tm\tpaper work\tw/(n·loglog n)\tpaper rounds\tbatcher work\tbatcher rounds\tratio b/p\t")
	for _, n := range sizes(cfg, []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}, []int{1 << 10, 1 << 12}) {
		m := n / 16
		strs := workload.StringList(cfg.Seed+int64(n), m, n, 5)

		m1 := pram.New(pram.ArbitraryCRCW)
		m1.ResetStats()
		p1 := strsort.SortPRAM(m1, strs, strsort.Options{})
		s1 := m1.Stats()

		m2 := pram.New(pram.ArbitraryCRCW)
		m2.ResetStats()
		p2 := strsort.BatcherComparePRAM(m2, strs)
		s2 := m2.Stats()

		agree := len(p1) == len(p2)
		for i := range p1 {
			if !agree || p1[i] != p2[i] {
				agree = false
				break
			}
		}
		if !agree {
			fmt.Fprintf(w, "%d\t%d\tDISAGREE\t\t\t\t\t\t\n", n, m)
			continue
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%.2f\t%d\t%d\t%d\t%.2f\t\n",
			n, m, s1.Work, float64(s1.Work)/(float64(n)*lglg(n)), s1.Rounds,
			s2.Work, s2.Rounds, float64(s2.Work)/float64(s1.Work))
	}
	w.Flush()
}

// E5CyclePartition fixes n and sweeps the cycle count k: Algorithm
// partition does O(n) work while the trivial all-pairs method does
// O(nk + k^2), so the ratio must grow linearly in k (Lemma 3.11).
func E5CyclePartition(cfg Config) {
	n := 1 << 14
	if cfg.Quick {
		n = 1 << 11
	}
	fmt.Fprintf(cfg.Out, "E5: partitioning k cycles into equivalence classes (n = %d fixed)\n", n)
	w := newTable(cfg)
	fmt.Fprintln(w, "k\tl\tpairing work\tallpairs work\tratio\tpairing rounds\tallpairs rounds\t")
	for _, k := range sizes(cfg, []int{16, 64, 256, 1024, 4096}, []int{16, 64, 256}) {
		l := n / k
		ins := workload.DistinctCycles(cfg.Seed, k, l, 3)
		flat := make([]int, 0, k*l)
		// Rows are the B-strings of the generated cycles (consecutive).
		flat = append(flat, ins.B...)

		m1 := pram.New(pram.ArbitraryCRCW)
		a1 := m1.NewArrayFromInts(flat)
		m1.ResetStats()
		c1, n1 := partition.PairingPRAM(m1, a1, k, l, intsort.Modeled)
		s1 := m1.Stats()

		m2 := pram.New(pram.ArbitraryCRCW)
		a2 := m2.NewArrayFromInts(flat)
		m2.ResetStats()
		c2, n2 := partition.AllPairsPRAM(m2, a2, k, l, intsort.Modeled)
		s2 := m2.Stats()

		if n1 != n2 || !coarsest.SamePartition(c1.Ints(), c2.Ints()) {
			fmt.Fprintf(w, "%d\t%d\tDISAGREE\t\t\t\t\t\n", k, l)
			continue
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.2f\t%d\t%d\t\n",
			k, l, s1.Work, s2.Work, float64(s2.Work)/float64(s1.Work), s1.Rounds, s2.Rounds)
	}
	w.Flush()
}

// E6TreeLabel exercises Section 4 over forest shapes from shallow-wide to
// deep-narrow: rounds must stay logarithmic-ish and work near-linear in n
// (Lemma 4.3; our Step-5 coding pays an extra log(depth) factor over
// Kedem–Palem, which the depth sweep makes visible).
func E6TreeLabel(cfg Config) {
	n := 1 << 14
	if cfg.Quick {
		n = 1 << 11
	}
	fmt.Fprintf(cfg.Out, "E6: tree labeling across forest shapes (n = %d)\n", n)
	w := newTable(cfg)
	fmt.Fprintln(w, "shape\tmax depth\trounds\twork\twork/n\t")
	shapes := []struct {
		name string
		ins  workload.Instance
	}{
		{"star (depth 1)", workload.Star(cfg.Seed, n, 3)},
		{"random function", workload.RandomFunction(cfg.Seed, n, 3)},
		{"broom x64", workload.Broom(cfg.Seed, n, 16, 64)},
		{"broom x4", workload.Broom(cfg.Seed, n, 16, 4)},
		{"single chain", workload.Broom(cfg.Seed, n, 4, 1)},
	}
	for _, sh := range shapes {
		ins := coarsest.Instance{F: sh.ins.F, B: sh.ins.B}
		res := coarsest.ParallelPRAM(ins, coarsest.ParallelOptions{})
		if !coarsest.SamePartition(res.Labels, coarsest.Hopcroft(ins)) {
			fmt.Fprintf(w, "%s\tWRONG RESULT\t\t\t\t\n", sh.name)
			continue
		}
		depth := maxTreeDepth(ins)
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t\n",
			sh.name, depth, res.Stats.Rounds, res.Stats.Work, float64(res.Stats.Work)/float64(n))
	}
	w.Flush()
}

func maxTreeDepth(ins coarsest.Instance) int {
	labels := coarsest.LinearSequential(ins) // ensures instance is sane
	_ = labels
	n := len(ins.F)
	// Sequential level computation (same as linear solver).
	onCycle := make([]bool, n)
	state := make([]int8, n)
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		var path []int
		x := s
		for state[x] == 0 {
			state[x] = 1
			path = append(path, x)
			x = ins.F[x]
		}
		if state[x] == 1 {
			for i := len(path) - 1; i >= 0; i-- {
				onCycle[path[i]] = true
				if path[i] == x {
					break
				}
			}
		}
		for _, y := range path {
			state[y] = 2
		}
	}
	depth := make([]int, n)
	maxD := 0
	var stack []int
	for s := 0; s < n; s++ {
		x := s
		stack = stack[:0]
		for !onCycle[x] && depth[x] == 0 {
			stack = append(stack, x)
			x = ins.F[x]
		}
		d := depth[x]
		for i := len(stack) - 1; i >= 0; i-- {
			d++
			depth[stack[i]] = d
			if d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// E7Comparison reproduces the paper's prior-work comparison: at matching
// O(log n)-scale time, the paper's algorithm must do asymptotically less
// work than the Galley–Iliopoulos-shape (n log n) and Srikant-shape
// (n log^2 n) baselines, with sequential algorithms as the work floor.
func E7Comparison(cfg Config) {
	fmt.Fprintln(cfg.Out, "E7: algorithm comparison (random functions)")
	w := newTable(cfg)
	fmt.Fprintln(w, "n\tpaper work\tGI-shape work\tSrikant-shape work\tGI/paper\tSrikant/paper\tpaper rounds\tGI rounds\tSrikant rounds\t")
	for _, n := range sizes(cfg, []int{1 << 10, 1 << 12, 1 << 14}, []int{1 << 10, 1 << 12}) {
		wl := workload.RandomFunction(cfg.Seed, n, 3)
		ins := coarsest.Instance{F: wl.F, B: wl.B}
		paper := coarsest.ParallelPRAM(ins, coarsest.ParallelOptions{})
		gi := coarsest.DoublingHashPRAM(ins, coarsest.ParallelOptions{})
		sk := coarsest.DoublingSortPRAM(ins, coarsest.ParallelOptions{})
		if !coarsest.SamePartition(paper.Labels, gi.Labels) || !coarsest.SamePartition(paper.Labels, sk.Labels) {
			fmt.Fprintf(w, "%d\tDISAGREE\t\t\t\t\t\t\t\t\n", n)
			continue
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.2f\t%.2f\t%d\t%d\t%d\t\n",
			n, paper.Stats.Work, gi.Stats.Work, sk.Stats.Work,
			float64(gi.Stats.Work)/float64(paper.Stats.Work),
			float64(sk.Stats.Work)/float64(paper.Stats.Work),
			paper.Stats.Rounds, gi.Stats.Rounds, sk.Stats.Rounds)
	}
	w.Flush()

	// The quadratic Cho–Huynh baseline only fits small n.
	fmt.Fprintln(cfg.Out, "Cho–Huynh (O(n^2) ops) baseline, small n:")
	w2 := newTable(cfg)
	fmt.Fprintln(w2, "n\tCho-Huynh work\tpaper work\tCH/paper\t")
	for _, n := range sizes(cfg, []int{256, 512, 1024, 2048}, []int{256, 512}) {
		wl := workload.RandomFunction(cfg.Seed, n, 3)
		ins := coarsest.Instance{F: wl.F, B: wl.B}
		ch := coarsest.ChoHuynhPRAM(ins, coarsest.ParallelOptions{})
		paper := coarsest.ParallelPRAM(ins, coarsest.ParallelOptions{})
		if !coarsest.SamePartition(ch.Labels, paper.Labels) {
			fmt.Fprintf(w2, "%d\tDISAGREE\t\t\t\n", n)
			continue
		}
		fmt.Fprintf(w2, "%d\t%d\t%d\t%.2f\t\n", n, ch.Stats.Work, paper.Stats.Work,
			float64(ch.Stats.Work)/float64(paper.Stats.Work))
	}
	w2.Flush()
}

// E8Speedup measures wall-clock of the native goroutine implementation
// against the sequential linear-time solver across worker counts. On a
// single-core host the curve is expectedly flat; the harness reports
// GOMAXPROCS so readers can judge.
func E8Speedup(cfg Config) {
	n := 1 << 20
	if cfg.Quick {
		n = 1 << 17
	}
	wl := workload.RandomFunction(cfg.Seed, n, 3)
	ins := coarsest.Instance{F: wl.F, B: wl.B}
	fmt.Fprintf(cfg.Out, "E8: wall-clock, n = %d, GOMAXPROCS = %d\n", n, runtime.GOMAXPROCS(0))

	t0 := time.Now()
	seqLabels := coarsest.LinearSequential(ins)
	seq := time.Since(t0)
	t0 = time.Now()
	hopLabels := coarsest.Hopcroft(ins)
	hop := time.Since(t0)
	if !coarsest.SamePartition(seqLabels, hopLabels) {
		fmt.Fprintln(cfg.Out, "SOLVERS DISAGREE")
		return
	}
	fmt.Fprintf(cfg.Out, "sequential linear: %v   hopcroft: %v\n", seq.Round(time.Millisecond), hop.Round(time.Millisecond))

	w := newTable(cfg)
	fmt.Fprintln(w, "workers\tnative wall\tvs linear\tself-speedup\t")
	var base time.Duration
	maxW := runtime.NumCPU() * 2
	if maxW > 16 {
		maxW = 16
	}
	for workers := 1; workers <= maxW; workers *= 2 {
		t0 = time.Now()
		labels := coarsest.NativeParallel(ins, workers)
		el := time.Since(t0)
		if !coarsest.SamePartition(labels, seqLabels) {
			fmt.Fprintf(w, "%d\tWRONG RESULT\t\t\t\n", workers)
			continue
		}
		if workers == 1 {
			base = el
		}
		fmt.Fprintf(w, "%d\t%v\t%.2fx\t%.2fx\t\n",
			workers, el.Round(time.Millisecond),
			float64(seq)/float64(el), float64(base)/float64(el))
	}
	w.Flush()
}

// E9PaperExamples replays Fig. 1 / Example 2.2, Example 3.1 and Example
// 3.4 verbatim.
func E9PaperExamples(cfg Config) {
	out := cfg.Out
	fmt.Fprintln(out, "E9: the paper's worked examples")
	af := []int{2, 4, 6, 8, 10, 12, 1, 3, 5, 7, 9, 11, 14, 15, 16, 13}
	ab := []int{1, 2, 1, 1, 2, 2, 3, 3, 1, 1, 3, 1, 1, 2, 1, 3}
	f := make([]int, 16)
	for i, v := range af {
		f[i] = v - 1
	}
	ins := coarsest.Instance{F: f, B: ab}
	fmt.Fprintf(out, "Example 2.2 (Fig. 1): A_f = %v\n                      A_B = %v\n", af, ab)
	res := coarsest.ParallelPRAM(ins, coarsest.ParallelOptions{})
	plus1 := make([]int, 16)
	for i, v := range res.Labels {
		plus1[i] = v + 1
	}
	fmt.Fprintf(out, "ParallelPRAM A_Q (renamed) = %v\n", plus1)
	fmt.Fprintf(out, "paper's A_Q                = %v\n", []int{1, 2, 1, 3, 2, 2, 4, 4, 1, 3, 4, 3, 1, 2, 3, 4})
	fmt.Fprintf(out, "partitions equivalent: %v, classes = %d (paper: 4)\n\n",
		coarsest.SamePartition(res.Labels, []int{1, 2, 1, 3, 2, 2, 4, 4, 1, 3, 4, 3, 1, 2, 3, 4}), res.NumClasses)

	bc := []int{1, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3}
	fmt.Fprintf(out, "Example 3.1: B_C = %v, smallest repeating prefix length = %d (paper: 4, P = (1,2,1,3))\n\n",
		bc, circ.SmallestRepeatingPrefix(bc))

	s := []int{3, 2, 1, 3, 2, 3, 4, 3, 1, 2, 3, 4, 2, 1, 1, 1, 3, 2, 2}
	m := pram.New(pram.ArbitraryCRCW)
	shifted := make([]int, len(s))
	for i, v := range s {
		shifted[i] = v + 1
	}
	c := m.NewArrayFromInts(shifted)
	derived, starts, _, _ := circ.EfficientReduceStep(m, c, circ.Options{Pad: circ.PadBlank})
	fmt.Fprintf(out, "Example 3.4: input %v\n", s)
	fmt.Fprintf(out, "one reduction: derived = %v (paper, rotated to first mark: (3,6,9,2,8,4,1,3,5,7))\n", derived.Ints())
	fmt.Fprintf(out, "pair starting positions (0-based) = %v\n", starts.Ints())
	idx := circ.BoothMSP(s)
	mm := pram.New(pram.ArbitraryCRCW)
	cc := mm.NewArrayFromInts(s)
	fmt.Fprintf(out, "m.s.p. of the input: efficient = %d, Booth = %d\n",
		circ.MSPPRAM(mm, cc, circ.Options{}), idx)
}

// E10BBMemory contrasts the literal BB table's quadratic cells with the
// dictionary realization (the Remark in §3.2).
func E10BBMemory(cfg Config) {
	fmt.Fprintln(cfg.Out, "E10: memory of Algorithm partition (cells = machine words)")
	w := newTable(cfg)
	fmt.Fprintln(w, "n\tk\tl\tBB cells\tdict cells\tratio\t")
	for _, k := range sizes(cfg, []int{8, 16, 32, 64, 128}, []int{8, 16, 32}) {
		l := 8
		ins := workload.DistinctCycles(cfg.Seed, k, l, 3)
		n := k * l

		mBB := pram.New(pram.ArbitraryCRCW)
		aBB := mBB.NewArrayFromInts(ins.B)
		mBB.ResetStats()
		c1, _ := partition.BBTablePRAM(mBB, aBB, k, l, intsort.Modeled)

		mD := pram.New(pram.ArbitraryCRCW)
		aD := mD.NewArrayFromInts(ins.B)
		mD.ResetStats()
		c2, _ := partition.PairingPRAM(mD, aD, k, l, intsort.Modeled)

		if !coarsest.SamePartition(c1.Ints(), c2.Ints()) {
			fmt.Fprintf(w, "%d\tDISAGREE\t\t\t\t\t\n", n)
			continue
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.1f\t\n",
			n, k, l, mBB.Stats().Cells, mD.Stats().Cells,
			float64(mBB.Stats().Cells)/float64(mD.Stats().Cells))
	}
	w.Flush()
}

// A1IntSort compares the three integer-sorting strategies on the same keys.
func A1IntSort(cfg Config) {
	fmt.Fprintln(cfg.Out, "A1: integer sorting strategies (keys uniform in [0,n))")
	w := newTable(cfg)
	fmt.Fprintln(w, "n\tmodeled work\tbit-split work\tgrouped work\tmodeled rounds\tbit-split rounds\tgrouped rounds\t")
	for _, n := range sizes(cfg, []int{1 << 10, 1 << 13, 1 << 16}, []int{1 << 10, 1 << 12}) {
		keys := make([]int64, n)
		rng := workload.CircularString(cfg.Seed, n, n)
		for i, v := range rng {
			keys[i] = int64(v)
		}
		var work [3]int64
		var rounds [3]int64
		for i, strat := range []intsort.Strategy{intsort.Modeled, intsort.BitSplit, intsort.Grouped} {
			m := pram.New(pram.ArbitraryCRCW)
			a := m.NewArrayFrom(keys)
			m.ResetStats()
			intsort.SortPRAM(m, a, int64(n), strat)
			work[i] = m.Stats().Work
			rounds[i] = m.Stats().Rounds
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			n, work[0], work[1], work[2], rounds[0], rounds[1], rounds[2])
	}
	w.Flush()
}

// A2ListRank compares Wyllie pointer jumping against the sparse ruling set
// on a single long cycle.
func A2ListRank(cfg Config) {
	fmt.Fprintln(cfg.Out, "A2: list ranking methods (single cycle of length n)")
	w := newTable(cfg)
	fmt.Fprintln(w, "n\twyllie work\truling work\tratio\twyllie rounds\truling rounds\t")
	for _, n := range sizes(cfg, []int{1 << 10, 1 << 13, 1 << 16, 1 << 18}, []int{1 << 10, 1 << 13}) {
		next := make([]int, n)
		for i := range next {
			next[i] = (i + 1) % n
		}
		var work [2]int64
		var rounds [2]int64
		for i, method := range []listrank.Method{listrank.Wyllie, listrank.RulingSet} {
			m := pram.New(pram.ArbitraryCRCW)
			a := m.NewArrayFromInts(next)
			m.ResetStats()
			listrank.CycleRank(m, a, method)
			work[i] = m.Stats().Work
			rounds[i] = m.Stats().Rounds
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%.2f\t%d\t%d\t\n",
			n, work[0], work[1], float64(work[0])/float64(work[1]), rounds[0], rounds[1])
	}
	w.Flush()
}

// A3Cutoff varies the Step-4 switch point of the efficient m.s.p.
// algorithm between "never reduce" (simple only), the paper's n/log n, and
// "reduce to exhaustion".
func A3Cutoff(cfg Config) {
	n := 1 << 14
	if cfg.Quick {
		n = 1 << 11
	}
	s := workload.CircularString(cfg.Seed, n, 4)
	if circ.SmallestRepeatingPrefix(s) != n {
		s[0]++
	}
	want := circ.BoothMSP(s)
	lg := bits.Len(uint(n))
	fmt.Fprintf(cfg.Out, "A3: m.s.p. cutoff ablation (n = %d)\n", n)
	w := newTable(cfg)
	fmt.Fprintln(w, "cutoff\twork\trounds\tcorrect\t")
	cutoffs := []struct {
		name string
		val  int
	}{
		{"n (simple only)", n},
		{"n/2", n / 2},
		{fmt.Sprintf("n/log n = %d (paper)", n/lg), n / lg},
		{"64", 64},
		{"1 (exhaustive)", 1},
	}
	for _, co := range cutoffs {
		m := pram.New(pram.ArbitraryCRCW)
		c := m.NewArrayFromInts(s)
		m.ResetStats()
		got := circ.EfficientMSPPRAMWithCutoff(m, c, circ.Options{}, co.val)
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\t\n", co.name, m.Stats().Work, m.Stats().Rounds, got == want)
	}
	w.Flush()
}

// A4PlannerCrossover measures the adaptive planner against every forced
// algorithm at sizes straddling engine.MinParallelN, on the tree-heavy and
// cycle-heavy families. Unlike the other experiments it emits one JSON
// document — machine-readable rows suitable for BENCH_*.json trajectory
// tracking — so regressions of the planner's crossover show up as data,
// not prose.
func A4PlannerCrossover(cfg Config) {
	type row struct {
		Family       string           `json:"family"`
		N            int              `json:"n"`
		AutoResolved string           `json:"auto_resolved"`
		AutoWorkers  int              `json:"auto_workers"`
		AutoNS       int64            `json:"auto_ns"`
		ForcedNS     map[string]int64 `json:"forced_ns"`
	}
	prof := engine.ActiveProfile()
	doc := struct {
		Experiment    string                `json:"experiment"`
		Title         string                `json:"title"`
		GOMAXPROCS    int                   `json:"gomaxprocs"`
		Host          calib.HostFingerprint `json:"host"`
		ProfileSource string                `json:"profile_source"`
		MinParallelN  int                   `json:"planner_min_parallel_n"`
		RepsPerSample int                   `json:"reps_per_sample"`
		Rows          []row                 `json:"rows"`
	}{
		Experiment:    "A4",
		Title:         "planner crossover: auto vs forced algorithms",
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Host:          calib.Fingerprint(),
		ProfileSource: prof.Source(),
		MinParallelN:  prof.MinParallelN,
		RepsPerSample: 3,
	}
	forced := []engine.Algorithm{engine.Linear, engine.Hopcroft, engine.NativeParallel}
	// The n-bracket straddles the *active* profile's crossover, so a
	// re-run under a fitted profile probes the planner exactly where its
	// decision now flips.
	ns := sizes(cfg,
		[]int{prof.MinParallelN / 4, prof.MinParallelN / 2, prof.MinParallelN, 2 * prof.MinParallelN, 4 * prof.MinParallelN},
		[]int{prof.MinParallelN / 2, prof.MinParallelN, 2 * prof.MinParallelN})
	best := func(req engine.Request, in coarsest.Instance) (engine.Outcome, int64) {
		var out engine.Outcome
		bestNS := int64(1) << 62
		for r := 0; r < doc.RepsPerSample; r++ {
			o, err := engine.Run(context.Background(), in, req, nil)
			if err != nil {
				return engine.Outcome{}, -1
			}
			if ns := int64(o.Timings.Solve); ns < bestNS {
				bestNS, out = ns, o
			}
		}
		return out, bestNS
	}
	for _, fam := range []string{"random-function", "permutation"} {
		for _, n := range ns {
			var wl workload.Instance
			if fam == "random-function" {
				wl = workload.RandomFunction(cfg.Seed, n, 3)
			} else {
				wl = workload.RandomPermutation(cfg.Seed, n, 3)
			}
			in := coarsest.Instance{F: wl.F, B: wl.B}
			auto, autoNS := best(engine.Request{Algorithm: engine.Auto}, in)
			r := row{
				Family:       fam,
				N:            n,
				AutoResolved: auto.Plan.Algorithm.String(),
				AutoWorkers:  auto.Plan.Workers,
				AutoNS:       autoNS,
				ForcedNS:     map[string]int64{},
			}
			for _, algo := range forced {
				out, forcedNS := best(engine.Request{Algorithm: algo}, in)
				if forcedNS < 0 || !coarsest.SamePartition(out.Labels, auto.Labels) {
					forcedNS = -1 // solver error or disagreement: poison the row visibly
				}
				r.ForcedNS[algo.String()] = forcedNS
			}
			doc.Rows = append(doc.Rows, r)
		}
	}
	enc := json.NewEncoder(cfg.Out)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

func intSlicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// a5Pool is a faithful miniature of sfcpd's per-request dispatch path
// (internal/server pool.go at its defaults: 2 workers on the linear
// queue, queue depth 8): a task allocation with a buffered result
// channel, a bounded queue send, a worker wakeup, and a result receive
// per request. The uncoalesced arm routes through it so the baseline
// pays exactly the dispatch glue the production pool path pays — no
// more (HTTP and caching are stripped from both arms), no less.
type a5Pool struct {
	q    chan *a5Task
	done chan struct{}
	wg   sync.WaitGroup
}

type a5Task struct {
	ctx  context.Context
	run  func() ([]int, error)
	resC chan a5TaskResult
}

type a5TaskResult struct {
	labels []int
	err    error
}

func newA5Pool(workers, depth int) *a5Pool {
	p := &a5Pool{q: make(chan *a5Task, depth), done: make(chan struct{})}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for {
				select {
				case <-p.done:
					return
				case t := <-p.q:
					if err := t.ctx.Err(); err != nil {
						t.resC <- a5TaskResult{err: err}
						continue
					}
					labels, err := t.run()
					t.resC <- a5TaskResult{labels: labels, err: err}
				}
			}
		}()
	}
	return p
}

func (p *a5Pool) submit(ctx context.Context, run func() ([]int, error)) ([]int, error) {
	t := &a5Task{ctx: ctx, run: run, resC: make(chan a5TaskResult, 1)}
	select {
	case p.q <- t:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.done:
		return nil, errors.New("bench: pool shut down")
	}
	select {
	case r := <-t.resC:
		return r.labels, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-p.done:
		return nil, errors.New("bench: pool shut down")
	}
}

func (p *a5Pool) close() {
	close(p.done)
	p.wg.Wait()
}

// A5Coalescing measures the coalescing micro-batch front door against
// per-request handling on its target regime: many concurrent small solves
// (well under engine.MinParallelN, so every plan lands on the sequential
// linear solver). The per-request arm pays what sfcpd's pool path pays
// per request — the planner's feature probe, plan construction, bounded
// worker-pool dispatch, and a scratch checkout; the coalesced arm
// accumulates requests in internal/batcher, plans each flushed batch
// once (no probes) and solves its members back-to-back under one shared
// scratch arena. Emits one JSON document (like A4) for BENCH_*.json
// trajectory tracking.
func A5Coalescing(cfg Config) {
	type row struct {
		N             int     `json:"n"`
		Requests      int     `json:"requests"`
		Concurrency   int     `json:"concurrency"`
		Distinct      int     `json:"distinct_instances"`
		UncoalescedNS int64   `json:"uncoalesced_ns"`
		CoalescedNS   int64   `json:"coalesced_ns"`
		Speedup       float64 `json:"speedup"`
		Flushes       int64   `json:"flushes"`
		AvgBatch      float64 `json:"avg_batch"`
		Agree         bool    `json:"agree"`
	}
	doc := struct {
		Experiment  string                `json:"experiment"`
		Title       string                `json:"title"`
		GOMAXPROCS  int                   `json:"gomaxprocs"`
		Host        calib.HostFingerprint `json:"host"`
		MaxWaitUS   int64                 `json:"batch_max_wait_us"`
		MaxSize     int                   `json:"batch_max_size"`
		Concurrency int                   `json:"concurrency"`
		Rows        []row                 `json:"rows"`
	}{
		Experiment:  "A5",
		Title:       "coalescing front door: micro-batched vs per-request small solves",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Host:        calib.Fingerprint(),
		MaxWaitUS:   1000,
		MaxSize:     64,
		Concurrency: 64,
	}
	requests := 10000
	if cfg.Quick {
		requests = 2000
	}
	ctx := context.Background()

	for _, n := range sizes(cfg, []int{16, 64, 256, 1024}, []int{16, 64}) {
		// A fixed pool of distinct instances keeps workload-generation out
		// of the timed region without letting one memoizable instance
		// dominate; neither arm caches, so reuse does not flatter either.
		distinct := 256
		if distinct > requests {
			distinct = requests
		}
		pool := make([]sfcp.Instance, distinct)
		want := make([][]int, distinct)
		for i := range pool {
			wl := workload.RandomFunction(cfg.Seed+int64(n)+int64(i), n, 3)
			pool[i] = sfcp.Instance{F: wl.F, B: wl.B}
			want[i] = coarsest.LinearSequential(coarsest.Instance{F: wl.F, B: wl.B})
		}

		// The in-loop check is exact slice equality, not SamePartition:
		// both arms resolve to the same canonical linear rename, and a
		// map-based equivalence check would add identical constant work to
		// both timed loops, squeezing the measured ratio toward 1.
		run := func(handle func(i int) ([]int, error)) (time.Duration, bool) {
			var wg sync.WaitGroup
			var agree atomic.Bool
			agree.Store(true)
			per := requests / doc.Concurrency
			t0 := time.Now()
			for c := 0; c < doc.Concurrency; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for j := 0; j < per; j++ {
						i := c*per + j
						labels, err := handle(i)
						if err != nil || !intSlicesEqual(labels, want[i%distinct]) {
							agree.Store(false)
						}
					}
				}(c)
			}
			wg.Wait()
			return time.Since(t0), agree.Load()
		}

		// Per-request arm: probe + plan on the caller, then bounded
		// worker-pool dispatch and a scratch checkout — the pool path's
		// per-request work with HTTP and caching stripped away (dispatch
		// sizing mirrors the server defaults: 2 workers, queue depth 8).
		perReq := sfcp.NewSolver(sfcp.Options{})
		reqPool := newA5Pool(2, 8)
		uncoHandle := func(i int) ([]int, error) {
			ins := pool[i%distinct]
			// The pool path reads the clock around both planning and
			// dispatch (the queue-vs-solve latency split every response
			// carries); the baseline pays the same two pairs per request.
			planStart := time.Now()
			plan, err := sfcp.PlanWith(ins, sfcp.Options{Algorithm: sfcp.AlgorithmAuto})
			planDur := time.Since(planStart)
			if err != nil {
				return nil, err
			}
			solveStart := time.Now()
			labels, err := reqPool.submit(ctx, func() ([]int, error) {
				res, err := perReq.SolvePlanned(ctx, ins, plan)
				if err != nil {
					return nil, err
				}
				res.Timings.Plan = planDur
				return res.Labels, nil
			})
			if time.Since(solveStart) < 0 {
				return nil, errors.New("bench: clock went backwards")
			}
			return labels, err
		}

		// Coalesced arm: the same traffic through the micro-batcher; one
		// batch plan (no probes) and one scratch arena per flush. The
		// instance staging is reused across flushes, like the server's.
		var flushes, members int64
		coSolver := sfcp.NewSolver(sfcp.Options{})
		var coStaging sync.Pool // *[]sfcp.Instance; flush slots run concurrently
		b := batcher.New(ctx, batcher.Config{
			MaxWait: time.Duration(doc.MaxWaitUS) * time.Microsecond,
			MaxSize: doc.MaxSize,
			Run: func(ctx context.Context, ms []batcher.Member, out []batcher.MemberResult) {
				ip, _ := coStaging.Get().(*[]sfcp.Instance)
				if ip == nil {
					ip = new([]sfcp.Instance)
				}
				instances := (*ip)[:0]
				for _, m := range ms {
					instances = append(instances, m.Ins)
				}
				defer func() {
					clear(instances)
					*ip = instances[:0]
					coStaging.Put(ip)
				}()
				plan, err := sfcp.PlanBatch(instances, sfcp.Options{Algorithm: sfcp.AlgorithmAuto})
				if err != nil {
					for i := range out {
						out[i].Err = err
					}
					return
				}
				results, errs := coSolver.SolveBatchPlanned(ctx, instances, plan)
				for i := range out {
					out[i].Res, out[i].Err = results[i], errs[i]
				}
			},
			Observe: func(reason string, n int, wait time.Duration) {
				atomic.AddInt64(&flushes, 1)
				atomic.AddInt64(&members, int64(n))
			},
		})
		coHandle := func(i int) ([]int, error) {
			out, err := b.Submit(ctx, pool[i%distinct], "")
			return out.Res.Labels, err
		}

		// Both arms repeat, pass-interleaved, and report their fastest
		// pass: min-of-reps sheds scheduler noise (one pass of 64 clients
		// over tiny solves is only milliseconds of work, well inside OS
		// jitter), and alternating the arms keeps a slow drift in machine
		// load from landing entirely on one side of the ratio. The GC runs
		// between passes so one pass's garbage never triggers a collection
		// inside the next one's timed region.
		reps := 9
		if cfg.Quick {
			reps = 3
		}
		uncoalesced, coalesced := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
		okU, okC := true, true
		for r := 0; r < reps; r++ {
			runtime.GC()
			d, o := run(uncoHandle)
			if d < uncoalesced {
				uncoalesced = d
			}
			okU = okU && o
			runtime.GC()
			d, o = run(coHandle)
			if d < coalesced {
				coalesced = d
			}
			okC = okC && o
		}
		reqPool.close()
		b.Close()

		r := row{
			N:             n,
			Requests:      requests,
			Concurrency:   doc.Concurrency,
			Distinct:      distinct,
			UncoalescedNS: int64(uncoalesced),
			CoalescedNS:   int64(coalesced),
			Speedup:       float64(uncoalesced) / float64(coalesced),
			Flushes:       flushes,
			Agree:         okU && okC,
		}
		if flushes > 0 {
			r.AvgBatch = float64(members) / float64(flushes)
		}
		doc.Rows = append(doc.Rows, r)
	}
	enc := json.NewEncoder(cfg.Out)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// A6Calibration runs the condensed calibration experiment (internal/calib)
// on this host and emits the fitted profile together with the crossover
// and worker-scaling curves it was read off — the BENCH_A6.json trajectory
// snapshot each perf PR checks in. The fit is budget-bounded; a truncated
// report says so rather than extrapolating.
func A6Calibration(cfg Config) {
	budget := 3 * time.Second
	if cfg.Quick {
		budget = 750 * time.Millisecond
	}
	rep, err := calib.Calibrate(context.Background(), calib.Options{Budget: budget, Seed: cfg.Seed})
	if err != nil {
		fmt.Fprintf(cfg.Out, "{\"experiment\":\"A6\",\"error\":%q}\n", err.Error())
		return
	}
	doc := struct {
		Experiment string `json:"experiment"`
		Title      string `json:"title"`
		BudgetMS   int64  `json:"budget_ms"`
		*calib.Report
	}{
		Experiment: "A6",
		Title:      "planner calibration: fitted profile and the measured curves behind it",
		BudgetMS:   budget.Milliseconds(),
		Report:     rep,
	}
	enc := json.NewEncoder(cfg.Out)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// RunOne executes one experiment with the process-global planner profile
// saved and restored around it. The profile is engine.SetProfile state
// shared by every experiment in the process (and by the -calibration-file
// flag), so an experiment that installs a fitted profile mid-run must not
// skew the plans of whatever runs after it — -exp order and -all must
// measure the same planner.
func RunOne(e Experiment, cfg Config) {
	prev := engine.InstalledProfile()
	defer engine.SetProfile(prev)
	e.Run(cfg)
}

// RunAll executes every experiment in order.
func RunAll(cfg Config) {
	for _, e := range All() {
		fmt.Fprintf(cfg.Out, "==== %s — %s ====\n", e.ID, e.Title)
		RunOne(e, cfg)
		fmt.Fprintln(cfg.Out)
	}
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
