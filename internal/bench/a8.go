// A8 measures the raw incremental machinery against the raw sequential
// solver; routing it through the engine would fold the planner's
// crossover decision into both arms.
//
//sfcpvet:ignore-file enginedispatch -- see above
package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"sfcp/internal/calib"
	"sfcp/internal/coarsest"
	"sfcp/internal/incr"
	"sfcp/internal/workload"
)

// A8IncrementalResolve measures what the incremental re-solve path buys:
// delta-apply latency against a from-scratch sequential solve of the
// edited instance, swept over instance size and delta size (edits land in
// distinct components, so the dirty fraction grows linearly with the edit
// count). The many-component DistinctCycles family is the incremental
// path's home regime — small deltas invalidate a small dirty region while
// the full solver always pays for all n elements. Emits one JSON document
// (like A4–A7) for BENCH_A8.json trajectory tracking; the single-edit
// rows at n >= 2^20 are the ones the acceptance gate reads.
func A8IncrementalResolve(cfg Config) {
	type row struct {
		N          int     `json:"n"`
		Components int     `json:"components"`
		Edits      int     `json:"edits"`
		DirtyNodes int     `json:"dirty_nodes"`
		DirtyFrac  float64 `json:"dirty_frac"`
		IncrNS     int64   `json:"incr_ns"`
		FullNS     int64   `json:"full_ns"`
		Speedup    float64 `json:"speedup"`
		Agree      bool    `json:"agree"`
	}
	doc := struct {
		Experiment string                `json:"experiment"`
		Title      string                `json:"title"`
		GOMAXPROCS int                   `json:"gomaxprocs"`
		Host       calib.HostFingerprint `json:"host"`
		CycleLen   int                   `json:"cycle_len"`
		Reps       int                   `json:"reps_per_sample"`
		Rows       []row                 `json:"rows"`
	}{
		Experiment: "A8",
		Title:      "incremental re-solve: delta-apply latency vs full re-solve, by delta size",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host:       calib.Fingerprint(),
		CycleLen:   256,
		Reps:       5,
	}
	fail := func(err error) {
		fmt.Fprintf(cfg.Out, "{\"experiment\":\"A8\",\"error\":%q}\n", err.Error())
	}
	if cfg.Quick {
		doc.Reps = 3
	}

	best := func(op func() error) (time.Duration, error) {
		bestDur := time.Duration(1<<63 - 1)
		for r := 0; r < doc.Reps; r++ {
			t0 := time.Now()
			if err := op(); err != nil {
				return 0, err
			}
			if d := time.Since(t0); d < bestDur {
				bestDur = d
			}
		}
		return bestDur, nil
	}

	for _, n := range sizes(cfg, []int{1 << 16, 1 << 18, 1 << 20}, []int{1 << 14, 1 << 16}) {
		k := n / doc.CycleLen
		wl := workload.DistinctCycles(cfg.Seed, k, doc.CycleLen, 3)
		ins := coarsest.Instance{F: wl.F, B: wl.B}
		st, err := incr.Build(ins)
		if err != nil {
			fail(err)
			return
		}
		var sc coarsest.Scratch
		for _, edits := range []int{1, 8, 64, k / 4} {
			if edits > k {
				continue
			}
			// One B-edit per distinct component: the dirty region is
			// exactly edits * CycleLen nodes. Re-applying an identical
			// already-applied delta is idempotent and costs the same
			// region recompute, so min-of-reps needs no state resets.
			delta := make([]incr.Edit, edits)
			for c := 0; c < edits; c++ {
				delta[c] = incr.Edit{Node: c * doc.CycleLen, SetB: true, B: 7}
			}
			var labels []int
			var info incr.Info
			incrDur, err := best(func() error {
				labels, info, err = st.ApplyDelta(delta)
				return err
			})
			if err != nil {
				fail(err)
				return
			}

			edited := coarsest.Instance{
				F: append([]int{}, ins.F...),
				B: append([]int{}, ins.B...),
			}
			for _, e := range delta {
				edited.B[e.Node] = e.B
			}
			var full []int
			fullDur, err := best(func() error {
				full = coarsest.LinearSequentialScratch(edited, &sc)
				return nil
			})
			if err != nil {
				fail(err)
				return
			}
			doc.Rows = append(doc.Rows, row{
				N:          n,
				Components: k,
				Edits:      edits,
				DirtyNodes: info.DirtyNodes,
				DirtyFrac:  info.DirtyFrac,
				IncrNS:     int64(incrDur),
				FullNS:     int64(fullDur),
				Speedup:    float64(fullDur) / float64(incrDur),
				Agree:      intSlicesEqual(labels, full),
			})
		}
	}
	enc := json.NewEncoder(cfg.Out)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}
