// Package batcher coalesces concurrent small solve requests into
// micro-batches: requests accumulate in a single collector goroutine and
// flush as one batch when the batch reaches a size cap, when a max-wait
// deadline expires, or — the adaptive group-commit path — as soon as the
// intake is idle while a flush slot is free, so batches grow exactly when
// flush capacity is the bottleneck and a lone request never stalls for
// company that is not coming. The caller's Run callback executes the
// whole batch (one plan, one scratch arena) and each submitter gets back
// its own member result plus the batch metadata — how many requests it
// shared a flush with, why the flush fired, and per-request
// queued/flushed/responded timestamps so queue wait and solve time stay
// separable.
//
// The package is deliberately lock-free in the sync.Mutex sense: all
// coordination is channels, so no lock is ever held across a solver
// call, and the collector's lifecycle context derives from the context
// the owner passes to New (both properties are enforced by sfcpvet's
// lockhold and ctxpath analyzers, which scope this package).
package batcher

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sfcp"
)

// ErrShutdown is reported by Submit when the batcher is closed (or its
// lifecycle context cancelled) before the request's batch completed.
var ErrShutdown = errors.New("batcher: shut down")

// Flush reasons, reported in Outcome.FlushReason and to Observe.
const (
	// FlushSize: the batch hit Config.MaxSize.
	FlushSize = "size"
	// FlushDeadline: Config.MaxWait expired since the batch's first member.
	FlushDeadline = "deadline"
	// FlushDrain: the intake went idle while a flush slot was free, so
	// waiting longer could only add latency, not coalescing.
	FlushDrain = "drain"
)

// Member is one coalesced request as the Run callback sees it. Ctx is the
// submitter's request context — Run implementations should skip members
// whose context is already dead rather than solving for an absent client.
// Key is an opaque caller tag (e.g. a result-cache key) carried through
// untouched.
type Member struct {
	Ctx context.Context
	Ins sfcp.Instance
	Key string
}

// MemberResult is one member's result from the Run callback, positional
// with the members slice.
type MemberResult struct {
	Res sfcp.Result
	Err error
}

// RunFunc executes one flushed batch: fill out[i] (zeroed on entry,
// positional with members) for every member — an untouched position is
// delivered as a successful zero Result. ctx is the batcher's lifecycle
// context (cancelled on Close). Both slices are owned by the batcher and
// recycled across flushes, so they must not be retained past the call
// (the Results placed in out are delivered by value and may be). It runs
// on a flush goroutine, never under any lock.
type RunFunc func(ctx context.Context, members []Member, out []MemberResult)

// Outcome is what one submitter gets back: its member result plus the
// batch-level metadata and the request's queue timestamps.
type Outcome struct {
	Res sfcp.Result
	Err error
	// Coalesced is the number of requests that shared this flush.
	Coalesced int
	// FlushReason is FlushSize, FlushDeadline or FlushDrain.
	FlushReason string
	// Queued, Flushed, Responded are the request's lifecycle timestamps:
	// submission, batch flush, and result delivery.
	Queued, Flushed, Responded time.Time
}

// QueueWait is the time the request spent coalescing before its batch
// flushed — the latency cost of batching, separable from solve time.
func (o Outcome) QueueWait() time.Duration { return o.Flushed.Sub(o.Queued) }

// Config configures a Batcher.
type Config struct {
	// MaxWait bounds how long the first request of a batch waits before
	// the batch flushes regardless of size (default 1ms).
	MaxWait time.Duration
	// MaxSize flushes the batch as soon as it has this many members
	// (default 64).
	MaxSize int
	// Concurrency bounds how many flushed batches execute at once while
	// the collector accumulates the next one (default GOMAXPROCS — the
	// parallelism actually available, so a free slot means spare solving
	// capacity and the drain path can fire).
	Concurrency int
	// Run executes a flushed batch. Required.
	Run RunFunc
	// Observe, if set, is called once per flush with the reason, the
	// member count and the summed per-member queue wait — the hook the
	// server uses to feed the sfcpd_batcher_* metric families.
	Observe func(reason string, members int, queueWait time.Duration)
}

func (c Config) withDefaults() Config {
	if c.MaxWait <= 0 {
		c.MaxWait = time.Millisecond
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 64
	}
	if c.Concurrency <= 0 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	return c
}

// item is one queued request: the member, the outcome slot the flush
// goroutine fills, and a zero-byte done signal (buffered, so flush
// goroutines never block on a departed submitter; the outcome travels in
// the item rather than through the channel to skip a struct copy).
type item struct {
	member Member
	queued time.Time
	out    Outcome
	done   chan struct{}
}

// itemPool recycles items (and their delivery channels) across Submit
// calls. An item is returned to the pool only after its submitter
// received the done signal: each item gets exactly one send, so a
// completed receive proves no other goroutine still touches it. Submits
// abandoned mid-flight (context cancelled, shutdown) leave their item to
// the GC.
var itemPool = sync.Pool{New: func() any {
	return &item{done: make(chan struct{}, 1)}
}}

// closingBit marks the sender gate shut; the bits below it count senders
// currently inside the enqueue window (between the gate check and their
// send completing).
const closingBit = 1 << 62

// flushBuf carries one flush's scratch slices — the members view handed
// to Run and the out slice Run fills — recycled across flushes so the
// steady state allocates nothing per batch.
type flushBuf struct {
	members []Member
	out     []MemberResult
}

// Batcher coalesces Submit calls into micro-batches. All coordination is
// channel-based; a single collector goroutine owns the accumulating
// batch, and flushes execute on bounded worker goroutines.
type Batcher struct {
	cfg    Config
	in     chan *item
	ctx    context.Context
	cancel context.CancelFunc
	sem    chan struct{}
	freed  chan struct{} // a flush slot was released; re-check the batch
	wg     sync.WaitGroup
	// senders gates the enqueue window so shutdown can quiesce it: once
	// the collector sets closingBit, new submits fail fast, and when the
	// count drains to zero every item that will ever be enqueued is on
	// the intake — which is what lets Submit wait on a bare done receive
	// (no lifecycle case): delivery is guaranteed, not raced.
	senders atomic.Int64
	bufs    sync.Pool // *flushBuf
	batches sync.Pool // *[]*item, accumulating-batch backing arrays
}

// New starts a Batcher whose lifetime is bounded by lifecycle: cancelling
// it (or calling Close) fails queued and future submits with ErrShutdown.
func New(lifecycle context.Context, cfg Config) *Batcher {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(lifecycle)
	b := &Batcher{
		cfg: cfg,
		// Buffered intake: a submitter under the cap enqueues and moves
		// straight to waiting on its outcome — one park per request, not
		// two. The buffer outsizes MaxSize so a full batch never blocks
		// its senders.
		in:     make(chan *item, 2*cfg.MaxSize),
		ctx:    ctx,
		cancel: cancel,
		sem:    make(chan struct{}, cfg.Concurrency),
		freed:  make(chan struct{}, 1),
	}
	b.wg.Add(1)
	go b.collect()
	return b
}

// Submit queues one request for coalescing and blocks until its batch
// completes, ctx is done, or the batcher shuts down. On success the
// returned error equals Outcome.Err (the member's own solve error —
// other members of the same batch fail independently).
func (b *Batcher) Submit(ctx context.Context, ins sfcp.Instance, key string) (Outcome, error) {
	// Enter the enqueue window; once shutdown closes the gate nothing new
	// reaches the intake, so the collector's final drain is really final.
	if b.senders.Add(1)&closingBit != 0 {
		b.senders.Add(-1)
		return Outcome{}, ErrShutdown
	}
	it := itemPool.Get().(*item)
	it.member = Member{Ctx: ctx, Ins: ins, Key: key}
	it.queued = time.Now()
	// Fast path: the intake buffer usually has room, and a nonblocking
	// send skips the full select machinery.
	select {
	case b.in <- it:
	default:
		select {
		case b.in <- it:
		case <-ctx.Done():
			b.senders.Add(-1)
			itemPool.Put(it)
			return Outcome{}, ctx.Err()
		case <-b.ctx.Done():
			b.senders.Add(-1)
			itemPool.Put(it)
			return Outcome{}, ErrShutdown
		}
	}
	b.senders.Add(-1)
	// Every enqueued item is settled — by its flush, or by the shutdown
	// drain (see collect) — so the wait needs no lifecycle case: a bare
	// receive when the caller's ctx cannot fire, a two-way select when it
	// can. Shutdown arrives through the item itself as ErrShutdown.
	if ctx.Done() == nil {
		<-it.done
		return it.deliver()
	}
	select {
	case <-it.done:
		return it.deliver()
	case <-ctx.Done():
		return Outcome{}, ctx.Err()
	}
}

// deliver reads the settled outcome and recycles the item (safe exactly
// because each item gets one done signal, and this receive consumed it).
func (it *item) deliver() (Outcome, error) {
	out := it.out
	it.member = Member{}
	it.out = Outcome{}
	itemPool.Put(it)
	return out, out.Err
}

// Close stops the batcher: queued requests fail with ErrShutdown,
// in-flight flushes are cancelled through the lifecycle context, and
// Close returns once the collector and all flush goroutines exit.
func (b *Batcher) Close() {
	b.cancel()
	b.wg.Wait()
}

// collect is the single accumulator goroutine: it owns the pending batch
// and the deadline timer, and hands full or expired batches to flush
// goroutines so the next batch accumulates while the previous one solves.
func (b *Batcher) collect() {
	defer b.wg.Done()
	var batch []*item
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	defer timer.Stop()
	for {
		select {
		case it := <-b.in:
			if len(batch) == 0 {
				timer.Reset(b.cfg.MaxWait)
				if batch == nil {
					// Reuse a flushed batch's backing array (execute returns
					// them to the pool) instead of growing a fresh one.
					if p, _ := b.batches.Get().(*[]*item); p != nil {
						batch = *p
					} else {
						batch = make([]*item, 0, b.cfg.MaxSize)
					}
				}
			}
			batch = append(batch, it)
			batch = b.scoop(batch)
			if len(batch) < b.cfg.MaxSize {
				// The rest of a concurrent burst may be runnable but not
				// yet at the intake — the first send wakes the collector
				// ahead of its peers, acutely so on a single-P runtime.
				// Yield once so they reach their sends, then scoop again
				// before judging the intake idle.
				runtime.Gosched()
				batch = b.scoop(batch)
			}
			if len(batch) >= b.cfg.MaxSize {
				timer.Stop()
				b.dispatch(batch, FlushSize)
				batch = nil
				continue
			}
			// Group commit: the intake is idle, so if a flush slot is
			// free, holding the batch buys no extra coalescing — only
			// latency. Batches therefore grow exactly while every slot is
			// busy (or arrivals outpace the scoop), and MaxWait is the
			// upper bound on that wait, not a fixed stall.
			select {
			case b.sem <- struct{}{}:
				timer.Stop()
				b.run(batch, FlushDrain)
				batch = nil
			default:
			}
		case <-b.freed:
			// A flush slot opened up. Same group-commit rule as on arrival:
			// if a batch is pending and a slot is (still) free, flush it.
			if b.ctx.Err() != nil || len(batch) == 0 {
				continue
			}
			batch = b.scoop(batch)
			if len(batch) >= b.cfg.MaxSize {
				timer.Stop()
				b.dispatch(batch, FlushSize)
				batch = nil
				continue
			}
			select {
			case b.sem <- struct{}{}:
				timer.Stop()
				b.run(batch, FlushDrain)
				batch = nil
			default:
			}
		case <-timer.C:
			if len(batch) > 0 {
				b.dispatch(batch, FlushDeadline)
				batch = nil
			}
		case <-b.ctx.Done():
			fail(batch)
			// Shut the sender gate, then wait out submitters already past
			// it: each is at most a bounded select away from completing or
			// abandoning its send (b.ctx is already done, so none can park
			// on a full intake). Once the window is empty, everything that
			// will ever be enqueued is on the intake, and draining it
			// settles the last outstanding done signals.
			b.senders.Or(closingBit)
			for b.senders.Load()&(closingBit-1) != 0 {
				runtime.Gosched()
			}
			for {
				select {
				case it := <-b.in:
					fail([]*item{it})
				default:
					return
				}
			}
		}
	}
}

// scoop drains every request already buffered on the intake into batch,
// so a concurrent burst lands in one batch.
func (b *Batcher) scoop(batch []*item) []*item {
	for len(batch) < b.cfg.MaxSize {
		select {
		case it := <-b.in:
			batch = append(batch, it)
		default:
			return batch
		}
	}
	return batch
}

// dispatch hands one flushed batch to a worker goroutine, waiting for a
// concurrency slot (backpressure: the collector pauses accumulating new
// batches when Concurrency flushes are already solving).
func (b *Batcher) dispatch(batch []*item, reason string) {
	select {
	case b.sem <- struct{}{}:
	case <-b.ctx.Done():
		fail(batch)
		return
	}
	b.run(batch, reason)
}

// run hands one batch (whose flush slot is already acquired) to a worker
// goroutine.
func (b *Batcher) run(batch []*item, reason string) {
	b.wg.Add(1)
	go func() {
		defer func() {
			<-b.sem
			// Wake the collector: capacity just freed, so a batch that was
			// accumulating only because every slot was busy can flush now
			// instead of waiting out its deadline.
			select {
			case b.freed <- struct{}{}:
			default:
			}
			b.wg.Done()
		}()
		b.execute(batch, reason)
	}()
}

// execute runs one batch through the caller's Run and delivers each
// member's outcome. It holds no lock and runs outside the collector, so
// neither submission nor accumulation ever blocks on a solve. The flush
// scratch (members view, out slice) and the batch's backing array are
// recycled, so a steady flush stream allocates nothing here.
func (b *Batcher) execute(batch []*item, reason string) {
	flushed := time.Now()
	fb, _ := b.bufs.Get().(*flushBuf)
	if fb == nil {
		fb = &flushBuf{}
	}
	members := fb.members[:0]
	var wait time.Duration
	for _, it := range batch {
		members = append(members, it.member)
		wait += flushed.Sub(it.queued)
	}
	out := fb.out
	if cap(out) < len(batch) {
		out = make([]MemberResult, len(batch))
	}
	out = out[:len(batch)]
	if b.cfg.Observe != nil {
		b.cfg.Observe(reason, len(batch), wait)
	}
	b.cfg.Run(b.ctx, members, out)
	responded := time.Now()
	for i, it := range batch {
		it.out = Outcome{
			Res:         out[i].Res,
			Err:         out[i].Err,
			Coalesced:   len(batch),
			FlushReason: reason,
			Queued:      it.queued,
			Flushed:     flushed,
			Responded:   responded,
		}
		it.done <- struct{}{}
	}
	// Drop every borrowed reference (contexts, instances, result slices)
	// before pooling; the delivered Outcomes hold their own copies.
	clear(members)
	clear(out)
	fb.members, fb.out = members, out[:0]
	b.bufs.Put(fb)
	clear(batch)
	batch = batch[:0]
	b.batches.Put(&batch)
}

// fail settles items with ErrShutdown (delivery never blocks: done is
// buffered).
func fail(batch []*item) {
	for _, it := range batch {
		it.out = Outcome{Err: ErrShutdown}
		it.done <- struct{}{}
	}
}
