package batcher

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sfcp"
)

// echoRun answers each member with NumClasses = len(member.Ins.F), so
// tests can check positional delivery without a real solver.
func echoRun(_ context.Context, members []Member, out []MemberResult) {
	for i, m := range members {
		out[i] = MemberResult{Res: sfcp.Result{NumClasses: len(m.Ins.F)}}
	}
}

func tinyInstance(n int) sfcp.Instance {
	f := make([]int, n)
	b := make([]int, n)
	for i := range f {
		f[i] = (i + 1) % n
	}
	return sfcp.Instance{F: f, B: b}
}

// parkGate occupies b's single flush slot with a one-member batch whose
// Run blocks until release is closed (or the batcher's lifecycle context
// ends, so Close can always join a parked flush). Subsequent submissions
// must then accumulate instead of drain-flushing one by one. The batcher
// must be built with Concurrency: 1 and a Run that routes the "park" key
// through parkGate.
func parkGate(ctx context.Context, members []Member, started chan<- struct{}, release <-chan struct{}) bool {
	if len(members) == 1 && members[0].Key == "park" {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return true
	}
	return false
}

func TestFlushOnSize(t *testing.T) {
	const size = 4
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	b := New(context.Background(), Config{
		MaxWait:     time.Hour, // deadline can never fire
		MaxSize:     size,
		Concurrency: 1,
		Run: func(ctx context.Context, members []Member, out []MemberResult) {
			parkGate(ctx, members, started, release)
			echoRun(nil, members, out)
		},
	})
	defer b.Close()

	// Occupy the only flush slot so the four submissions below coalesce
	// instead of drain-flushing individually.
	go b.Submit(context.Background(), tinyInstance(1), "park")
	<-started

	var wg sync.WaitGroup
	outs := make([]Outcome, size)
	errs := make([]error, size)
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = b.Submit(context.Background(), tinyInstance(i+1), "")
		}(i)
	}
	// Give the submissions time to reach the collector, then let the
	// parked batch go; the size-4 batch flushes behind it.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	for i := 0; i < size; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if outs[i].FlushReason != FlushSize {
			t.Errorf("submit %d: flush reason %q, want %q", i, outs[i].FlushReason, FlushSize)
		}
		if outs[i].Coalesced != size {
			t.Errorf("submit %d: coalesced %d, want %d", i, outs[i].Coalesced, size)
		}
		if outs[i].Res.NumClasses != i+1 {
			t.Errorf("submit %d: got member result %d, want %d (positional delivery broken)",
				i, outs[i].Res.NumClasses, i+1)
		}
		if outs[i].Queued.After(outs[i].Flushed) || outs[i].Flushed.After(outs[i].Responded) {
			t.Errorf("submit %d: timestamps out of order: queued=%v flushed=%v responded=%v",
				i, outs[i].Queued, outs[i].Flushed, outs[i].Responded)
		}
		if outs[i].QueueWait() < 0 {
			t.Errorf("submit %d: negative queue wait %v", i, outs[i].QueueWait())
		}
	}
}

func TestFlushOnDeadline(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	b := New(context.Background(), Config{
		MaxWait:     5 * time.Millisecond,
		MaxSize:     1 << 20, // a size flush can never fire
		Concurrency: 1,
		Run: func(ctx context.Context, members []Member, out []MemberResult) {
			parkGate(ctx, members, started, release)
			echoRun(nil, members, out)
		},
	})
	defer b.Close()

	// With the only slot parked, the submission below cannot drain-flush;
	// its batch expires on the deadline and dispatches once the slot
	// frees.
	go b.Submit(context.Background(), tinyInstance(1), "park")
	<-started

	outc := make(chan Outcome, 1)
	errc := make(chan error, 1)
	go func() {
		out, err := b.Submit(context.Background(), tinyInstance(3), "k")
		outc <- out
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // past the 5ms deadline
	close(release)
	out, err := <-outc, <-errc
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if out.FlushReason != FlushDeadline {
		t.Errorf("flush reason %q, want %q", out.FlushReason, FlushDeadline)
	}
	if out.Coalesced != 1 {
		t.Errorf("coalesced %d, want 1", out.Coalesced)
	}
	if wait := out.QueueWait(); wait < 5*time.Millisecond {
		t.Errorf("queue wait %v shorter than the %v deadline", wait, 5*time.Millisecond)
	}
}

// TestFlushOnDrain pins the adaptive group-commit path: a lone request
// with a free flush slot goes out immediately instead of stalling for
// MaxWait, and a concurrent burst behind a busy slot coalesces.
func TestFlushOnDrain(t *testing.T) {
	b := New(context.Background(), Config{
		MaxWait: time.Hour, // only the drain path can flush this
		MaxSize: 1 << 20,
		Run:     echoRun,
	})
	defer b.Close()

	start := time.Now()
	out, err := b.Submit(context.Background(), tinyInstance(3), "k")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if out.FlushReason != FlushDrain {
		t.Errorf("flush reason %q, want %q", out.FlushReason, FlushDrain)
	}
	if out.Coalesced != 1 {
		t.Errorf("coalesced %d, want 1", out.Coalesced)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("drain flush took %v; it must not wait out MaxWait", elapsed)
	}
}

func TestErrorIsolation(t *testing.T) {
	sentinel := errors.New("member 1 is bad")
	const size = 3
	b := New(context.Background(), Config{
		MaxWait: time.Hour,
		MaxSize: size,
		Run: func(_ context.Context, members []Member, out []MemberResult) {
			for i, m := range members {
				if m.Key == "bad" {
					out[i] = MemberResult{Err: sentinel}
					continue
				}
				out[i] = MemberResult{Res: sfcp.Result{NumClasses: len(m.Ins.F)}}
			}
		},
	})
	defer b.Close()

	keys := []string{"ok", "bad", "ok"}
	var wg sync.WaitGroup
	outs := make([]Outcome, size)
	errs := make([]error, size)
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = b.Submit(context.Background(), tinyInstance(i+1), keys[i])
		}(i)
	}
	wg.Wait()
	if !errors.Is(errs[1], sentinel) {
		t.Errorf("bad member error = %v, want %v", errs[1], sentinel)
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Errorf("good member %d failed alongside its bad sibling: %v", i, errs[i])
		}
		if outs[i].Res.NumClasses != i+1 {
			t.Errorf("good member %d: result %d, want %d", i, outs[i].Res.NumClasses, i+1)
		}
	}
}

func TestObserveHook(t *testing.T) {
	var reasons []string
	var members []int
	var mu sync.Mutex
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	b := New(context.Background(), Config{
		MaxWait:     time.Hour,
		MaxSize:     2,
		Concurrency: 1,
		Run: func(ctx context.Context, ms []Member, out []MemberResult) {
			parkGate(ctx, ms, started, release)
			echoRun(nil, ms, out)
		},
		Observe: func(reason string, n int, wait time.Duration) {
			mu.Lock()
			reasons = append(reasons, reason)
			members = append(members, n)
			mu.Unlock()
		},
	})
	defer b.Close()

	// The park request drain-flushes alone and holds the slot; the two
	// submissions behind it coalesce into one size flush.
	go b.Submit(context.Background(), tinyInstance(1), "park")
	<-started
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := b.Submit(context.Background(), tinyInstance(2), ""); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	want := []string{FlushDrain, FlushSize}
	if len(reasons) != 2 || reasons[0] != want[0] || reasons[1] != want[1] ||
		members[0] != 1 || members[1] != 2 {
		t.Errorf("observe saw reasons=%v members=%v, want %v of 1 and 2 members", reasons, members, want)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	b := New(context.Background(), Config{MaxWait: time.Hour, MaxSize: 8, Run: echoRun})
	b.Close()
	if _, err := b.Submit(context.Background(), tinyInstance(2), ""); !errors.Is(err, ErrShutdown) {
		t.Fatalf("submit after close: err = %v, want ErrShutdown", err)
	}
}

func TestCloseFailsQueued(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	b := New(context.Background(), Config{
		MaxWait:     time.Hour, // queued item can only settle via shutdown
		MaxSize:     1 << 20,
		Concurrency: 1,
		Run: func(ctx context.Context, members []Member, out []MemberResult) {
			parkGate(ctx, members, started, release)
			echoRun(nil, members, out)
		},
	})
	// Park the only flush slot so the next submission stays queued
	// instead of drain-flushing.
	go b.Submit(context.Background(), tinyInstance(1), "park")
	<-started
	errc := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), tinyInstance(2), "")
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	// Close with the slot still parked: the lifecycle cancel both fails
	// the queued item and unparks the flush goroutine, so Close joins.
	// (Unparking first would free the slot and the freed wakeup would
	// drain-flush the queued item instead of failing it.)
	b.Close()
	_ = release
	select {
	case err := <-errc:
		if !errors.Is(err, ErrShutdown) {
			t.Fatalf("queued submit settled with %v, want ErrShutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued submit never settled after Close")
	}
}

func TestLifecycleContextCancel(t *testing.T) {
	lifecycle, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	b := New(lifecycle, Config{
		MaxWait:     time.Hour,
		MaxSize:     1 << 20,
		Concurrency: 1,
		Run: func(ctx context.Context, members []Member, out []MemberResult) {
			parkGate(ctx, members, started, release)
			echoRun(nil, members, out)
		},
	})
	defer b.Close()
	defer close(release) // runs before Close: unpark so Close can join
	go b.Submit(context.Background(), tinyInstance(1), "park")
	<-started
	errc := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), tinyInstance(2), "")
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrShutdown) {
			t.Fatalf("submit settled with %v, want ErrShutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submit never settled after lifecycle cancel")
	}
}

func TestSubmitCtxCancelWhileQueued(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	b := New(context.Background(), Config{
		MaxWait:     time.Hour,
		MaxSize:     1 << 20,
		Concurrency: 1,
		Run: func(ctx context.Context, members []Member, out []MemberResult) {
			parkGate(ctx, members, started, release)
			echoRun(nil, members, out)
		},
	})
	defer b.Close()
	defer close(release) // runs before Close: unpark so Close can join
	go b.Submit(context.Background(), tinyInstance(1), "park")
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := b.Submit(ctx, tinyInstance(2), "")
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("submit settled with %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submit never settled after its context was cancelled")
	}
}

// TestConcurrentSubmits hammers the batcher from many goroutines (run
// under -race this is the batcher's data-race coverage) and checks every
// submitter gets its own positional result back.
func TestConcurrentSubmits(t *testing.T) {
	var flushes atomic.Int64
	b := New(context.Background(), Config{
		MaxWait: 200 * time.Microsecond,
		MaxSize: 16,
		Run: func(_ context.Context, members []Member, out []MemberResult) {
			flushes.Add(1)
			echoRun(nil, members, out)
		},
	})
	defer b.Close()

	const clients = 64
	const perClient = 20
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				n := 1 + (c*perClient+r)%32
				out, err := b.Submit(context.Background(), tinyInstance(n), fmt.Sprintf("%d/%d", c, r))
				if err != nil {
					t.Errorf("client %d req %d: %v", c, r, err)
					return
				}
				if out.Res.NumClasses != n {
					t.Errorf("client %d req %d: got %d, want %d (cross-delivery)", c, r, out.Res.NumClasses, n)
					return
				}
				if out.Coalesced < 1 || out.Coalesced > 16 {
					t.Errorf("client %d req %d: coalesced %d out of [1,16]", c, r, out.Coalesced)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	total := int64(clients * perClient)
	if f := flushes.Load(); f <= 0 || f > total {
		t.Fatalf("flushes = %d, want in (0, %d]", f, total)
	} else {
		t.Logf("coalesced %d requests into %d flushes (avg batch %.1f)", total, f, float64(total)/float64(f))
	}
}
