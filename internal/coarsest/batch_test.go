package coarsest

import (
	"math/rand"
	"testing"
)

// TestLinearSequentialBatchMatchesIndividual pins the contract the
// coalescing fast path rests on: solving members as one batch under a
// shared arena yields, per member, exactly the labels of solving that
// member alone.
func TestLinearSequentialBatchMatchesIndividual(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var sc Scratch
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(8)
		members := make([]Instance, k)
		for i := range members {
			n := rng.Intn(200) // occasionally zero
			members[i] = randomInstance(rng, n, 1+rng.Intn(4))
		}
		got, classes := LinearSequentialBatch(members, &sc)
		if len(got) != k || len(classes) != k {
			t.Fatalf("trial %d: %d results, %d class counts for %d members", trial, len(got), len(classes), k)
		}
		for i, m := range members {
			want := LinearSequential(m)
			if len(got[i]) != len(want) {
				t.Fatalf("trial %d member %d: %d labels, want %d", trial, i, len(got[i]), len(want))
			}
			if classes[i] != NumClasses(want) {
				t.Fatalf("trial %d member %d: batch reports %d classes, NumClasses says %d",
					trial, i, classes[i], NumClasses(want))
			}
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("trial %d member %d: fused labels %v != individual %v",
						trial, i, got[i], want)
				}
			}
		}
	}
}

// TestLinearSequentialBatchIdenticalMembers checks that repeated members
// reusing the same arena back-to-back do not perturb each other's
// canonical labels.
func TestLinearSequentialBatchIdenticalMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	ins := randomInstance(rng, 64, 3)
	got, _ := LinearSequentialBatch([]Instance{ins, ins, ins}, nil)
	want := LinearSequential(ins)
	for i := range got {
		if !SamePartition(got[i], want) {
			t.Fatalf("member %d: %v != %v", i, got[i], want)
		}
	}
}

func TestLinearSequentialBatchEmpty(t *testing.T) {
	if got, _ := LinearSequentialBatch(nil, nil); len(got) != 0 {
		t.Fatalf("nil batch: %v", got)
	}
	got, classes := LinearSequentialBatch([]Instance{{F: []int{}, B: []int{}}}, nil)
	if len(got) != 1 || len(got[0]) != 0 || classes[0] != 0 {
		t.Fatalf("empty member: %v classes %v", got, classes)
	}
}
