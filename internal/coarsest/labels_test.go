package coarsest

import (
	"testing"
)

// denseLabels builds a worst-case-dense labeling: n elements, n/4 classes,
// labels all inside [0, n) so the slice-backed fast path must carry every
// element.
func denseLabels(n int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = (i * 7) % (n/4 + 1)
	}
	return labels
}

// sparseLabels spreads labels far outside [0, n) to force the map fallback.
func sparseLabels(n int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = (i%13)*1_000_003 + n
	}
	return labels
}

func TestNumClassesDenseAndSparseAgree(t *testing.T) {
	ref := func(labels []int) int {
		seen := map[int]struct{}{}
		for _, l := range labels {
			seen[l] = struct{}{}
		}
		return len(seen)
	}
	cases := [][]int{
		nil,
		{},
		{0},
		{5}, // single out-of-range label
		{0, 0, 0},
		{0, 1, 2, 1, 0},
		{2, 2, 9, 9, 2}, // 9 out of range for n=5
		{-3, 0, -3, 1},  // negative labels take the sparse path
		denseLabels(1000),
		sparseLabels(1000),
		append(denseLabels(100), sparseLabels(100)...), // mixed
	}
	for i, labels := range cases {
		if got, want := NumClasses(labels), ref(labels); got != want {
			t.Errorf("case %d: NumClasses = %d, want %d", i, got, want)
		}
	}
}

func TestNormalizeLabelsDenseAndSparseAgree(t *testing.T) {
	ref := func(labels []int) []int {
		out := make([]int, len(labels))
		next := 0
		seen := make(map[int]int, len(labels))
		for i, l := range labels {
			id, ok := seen[l]
			if !ok {
				id = next
				seen[l] = id
				next++
			}
			out[i] = id
		}
		return out
	}
	cases := [][]int{
		{},
		{0},
		{7, 7, 7},
		{3, 1, 4, 1, 5, 9, 2, 6}, // 9 out of range for n=8
		{-1, 5, -1, 0, 5},
		denseLabels(500),
		sparseLabels(500),
		append(denseLabels(64), sparseLabels(64)...),
	}
	for i, labels := range cases {
		got, want := NormalizeLabels(labels), ref(labels)
		if len(got) != len(want) {
			t.Fatalf("case %d: length %d, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Errorf("case %d: [%d] = %d, want %d", i, j, got[j], want[j])
				break
			}
		}
	}
}

// TestLabelsHotPathAllocs pins the allocation budget of the per-solve hot
// path: dense labels must never allocate a map — NumClasses allocates
// exactly its seen slice, NormalizeLabels its output and id table.
func TestLabelsHotPathAllocs(t *testing.T) {
	labels := denseLabels(4096)
	if got := testing.AllocsPerRun(20, func() { NumClasses(labels) }); got > 1 {
		t.Errorf("NumClasses(dense): %.1f allocs/op, want <= 1", got)
	}
	if got := testing.AllocsPerRun(20, func() { NormalizeLabels(labels) }); got > 2 {
		t.Errorf("NormalizeLabels(dense): %.1f allocs/op, want <= 2", got)
	}
}

func BenchmarkNumClassesDense(b *testing.B) {
	labels := denseLabels(1 << 16)
	b.ReportAllocs()
	b.SetBytes(int64(len(labels) * 8))
	for i := 0; i < b.N; i++ {
		NumClasses(labels)
	}
}

func BenchmarkNumClassesSparse(b *testing.B) {
	labels := sparseLabels(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NumClasses(labels)
	}
}

func BenchmarkNormalizeLabelsDense(b *testing.B) {
	labels := denseLabels(1 << 16)
	b.ReportAllocs()
	b.SetBytes(int64(len(labels) * 8))
	for i := 0; i < b.N; i++ {
		NormalizeLabels(labels)
	}
}
