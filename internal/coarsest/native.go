package coarsest

import (
	"context"
	"math/bits"

	"sync/atomic"

	"sfcp/internal/circ"
	"sfcp/internal/par"
)

// Scratch holds the working buffers of NativeParallel and
// LinearSequentialScratch so repeated solves (batch serving, benchmark
// loops) reuse one arena instead of reallocating ~13 n-sized slices per
// call. A Scratch is not safe for concurrent use; callers wanting
// concurrency keep one per worker (e.g. via sync.Pool). The zero value
// is ready to use.
type Scratch struct {
	i32                          [][]int32
	i64                          [][]int64
	bools                        [][]bool
	ints                         [][]int
	i8                           [][]int8
	ni32, ni64, nbool, nint, ni8 int

	// Linear-solver dictionaries, reused across calls so the per-call cost
	// is a clear (proportional to the previous solve's entries) instead of
	// fresh bucket allocation.
	canonCls  map[string]int // canonical cycle string -> class
	pairCodes map[int64]int  // fallback pair coder when B is label-rich
	bRename   map[int]int    // fallback dense rename for huge B values
	key       []byte         // canonical-string key build buffer
	// pairArr is the fast pair coder: indexed parentCode*L + bclass, value
	// code+1. It is kept all-zero BETWEEN solves by undoing the touched
	// entries (recorded in pairTouched) at the end of each solve, so a new
	// solve never pays an O(len) clear.
	pairArr     []int
	pairTouched []int
}

func (s *Scratch) reset() {
	s.ni32, s.ni64, s.nbool, s.nint, s.ni8 = 0, 0, 0, 0, 0
	clear(s.canonCls)
	clear(s.pairCodes)
	clear(s.bRename)
}

// bufI32 hands out the next zeroed int32 buffer of length n, growing the
// arena on first use (and whenever n outgrows a stored buffer).
func (s *Scratch) bufI32(n int) []int32 {
	if s.ni32 == len(s.i32) {
		s.i32 = append(s.i32, make([]int32, n))
	} else if cap(s.i32[s.ni32]) < n {
		s.i32[s.ni32] = make([]int32, n)
	}
	buf := s.i32[s.ni32][:n]
	clear(buf)
	s.ni32++
	return buf
}

func (s *Scratch) bufI64(n int) []int64 {
	if s.ni64 == len(s.i64) {
		s.i64 = append(s.i64, make([]int64, n))
	} else if cap(s.i64[s.ni64]) < n {
		s.i64[s.ni64] = make([]int64, n)
	}
	buf := s.i64[s.ni64][:n]
	clear(buf)
	s.ni64++
	return buf
}

func (s *Scratch) bufBool(n int) []bool {
	if s.nbool == len(s.bools) {
		s.bools = append(s.bools, make([]bool, n))
	} else if cap(s.bools[s.nbool]) < n {
		s.bools[s.nbool] = make([]bool, n)
	}
	buf := s.bools[s.nbool][:n]
	clear(buf)
	s.nbool++
	return buf
}

func (s *Scratch) bufInt(n int) []int {
	buf := s.bufIntRaw(n)
	clear(buf)
	return buf
}

// bufIntRaw is bufInt without the zeroing pass — for buffers that are
// fully written before they are read, where the clear is pure overhead on
// the small-solve hot path.
func (s *Scratch) bufIntRaw(n int) []int {
	if s.nint == len(s.ints) {
		s.ints = append(s.ints, make([]int, n))
	} else if cap(s.ints[s.nint]) < n {
		s.ints[s.nint] = make([]int, n)
	}
	buf := s.ints[s.nint][:n]
	s.nint++
	return buf
}

func (s *Scratch) bufI8(n int) []int8 {
	if s.ni8 == len(s.i8) {
		s.i8 = append(s.i8, make([]int8, n))
	} else if cap(s.i8[s.ni8]) < n {
		s.i8[s.ni8] = make([]int8, n)
	}
	buf := s.i8[s.ni8][:n]
	clear(buf)
	s.ni8++
	return buf
}

// NativeParallel solves the coarsest partition problem with plain
// goroutines on real cores — the engineering counterpart of ParallelPRAM
// used for wall-clock measurements (experiment E8). Structure discovery
// uses parallel pointer doubling (O(n log n) work, but wide vectorizable
// passes), cycle canonization runs one goroutine pool over the cycles, and
// the forest is labeled by parallel code doubling through a sharded
// concurrent dictionary. Output equals the other solvers'.
func NativeParallel(ins Instance, workers int) []int {
	return NativeParallelScratch(ins, workers, nil)
}

// NativeParallelScratch is NativeParallel with caller-provided scratch
// buffers; sc may be nil (a fresh arena is used). Only the returned labels
// escape — every internal vector comes from sc.
func NativeParallelScratch(ins Instance, workers int, sc *Scratch) []int {
	labels, _ := NativeParallelCtx(context.Background(), ins, workers, sc)
	return labels
}

// NativeParallelCtx is NativeParallelScratch with cooperative cancellation:
// ctx is polled between refinement rounds (every pointer-doubling span and
// code-doubling iteration), so a cancelled solve returns ctx.Err() within
// one O(n) round instead of running minutes to a discarded answer. The
// scratch arena is left reusable on either path.
func NativeParallelCtx(ctx context.Context, ins Instance, workers int, sc *Scratch) ([]int, error) {
	n := len(ins.F)
	if n == 0 {
		return []int{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.reset()
	workers = par.Workers(workers)
	f, b := ins.F, ins.B

	// Phase 1: cycle nodes = the image of f^N for any N >= n, found by
	// parallel pointer doubling.
	g := sc.bufI32(n)
	tmp := sc.bufI32(n)
	par.For(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g[i] = int32(f[i])
		}
	})
	for span := 1; span < n; span <<= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		par.For(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				tmp[i] = g[g[i]]
			}
		})
		g, tmp = tmp, g
	}
	onCycle := sc.bufI32(n)
	par.For(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.StoreInt32(&onCycle[g[i]], 1)
		}
	})

	// Phase 2: tree roots and levels by doubling with distance carrying.
	jump := sc.bufI32(n)
	dist := sc.bufI32(n)
	jtmp := sc.bufI32(n)
	dtmp := sc.bufI32(n)
	par.For(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if onCycle[i] != 0 {
				jump[i] = int32(i)
				dist[i] = 0
			} else {
				jump[i] = int32(f[i])
				dist[i] = 1
			}
		}
	})
	for span := 1; span < n; span <<= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		par.For(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				j := jump[i]
				jtmp[i] = jump[j]
				dtmp[i] = dist[i] + dist[j]
			}
		})
		jump, jtmp = jtmp, jump
		dist, dtmp = dtmp, dist
	}
	root, level := jump, dist // root[x] = cycle entry; level[x] = distance

	// Phase 3: enumerate cycles (cheap sequential pass over cycle nodes),
	// then canonize every cycle in parallel.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var cycles [][]int
	rankOf := sc.bufI32(n)
	cycleID := sc.bufI32(n)
	seen := sc.bufBool(n)
	for s := 0; s < n; s++ {
		if onCycle[s] == 0 || seen[s] {
			continue
		}
		id := int32(len(cycles))
		var cyc []int
		x := s
		for !seen[x] {
			seen[x] = true
			rankOf[x] = int32(len(cyc))
			cycleID[x] = id
			cyc = append(cyc, x)
			x = f[x]
		}
		cycles = append(cycles, cyc)
	}
	k := len(cycles)

	type cycMeta struct {
		period int
		msp    int
		class  int32
	}
	meta := make([]cycMeta, k)
	canonKeys := make([]string, k)
	par.For(workers, k, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			cyc := cycles[ci]
			bs := make([]int, len(cyc))
			for i, y := range cyc {
				bs[i] = b[y]
			}
			p := circ.SmallestRepeatingPrefix(bs)
			msp := circ.BoothMSP(bs[:p])
			canon := make([]int, p)
			for i := 0; i < p; i++ {
				canon[i] = bs[(msp+i)%p]
			}
			meta[ci] = cycMeta{period: p, msp: msp}
			canonKeys[ci] = intsKey(canon)
		}
	})
	classOf := map[string]int32{}
	for ci := 0; ci < k; ci++ {
		cls, ok := classOf[canonKeys[ci]]
		if !ok {
			cls = int32(len(classOf))
			classOf[canonKeys[ci]] = cls
		}
		meta[ci].class = cls
	}

	// Provisional codes, all drawn from one shared dictionary. The
	// dictionary's codes are globally injective per key, so composite keys
	// built from codes are semantically sound; raw leaf atoms (classes,
	// offsets, B-labels) enter through a unique NEGATIVE role tag each, so
	// they can never collide with internal code-pair keys (codes are
	// non-negative).
	dict := par.NewDict(2 * n)
	const (
		tagClass  = -1
		tagOffset = -2
		tagB      = -3
		tagAnchor = -4
		tagFinalQ = -5
		tagFinalU = -6
	)
	code := sc.bufI64(n)
	par.For(workers, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if onCycle[x] == 0 {
				continue
			}
			m := meta[cycleID[x]]
			off := (int(rankOf[x]) - m.msp) % m.period
			if off < 0 {
				off += m.period
			}
			code[x] = dict.Code(dict.Code(int64(m.class), tagClass), dict.Code(int64(off), tagOffset))
		}
	})

	// Phase 4: Lemma 4.1 marking. matches[x] for tree nodes; then OR of
	// mismatches along the tree path by doubling.
	bad := sc.bufI32(n)
	correspQ := sc.bufI64(n)
	par.For(workers, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if onCycle[x] != 0 {
				correspQ[x] = code[x]
				continue
			}
			r := int(root[x])
			cyc := cycles[cycleID[r]]
			kLen := len(cyc)
			cr := (int(rankOf[r]) - int(level[x])) % kLen
			if cr < 0 {
				cr += kLen
			}
			node := cyc[cr]
			correspQ[x] = code[node]
			if b[x] != b[node] {
				bad[x] = 1
			}
		}
	})
	// OR-doubling along tree parents (cycle nodes are fixpoints, bad=0).
	jb := sc.bufI32(n)
	jbTmp := sc.bufI32(n)
	badTmp := sc.bufI32(n)
	par.For(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if onCycle[i] != 0 {
				jb[i] = int32(i)
			} else {
				jb[i] = int32(f[i])
			}
		}
	})
	maxLevel := int32(0)
	for i := 0; i < n; i++ {
		if level[i] > maxLevel {
			maxLevel = level[i]
		}
	}
	for span := 1; span <= int(maxLevel); span <<= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		par.For(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				j := jb[i]
				badTmp[i] = bad[i] | bad[j]
				jbTmp[i] = jb[j]
			}
		})
		bad, badTmp = badTmp, bad
		jb, jbTmp = jbTmp, jb
	}
	labeled := sc.bufBool(n)
	par.For(workers, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			labeled[x] = onCycle[x] != 0 || bad[x] == 0
		}
	})

	// Phase 5: Lemma 4.2 coding for unmarked nodes by code doubling.
	pcode := sc.bufI64(n)
	pj := sc.bufI32(n)
	pcTmp := sc.bufI64(n)
	pjTmp := sc.bufI32(n)
	par.For(workers, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if labeled[x] {
				pcode[x] = dict.Code(correspQ[x], tagAnchor)
				pj[x] = int32(x)
			} else {
				pcode[x] = dict.Code(int64(b[x]), tagB)
				pj[x] = int32(f[x])
			}
			// Note: Code(v, negativeTag) keys cannot collide with the
			// iteration keys Code(code, code) below because dictionary
			// codes are non-negative.
		}
	})
	iters := bits.Len(uint(maxLevel+1)) + 1
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		par.For(workers, n, func(lo, hi int) {
			for x := lo; x < hi; x++ {
				if labeled[x] {
					pcTmp[x] = pcode[x]
					pjTmp[x] = pj[x]
					continue
				}
				j := pj[x]
				pcTmp[x] = dict.Code(pcode[x], pcode[j])
				pjTmp[x] = pj[j]
			}
		})
		pcode, pcTmp = pcTmp, pcode
		pj, pjTmp = pjTmp, pj
	}

	// Final keys and dense renaming.
	keys := sc.bufI64(n)
	par.For(workers, n, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			if labeled[x] {
				keys[x] = dict.Code(correspQ[x], tagFinalQ)
			} else {
				keys[x] = dict.Code(pcode[x], tagFinalU)
			}
		}
	})
	labels := make([]int, n)
	rename := make(map[int64]int, 64)
	for x := 0; x < n; x++ {
		id, ok := rename[keys[x]]
		if !ok {
			id = len(rename)
			rename[keys[x]] = id
		}
		labels[x] = id
	}
	return labels, nil
}
