package coarsest

import (
	"math/bits"

	"sfcp/internal/intsort"
	"sfcp/internal/pram"
)

// ChoHuynhPRAM is the remaining prior-art baseline from the paper's
// introduction: Cho & Huynh (Inform. Process. Lett. 42, 1992) solve the
// problem in O(log n) time with O(n^2) operations on the CREW PRAM (O(n^3)
// on the EREW). The idea is brute-force pairwise testing: by Lemma 2.1(ii),
// x ≡ y iff B[f^i(x)] = B[f^i(y)] for i = 0..n, which each of the n^2
// pairs checks directly. We build the iterate labels by pointer doubling
// (keeping a fingerprint of the B-trace instead of the n x n iterate table)
// and then compare all pairs; the quadratic memory/work makes it usable
// only for modest n, which is exactly the paper's point.
//
// Implementation note: comparing the full traces pairwise in O(1) time per
// pair uses the doubled trace codes; codes are built with the
// concurrent-write dictionary so the machine model is Arbitrary CRCW here
// (the original achieves CREW with more machinery). Work remains Theta(n^2)
// from the pairwise phase, which dominates and is what E7 measures.
func ChoHuynhPRAM(ins Instance, opts ParallelOptions) ParallelResult {
	n := len(ins.F)
	if n == 0 {
		return ParallelResult{Labels: []int{}}
	}
	var machineOpts []pram.Option
	if opts.Workers > 0 {
		machineOpts = append(machineOpts, pram.WithWorkers(opts.Workers))
	}
	if opts.Seed != 0 {
		machineOpts = append(machineOpts, pram.WithSeed(opts.Seed))
	}
	m := pram.New(opts.Model, machineOpts...)

	fArr := m.NewArrayFromInts(ins.F)
	trace := m.NewArrayFromInts(NormalizeLabels(ins.B))
	m.ResetStats()

	// Doubling: trace[x] encodes (B[x], B[f(x)], ..., B[f^(2^t-1)(x)]).
	jump := m.NewArray(n)
	pram.Copy(m, jump, fArr)
	for t := 0; t <= bits.Len(uint(n)); t++ {
		at := m.NewArray(n)
		pram.Gather(m, at, trace, jump)
		trace = pram.PairCode(m, trace, at)
		next := m.NewArray(n)
		m.ParDo(n, func(c *pram.Ctx, p int) {
			c.Write(next, p, c.Read(jump, int(c.Read(jump, p))))
		})
		jump = next
	}

	// Pairwise phase: the Cho–Huynh Theta(n^2) comparison matrix; each
	// row's first equal column is its representative.
	eq := m.NewArray(n * n)
	m.ParDo(n*n, func(c *pram.Ctx, p int) {
		i, j := p/n, p%n
		if c.Read(trace, i) == c.Read(trace, j) {
			c.Write(eq, p, 1)
		} else {
			c.Write(eq, p, 0)
		}
	})
	rep := pram.SegmentedFirstOne(m, eq, n)
	perm := intsort.SortPRAM(m, rep, int64(n), opts.Sort)
	ranks, distinct := intsort.RankDistinct(m, rep, perm, 0)

	out := NormalizeLabels(ranks.Ints())
	return ParallelResult{Labels: out, NumClasses: int(distinct), Stats: m.Stats()}
}
