package coarsest

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperExample22 is Example 2.2 of JáJá & Ryu converted to 0-based
// indexing: A_f[1..16] = [2,4,6,8,10,12,1,3,5,7,9,11,14,15,16,13] and
// A_B[1..16] = [1,2,1,1,2,2,3,3,1,1,3,1,1,2,1,3]; the expected output is
// A_Q[1..16] = [1,2,1,3,2,2,4,4,1,3,4,3,1,2,3,4] (up to renaming).
func paperExample22() (Instance, []int) {
	af := []int{2, 4, 6, 8, 10, 12, 1, 3, 5, 7, 9, 11, 14, 15, 16, 13}
	ab := []int{1, 2, 1, 1, 2, 2, 3, 3, 1, 1, 3, 1, 1, 2, 1, 3}
	aq := []int{1, 2, 1, 3, 2, 2, 4, 4, 1, 3, 4, 3, 1, 2, 3, 4}
	f := make([]int, 16)
	for i, v := range af {
		f[i] = v - 1
	}
	return Instance{F: f, B: ab}, aq
}

func sequentialSolvers() map[string]func(Instance) []int {
	return map[string]func(Instance) []int{
		"moore":    Moore,
		"hopcroft": Hopcroft,
		"linear":   LinearSequential,
	}
}

func TestValidate(t *testing.T) {
	good := Instance{F: []int{1, 0}, B: []int{0, 0}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := []Instance{
		{F: []int{1}, B: []int{0, 0}},
		{F: []int{2, 0}, B: []int{0, 0}},
		{F: []int{-1, 0}, B: []int{0, 0}},
		{F: []int{1, 0}, B: []int{0, -3}},
	}
	for i, ins := range bad {
		if err := ins.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestNormalizeLabels(t *testing.T) {
	got := NormalizeLabels([]int{7, 7, 3, 7, 9, 3})
	want := []int{0, 0, 1, 0, 2, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NormalizeLabels = %v, want %v", got, want)
		}
	}
	if len(NormalizeLabels(nil)) != 0 {
		t.Fatal("empty normalize")
	}
}

func TestSamePartition(t *testing.T) {
	if !SamePartition([]int{0, 1, 0}, []int{5, 2, 5}) {
		t.Error("equivalent partitions rejected")
	}
	if SamePartition([]int{0, 1, 0}, []int{5, 2, 2}) {
		t.Error("different partitions accepted")
	}
	if SamePartition([]int{0, 0, 1}, []int{0, 1, 1}) {
		t.Error("different partitions accepted (reverse map)")
	}
	if SamePartition([]int{0}, []int{0, 1}) {
		t.Error("length mismatch accepted")
	}
}

func TestPaperExample22AllSequential(t *testing.T) {
	ins, aq := paperExample22()
	for name, solve := range sequentialSolvers() {
		got := solve(ins)
		if !SamePartition(got, aq) {
			t.Errorf("%s: labels %v not equivalent to the paper's A_Q %v", name, got, aq)
		}
		if NumClasses(got) != 4 {
			t.Errorf("%s: %d classes, want 4", name, NumClasses(got))
		}
	}
}

func TestPaperExample22SpecificFacts(t *testing.T) {
	// "nodes 1, 3 and 13 will have the same Q-label, and nodes 1 and 4
	// cannot have the same Q-label" (0-based: 0, 2, 12 share; 0 vs 3 differ).
	ins, _ := paperExample22()
	q := Moore(ins)
	if q[0] != q[2] || q[0] != q[12] {
		t.Errorf("nodes 1,3,13 should share a label: got %d,%d,%d", q[0], q[2], q[12])
	}
	if q[0] == q[3] {
		t.Errorf("nodes 1 and 4 must differ: both %d", q[0])
	}
}

func TestSolversAgreeSmallShapes(t *testing.T) {
	cases := []Instance{
		{F: []int{0}, B: []int{0}},
		{F: []int{1, 0}, B: []int{0, 0}},
		{F: []int{1, 0}, B: []int{0, 1}},
		{F: []int{0, 0, 0}, B: []int{0, 1, 1}},
		{F: []int{1, 2, 0, 0, 3}, B: []int{0, 0, 0, 0, 0}},
		{F: []int{1, 2, 0, 0, 3}, B: []int{0, 1, 0, 1, 0}},
		{F: []int{3, 3, 3, 3}, B: []int{1, 1, 1, 0}},
		{F: []int{0, 0, 1, 1, 2, 2, 3, 3}, B: []int{0, 0, 0, 0, 0, 0, 0, 1}},
	}
	for _, ins := range cases {
		want := Moore(ins)
		for name, solve := range sequentialSolvers() {
			got := solve(ins)
			if !SamePartition(got, want) {
				t.Errorf("%s on F=%v B=%v: got %v, want %v", name, ins.F, ins.B, got, want)
			}
		}
	}
}

func randomInstance(rng *rand.Rand, n, blocks int) Instance {
	f := make([]int, n)
	b := make([]int, n)
	for i := range f {
		f[i] = rng.Intn(n)
		b[i] = rng.Intn(blocks)
	}
	return Instance{F: f, B: b}
}

func permutationInstance(rng *rand.Rand, n, blocks int) Instance {
	f := rng.Perm(n)
	b := make([]int, n)
	for i := range b {
		b[i] = rng.Intn(blocks)
	}
	return Instance{F: f, B: b}
}

func TestSolversAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(60)
		ins := randomInstance(rng, n, 1+rng.Intn(4))
		want := Moore(ins)
		for name, solve := range sequentialSolvers() {
			if got := solve(ins); !SamePartition(got, want) {
				t.Fatalf("%s on F=%v B=%v: got %v, want %v", name, ins.F, ins.B, got, want)
			}
		}
	}
}

func TestSolversAgreeOnPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(48)
		ins := permutationInstance(rng, n, 1+rng.Intn(3))
		want := Moore(ins)
		for name, solve := range sequentialSolvers() {
			if got := solve(ins); !SamePartition(got, want) {
				t.Fatalf("%s on perm F=%v B=%v: got %v, want %v", name, ins.F, ins.B, got, want)
			}
		}
	}
}

func TestSolversDeepChain(t *testing.T) {
	// Long path into a self loop with alternating labels.
	n := 2000
	f := make([]int, n)
	b := make([]int, n)
	f[0] = 0
	for i := 1; i < n; i++ {
		f[i] = i - 1
		b[i] = i % 2
	}
	ins := Instance{F: f, B: b}
	want := Hopcroft(ins)
	for name, solve := range sequentialSolvers() {
		if got := solve(ins); !SamePartition(got, want) {
			t.Fatalf("%s wrong on deep chain", name)
		}
	}
}

func TestSolversSingleBlockPermutationHasPeriodClasses(t *testing.T) {
	// A single cycle with uniform B collapses to one class.
	n := 12
	f := make([]int, n)
	for i := range f {
		f[i] = (i + 1) % n
	}
	ins := Instance{F: f, B: make([]int, n)}
	for name, solve := range sequentialSolvers() {
		got := solve(ins)
		if NumClasses(got) != 1 {
			t.Errorf("%s: uniform cycle should have 1 class, got %d", name, NumClasses(got))
		}
	}
}

func TestExample31Classes(t *testing.T) {
	// Example 3.1 continues Example 2.2: C0={1,3,9}, C1={2,6,5},
	// C2={4,12,10}, C3={8,11,7}, D0={13}, D1={14}, D2={15}, D3={16}, and
	// Q_i+1 = Ci ∪ Di. Verify with the solvers (0-based).
	ins, _ := paperExample22()
	q := Moore(ins)
	groups := [][]int{
		{1, 3, 9, 13},   // C0 ∪ D0
		{2, 6, 5, 14},   // C1 ∪ D1
		{4, 12, 10, 15}, // C2 ∪ D2
		{8, 11, 7, 16},  // C3 ∪ D3
	}
	for gi, g := range groups {
		for _, node := range g[1:] {
			if q[node-1] != q[g[0]-1] {
				t.Errorf("group %d: node %d label %d != node %d label %d",
					gi, node, q[node-1], g[0], q[g[0]-1])
			}
		}
	}
	for gi := 1; gi < len(groups); gi++ {
		if q[groups[gi][0]-1] == q[groups[0][0]-1] {
			t.Errorf("groups %d and 0 must differ", gi)
		}
	}
}

func TestIsValidCoarsestPartition(t *testing.T) {
	ins, aq := paperExample22()
	if !IsValidCoarsestPartition(ins, aq) {
		t.Error("paper's A_Q rejected")
	}
	// Too fine: all singletons (violates coarsest unless forced).
	fine := make([]int, 16)
	for i := range fine {
		fine[i] = i
	}
	if IsValidCoarsestPartition(ins, fine) {
		t.Error("all-singleton partition accepted as coarsest")
	}
	// Invalid: B not refined.
	bad := make([]int, 16)
	if IsValidCoarsestPartition(ins, bad) {
		t.Error("single-block partition accepted")
	}
}

func TestMooreProperty(t *testing.T) {
	f := func(rawF []uint16, rawB []uint8) bool {
		n := len(rawF)
		if n == 0 {
			return true
		}
		ins := Instance{F: make([]int, n), B: make([]int, n)}
		for i := range rawF {
			ins.F[i] = int(rawF[i]) % n
			if i < len(rawB) {
				ins.B[i] = int(rawB[i] % 3)
			}
		}
		labels := Moore(ins)
		// Check the two structural conditions directly.
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if labels[x] == labels[y] {
					if ins.B[x] != ins.B[y] || labels[ins.F[x]] != labels[ins.F[y]] {
						return false
					}
				}
			}
		}
		// Coarsest: merging any two blocks with equal B and equal f-image
		// labels would contradict Lemma 2.1(i) iterated; rely on
		// cross-checking with Hopcroft for maximality.
		return SamePartition(labels, Hopcroft(ins))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestHopcroftLargeRandomAgainstLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, n := range []int{500, 2000, 5000} {
		ins := randomInstance(rng, n, 3)
		a := Hopcroft(ins)
		b := LinearSequential(ins)
		if !SamePartition(a, b) {
			t.Fatalf("n=%d: Hopcroft and LinearSequential disagree", n)
		}
	}
}
