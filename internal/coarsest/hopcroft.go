package coarsest

// Hopcroft solves the coarsest partition problem in O(n log n) time by
// partition refinement with the "process the smaller half" rule — the
// classic algorithm of Aho, Hopcroft & Ullman (reference [1] of the paper)
// specialized to a single function.
func Hopcroft(ins Instance) []int {
	n := len(ins.F)
	if n == 0 {
		return []int{}
	}

	// Preimage lists of f in CSR form.
	preCount := make([]int, n+1)
	for _, y := range ins.F {
		preCount[y+1]++
	}
	for i := 1; i <= n; i++ {
		preCount[i] += preCount[i-1]
	}
	preList := make([]int, n)
	fill := make([]int, n)
	copy(fill, preCount[:n])
	for x, y := range ins.F {
		preList[fill[y]] = x
		fill[y]++
	}

	// Block structure: members grouped per block with O(1) moves.
	blockOf := make([]int, n)
	init := NormalizeLabels(ins.B)
	numBlocks := NumClasses(init)
	members := make([][]int, numBlocks, 2*n)
	posIn := make([]int, n)
	for x := 0; x < n; x++ {
		b := init[x]
		blockOf[x] = b
		posIn[x] = len(members[b])
		members[b] = append(members[b], x)
	}

	// Worklist of splitter blocks.
	inWork := make([]bool, numBlocks, 2*n)
	work := make([]int, 0, 2*n)
	for b := 0; b < numBlocks; b++ {
		work = append(work, b)
		inWork[b] = true
	}

	touched := make(map[int][]int) // block -> states of the preimage in it
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[s] = false

		// Preimage of the splitter, grouped by current block.
		clear(touched)
		for _, y := range members[s] {
			for i := preCount[y]; i < preCount[y+1]; i++ {
				x := preList[i]
				b := blockOf[x]
				touched[b] = append(touched[b], x)
			}
		}
		for b, hit := range touched {
			if len(hit) == len(members[b]) {
				continue // no split
			}
			// Move hit states into a new block.
			nb := len(members)
			members = append(members, nil)
			inWork = append(inWork, false)
			for _, x := range hit {
				// Remove x from b by swapping with the last member.
				last := members[b][len(members[b])-1]
				pi := posIn[x]
				members[b][pi] = last
				posIn[last] = pi
				members[b] = members[b][:len(members[b])-1]
				// Append to nb.
				posIn[x] = len(members[nb])
				members[nb] = append(members[nb], x)
				blockOf[x] = nb
			}
			// Schedule: if b is pending both halves must be processed;
			// otherwise the smaller half suffices.
			if inWork[b] {
				work = append(work, nb)
				inWork[nb] = true
			} else if len(members[nb]) <= len(members[b]) {
				work = append(work, nb)
				inWork[nb] = true
			} else {
				work = append(work, b)
				inWork[b] = true
			}
		}
	}
	return NormalizeLabels(blockOf)
}
