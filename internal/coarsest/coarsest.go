// Package coarsest solves the single function coarsest partition problem:
// given a set S = {0..n-1}, a function f on S and an initial partition B
// (as a label array), find the coarsest partition Q refining B such that f
// maps every block of Q into a block of Q. Equivalently (Lemma 2.1 of
// JáJá & Ryu): x and y share a Q-block iff B[f^i(x)] == B[f^i(y)] for all
// i = 0..n. This is minimization of a Moore machine with a unary input
// alphabet.
//
// Solvers:
//
//   - Moore: naive iterative refinement, O(n) rounds of O(n) (worst O(n^2)).
//   - Hopcroft: partition refinement with the "smaller half" rule,
//     O(n log n) — the classic of Aho–Hopcroft–Ullman cited as [1].
//   - LinearSequential: the linear-time cycle/tree decomposition in the
//     spirit of Paige–Tarjan–Bonic [16], structured exactly like the
//     parallel algorithm (periods, canonical rotations, tree marking).
//   - ParallelPRAM: the paper's contribution — O(log n) time and
//     O(n log log n) operations on the simulated Arbitrary CRCW PRAM.
//   - DoublingHashPRAM / DoublingSortPRAM: the prior parallel baselines
//     (Galley–Iliopoulos-shape and Srikant-shape).
//   - NativeParallel: a practical goroutine implementation for wall-clock
//     benchmarks.
//
// All solvers return dense Q-labels normalized by first occurrence, so any
// two correct solvers return identical slices.
package coarsest

import (
	"fmt"
)

// Instance is a single function coarsest partition problem: F[x] = f(x) and
// B[x] the initial-partition label of x (any non-negative ints).
type Instance struct {
	F []int
	B []int
}

// Validate checks the instance is well formed.
func (ins Instance) Validate() error {
	n := len(ins.F)
	if len(ins.B) != n {
		return fmt.Errorf("coarsest: |F| = %d but |B| = %d", n, len(ins.B))
	}
	for x, y := range ins.F {
		if y < 0 || y >= n {
			return fmt.Errorf("coarsest: F[%d] = %d out of range [0,%d)", x, y, n)
		}
	}
	for x, b := range ins.B {
		if b < 0 {
			return fmt.Errorf("coarsest: B[%d] = %d negative", x, b)
		}
	}
	return nil
}

// NormalizeLabels renames labels to 0,1,2,... in order of first occurrence,
// the canonical form used to compare solver outputs.
//
// Labels in [0, n) — the dense range every solver emits — are renamed
// through a slice-backed table; anything outside it falls back to a map,
// allocated only on first sparse label. Both runs once per solve, so the
// dense path must not allocate a map.
func NormalizeLabels(labels []int) []int {
	n := len(labels)
	out := make([]int, n)
	ids := make([]int, n) // ids[l] = assigned id + 1; 0 = unseen
	next := 0
	var sparse map[int]int
	for i, l := range labels {
		if uint(l) < uint(n) {
			id := ids[l]
			if id == 0 {
				next++
				id = next
				ids[l] = id
			}
			out[i] = id - 1
			continue
		}
		if sparse == nil {
			sparse = make(map[int]int)
		}
		id, ok := sparse[l]
		if !ok {
			id = next
			next++
			sparse[l] = id
		}
		out[i] = id
	}
	return out
}

// NumClasses returns the number of distinct labels. Dense labels (all in
// [0, n)) are counted through a slice-backed seen-table with zero map
// allocations; sparse labels fall back to a map.
func NumClasses(labels []int) int {
	n := len(labels)
	seen := make([]bool, n)
	count := 0
	var sparse map[int]struct{}
	for _, l := range labels {
		if uint(l) < uint(n) {
			if !seen[l] {
				seen[l] = true
				count++
			}
			continue
		}
		if sparse == nil {
			sparse = make(map[int]struct{})
		}
		if _, ok := sparse[l]; !ok {
			sparse[l] = struct{}{}
			count++
		}
	}
	return count
}

// SamePartition reports whether two labelings induce the same partition.
func SamePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if v, ok := fwd[a[i]]; ok && v != b[i] {
			return false
		}
		if v, ok := rev[b[i]]; ok && v != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// IsValidCoarsestPartition checks the two defining conditions of Q against
// the instance plus maximality via Moore (used by property tests): every
// Q-block refines B, f maps Q-blocks into Q-blocks, and the block count
// matches the true coarsest partition.
func IsValidCoarsestPartition(ins Instance, labels []int) bool {
	n := len(ins.F)
	if len(labels) != n {
		return false
	}
	// Q refines B; f maps blocks into blocks.
	repB := map[int]int{}
	repFQ := map[int]int{}
	for x := 0; x < n; x++ {
		q := labels[x]
		if b, ok := repB[q]; ok {
			if ins.B[x] != b {
				return false
			}
		} else {
			repB[q] = ins.B[x]
		}
		fq := labels[ins.F[x]]
		if v, ok := repFQ[q]; ok {
			if fq != v {
				return false
			}
		} else {
			repFQ[q] = fq
		}
	}
	// Coarsest: same class count as the reference solver.
	return NumClasses(labels) == NumClasses(Moore(ins))
}
