package coarsest

import (
	"context"
	"math/bits"

	"sfcp/internal/circ"
	"sfcp/internal/euler"
	"sfcp/internal/intsort"
	"sfcp/internal/listrank"
	"sfcp/internal/pram"
)

// ParallelOptions configures the PRAM solver and its substrate algorithms.
type ParallelOptions struct {
	// Model is the PRAM variant (default ArbitraryCRCW, as in the paper).
	Model pram.Model
	// Sort selects the integer-sorting strategy (default intsort.Modeled,
	// standing in for Bhatt et al. — see DESIGN.md).
	Sort intsort.Strategy
	// Rank selects the list-ranking method (default listrank.RulingSet).
	Rank listrank.Method
	// Pad is the odd-block padding convention for the m.s.p. reduction
	// (default PadMin, the paper's Step 2 choice).
	Pad circ.Pad
	// Workers bounds the host goroutines executing each step (0 = NumCPU).
	Workers int
	// Seed drives the deterministic Arbitrary-CRCW write resolution.
	Seed uint64
}

// ParallelResult carries the labels plus the machine's complexity counters.
type ParallelResult struct {
	Labels     []int
	NumClasses int
	Stats      pram.Stats
}

// ParallelPRAM solves the coarsest partition problem with the JáJá–Ryu
// parallel algorithm on a simulated Arbitrary CRCW PRAM:
//
//	Step 1  mark the cycle nodes (Euler tours, Section 5),
//	Step 2  Q-label the cycle nodes (Section 3: list-rank and rearrange the
//	        cycles, reduce each B-label string to its smallest repeating
//	        prefix, find its minimal starting point by the efficient
//	        pair-and-rank reduction, partition equivalent cycles, and label
//	        by (class, offset)),
//	Step 3  Q-label the tree nodes (Section 4: match root paths against the
//	        cycles per Lemma 4.1, clear descendants of mismatches, and code
//	        the remaining forest by (B, parent) pairs per Lemma 4.2).
//
// Theorem 5.1: O(log n) time, O(n log log n) operations. The batching of
// per-cycle work into shared steps uses head-flag segmented primitives; see
// DESIGN.md for the measured-versus-stated cost discussion.
func ParallelPRAM(ins Instance, opts ParallelOptions) ParallelResult {
	// Background is never cancelled, so no error path exists here.
	res, _ := ParallelPRAMContext(context.Background(), ins, opts)
	return res
}

// ParallelPRAMContext is ParallelPRAM with cooperative cancellation: ctx is
// polled at the start of every simulated PRAM step (see pram.WithCancel),
// so a cancelled solve aborts within one step and returns ctx.Err().
func ParallelPRAMContext(ctx context.Context, ins Instance, opts ParallelOptions) (res ParallelResult, err error) {
	defer recoverCancel(&err)
	n := len(ins.F)
	if n == 0 {
		return ParallelResult{Labels: []int{}}, nil
	}
	m := pram.New(opts.Model, machineOptions(ctx, opts)...)

	fArr := m.NewArrayFromInts(ins.F)
	bArr := m.NewArrayFromInts(ins.B)
	m.ResetStats()

	// Step 1 (+ tree bookkeeping): Euler-tour analysis of the pseudo-forest.
	forest := euler.Analyze(m, fArr, euler.Options{Sort: opts.Sort, Rank: opts.Rank})

	// Step 2: cycle node labeling.
	cy := labelCycles(m, fArr, bArr, forest, opts)

	// Step 3: tree node labeling.
	keys := labelTrees(m, fArr, bArr, forest, cy, opts)

	// Final global renaming to dense labels.
	perm := intsort.SortPRAM(m, keys, pram.TableSize(n)+2, opts.Sort)
	ranks, distinct := intsort.RankDistinct(m, keys, perm, 0)

	return ParallelResult{
		Labels:     NormalizeLabels(ranks.Ints()),
		NumClasses: int(distinct),
		Stats:      m.Stats(),
	}, nil
}

// machineOptions maps ParallelOptions (plus a context) onto simulator
// options; the cancellation hook is installed only for cancellable contexts
// so the common Background path costs nothing per step.
func machineOptions(ctx context.Context, opts ParallelOptions) []pram.Option {
	var machineOpts []pram.Option
	if opts.Workers > 0 {
		machineOpts = append(machineOpts, pram.WithWorkers(opts.Workers))
	}
	if opts.Seed != 0 {
		machineOpts = append(machineOpts, pram.WithSeed(opts.Seed))
	}
	if ctx.Done() != nil {
		machineOpts = append(machineOpts, pram.WithCancel(ctx.Err))
	}
	return machineOpts
}

// recoverCancel converts the simulator's cancellation panic back into the
// context error at the algorithm boundary; other panics propagate.
func recoverCancel(err *error) {
	if r := recover(); r != nil {
		cerr, ok := pram.Cancelled(r)
		if !ok {
			panic(r)
		}
		*err = cerr
	}
}

// cycleLabeling carries the cycle-phase outputs needed by the tree phase.
type cycleLabeling struct {
	cidx    *pram.Array // node -> compact cycle index (undefined for tree nodes)
	rankC   *pram.Array // compact idx -> rank from cycle leader
	lenC    *pram.Array // compact idx -> cycle length
	leaderC *pram.Array // compact idx -> leader compact idx... leader node id
	offsets *pram.Array // compact idx -> arrangement offset of the leader's cycle
	posNode *pram.Array // arrangement position -> node id
	qcode   *pram.Array // node -> provisional Q code (cycle nodes only)
}

// labelCycles implements Algorithm cycle node labeling, batched across all
// cycles with segmented primitives.
func labelCycles(m *pram.Machine, fArr, bArr *pram.Array, forest *euler.Forest, opts ParallelOptions) *cycleLabeling {
	n := fArr.Len()
	cy := &cycleLabeling{}

	// Compact the cycle nodes and list-rank every cycle.
	cycNodes := pram.CompactIndices(m, forest.OnCycle)
	nc := cycNodes.Len()
	cy.cidx = m.NewArray(n)
	m.ParDo(nc, func(c *pram.Ctx, p int) {
		c.Write(cy.cidx, int(c.Read(cycNodes, p)), int64(p))
	})
	cnext := m.NewArray(nc)
	m.ParDo(nc, func(c *pram.Ctx, p int) {
		node := int(c.Read(cycNodes, p))
		c.Write(cnext, p, c.Read(cy.cidx, int(c.Read(fArr, node))))
	})
	leaderC, rankC, lenC := listrank.CycleRank(m, cnext, opts.Rank)
	cy.rankC, cy.lenC, cy.leaderC = rankC, lenC, leaderC

	// Rearrangement (Step 1 of the algorithm): each cycle occupies a
	// contiguous block, ordered by leader, positions by rank.
	sizes := m.NewArray(nc)
	m.ParDo(nc, func(c *pram.Ctx, p int) {
		if int(c.Read(leaderC, p)) == p {
			c.Write(sizes, p, c.Read(lenC, p))
		} else {
			c.Write(sizes, p, 0)
		}
	})
	offsets, _ := pram.ExclusiveScan(m, sizes)
	cy.offsets = offsets
	cy.posNode = m.NewArray(nc)
	posB := m.NewArray(nc)
	heads := m.NewArray(nc)
	rowOfPos := m.NewArray(nc) // arrangement position -> dense row id
	m.ParDo(nc, func(c *pram.Ctx, p int) {
		node := int(c.Read(cycNodes, p))
		pos := int(c.Read(offsets, int(c.Read(leaderC, p))) + c.Read(rankC, p))
		c.Write(cy.posNode, pos, int64(node))
		c.Write(posB, pos, c.Read(bArr, node))
		if c.Read(rankC, p) == 0 {
			c.Write(heads, pos, 1)
		} else {
			c.Write(heads, pos, 0)
		}
	})
	rowIncl, k64 := pram.InclusiveScan(m, heads)
	k := int(k64)
	m.ParDo(nc, func(c *pram.Ctx, p int) {
		c.Write(rowOfPos, p, c.Read(rowIncl, p)-1)
	})

	// Smallest repeating prefix per cycle (modeled Breslauer–Galil, as in
	// the per-string PeriodPRAM; see DESIGN.md): computed on the host row
	// by row, charged O(log n) rounds and O(n) work for the whole batch.
	hostB := posB.Ints()
	hostHeads := heads.Ints()
	periods := make([]int64, k)
	rowStartH := make([]int, k)
	rowLenH := make([]int, k)
	{
		row := -1
		for pos := 0; pos < nc; pos++ {
			if hostHeads[pos] != 0 {
				row++
				rowStartH[row] = pos
			}
			rowLenH[row]++
		}
		for r := 0; r < k; r++ {
			periods[r] = int64(circ.SmallestRepeatingPrefix(hostB[rowStartH[r] : rowStartH[r]+rowLenH[r]]))
		}
		m.ChargeModel(int64(bits.Len(uint(nc))), int64(nc))
	}
	periodArr := m.NewArrayFrom(periods)

	// Truncate each row to its period prefix.
	relPos := m.NewArray(nc)
	startScanSrc := m.NewArray(nc)
	m.ParDo(nc, func(c *pram.Ctx, p int) {
		if c.Read(heads, p) != 0 {
			c.Write(startScanSrc, p, int64(p))
		} else {
			c.Write(startScanSrc, p, -1)
		}
	})
	rowStart := pram.SegmentedScanMax(m, startScanSrc, heads)
	m.ParDo(nc, func(c *pram.Ctx, p int) {
		c.Write(relPos, p, int64(p)-c.Read(rowStart, p))
	})
	keep := m.NewArray(nc)
	m.ParDo(nc, func(c *pram.Ctx, p int) {
		if c.Read(relPos, p) < c.Read(periodArr, int(c.Read(rowOfPos, p))) {
			c.Write(keep, p, 1)
		} else {
			c.Write(keep, p, 0)
		}
	})
	truncB := pram.Compact(m, posB, keep)
	truncRow := pram.Compact(m, rowOfPos, keep)
	truncHeads := pram.Compact(m, heads, keep)
	truncRel := pram.Compact(m, relPos, keep)

	// Batched efficient m.s.p. over the ragged period matrix.
	msp := batchedMSP(m, truncB, truncRow, truncHeads, truncRel, k, opts)

	// Canonical strings: rotate each truncated row to start at its m.s.p.
	truncStart := segRowStarts(m, truncHeads)
	canon := m.NewArray(truncB.Len())
	m.ParDo(truncB.Len(), func(c *pram.Ctx, p int) {
		row := int(c.Read(truncRow, p))
		start := int(c.Read(truncStart, p))
		pd := c.Read(periodArr, row)
		j := (c.Read(truncRel, p) + c.Read(msp, row)) % pd
		c.Write(canon, p, c.Read(truncB, start+int(j)))
	})

	// Cycle equivalence classes: ragged lockstep pair-coding fingerprint,
	// then dense renaming (Algorithm partition with the dictionary BB).
	classOf := fingerprintRows(m, canon, truncRow, truncHeads, k, opts)

	// Q-codes for cycle nodes: (class of cycle, offset from the m.s.p.
	// modulo the period).
	classEl := m.NewArray(nc)
	offEl := m.NewArray(nc)
	m.ParDo(nc, func(c *pram.Ctx, p int) {
		// p is the compact cycle index; find the arrangement row data.
		pos := int(c.Read(offsets, int(c.Read(leaderC, p))) + c.Read(rankC, p))
		row := int(c.Read(rowOfPos, pos))
		pd := c.Read(periodArr, row)
		off := (c.Read(rankC, p) - c.Read(msp, row)) % pd
		if off < 0 {
			off += pd
		}
		c.Write(classEl, p, c.Read(classOf, row))
		c.Write(offEl, p, off)
	})
	qcodeC := pram.PairCode(m, classEl, offEl)
	cy.qcode = m.NewArray(n)
	pram.Fill(m, cy.qcode, -1)
	m.ParDo(nc, func(c *pram.Ctx, p int) {
		c.Write(cy.qcode, int(c.Read(cycNodes, p)), c.Read(qcodeC, p))
	})
	return cy
}

// segRowStarts returns, per element, the position of its row's head.
func segRowStarts(m *pram.Machine, heads *pram.Array) *pram.Array {
	n := heads.Len()
	src := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(heads, p) != 0 {
			c.Write(src, p, int64(p))
		} else {
			c.Write(src, p, -1)
		}
	})
	return pram.SegmentedScanMax(m, src, heads)
}

// rowBroadcast scatters the value at each row's tail element into a
// row-indexed array and returns it (rows identified by rowIds, which must
// be dense in [0, k)).
func rowBroadcast(m *pram.Machine, vals, rowIds, heads *pram.Array, k int) *pram.Array {
	n := vals.Len()
	out := m.NewArray(k)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if p == n-1 || c.Read(heads, p+1) != 0 {
			c.Write(out, int(c.Read(rowIds, p)), c.Read(vals, p))
		}
	})
	return out
}

// batchedMSP runs the efficient-m.s.p. reduction (Steps 1–3 of Algorithm
// efficient m.s.p.) on every row of a ragged matrix in lockstep until each
// row's minimal starting point is decided, returning msp offsets per row
// (within the row, 0-based). Rows must be primitive (period == length);
// length-1 rows resolve to 0 immediately.
func batchedMSP(m *pram.Machine, valsIn, rowIn, headsIn, relIn *pram.Array, k int, opts ParallelOptions) *pram.Array {
	msp := m.NewArray(k)
	pram.Fill(m, msp, -1)
	n := valsIn.Len()
	if n == 0 {
		return msp
	}
	// Working state: shifted values, row ids, heads, and origins (the
	// element's starting offset within the original row).
	vals := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) { c.Write(vals, p, c.Read(valsIn, p)+1) })
	rows := m.NewArray(n)
	pram.Copy(m, rows, rowIn)
	heads := m.NewArray(n)
	pram.Copy(m, heads, headsIn)
	origin := m.NewArray(n)
	pram.Copy(m, origin, relIn)
	maxVal := pram.ReduceMax(m, vals)

	for vals.Len() > 0 {
		sz := vals.Len()
		// Row minima.
		minScan := pram.SegmentedScanMin(m, vals, heads)
		rowMin := rowBroadcast(m, minScan, rows, heads, k)
		// Row tail positions (for circular predecessor lookups).
		posIdx := m.NewArray(sz)
		pram.Iota(m, posIdx, 0)
		rowTail := rowBroadcast(m, posIdx, rows, heads, k)

		// Marking: first element of each run of the row minimum.
		marked := m.NewArray(sz)
		m.ParDo(sz, func(c *pram.Ctx, p int) {
			row := int(c.Read(rows, p))
			mn := c.Read(rowMin, row)
			var prev int64
			if c.Read(heads, p) != 0 {
				prev = c.Read(vals, int(c.Read(rowTail, row)))
			} else {
				prev = c.Read(vals, p-1)
			}
			if c.Read(vals, p) == mn && prev != mn {
				c.Write(marked, p, 1)
			} else {
				c.Write(marked, p, 0)
			}
		})
		cntScan := pram.SegmentedScanSum(m, marked, heads)
		rowCnt := rowBroadcast(m, cntScan, rows, heads, k)

		// Rows with a unique candidate are done; rows with none (length 1
		// or constant) resolve to their head's origin.
		m.ParDo(sz, func(c *pram.Ctx, p int) {
			row := int(c.Read(rows, p))
			cnt := c.Read(rowCnt, row)
			if cnt == 1 && c.Read(marked, p) != 0 {
				c.Write(msp, row, c.Read(origin, p))
			}
			if cnt == 0 && c.Read(heads, p) != 0 {
				c.Write(msp, row, c.Read(origin, p))
			}
		})

		// Drop finished rows.
		active := m.NewArray(sz)
		m.ParDo(sz, func(c *pram.Ctx, p int) {
			if c.Read(rowCnt, int(c.Read(rows, p))) >= 2 {
				c.Write(active, p, 1)
			} else {
				c.Write(active, p, 0)
			}
		})
		vals = pram.Compact(m, vals, active)
		origin = pram.Compact(m, origin, active)
		rows = pram.Compact(m, rows, active)
		marked = pram.Compact(m, marked, active)
		heads = pram.Compact(m, heads, active)
		sz = vals.Len()
		if sz == 0 {
			break
		}

		// Rotate each remaining row so its first marked element leads.
		rowStart := segRowStarts(m, heads)
		firstMarkSrc := m.NewArray(sz)
		m.ParDo(sz, func(c *pram.Ctx, p int) {
			if c.Read(marked, p) != 0 {
				c.Write(firstMarkSrc, p, -int64(p)) // max-scan of -p = min pos
			} else {
				c.Write(firstMarkSrc, p, int64(-1)<<40)
			}
		})
		fmScan := pram.SegmentedScanMax(m, firstMarkSrc, heads)
		rowFirstMark := rowBroadcast(m, fmScan, rows, heads, k)
		rowLenArr := m.NewArray(sz)
		m.ParDo(sz, func(c *pram.Ctx, p int) {
			c.Write(rowLenArr, p, int64(p)-c.Read(rowStart, p)+1)
		})
		rowLen := rowBroadcast(m, rowLenArr, rows, heads, k)

		rvals := m.NewArray(sz)
		rorigin := m.NewArray(sz)
		rmarked := m.NewArray(sz)
		m.ParDo(sz, func(c *pram.Ctx, p int) {
			row := int(c.Read(rows, p))
			start := c.Read(rowStart, p)
			ln := c.Read(rowLen, row)
			r0 := -c.Read(rowFirstMark, row) - start // relative first mark
			tgt := start + ((int64(p)-start)-r0+ln)%ln
			c.Write(rvals, int(tgt), c.Read(vals, p))
			c.Write(rorigin, int(tgt), c.Read(origin, p))
			c.Write(rmarked, int(tgt), c.Read(marked, p))
		})

		// Block decomposition and pairing.
		blockSrc := m.NewArray(sz)
		m.ParDo(sz, func(c *pram.Ctx, p int) {
			if c.Read(rmarked, p) != 0 {
				c.Write(blockSrc, p, int64(p))
			} else {
				c.Write(blockSrc, p, -1)
			}
		})
		blockStart := pram.SegmentedScanMax(m, blockSrc, heads)
		pairHead := m.NewArray(sz)
		second := m.NewArray(sz)
		m.ParDo(sz, func(c *pram.Ctx, p int) {
			off := int64(p) - c.Read(blockStart, p)
			if off%2 != 0 {
				c.Write(pairHead, p, 0)
				return
			}
			c.Write(pairHead, p, 1)
			sameBlock := p+1 < sz && c.Read(heads, p+1) == 0 && c.Read(blockStart, p+1) == c.Read(blockStart, p)
			if sameBlock {
				c.Write(second, p, c.Read(rvals, p+1))
			} else if opts.Pad == circ.PadMin {
				c.Write(second, p, c.Read(rowMin, int(c.Read(rows, p))))
			} else {
				c.Write(second, p, 0)
			}
		})
		firsts := pram.Compact(m, rvals, pairHead)
		seconds := pram.Compact(m, second, pairHead)
		norigin := pram.Compact(m, rorigin, pairHead)
		nrows := pram.Compact(m, rows, pairHead)
		nheads := pram.Compact(m, heads, pairHead)

		perm, packed := intsort.SortPairsPRAM(m, firsts, seconds, maxVal, opts.Sort)
		ranks, distinct := intsort.RankDistinct(m, packed, perm, 1)

		vals, origin, rows, heads, maxVal = ranks, norigin, nrows, nheads, distinct
	}
	return msp
}

// fingerprintRows assigns dense class labels to the rows of a ragged matrix
// such that two rows share a class iff they are identical strings. All rows
// are paired in lockstep ceil(log2 maxLen) times through the concurrent
// dictionary, so final single codes are comparable across rows of any
// lengths. O(n) work, O(log n) expected rounds.
func fingerprintRows(m *pram.Machine, valsIn, rowIn, headsIn *pram.Array, k int, opts ParallelOptions) *pram.Array {
	n := valsIn.Len()
	if n == 0 || k == 0 {
		return m.NewArray(k)
	}
	vals := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) { c.Write(vals, p, c.Read(valsIn, p)+1) })
	rows := m.NewArray(n)
	pram.Copy(m, rows, rowIn)
	heads := m.NewArray(n)
	pram.Copy(m, heads, headsIn)

	// Iterate until every row is a single element (lockstep; rows that
	// reach length 1 keep pairing with the blank).
	for vals.Len() > k {
		sz := vals.Len()
		rowStart := segRowStarts(m, heads)
		pairHead := m.NewArray(sz)
		second := m.NewArray(sz)
		m.ParDo(sz, func(c *pram.Ctx, p int) {
			off := int64(p) - c.Read(rowStart, p)
			if off%2 != 0 {
				c.Write(pairHead, p, 0)
				return
			}
			c.Write(pairHead, p, 1)
			if p+1 < sz && c.Read(heads, p+1) == 0 {
				c.Write(second, p, c.Read(vals, p+1))
			} else {
				c.Write(second, p, 0)
			}
		})
		firsts := pram.Compact(m, vals, pairHead)
		seconds := pram.Compact(m, second, pairHead)
		nrows := pram.Compact(m, rows, pairHead)
		nheads := pram.Compact(m, heads, pairHead)
		codes := pram.PairCode(m, firsts, seconds)
		vals = m.NewArray(codes.Len())
		m.ParDo(codes.Len(), func(c *pram.Ctx, p int) {
			c.Write(vals, p, c.Read(codes, p)+1)
		})
		rows, heads = nrows, nheads
	}
	// vals now has one code per row, in row order.
	codePerRow := m.NewArray(k)
	m.ParDo(k, func(c *pram.Ctx, p int) {
		c.Write(codePerRow, int(c.Read(rows, p)), c.Read(vals, p))
	})
	perm := intsort.SortPRAM(m, codePerRow, pram.TableSize(n)+2, opts.Sort)
	classOf, _ := intsort.RankDistinct(m, codePerRow, perm, 0)
	return classOf
}

// labelTrees implements Algorithm tree node labeling (Section 4) and
// returns a per-node key array: equal keys iff equal Q-labels.
func labelTrees(m *pram.Machine, fArr, bArr *pram.Array, forest *euler.Forest, cy *cycleLabeling, opts ParallelOptions) *pram.Array {
	n := fArr.Len()

	// Steps 1-2: mark tree nodes whose B-label matches the corresponding
	// cycle node (Lemma 4.1).
	marked0 := m.NewArray(n)
	correspQ := m.NewArray(n) // Q-code of the corresponding cycle node
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(forest.OnCycle, p) != 0 {
			c.Write(marked0, p, 1)
			c.Write(correspQ, p, c.Read(cy.qcode, p))
			return
		}
		r := int(c.Read(forest.Root, p))
		ci := int(c.Read(cy.cidx, r))
		k := c.Read(cy.lenC, ci)
		cr := (c.Read(cy.rankC, ci) - c.Read(forest.Level, p)) % k
		if cr < 0 {
			cr += k
		}
		pos := c.Read(cy.offsets, int(c.Read(cy.leaderC, ci))) + cr
		node := int(c.Read(cy.posNode, int(pos)))
		c.Write(correspQ, p, c.Read(cy.qcode, node))
		if c.Read(bArr, p) == c.Read(bArr, node) {
			c.Write(marked0, p, 1)
		} else {
			c.Write(marked0, p, 0)
		}
	})

	// Step 3: unmark all descendants of unmarked nodes, via ancestor
	// counting on the Euler-tour intervals.
	unmarked0 := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(forest.OnCycle, p) == 0 && c.Read(marked0, p) == 0 {
			c.Write(unmarked0, p, 1)
		} else {
			c.Write(unmarked0, p, 0)
		}
	})
	badAnc := forest.CountFlaggedAncestors(unmarked0)
	labeled := m.NewArray(n) // cycle nodes and finally-marked tree nodes
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(forest.OnCycle, p) != 0 ||
			(c.Read(marked0, p) != 0 && c.Read(badAnc, p) == 0) {
			c.Write(labeled, p, 1)
		} else {
			c.Write(labeled, p, 0)
		}
	})

	// Step 4: marked nodes take the cycle labels. Step 5: the unmarked
	// forest is coded by pointer jumping with pair codes (Lemma 4.2);
	// labeled nodes act as fixpoints carrying their (tagged) Q-code.
	tag := m.NewArray(n)
	val := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(labeled, p) != 0 {
			c.Write(tag, p, 1)
			c.Write(val, p, c.Read(correspQ, p))
		} else {
			c.Write(tag, p, 0)
			c.Write(val, p, c.Read(bArr, p))
		}
	})
	code := pram.PairCode(m, tag, val)
	jump := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(labeled, p) != 0 {
			c.Write(jump, p, int64(p))
		} else {
			c.Write(jump, p, c.Read(fArr, p))
		}
	})
	maxDepth := pram.ReduceMax(m, forest.Level)
	iters := bits.Len64(uint64(maxDepth+1)) + 1
	for it := 0; it < iters; it++ {
		// Every node re-codes each round — including the labeled fixpoints
		// (whose jump is themselves). Keeping fixpoint codes frozen would
		// mix codes from different dictionary generations inside one key,
		// where numerically-equal codes of different generations could
		// merge distinct paths; re-coding everyone keeps all compared
		// codes within a single generation, which is injective.
		codeAtJump := m.NewArray(n)
		pram.Gather(m, codeAtJump, code, jump)
		code = pram.PairCode(m, code, codeAtJump)
		nextJump := m.NewArray(n)
		m.ParDo(n, func(c *pram.Ctx, p int) {
			c.Write(nextJump, p, c.Read(jump, int(c.Read(jump, p))))
		})
		jump = nextJump
	}

	// Final keys: labeled nodes keyed by their Q-code, unmarked nodes by
	// their path code, kept in disjoint spaces by the tag component.
	finalTag := m.NewArray(n)
	finalVal := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(labeled, p) != 0 {
			c.Write(finalTag, p, 0)
			c.Write(finalVal, p, c.Read(correspQ, p))
		} else {
			c.Write(finalTag, p, 1)
			c.Write(finalVal, p, c.Read(code, p))
		}
	})
	return pram.PairCode(m, finalTag, finalVal)
}
