package coarsest

import (
	"context"
	"math/bits"

	"sfcp/internal/intsort"
	"sfcp/internal/pram"
)

// The pre-JáJá–Ryu parallel baselines. Both compute Q by label doubling
// (Lemma 2.1(ii)): after t rounds each node's label encodes the B-labels of
// f^0(x)..f^(2^t - 1)(x); ceil(log2(n+1)) rounds therefore decide Q. They
// differ in how fresh labels are assigned each round, which is exactly
// where the earlier algorithms paid their extra work:
//
//   - DoublingHashPRAM renames with the concurrent-write dictionary:
//     O(log n) time and O(n log n) operations on the Arbitrary CRCW PRAM —
//     the cost profile of Galley & Iliopoulos [10].
//   - DoublingSortPRAM renames by sorting the label pairs with the
//     bit-split radix sort: O(log^2 n) time and O(n log^2 n) operations —
//     the cost profile of Srikant [18] (whose algorithm is CREW; sorting
//     is the dominant term).

// DoublingHashPRAM solves the coarsest partition problem by label doubling
// with dictionary renaming (Galley–Iliopoulos-shape baseline).
func DoublingHashPRAM(ins Instance, opts ParallelOptions) ParallelResult {
	res, _ := DoublingHashPRAMContext(context.Background(), ins, opts)
	return res
}

// DoublingHashPRAMContext is DoublingHashPRAM with per-step cooperative
// cancellation (see ParallelPRAMContext).
func DoublingHashPRAMContext(ctx context.Context, ins Instance, opts ParallelOptions) (ParallelResult, error) {
	return doubling(ctx, ins, opts, true)
}

// DoublingSortPRAM solves the coarsest partition problem by label doubling
// with sort-based renaming (Srikant-shape baseline).
func DoublingSortPRAM(ins Instance, opts ParallelOptions) ParallelResult {
	res, _ := DoublingSortPRAMContext(context.Background(), ins, opts)
	return res
}

// DoublingSortPRAMContext is DoublingSortPRAM with per-step cooperative
// cancellation (see ParallelPRAMContext).
func DoublingSortPRAMContext(ctx context.Context, ins Instance, opts ParallelOptions) (ParallelResult, error) {
	return doubling(ctx, ins, opts, false)
}

func doubling(ctx context.Context, ins Instance, opts ParallelOptions, useHash bool) (res ParallelResult, err error) {
	defer recoverCancel(&err)
	n := len(ins.F)
	if n == 0 {
		return ParallelResult{Labels: []int{}}, nil
	}
	m := pram.New(opts.Model, machineOptions(ctx, opts)...)

	fArr := m.NewArrayFromInts(ins.F)
	labels := m.NewArrayFromInts(NormalizeLabels(ins.B))
	m.ResetStats()

	jump := m.NewArray(n)
	pram.Copy(m, jump, fArr)
	rounds := bits.Len(uint(n)) + 1
	maxLabel := pram.ReduceMax(m, labels)
	for t := 0; t < rounds; t++ {
		labelAtJump := m.NewArray(n)
		pram.Gather(m, labelAtJump, labels, jump)
		if useHash {
			codes := pram.PairCode(m, labels, labelAtJump)
			labels = codes
			maxLabel = pram.TableSize(n)
		} else {
			perm, packed := intsort.SortPairsPRAM(m, labels, labelAtJump, maxLabel, intsort.BitSplit)
			ranks, distinct := intsort.RankDistinct(m, packed, perm, 0)
			labels = ranks
			maxLabel = distinct
		}
		next := m.NewArray(n)
		m.ParDo(n, func(c *pram.Ctx, p int) {
			c.Write(next, p, c.Read(jump, int(c.Read(jump, p))))
		})
		jump = next
	}
	if useHash {
		// Dictionary codes are sparse; rename densely once at the end.
		perm := intsort.SortPRAM(m, labels, maxLabel+1, opts.Sort)
		ranks, _ := intsort.RankDistinct(m, labels, perm, 0)
		labels = ranks
	}
	out := NormalizeLabels(labels.Ints())
	return ParallelResult{Labels: out, NumClasses: NumClasses(out), Stats: m.Stats()}, nil
}
