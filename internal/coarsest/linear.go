package coarsest

import (
	"sfcp/internal/circ"
)

// LinearSequential solves the coarsest partition problem in O(n) expected
// time with the cycle/tree decomposition of the paper run sequentially —
// the structure of Paige, Tarjan & Bonic's linear-time solution (reference
// [16]):
//
//  1. find the cycles of the pseudo-forest,
//  2. reduce each cycle's B-label string to its smallest repeating prefix,
//     rotate to the minimal starting point (Booth), and group equal
//     canonical strings: nodes at equal offsets of equivalent cycles share
//     a Q-label (Section 3 of the paper),
//  3. mark tree nodes whose root-path B-labels match the cycle (Lemma 4.1)
//     level by level, giving them the cycle labels,
//  4. label the remaining forest top-down by (B-label, parent Q-label)
//     pair codes (Lemma 4.2).
func LinearSequential(ins Instance) []int {
	return LinearSequentialScratch(ins, nil)
}

// LinearSequentialScratch is LinearSequential with caller-provided scratch
// buffers; sc may be nil (a fresh arena is used). All O(n) working vectors
// come from sc and every per-node coding step is array indexing, so
// coalesced batches of small instances solved back-to-back under one arena
// skip nearly all per-call allocation. Only the returned labels escape.
func LinearSequentialScratch(ins Instance, sc *Scratch) []int {
	if len(ins.F) == 0 {
		return []int{}
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.reset()
	raw, codes := linearSequentialRaw(ins, sc)
	// Canonical first-occurrence rename. Raw codes can reach 2n-1, so a
	// codes-bounded scratch table is used instead of NormalizeLabels
	// (whose dense path requires labels < n).
	out := make([]int, len(raw))
	ids := sc.bufInt(codes)
	next := 0
	for i, c := range raw {
		id := ids[c]
		if id == 0 {
			next++
			id = next
			ids[c] = id
		}
		out[i] = id - 1
	}
	return out
}

// LinearSequentialBatch solves every member back-to-back under one shared
// scratch arena, so a coalesced batch of k tiny solves pays for one arena
// instead of k and the only per-member allocation is its slice of a single
// shared label slab. Each entry of the result is identical to
// LinearSequential of that member alone; classes[i] is its class count (a
// byproduct of the canonical rename, saving callers a NumClasses pass).
// sc may be nil (a fresh arena is used). This is the execution half of
// request coalescing.
func LinearSequentialBatch(members []Instance, sc *Scratch) (out [][]int, classes []int) {
	out = make([][]int, len(members))
	classes = make([]int, len(members))
	totalN := 0
	for _, m := range members {
		totalN += len(m.F)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	slab := make([]int, totalN)
	for i, m := range members {
		n := len(m.F)
		if n == 0 {
			out[i] = []int{}
			continue
		}
		sc.reset()
		raw, codes := linearSequentialRaw(m, sc)
		labels := slab[:n:n]
		slab = slab[n:]
		ids := sc.bufInt(codes)
		next := 0
		for j, c := range raw {
			id := ids[c]
			if id == 0 {
				next++
				id = next
				ids[c] = id
			}
			labels[j] = id - 1
		}
		out[i] = labels
		classes[i] = next
	}
	return out, classes
}

// mooreCutoff gates the tiny-instance fast path: below it, plain Moore
// refinement beats the linear algorithm because the cycle/tree machinery
// costs several full passes of per-call constant that dwarf n itself.
const mooreCutoff = 64

// mooreMaxRounds bounds the fast path's refinement rounds. Random
// instances converge in O(depth) rounds; adversarial chains need up to n,
// and past this cap the caller falls back to the O(n) algorithm rather
// than pay quadratic rounds.
const mooreMaxRounds = 32

// mooreSmall computes the coarsest partition of a tiny instance by plain
// Moore refinement: start from the B-partition and split by successor
// class until stable. Each round is three passes of pure array indexing —
// no hashing, no cycle canonicalization — so for n below mooreCutoff it
// undercuts the linear algorithm's per-call constants by several times.
// Splitting is monotone, so a round that does not grow the class count
// changed nothing and the partition is stable — the classic Moore
// argument, and stability from B gives exactly the partition the linear
// algorithm computes. Returns ok=false (caller falls back) when B is too
// sparse for the dense rename table or refinement outruns mooreMaxRounds.
//
// Pair renaming goes through sc.pairArr, which must stay all-zero between
// solves; every round's touched slots are undone, including on bailout.
func mooreSmall(ins Instance, sc *Scratch) (rawLabels []int, codes int, ok bool) {
	n := len(ins.F)
	f, b := ins.F, ins.B

	// Initial rename of B through a dense table (first occurrence order).
	maxB := 0
	for _, v := range b {
		if v > maxB {
			maxB = v
		}
	}
	if maxB >= 4*n {
		return nil, 0, false
	}
	tbl := sc.bufInt(maxB + 1)
	lab := sc.bufIntRaw(n)
	next := sc.bufIntRaw(n)
	L := 0
	for x, v := range b {
		id := tbl[v]
		if id == 0 {
			L++
			id = L
			tbl[v] = id
		}
		lab[x] = id - 1
	}

	if cap(sc.pairArr) < n*n {
		sc.pairArr = make([]int, n*n)
	}
	pairArr := sc.pairArr[:n*n]
	for round := 0; round < mooreMaxRounds; round++ {
		touched := sc.pairTouched[:0]
		newL := 0
		for x := 0; x < n; x++ {
			idx := lab[x]*n + lab[f[x]]
			id := pairArr[idx]
			if id == 0 {
				newL++
				id = newL
				pairArr[idx] = id
				touched = append(touched, idx)
			}
			next[x] = id - 1
		}
		for _, idx := range touched {
			pairArr[idx] = 0
		}
		sc.pairTouched = touched[:0]
		lab, next = next, lab
		if newL == L {
			return lab, L, true
		}
		L = newL
	}
	return nil, 0, false
}

// linearSequentialRaw runs the linear-time algorithm on a non-empty
// instance and returns scratch-backed provisional labels (dense codes in
// [0, codes), not yet normalized). The caller owns resetting sc.
//
// Instances below mooreCutoff take the Moore-refinement fast path first;
// the full algorithm is the fallback (and the only path at scale).
//
// Coding is array-backed throughout: the only hashing left is one
// canonical-string lookup per distinct cycle, plus map fallbacks for
// pathologically label-rich B. The array coders rely on codes < 2n —
// cycle codes ≤ #cycle nodes (each consumes a reserved (class, offset)
// slot), anchor codes ≤ cycle codes, and pair codes ≤ #unmarked tree
// nodes, so their sum is at most 2·#cycle nodes + #unmarked ≤ 2n.
func linearSequentialRaw(ins Instance, sc *Scratch) (rawLabels []int, codes int) {
	n := len(ins.F)
	f, b := ins.F, ins.B

	if n <= mooreCutoff {
		if labels, codes, ok := mooreSmall(ins, sc); ok {
			return labels, codes
		}
		// Discard the fast path's scratch checkouts; the full algorithm
		// re-checks out from index zero (bufInt re-zeroes on grab, and
		// pairArr's zero invariant was restored above).
		sc.reset()
	}

	// Step 1: cycle detection with visit stamps.
	state := sc.bufI8(n) // 0 unvisited, 1 in progress, 2 done
	onCycle := sc.bufBool(n)
	path := sc.bufIntRaw(n)
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		np := 0
		x := s
		for state[x] == 0 {
			state[x] = 1
			path[np] = x
			np++
			x = f[x]
		}
		if state[x] == 1 {
			for i := np - 1; i >= 0; i-- {
				onCycle[path[i]] = true
				if path[i] == x {
					break
				}
			}
		}
		for _, y := range path[:np] {
			state[y] = 2
		}
	}

	// Step 2: canonical form per cycle; Q-codes for cycle nodes.
	// labels[x] holds a provisional dense Q-code. Each canonical class
	// reserves period consecutive slots in codeArr (total reserved ≤ n),
	// so the (class, offset) -> code lookup is one array index.
	labels := sc.bufIntRaw(n)
	if sc.canonCls == nil {
		sc.canonCls = make(map[string]int)
	}
	classBase := sc.bufIntRaw(n) // class -> first slot in codeArr
	codeArr := sc.bufInt(n)   // slot -> code+1 (0 = unassigned)
	reserved := 0
	nextCode := 0

	cycleSeen := sc.bufBool(n)
	// cycleInfo per node for the tree phase.
	cycleOf := sc.bufIntRaw(n)  // leader node of x's cycle (cycle nodes only)
	rankOf := sc.bufIntRaw(n)   // rank of x within its cycle from the leader
	cycleLen := sc.bufIntRaw(n) // full cycle length
	cycleCls := sc.bufIntRaw(n) // canonical class of the cycle
	cycleOff := sc.bufIntRaw(n) // canonical offset shift: Q-offset(x) = (rankOf[x]-msp) mod period
	cyclePer := sc.bufIntRaw(n) // period of the cycle's B-string
	cycSeq := sc.bufIntRaw(n)   // all cycles' nodes, concatenated in rank order
	cycStart := sc.bufIntRaw(n) // leader -> start of its run in cycSeq
	bsBuf := sc.bufIntRaw(n)
	nseq := 0
	key := sc.key[:0]

	for s := 0; s < n; s++ {
		if !onCycle[s] || cycleSeen[s] {
			continue
		}
		start := nseq
		x := s
		for !cycleSeen[x] {
			cycleSeen[x] = true
			cycSeq[nseq] = x
			nseq++
			x = f[x]
		}
		cyc := cycSeq[start:nseq]
		cycStart[s] = start
		bs := bsBuf[:len(cyc)]
		for i, y := range cyc {
			bs[i] = b[y]
		}
		p := circ.SmallestRepeatingPrefix(bs)
		prefix := bs[:p]
		msp := circ.BoothMSP(prefix)
		// Varint-encode the rotated prefix straight into the reusable key
		// buffer; the map lookup on string(key) does not allocate, and a
		// string is materialized only when the class is new.
		key = key[:0]
		for i := 0; i < p; i++ {
			v := prefix[(msp+i)%p]
			for v >= 0x80 {
				key = append(key, byte(v)|0x80)
				v >>= 7
			}
			key = append(key, byte(v), 0xff)
		}
		cls, ok := sc.canonCls[string(key)]
		if !ok {
			cls = len(sc.canonCls)
			sc.canonCls[string(key)] = cls
			classBase[cls] = reserved
			reserved += p
		}
		base := classBase[cls]
		for i, y := range cyc {
			cycleOf[y] = s
			rankOf[y] = i
			cycleLen[y] = len(cyc)
			cycleCls[y] = cls
			cyclePer[y] = p
			cycleOff[y] = msp
			off := ((i-msp)%p + p) % p
			code := codeArr[base+off]
			if code == 0 {
				nextCode++
				code = nextCode
				codeArr[base+off] = code
			}
			labels[y] = code - 1
		}
	}
	sc.key = key // keep the grown buffer for the next solve

	// Order tree nodes by level. Levels are computed iteratively (deep
	// paths would overflow a recursion stack): walk up to the first
	// resolved ancestor, then unwind. The step-1 path buffer is reused.
	level := sc.bufInt(n)
	root := sc.bufIntRaw(n)
	maxLevel := 0
	for s := 0; s < n; s++ {
		x := s
		np := 0
		for !onCycle[x] && level[x] == 0 {
			path[np] = x
			np++
			x = f[x]
		}
		base, r := level[x], x
		if onCycle[x] {
			base, r = 0, x
		} else {
			r = root[x]
		}
		for i := np - 1; i >= 0; i-- {
			base++
			level[path[i]] = base
			root[path[i]] = r
			if base > maxLevel {
				maxLevel = base
			}
		}
		if onCycle[s] {
			root[s] = s
		}
	}
	// Counting sort on level replaces per-level append slices: order holds
	// the tree nodes grouped by ascending level, starts[l] the first index
	// of level l's run.
	cnt := sc.bufInt(maxLevel + 2)
	nTree := 0
	for x := 0; x < n; x++ {
		if !onCycle[x] {
			cnt[level[x]]++
			nTree++
		}
	}
	starts := sc.bufIntRaw(maxLevel + 2)
	sum := 0
	for l := 1; l <= maxLevel; l++ {
		starts[l] = sum
		sum += cnt[l]
	}
	starts[maxLevel+1] = sum
	order := sc.bufIntRaw(nTree)
	copy(cnt[1:maxLevel+1], starts[1:maxLevel+1]) // reuse cnt as fill cursors
	for x := 0; x < n; x++ {
		if !onCycle[x] {
			l := level[x]
			order[cnt[l]] = x
			cnt[l]++
		}
	}

	// Step 3: mark tree nodes matching their cycle counterpart (Lemma 4.1)
	// top-down, so a node is marked only if its whole root path matches.
	marked := sc.bufBool(n)
	for x := 0; x < n; x++ {
		marked[x] = onCycle[x]
	}
	for l := 1; l <= maxLevel; l++ {
		for _, x := range order[starts[l]:starts[l+1]] {
			if !marked[f[x]] {
				continue
			}
			r := root[x]
			k := cycleLen[r]
			// Corresponding cycle node: rank (rank(r) - level) mod k,
			// compared directly on the cycle (rank cr from the leader); on
			// match x inherits that node's Q-code, which step 2 already
			// assigned (a cycle covers every offset of its class).
			cr := ((rankOf[r]-l)%k + k) % k
			if b[x] == b[cycSeq[cycStart[cycleOf[r]]+cr]] {
				p := cyclePer[r]
				off := ((cr-cycleOff[r])%p + p) % p
				marked[x] = true
				labels[x] = codeArr[classBase[cycleCls[r]]+off] - 1
			}
		}
	}

	// Step 4: unmarked nodes top-down with (B, parent-code) pairs
	// (Lemma 4.2). Anchor codes of marked parents are re-coded first so
	// they cannot collide with inner pair codes.
	//
	// Pair identity only needs injectivity of the B half, so unmarked
	// nodes' B-labels are first densely renamed to [0, L); pairs then code
	// through pairArr[parentCode*L + bclass] while the table stays within
	// 16 ints per node (parentCode < 2n), with sc.pairCodes as the map
	// fallback for label-rich B. pairArr keeps its all-zero invariant by
	// undoing exactly the touched slots afterwards.
	bcls := sc.bufIntRaw(n)
	L := 0
	{
		minB, maxB := 0, 0
		first := true
		for i := 0; i < nTree; i++ {
			x := order[i]
			if marked[x] {
				continue
			}
			v := b[x]
			if first {
				minB, maxB, first = v, v, false
			} else if v < minB {
				minB = v
			} else if v > maxB {
				maxB = v
			}
		}
		switch {
		case first:
			// No unmarked nodes; nothing to rename.
		case minB >= 0 && maxB < 4*n:
			tbl := sc.bufInt(maxB + 1)
			for i := 0; i < nTree; i++ {
				x := order[i]
				if marked[x] {
					continue
				}
				id := tbl[b[x]]
				if id == 0 {
					L++
					id = L
					tbl[b[x]] = id
				}
				bcls[x] = id - 1
			}
		default:
			if sc.bRename == nil {
				sc.bRename = make(map[int]int)
			}
			for i := 0; i < nTree; i++ {
				x := order[i]
				if marked[x] {
					continue
				}
				id, ok := sc.bRename[b[x]]
				if !ok {
					id = L
					L++
					sc.bRename[b[x]] = id
				}
				bcls[x] = id
			}
		}
	}

	anchor := sc.bufInt(nextCode) // marked-parent Q-code (a cycle code) -> anchor code+1
	codeCap := 2 * n
	useArr := L > 0 && codeCap*L <= 16*n
	var pairArr []int
	touched := sc.pairTouched[:0]
	if useArr {
		if cap(sc.pairArr) < codeCap*L {
			sc.pairArr = make([]int, codeCap*L)
		}
		pairArr = sc.pairArr[:codeCap*L]
	} else if L > 0 && sc.pairCodes == nil {
		sc.pairCodes = make(map[int64]int)
	}
	for l := 1; l <= maxLevel; l++ {
		for _, x := range order[starts[l]:starts[l+1]] {
			if marked[x] {
				continue
			}
			var parentCode int
			if marked[f[x]] {
				a := anchor[labels[f[x]]]
				if a == 0 {
					nextCode++
					a = nextCode
					anchor[labels[f[x]]] = a
				}
				parentCode = a - 1
			} else {
				parentCode = labels[f[x]]
			}
			if useArr {
				idx := parentCode*L + bcls[x]
				code := pairArr[idx]
				if code == 0 {
					nextCode++
					code = nextCode
					pairArr[idx] = code
					touched = append(touched, idx)
				}
				labels[x] = code - 1
			} else {
				k := int64(parentCode)*int64(L) + int64(bcls[x])
				code, ok := sc.pairCodes[k]
				if !ok {
					nextCode++
					code = nextCode
					sc.pairCodes[k] = code
				}
				labels[x] = code - 1
			}
		}
	}
	for _, idx := range touched {
		pairArr[idx] = 0
	}
	sc.pairTouched = touched[:0]

	return labels, nextCode
}

// intsKey builds a map key from an int slice.
func intsKey(s []int) string {
	buf := make([]byte, 0, len(s)*5)
	for _, v := range s {
		for v >= 0x80 {
			buf = append(buf, byte(v)|0x80)
			v >>= 7
		}
		buf = append(buf, byte(v), 0xff)
	}
	return string(buf)
}
