package coarsest

import (
	"sfcp/internal/circ"
)

// LinearSequential solves the coarsest partition problem in O(n) expected
// time with the cycle/tree decomposition of the paper run sequentially —
// the structure of Paige, Tarjan & Bonic's linear-time solution (reference
// [16]):
//
//  1. find the cycles of the pseudo-forest,
//  2. reduce each cycle's B-label string to its smallest repeating prefix,
//     rotate to the minimal starting point (Booth), and group equal
//     canonical strings: nodes at equal offsets of equivalent cycles share
//     a Q-label (Section 3 of the paper),
//  3. mark tree nodes whose root-path B-labels match the cycle (Lemma 4.1)
//     level by level, giving them the cycle labels,
//  4. label the remaining forest top-down by (B-label, parent Q-label)
//     pair codes (Lemma 4.2).
func LinearSequential(ins Instance) []int {
	n := len(ins.F)
	if n == 0 {
		return []int{}
	}
	f, b := ins.F, ins.B

	// Step 1: cycle detection with visit stamps.
	state := make([]int8, n) // 0 unvisited, 1 in progress, 2 done
	onCycle := make([]bool, n)
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		var path []int
		x := s
		for state[x] == 0 {
			state[x] = 1
			path = append(path, x)
			x = f[x]
		}
		if state[x] == 1 {
			for i := len(path) - 1; i >= 0; i-- {
				onCycle[path[i]] = true
				if path[i] == x {
					break
				}
			}
		}
		for _, y := range path {
			state[y] = 2
		}
	}

	// Step 2: canonical form per cycle; Q-keys for cycle nodes.
	// labels[x] holds a provisional dense Q-code.
	const unset = -1
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unset
	}
	type cycleKey struct {
		class, offset int
	}
	classOfCanon := map[string]int{}
	cycleCodes := map[cycleKey]int{}
	nextCode := 0
	newCode := func() int { nextCode++; return nextCode - 1 }

	cycleSeen := make([]bool, n)
	// cycleInfo per node for the tree phase.
	cycleOf := make([]int, n)  // leader node of x's cycle (cycle nodes only)
	rankOf := make([]int, n)   // rank of x within its cycle from the leader
	cycleLen := make([]int, n) // full cycle length
	cycleCls := make([]int, n) // canonical class of the cycle (by leader)
	cycleOff := make([]int, n) // canonical offset shift: Q-offset(x) = (rankOf[x]-msp) mod period
	cyclePer := make([]int, n) // period of the cycle's B-string
	cycNodes := map[int][]int{}

	for s := 0; s < n; s++ {
		if !onCycle[s] || cycleSeen[s] {
			continue
		}
		var cyc []int
		x := s
		for !cycleSeen[x] {
			cycleSeen[x] = true
			cyc = append(cyc, x)
			x = f[x]
		}
		cycNodes[s] = cyc
		bs := make([]int, len(cyc))
		for i, y := range cyc {
			bs[i] = b[y]
		}
		p := circ.SmallestRepeatingPrefix(bs)
		prefix := bs[:p]
		msp := circ.BoothMSP(prefix)
		canon := make([]int, p)
		for i := 0; i < p; i++ {
			canon[i] = prefix[(msp+i)%p]
		}
		key := intsKey(canon)
		cls, ok := classOfCanon[key]
		if !ok {
			cls = len(classOfCanon)
			classOfCanon[key] = cls
		}
		for i, y := range cyc {
			cycleOf[y] = s
			rankOf[y] = i
			cycleLen[y] = len(cyc)
			cycleCls[y] = cls
			cyclePer[y] = p
			cycleOff[y] = msp
			off := ((i-msp)%p + p) % p
			ck := cycleKey{cls, off}
			code, ok := cycleCodes[ck]
			if !ok {
				code = newCode()
				cycleCodes[ck] = code
			}
			labels[y] = code
		}
	}

	// Order tree nodes by level (counting sort on level). Levels are
	// computed iteratively (deep paths would overflow a recursion stack):
	// walk up to the first resolved ancestor, then unwind.
	level := make([]int, n)
	root := make([]int, n)
	maxLevel := 0
	var stack []int
	for s := 0; s < n; s++ {
		x := s
		stack = stack[:0]
		for !onCycle[x] && level[x] == 0 {
			stack = append(stack, x)
			x = f[x]
		}
		base, r := level[x], x
		if onCycle[x] {
			base, r = 0, x
		} else {
			r = root[x]
		}
		for i := len(stack) - 1; i >= 0; i-- {
			base++
			level[stack[i]] = base
			root[stack[i]] = r
			if base > maxLevel {
				maxLevel = base
			}
		}
		if onCycle[s] {
			root[s] = s
		}
	}
	byLevel := make([][]int, maxLevel+1)
	for x := 0; x < n; x++ {
		if !onCycle[x] {
			byLevel[level[x]] = append(byLevel[level[x]], x)
		}
	}

	// Step 3: mark tree nodes matching their cycle counterpart (Lemma 4.1)
	// top-down, so a node is marked only if its whole root path matches.
	marked := make([]bool, n)
	for x := 0; x < n; x++ {
		marked[x] = onCycle[x]
	}
	for l := 1; l <= maxLevel; l++ {
		for _, x := range byLevel[l] {
			if !marked[f[x]] {
				continue
			}
			r := root[x]
			k := cycleLen[r]
			// Corresponding cycle node: rank (rank(r) - level) mod k.
			cr := ((rankOf[r]-l)%k + k) % k
			// Find its Q-code via the canonical key.
			p := cyclePer[r]
			off := ((cr-cycleOff[r])%p + p) % p
			corresp := cycleCodes[cycleKey{cycleCls[r], off}]
			// Compare B-labels: x must match the corresponding node,
			// looked up directly on the cycle (rank cr from the leader).
			if b[x] == b[cycNodes[cycleOf[r]][cr]] {
				marked[x] = true
				labels[x] = corresp
			}
		}
	}

	// Step 4: unmarked nodes top-down with (B, parent-code) pairs
	// (Lemma 4.2). Anchor codes of labeled parents are tagged so they
	// cannot collide with inner pair codes.
	type pairKey struct{ a, b int }
	pairCodes := map[pairKey]int{}
	anchorCodes := map[int]int{}
	for l := 1; l <= maxLevel; l++ {
		for _, x := range byLevel[l] {
			if marked[x] {
				continue
			}
			var parentCode int
			if marked[f[x]] {
				code, ok := anchorCodes[labels[f[x]]]
				if !ok {
					code = newCode()
					anchorCodes[labels[f[x]]] = code
				}
				parentCode = code
			} else {
				parentCode = labels[f[x]]
			}
			pk := pairKey{b[x], parentCode}
			code, ok := pairCodes[pk]
			if !ok {
				code = newCode()
				pairCodes[pk] = code
			}
			labels[x] = code
		}
	}

	return NormalizeLabels(labels)
}

// intsKey builds a map key from an int slice.
func intsKey(s []int) string {
	buf := make([]byte, 0, len(s)*5)
	for _, v := range s {
		for v >= 0x80 {
			buf = append(buf, byte(v)|0x80)
			v >>= 7
		}
		buf = append(buf, byte(v), 0xff)
	}
	return string(buf)
}
