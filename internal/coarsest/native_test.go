package coarsest

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNativeParallelPaperExample(t *testing.T) {
	ins, aq := paperExample22()
	for _, workers := range []int{1, 2, 4, 8} {
		got := NativeParallel(ins, workers)
		if !SamePartition(got, aq) {
			t.Errorf("workers=%d: labels %v not equivalent to %v", workers, got, aq)
		}
	}
}

func TestNativeParallelRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(60)
		ins := randomInstance(rng, n, 1+rng.Intn(4))
		want := Moore(ins)
		got := NativeParallel(ins, 1+rng.Intn(8))
		if !SamePartition(got, want) {
			t.Fatalf("F=%v B=%v: got %v, want %v", ins.F, ins.B, got, want)
		}
	}
}

func TestNativeParallelDeterministicOutput(t *testing.T) {
	// Labels are normalized by first occurrence, so output must be
	// identical across runs and worker counts even though internal codes
	// are scheduling-dependent.
	rng := rand.New(rand.NewSource(72))
	ins := randomInstance(rng, 500, 3)
	base := NativeParallel(ins, 1)
	for trial := 0; trial < 5; trial++ {
		got := NativeParallel(ins, 4)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("nondeterministic output at %d", i)
			}
		}
	}
}

func TestNativeParallelLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, n := range []int{2000, 10000} {
		ins := randomInstance(rng, n, 3)
		want := LinearSequential(ins)
		got := NativeParallel(ins, 0)
		if !SamePartition(got, want) {
			t.Fatalf("n=%d: native parallel disagrees with linear", n)
		}
	}
}

func TestNativeParallelDeepChain(t *testing.T) {
	n := 3000
	f := make([]int, n)
	b := make([]int, n)
	f[0] = 0
	for i := 1; i < n; i++ {
		f[i] = i - 1
		b[i] = i % 3
	}
	ins := Instance{F: f, B: b}
	if !SamePartition(NativeParallel(ins, 4), Hopcroft(ins)) {
		t.Fatal("native parallel wrong on deep chain")
	}
}

func TestNativeParallelEmpty(t *testing.T) {
	if got := NativeParallel(Instance{F: []int{}, B: []int{}}, 4); len(got) != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestNativeParallelProperty(t *testing.T) {
	prop := func(rawF []uint16, rawB []uint8, w uint8) bool {
		n := len(rawF)
		if n == 0 {
			return true
		}
		ins := Instance{F: make([]int, n), B: make([]int, n)}
		for i := range rawF {
			ins.F[i] = int(rawF[i]) % n
			if i < len(rawB) {
				ins.B[i] = int(rawB[i] % 3)
			}
		}
		return SamePartition(NativeParallel(ins, int(w%8)+1), Moore(ins))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDoublingBaselinesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		ins := randomInstance(rng, n, 1+rng.Intn(3))
		want := Moore(ins)
		gotHash := DoublingHashPRAM(ins, ParallelOptions{}).Labels
		gotSort := DoublingSortPRAM(ins, ParallelOptions{}).Labels
		if !SamePartition(gotHash, want) {
			t.Fatalf("hash doubling wrong on F=%v B=%v: %v vs %v", ins.F, ins.B, gotHash, want)
		}
		if !SamePartition(gotSort, want) {
			t.Fatalf("sort doubling wrong on F=%v B=%v: %v vs %v", ins.F, ins.B, gotSort, want)
		}
	}
}

func TestDoublingPaperExample(t *testing.T) {
	ins, aq := paperExample22()
	if got := DoublingHashPRAM(ins, ParallelOptions{}); !SamePartition(got.Labels, aq) {
		t.Error("hash doubling fails the paper example")
	}
	if got := DoublingSortPRAM(ins, ParallelOptions{}); !SamePartition(got.Labels, aq) {
		t.Error("sort doubling fails the paper example")
	}
}

func TestDoublingEmpty(t *testing.T) {
	res := DoublingHashPRAM(Instance{F: []int{}, B: []int{}}, ParallelOptions{})
	if len(res.Labels) != 0 {
		t.Fatal("empty doubling")
	}
}

func TestCostOrderingAcrossAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("asymptotic work-ordering sweep; covered by the non-short test run")
	}
	// The paper's Table-of-prior-work claim (intro): JáJá–Ryu work <
	// Galley–Iliopoulos-shape (n log n) < Srikant-shape (n log^2 n) at
	// equal O(log n)-ish time. Verify the measured work ordering on a
	// moderately large random instance.
	rng := rand.New(rand.NewSource(75))
	ins := randomInstance(rng, 1<<12, 3)
	paper := ParallelPRAM(ins, ParallelOptions{})
	gi := DoublingHashPRAM(ins, ParallelOptions{})
	srikant := DoublingSortPRAM(ins, ParallelOptions{})
	if !SamePartition(paper.Labels, gi.Labels) || !SamePartition(paper.Labels, srikant.Labels) {
		t.Fatal("algorithms disagree on labels")
	}
	if srikant.Stats.Work <= gi.Stats.Work {
		t.Errorf("Srikant-shape work %d should exceed GI-shape %d", srikant.Stats.Work, gi.Stats.Work)
	}
}

func TestChoHuynhAgainstMoore(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(50)
		ins := randomInstance(rng, n, 1+rng.Intn(3))
		got := ChoHuynhPRAM(ins, ParallelOptions{})
		want := Moore(ins)
		if !SamePartition(got.Labels, want) {
			t.Fatalf("F=%v B=%v: got %v, want %v", ins.F, ins.B, got.Labels, want)
		}
	}
	if got := ChoHuynhPRAM(Instance{F: []int{}, B: []int{}}, ParallelOptions{}); len(got.Labels) != 0 {
		t.Fatal("empty Cho-Huynh")
	}
}

func TestChoHuynhQuadraticWork(t *testing.T) {
	// The point of the baseline: Theta(n^2) operations.
	work := func(n int) int64 {
		rng := rand.New(rand.NewSource(77))
		ins := randomInstance(rng, n, 3)
		return ChoHuynhPRAM(ins, ParallelOptions{}).Stats.Work
	}
	w256, w1024 := work(256), work(1024)
	if ratio := float64(w1024) / float64(w256); ratio < 8 {
		t.Errorf("4x n grew work only %.1fx, want ~16x (quadratic)", ratio)
	}
}

func TestNativeParallelScratchReuse(t *testing.T) {
	// One arena across many instances of varying size and shape must give
	// exactly the labels of a fresh run (stale buffer contents must not
	// leak between solves).
	rng := rand.New(rand.NewSource(78))
	var sc Scratch
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(120)
		ins := randomInstance(rng, n, 1+rng.Intn(4))
		got := NativeParallelScratch(ins, 4, &sc)
		want := NativeParallel(ins, 4)
		if !SamePartition(got, want) {
			t.Fatalf("trial %d: scratch run diverged: got %v, want %v", trial, got, want)
		}
	}
	if got := NativeParallelScratch(Instance{F: []int{}, B: []int{}}, 0, &sc); len(got) != 0 {
		t.Fatal("empty instance with scratch")
	}
}
