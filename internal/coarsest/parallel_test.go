package coarsest

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sfcp/internal/circ"
	"sfcp/internal/intsort"
	"sfcp/internal/listrank"
)

func solvePRAM(ins Instance) []int {
	return ParallelPRAM(ins, ParallelOptions{}).Labels
}

func TestParallelPaperExample22(t *testing.T) {
	ins, aq := paperExample22()
	res := ParallelPRAM(ins, ParallelOptions{})
	if !SamePartition(res.Labels, aq) {
		t.Fatalf("labels %v not equivalent to the paper's A_Q %v", res.Labels, aq)
	}
	if res.NumClasses != 4 {
		t.Fatalf("NumClasses = %d, want 4", res.NumClasses)
	}
}

func TestParallelEmptyAndTiny(t *testing.T) {
	if got := solvePRAM(Instance{F: []int{}, B: []int{}}); len(got) != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := solvePRAM(Instance{F: []int{0}, B: []int{7}}); len(got) != 1 || got[0] != 0 {
		t.Fatalf("singleton = %v", got)
	}
	got := solvePRAM(Instance{F: []int{1, 0}, B: []int{3, 3}})
	want := Moore(Instance{F: []int{1, 0}, B: []int{3, 3}})
	if !SamePartition(got, want) {
		t.Fatalf("2-cycle: got %v want %v", got, want)
	}
}

func TestParallelSmallShapes(t *testing.T) {
	cases := []Instance{
		{F: []int{0}, B: []int{0}},
		{F: []int{1, 0}, B: []int{0, 1}},
		{F: []int{0, 0, 0}, B: []int{0, 1, 1}},
		{F: []int{1, 2, 0, 0, 3}, B: []int{0, 1, 0, 1, 0}},
		{F: []int{3, 3, 3, 3}, B: []int{1, 1, 1, 0}},
		{F: []int{1, 2, 3, 0, 5, 6, 7, 4}, B: []int{0, 1, 0, 1, 0, 1, 0, 1}}, // two equivalent 4-cycles
		{F: []int{1, 2, 3, 0, 5, 6, 7, 4}, B: []int{0, 1, 0, 1, 1, 0, 1, 0}}, // shifted labels
		{F: []int{0, 0, 1, 1, 2, 2, 3, 3}, B: []int{0, 0, 0, 0, 0, 0, 0, 1}}, // deep tree
		{F: []int{2, 2, 3, 2}, B: []int{1, 1, 0, 1}},
	}
	for _, ins := range cases {
		want := Moore(ins)
		got := solvePRAM(ins)
		if !SamePartition(got, want) {
			t.Errorf("F=%v B=%v: got %v, want %v", ins.F, ins.B, got, want)
		}
	}
}

func TestParallelRandomAgainstMoore(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		ins := randomInstance(rng, n, 1+rng.Intn(4))
		want := Moore(ins)
		got := solvePRAM(ins)
		if !SamePartition(got, want) {
			t.Fatalf("F=%v B=%v: got %v, want %v", ins.F, ins.B, got, want)
		}
	}
}

func TestParallelPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		ins := permutationInstance(rng, n, 1+rng.Intn(3))
		want := Moore(ins)
		got := solvePRAM(ins)
		if !SamePartition(got, want) {
			t.Fatalf("perm F=%v B=%v: got %v, want %v", ins.F, ins.B, got, want)
		}
	}
}

func TestParallelAllOptionCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	ins := randomInstance(rng, 60, 3)
	want := Moore(ins)
	for _, sort := range []intsort.Strategy{intsort.Modeled, intsort.BitSplit} {
		for _, rank := range []listrank.Method{listrank.Wyllie, listrank.RulingSet} {
			for _, pad := range []circ.Pad{circ.PadMin, circ.PadBlank} {
				got := ParallelPRAM(ins, ParallelOptions{Sort: sort, Rank: rank, Pad: pad}).Labels
				if !SamePartition(got, want) {
					t.Errorf("sort=%v rank=%v pad=%v: wrong partition", sort, rank, pad)
				}
			}
		}
	}
}

func TestParallelDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	ins := randomInstance(rng, 80, 3)
	base := ParallelPRAM(ins, ParallelOptions{Workers: 1}).Labels
	for _, w := range []int{2, 4, 8} {
		got := ParallelPRAM(ins, ParallelOptions{Workers: w}).Labels
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: nondeterministic labels", w)
			}
		}
	}
}

func TestParallelSeedInvariance(t *testing.T) {
	// Different Arbitrary-CRCW winners must not change the partition.
	rng := rand.New(rand.NewSource(65))
	ins := randomInstance(rng, 70, 3)
	want := Moore(ins)
	for _, seed := range []uint64{1, 42, 0xdeadbeef} {
		got := ParallelPRAM(ins, ParallelOptions{Seed: seed}).Labels
		if !SamePartition(got, want) {
			t.Fatalf("seed=%d: wrong partition", seed)
		}
	}
}

func TestParallelPureCycleFamilies(t *testing.T) {
	// k cycles of length l with periodic labels: stresses period
	// reduction, m.s.p. alignment and cycle equivalence.
	for _, tc := range []struct{ k, l, period int }{
		{1, 12, 4}, {3, 12, 4}, {4, 6, 3}, {2, 16, 16}, {5, 1, 1}, {2, 2, 1},
	} {
		n := tc.k * tc.l
		f := make([]int, n)
		b := make([]int, n)
		pattern := []int{1, 2, 1, 3, 2, 2, 3, 1, 1, 2, 3, 3, 1, 3, 2, 1}
		for c := 0; c < tc.k; c++ {
			for i := 0; i < tc.l; i++ {
				idx := c*tc.l + i
				f[idx] = c*tc.l + (i+1)%tc.l
				b[idx] = pattern[(i+c)%tc.period] // shifted per cycle
			}
		}
		ins := Instance{F: f, B: b}
		want := Moore(ins)
		got := solvePRAM(ins)
		if !SamePartition(got, want) {
			t.Fatalf("k=%d l=%d period=%d: got %v, want %v", tc.k, tc.l, tc.period, got, want)
		}
	}
}

func TestParallelDeepTrees(t *testing.T) {
	// Long chains into a small cycle, with both matching and mismatching
	// label patterns (exercises marked/unmarked paths of Section 4).
	n := 600
	f := make([]int, n)
	b := make([]int, n)
	// Cycle 0-1-2 with labels 0,1,2; chain from n-1 down to 3 attaching at 0.
	f[0], f[1], f[2] = 1, 2, 0
	b[0], b[1], b[2] = 0, 1, 2
	for i := 3; i < n; i++ {
		f[i] = i - 1
		b[i] = (i - 3) % 3 // partially matching the cycle pattern
	}
	ins := Instance{F: f, B: b}
	want := Hopcroft(ins)
	got := solvePRAM(ins)
	if !SamePartition(got, want) {
		t.Fatalf("deep tree: partitions differ (%d vs %d classes)",
			NumClasses(got), NumClasses(want))
	}
}

func TestParallelStarForest(t *testing.T) {
	// Many leaves into one self-loop: wide flat trees.
	n := 300
	f := make([]int, n)
	b := make([]int, n)
	for i := 1; i < n; i++ {
		b[i] = i % 4
	}
	ins := Instance{F: f, B: b}
	want := Moore(ins)
	got := solvePRAM(ins)
	if !SamePartition(got, want) {
		t.Fatal("star forest: partitions differ")
	}
}

func TestParallelProperty(t *testing.T) {
	prop := func(rawF []uint16, rawB []uint8, seed uint16) bool {
		n := len(rawF)
		if n == 0 {
			return true
		}
		ins := Instance{F: make([]int, n), B: make([]int, n)}
		for i := range rawF {
			ins.F[i] = int(rawF[i]) % n
			if i < len(rawB) {
				ins.B[i] = int(rawB[i] % 3)
			}
		}
		got := ParallelPRAM(ins, ParallelOptions{Seed: uint64(seed) + 1}).Labels
		return SamePartition(got, Moore(ins))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelMediumRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for _, n := range []int{200, 500, 1500} {
		ins := randomInstance(rng, n, 3)
		want := LinearSequential(ins)
		got := solvePRAM(ins)
		if !SamePartition(got, want) {
			t.Fatalf("n=%d: parallel and linear disagree", n)
		}
	}
}

func TestParallelStatsReported(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	ins := randomInstance(rng, 256, 3)
	res := ParallelPRAM(ins, ParallelOptions{})
	if res.Stats.Rounds == 0 || res.Stats.Work == 0 {
		t.Fatalf("stats not collected: %+v", res.Stats)
	}
	if res.Stats.Work < int64(256) {
		t.Fatalf("work %d implausibly low", res.Stats.Work)
	}
}
