package coarsest

// Moore solves the coarsest partition problem by naive iterative
// refinement: repeatedly replace every label by the pair
// (label(x), label(f(x))) until the number of classes stops growing
// (Lemma 2.1(i) iterated to a fixpoint). Worst case O(n^2), the reference
// oracle for all other solvers.
func Moore(ins Instance) []int {
	n := len(ins.F)
	if n == 0 {
		return []int{}
	}
	labels := NormalizeLabels(ins.B)
	count := NumClasses(labels)
	for {
		codes := make(map[[2]int]int, count*2)
		next := make([]int, n)
		for x := 0; x < n; x++ {
			key := [2]int{labels[x], labels[ins.F[x]]}
			id, ok := codes[key]
			if !ok {
				id = len(codes)
				codes[key] = id
			}
			next[x] = id
		}
		labels = next
		if len(codes) == count {
			return NormalizeLabels(labels)
		}
		count = len(codes)
	}
}
