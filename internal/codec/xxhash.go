package codec

import (
	"encoding/binary"
	"math/bits"
)

// xxh64 is a streaming implementation of the XXH64 hash (Yann Collet's
// xxHash, 64-bit variant) used for the wire-format digest trailer. It is
// self-contained so the codec stays dependency-free; the known-answer
// vectors in codec_test.go pin it to the reference algorithm.
type xxh64 struct {
	v1, v2, v3, v4 uint64
	total          uint64
	mem            [32]byte
	n              int // bytes buffered in mem
}

const (
	prime64x1 uint64 = 11400714785074694791
	prime64x2 uint64 = 14029467366897019727
	prime64x3 uint64 = 1609587929392839161
	prime64x4 uint64 = 9650029242287828579
	prime64x5 uint64 = 2870177450012600261
)

func (x *xxh64) reset() {
	// Accumulator seeds per the XXH64 spec with seed 0; the v1 and v4
	// expressions wrap, so compute them in the variables.
	x.v1 = prime64x1
	x.v1 += prime64x2
	x.v2 = prime64x2
	x.v3 = 0
	x.v4 = 0
	x.v4 -= prime64x1
	x.total = 0
	x.n = 0
}

func xxhRound(acc, input uint64) uint64 {
	acc += input * prime64x2
	acc = bits.RotateLeft64(acc, 31)
	return acc * prime64x1
}

func xxhMerge(acc, val uint64) uint64 {
	acc ^= xxhRound(0, val)
	return acc*prime64x1 + prime64x4
}

func (x *xxh64) write(p []byte) {
	x.total += uint64(len(p))
	if x.n > 0 {
		c := copy(x.mem[x.n:], p)
		x.n += c
		p = p[c:]
		if x.n < 32 {
			return
		}
		x.consume(x.mem[:])
		x.n = 0
	}
	for len(p) >= 32 {
		x.consume(p[:32])
		p = p[32:]
	}
	x.n = copy(x.mem[:], p)
}

func (x *xxh64) consume(block []byte) {
	x.v1 = xxhRound(x.v1, binary.LittleEndian.Uint64(block[0:]))
	x.v2 = xxhRound(x.v2, binary.LittleEndian.Uint64(block[8:]))
	x.v3 = xxhRound(x.v3, binary.LittleEndian.Uint64(block[16:]))
	x.v4 = xxhRound(x.v4, binary.LittleEndian.Uint64(block[24:]))
}

func (x *xxh64) sum() uint64 {
	var h uint64
	if x.total >= 32 {
		h = bits.RotateLeft64(x.v1, 1) + bits.RotateLeft64(x.v2, 7) +
			bits.RotateLeft64(x.v3, 12) + bits.RotateLeft64(x.v4, 18)
		h = xxhMerge(h, x.v1)
		h = xxhMerge(h, x.v2)
		h = xxhMerge(h, x.v3)
		h = xxhMerge(h, x.v4)
	} else {
		h = prime64x5 // seed 0
	}
	h += x.total
	tail := x.mem[:x.n]
	for ; len(tail) >= 8; tail = tail[8:] {
		h ^= xxhRound(0, binary.LittleEndian.Uint64(tail))
		h = bits.RotateLeft64(h, 27)*prime64x1 + prime64x4
	}
	if len(tail) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(tail)) * prime64x1
		h = bits.RotateLeft64(h, 23)*prime64x2 + prime64x3
		tail = tail[4:]
	}
	for _, b := range tail {
		h ^= uint64(b) * prime64x5
		h = bits.RotateLeft64(h, 11) * prime64x1
	}
	h ^= h >> 33
	h *= prime64x2
	h ^= h >> 29
	h *= prime64x3
	h ^= h >> 32
	return h
}
