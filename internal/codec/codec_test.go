package codec

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"sfcp/internal/workload"
)

// TestXXH64Vectors pins the digest implementation to the reference XXH64
// algorithm with known-answer vectors (including a 63-byte input that
// exercises the 32-byte block path and every tail branch).
func TestXXH64Vectors(t *testing.T) {
	vectors := []struct {
		in   string
		want uint64
	}{
		{"", 0xef46db3751d8e999},
		{"a", 0xd24ec4f1a98c6e5b},
		{"as", 0x1c330fb2d66be179},
		{"asd", 0x631c37ce72a97393},
		{"asdf", 0x415872f599cea71e},
		{"Call me Ishmael. Some years ago--never mind how long precisely-",
			0x02a2e85470d6fd96},
	}
	for _, v := range vectors {
		var x xxh64
		x.reset()
		x.write([]byte(v.in))
		if got := x.sum(); got != v.want {
			t.Errorf("xxh64(%q) = %016x, want %016x", v.in, got, v.want)
		}
		// Streaming in odd-sized pieces must agree with one-shot hashing.
		x.reset()
		for i := 0; i < len(v.in); i += 3 {
			end := i + 3
			if end > len(v.in) {
				end = len(v.in)
			}
			x.write([]byte(v.in[i:end]))
		}
		if got := x.sum(); got != v.want {
			t.Errorf("streamed xxh64(%q) = %016x, want %016x", v.in, got, v.want)
		}
	}
}

func encodeOrDie(t *testing.T, f, b []int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, f, b); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		f, b []int
	}{
		{"empty", []int{}, []int{}},
		{"single", []int{0}, []int{7}},
		{"small", []int{1, 2, 0, 0}, []int{0, 0, 1, 0}},
		{"wide values", []int{0, 1}, []int{maxInt, 1 << 40}},
		{"random", workload.RandomFunction(3, 1000, 5).F, workload.RandomFunction(3, 1000, 5).B},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := encodeOrDie(t, tc.f, tc.b)
			if got, want := len(data), EncodedSize(tc.f, tc.b); got != want {
				t.Errorf("EncodedSize = %d, emitted %d bytes", want, got)
			}
			f, b, err := Decode(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(f, tc.f) || !equalInts(b, tc.b) {
				t.Fatalf("round trip: got F=%v B=%v, want F=%v B=%v", f, b, tc.f, tc.b)
			}
			// Canonical: re-encoding the decoded instance is byte-identical.
			if again := encodeOrDie(t, f, b); !bytes.Equal(again, data) {
				t.Error("re-encoded bytes differ from the original encoding")
			}
		})
	}
}

func TestSmallChunkSizes(t *testing.T) {
	// Chunk boundaries must be invisible: tiny buffers on both sides force
	// varints to straddle every refill.
	ins := workload.RandomFunction(9, 4096, 4)
	var buf bytes.Buffer
	if err := NewWriterSize(&buf, 1).Encode(ins.F, ins.B); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), encodeOrDie(t, ins.F, ins.B)) {
		t.Fatal("chunked writer emitted different bytes")
	}
	r := NewReaderSize(iotest{bytes.NewReader(buf.Bytes())}, 1)
	f, b, err := r.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(f, ins.F) || !equalInts(b, ins.B) {
		t.Fatal("round trip through minimum-size chunks failed")
	}
}

// noProgressReader always returns (0, nil), which io.Reader permits.
type noProgressReader struct{}

func (noProgressReader) Read([]byte) (int, error) { return 0, nil }

// iotest dribbles one byte per Read to exercise partial fills.
type iotest struct{ r io.Reader }

func (d iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return d.r.Read(p)
}

func TestConcatenatedInstances(t *testing.T) {
	instances := [][2][]int{
		{[]int{1, 0}, []int{0, 1}},
		{[]int{0}, []int{3}},
		{[]int{2, 0, 1}, []int{1, 1, 0}},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var digests []string
	for _, ins := range instances {
		if err := w.Encode(ins[0], ins[1]); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i, ins := range instances {
		f, b, err := r.Decode()
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if !equalInts(f, ins[0]) || !equalInts(b, ins[1]) {
			t.Fatalf("instance %d: got F=%v B=%v", i, f, b)
		}
		digests = append(digests, r.Digest())
		more, err := r.More()
		if err != nil {
			t.Fatalf("instance %d: More: %v", i, err)
		}
		if want := i < len(instances)-1; more != want {
			t.Fatalf("instance %d: More = %v, want %v", i, more, want)
		}
	}
	if _, _, err := r.Decode(); err != io.EOF {
		t.Fatalf("after last instance: err = %v, want io.EOF", err)
	}
	if digests[0] == digests[1] || len(digests[0]) != 16 {
		t.Errorf("per-instance digests not distinct 16-hex strings: %v", digests)
	}
	// Digests are content addresses: re-encoding instance 1 alone gives the
	// same digest it had inside the concatenated stream.
	r2 := NewReader(bytes.NewReader(encodeOrDie(t, instances[1][0], instances[1][1])))
	if _, _, err := r2.Decode(); err != nil {
		t.Fatal(err)
	}
	if r2.Digest() != digests[1] {
		t.Errorf("digest not stable across streams: %s vs %s", r2.Digest(), digests[1])
	}
}

func TestEncodeRejects(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, []int{0, 1}, []int{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := Encode(&buf, []int{-1}, []int{0}); err == nil {
		t.Error("negative F accepted")
	}
	if err := Encode(&buf, []int{0}, []int{-5}); err == nil {
		t.Error("negative B accepted")
	}
	if buf.Len() != 0 {
		t.Errorf("rejected instances emitted %d bytes, want 0", buf.Len())
	}
	// Validation is up front: a bad value far past the chunk size must not
	// leave a truncated partial stream behind.
	ins := workload.RandomFunction(6, 100_000, 3)
	ins.F[len(ins.F)-1] = -1
	if err := NewWriterSize(&buf, minChunk).Encode(ins.F, ins.B); err == nil {
		t.Error("late negative value accepted")
	}
	if buf.Len() != 0 {
		t.Errorf("late-rejected instance emitted %d bytes, want 0", buf.Len())
	}
}

func TestResetClearsDigest(t *testing.T) {
	data := encodeOrDie(t, []int{1, 0}, []int{0, 1})
	r := NewReader(bytes.NewReader(data))
	if _, _, err := r.Decode(); err != nil {
		t.Fatal(err)
	}
	if r.Digest() == "0000000000000000" {
		t.Fatal("decode left digest zero")
	}
	r.Reset(bytes.NewReader([]byte("garbage")))
	if got := r.Digest(); got != "0000000000000000" {
		t.Errorf("Digest after Reset = %s, want zero", got)
	}
}

func TestDecodeMalformed(t *testing.T) {
	valid := encodeOrDie(t, []int{1, 2, 0}, []int{0, 1, 0})
	flipPayload := bytes.Clone(valid)
	flipPayload[headerSize+1] ^= 0x01
	flipTrailer := bytes.Clone(valid)
	flipTrailer[len(flipTrailer)-1] ^= 0xff
	overflowVarint := append([]byte("SFCP\x01\x00"),
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02)
	hugeValue := append([]byte("SFCP\x01\x00"), 0x01, // n = 1
		0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) // F[0] = 1<<63
	paddedVarint := append([]byte("SFCP\x01\x00"), 0x81, 0x00) // n = 1, non-minimal

	cases := []struct {
		name string
		data []byte
		want string // substring of the error
	}{
		{"bad magic", []byte("NOPE\x01\x00\x00"), "bad magic"},
		{"bad version", []byte("SFCP\x09\x00\x00"), "unsupported version"},
		{"bad flags", []byte("SFCP\x01\x07\x00"), "unsupported flags"},
		{"truncated header", valid[:3], "truncated"},
		{"truncated count", valid[:headerSize], "truncated"},
		{"truncated payload", valid[:headerSize+2], "truncated"},
		{"truncated trailer", valid[:len(valid)-3], "truncated"},
		{"payload corruption", flipPayload, "digest mismatch"},
		{"trailer corruption", flipTrailer, "digest mismatch"},
		{"varint overflow", overflowVarint, "overflows 64 bits"},
		{"value overflows int", hugeValue, "overflows int"},
		{"non-minimal varint", paddedVarint, "non-minimal varint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Decode(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("malformed input accepted")
			}
			if !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
				t.Errorf("err %q missing %q", err, tc.want)
			}
		})
	}

	t.Run("empty stream", func(t *testing.T) {
		if _, _, err := Decode(bytes.NewReader(nil)); err != io.EOF {
			t.Errorf("err = %v, want io.EOF", err)
		}
	})
	t.Run("n exceeds MaxN", func(t *testing.T) {
		r := NewReader(bytes.NewReader(valid))
		r.MaxN = 2
		_, _, err := r.Decode()
		if err == nil || !bytes.Contains([]byte(err.Error()), []byte("exceeds limit 2")) {
			t.Errorf("err = %v, want size-limit error", err)
		}
	})
	t.Run("no-progress source", func(t *testing.T) {
		// (0, nil) forever is legal under io.Reader; the decoder must give
		// up rather than spin.
		_, _, err := NewReader(noProgressReader{}).Decode()
		if !errors.Is(err, io.ErrNoProgress) {
			t.Errorf("err = %v, want wrapped io.ErrNoProgress", err)
		}
	})
	t.Run("truncated mid-stream is not EOF", func(t *testing.T) {
		_, _, err := Decode(bytes.NewReader(valid[:headerSize+2]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("err = %v, want wrapped io.ErrUnexpectedEOF", err)
		}
	})
}

// TestHugeRoundTripAllocs is the scale acceptance check: a 10^7-element
// instance round-trips through the codec and the decoder performs O(1)
// allocations per instance (its extra memory is the fixed chunk buffer),
// measured with testing.AllocsPerRun over a reused Reader and outputs.
func TestHugeRoundTripAllocs(t *testing.T) {
	n := 10_000_000
	if testing.Short() {
		n = 100_000
	}
	ins := workload.RandomFunction(42, n, 8)
	var buf bytes.Buffer
	buf.Grow(EncodedSize(ins.F, ins.B))
	if err := Encode(&buf, ins.F, ins.B); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	br := bytes.NewReader(data)
	r := NewReader(br)
	f := make([]int, 0, n)
	b := make([]int, 0, n)
	var decodeErr error
	allocs := testing.AllocsPerRun(2, func() {
		br.Reset(data)
		r.Reset(br)
		f, b, decodeErr = r.DecodeInto(f, b)
	})
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	if allocs > 4 {
		t.Errorf("decoder performed %v allocations per %d-element instance, want O(1)", allocs, n)
	}
	if !equalInts(f, ins.F) || !equalInts(b, ins.B) {
		t.Fatal("huge instance did not round-trip")
	}
}

func BenchmarkDecode(b *testing.B) {
	ins := workload.RandomFunction(7, 1<<20, 4)
	var buf bytes.Buffer
	if err := Encode(&buf, ins.F, ins.B); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	br := bytes.NewReader(data)
	r := NewReader(br)
	var f, bb []int
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(data)
		r.Reset(br)
		var err error
		f, bb, err = r.DecodeInto(f, bb)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	ins := workload.RandomFunction(7, 1<<20, 4)
	b.SetBytes(int64(EncodedSize(ins.F, ins.B)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Encode(io.Discard, ins.F, ins.B); err != nil {
			b.Fatal(err)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
