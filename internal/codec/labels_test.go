package codec

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestLabelsRoundTrip(t *testing.T) {
	cases := [][]int{
		{},
		{0},
		{0, 1, 2, 1, 0},
		make([]int, 10_000), // long run of zeros
	}
	for i := range cases[3] {
		cases[3][i] = (i * 31) % 997
	}
	for i, labels := range cases {
		var buf bytes.Buffer
		if err := EncodeLabels(&buf, labels); err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got, err := DecodeLabels(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if len(got) != len(labels) {
			t.Fatalf("case %d: length %d, want %d", i, len(got), len(labels))
		}
		for j := range got {
			if got[j] != labels[j] {
				t.Fatalf("case %d: [%d] = %d, want %d", i, j, got[j], labels[j])
			}
		}
	}
}

func TestLabelsStreamKindsNotConfusable(t *testing.T) {
	var ins, lab bytes.Buffer
	if err := Encode(&ins, []int{0, 1}, []int{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeLabels(&lab, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeLabels(bytes.NewReader(ins.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "not a labels stream") {
		t.Errorf("instance stream decoded as labels: %v", err)
	}
	if _, _, err := Decode(bytes.NewReader(lab.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "flags") {
		t.Errorf("labels stream decoded as instance: %v", err)
	}
}

func TestLabelsRejectsAndEOF(t *testing.T) {
	if err := EncodeLabels(io.Discard, []int{0, -1}); err == nil {
		t.Error("negative label accepted")
	}
	if _, err := DecodeLabels(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
	var buf bytes.Buffer
	if err := EncodeLabels(&buf, []int{3, 1, 2}); err != nil {
		t.Fatal(err)
	}
	// Corrupt a payload byte: the trailer must catch it.
	wire := bytes.Clone(buf.Bytes())
	wire[headerSize+1] ^= 0x40
	if _, err := DecodeLabels(bytes.NewReader(wire)); !errors.Is(err, ErrDigestMismatch) {
		t.Errorf("corrupted labels stream: err = %v, want ErrDigestMismatch", err)
	}
	// Truncation is a distinct, non-recoverable error.
	if _, err := DecodeLabels(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil ||
		!errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated labels stream: err = %v, want unexpected EOF", err)
	}
}

// TestDigestMismatchLeavesReaderAligned pins the recovery property batch
// ingest relies on: after ErrDigestMismatch the reader sits exactly at the
// next instance boundary, so subsequent members still decode.
func TestDigestMismatchLeavesReaderAligned(t *testing.T) {
	var stream bytes.Buffer
	if err := Encode(&stream, []int{1, 0}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&stream, []int{0, 1, 2}, []int{2, 1, 0}); err != nil {
		t.Fatal(err)
	}
	wire := bytes.Clone(stream.Bytes())
	// Flip a low bit of member 0's F[0] varint (1 -> 0): the value changes
	// but every varint keeps its width, so only the digest notices.
	wire[headerSize+1] ^= 0x01

	r := NewReader(bytes.NewReader(wire))
	if _, _, err := r.Decode(); !errors.Is(err, ErrDigestMismatch) {
		t.Fatalf("member 0: err = %v, want ErrDigestMismatch", err)
	}
	f, b, err := r.Decode()
	if err != nil {
		t.Fatalf("member 1 after mismatch: %v", err)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if f[i] != want[i] || b[i] != want[2-i] {
			t.Fatalf("member 1 decoded wrong: f=%v b=%v", f, b)
		}
	}
	if _, _, err := r.Decode(); err != io.EOF {
		t.Fatalf("stream end: err = %v, want io.EOF", err)
	}
}
