// Package codec implements the sfcp binary wire format: a compact,
// versioned, little-endian encoding of coarsest-partition instances built
// for streaming huge inputs (10^7–10^8 elements) through fixed-size
// chunks, so the decoder's extra memory is O(chunk) — never a second copy
// of the payload.
//
// Wire layout of one instance (all multi-byte integers little-endian,
// varints are unsigned LEB128 as in encoding/binary):
//
//	offset  size  field
//	0       4     magic "SFCP"
//	4       1     format version (currently 1)
//	5       1     flags (must be 0)
//	6       var   n, uvarint
//	…       var   F[0], …, F[n-1], one uvarint each
//	…       var   B[0], …, B[n-1], one uvarint each
//	…       8     XXH64 of every preceding byte of this instance
//
// The digest trailer covers the header and payload, so truncation and
// corruption are detected, and it doubles as a content address: because
// uvarint encoding is canonical, two encodings of the same instance are
// byte-identical and share a digest. Instances may be concatenated
// back-to-back in one stream; Reader.Decode returns io.EOF at a clean
// stream end.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	// Version is the wire-format version this package reads and writes.
	Version = 1
	// DefaultChunkSize is the Reader/Writer buffer size: the peak extra
	// memory either side holds beyond the instance arrays themselves.
	DefaultChunkSize = 64 << 10
	// DefaultMaxN bounds the element count a Reader accepts before it
	// allocates output arrays, so a corrupt or hostile header cannot
	// demand an absurd allocation.
	DefaultMaxN = 1 << 27
	// TrailerSize is the byte length of the XXH64 digest trailer.
	TrailerSize = 8

	headerSize    = 6  // magic + version + flags
	minChunk      = 64 // room for a header and a worst-case varint per refill
	maxEmptyReads = 100
	maxInt        = int(^uint(0) >> 1)

	// flagLabels marks a labels-only stream: the payload is a single
	// varint-packed array (a solve result) instead of an instance's F+B
	// pair. Header, digest trailer and chunking are identical, so the two
	// stream kinds share all machinery and the magic still sniffs both.
	flagLabels = 0x1
	// flagDelta marks a delta stream: n counts edits, and each edit is a
	// uvarint node, one edit-flags byte (editHasF|editHasB, at least one
	// set) and the present new values as uvarints. Same header, digest
	// trailer and chunking as the other kinds.
	flagDelta = 0x2

	editHasF = 0x1
	editHasB = 0x2
)

var magic = [4]byte{'S', 'F', 'C', 'P'}

// ErrBadMagic reports that a stream does not start with the "SFCP" magic —
// the signal format sniffers use to fall back to the text format.
var ErrBadMagic = errors.New("codec: bad magic (not an sfcp binary stream)")

// ErrDigestMismatch reports that a fully framed instance failed its XXH64
// trailer check. Unlike truncation or a bad varint, the failure is
// positionally recoverable: every byte of the instance (trailer included)
// was consumed, so the reader sits at the next instance boundary and batch
// ingest can skip the corrupt member instead of aborting the stream.
var ErrDigestMismatch = errors.New("codec: digest mismatch")

// Detect reports whether prefix begins with the binary-format magic.
// Four bytes of lookahead are enough.
func Detect(prefix []byte) bool {
	return len(prefix) >= len(magic) && string(prefix[:len(magic)]) == string(magic[:])
}

// EncodedSize returns the exact number of bytes Encode will emit for (f, b).
func EncodedSize(f, b []int) int {
	size := headerSize + uvarintLen(uint64(len(f))) + TrailerSize
	for _, v := range f {
		size += uvarintLen(uint64(v))
	}
	for _, v := range b {
		size += uvarintLen(uint64(v))
	}
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Encode writes one instance to w in the binary wire format.
func Encode(w io.Writer, f, b []int) error {
	return NewWriter(w).Encode(f, b)
}

// Decode reads one instance from r.
func Decode(r io.Reader) (f, b []int, err error) {
	return NewReader(r).Decode()
}

// EncodeLabels writes one labels-only stream to w: same header, varint
// packing, chunking and digest trailer as an instance, but the flags byte
// marks a single array. It carries solve results (dense Q-labels) over the
// wire, e.g. from sfcpd's job-result endpoint.
func EncodeLabels(w io.Writer, labels []int) error {
	return NewWriter(w).EncodeLabels(labels)
}

// DecodeLabels reads one labels-only stream from r.
func DecodeLabels(r io.Reader) ([]int, error) {
	return NewReader(r).DecodeLabels()
}

// DeltaEdit is one wire-format point mutation: retarget F[Node] and/or
// relabel B[Node], with SetF/SetB saying which halves are present. It
// mirrors the solver's edit type without importing it (the codec stays a
// leaf package).
type DeltaEdit struct {
	Node int
	F    int
	B    int
	SetF bool
	SetB bool
}

// EncodeDelta writes one delta stream to w.
func EncodeDelta(w io.Writer, edits []DeltaEdit) error {
	return NewWriter(w).EncodeDelta(edits)
}

// DecodeDelta reads one delta stream from r.
func DecodeDelta(r io.Reader) ([]DeltaEdit, error) {
	return NewReader(r).DecodeDelta()
}

// Writer streams instances to an io.Writer through a fixed-size chunk
// buffer. Encode may be called repeatedly to concatenate instances.
type Writer struct {
	dst  io.Writer
	buf  []byte
	n    int
	hash xxh64
}

// NewWriter returns a Writer with the default chunk size.
func NewWriter(w io.Writer) *Writer { return NewWriterSize(w, DefaultChunkSize) }

// NewWriterSize returns a Writer buffering up to chunk bytes (values below
// the minimum are raised to it).
func NewWriterSize(w io.Writer, chunk int) *Writer {
	if chunk < minChunk {
		chunk = minChunk
	}
	return &Writer{dst: w, buf: make([]byte, chunk)}
}

// Encode writes one complete instance — header, varint-packed F and B,
// digest trailer — flushing chunk by chunk. Negative values are rejected:
// the format carries unsigned varints only. Validation happens up front,
// so a rejected instance emits no bytes (a mid-stream error would leave
// the destination holding a truncated instance).
func (w *Writer) Encode(f, b []int) error {
	if len(f) != len(b) {
		return fmt.Errorf("codec: |F| = %d but |B| = %d", len(f), len(b))
	}
	for i, v := range f {
		if v < 0 {
			return fmt.Errorf("codec: F[%d] = %d negative", i, v)
		}
	}
	for i, v := range b {
		if v < 0 {
			return fmt.Errorf("codec: B[%d] = %d negative", i, v)
		}
	}
	return w.emit(0, uint64(len(f)), f, b)
}

// EncodeLabels writes one labels-only stream (flags = flagLabels): n
// followed by a single varint-packed array, framed and digested exactly
// like an instance. Negative labels are rejected up front.
func (w *Writer) EncodeLabels(labels []int) error {
	for i, v := range labels {
		if v < 0 {
			return fmt.Errorf("codec: label[%d] = %d negative", i, v)
		}
	}
	return w.emit(flagLabels, uint64(len(labels)), labels)
}

// EncodeDelta writes one delta stream (flags = flagDelta): the edit
// count, then per edit a uvarint node, an edit-flags byte and the
// present new values — framed and digested exactly like an instance.
// Validation happens up front so a rejected delta emits no bytes.
func (w *Writer) EncodeDelta(edits []DeltaEdit) error {
	for i, e := range edits {
		if e.Node < 0 {
			return fmt.Errorf("codec: edit[%d] node %d negative", i, e.Node)
		}
		if !e.SetF && !e.SetB {
			return fmt.Errorf("codec: edit[%d] sets neither F nor B", i)
		}
		if e.SetF && e.F < 0 {
			return fmt.Errorf("codec: edit[%d] F = %d negative", i, e.F)
		}
		if e.SetB && e.B < 0 {
			return fmt.Errorf("codec: edit[%d] B = %d negative", i, e.B)
		}
	}
	w.hash.reset()
	w.n = 0
	copy(w.buf, magic[:])
	w.buf[4] = Version
	w.buf[5] = flagDelta
	w.n = headerSize
	if err := w.putUvarint(uint64(len(edits))); err != nil {
		return err
	}
	for _, e := range edits {
		if err := w.putUvarint(uint64(e.Node)); err != nil {
			return err
		}
		var fl byte
		if e.SetF {
			fl |= editHasF
		}
		if e.SetB {
			fl |= editHasB
		}
		if err := w.putByte(fl); err != nil {
			return err
		}
		if e.SetF {
			if err := w.putUvarint(uint64(e.F)); err != nil {
				return err
			}
		}
		if e.SetB {
			if err := w.putUvarint(uint64(e.B)); err != nil {
				return err
			}
		}
	}
	if err := w.flushHashed(); err != nil {
		return err
	}
	var trailer [TrailerSize]byte
	binary.LittleEndian.PutUint64(trailer[:], w.hash.sum())
	_, err := w.dst.Write(trailer[:])
	return err
}

// emit writes header (with the given flags), n, the arrays' varints and
// the digest trailer, flushing chunk by chunk.
func (w *Writer) emit(flags byte, n uint64, arrays ...[]int) error {
	w.hash.reset()
	w.n = 0
	copy(w.buf, magic[:])
	w.buf[4] = Version
	w.buf[5] = flags
	w.n = headerSize
	if err := w.putUvarint(n); err != nil {
		return err
	}
	for _, arr := range arrays {
		for _, v := range arr {
			if err := w.putUvarint(uint64(v)); err != nil {
				return err
			}
		}
	}
	if err := w.flushHashed(); err != nil {
		return err
	}
	var trailer [TrailerSize]byte
	binary.LittleEndian.PutUint64(trailer[:], w.hash.sum())
	_, err := w.dst.Write(trailer[:])
	return err
}

func (w *Writer) putByte(c byte) error {
	if len(w.buf)-w.n < 1 {
		if err := w.flushHashed(); err != nil {
			return err
		}
	}
	w.buf[w.n] = c
	w.n++
	return nil
}

func (w *Writer) putUvarint(v uint64) error {
	if len(w.buf)-w.n < binary.MaxVarintLen64 {
		if err := w.flushHashed(); err != nil {
			return err
		}
	}
	w.n += binary.PutUvarint(w.buf[w.n:], v)
	return nil
}

// flushHashed folds the buffered bytes into the digest and writes them out.
func (w *Writer) flushHashed() error {
	if w.n == 0 {
		return nil
	}
	w.hash.write(w.buf[:w.n])
	_, err := w.dst.Write(w.buf[:w.n])
	w.n = 0
	return err
}

// Reader streams instances from an io.Reader through a fixed-size chunk
// buffer: peak extra memory is O(chunk) regardless of instance size.
// Decode may be called repeatedly on a stream of concatenated instances;
// a clean end of stream returns io.EOF, truncation mid-instance returns an
// error wrapping io.ErrUnexpectedEOF.
type Reader struct {
	src io.Reader
	buf []byte
	// The window buf[pos:end] is unread; buf[hpos:pos] is consumed but not
	// yet folded into the running digest (hashing is deferred to refill and
	// trailer boundaries so it runs over whole chunks).
	pos, end, hpos int
	hash           xxh64
	digest         uint64

	// MaxN bounds the per-instance element count accepted before output
	// arrays are allocated (default DefaultMaxN).
	MaxN int
}

// NewReader returns a Reader with the default chunk size.
func NewReader(r io.Reader) *Reader { return NewReaderSize(r, DefaultChunkSize) }

// NewReaderSize returns a Reader with a chunk-byte buffer (values below
// the minimum are raised to it).
func NewReaderSize(r io.Reader, chunk int) *Reader {
	if chunk < minChunk {
		chunk = minChunk
	}
	return &Reader{src: r, buf: make([]byte, chunk), MaxN: DefaultMaxN}
}

// Reset discards buffered state and switches the Reader to read from src,
// keeping the allocated chunk buffer.
func (r *Reader) Reset(src io.Reader) {
	r.src = src
	r.pos, r.end, r.hpos = 0, 0, 0
	r.digest = 0 // Digest() must not report the previous stream's address
}

// Decode reads one instance, allocating fresh output slices.
func (r *Reader) Decode() (f, b []int, err error) { return r.DecodeInto(nil, nil) }

// DecodeInto reads one instance into f and b, reusing their capacity when
// it suffices and reallocating otherwise; it returns the slices actually
// filled. On error the contents of f and b are unspecified.
func (r *Reader) DecodeInto(f, b []int) ([]int, []int, error) {
	n, err := r.readHeader(0)
	if err != nil {
		return nil, nil, err
	}
	f = grow(f, n)
	b = grow(b, n)
	for _, dst := range [2][]int{f, b} {
		for i := range dst {
			v, err := r.readUvarint()
			if err != nil {
				return nil, nil, err
			}
			if v > uint64(maxInt) {
				return nil, nil, fmt.Errorf("codec: value %d overflows int", v)
			}
			dst[i] = int(v)
		}
	}
	if err := r.verifyTrailer(); err != nil {
		return nil, nil, err
	}
	return f, b, nil
}

// DecodeLabels reads one labels-only stream (flags = flagLabels) and
// returns the array; a clean end of stream returns io.EOF. A stream whose
// flags mark an instance is rejected — the two kinds are not confusable.
func (r *Reader) DecodeLabels() ([]int, error) {
	n, err := r.readHeader(flagLabels)
	if err != nil {
		return nil, err
	}
	labels := make([]int, n)
	for i := range labels {
		v, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		if v > uint64(maxInt) {
			return nil, fmt.Errorf("codec: value %d overflows int", v)
		}
		labels[i] = int(v)
	}
	if err := r.verifyTrailer(); err != nil {
		return nil, err
	}
	return labels, nil
}

// DecodeDelta reads one delta stream (flags = flagDelta) and returns the
// edits; a clean end of stream returns io.EOF. Streams of the other
// kinds are rejected by their flags — the three kinds are not
// confusable.
func (r *Reader) DecodeDelta() ([]DeltaEdit, error) {
	n, err := r.readHeader(flagDelta)
	if err != nil {
		return nil, err
	}
	edits := make([]DeltaEdit, n)
	for i := range edits {
		node, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		if node > uint64(maxInt) {
			return nil, fmt.Errorf("codec: value %d overflows int", node)
		}
		fl, err := r.readByte()
		if err != nil {
			return nil, err
		}
		if fl == 0 || fl&^(editHasF|editHasB) != 0 {
			return nil, fmt.Errorf("codec: edit[%d] invalid flags %#x", i, fl)
		}
		e := DeltaEdit{Node: int(node)}
		if fl&editHasF != 0 {
			v, err := r.readUvarint()
			if err != nil {
				return nil, err
			}
			if v > uint64(maxInt) {
				return nil, fmt.Errorf("codec: value %d overflows int", v)
			}
			e.SetF, e.F = true, int(v)
		}
		if fl&editHasB != 0 {
			v, err := r.readUvarint()
			if err != nil {
				return nil, err
			}
			if v > uint64(maxInt) {
				return nil, fmt.Errorf("codec: value %d overflows int", v)
			}
			e.SetB, e.B = true, int(v)
		}
		edits[i] = e
	}
	if err := r.verifyTrailer(); err != nil {
		return nil, err
	}
	return edits, nil
}

func (r *Reader) readByte() (byte, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	c := r.buf[r.pos]
	r.pos++
	return c, nil
}

// readHeader resets the per-stream digest, validates magic, version and
// flags (wantFlags selects the stream kind) and returns the element count
// n. A clean end of stream surfaces as io.EOF.
func (r *Reader) readHeader(wantFlags byte) (int, error) {
	r.hash.reset()
	r.hpos = r.pos // discard consumed-but-unhashed bytes from a previous decode
	if err := r.need(headerSize); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) && r.end == r.pos {
			return 0, io.EOF // clean end of stream
		}
		return 0, err
	}
	hdr := r.buf[r.pos : r.pos+headerSize]
	if !Detect(hdr) {
		return 0, ErrBadMagic
	}
	if hdr[4] != Version {
		return 0, fmt.Errorf("codec: unsupported version %d (want %d)", hdr[4], Version)
	}
	if hdr[5] != wantFlags {
		switch wantFlags {
		case flagLabels:
			return 0, fmt.Errorf("codec: not a labels stream (flags %#x)", hdr[5])
		case flagDelta:
			return 0, fmt.Errorf("codec: not a delta stream (flags %#x)", hdr[5])
		}
		return 0, fmt.Errorf("codec: unsupported flags %#x", hdr[5])
	}
	r.pos += headerSize
	un, err := r.readUvarint()
	if err != nil {
		return 0, err
	}
	if un > uint64(r.MaxN) || un > uint64(maxInt) {
		return 0, fmt.Errorf("codec: instance of %d elements exceeds limit %d", un, r.MaxN)
	}
	return int(un), nil
}

// verifyTrailer checks the XXH64 trailer against the digest accumulated
// over the consumed stream bytes and records the content address.
func (r *Reader) verifyTrailer() error {
	// Everything consumed so far is covered by the digest; the trailer is not.
	r.flushHash()
	sum := r.hash.sum()
	if err := r.need(TrailerSize); err != nil {
		return err
	}
	want := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += TrailerSize
	r.hpos = r.pos // trailer bytes are consumed but never hashed
	if sum != want {
		return fmt.Errorf("%w: body hashes to %016x, trailer says %016x", ErrDigestMismatch, sum, want)
	}
	r.digest = sum
	return nil
}

// Digest returns the hex wire digest of the most recently decoded
// instance — the content address binary ingest paths key their caches on.
func (r *Reader) Digest() string { return fmt.Sprintf("%016x", r.digest) }

// More reports whether the stream holds at least one byte beyond what has
// been decoded — a one-read probe for trailing data that, unlike another
// Decode, costs no allocation. The error is the source's (never io.EOF).
func (r *Reader) More() (bool, error) {
	if r.end > r.pos {
		return true, nil
	}
	switch err := r.fill(); err {
	case nil:
		return true, nil
	case io.EOF:
		return false, nil
	default:
		return false, err
	}
}

func grow(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// flushHash folds consumed-but-unhashed bytes into the running digest.
func (r *Reader) flushHash() {
	if r.hpos < r.pos {
		r.hash.write(r.buf[r.hpos:r.pos])
	}
	r.hpos = r.pos
}

// need ensures at least k unread bytes are windowed (k ≤ chunk size).
// A stream ending before k bytes arrive yields io.ErrUnexpectedEOF.
func (r *Reader) need(k int) error {
	for r.end-r.pos < k {
		if err := r.fill(); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("codec: truncated instance: %w", err)
		}
	}
	return nil
}

func (r *Reader) readUvarint() (uint64, error) {
	for {
		v, size := binary.Uvarint(r.buf[r.pos:r.end])
		if size > 0 {
			// Padded encodings (trailing 0x00 continuation) are rejected so
			// the format stays canonical: equal instances must be
			// byte-identical for the digest to be a content address.
			if size > 1 && r.buf[r.pos+size-1] == 0 {
				return 0, errors.New("codec: non-minimal varint encoding")
			}
			r.pos += size
			return v, nil
		}
		if size < 0 {
			return 0, errors.New("codec: varint overflows 64 bits")
		}
		// size == 0: the window holds only a varint prefix — refill.
		if err := r.fill(); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, fmt.Errorf("codec: truncated instance: %w", err)
		}
	}
}

// fill hashes and evicts the consumed prefix, then reads at least one more
// byte from the source into the freed space.
func (r *Reader) fill() error {
	r.flushHash()
	if r.pos > 0 {
		copy(r.buf, r.buf[r.pos:r.end])
		r.end -= r.pos
		r.pos, r.hpos = 0, 0
	}
	if r.end == len(r.buf) {
		// Cannot happen: every read loop consumes before refilling and no
		// field needs more than minChunk buffered bytes.
		return errors.New("codec: chunk buffer full")
	}
	// Tolerate a bounded number of (0, nil) returns — legal under the
	// io.Reader contract — instead of spinning forever on a source that
	// never progresses (bufio's maxConsecutiveEmptyReads defense).
	for i := 0; i < maxEmptyReads; i++ {
		n, err := r.src.Read(r.buf[r.end:])
		if n > 0 {
			r.end += n
			return nil
		}
		if err != nil {
			return err
		}
	}
	return io.ErrNoProgress
}
