package codec

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func sampleEdits() []DeltaEdit {
	return []DeltaEdit{
		{Node: 0, SetF: true, F: 7},
		{Node: 300, SetB: true, B: 0},
		{Node: 1 << 20, SetF: true, F: 1 << 19, SetB: true, B: 999},
		{Node: 5, SetB: true, B: 1 << 30},
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	for _, edits := range [][]DeltaEdit{sampleEdits(), {}, {{Node: 1, SetF: true}}} {
		var buf bytes.Buffer
		if err := EncodeDelta(&buf, edits); err != nil {
			t.Fatalf("EncodeDelta: %v", err)
		}
		got, err := DecodeDelta(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("DecodeDelta: %v", err)
		}
		if len(got) != len(edits) {
			t.Fatalf("got %d edits, want %d", len(got), len(edits))
		}
		for i := range edits {
			if got[i] != edits[i] {
				t.Fatalf("edit %d: got %+v, want %+v", i, got[i], edits[i])
			}
		}
	}
}

func TestDeltaEncodeCanonical(t *testing.T) {
	var a, b bytes.Buffer
	if err := EncodeDelta(&a, sampleEdits()); err != nil {
		t.Fatal(err)
	}
	if err := EncodeDelta(&b, sampleEdits()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("equal deltas encoded differently")
	}
}

func TestDeltaEncodeRejectsInvalid(t *testing.T) {
	bad := [][]DeltaEdit{
		{{Node: -1, SetF: true, F: 0}},
		{{Node: 0}},
		{{Node: 0, SetF: true, F: -2}},
		{{Node: 0, SetB: true, B: -1}},
	}
	for i, edits := range bad {
		var buf bytes.Buffer
		if err := EncodeDelta(&buf, edits); err == nil {
			t.Errorf("case %d: EncodeDelta accepted %+v", i, edits[0])
		}
		if buf.Len() != 0 {
			t.Errorf("case %d: rejected delta emitted %d bytes", i, buf.Len())
		}
	}
}

func TestDeltaKindsNotConfusable(t *testing.T) {
	var ins, lab, del bytes.Buffer
	if err := Encode(&ins, []int{1, 0}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeLabels(&lab, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeDelta(&del, sampleEdits()); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDelta(bytes.NewReader(ins.Bytes())); err == nil {
		t.Error("DecodeDelta accepted an instance stream")
	}
	if _, err := DecodeDelta(bytes.NewReader(lab.Bytes())); err == nil {
		t.Error("DecodeDelta accepted a labels stream")
	}
	if _, _, err := Decode(bytes.NewReader(del.Bytes())); err == nil {
		t.Error("Decode accepted a delta stream")
	}
	if _, err := DecodeLabels(bytes.NewReader(del.Bytes())); err == nil {
		t.Error("DecodeLabels accepted a delta stream")
	}
}

func TestDeltaCorruptionAndTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeDelta(&buf, sampleEdits()); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()

	// Flip one payload byte: the digest trailer must catch it (or the
	// payload parse fails first — either way decoding errors).
	corrupt := append([]byte(nil), wire...)
	corrupt[headerSize+1] ^= 0x40
	if _, err := DecodeDelta(bytes.NewReader(corrupt)); err == nil {
		t.Error("DecodeDelta accepted a corrupted stream")
	}

	// Truncation mid-payload surfaces as unexpected EOF, not io.EOF.
	if _, err := DecodeDelta(bytes.NewReader(wire[:len(wire)-TrailerSize-1])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated delta: err = %v, want ErrUnexpectedEOF", err)
	}

	// Empty stream is a clean EOF.
	if _, err := DecodeDelta(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestDeltaInvalidEditFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeDelta(&buf, []DeltaEdit{{Node: 3, SetF: true, F: 1}}); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	// The edit-flags byte follows the header, the count uvarint (1) and
	// the node uvarint (3): header + 1 + 1.
	for _, fl := range []byte{0x0, 0x4, 0xff} {
		mut := append([]byte(nil), wire...)
		mut[headerSize+2] = fl
		if _, err := DecodeDelta(bytes.NewReader(mut)); err == nil {
			t.Errorf("flags %#x: DecodeDelta accepted invalid edit flags", fl)
		}
	}
}
