package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Error("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("default workers must be positive")
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(4, 0, func(lo, hi int) { called = true })
	For(4, -5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn must not run for empty ranges")
	}
}

func TestForSum(t *testing.T) {
	n := 10000
	var total int64
	For(8, n, func(lo, hi int) {
		var local int64
		for i := lo; i < hi; i++ {
			local += int64(i)
		}
		atomic.AddInt64(&total, local)
	})
	want := int64(n) * int64(n-1) / 2
	if total != want {
		t.Fatalf("sum = %d, want %d", total, want)
	}
}

func TestDictBasics(t *testing.T) {
	d := NewDict(16)
	a := d.Code(1, 2)
	b := d.Code(1, 2)
	c := d.Code(2, 1)
	if a != b {
		t.Error("same pair must code equal")
	}
	if a == c {
		t.Error("different pairs must code differently")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestDictNegativeSecondComponent(t *testing.T) {
	d := NewDict(16)
	x := d.Code(5, -1)
	y := d.Code(5, -2)
	z := d.Code(5, 0xFFFFFFFF&^0) // large positive
	_ = z
	if x == y {
		t.Error("distinct negative tags collided")
	}
	if x == d.Code(5, 1) || y == d.Code(5, 2) {
		t.Error("negative tags collided with small positives")
	}
}

func TestDictConcurrent(t *testing.T) {
	d := NewDict(1024)
	n := 20000
	codes := make([]int64, n)
	For(8, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			codes[i] = d.Code(int64(i%97), int64(i%31))
		}
	})
	// Verify consistency against a sequential pass.
	for i := 0; i < n; i++ {
		if got := d.Code(int64(i%97), int64(i%31)); got != codes[i] {
			t.Fatalf("code changed between calls at %d", i)
		}
	}
	want := map[[2]int]bool{}
	for i := 0; i < n; i++ {
		want[[2]int{i % 97, i % 31}] = true
	}
	if d.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(want))
	}
}

func TestDictProperty(t *testing.T) {
	f := func(pairs [][2]uint16) bool {
		d := NewDict(len(pairs))
		codes := map[[2]uint16]int64{}
		for _, p := range pairs {
			c := d.Code(int64(p[0]), int64(p[1]))
			if prev, ok := codes[p]; ok && prev != c {
				return false
			}
			codes[p] = c
		}
		// Distinct pairs must have distinct codes.
		seen := map[int64][2]uint16{}
		for p, c := range codes {
			if other, ok := seen[c]; ok && other != p {
				return false
			}
			seen[c] = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
