// Package par provides the minimal native parallel toolkit used by the
// goroutine (wall-clock) implementations: a chunked parallel for and a
// sharded concurrent pair-code dictionary. Unlike package pram, nothing
// here is instrumented — these primitives exist to measure real speedups
// on real cores (experiment E8).
package par

import (
	"runtime"
	"sync"
)

// Workers normalizes a requested worker count (0 or negative = NumCPU).
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.NumCPU()
}

// For runs fn over the index chunks of [0, n) using the given number of
// workers. fn receives half-open ranges [lo, hi). It blocks until all
// chunks complete. Chunks are contiguous and balanced, so fn bodies can
// iterate cache-friendly.
func For(workers, n int, fn func(lo, hi int)) {
	workers = Workers(workers)
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Dict assigns codes to int64 pairs concurrently: Code(a,b) == Code(c,d)
// iff (a,b) == (c,d). Codes are unique but neither dense nor deterministic
// across runs (they depend on insertion interleaving); callers must
// normalize final labels. Safe for concurrent use.
type Dict struct {
	shards []dictShard
	mask   uint64
}

type dictShard struct {
	mu   sync.Mutex
	m    map[uint64]int64
	next int64
	_    [32]byte // padding to reduce false sharing between shards
}

// NewDict returns a dictionary sized for roughly capacity insertions.
func NewDict(capacity int) *Dict {
	nShards := 1
	for nShards < 4*runtime.NumCPU() {
		nShards <<= 1
	}
	d := &Dict{shards: make([]dictShard, nShards), mask: uint64(nShards - 1)}
	per := capacity/nShards + 1
	for i := range d.shards {
		d.shards[i].m = make(map[uint64]int64, per)
		d.shards[i].next = int64(i)
	}
	return d
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	return x ^ (x >> 33)
}

// Code returns the code of the pair (a, b). Components must fit in 32 bits
// as non-negative values.
func (d *Dict) Code(a, b int64) int64 {
	key := uint64(a)<<32 | uint64(uint32(b))
	sh := &d.shards[mix64(key)&d.mask]
	sh.mu.Lock()
	code, ok := sh.m[key]
	if !ok {
		code = sh.next
		sh.next += int64(len(d.shards))
		sh.m[key] = code
	}
	sh.mu.Unlock()
	return code
}

// Len returns the number of distinct pairs inserted so far.
func (d *Dict) Len() int {
	total := 0
	for i := range d.shards {
		d.shards[i].mu.Lock()
		total += len(d.shards[i].m)
		d.shards[i].mu.Unlock()
	}
	return total
}
