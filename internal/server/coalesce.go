package server

import (
	"context"
	"sync"
	"time"

	"sfcp"
	"sfcp/internal/batcher"
)

// This file is the server side of the coalescing front door (see
// internal/batcher): small solves — the regime where per-request plan,
// queue and dispatch overhead rivals the solve itself — skip the
// per-algorithm pool and accumulate into micro-batches that are planned
// once (sfcp.PlanBatch) and executed as one sequential run under a
// shared scratch arena (Solver.SolveBatchPlanned). Async jobs arrive
// here too: their dispatchers call the same solveResult.

// coalescible reports whether a request may take the micro-batch path:
// the coalescer is running, the instance sits in the planner's
// sequential-linear regime (<= BatchMaxN), and the requested algorithm
// is auto or linear — exactly the requests the batch plan would resolve
// identically one at a time. Simulator and explicit-parallel requests
// keep their per-request pool semantics (dedicated queues, seeds,
// stats).
func (s *Server) coalescible(algo sfcp.Algorithm, ins sfcp.Instance) bool {
	return s.coalescer != nil &&
		len(ins.F) <= s.cfg.BatchMaxN &&
		(algo == sfcp.AlgorithmAuto || algo == sfcp.AlgorithmLinear)
}

// solveCoalesced serves one request through the coalescer. Validation
// happens before enqueueing — a malformed instance fails immediately
// (under the plan-error metric, like the pool path) instead of waiting
// out the coalescing deadline — and the cache is consulted up front so
// hot instances never pay the queue wait at all.
func (s *Server) solveCoalesced(ctx context.Context, algo sfcp.Algorithm, seed uint64, ins sfcp.Instance) solveOutcome {
	if err := ins.Validate(); err != nil {
		s.metrics.planError(algo.String())
		return solveOutcome{err: err}
	}
	// Eligibility already is the resolution: below BatchMaxN (inside the
	// sequential-linear regime) the batch plan can only pick linear. The
	// per-request planner counter advances here — before the cache, like
	// the pool path — so plans ≈ requests holds on hits and misses alike.
	s.metrics.plan(sfcp.AlgorithmLinear.String())
	var key, digest string
	if s.cache.enabled() || s.blobs != nil {
		digest = ins.Digest()
	}
	if s.cache.enabled() {
		// Coalesced requests always resolve to the linear solver, so the
		// key is known before any planning — and matches the key an
		// uncoalesced auto or explicit-linear request would compute.
		key = cacheKey(sfcp.AlgorithmLinear, seed, digest)
		if res, ok := s.cache.Get(key); ok {
			s.metrics.cache(true)
			var plan sfcp.Plan
			if res.Plan != nil {
				plan = *res.Plan
			}
			return solveOutcome{res: res, plan: plan, cached: true}
		}
		s.metrics.cache(false)
	}
	// The durable tier answers before the coalescer does: a persisted
	// linear result (an async job's, or a previous process's) costs one
	// blob read instead of a queue wait. Zero-config mode never gets
	// here with a tier, so the hot path pays nothing new.
	if res, ok := s.tierGet(sfcp.AlgorithmLinear, seed, digest); ok {
		plan := sfcp.Plan{Algorithm: sfcp.AlgorithmLinear, Workers: 1, Reason: "restored from durable result tier"}
		res.Plan = &plan
		if key != "" {
			s.cache.Put(key, res)
		}
		return solveOutcome{res: res, plan: plan, cached: true}
	}
	out, err := s.coalescer.Submit(ctx, ins, key)
	so := solveOutcome{
		res:         out.Res,
		elapsed:     out.Responded.Sub(out.Queued),
		coalesced:   out.Coalesced,
		flushReason: out.FlushReason,
		queueWait:   out.QueueWait(),
		err:         err,
	}
	if out.Res.Plan != nil {
		so.plan = *out.Res.Plan
	}
	return so
}

// coalesceBufs is one flush's staging (live member indexes and their
// instances), recycled across flushes so the steady state allocates
// nothing per batch beyond the results themselves.
type coalesceBufs struct {
	live      []int
	instances []sfcp.Instance
}

var coalesceBufPool = sync.Pool{New: func() any { return &coalesceBufs{} }}

// runCoalesced executes one flushed micro-batch: plan the batch as the
// instance (one resolution for all members), solve the live members
// sequentially under one scratch arena, and meter/cache each member
// individually so error isolation and per-request accounting match the
// pool path. It runs on a batcher flush goroutine, never under a lock;
// out is the batcher's positional result slice (zeroed on entry).
func (s *Server) runCoalesced(ctx context.Context, members []batcher.Member, out []batcher.MemberResult) {
	bufs := coalesceBufPool.Get().(*coalesceBufs)
	defer func() {
		clear(bufs.instances)
		bufs.live, bufs.instances = bufs.live[:0], bufs.instances[:0]
		coalesceBufPool.Put(bufs)
	}()
	live, instances := bufs.live[:0], bufs.instances[:0]
	for i, m := range members {
		// A member whose submitter already gave up (timeout, disconnect)
		// is not worth solving; fail it with its own context's error.
		if err := m.Ctx.Err(); err != nil {
			out[i] = batcher.MemberResult{Err: err}
			continue
		}
		live = append(live, i)
		instances = append(instances, m.Ins)
	}
	bufs.live, bufs.instances = live, instances
	if len(live) == 0 {
		return
	}

	planStart := time.Now()
	plan, err := sfcp.PlanBatch(instances, sfcp.Options{Algorithm: sfcp.AlgorithmAuto, Workers: s.cfg.Workers})
	planDur := time.Since(planStart)
	if err != nil {
		for _, i := range live {
			out[i] = batcher.MemberResult{Err: err}
		}
		return
	}
	resolved := plan.Algorithm.String()
	results, errs := s.solvers[plan.Algorithm].SolveBatchPlanned(ctx, instances, plan)
	for j, i := range live {
		if errs[j] != nil {
			s.metrics.solve(resolved, 0, 0, errs[j])
			out[i] = batcher.MemberResult{Err: errs[j]}
			continue
		}
		res := results[j]
		res.Timings.Plan = planDur
		s.metrics.solve(resolved, res.Timings.Solve, res.NumClasses, nil)
		if members[i].Key != "" {
			s.cache.Put(members[i].Key, res)
		}
		out[i] = batcher.MemberResult{Res: res}
	}
}
