// Package server implements sfcpd's HTTP API: a batching
// partition-solving service over the sfcp library. Endpoints:
//
//	POST /solve                     one instance
//	POST /solve/batch               many instances, solved concurrently
//	POST /instances                 register a versioned instance (solve + content address)
//	POST /instances/{digest}/delta  apply edits to a version, solved incrementally
//	POST /calibrate                 re-fit the planner's calibration profile on this host
//	GET  /healthz                   liveness
//	GET  /metrics                   Prometheus-style counters
//
// Bodies are JSON by default; POST routes also accept
// Content-Type: application/x-sfcp — the binary wire format of
// internal/codec — with ?algorithm= and ?seed= query parameters. Binary
// uploads are decoded in fixed-size chunks with their XXH64 integrity
// trailers verified as the bytes stream (never a buffered body copy), and
// /solve/batch shards a stream of concatenated instances into batch
// members as they arrive. Cache keys use the SHA-256 content address for
// both formats, so a collision-crafted wire digest cannot poison the
// cache and either format hits entries the other populated.
//
// Every request's algorithm is first resolved by the library's adaptive
// planner ("auto" becomes a concrete solver chosen per instance), and the
// resolved algorithm keys everything downstream: requests are scheduled
// onto bounded per-algorithm worker pools and results are memoized in an
// LRU keyed by (resolved algorithm, seed, instance digest), so hot
// instances — the "millions of users asking the same question" regime —
// are served without recomputation, and an "auto" request shares its
// entry with the explicit request it resolves to. Responses report the
// resolved algorithm and the planner's reason.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sfcp"
	"sfcp/internal/batcher"
	"sfcp/internal/codec"
	"sfcp/internal/jobs"
	"sfcp/internal/store"
)

// Config sizes the server. Zero values select the documented defaults.
type Config struct {
	// WorkersPerAlgorithm is the number of solver goroutines dedicated to
	// each algorithm's queue (default 2).
	WorkersPerAlgorithm int
	// QueueDepth bounds each algorithm's pending-job queue
	// (default 4 * WorkersPerAlgorithm).
	QueueDepth int
	// CacheSize bounds the result LRU in entries (default 1024; negative
	// disables caching).
	CacheSize int
	// MaxN rejects instances larger than this many elements (default 1<<20).
	MaxN int
	// MaxBatch rejects batches with more members than this (default 256).
	MaxBatch int
	// Workers is the host-goroutine budget per solve (0 = NumCPU).
	Workers int
	// Seed is the default simulator seed; requests may override it.
	Seed uint64
	// MaxBodyBytes bounds a request body before JSON decoding (default
	// 64 MiB) — MaxN and MaxBatch only cut in after a body has been
	// decoded, so this is the limit that actually bounds memory.
	MaxBodyBytes int64
	// JobTTL is how long finished async jobs (and their results) are
	// retained for fetching before eviction (default 10 minutes).
	JobTTL time.Duration
	// JobMaxQueued bounds async jobs waiting across all algorithms
	// (default 1024); Submit beyond it returns 429.
	JobMaxQueued int
	// BatchMaxWait bounds how long a small solve waits in the coalescing
	// front door for batch companions before its micro-batch flushes
	// anyway (default 1ms; negative disables coalescing entirely).
	BatchMaxWait time.Duration
	// BatchMaxSize flushes a coalescing micro-batch once it holds this
	// many requests (default 64).
	BatchMaxSize int
	// BatchMaxN is the largest instance (elements) eligible for
	// coalescing; bigger requests take the per-request pool path
	// (default sfcp.LinearCrossoverN - 1, the planner's whole
	// sequential-linear regime).
	BatchMaxN int
	// CalibrationFile, when set, is where POST /calibrate persists the
	// fitted planner profile (atomic rewrite). Loading it at startup is
	// the binary's job (sfcpd -calibration-file does both).
	CalibrationFile string
	// CalibrateBudget bounds the wall clock of a POST /calibrate fit
	// (default 3s; requests may lower it with ?budget=).
	CalibrateBudget time.Duration
	// CalibrateOnStart runs a bounded calibration fit in New, before the
	// server takes traffic, and installs (and persists, when
	// CalibrationFile is set) the fitted profile.
	CalibrateOnStart bool
	// JobStore, when set, journals async job submissions and state
	// transitions so a restart over the same store recovers them:
	// non-terminal jobs re-queue, terminal ones stay fetchable. Both
	// stores are typically opened by sfcpd from -data-dir; nil keeps the
	// in-memory behavior.
	JobStore store.JobStore
	// BlobStore, when set, is the content-addressed durable tier for
	// instance payloads and solved results. The solve path consults it
	// after a RAM-cache miss and persists spilled results into it.
	BlobStore store.BlobStore
	// SpillN is the instance size (elements) at or above which payloads
	// and results are released from RAM once persisted to the blob tier
	// (default 1<<16; only meaningful with BlobStore).
	SpillN int
	// CacheBytes additionally bounds the result LRU by estimated
	// resident bytes (0 = entries-only, the original behavior).
	CacheBytes int64
	// InstanceSessions bounds how many incremental solve sessions (the
	// versioned-instance API's resident decomposition states, each O(n)
	// memory) stay live at once (default 32; negative disables
	// residency — every delta rebuilds from the blob tier).
	InstanceSessions int
	// Logf receives storage and recovery diagnostics (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.WorkersPerAlgorithm <= 0 {
		c.WorkersPerAlgorithm = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.WorkersPerAlgorithm
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.MaxN <= 0 {
		c.MaxN = 1 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.BatchMaxWait == 0 {
		c.BatchMaxWait = time.Millisecond
	}
	if c.BatchMaxSize <= 0 {
		c.BatchMaxSize = 64
	}
	if c.BatchMaxN <= 0 {
		c.BatchMaxN = sfcp.LinearCrossoverN - 1
	}
	if c.CalibrateBudget <= 0 {
		c.CalibrateBudget = 3 * time.Second
	}
	if c.SpillN <= 0 {
		c.SpillN = 1 << 16
	}
	if c.InstanceSessions == 0 {
		c.InstanceSessions = 32
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// SolveRequest is the JSON body of POST /solve and a member of a batch.
type SolveRequest struct {
	// Algorithm names the solver (Algorithm.String values); empty means
	// the batch default, or "auto".
	Algorithm string `json:"algorithm,omitempty"`
	// F is the function table: F[x] in [0, n).
	F []int `json:"f"`
	// B is the initial partition label per element.
	B []int `json:"b"`
	// Seed overrides the server's simulator seed when set.
	Seed *uint64 `json:"seed,omitempty"`
}

// SolveResponse is the JSON reply for one instance. Algorithm echoes what
// the request asked for; ResolvedAlgorithm is what the planner actually
// ran (they differ exactly when the request said "auto"), with PlanReason
// explaining the choice.
type SolveResponse struct {
	Algorithm         string      `json:"algorithm"`
	ResolvedAlgorithm string      `json:"resolved_algorithm,omitempty"`
	PlanReason        string      `json:"plan_reason,omitempty"`
	PlanWorkers       int         `json:"plan_workers,omitempty"`
	Labels            []int       `json:"labels,omitempty"`
	NumClasses        int         `json:"num_classes"`
	Cached            bool        `json:"cached"`
	ElapsedMS         float64     `json:"elapsed_ms"`
	PlanMS            float64     `json:"plan_ms,omitempty"`
	SolveMS           float64     `json:"solve_ms,omitempty"`
	ResolveMS         float64     `json:"resolve_ms,omitempty"`
	Stats             *sfcp.Stats `json:"stats,omitempty"`
	Error             string      `json:"error,omitempty"`

	// Coalescing front-door fields, set when the request was served
	// through the micro-batcher: how many requests shared the flush, why
	// the flush fired ("size" or "deadline"), and the queue wait — the
	// latency the request spent coalescing, separable from SolveMS.
	Coalesced   int     `json:"coalesced,omitempty"`
	FlushReason string  `json:"flush_reason,omitempty"`
	QueueMS     float64 `json:"queue_ms,omitempty"`

	// transient marks server-side failures (shutdown, cancellation) that
	// deserve a 503 rather than a 400; never serialized.
	transient bool
}

// BatchRequest is the JSON body of POST /solve/batch.
type BatchRequest struct {
	// Algorithm is the default solver for members that leave theirs empty.
	Algorithm string         `json:"algorithm,omitempty"`
	Instances []SolveRequest `json:"instances"`
}

// BatchResponse holds positional results; failed members carry Error and
// do not fail their siblings.
type BatchResponse struct {
	Results []SolveResponse `json:"results"`
	Errors  int             `json:"errors"`
}

// Server is the http.Handler implementing the sfcpd API.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	pool    *pool
	cache   *resultCache
	metrics *metrics
	solvers map[sfcp.Algorithm]*sfcp.Solver
	jobs    *jobs.Manager
	logf    func(format string, args ...any)

	// sessions holds the versioned-instance API's resident incremental
	// solve states, keyed by the digest of the version each represents.
	sessions *sessionRegistry

	// blobs is the metered durable result tier (nil in zero-config mode);
	// the meter wraps the configured BlobStore so job-manager and
	// solve-path traffic both land in the sfcpd_store_* counters.
	blobs *store.Metered

	// coalescer micro-batches small solves (nil when disabled); stop
	// cancels the lifecycle context it derives from.
	coalescer *batcher.Batcher
	stop      context.CancelFunc

	// calibrating serializes POST /calibrate: a fit saturates the solver
	// cores by design, so a second concurrent one would only corrupt both
	// measurements. CAS, not a mutex — the loser gets a 409, not a queue.
	calibrating atomic.Bool
}

// New builds a ready-to-serve Server. When cfg names a calibration file
// it is loaded (leniently — a bad file degrades to the default profile)
// and, with CalibrateOnStart, a bounded fit runs before the first
// request can arrive.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		pool:    newPool(cfg.WorkersPerAlgorithm, cfg.QueueDepth),
		cache:   newResultCache(cfg.CacheSize, cfg.CacheBytes),
		metrics: newMetrics(),
		solvers: map[sfcp.Algorithm]*sfcp.Solver{},
		logf:    cfg.Logf,

		sessions: newSessionRegistry(cfg.InstanceSessions),
	}
	// The meter wraps the blob tier once so every consumer — the job
	// manager's spill/reload traffic and the solve path's read/write
	// through — shares one set of counters. jobBlobs stays a nil
	// interface (not a typed-nil *Metered) when there is no tier.
	var jobBlobs store.BlobStore
	if cfg.BlobStore != nil {
		s.blobs = store.NewMetered(cfg.BlobStore)
		jobBlobs = s.blobs
	}
	// One solver (scratch-arena pool) per concrete algorithm; "auto" never
	// reaches this map — solveResult resolves it first.
	for _, algo := range sfcp.Algorithms() {
		if algo == sfcp.AlgorithmAuto {
			continue
		}
		s.solvers[algo] = sfcp.NewSolver(sfcp.Options{
			Algorithm: algo, Workers: cfg.Workers, Seed: cfg.Seed,
		})
	}
	// Async jobs run through the same solveResult path as synchronous
	// requests — one dispatcher per pool worker so the job subsystem can
	// keep every worker busy without overflowing the pool queues.
	s.jobs = jobs.New(jobs.Config{
		MaxQueued:               cfg.JobMaxQueued,
		DispatchersPerAlgorithm: cfg.WorkersPerAlgorithm,
		TTL:                     cfg.JobTTL,
		Journal:                 cfg.JobStore,
		Blobs:                   jobBlobs,
		SpillN:                  cfg.SpillN,
		DefaultSeed:             cfg.Seed,
		Logf:                    cfg.Logf,
	}, func(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (sfcp.Result, bool, error) {
		out := s.solveResult(ctx, algo, seed, ins)
		return out.res, out.cached, out.err
	})
	// The coalescing front door: small solves (synchronous and async —
	// job dispatchers land in the same solveResult) accumulate into
	// micro-batches that solve as one planned run under a shared scratch
	// arena. Its lifecycle context is the server's root, cancelled in
	// Close before the pool stops.
	if cfg.BatchMaxWait >= 0 {
		//sfcpvet:ignore ctxpath -- the server's lifecycle root, cancelled in Close; the coalescer's context derives from it
		lifecycle, cancel := context.WithCancel(context.Background())
		s.stop = cancel
		s.coalescer = batcher.New(lifecycle, batcher.Config{
			MaxWait: cfg.BatchMaxWait,
			MaxSize: cfg.BatchMaxSize,
			Run:     s.runCoalesced,
			Observe: s.metrics.batcherFlush,
		})
	}
	s.mux.HandleFunc("/solve", s.handleSolve)
	s.mux.HandleFunc("/solve/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /calibrate", s.handleCalibrate)
	s.mux.HandleFunc("POST /instances", s.handleInstanceCreate)
	s.mux.HandleFunc("POST /instances/{digest}/delta", s.handleInstanceDelta)
	s.mux.HandleFunc("POST /jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	s.initCalibration()
	return s
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the job manager (cancelling running jobs), then the
// coalescer (queued micro-batch members fail with its shutdown error),
// then the worker pool. In-flight requests finish; queued ones fail.
func (s *Server) Close() {
	s.jobs.Close()
	if s.coalescer != nil {
		s.coalescer.Close()
		s.stop()
	}
	s.pool.close()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("healthz")
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("metrics")
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	jc := s.jobs.Counts()
	fmt.Fprint(w, s.metrics.render())
	fmt.Fprint(w, renderJobs(jc))
	fmt.Fprint(w, renderCalibration(sfcp.ActiveCalibrationProfile()))
	fmt.Fprint(w, renderStore(s.blobCounts(), jc, s.journalCorrupt(), s.cache.Bytes()))
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("solve")
	if r.Method != http.MethodPost {
		s.fail(w, "solve", http.StatusMethodNotAllowed, "POST required")
		return
	}
	if isBinary(r) {
		s.handleSolveBinary(w, r)
		return
	}
	var req SolveRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.fail(w, "solve", decodeStatus(err), err.Error())
		return
	}
	s.writeSolveResult(w, "solve", s.solveOne(r.Context(), req, ""))
}

// writeSolveResult maps a single-solve outcome onto HTTP: client mistakes
// become 400, transient server-side failures 503, successes 200.
func (s *Server) writeSolveResult(w http.ResponseWriter, route string, resp SolveResponse) {
	if resp.Error != "" {
		code := http.StatusBadRequest
		if resp.transient {
			code = http.StatusServiceUnavailable
		}
		s.fail(w, route, code, resp.Error)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// runBatch solves n members concurrently and writes the positional
// BatchResponse; failed members carry Error without failing siblings.
func (s *Server) runBatch(w http.ResponseWriter, n int, solve func(i int) SolveResponse) {
	resp := BatchResponse{Results: make([]SolveResponse, n)}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp.Results[i] = solve(i)
		}(i)
	}
	wg.Wait()
	for i := range resp.Results {
		if resp.Results[i].Error != "" {
			resp.Errors++
		}
	}
	if resp.Errors > 0 {
		s.metrics.error("batch")
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSolveBinary serves POST /solve with a Content-Type:
// application/x-sfcp body holding exactly one wire-format instance.
// Algorithm and seed travel as query parameters.
func (s *Server) handleSolveBinary(w http.ResponseWriter, r *http.Request) {
	algo, seed, err := binaryParams(r)
	if err != nil {
		s.fail(w, "solve", http.StatusBadRequest, err.Error())
		return
	}
	dec, body := s.binaryDecoder(w, r)
	defer func() { s.metrics.ingest("binary", body.n) }()
	ins, err := decodeSingleBinary(dec)
	if err != nil {
		s.fail(w, "solve", decodeStatus(err), err.Error())
		return
	}
	s.writeSolveResult(w, "solve", s.solveInstance(r.Context(), algo, seed, ins))
}

// decodeSingleBinary reads the one instance a single-instance route's body
// must hold, rejecting anything after it — mirroring the JSON path's
// trailing-data rejection. More is a one-byte probe: no second instance
// gets decoded just to be thrown away.
func decodeSingleBinary(dec *codec.Reader) (sfcp.Instance, error) {
	ins, err := decodeBinaryInstance(dec)
	if err != nil {
		return sfcp.Instance{}, err
	}
	switch more, probeErr := dec.More(); {
	case probeErr != nil:
		return sfcp.Instance{}, probeErr
	case more:
		return sfcp.Instance{}, errors.New("invalid binary body: trailing data after instance")
	}
	return ins, nil
}

// handleBatchBinary serves POST /solve/batch with a binary body of
// concatenated wire-format instances: the upload is sharded into members
// as it streams, each with its own trailer digest for cache keying, and
// the members are then solved concurrently like a JSON batch.
//
// A member that fails only its digest check is positionally recoverable
// (every framed byte was consumed, so the stream stays aligned — see
// codec.ErrDigestMismatch): it becomes a per-member error in the response
// instead of a 400 aborting its valid siblings. Errors that lose framing
// (truncation, bad varints, bad magic) still abort the whole upload — the
// remaining byte positions are meaningless.
func (s *Server) handleBatchBinary(w http.ResponseWriter, r *http.Request) {
	algo, seed, err := binaryParams(r)
	if err != nil {
		s.fail(w, "batch", http.StatusBadRequest, err.Error())
		return
	}
	dec, body := s.binaryDecoder(w, r)
	defer func() { s.metrics.ingest("binary", body.n) }()
	type member struct {
		ins    sfcp.Instance
		decErr error
	}
	var members []member
	for {
		if len(members) == s.cfg.MaxBatch {
			// A one-byte probe rejects an over-limit upload before the
			// excess member's arrays get decoded and allocated.
			more, err := dec.More()
			if err != nil {
				s.fail(w, "batch", decodeStatus(err), err.Error())
				return
			}
			if more {
				s.fail(w, "batch", http.StatusBadRequest,
					fmt.Sprintf("batch exceeds limit %d", s.cfg.MaxBatch))
				return
			}
			break
		}
		ins, err := decodeBinaryInstance(dec)
		if err == io.EOF {
			break
		}
		if errors.Is(err, codec.ErrDigestMismatch) {
			members = append(members, member{decErr: err})
			continue
		}
		if err != nil {
			s.fail(w, "batch", decodeStatus(err),
				fmt.Sprintf("instance %d: %s", len(members), err))
			return
		}
		members = append(members, member{ins: ins})
	}
	if len(members) == 0 {
		s.fail(w, "batch", http.StatusBadRequest, "empty batch")
		return
	}
	s.runBatch(w, len(members), func(i int) SolveResponse {
		if err := members[i].decErr; err != nil {
			return SolveResponse{Algorithm: algo.String(), Error: err.Error()}
		}
		return s.solveInstance(r.Context(), algo, seed, members[i].ins)
	})
}

// isBinary reports whether the request carries a wire-format body.
func isBinary(r *http.Request) bool {
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && mt == sfcp.BinaryMediaType
}

// binaryParams resolves the query-string algorithm and seed of a binary
// upload (the wire format itself carries only the instance).
func binaryParams(r *http.Request) (sfcp.Algorithm, *uint64, error) {
	q := r.URL.Query()
	name := q.Get("algorithm")
	if name == "" {
		name = sfcp.AlgorithmAuto.String()
	}
	algo, err := sfcp.ParseAlgorithm(name)
	if err != nil {
		return 0, nil, err
	}
	var seed *uint64
	if raw := q.Get("seed"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return 0, nil, fmt.Errorf("invalid seed %q: %w", raw, err)
		}
		seed = &v
	}
	return algo, seed, nil
}

// binaryDecoder wraps the request body in the byte limit, a byte counter
// for the ingest metric, and a chunked wire-format reader capped at MaxN.
func (s *Server) binaryDecoder(w http.ResponseWriter, r *http.Request) (*codec.Reader, *countingReader) {
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)}
	dec := codec.NewReader(body)
	dec.MaxN = s.cfg.MaxN
	return dec, body
}

// decodeBinaryInstance reads one instance, its XXH64 trailer verified
// chunk by chunk during the streamed decode — so no byte of the body is
// read twice and corruption surfaces here, not as a wrong answer. Cache
// keying happens later on the SHA-256 content address (see solveInstance).
// io.EOF marks a clean end of stream.
func decodeBinaryInstance(dec *codec.Reader) (sfcp.Instance, error) {
	f, b, err := dec.Decode()
	if err != nil {
		return sfcp.Instance{}, err
	}
	return sfcp.Instance{F: f, B: b}, nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("batch")
	if r.Method != http.MethodPost {
		s.fail(w, "batch", http.StatusMethodNotAllowed, "POST required")
		return
	}
	if isBinary(r) {
		s.handleBatchBinary(w, r)
		return
	}
	var req BatchRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		s.fail(w, "batch", decodeStatus(err), err.Error())
		return
	}
	if len(req.Instances) == 0 {
		s.fail(w, "batch", http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Instances) > s.cfg.MaxBatch {
		s.fail(w, "batch", http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Instances), s.cfg.MaxBatch))
		return
	}
	s.runBatch(w, len(req.Instances), func(i int) SolveResponse {
		return s.solveOne(r.Context(), req.Instances[i], req.Algorithm)
	})
}

// solveOne resolves a JSON request's algorithm and size limit, then hands
// off to solveInstance. It never panics the handler: problems come back
// in SolveResponse.Error.
func (s *Server) solveOne(ctx context.Context, req SolveRequest, defaultAlgo string) SolveResponse {
	name := req.Algorithm
	if name == "" {
		name = defaultAlgo
	}
	if name == "" {
		name = sfcp.AlgorithmAuto.String()
	}
	algo, err := sfcp.ParseAlgorithm(name)
	if err != nil {
		return SolveResponse{Algorithm: name, Error: err.Error()}
	}
	if len(req.F) > s.cfg.MaxN {
		return SolveResponse{
			Algorithm: algo.String(),
			Error:     fmt.Sprintf("instance of %d elements exceeds limit %d", len(req.F), s.cfg.MaxN),
		}
	}
	return s.solveInstance(ctx, algo, req.Seed, sfcp.Instance{F: req.F, B: req.B})
}

// solveInstance adapts solveResult's outcome to the synchronous API's
// SolveResponse shape.
func (s *Server) solveInstance(ctx context.Context, algo sfcp.Algorithm, seedOverride *uint64, ins sfcp.Instance) SolveResponse {
	resp := SolveResponse{Algorithm: algo.String()}
	out := s.solveResult(ctx, algo, seedOverride, ins)
	if out.err != nil {
		resp.Error = out.err.Error()
		resp.transient = errors.Is(out.err, errShutdown) || errors.Is(out.err, batcher.ErrShutdown) ||
			errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded)
		return resp
	}
	resp.ResolvedAlgorithm = out.plan.Algorithm.String()
	resp.PlanReason = out.plan.Reason
	resp.PlanWorkers = out.plan.Workers
	resp.Labels, resp.NumClasses, resp.Stats, resp.Cached = out.res.Labels, out.res.NumClasses, out.res.Stats, out.cached
	if !out.cached {
		resp.ElapsedMS = float64(out.elapsed) / float64(time.Millisecond)
		resp.PlanMS = float64(out.res.Timings.Plan) / float64(time.Millisecond)
		resp.SolveMS = float64(out.res.Timings.Solve) / float64(time.Millisecond)
	}
	resp.Coalesced = out.coalesced
	resp.FlushReason = out.flushReason
	resp.QueueMS = float64(out.queueWait) / float64(time.Millisecond)
	return resp
}

// solveOutcome is everything the solve path reports about one request:
// the result and resolved plan, whether the cache served it, end-to-end
// elapsed time, and — when the coalescing front door handled it — the
// batch metadata (flush size and reason, per-request queue wait).
type solveOutcome struct {
	res         sfcp.Result
	plan        sfcp.Plan
	cached      bool
	elapsed     time.Duration
	coalesced   int
	flushReason string
	queueWait   time.Duration
	err         error
}

// solveResult is the one solve path of the server — synchronous handlers
// and async job dispatchers both land here. It first resolves the
// request's execution plan (validating the instance as a side effect), so
// everything downstream — the cache key, the worker queue, the metrics —
// is keyed by the algorithm that actually runs: a request for "auto" and
// an explicit request for the planner's choice share one cache entry and
// one queue instead of solving twice.
//
// The cache uses the instance's SHA-256 content address. Both ingest
// formats share the cache keyspace deliberately: the wire format's XXH64
// trailer guards integrity but is not collision-resistant, so cache
// correctness — where a crafted collision would serve one instance
// another's labels — rests on the cryptographic digest, and a JSON upload
// of an instance hits the entry its binary twin populated. With caching
// disabled no digest is computed at all.
func (s *Server) solveResult(ctx context.Context, algo sfcp.Algorithm, seedOverride *uint64, ins sfcp.Instance) solveOutcome {
	seed := s.cfg.Seed
	if seedOverride != nil {
		seed = *seedOverride
	}
	if s.coalescible(algo, ins) {
		return s.solveCoalesced(ctx, algo, seed, ins)
	}
	planStart := time.Now()
	plan, err := sfcp.PlanWith(ins, sfcp.Options{Algorithm: algo, Workers: s.cfg.Workers})
	planDur := time.Since(planStart)
	if err != nil {
		// A plan/validation failure is not a solve: nothing resolved and
		// nothing ran, so it counts under the dedicated plan-error family
		// keyed by what the request asked for — never under the
		// per-resolved-algorithm solve families (which a request for
		// "auto" would otherwise pollute with an "auto" label no solve
		// ever carries).
		s.metrics.planError(algo.String())
		return solveOutcome{err: err}
	}
	resolved := plan.Algorithm
	s.metrics.plan(resolved.String())
	var key, digest string
	if s.cache.enabled() || s.blobs != nil {
		// One digest serves both tiers: the RAM key and the durable
		// result key are content addresses over the same SHA-256.
		digest = ins.Digest()
	}
	if s.cache.enabled() {
		key = cacheKey(resolved, seed, digest)
		if res, ok := s.cache.Get(key); ok {
			s.metrics.cache(true)
			// The labels are shared, but the plan reported is this
			// request's own resolution — not whatever request happened to
			// populate the entry (an "auto" hit on an explicit twin's
			// entry must not claim "explicit ... request").
			res.Plan = &plan
			return solveOutcome{res: res, plan: plan, cached: true}
		}
		s.metrics.cache(false)
	}
	// RAM missed; the durable tier may still hold the answer (persisted
	// by an async job, a spilled solve, or a previous process over the
	// same data dir). A hit warms the RAM cache like any other fill.
	if res, ok := s.tierGet(resolved, seed, digest); ok {
		res.Plan = &plan
		if key != "" {
			s.cache.Put(key, res)
		}
		return solveOutcome{res: res, plan: plan, cached: true}
	}

	start := time.Now()
	res, err := s.pool.submit(ctx, resolved, func(ctx context.Context) (sfcp.Result, error) {
		// Execute exactly the plan that chose the queue and the cache key —
		// no re-validation of the choice inside the pool.
		if seed == s.cfg.Seed {
			return s.solvers[resolved].SolvePlanned(ctx, ins, plan)
		}
		return sfcp.SolvePlanned(ctx, ins, plan, sfcp.Options{Seed: seed})
	})
	elapsed := time.Since(start)
	s.metrics.solve(resolved.String(), elapsed, res.NumClasses, err)
	if err != nil {
		return solveOutcome{plan: plan, elapsed: elapsed, err: err}
	}
	res.Timings.Plan = planDur
	if key != "" {
		s.cache.Put(key, res)
	}
	// Results big enough to spill (the job manager's RAM-release
	// threshold) write through to the durable tier, so the next process
	// over this data dir starts warm for exactly the instances that are
	// expensive to recompute.
	if s.blobs != nil && len(ins.F) >= s.cfg.SpillN {
		s.tierPut(resolved, seed, digest, res.Labels)
	}
	return solveOutcome{res: res, plan: plan, elapsed: elapsed}
}

// cacheKey builds the "resolved/seed/digest" cache key without fmt — this
// runs on every cacheable request, and Sprintf's reflection costs more
// than the rest of the lookup in the tiny-solve regime. One allocation
// (the final string); pinned by TestCacheKeyAllocs.
func cacheKey(algo sfcp.Algorithm, seed uint64, digest string) string {
	name := algo.String()
	var b strings.Builder
	b.Grow(len(name) + len(digest) + 22) // 20 digits of uint64 max + 2 slashes
	b.WriteString(name)
	b.WriteByte('/')
	var num [20]byte
	b.Write(strconv.AppendUint(num[:0], seed, 10))
	b.WriteByte('/')
	b.WriteString(digest)
	return b.String()
}

func (s *Server) fail(w http.ResponseWriter, route string, code int, msg string) {
	s.metrics.error(route)
	writeJSON(w, code, map[string]string{"error": msg})
}

// decodeJSON parses the body under the configured byte limit, so oversized
// payloads are cut off while streaming instead of after a full decode.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)}
	defer func() { s.metrics.ingest("json", body.n) }()
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return errors.New("invalid JSON body: trailing data")
	}
	return nil
}

func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
