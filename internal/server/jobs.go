package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"sfcp"
	"sfcp/internal/jobs"
)

// The async job API. A solve that would hold an HTTP connection for
// minutes travels as a job instead:
//
//	POST   /jobs             submit (JSON body or application/x-sfcp) -> 202 + snapshot
//	GET    /jobs/{id}        status snapshot
//	GET    /jobs/{id}/result labels as JSON, or a binary labels stream
//	                         when the Accept header names application/x-sfcp
//	DELETE /jobs/{id}        cancel (cooperative; idempotent)
//
// Job solves run through the same cache + per-algorithm pool path as the
// synchronous endpoints, so a job can be answered from cache and a job's
// result warms the cache for synchronous traffic.

// JobRequest is the JSON body of POST /jobs: a SolveRequest plus a
// scheduling priority (higher runs sooner; default 0). Binary submissions
// carry algorithm, seed and priority as query parameters instead.
type JobRequest struct {
	Algorithm string  `json:"algorithm,omitempty"`
	F         []int   `json:"f"`
	B         []int   `json:"b"`
	Seed      *uint64 `json:"seed,omitempty"`
	Priority  int     `json:"priority,omitempty"`
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("jobs")
	var req JobRequest
	if isBinary(r) {
		algo, seed, err := binaryParams(r)
		if err != nil {
			s.fail(w, "jobs", http.StatusBadRequest, err.Error())
			return
		}
		req.Algorithm, req.Seed = algo.String(), seed
		if raw := r.URL.Query().Get("priority"); raw != "" {
			p, err := strconv.Atoi(raw)
			if err != nil {
				s.fail(w, "jobs", http.StatusBadRequest, fmt.Sprintf("invalid priority %q: %s", raw, err))
				return
			}
			req.Priority = p
		}
		dec, body := s.binaryDecoder(w, r)
		defer func() { s.metrics.ingest("binary", body.n) }()
		ins, err := decodeSingleBinary(dec)
		if err != nil {
			s.fail(w, "jobs", decodeStatus(err), err.Error())
			return
		}
		req.F, req.B = ins.F, ins.B
	} else if err := s.decodeJSON(w, r, &req); err != nil {
		s.fail(w, "jobs", decodeStatus(err), err.Error())
		return
	}

	name := req.Algorithm
	if name == "" {
		name = sfcp.AlgorithmAuto.String()
	}
	algo, err := sfcp.ParseAlgorithm(name)
	if err != nil {
		s.fail(w, "jobs", http.StatusBadRequest, err.Error())
		return
	}
	if len(req.F) > s.cfg.MaxN {
		s.fail(w, "jobs", http.StatusBadRequest,
			fmt.Sprintf("instance of %d elements exceeds limit %d", len(req.F), s.cfg.MaxN))
		return
	}
	snap, err := s.jobs.Submit(algo, req.Seed, req.Priority, sfcp.Instance{F: req.F, B: req.B})
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.fail(w, "jobs", http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, jobs.ErrClosed):
		s.fail(w, "jobs", http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		s.fail(w, "jobs", http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, snap)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("jobs_status")
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, "jobs_status", http.StatusNotFound, "unknown job (expired or never existed)")
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("jobs_result")
	res, snap, err := s.jobs.Result(r.PathValue("id"))
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		s.fail(w, "jobs_result", http.StatusNotFound, "unknown job (expired or never existed)")
		return
	case errors.Is(err, jobs.ErrResultUnavailable):
		// The job finished, but its persisted labels cannot be read back
		// (deleted out of band, or corrupt — the codec trailer catches
		// that). The snapshot still stands; the payload is gone.
		s.fail(w, "jobs_result", http.StatusGone, err.Error())
		return
	case err != nil:
		s.fail(w, "jobs_result", http.StatusInternalServerError, err.Error())
		return
	}
	if snap.State != jobs.StateDone {
		// The snapshot rides along so one poll-then-fetch race does not
		// cost the client another round trip to learn why.
		s.metrics.error("jobs_result")
		writeJSON(w, http.StatusConflict, snap)
		return
	}
	if acceptsBinary(r) {
		w.Header().Set("Content-Type", sfcp.BinaryMediaType)
		if err := sfcp.EncodeLabelsBinary(w, res.Labels); err != nil {
			// Headers are gone; all we can do is abort the stream so the
			// client's decoder reports truncation instead of silence.
			return
		}
		return
	}
	writeJSON(w, http.StatusOK, SolveResponse{
		Algorithm:         snap.Algorithm,
		ResolvedAlgorithm: snap.ResolvedAlgorithm,
		PlanReason:        snap.PlanReason,
		PlanWorkers:       snap.PlanWorkers,
		Labels:            res.Labels,
		NumClasses:        res.NumClasses,
		Cached:            snap.Cached,
		ElapsedMS:         snap.ElapsedMS,
		ResolveMS:         snap.ResolveMS,
		Stats:             res.Stats,
	})
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("jobs_cancel")
	snap, ok := s.jobs.Cancel(r.PathValue("id"))
	if !ok {
		s.fail(w, "jobs_cancel", http.StatusNotFound, "unknown job (expired or never existed)")
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// acceptsBinary reports whether the client asked for the labels wire
// format; JSON stays the default for everything else (including */*).
func acceptsBinary(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		if mt == sfcp.BinaryMediaType {
			return true
		}
	}
	return false
}
