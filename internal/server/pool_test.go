package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sfcp"
)

// TestPoolCloseDoesNotExecuteQueued pins the shutdown contract: close
// documents queued-but-unstarted tasks as dropped (their submitters get
// errShutdown), so a closing worker must never execute them. Before the
// priority done-check the worker's unbiased select would randomly drain
// and run queued tasks after close.
func TestPoolCloseDoesNotExecuteQueued(t *testing.T) {
	const queued = 8
	p := newPool(1, queued)
	ctx := context.Background()

	// Park the single linear worker inside a task so everything submitted
	// behind it stays queued.
	started := make(chan struct{})
	release := make(chan struct{})
	go p.submit(ctx, sfcp.AlgorithmLinear, func(context.Context) (sfcp.Result, error) {
		close(started)
		<-release
		return sfcp.Result{}, nil
	})
	<-started

	// Fill the queue behind the blocker.
	var executed atomic.Int32
	var wg sync.WaitGroup
	errs := make([]error, queued)
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.submit(ctx, sfcp.AlgorithmLinear, func(context.Context) (sfcp.Result, error) {
				executed.Add(1)
				return sfcp.Result{}, nil
			})
		}(i)
	}
	// Wait until all eight sit in the queue (buffered channel, so the
	// sends complete as soon as there is room; poll for the fill).
	deadline := time.Now().Add(5 * time.Second)
	for len(p.queues[sfcp.AlgorithmLinear]) < queued {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d/%d", len(p.queues[sfcp.AlgorithmLinear]), queued)
		}
		time.Sleep(time.Millisecond)
	}

	// Close while the worker is still parked, then let it run: on its way
	// out it must drain the queue without executing anything.
	closed := make(chan struct{})
	go func() {
		p.close()
		close(closed)
	}()
	// close blocks in wg.Wait until the parked worker exits, but p.done is
	// closed first — wait for that signal before releasing the worker, so
	// the worker provably observes a closing pool when it next hits the
	// queue.
	<-p.done
	close(release)
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("pool.close never returned")
	}
	wg.Wait()

	if n := executed.Load(); n != 0 {
		t.Errorf("%d queued tasks executed after close; close documents them as dropped", n)
	}
	for i, err := range errs {
		if !errors.Is(err, errShutdown) {
			t.Errorf("queued submitter %d got %v, want errShutdown", i, err)
		}
	}
}
