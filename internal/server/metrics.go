package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sfcp"
	"sfcp/internal/jobs"
	"sfcp/internal/store"
)

// Metric family names. Every sfcpd_* family the server exposes is named
// exactly once here and referenced by constant everywhere — increment
// sites, Render, tests — so a family cannot drift into two spellings.
// The metricname analyzer (cmd/sfcpvet) enforces this: string-literal
// sfcpd_* names are findings, and each constant must flow through one
// typeHeader call plus at least one sample line.
const (
	metricRequestsTotal      = "sfcpd_requests_total"
	metricErrorsTotal        = "sfcpd_errors_total"
	metricCacheHitsTotal     = "sfcpd_cache_hits_total"
	metricCacheMissesTotal   = "sfcpd_cache_misses_total"
	metricIngestBytesTotal   = "sfcpd_ingest_bytes_total"
	metricPlanAlgorithmTotal = "sfcpd_plan_algorithm_total"
	metricSolvesTotal        = "sfcpd_solves_total"
	metricSolveErrorsTotal   = "sfcpd_solve_errors_total"
	metricSolveSecondsSum    = "sfcpd_solve_seconds_sum"
	metricSolveSecondsMax    = "sfcpd_solve_seconds_max"
	metricSolveClassesSum    = "sfcpd_solve_classes_sum"
	metricJobsSubmittedTotal = "sfcpd_jobs_submitted_total"
	metricJobsFinishedTotal  = "sfcpd_jobs_finished_total"
	metricJobsEvictedTotal   = "sfcpd_jobs_evicted_total"
	metricJobsQueued         = "sfcpd_jobs_queued"
	metricJobsRunning        = "sfcpd_jobs_running"

	// Plan/validation failures, keyed by the algorithm the request asked
	// for (possibly "auto" — nothing was resolved, so nothing ran; these
	// must never inflate the per-resolved-algorithm solve families).
	metricPlanErrorsTotal = "sfcpd_plan_errors_total"

	// Coalescing front-door families: requests that went through the
	// micro-batcher, flushes by trigger reason, and the summed/counted
	// per-request queue wait (sum/count expose the mean coalescing
	// latency a request paid before its batch solved).
	metricBatcherCoalescedTotal    = "sfcpd_batcher_coalesced_total"
	metricBatcherFlushesTotal      = "sfcpd_batcher_flushes_total"
	metricBatcherQueueSecondsSum   = "sfcpd_batcher_queue_seconds_sum"
	metricBatcherQueueSecondsCount = "sfcpd_batcher_queue_seconds_count"

	// Calibration families: whether the planner is steering by a fitted
	// profile (1) or the built-in defaults (0), and the active profile's
	// threshold fields so a scrape shows the exact numbers behind every
	// plan this host resolves.
	metricPlanCalibrated = "sfcpd_plan_calibrated"
	metricPlanProfile    = "sfcpd_plan_profile"

	// Tiered-storage families: blob-tier traffic (reads/writes/deletes
	// and their bytes, from the meter wrapping the configured store),
	// payloads spilled out of RAM, jobs recovered at boot by outcome
	// (requeued to run again vs restored as fetchable terminal state),
	// journal entries recovery had to skip as unreadable, and the RAM
	// result cache's estimated resident bytes. All render as zeros in
	// zero-config (in-memory) mode.
	metricStoreBlobReadsTotal      = "sfcpd_store_blob_reads_total"
	metricStoreBlobWritesTotal     = "sfcpd_store_blob_writes_total"
	metricStoreBlobDeletesTotal    = "sfcpd_store_blob_deletes_total"
	metricStoreBlobReadBytesTotal  = "sfcpd_store_blob_read_bytes_total"
	metricStoreBlobWriteBytesTotal = "sfcpd_store_blob_write_bytes_total"
	metricStoreSpilledTotal        = "sfcpd_store_spilled_total"
	metricStoreRecoveredJobsTotal  = "sfcpd_store_recovered_jobs_total"
	metricStoreJournalCorruptTotal = "sfcpd_store_journal_corrupt_total"
	metricCacheBytes               = "sfcpd_cache_bytes"

	// Incremental re-solve families: deltas applied by mode (the
	// component-scoped incremental path vs the full-re-solve fallback the
	// planner or code-space exhaustion forced), and a histogram of the
	// dirty fraction each delta invalidated — the quantity the planner's
	// crossover decision is made on.
	metricResolveTotal     = "sfcpd_resolve_total"
	metricResolveDirtyFrac = "sfcpd_resolve_dirty_frac"
)

// typeHeader renders one family's exposition-format type line.
func typeHeader(name, kind string) string {
	return "# TYPE " + name + " " + kind + "\n"
}

// metrics aggregates the counters exposed at /metrics: per-route request
// and error totals, cache traffic, and per-algorithm solve statistics
// (count, cumulative latency, max latency). Everything is guarded by one
// mutex — the handlers touch it a handful of times per request, far from
// contention territory.
type metrics struct {
	mu        sync.Mutex
	requests  map[string]int64 // by route
	errors    map[string]int64 // by route
	cacheHits int64
	cacheMiss int64
	ingested  map[string]int64       // body bytes by format ("json", "binary")
	solves    map[string]*solveStats // by resolved algorithm name
	plans     map[string]int64       // planner resolutions by resolved algorithm
	planErrs  map[string]int64       // plan/validation failures by requested algorithm

	batcherCoalesced  int64            // requests served through the coalescer
	batcherFlushes    map[string]int64 // flushes by reason ("size", "deadline")
	batcherQueueWait  time.Duration    // summed per-request coalescing wait
	batcherQueueCount int64            // requests contributing to that sum

	resolves       map[string]int64                 // deltas by resolve mode
	dirtyBuckets   [len(dirtyFracBounds) + 1]int64 // histogram counts, last = +Inf
	dirtyFracSum   float64
	dirtyFracCount int64
}

// dirtyFracBounds are the dirty-fraction histogram's upper bounds; the
// planner's default crossover (0.3) falls between two of them so a scrape
// shows which side of the decision traffic lands on.
var dirtyFracBounds = [...]float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1}

type solveStats struct {
	count   int64
	errors  int64
	total   time.Duration
	max     time.Duration
	classes int64 // cumulative, to expose mean classes per solve
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[string]int64{},
		errors:   map[string]int64{},
		ingested: map[string]int64{},
		solves:   map[string]*solveStats{},
		plans:    map[string]int64{},
		planErrs: map[string]int64{},

		batcherFlushes: map[string]int64{},
		resolves:       map[string]int64{},
	}
}

// resolve records one applied delta: the mode the planner resolved
// (incremental or full fallback) and the dirty fraction it measured.
func (m *metrics) resolve(mode string, dirtyFrac float64) {
	m.mu.Lock()
	m.resolves[mode]++
	i := 0
	for i < len(dirtyFracBounds) && dirtyFrac > dirtyFracBounds[i] {
		i++
	}
	m.dirtyBuckets[i]++
	m.dirtyFracSum += dirtyFrac
	m.dirtyFracCount++
	m.mu.Unlock()
}

// plan records one planner resolution: which concrete algorithm a request
// (auto or explicit) mapped to.
func (m *metrics) plan(algo string) {
	m.mu.Lock()
	m.plans[algo]++
	m.mu.Unlock()
}

// planError records a plan or validation failure under the algorithm the
// request asked for — "auto" included, since no resolution happened. The
// solve families stay untouched: a solve that never ran is not a solve.
func (m *metrics) planError(algo string) {
	m.mu.Lock()
	m.planErrs[algo]++
	m.mu.Unlock()
}

// batcherFlush records one coalescing flush: its trigger reason, how many
// requests it carried, and their summed queue wait. Wired as the
// batcher's Observe hook.
func (m *metrics) batcherFlush(reason string, members int, queueWait time.Duration) {
	m.mu.Lock()
	m.batcherCoalesced += int64(members)
	m.batcherFlushes[reason]++
	m.batcherQueueWait += queueWait
	m.batcherQueueCount += int64(members)
	m.mu.Unlock()
}

func (m *metrics) ingest(format string, bytes int64) {
	m.mu.Lock()
	m.ingested[format] += bytes
	m.mu.Unlock()
}

func (m *metrics) request(route string) {
	m.mu.Lock()
	m.requests[route]++
	m.mu.Unlock()
}

func (m *metrics) error(route string) {
	m.mu.Lock()
	m.errors[route]++
	m.mu.Unlock()
}

func (m *metrics) cache(hit bool) {
	m.mu.Lock()
	if hit {
		m.cacheHits++
	} else {
		m.cacheMiss++
	}
	m.mu.Unlock()
}

func (m *metrics) solve(algo string, elapsed time.Duration, classes int, err error) {
	m.mu.Lock()
	s := m.solves[algo]
	if s == nil {
		s = &solveStats{}
		m.solves[algo] = s
	}
	if err != nil {
		s.errors++
	} else {
		s.count++
		s.total += elapsed
		if elapsed > s.max {
			s.max = elapsed
		}
		s.classes += int64(classes)
	}
	m.mu.Unlock()
}

// render writes the counters in Prometheus text exposition format.
func (m *metrics) render() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b []byte
	emit := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	emit(typeHeader(metricRequestsTotal, "counter"))
	for _, route := range sortedKeys(m.requests) {
		emit("%s{route=%q} %d\n", metricRequestsTotal, route, m.requests[route])
	}
	emit(typeHeader(metricErrorsTotal, "counter"))
	for _, route := range sortedKeys(m.errors) {
		emit("%s{route=%q} %d\n", metricErrorsTotal, route, m.errors[route])
	}
	emit(typeHeader(metricCacheHitsTotal, "counter"))
	emit("%s %d\n", metricCacheHitsTotal, m.cacheHits)
	emit(typeHeader(metricCacheMissesTotal, "counter"))
	emit("%s %d\n", metricCacheMissesTotal, m.cacheMiss)
	emit(typeHeader(metricIngestBytesTotal, "counter"))
	for _, format := range sortedKeys(m.ingested) {
		emit("%s{format=%q} %d\n", metricIngestBytesTotal, format, m.ingested[format])
	}
	emit(typeHeader(metricPlanAlgorithmTotal, "counter"))
	for _, algo := range sortedKeys(m.plans) {
		emit("%s{algorithm=%q} %d\n", metricPlanAlgorithmTotal, algo, m.plans[algo])
	}
	emit(typeHeader(metricSolvesTotal, "counter"))
	for _, algo := range sortedKeys(m.solves) {
		s := m.solves[algo]
		emit("%s{algorithm=%q} %d\n", metricSolvesTotal, algo, s.count)
	}
	emit(typeHeader(metricSolveErrorsTotal, "counter"))
	for _, algo := range sortedKeys(m.solves) {
		emit("%s{algorithm=%q} %d\n", metricSolveErrorsTotal, algo, m.solves[algo].errors)
	}
	emit(typeHeader(metricSolveSecondsSum, "counter"))
	for _, algo := range sortedKeys(m.solves) {
		emit("%s{algorithm=%q} %g\n", metricSolveSecondsSum, algo, m.solves[algo].total.Seconds())
	}
	emit(typeHeader(metricSolveSecondsMax, "gauge"))
	for _, algo := range sortedKeys(m.solves) {
		emit("%s{algorithm=%q} %g\n", metricSolveSecondsMax, algo, m.solves[algo].max.Seconds())
	}
	emit(typeHeader(metricSolveClassesSum, "counter"))
	for _, algo := range sortedKeys(m.solves) {
		emit("%s{algorithm=%q} %d\n", metricSolveClassesSum, algo, m.solves[algo].classes)
	}
	// Families added after the seed's original sixteen are emitted last,
	// so the long-standing blocks above stay byte-stable for scrapers.
	emit(typeHeader(metricPlanErrorsTotal, "counter"))
	for _, algo := range sortedKeys(m.planErrs) {
		emit("%s{algorithm=%q} %d\n", metricPlanErrorsTotal, algo, m.planErrs[algo])
	}
	emit(typeHeader(metricBatcherCoalescedTotal, "counter"))
	emit("%s %d\n", metricBatcherCoalescedTotal, m.batcherCoalesced)
	emit(typeHeader(metricBatcherFlushesTotal, "counter"))
	for _, reason := range sortedKeys(m.batcherFlushes) {
		emit("%s{reason=%q} %d\n", metricBatcherFlushesTotal, reason, m.batcherFlushes[reason])
	}
	emit(typeHeader(metricBatcherQueueSecondsSum, "counter"))
	emit("%s %g\n", metricBatcherQueueSecondsSum, m.batcherQueueWait.Seconds())
	emit(typeHeader(metricBatcherQueueSecondsCount, "counter"))
	emit("%s %d\n", metricBatcherQueueSecondsCount, m.batcherQueueCount)
	emit(typeHeader(metricResolveTotal, "counter"))
	emit("%s{mode=%q} %d\n", metricResolveTotal, sfcp.ResolveModeIncremental, m.resolves[sfcp.ResolveModeIncremental])
	emit("%s{mode=%q} %d\n", metricResolveTotal, sfcp.ResolveModeFullFallback, m.resolves[sfcp.ResolveModeFullFallback])
	emit(typeHeader(metricResolveDirtyFrac, "histogram"))
	cum := int64(0)
	for i, bound := range dirtyFracBounds {
		cum += m.dirtyBuckets[i]
		emit("%s_bucket{le=\"%g\"} %d\n", metricResolveDirtyFrac, bound, cum)
	}
	emit("%s_bucket{le=\"+Inf\"} %d\n", metricResolveDirtyFrac, m.dirtyFracCount)
	emit("%s_sum %g\n", metricResolveDirtyFrac, m.dirtyFracSum)
	emit("%s_count %d\n", metricResolveDirtyFrac, m.dirtyFracCount)
	return string(b)
}

// renderJobs writes the async job subsystem's counters from a live tally
// of the job store (the store owns its own counts; the metrics mutex has
// nothing to guard here).
func renderJobs(c jobs.Counts) string {
	var b []byte
	emit := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	emit(typeHeader(metricJobsSubmittedTotal, "counter"))
	emit("%s %d\n", metricJobsSubmittedTotal, c.Submitted)
	emit(typeHeader(metricJobsFinishedTotal, "counter"))
	emit("%s{state=%q} %d\n", metricJobsFinishedTotal, jobs.StateDone, c.Done)
	emit("%s{state=%q} %d\n", metricJobsFinishedTotal, jobs.StateFailed, c.Failed)
	emit("%s{state=%q} %d\n", metricJobsFinishedTotal, jobs.StateCancelled, c.Cancelled)
	emit(typeHeader(metricJobsEvictedTotal, "counter"))
	emit("%s %d\n", metricJobsEvictedTotal, c.Evicted)
	emit(typeHeader(metricJobsQueued, "gauge"))
	emit("%s %d\n", metricJobsQueued, c.Queued)
	emit(typeHeader(metricJobsRunning, "gauge"))
	emit("%s %d\n", metricJobsRunning, c.Running)
	return string(b)
}

// renderCalibration writes the planner-profile gauges from the profile
// the planner is consulting right now (process-wide state owned by the
// engine, so — like renderJobs — the metrics mutex has nothing to guard).
func renderCalibration(p *sfcp.CalibrationProfile) string {
	var b []byte
	emit := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	calibrated := 0
	if p != nil && p.Calibrated {
		calibrated = 1
	}
	emit(typeHeader(metricPlanCalibrated, "gauge"))
	emit("%s %d\n", metricPlanCalibrated, calibrated)
	emit(typeHeader(metricPlanProfile, "gauge"))
	if p != nil {
		emit("%s{field=%q} %d\n", metricPlanProfile, "min_parallel_n", p.MinParallelN)
		emit("%s{field=%q} %d\n", metricPlanProfile, "break_even_log_divisor", p.BreakEvenLogDivisor)
		emit("%s{field=%q} %d\n", metricPlanProfile, "worker_grain", p.WorkerGrain)
		emit("%s{field=%q} %d\n", metricPlanProfile, "max_useful_workers", p.MaxUsefulWorkers)
		// The effective incremental-vs-full crossover (package default
		// when the profile predates the field).
		emit("%s{field=%q} %g\n", metricPlanProfile, "incr_max_dirty_frac", p.IncrCrossover())
	}
	return string(b)
}

// renderStore writes the tiered-storage families from live state — the
// blob meter's counters, the job manager's spill/recovery tallies, the
// journal's corrupt-entry count, and the result cache's byte gauge.
// Like renderJobs, every source owns its own synchronization; the
// metrics mutex has nothing to guard. Always rendered (zeros without a
// store) so scrapers see a stable family set in every configuration.
func renderStore(blob store.BlobCounts, jc jobs.Counts, journalCorrupt, cacheBytes int64) string {
	var b []byte
	emit := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	emit(typeHeader(metricStoreBlobReadsTotal, "counter"))
	emit("%s %d\n", metricStoreBlobReadsTotal, blob.Reads)
	emit(typeHeader(metricStoreBlobWritesTotal, "counter"))
	emit("%s %d\n", metricStoreBlobWritesTotal, blob.Writes)
	emit(typeHeader(metricStoreBlobDeletesTotal, "counter"))
	emit("%s %d\n", metricStoreBlobDeletesTotal, blob.Deletes)
	emit(typeHeader(metricStoreBlobReadBytesTotal, "counter"))
	emit("%s %d\n", metricStoreBlobReadBytesTotal, blob.ReadBytes)
	emit(typeHeader(metricStoreBlobWriteBytesTotal, "counter"))
	emit("%s %d\n", metricStoreBlobWriteBytesTotal, blob.WriteBytes)
	emit(typeHeader(metricStoreSpilledTotal, "counter"))
	emit("%s %d\n", metricStoreSpilledTotal, jc.Spilled)
	emit(typeHeader(metricStoreRecoveredJobsTotal, "counter"))
	emit("%s{outcome=%q} %d\n", metricStoreRecoveredJobsTotal, "requeued", jc.Requeued)
	emit("%s{outcome=%q} %d\n", metricStoreRecoveredJobsTotal, "restored", jc.Restored)
	emit(typeHeader(metricStoreJournalCorruptTotal, "counter"))
	emit("%s %d\n", metricStoreJournalCorruptTotal, journalCorrupt)
	emit(typeHeader(metricCacheBytes, "gauge"))
	emit("%s %d\n", metricCacheBytes, cacheBytes)
	return string(b)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
