package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sfcp/internal/jobs"
)

// metrics aggregates the counters exposed at /metrics: per-route request
// and error totals, cache traffic, and per-algorithm solve statistics
// (count, cumulative latency, max latency). Everything is guarded by one
// mutex — the handlers touch it a handful of times per request, far from
// contention territory.
type metrics struct {
	mu        sync.Mutex
	requests  map[string]int64 // by route
	errors    map[string]int64 // by route
	cacheHits int64
	cacheMiss int64
	ingested  map[string]int64       // body bytes by format ("json", "binary")
	solves    map[string]*solveStats // by resolved algorithm name
	plans     map[string]int64       // planner resolutions by resolved algorithm
}

type solveStats struct {
	count   int64
	errors  int64
	total   time.Duration
	max     time.Duration
	classes int64 // cumulative, to expose mean classes per solve
}

func newMetrics() *metrics {
	return &metrics{
		requests: map[string]int64{},
		errors:   map[string]int64{},
		ingested: map[string]int64{},
		solves:   map[string]*solveStats{},
		plans:    map[string]int64{},
	}
}

// plan records one planner resolution: which concrete algorithm a request
// (auto or explicit) mapped to.
func (m *metrics) plan(algo string) {
	m.mu.Lock()
	m.plans[algo]++
	m.mu.Unlock()
}

func (m *metrics) ingest(format string, bytes int64) {
	m.mu.Lock()
	m.ingested[format] += bytes
	m.mu.Unlock()
}

func (m *metrics) request(route string) {
	m.mu.Lock()
	m.requests[route]++
	m.mu.Unlock()
}

func (m *metrics) error(route string) {
	m.mu.Lock()
	m.errors[route]++
	m.mu.Unlock()
}

func (m *metrics) cache(hit bool) {
	m.mu.Lock()
	if hit {
		m.cacheHits++
	} else {
		m.cacheMiss++
	}
	m.mu.Unlock()
}

func (m *metrics) solve(algo string, elapsed time.Duration, classes int, err error) {
	m.mu.Lock()
	s := m.solves[algo]
	if s == nil {
		s = &solveStats{}
		m.solves[algo] = s
	}
	if err != nil {
		s.errors++
	} else {
		s.count++
		s.total += elapsed
		if elapsed > s.max {
			s.max = elapsed
		}
		s.classes += int64(classes)
	}
	m.mu.Unlock()
}

// render writes the counters in Prometheus text exposition format.
func (m *metrics) render() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b []byte
	emit := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	emit("# TYPE sfcpd_requests_total counter\n")
	for _, route := range sortedKeys(m.requests) {
		emit("sfcpd_requests_total{route=%q} %d\n", route, m.requests[route])
	}
	emit("# TYPE sfcpd_errors_total counter\n")
	for _, route := range sortedKeys(m.errors) {
		emit("sfcpd_errors_total{route=%q} %d\n", route, m.errors[route])
	}
	emit("# TYPE sfcpd_cache_hits_total counter\nsfcpd_cache_hits_total %d\n", m.cacheHits)
	emit("# TYPE sfcpd_cache_misses_total counter\nsfcpd_cache_misses_total %d\n", m.cacheMiss)
	emit("# TYPE sfcpd_ingest_bytes_total counter\n")
	for _, format := range sortedKeys(m.ingested) {
		emit("sfcpd_ingest_bytes_total{format=%q} %d\n", format, m.ingested[format])
	}
	emit("# TYPE sfcpd_plan_algorithm_total counter\n")
	for _, algo := range sortedKeys(m.plans) {
		emit("sfcpd_plan_algorithm_total{algorithm=%q} %d\n", algo, m.plans[algo])
	}
	emit("# TYPE sfcpd_solves_total counter\n")
	for _, algo := range sortedKeys(m.solves) {
		s := m.solves[algo]
		emit("sfcpd_solves_total{algorithm=%q} %d\n", algo, s.count)
	}
	emit("# TYPE sfcpd_solve_errors_total counter\n")
	for _, algo := range sortedKeys(m.solves) {
		emit("sfcpd_solve_errors_total{algorithm=%q} %d\n", algo, m.solves[algo].errors)
	}
	emit("# TYPE sfcpd_solve_seconds_sum counter\n")
	for _, algo := range sortedKeys(m.solves) {
		emit("sfcpd_solve_seconds_sum{algorithm=%q} %g\n", algo, m.solves[algo].total.Seconds())
	}
	emit("# TYPE sfcpd_solve_seconds_max gauge\n")
	for _, algo := range sortedKeys(m.solves) {
		emit("sfcpd_solve_seconds_max{algorithm=%q} %g\n", algo, m.solves[algo].max.Seconds())
	}
	emit("# TYPE sfcpd_solve_classes_sum counter\n")
	for _, algo := range sortedKeys(m.solves) {
		emit("sfcpd_solve_classes_sum{algorithm=%q} %d\n", algo, m.solves[algo].classes)
	}
	return string(b)
}

// renderJobs writes the async job subsystem's counters from a live tally
// of the job store (the store owns its own counts; the metrics mutex has
// nothing to guard here).
func renderJobs(c jobs.Counts) string {
	var b []byte
	emit := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	emit("# TYPE sfcpd_jobs_submitted_total counter\nsfcpd_jobs_submitted_total %d\n", c.Submitted)
	emit("# TYPE sfcpd_jobs_finished_total counter\n")
	emit("sfcpd_jobs_finished_total{state=%q} %d\n", jobs.StateDone, c.Done)
	emit("sfcpd_jobs_finished_total{state=%q} %d\n", jobs.StateFailed, c.Failed)
	emit("sfcpd_jobs_finished_total{state=%q} %d\n", jobs.StateCancelled, c.Cancelled)
	emit("# TYPE sfcpd_jobs_evicted_total counter\nsfcpd_jobs_evicted_total %d\n", c.Evicted)
	emit("# TYPE sfcpd_jobs_queued gauge\nsfcpd_jobs_queued %d\n", c.Queued)
	emit("# TYPE sfcpd_jobs_running gauge\nsfcpd_jobs_running %d\n", c.Running)
	return string(b)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
