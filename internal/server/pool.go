package server

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"sfcp"
)

// errShutdown is returned by submit once the pool is closed.
var errShutdown = errors.New("server: pool shut down")

// pool schedules solve jobs onto bounded per-algorithm worker sets: each
// algorithm gets its own queue and its own fixed crew of workers, so a
// burst of slow simulator jobs (parallel-pram on a huge instance) cannot
// starve the cheap sequential queues. Queues are bounded; when one is full,
// submit blocks — callers pass a request context to bound the wait.
type pool struct {
	queues  map[sfcp.Algorithm]chan *poolTask
	done    chan struct{}
	closing sync.Once
	wg      sync.WaitGroup
}

type poolTask struct {
	ctx  context.Context
	run  func(ctx context.Context) (sfcp.Result, error)
	resC chan poolResult // buffered: workers never block on delivery
}

type poolResult struct {
	res sfcp.Result
	err error
}

// newPool starts workersPerAlgo workers for every algorithm, each draining
// a queue of depth queueDepth.
func newPool(workersPerAlgo, queueDepth int) *pool {
	p := &pool{
		queues: map[sfcp.Algorithm]chan *poolTask{},
		done:   make(chan struct{}),
	}
	for _, algo := range sfcp.Algorithms() {
		// Submissions arrive planner-resolved, so "auto" can never be
		// queued — building it a crew would just park idle goroutines.
		if algo == sfcp.AlgorithmAuto {
			continue
		}
		q := make(chan *poolTask, queueDepth)
		p.queues[algo] = q
		for w := 0; w < workersPerAlgo; w++ {
			p.wg.Add(1)
			go p.worker(q)
		}
	}
	return p
}

func (p *pool) worker(q chan *poolTask) {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case t := <-q:
			// Re-check done with priority: the outer select is unbiased, so
			// a closing pool could keep randomly draining and *executing*
			// queued tasks — work close documents as dropped, whose
			// submitters already got errShutdown. Settle the popped task's
			// channel and loop (draining the queue without running it).
			select {
			case <-p.done:
				t.resC <- poolResult{err: errShutdown}
				continue
			default:
			}
			// Don't burn a worker on a task whose submitter already gave
			// up while it sat in the queue (client timeout + retry storms
			// would otherwise pay for every abandoned predecessor).
			if err := t.ctx.Err(); err != nil {
				t.resC <- poolResult{err: err}
				continue
			}
			// The submitter's context rides into the solve so an abandoned
			// or cancelled request stops burning the worker at the solver's
			// next cooperative check, not minutes later.
			res, err := t.run(t.ctx)
			t.resC <- poolResult{res: res, err: err}
		}
	}
}

// submit enqueues run on the algorithm's queue and waits for its result.
// It respects ctx both while queued and while waiting: an abandoned waiter
// does not block the worker (the result channel is buffered), and the
// worker hands ctx to run for cooperative mid-solve cancellation.
func (p *pool) submit(ctx context.Context, algo sfcp.Algorithm, run func(ctx context.Context) (sfcp.Result, error)) (sfcp.Result, error) {
	q, ok := p.queues[algo]
	if !ok {
		return sfcp.Result{}, fmt.Errorf("server: no queue for algorithm %v", algo)
	}
	t := &poolTask{ctx: ctx, run: run, resC: make(chan poolResult, 1)}
	select {
	case q <- t:
	case <-ctx.Done():
		return sfcp.Result{}, ctx.Err()
	case <-p.done:
		return sfcp.Result{}, errShutdown
	}
	select {
	case r := <-t.resC:
		return r.res, r.err
	case <-ctx.Done():
		return sfcp.Result{}, ctx.Err()
	case <-p.done:
		return sfcp.Result{}, errShutdown
	}
}

// close stops the workers; queued-but-unstarted tasks are dropped (their
// submitters get errShutdown).
func (p *pool) close() {
	p.closing.Do(func() { close(p.done) })
	p.wg.Wait()
}
