package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sfcp"
	"sfcp/internal/workload"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestSolveEndpointTable(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxN: 64, MaxBatch: 4})
	cases := []struct {
		name     string
		body     string
		wantCode int
		wantSub  string // substring of the response body
	}{
		{"good auto", `{"f":[1,0],"b":[0,1]}`, 200, `"num_classes":2`},
		{"good linear", `{"algorithm":"linear","f":[0,0,1],"b":[0,0,0]}`, 200, `"labels"`},
		{"good pram with stats", `{"algorithm":"parallel-pram","f":[1,2,0],"b":[0,0,0],"seed":3}`, 200, `"stats"`},
		{"malformed json", `{"f":[1,0`, 400, "invalid JSON"},
		{"unknown field", `{"f":[0],"b":[0],"bogus":1}`, 400, "invalid JSON"},
		{"trailing data", `{"f":[0],"b":[0]} {}`, 400, "trailing data"},
		{"unknown algorithm", `{"algorithm":"quantum","f":[0],"b":[0]}`, 400, "unknown algorithm"},
		{"f out of range", `{"f":[5],"b":[0]}`, 400, "out of range"},
		{"length mismatch", `{"f":[0,1],"b":[0]}`, 400, "|F| = 2 but |B| = 1"},
		{"oversized instance", fmt.Sprintf(`{"f":[%s0],"b":[%s0]}`,
			strings.Repeat("0,", 64), strings.Repeat("0,", 64)), 400, "exceeds limit 64"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts.URL+"/solve", tc.body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantCode, data)
			}
			if !bytes.Contains(data, []byte(tc.wantSub)) {
				t.Errorf("body %s missing %q", data, tc.wantSub)
			}
		})
	}

	resp, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: status %d, want 405", resp.StatusCode)
	}
}

func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	body := fmt.Sprintf(`{"f":[%s0],"b":[%s0]}`,
		strings.Repeat("0,", 50), strings.Repeat("0,", 50))
	resp, data := post(t, ts.URL+"/solve", body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (body %s)", resp.StatusCode, data)
	}
	// Within the limit still works.
	resp, _ = post(t, ts.URL+"/solve", `{"f":[0],"b":[0]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("small body rejected: %d", resp.StatusCode)
	}
}

func TestBatchEndpointTable(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 3})
	cases := []struct {
		name     string
		body     string
		wantCode int
		wantSub  string
	}{
		{"good mixed", `{"algorithm":"linear","instances":[{"f":[0],"b":[0]},{"algorithm":"moore","f":[1,0],"b":[0,0]}]}`,
			200, `"errors":0`},
		{"empty batch", `{"instances":[]}`, 400, "empty batch"},
		{"oversized batch", `{"instances":[{"f":[0],"b":[0]},{"f":[0],"b":[0]},{"f":[0],"b":[0]},{"f":[0],"b":[0]}]}`,
			400, "exceeds limit 3"},
		{"partial failure", `{"instances":[{"f":[0],"b":[0]},{"algorithm":"quantum","f":[0],"b":[0]}]}`,
			200, `"errors":1`},
		{"malformed json", `[1,2]`, 400, "invalid JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts.URL+"/solve/batch", tc.body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantCode, data)
			}
			if !bytes.Contains(data, []byte(tc.wantSub)) {
				t.Errorf("body %s missing %q", data, tc.wantSub)
			}
		})
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	data, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(data, []byte(`"ok"`)) {
		t.Errorf("body %s", data)
	}
}

func fetchMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestCacheHitPathAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"algorithm":"hopcroft","f":[1,2,0],"b":[0,1,0]}`

	var first, second SolveResponse
	_, data := post(t, ts.URL+"/solve", body)
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	_, data = post(t, ts.URL+"/solve", body)
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first solve reported cached")
	}
	if !second.Cached {
		t.Error("second identical solve not served from cache")
	}
	if !sfcp.SamePartition(first.Labels, second.Labels) {
		t.Error("cached labels differ")
	}
	// A different seed must not hit the (algorithm, seed, digest) key.
	_, data = post(t, ts.URL+"/solve", `{"algorithm":"hopcroft","f":[1,2,0],"b":[0,1,0],"seed":9}`)
	var third SolveResponse
	if err := json.Unmarshal(data, &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Error("different seed served from cache")
	}

	m := fetchMetrics(t, ts)
	for _, want := range []string{
		"sfcpd_cache_hits_total 1",
		"sfcpd_cache_misses_total 2",
		`sfcpd_requests_total{route="solve"} 3`,
		`sfcpd_solves_total{algorithm="hopcroft"} 2`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
}

func TestCacheEviction(t *testing.T) {
	c := newResultCache(2, 0)
	c.Put("a", sfcp.Result{NumClasses: 1})
	c.Put("b", sfcp.Result{NumClasses: 2})
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", sfcp.Result{NumClasses: 3})
	if _, ok := c.Get("b"); ok {
		t.Error("b not evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite refresh")
	}
	if c.Len() != 2 {
		t.Errorf("len %d", c.Len())
	}
	disabled := newResultCache(-1, 0)
	disabled.Put("x", sfcp.Result{})
	if _, ok := disabled.Get("x"); ok {
		t.Error("disabled cache stored a result")
	}
}

// TestMixedWorkloadBatch is the acceptance smoke test: a /solve/batch load
// spanning all 8 algorithms over internal/workload families, with every
// label vector checked against AlgorithmLinear, and a repeated instance
// observable as a cache hit in /metrics.
func TestMixedWorkloadBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{WorkersPerAlgorithm: 2, Workers: 2})

	families := []workload.Instance{
		workload.RandomFunction(11, 120, 3),
		workload.RandomPermutation(12, 90, 2),
		workload.CycleFamily(13, 3, 20, 4),
		workload.DistinctCycles(14, 4, 10, 2),
		workload.Broom(15, 100, 10, 3),
		workload.Star(16, 60, 2),
		workload.UnaryDFA(17, 80, 300),
	}
	var req BatchRequest
	for i, algo := range sfcp.Algorithms() {
		ins := families[i%len(families)]
		req.Instances = append(req.Instances, SolveRequest{
			Algorithm: algo.String(), F: ins.F, B: ins.B,
		})
	}
	// Repeat the first member verbatim: it must come back as a cache hit.
	req.Instances = append(req.Instances, req.Instances[0])

	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := post(t, ts.URL+"/solve/batch", string(body))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if br.Errors != 0 {
		t.Fatalf("batch errors: %s", data)
	}
	if len(br.Results) != len(req.Instances) {
		t.Fatalf("got %d results, want %d", len(br.Results), len(req.Instances))
	}
	for i, r := range br.Results {
		want, err := sfcp.SolveWith(
			sfcp.Instance{F: req.Instances[i].F, B: req.Instances[i].B},
			sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
		if err != nil {
			t.Fatal(err)
		}
		if !sfcp.SamePartition(r.Labels, want.Labels) {
			t.Errorf("member %d (%s): labels disagree with linear reference", i, r.Algorithm)
		}
	}
	// The duplicated member hit the cache — either within the batch (it
	// raced its twin and lost, then found the stored result) or not; re-ask
	// it alone to force a deterministic hit, then check /metrics.
	_, data = post(t, ts.URL+"/solve", fmt.Sprintf(`{"algorithm":%q,"f":%s,"b":%s}`,
		req.Instances[0].Algorithm, toJSON(t, req.Instances[0].F), toJSON(t, req.Instances[0].B)))
	var single SolveResponse
	if err := json.Unmarshal(data, &single); err != nil {
		t.Fatal(err)
	}
	if !single.Cached {
		t.Error("repeated instance not served from cache")
	}
	m := fetchMetrics(t, ts)
	if strings.Contains(m, "sfcpd_cache_hits_total 0\n") {
		t.Errorf("no cache hit recorded in metrics:\n%s", m)
	}
}

func TestIsBinary(t *testing.T) {
	cases := []struct {
		contentType string
		want        bool
	}{
		{"application/x-sfcp", true},
		{"application/x-sfcp; charset=binary", true},
		{"application/json", false},
		{"", false},
		{"garbage;;;", false},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodPost, "/solve", nil)
		if tc.contentType != "" {
			r.Header.Set("Content-Type", tc.contentType)
		}
		if got := isBinary(r); got != tc.want {
			t.Errorf("isBinary(%q) = %v, want %v", tc.contentType, got, tc.want)
		}
	}
}

func TestBinaryParams(t *testing.T) {
	r := httptest.NewRequest(http.MethodPost, "/solve?algorithm=hopcroft&seed=42", nil)
	algo, seed, err := binaryParams(r)
	if err != nil || algo != sfcp.AlgorithmHopcroft || seed == nil || *seed != 42 {
		t.Errorf("got algo=%v seed=%v err=%v", algo, seed, err)
	}
	r = httptest.NewRequest(http.MethodPost, "/solve", nil)
	algo, seed, err = binaryParams(r)
	if err != nil || algo != sfcp.AlgorithmAuto || seed != nil {
		t.Errorf("defaults: got algo=%v seed=%v err=%v", algo, seed, err)
	}
	for _, bad := range []string{"/solve?algorithm=quantum", "/solve?seed=-1", "/solve?seed=abc"} {
		if _, _, err := binaryParams(httptest.NewRequest(http.MethodPost, bad, nil)); err == nil {
			t.Errorf("%s accepted", bad)
		}
	}
}

func toJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestResolvedAlgorithmSharedCache: an "auto" request and an explicit
// request for the planner's choice are one cache entry — keyed by the
// resolved algorithm — and both report what actually ran.
func TestResolvedAlgorithmSharedCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wl := workload.RandomFunction(9, 100, 3)
	body := fmt.Sprintf(`{"f":%s,"b":%s}`, toJSON(t, wl.F), toJSON(t, wl.B))

	var auto SolveResponse
	_, data := post(t, ts.URL+"/solve", body)
	if err := json.Unmarshal(data, &auto); err != nil {
		t.Fatal(err)
	}
	if auto.Error != "" || auto.Cached {
		t.Fatalf("auto solve: %+v", auto)
	}
	if auto.Algorithm != "auto" || auto.ResolvedAlgorithm == "" || auto.ResolvedAlgorithm == "auto" {
		t.Fatalf("auto request did not report a concrete resolved algorithm: %+v", auto)
	}
	if auto.PlanReason == "" {
		t.Errorf("auto response missing plan_reason: %+v", auto)
	}
	// A 100-element instance is far below the crossover on every host, so
	// the resolution is deterministic.
	if auto.ResolvedAlgorithm != "linear" {
		t.Fatalf("small-instance auto resolved to %q, want linear", auto.ResolvedAlgorithm)
	}

	// The explicit twin of the resolved algorithm must hit the same entry.
	explicit := fmt.Sprintf(`{"algorithm":%q,"f":%s,"b":%s}`, auto.ResolvedAlgorithm, toJSON(t, wl.F), toJSON(t, wl.B))
	var hit SolveResponse
	_, data = post(t, ts.URL+"/solve", explicit)
	if err := json.Unmarshal(data, &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Errorf("explicit %s request after auto was not a cache hit: %+v", auto.ResolvedAlgorithm, hit)
	}
	if hit.ResolvedAlgorithm != auto.ResolvedAlgorithm {
		t.Errorf("explicit request resolved to %q, auto resolved to %q", hit.ResolvedAlgorithm, auto.ResolvedAlgorithm)
	}
	if !sfcp.SamePartition(hit.Labels, auto.Labels) {
		t.Error("cached labels differ between auto and explicit requests")
	}

	m := fetchMetrics(t, ts)
	for _, want := range []string{
		`sfcpd_plan_algorithm_total{algorithm="linear"} 2`,
		"sfcpd_cache_hits_total 1",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
}
