package server

import (
	"context"
	"log"
	"net/http"
	"time"

	"sfcp"
	"sfcp/internal/calib"
)

// initCalibration is New's calibration boot step: load the configured
// profile file (leniently — a missing or corrupt file logs a warning and
// the defaults serve), then optionally re-fit on this host before the
// server takes traffic.
func (s *Server) initCalibration() {
	if s.cfg.CalibrationFile != "" {
		sfcp.SetCalibrationProfile(calib.LoadLenient(s.cfg.CalibrationFile, log.Printf))
	}
	if !s.cfg.CalibrateOnStart {
		return
	}
	//sfcpvet:ignore ctxpath -- startup fit before serving: no request context exists yet, and the budget bounds it
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.CalibrateBudget+2*time.Second)
	defer cancel()
	rep, err := calib.Calibrate(ctx, calib.Options{Budget: s.cfg.CalibrateBudget})
	if err != nil {
		log.Printf("calibrate-on-start failed (%v); serving with the previously active profile", err)
		return
	}
	sfcp.SetCalibrationProfile(&rep.Profile)
	if s.cfg.CalibrationFile != "" {
		if err := rep.Profile.Save(s.cfg.CalibrationFile); err != nil {
			log.Printf("persisting calibration profile: %v", err)
		}
	}
}

// CalibrateResponse is the JSON reply of POST /calibrate: the fitted
// profile now steering the planner, the raw measurements behind it,
// whether the budget cut the fit short, and where it was persisted.
type CalibrateResponse struct {
	Profile   sfcp.CalibrationProfile `json:"profile"`
	Crossover []calib.CrossoverPoint  `json:"crossover"`
	Workers   []calib.WorkerPoint     `json:"worker_scaling"`
	Truncated bool                    `json:"truncated"`
	ElapsedMS float64                 `json:"elapsed_ms"`
	// Persisted is the calibration file the profile was atomically
	// written to (empty when the server has none configured).
	Persisted string `json:"persisted,omitempty"`
	// PersistError reports a failed write of an otherwise successful fit:
	// the profile is active in this process but will not survive a
	// restart.
	PersistError string `json:"persist_error,omitempty"`
}

// handleCalibrate re-runs the calibration experiment on this host,
// installs the fitted profile process-wide, and persists it to the
// configured calibration file. The fit deliberately saturates the solver
// cores, so concurrent fits are refused (409) rather than queued, and
// the wall clock is bounded by the server's budget (lowerable per
// request with ?budget=).
func (s *Server) handleCalibrate(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("calibrate")
	if !s.calibrating.CompareAndSwap(false, true) {
		s.fail(w, "calibrate", http.StatusConflict, "calibration already in progress")
		return
	}
	defer s.calibrating.Store(false)

	budget := s.cfg.CalibrateBudget
	if raw := r.URL.Query().Get("budget"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			s.fail(w, "calibrate", http.StatusBadRequest, "invalid budget duration")
			return
		}
		if d < budget {
			budget = d
		}
	}
	// The fit honors the budget internally; the context deadline (with
	// slack for the final measurement to return) backstops it so a wedged
	// solver cannot hold the handler past its promise.
	ctx, cancel := context.WithTimeout(r.Context(), budget+2*time.Second)
	defer cancel()
	rep, err := calib.Calibrate(ctx, calib.Options{Budget: budget})
	if err != nil {
		s.fail(w, "calibrate", http.StatusServiceUnavailable, err.Error())
		return
	}
	sfcp.SetCalibrationProfile(&rep.Profile)

	resp := CalibrateResponse{
		Profile:   rep.Profile,
		Crossover: rep.Crossover,
		Workers:   rep.Workers,
		Truncated: rep.Truncated,
		ElapsedMS: rep.ElapsedMS,
	}
	if s.cfg.CalibrationFile != "" {
		if err := rep.Profile.Save(s.cfg.CalibrationFile); err != nil {
			resp.PersistError = err.Error()
		} else {
			resp.Persisted = s.cfg.CalibrationFile
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
