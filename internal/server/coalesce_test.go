package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"sfcp"
	"sfcp/internal/jobs"
	"sfcp/internal/workload"
)

// TestPlanErrorMetricLabels pins the corrected plan-error accounting: a
// request that fails validation/planning counts under
// sfcpd_plan_errors_total keyed by what was asked for, and never
// fabricates solve-family samples for an algorithm ("auto") that nothing
// ever resolves to — on the pool path (the original server.go bug) and
// the coalescing path alike.
func TestPlanErrorMetricLabels(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"pool path", Config{BatchMaxWait: -1}}, // coalescing off: the historical path
		{"coalescing path", Config{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t, tc.cfg)
			resp, data := post(t, ts.URL+"/solve", `{"f":[5],"b":[0]}`) // F out of range
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, data)
			}
			m := fetchMetrics(t, ts)
			if want := `sfcpd_plan_errors_total{algorithm="auto"} 1`; !strings.Contains(m, want) {
				t.Errorf("metrics missing %q:\n%s", want, m)
			}
			for _, stray := range []string{
				`sfcpd_solves_total{algorithm="auto"}`,
				`sfcpd_solve_errors_total{algorithm="auto"}`,
			} {
				if strings.Contains(m, stray) {
					t.Errorf("plan error leaked into solve families: found %q\n%s", stray, m)
				}
			}
		})
	}
}

// TestCacheKeyAllocs pins the hot-path cache key builder: identical bytes
// to the fmt.Sprintf it replaced, at one allocation (the string itself).
func TestCacheKeyAllocs(t *testing.T) {
	digest := sfcp.Instance{F: []int{1, 0}, B: []int{0, 1}}.Digest()
	for _, seed := range []uint64{0, 11, ^uint64(0)} {
		got := cacheKey(sfcp.AlgorithmLinear, seed, digest)
		want := fmt.Sprintf("%s/%d/%s", sfcp.AlgorithmLinear, seed, digest)
		if got != want {
			t.Fatalf("cacheKey(%d) = %q, want %q", seed, got, want)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = cacheKey(sfcp.AlgorithmLinear, 1234567890, digest)
	})
	if allocs > 1 {
		t.Errorf("cacheKey allocates %.0f times per call, want <= 1", allocs)
	}
}

// TestCoalescedSolves drives concurrent small auto solves through the
// front door and checks the responses' batch metadata, the latency
// split, and the sfcpd_batcher_* families.
func TestCoalescedSolves(t *testing.T) {
	const reqs = 16
	_, ts := newTestServer(t, Config{})

	bodies := make([]string, reqs)
	wants := make([][]int, reqs)
	for i := range bodies {
		wl := workload.RandomFunction(int64(100+i), 64, 3)
		bodies[i] = fmt.Sprintf(`{"f":%s,"b":%s}`, toJSON(t, wl.F), toJSON(t, wl.B))
		labels, err := sfcp.Solve(wl.F, wl.B)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = labels
	}

	responses := make([]SolveResponse, reqs)
	var wg sync.WaitGroup
	for i := 0; i < reqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := post(t, ts.URL+"/solve", bodies[i])
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d (body %s)", i, resp.StatusCode, data)
				return
			}
			if err := json.Unmarshal(data, &responses[i]); err != nil {
				t.Errorf("request %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	for i, r := range responses {
		if r.Error != "" || r.Cached {
			t.Fatalf("request %d: %+v", i, r)
		}
		if !sfcp.SamePartition(r.Labels, wants[i]) {
			t.Errorf("request %d: coalesced labels disagree with direct solve", i)
		}
		if r.ResolvedAlgorithm != "linear" {
			t.Errorf("request %d resolved to %q, want linear", i, r.ResolvedAlgorithm)
		}
		if r.Coalesced < 1 {
			t.Errorf("request %d: coalesced = %d, want >= 1", i, r.Coalesced)
		}
		if r.FlushReason != "size" && r.FlushReason != "deadline" && r.FlushReason != "drain" {
			t.Errorf("request %d: flush_reason %q", i, r.FlushReason)
		}
		if !strings.Contains(r.PlanReason, "coalesced batch") {
			t.Errorf("request %d: plan_reason %q does not describe the batch plan", i, r.PlanReason)
		}
		if r.QueueMS < 0 || r.SolveMS < 0 {
			t.Errorf("request %d: negative latency split queue=%g solve=%g", i, r.QueueMS, r.SolveMS)
		}
	}

	// Every request went through the coalescer, and every flush was
	// observed before its responses were delivered — so the totals are
	// exact by the time the responses are all in.
	m := fetchMetrics(t, ts)
	for _, want := range []string{
		fmt.Sprintf("sfcpd_batcher_coalesced_total %d", reqs),
		fmt.Sprintf("sfcpd_batcher_queue_seconds_count %d", reqs),
		fmt.Sprintf(`sfcpd_plan_algorithm_total{algorithm="linear"} %d`, reqs),
		fmt.Sprintf(`sfcpd_solves_total{algorithm="linear"} %d`, reqs),
		`sfcpd_batcher_flushes_total{reason=`,
		"sfcpd_batcher_queue_seconds_sum",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}

	// A repeat of the first request is answered from the shared cache —
	// the coalesced result warmed the same keyspace the pool path uses.
	var again SolveResponse
	_, data := post(t, ts.URL+"/solve", bodies[0])
	if err := json.Unmarshal(data, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Coalesced != 0 {
		t.Errorf("repeat request: cached=%v coalesced=%d, want a cache hit that skipped the queue",
			again.Cached, again.Coalesced)
	}
}

// TestCoalescingDisabled pins the off switch: BatchMaxWait < 0 keeps
// every request on the per-request pool path.
func TestCoalescingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{BatchMaxWait: -1})
	var r SolveResponse
	_, data := post(t, ts.URL+"/solve", `{"f":[1,0],"b":[0,1]}`)
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r.Error != "" || r.Coalesced != 0 || r.FlushReason != "" {
		t.Fatalf("coalescing disabled, yet response carries batch metadata: %+v", r)
	}
	m := fetchMetrics(t, ts)
	if !strings.Contains(m, "sfcpd_batcher_coalesced_total 0") {
		t.Errorf("batcher counted traffic with coalescing disabled:\n%s", m)
	}
}

// TestJobPlanWorkersRoundTrip pins the snapshot gap fix: async snapshots
// and results report plan_workers like their synchronous twins.
func TestJobPlanWorkersRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wl := workload.RandomFunction(29, 80, 3)
	body := fmt.Sprintf(`{"f":%s,"b":%s}`, toJSON(t, wl.F), toJSON(t, wl.B))

	var sync SolveResponse
	_, data := post(t, ts.URL+"/solve", body)
	if err := json.Unmarshal(data, &sync); err != nil {
		t.Fatal(err)
	}
	if sync.PlanWorkers < 1 {
		t.Fatalf("synchronous response has no plan_workers: %+v", sync)
	}

	snap, resp, data := submitJSONJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	done := pollJob(t, ts, snap.ID, jobs.StateDone)
	if done.PlanWorkers != sync.PlanWorkers {
		t.Errorf("done snapshot plan_workers = %d, synchronous response says %d", done.PlanWorkers, sync.PlanWorkers)
	}
	respRes, err := http.Get(ts.URL + "/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer respRes.Body.Close()
	var res SolveResponse
	if err := json.NewDecoder(respRes.Body).Decode(&res); err != nil || respRes.StatusCode != 200 {
		t.Fatalf("result: code %d err %v", respRes.StatusCode, err)
	}
	if res.PlanWorkers != sync.PlanWorkers {
		t.Errorf("job result plan_workers = %d, synchronous response says %d", res.PlanWorkers, sync.PlanWorkers)
	}
	// The raw JSON must carry the field too (an int zero would be elided,
	// masking a regression behind omitempty).
	raw, err := json.Marshal(done)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"plan_workers":`) {
		t.Errorf("snapshot JSON missing plan_workers: %s", raw)
	}
}
