package server

import (
	"container/list"
	"sync"

	"sfcp"
)

// resultCache is a bounded LRU over solve results keyed by
// (algorithm, seed, instance digest). Results are immutable once stored —
// handlers must not mutate the Labels slice they get back.
//
// Two caps, both optional: an entry count (the seed's original bound) and
// a resident-byte budget. Either cap alone can be the binding one — a
// thousand tiny results trip the count, a handful of million-element
// label slices trip the bytes — and eviction runs until both hold.
type resultCache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64 // 0 = unbounded (the seed behavior)
	bytes    int64 // estimated resident bytes of all entries
	order    *list.List // front = most recent; values are *cacheEntry
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key  string
	res  sfcp.Result
	size int64
}

// cacheEntryOverhead approximates an entry's fixed footprint beyond its
// labels: the key string, the list element, the map bucket share, and the
// Result header. The label slice dominates for anything non-trivial, so
// precision here only matters for the degenerate all-tiny-entries case.
const cacheEntryOverhead = 256

// entrySize estimates one result's resident bytes.
func entrySize(key string, res sfcp.Result) int64 {
	return int64(len(res.Labels))*8 + int64(len(key)) + cacheEntryOverhead
}

// newResultCache returns a cache holding up to capacity results;
// capacity <= 0 disables caching (Get always misses, Put is a no-op).
// maxBytes additionally bounds the estimated resident bytes (0 = no byte
// bound); a single result larger than maxBytes is never admitted.
func newResultCache(capacity int, maxBytes int64) *resultCache {
	return &resultCache{
		cap:      capacity,
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  map[string]*list.Element{},
	}
}

// enabled reports whether results are being stored at all — callers use
// it to skip digest and key construction when caching is off.
func (c *resultCache) enabled() bool { return c.cap > 0 }

func (c *resultCache) Get(key string) (sfcp.Result, bool) {
	if c.cap <= 0 {
		return sfcp.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return sfcp.Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) Put(key string, res sfcp.Result) {
	if c.cap <= 0 {
		return
	}
	size := entrySize(key, res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && size > c.maxBytes {
		// Bigger than the whole budget: admitting it would evict everything
		// and still bust the cap. Drop any stale entry under the key too —
		// keeping an older result for a key we just declined would serve
		// stale bytes forever.
		if el, ok := c.entries[key]; ok {
			c.removeLocked(el)
		}
		return
	}
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += size - ent.size
		ent.res, ent.size = res, size
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res, size: size})
		c.bytes += size
	}
	for c.order.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.removeLocked(oldest)
	}
}

func (c *resultCache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.order.Remove(el)
	delete(c.entries, ent.key)
	c.bytes -= ent.size
}

func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes reports the estimated resident bytes of all entries — the
// sfcpd_cache_bytes gauge.
func (c *resultCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
