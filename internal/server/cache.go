package server

import (
	"container/list"
	"sync"

	"sfcp"
)

// resultCache is a bounded LRU over solve results keyed by
// (algorithm, seed, instance digest). Results are immutable once stored —
// handlers must not mutate the Labels slice they get back.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res sfcp.Result
}

// newResultCache returns a cache holding up to capacity results;
// capacity <= 0 disables caching (Get always misses, Put is a no-op).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: map[string]*list.Element{},
	}
}

// enabled reports whether results are being stored at all — callers use
// it to skip digest and key construction when caching is off.
func (c *resultCache) enabled() bool { return c.cap > 0 }

func (c *resultCache) Get(key string) (sfcp.Result, bool) {
	if c.cap <= 0 {
		return sfcp.Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return sfcp.Result{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) Put(key string, res sfcp.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
