package server

import (
	"io"

	"sfcp"
	"sfcp/internal/store"
)

// The durable result tier. When sfcpd runs with a blob store, every
// persisted solve — spilled synchronous results and all async job
// results — lives under a content-addressed key shared with the job
// manager (store.ResultKey over the resolved algorithm, effective seed
// and instance digest). The solve path consults it after a RAM-cache
// miss and before solving, so a restart serves previously computed
// answers from disk instead of recomputing them, and the two tiers fill
// each other: a job's persisted result answers a synchronous request
// and vice versa.

// tierGet reads one result back from the blob tier. A miss, an I/O
// error, or a corrupt blob (the codec's XXH64 trailer catches it) all
// come back (zero, false) — the caller just solves; corruption is
// logged and the bad blob dropped so the fresh solve re-persists it.
func (s *Server) tierGet(algo sfcp.Algorithm, seed uint64, digest string) (sfcp.Result, bool) {
	if s.blobs == nil || digest == "" {
		return sfcp.Result{}, false
	}
	key := store.ResultKey(algo.String(), seed, digest)
	rc, err := s.blobs.Get(key)
	if err != nil {
		return sfcp.Result{}, false
	}
	labels, err := sfcp.DecodeLabelsBinary(rc)
	rc.Close()
	if err != nil {
		s.logf("server: result blob %s unreadable: %v (dropping it and re-solving)", key, err)
		_ = s.blobs.Delete(key)
		return sfcp.Result{}, false
	}
	return sfcp.Result{Labels: labels, NumClasses: sfcp.NumClasses(labels)}, true
}

// tierPut persists one solved result into the blob tier, streamed
// through the wire codec so the disk bytes are the wire format (and
// carry its integrity trailer). Content addressing makes the write
// idempotent: if the key already exists — this tier and the job
// manager race benignly here — there is nothing to do. Failures are
// logged and swallowed; the tier is an accelerator, never a
// correctness dependency for a solve that already succeeded.
func (s *Server) tierPut(algo sfcp.Algorithm, seed uint64, digest string, labels []int) {
	if s.blobs == nil || digest == "" {
		return
	}
	key := store.ResultKey(algo.String(), seed, digest)
	if ok, err := s.blobs.Has(key); err == nil && ok {
		return
	}
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(sfcp.EncodeLabelsBinary(pw, labels)) }()
	if _, err := s.blobs.Put(key, pr); err != nil {
		pr.CloseWithError(err)
		s.logf("server: persisting result blob %s: %v", key, err)
	}
}

// blobCounts snapshots the metered blob-tier traffic for /metrics
// (zeros when no tier is configured).
func (s *Server) blobCounts() store.BlobCounts {
	if s.blobs == nil {
		return store.BlobCounts{}
	}
	return s.blobs.Counts()
}

// journalCorrupt reports how many unreadable journal entries recovery
// skipped (zero without a journal, and in the happy path with one).
func (s *Server) journalCorrupt() int64 {
	if s.cfg.JobStore == nil {
		return 0
	}
	return s.cfg.JobStore.CorruptSkipped()
}
