package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sfcp"
	"sfcp/internal/calib"
)

// resetProfile restores the built-in default profile after a test that
// installs a fitted one; the active profile is process-wide state.
func resetProfile(t *testing.T) {
	t.Helper()
	t.Cleanup(func() { sfcp.SetCalibrationProfile(nil) })
}

// TestCalibrateEndpoint drives a real (tiny-budget) fit through POST
// /calibrate: the response carries a calibrated profile and raw
// measurements, the profile becomes the active one, it is persisted
// atomically to the configured file, and /metrics flips
// sfcpd_plan_calibrated to 1.
func TestCalibrateEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real calibration fit")
	}
	resetProfile(t)
	path := filepath.Join(t.TempDir(), "profile.json")
	_, ts := newTestServer(t, Config{CalibrationFile: path, CalibrateBudget: 300 * time.Millisecond})

	resp, data := post(t, ts.URL+"/calibrate", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /calibrate = %d, want 200: %s", resp.StatusCode, data)
	}
	var cr CalibrateResponse
	if err := json.Unmarshal(data, &cr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if !cr.Profile.Calibrated {
		t.Errorf("response profile not marked calibrated: %+v", cr.Profile)
	}
	if len(cr.Crossover) == 0 {
		t.Errorf("response carries no crossover measurements")
	}
	if cr.Persisted != path {
		t.Errorf("Persisted = %q, want %q (persist_error=%q)", cr.Persisted, path, cr.PersistError)
	}
	if got := sfcp.ActiveCalibrationProfile().Source(); got != "calibrated" {
		t.Errorf("active profile source = %q after fit, want calibrated", got)
	}
	onDisk, err := calib.Load(path)
	if err != nil {
		t.Fatalf("loading persisted profile: %v", err)
	}
	if onDisk.MinParallelN != cr.Profile.MinParallelN {
		t.Errorf("persisted MinParallelN = %d, response says %d", onDisk.MinParallelN, cr.Profile.MinParallelN)
	}
	if m := fetchMetrics(t, ts); !strings.Contains(m, "sfcpd_plan_calibrated 1") {
		t.Errorf("/metrics after fit missing \"sfcpd_plan_calibrated 1\":\n%s", m)
	}
}

// TestCalibrateBadRequests pins the request-validation surface: GET is
// not routed, malformed and non-positive budgets are 400s, and a fit
// already in flight is refused with 409 rather than queued.
func TestCalibrateBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{CalibrateBudget: 200 * time.Millisecond})

	resp, err := http.Get(ts.URL + "/calibrate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /calibrate = %d, want 405", resp.StatusCode)
	}

	for _, q := range []string{"?budget=nonsense", "?budget=-1s", "?budget=0s"} {
		resp, data := post(t, ts.URL+"/calibrate"+q, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST /calibrate%s = %d, want 400: %s", q, resp.StatusCode, data)
		}
	}

	// Simulate an in-flight fit; the handler must refuse, not block.
	s.calibrating.Store(true)
	defer s.calibrating.Store(false)
	resp2, data := post(t, ts.URL+"/calibrate", "")
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("concurrent POST /calibrate = %d, want 409: %s", resp2.StatusCode, data)
	}
}

// TestCalibrationFileBoot covers sfcpd's -calibration-file startup path
// end to end: a valid fitted profile on disk becomes the active profile
// and the /metrics gauge reports calibrated; a corrupt file degrades to
// the defaults without failing construction.
func TestCalibrationFileBoot(t *testing.T) {
	resetProfile(t)
	path := filepath.Join(t.TempDir(), "profile.json")
	prof := calib.Default()
	prof.MinParallelN = 1 << 18
	prof.Calibrated = true
	prof.FittedAt = "2026-01-01T00:00:00Z"
	if err := prof.Save(path); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{CalibrationFile: path})
	if got := sfcp.ActiveCalibrationProfile().MinParallelN; got != 1<<18 {
		t.Fatalf("active MinParallelN = %d after boot, want %d", got, 1<<18)
	}
	m := fetchMetrics(t, ts)
	if !strings.Contains(m, "sfcpd_plan_calibrated 1") {
		t.Errorf("/metrics missing \"sfcpd_plan_calibrated 1\":\n%s", m)
	}
	if !strings.Contains(m, `sfcpd_plan_profile{field="min_parallel_n"} 262144`) {
		t.Errorf("/metrics missing the fitted min_parallel_n threshold:\n%s", m)
	}
}

func TestCalibrationFileBootCorrupt(t *testing.T) {
	resetProfile(t)
	path := filepath.Join(t.TempDir(), "profile.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{CalibrationFile: path})
	if got := sfcp.ActiveCalibrationProfile().Source(); got != "default" {
		t.Fatalf("active profile source = %q after corrupt boot file, want default", got)
	}
	if m := fetchMetrics(t, ts); !strings.Contains(m, "sfcpd_plan_calibrated 0") {
		t.Errorf("/metrics missing \"sfcpd_plan_calibrated 0\":\n%s", m)
	}
}
