package server

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sync"
	"time"

	"sfcp"
	"sfcp/internal/codec"
	"sfcp/internal/store"
)

// The versioned-instance API. An instance registered here is addressed by
// its SHA-256 content digest, and a delta POSTed against that digest
// produces a child version — solved incrementally from the parent's
// resident decomposition state — cached under the child's own digest:
//
//	POST /instances                 register + solve (JSON or application/x-sfcp)
//	POST /instances/{digest}/delta  apply edits (JSON or application/x-sfcp-delta)
//
// Sessions live in a bounded LRU; a delta consumes the parent's session
// (the state advances in place to the child version) and re-registers it
// under the child digest. A digest whose session is not resident —
// evicted, consumed by a concurrent delta, or from before a restart — is
// reloaded from the blob tier and rebuilt with a full solve, so with a
// durable store the whole version tree survives process restarts. The
// instance payload of every version is persisted under its plain digest
// at registration time to make that reload possible.

// sessionRegistry is a bounded LRU of resident incremental sessions keyed
// by the digest of the version they currently represent. take removes the
// entry it returns — a session is owned by exactly one delta at a time,
// and re-registered under the child digest when the delta completes.
type sessionRegistry struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *sessionEntry
	entries map[string]*list.Element
}

type sessionEntry struct {
	digest string
	inc    *sfcp.Incremental
}

func newSessionRegistry(capacity int) *sessionRegistry {
	return &sessionRegistry{
		cap:     capacity,
		order:   list.New(),
		entries: map[string]*list.Element{},
	}
}

// has reports residency without disturbing LRU order.
func (g *sessionRegistry) has(digest string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.entries[digest]
	return ok
}

// take removes and returns the session for digest. Concurrent deltas
// against one parent serialize here: the loser sees a miss and rebuilds
// from the blob tier.
func (g *sessionRegistry) take(digest string) (*sfcp.Incremental, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	el, ok := g.entries[digest]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*sessionEntry)
	g.order.Remove(el)
	delete(g.entries, digest)
	return ent.inc, true
}

// put registers a session under digest, evicting least-recently-used
// sessions beyond the cap (their versions stay reachable through the blob
// tier's rebuild path).
func (g *sessionRegistry) put(digest string, inc *sfcp.Incremental) {
	if g.cap <= 0 {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if el, ok := g.entries[digest]; ok {
		el.Value.(*sessionEntry).inc = inc
		g.order.MoveToFront(el)
		return
	}
	g.entries[digest] = g.order.PushFront(&sessionEntry{digest: digest, inc: inc})
	for g.order.Len() > g.cap {
		oldest := g.order.Back()
		ent := oldest.Value.(*sessionEntry)
		g.order.Remove(oldest)
		delete(g.entries, ent.digest)
	}
}

func (g *sessionRegistry) len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.order.Len()
}

// InstanceCreateRequest is the JSON body of POST /instances.
type InstanceCreateRequest struct {
	F []int `json:"f"`
	B []int `json:"b"`
}

// InstanceResponse is the JSON reply of POST /instances: the version's
// content digest (the address deltas are POSTed against) plus the solve.
type InstanceResponse struct {
	Digest     string  `json:"digest"`
	N          int     `json:"n"`
	NumClasses int     `json:"num_classes"`
	Labels     []int   `json:"labels,omitempty"`
	// Reused marks a registration that found the session already
	// resident — nothing was solved.
	Reused  bool    `json:"reused,omitempty"`
	SolveMS float64 `json:"solve_ms,omitempty"`
}

// DeltaResponse is the JSON reply of POST /instances/{digest}/delta: the
// child version's digest and labels, and how the delta was resolved.
type DeltaResponse struct {
	ParentDigest string `json:"parent_digest"`
	Digest       string `json:"digest"`
	N            int    `json:"n"`
	NumClasses   int    `json:"num_classes"`
	Labels       []int  `json:"labels,omitempty"`
	// Resolve is the planner's decision trace: incremental vs full
	// fallback, with the dirty-set sizes that drove the choice.
	Resolve *sfcp.ResolveInfo `json:"resolve,omitempty"`
	// SessionRebuilt marks a parent that was not resident: its instance
	// was reloaded from the blob tier and fully re-solved before the
	// delta applied.
	SessionRebuilt bool    `json:"session_rebuilt,omitempty"`
	ResolveMS      float64 `json:"resolve_ms"`
}

func (s *Server) handleInstanceCreate(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("instances")
	var ins sfcp.Instance
	if isBinary(r) {
		dec, body := s.binaryDecoder(w, r)
		defer func() { s.metrics.ingest("binary", body.n) }()
		var err error
		ins, err = decodeSingleBinary(dec)
		if err != nil {
			s.fail(w, "instances", decodeStatus(err), err.Error())
			return
		}
	} else {
		var req InstanceCreateRequest
		if err := s.decodeJSON(w, r, &req); err != nil {
			s.fail(w, "instances", decodeStatus(err), err.Error())
			return
		}
		ins = sfcp.Instance{F: req.F, B: req.B}
	}
	if len(ins.F) > s.cfg.MaxN {
		s.fail(w, "instances", http.StatusBadRequest,
			fmt.Sprintf("instance of %d elements exceeds limit %d", len(ins.F), s.cfg.MaxN))
		return
	}
	digest := ins.Digest()
	resp := InstanceResponse{Digest: digest, N: len(ins.F)}
	if s.sessions.has(digest) {
		// Already resident: registration is idempotent, and the labels
		// come from the session rather than a re-solve. take/put keeps
		// the residency check and the read atomic per session.
		if inc, ok := s.sessions.take(digest); ok {
			resp.Reused = true
			resp.Labels, resp.NumClasses = inc.Labels(), inc.NumClasses()
			s.sessions.put(digest, inc)
			if omitLabels(r) {
				resp.Labels = nil
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	start := time.Now()
	inc, err := sfcp.NewIncremental(ins)
	if err != nil {
		s.fail(w, "instances", http.StatusBadRequest, err.Error())
		return
	}
	resp.SolveMS = float64(time.Since(start)) / float64(time.Millisecond)
	resp.Labels, resp.NumClasses = inc.Labels(), inc.NumClasses()
	s.sessions.put(digest, inc)
	s.instancePut(digest, ins)
	if omitLabels(r) {
		resp.Labels = nil
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleInstanceDelta(w http.ResponseWriter, r *http.Request) {
	s.metrics.request("instances_delta")
	parent := r.PathValue("digest")
	if !store.ValidKey(parent) {
		s.fail(w, "instances_delta", http.StatusBadRequest,
			fmt.Sprintf("invalid instance digest %q", parent))
		return
	}
	delta, err := s.decodeDelta(w, r)
	if err != nil {
		s.fail(w, "instances_delta", decodeStatus(err), err.Error())
		return
	}
	if len(delta.Edits) == 0 {
		s.fail(w, "instances_delta", http.StatusBadRequest, "empty delta")
		return
	}
	inc, rebuilt, err := s.instanceSession(parent)
	if errors.Is(err, store.ErrNotFound) {
		s.fail(w, "instances_delta", http.StatusNotFound,
			fmt.Sprintf("unknown instance digest %s (not resident, not in the blob tier)", parent))
		return
	}
	if err != nil {
		s.fail(w, "instances_delta", http.StatusInternalServerError, err.Error())
		return
	}
	res, err := sfcp.Resolve(inc, delta)
	if err != nil {
		// Edit validation precedes mutation, so the session still
		// represents the parent version; re-register it there.
		s.sessions.put(parent, inc)
		s.fail(w, "instances_delta", http.StatusBadRequest, err.Error())
		return
	}
	child := inc.Instance()
	childDigest := child.Digest()
	s.sessions.put(childDigest, inc)
	s.instancePut(childDigest, child)
	s.metrics.resolve(res.Resolve.Mode, res.Resolve.DirtyFrac)
	resp := DeltaResponse{
		ParentDigest:   parent,
		Digest:         childDigest,
		N:              len(child.F),
		NumClasses:     res.NumClasses,
		Labels:         res.Labels,
		Resolve:        res.Resolve,
		SessionRebuilt: rebuilt,
		ResolveMS:      float64(res.Resolve.Duration) / float64(time.Millisecond),
	}
	if omitLabels(r) {
		resp.Labels = nil
	}
	writeJSON(w, http.StatusOK, resp)
}

// omitLabels reports whether the request asked to leave the label array
// out of the response (?labels=false) — a delta against a
// million-element version should not have to ship the full labels just
// to learn the child digest.
func omitLabels(r *http.Request) bool {
	switch r.URL.Query().Get("labels") {
	case "false", "0":
		return true
	}
	return false
}

// decodeDelta parses a delta body in either wire format: JSON
// (sfcp.Delta) by default, the binary edit-list frame under
// Content-Type: application/x-sfcp-delta.
func (s *Server) decodeDelta(w http.ResponseWriter, r *http.Request) (sfcp.Delta, error) {
	mt, _, mtErr := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if mtErr == nil && mt == sfcp.DeltaBinaryMediaType {
		dec, body := s.binaryDecoder(w, r)
		defer func() { s.metrics.ingest("binary", body.n) }()
		wireEdits, err := dec.DecodeDelta()
		if err != nil {
			return sfcp.Delta{}, err
		}
		switch more, probeErr := dec.More(); {
		case probeErr != nil:
			return sfcp.Delta{}, probeErr
		case more:
			return sfcp.Delta{}, errors.New("invalid binary body: trailing data after delta")
		}
		delta := sfcp.Delta{Edits: make([]sfcp.Edit, len(wireEdits))}
		for i, de := range wireEdits {
			delta.Edits[i] = publicEdit(de)
		}
		return delta, nil
	}
	var delta sfcp.Delta
	if err := s.decodeJSON(w, r, &delta); err != nil {
		return sfcp.Delta{}, err
	}
	return delta, nil
}

// publicEdit converts one wire edit to the library's pointer-style form.
func publicEdit(de codec.DeltaEdit) sfcp.Edit {
	e := sfcp.Edit{Node: de.Node}
	if de.SetF {
		f := de.F
		e.F = &f
	}
	if de.SetB {
		b := de.B
		e.B = &b
	}
	return e
}

// instanceSession acquires the session for digest: resident (taken from
// the registry) or rebuilt from the blob tier's persisted instance
// payload with a full solve. A digest in neither place is
// store.ErrNotFound.
func (s *Server) instanceSession(digest string) (inc *sfcp.Incremental, rebuilt bool, err error) {
	if inc, ok := s.sessions.take(digest); ok {
		return inc, false, nil
	}
	ins, err := s.instanceGet(digest)
	if err != nil {
		return nil, false, err
	}
	inc, err = sfcp.NewIncremental(ins)
	if err != nil {
		return nil, false, fmt.Errorf("rebuilding session for %s: %w", digest, err)
	}
	return inc, true, nil
}

// instancePut persists one version's instance payload into the blob tier
// under its plain content digest — the bytes a restart (or an evicted
// session) rebuilds from. Like tierPut, failures are logged and
// swallowed: persistence accelerates and survives, it never gates.
func (s *Server) instancePut(digest string, ins sfcp.Instance) {
	if s.blobs == nil || digest == "" {
		return
	}
	if ok, err := s.blobs.Has(digest); err == nil && ok {
		return
	}
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(ins.EncodeBinary(pw)) }()
	if _, err := s.blobs.Put(digest, pr); err != nil {
		pr.CloseWithError(err)
		s.logf("server: persisting instance blob %s: %v", digest, err)
	}
}

// instanceGet reads one version's instance payload back from the blob
// tier. Corrupt payloads (the codec trailer catches them) are dropped so
// a re-registration re-persists clean bytes.
func (s *Server) instanceGet(digest string) (sfcp.Instance, error) {
	if s.blobs == nil {
		return sfcp.Instance{}, fmt.Errorf("%w: %s (no blob tier configured)", store.ErrNotFound, digest)
	}
	rc, err := s.blobs.Get(digest)
	if err != nil {
		return sfcp.Instance{}, err
	}
	ins, err := sfcp.DecodeBinary(rc)
	rc.Close()
	if err != nil {
		s.logf("server: instance blob %s unreadable: %v (dropping it)", digest, err)
		_ = s.blobs.Delete(digest)
		return sfcp.Instance{}, fmt.Errorf("%w: %s (payload unreadable)", store.ErrNotFound, digest)
	}
	return ins, nil
}
