package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"sfcp"
	"sfcp/internal/store"
	"sfcp/internal/workload"
)

// postDeltaJSON posts a JSON delta against a digest and decodes the reply.
func postDeltaJSON(t *testing.T, base, digest, body string) (*http.Response, DeltaResponse, []byte) {
	t.Helper()
	resp, data := post(t, base+"/instances/"+digest+"/delta", body)
	var dr DeltaResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &dr); err != nil {
			t.Fatalf("decoding delta response: %v (body %s)", err, data)
		}
	}
	return resp, dr, data
}

// createInstance registers ins and returns the create response.
func createInstance(t *testing.T, base string, ins sfcp.Instance) InstanceResponse {
	t.Helper()
	body, _ := json.Marshal(InstanceCreateRequest{F: ins.F, B: ins.B})
	resp, data := post(t, base+"/instances", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /instances: status %d (body %s)", resp.StatusCode, data)
	}
	var ir InstanceResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatalf("decoding instance response: %v", err)
	}
	return ir
}

func fullSolveLabels(t *testing.T, ins sfcp.Instance) ([]int, int) {
	t.Helper()
	res, err := sfcp.SolveWith(ins, sfcp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Labels, res.NumClasses
}

func TestInstanceCreateAndDelta(t *testing.T) {
	_, ts := newTestServer(t, Config{BlobStore: store.NewMemBlobStore()})
	w := workload.DistinctCycles(7, 4, 16, 3)
	ins := sfcp.Instance{F: w.F, B: w.B}

	ir := createInstance(t, ts.URL, ins)
	if ir.Digest != ins.Digest() {
		t.Fatalf("digest %s, want %s", ir.Digest, ins.Digest())
	}
	wantLabels, wantClasses := fullSolveLabels(t, ins)
	if ir.NumClasses != wantClasses || !equalIntsSrv(ir.Labels, wantLabels) {
		t.Fatalf("create labels diverge from full solve")
	}

	// Re-registering the same bytes reuses the resident session.
	if ir2 := createInstance(t, ts.URL, ins); !ir2.Reused || ir2.Digest != ir.Digest {
		t.Fatalf("re-registration: reused=%v digest=%s", ir2.Reused, ir2.Digest)
	}

	// A single B-edit delta: the child's labels must match a full solve
	// of the edited instance, byte for byte.
	resp, dr, data := postDeltaJSON(t, ts.URL, ir.Digest, `{"edits":[{"node":0,"b":99}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta: status %d (body %s)", resp.StatusCode, data)
	}
	edited := sfcp.Instance{F: append([]int{}, ins.F...), B: append([]int{}, ins.B...)}
	edited.B[0] = 99
	if dr.Digest != edited.Digest() {
		t.Fatalf("child digest %s, want %s", dr.Digest, edited.Digest())
	}
	wantLabels, wantClasses = fullSolveLabels(t, edited)
	if dr.NumClasses != wantClasses || !equalIntsSrv(dr.Labels, wantLabels) {
		t.Fatalf("delta labels diverge from full solve of edited instance")
	}
	if dr.Resolve == nil || dr.Resolve.Mode != sfcp.ResolveModeIncremental {
		t.Fatalf("resolve info = %+v, want incremental mode", dr.Resolve)
	}
	if dr.Resolve.DirtyNodes <= 0 || dr.Resolve.DirtyFrac <= 0 || dr.Resolve.DirtyFrac > 1 {
		t.Fatalf("implausible dirty stats: %+v", dr.Resolve)
	}
	if dr.ParentDigest != ir.Digest {
		t.Fatalf("parent digest %s, want %s", dr.ParentDigest, ir.Digest)
	}

	// The child is itself addressable: chain a second delta off it.
	resp2, dr2, data2 := postDeltaJSON(t, ts.URL, dr.Digest, `{"edits":[{"node":1,"f":0}]}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("chained delta: status %d (body %s)", resp2.StatusCode, data2)
	}
	edited.F[1] = 0
	wantLabels, _ = fullSolveLabels(t, edited)
	if dr2.Digest != edited.Digest() || !equalIntsSrv(dr2.Labels, wantLabels) {
		t.Fatalf("chained delta diverges from full solve")
	}
}

func TestInstanceDeltaErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{BlobStore: store.NewMemBlobStore()})
	ir := createInstance(t, ts.URL, sfcp.Instance{F: []int{1, 0}, B: []int{0, 1}})

	cases := []struct {
		name     string
		digest   string
		body     string
		wantCode int
		wantSub  string
	}{
		{"bad digest", "ZZZ", `{"edits":[{"node":0,"b":1}]}`, 400, "invalid instance digest"},
		{"unknown digest", strings.Repeat("ab", 32), `{"edits":[{"node":0,"b":1}]}`, 404, "unknown instance digest"},
		{"empty delta", ir.Digest, `{"edits":[]}`, 400, "empty delta"},
		{"malformed json", ir.Digest, `{"edits":`, 400, "invalid JSON"},
		{"empty edit", ir.Digest, `{"edits":[{"node":0}]}`, 400, "sets neither F nor B"},
		{"node out of range", ir.Digest, `{"edits":[{"node":99,"b":1}]}`, 400, "out of range"},
		{"f out of range", ir.Digest, `{"edits":[{"node":0,"f":99}]}`, 400, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _, data := postDeltaJSON(t, ts.URL, tc.digest, tc.body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantCode, data)
			}
			if !bytes.Contains(data, []byte(tc.wantSub)) {
				t.Errorf("body %s missing %q", data, tc.wantSub)
			}
		})
	}

	// A rejected delta must leave the parent session usable in place.
	resp, dr, data := postDeltaJSON(t, ts.URL, ir.Digest, `{"edits":[{"node":0,"b":7}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta after rejections: status %d (body %s)", resp.StatusCode, data)
	}
	if dr.SessionRebuilt {
		t.Fatalf("session was lost by a rejected delta (rebuilt from tier)")
	}
}

func TestInstanceDeltaBinaryBody(t *testing.T) {
	_, ts := newTestServer(t, Config{BlobStore: store.NewMemBlobStore()})
	w := workload.CycleFamily(3, 4, 8, 4)
	ins := sfcp.Instance{F: w.F, B: w.B}
	ir := createInstance(t, ts.URL, ins)

	nine := 9
	delta := sfcp.Delta{Edits: []sfcp.Edit{{Node: 2, B: &nine}}}
	var buf bytes.Buffer
	if err := sfcp.EncodeDeltaBinary(&buf, delta); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/instances/"+ir.Digest+"/delta",
		sfcp.DeltaBinaryMediaType, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dr DeltaResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary delta: status %d", resp.StatusCode)
	}
	edited := sfcp.Instance{F: append([]int{}, ins.F...), B: append([]int{}, ins.B...)}
	edited.B[2] = 9
	wantLabels, _ := fullSolveLabels(t, edited)
	if dr.Digest != edited.Digest() || !equalIntsSrv(dr.Labels, wantLabels) {
		t.Fatalf("binary delta diverges from full solve of edited instance")
	}

	// A corrupted binary body is rejected, not applied.
	raw := append([]byte(nil), buf.Bytes()...)
	raw[len(raw)-1] ^= 0xff
	resp2, err := http.Post(ts.URL+"/instances/"+dr.Digest+"/delta",
		sfcp.DeltaBinaryMediaType, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt binary delta: status %d, want 400", resp2.StatusCode)
	}
}

func TestInstanceOmitLabels(t *testing.T) {
	_, ts := newTestServer(t, Config{BlobStore: store.NewMemBlobStore()})
	ir := createInstance(t, ts.URL, sfcp.Instance{F: []int{1, 0}, B: []int{0, 1}})
	resp, data := post(t, ts.URL+"/instances/"+ir.Digest+"/delta?labels=false",
		`{"edits":[{"node":0,"b":5}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (body %s)", resp.StatusCode, data)
	}
	if bytes.Contains(data, []byte(`"labels"`)) {
		t.Fatalf("labels present despite ?labels=false: %s", data)
	}
}

// TestInstanceSessionEvictionRebuild drives more versions than the
// registry holds: an evicted version's digest must still accept deltas by
// rebuilding from the blob tier.
func TestInstanceSessionEvictionRebuild(t *testing.T) {
	_, ts := newTestServer(t, Config{InstanceSessions: 2, BlobStore: store.NewMemBlobStore()})
	w := workload.Broom(5, 60, 8, 4)
	a := sfcp.Instance{F: w.F, B: w.B}
	w2 := workload.Star(6, 40, 3)
	b := sfcp.Instance{F: w2.F, B: w2.B}
	w3 := workload.RandomFunction(8, 50, 3)
	c := sfcp.Instance{F: w3.F, B: w3.B}

	ira := createInstance(t, ts.URL, a)
	createInstance(t, ts.URL, b)
	createInstance(t, ts.URL, c) // evicts a's session (cap 2)

	resp, dr, data := postDeltaJSON(t, ts.URL, ira.Digest, `{"edits":[{"node":3,"b":77}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta on evicted version: status %d (body %s)", resp.StatusCode, data)
	}
	if !dr.SessionRebuilt {
		t.Fatalf("expected session_rebuilt for an evicted version")
	}
	edited := sfcp.Instance{F: append([]int{}, a.F...), B: append([]int{}, a.B...)}
	edited.B[3] = 77
	wantLabels, _ := fullSolveLabels(t, edited)
	if !equalIntsSrv(dr.Labels, wantLabels) {
		t.Fatalf("rebuilt-session delta diverges from full solve")
	}
}

// TestInstanceNoBlobTier pins zero-config behavior: residency-only, with
// a clear 404 once a session is gone.
func TestInstanceNoBlobTier(t *testing.T) {
	_, ts := newTestServer(t, Config{InstanceSessions: 1})
	ira := createInstance(t, ts.URL, sfcp.Instance{F: []int{1, 0}, B: []int{0, 1}})
	createInstance(t, ts.URL, sfcp.Instance{F: []int{0, 0}, B: []int{0, 1}}) // evicts a

	resp, _, data := postDeltaJSON(t, ts.URL, ira.Digest, `{"edits":[{"node":0,"b":1}]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404 (body %s)", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte("unknown instance digest")) {
		t.Errorf("body %s missing unknown-digest message", data)
	}
}

// TestInstanceRestartSurvival pins the durability contract: a new Server
// over the same blob store serves deltas against digests the old one
// registered.
func TestInstanceRestartSurvival(t *testing.T) {
	blobs := store.NewMemBlobStore()
	w := workload.DistinctCycles(11, 3, 12, 2)
	ins := sfcp.Instance{F: w.F, B: w.B}

	var parentDigest, childDigest string
	var childIns sfcp.Instance
	{
		_, ts := newTestServer(t, Config{BlobStore: blobs})
		ir := createInstance(t, ts.URL, ins)
		parentDigest = ir.Digest
		resp, dr, data := postDeltaJSON(t, ts.URL, parentDigest, `{"edits":[{"node":0,"b":42}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delta: status %d (body %s)", resp.StatusCode, data)
		}
		childDigest = dr.Digest
		childIns = sfcp.Instance{F: append([]int{}, ins.F...), B: append([]int{}, ins.B...)}
		childIns.B[0] = 42
	}

	// "Restart": fresh server, same blob store, empty session registry.
	_, ts := newTestServer(t, Config{BlobStore: blobs})
	resp, dr, data := postDeltaJSON(t, ts.URL, childDigest, `{"edits":[{"node":1,"f":0}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta after restart: status %d (body %s)", resp.StatusCode, data)
	}
	if !dr.SessionRebuilt {
		t.Fatalf("expected session_rebuilt after restart")
	}
	grandchild := sfcp.Instance{F: append([]int{}, childIns.F...), B: append([]int{}, childIns.B...)}
	grandchild.F[1] = 0
	wantLabels, _ := fullSolveLabels(t, grandchild)
	if dr.Digest != grandchild.Digest() || !equalIntsSrv(dr.Labels, wantLabels) {
		t.Fatalf("post-restart delta diverges from full solve")
	}

	// The pre-restart parent stays addressable too.
	resp2, _, data2 := postDeltaJSON(t, ts.URL, parentDigest, `{"edits":[{"node":0,"b":1}]}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("parent delta after restart: status %d (body %s)", resp2.StatusCode, data2)
	}
}

// TestResolveMetrics pins the sfcpd_resolve_total and dirty-fraction
// histogram families.
func TestResolveMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{BlobStore: store.NewMemBlobStore()})
	w := workload.DistinctCycles(13, 4, 8, 2)
	ir := createInstance(t, ts.URL, sfcp.Instance{F: w.F, B: w.B})
	digest := ir.Digest
	for i := 0; i < 3; i++ {
		resp, dr, data := postDeltaJSON(t, ts.URL, digest,
			fmt.Sprintf(`{"edits":[{"node":%d,"b":%d}]}`, i, 50+i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delta %d: status %d (body %s)", i, resp.StatusCode, data)
		}
		digest = dr.Digest
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`sfcpd_resolve_total{mode="incremental"} 3`,
		`sfcpd_resolve_total{mode="full_fallback"} 0`,
		"# TYPE sfcpd_resolve_dirty_frac histogram",
		`sfcpd_resolve_dirty_frac_bucket{le="+Inf"} 3`,
		"sfcpd_resolve_dirty_frac_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func equalIntsSrv(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
