package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sfcp"
	"sfcp/internal/store"
)

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// The server-level tiered-storage contract: the solve path consults the
// blob tier on RAM-cache misses, spilled results write through to it, a
// new server over the same stores serves previous answers without
// re-solving, and the sfcpd_store_* / sfcpd_cache_bytes families report
// it all (as zeros in zero-config mode).

func TestCacheByteBound(t *testing.T) {
	// Each 100-label entry is 800 bytes of labels plus overhead; a
	// 3000-byte budget holds two such entries but not three.
	res := sfcp.Result{Labels: make([]int, 100), NumClasses: 1}
	c := newResultCache(100, 3000)
	c.Put("a", res)
	c.Put("b", res)
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	c.Put("c", res)
	if c.Len() != 2 {
		t.Fatalf("len %d after byte-bound put, want 2", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Error("LRU entry survived byte-bound eviction")
	}
	if got := c.Bytes(); got <= 0 || got > 3000 {
		t.Errorf("Bytes() = %d, want in (0, 3000]", got)
	}

	// An entry bigger than the whole budget is never admitted — and a
	// stale entry under its key is dropped rather than served forever.
	huge := sfcp.Result{Labels: make([]int, 1000), NumClasses: 1}
	c.Put("b", huge)
	if _, ok := c.Get("b"); ok {
		t.Error("over-budget entry admitted (or stale entry retained)")
	}

	// maxBytes = 0 keeps the original entries-only behavior.
	unbounded := newResultCache(2, 0)
	unbounded.Put("x", huge)
	if _, ok := unbounded.Get("x"); !ok {
		t.Error("unbounded cache rejected an entry")
	}
}

// storeServer builds a server over the given stores with coalescing
// disabled (so explicit-linear solves take the pool path, which writes
// through) and a spill threshold of one element (everything persists).
func storeServer(t *testing.T, js store.JobStore, bs store.BlobStore) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{
		JobStore:     js,
		BlobStore:    bs,
		SpillN:       1,
		BatchMaxWait: -1,
		Logf:         t.Logf,
	})
	ts := httptest.NewServer(s)
	return s, ts
}

func TestBlobTierServesAcrossRestart(t *testing.T) {
	journal := store.NewMemJobStore()
	blobs := store.NewMemBlobStore()
	body := `{"algorithm":"linear","f":[1,2,3,0],"b":[0,0,0,0]}`

	s1, ts1 := storeServer(t, journal, blobs)
	resp, data := post(t, ts1.URL+"/solve", body)
	if resp.StatusCode != 200 {
		t.Fatalf("first solve: %d %s", resp.StatusCode, data)
	}
	var first SolveResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first solve claims cached")
	}
	if blobs.Len() == 0 {
		t.Fatal("solve above SpillN did not write through to the blob tier")
	}
	ts1.Close()
	s1.Close()

	// A fresh server (empty RAM cache) over the same stores answers from
	// the durable tier without running a solver.
	s2, ts2 := storeServer(t, journal, blobs)
	defer func() { ts2.Close(); s2.Close() }()
	resp, data = post(t, ts2.URL+"/solve", body)
	if resp.StatusCode != 200 {
		t.Fatalf("restart solve: %d %s", resp.StatusCode, data)
	}
	var second SolveResponse
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("restarted server re-solved instead of reading the blob tier")
	}
	if len(second.Labels) != len(first.Labels) {
		t.Fatalf("tier labels %v != original %v", second.Labels, first.Labels)
	}
	for i := range first.Labels {
		if first.Labels[i] != second.Labels[i] {
			t.Fatalf("tier labels %v != original %v", second.Labels, first.Labels)
		}
	}

	_, m := get(t, ts2.URL+"/metrics")
	for _, want := range []string{
		"sfcpd_store_blob_reads_total 1",
		"sfcpd_store_blob_writes_total",
	} {
		if !strings.Contains(string(m), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestCorruptBlobFallsBackToSolving(t *testing.T) {
	blobs := store.NewMemBlobStore()
	ins := sfcp.Instance{F: []int{1, 2, 3, 0}, B: []int{0, 0, 0, 0}}
	key := store.ResultKey(sfcp.AlgorithmLinear.String(), 0, ins.Digest())
	if _, err := blobs.Put(key, strings.NewReader("not a labels blob")); err != nil {
		t.Fatal(err)
	}

	s, ts := storeServer(t, store.NewMemJobStore(), blobs)
	defer func() { ts.Close(); s.Close() }()
	resp, data := post(t, ts.URL+"/solve", `{"algorithm":"linear","f":[1,2,3,0],"b":[0,0,0,0]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("solve over corrupt blob: %d %s", resp.StatusCode, data)
	}
	var out SolveResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cached {
		t.Fatal("corrupt blob served as a cached result")
	}
	// The re-solve replaced the corrupt blob with a readable one.
	rc, err := blobs.Get(key)
	if err != nil {
		t.Fatalf("blob not re-persisted after corruption: %v", err)
	}
	labels, err := sfcp.DecodeLabelsBinary(rc)
	rc.Close()
	if err != nil {
		t.Fatalf("re-persisted blob unreadable: %v", err)
	}
	if len(labels) != 4 {
		t.Fatalf("re-persisted labels %v", labels)
	}
}

func TestJobResultAcrossRestart(t *testing.T) {
	journal := store.NewMemJobStore()
	blobs := store.NewMemBlobStore()

	s1, ts1 := storeServer(t, journal, blobs)
	resp, data := post(t, ts1.URL+"/jobs", `{"algorithm":"linear","f":[1,0,3,2],"b":[0,0,0,0]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	var snap struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	first := waitJobLabels(t, ts1, snap.ID)
	ts1.Close()
	s1.Close()

	s2, ts2 := storeServer(t, journal, blobs)
	defer func() { ts2.Close(); s2.Close() }()
	second := waitJobLabels(t, ts2, snap.ID)
	if len(first) != len(second) {
		t.Fatalf("restored job labels %v != original %v", second, first)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("restored job labels %v != original %v", second, first)
		}
	}
}

// waitJobLabels polls a job to done and fetches its labels.
func waitJobLabels(t *testing.T, ts *httptest.Server, id string) []int {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, data := get(t, ts.URL+"/jobs/"+id+"/result")
		switch resp.StatusCode {
		case http.StatusOK:
			var out SolveResponse
			if err := json.Unmarshal(data, &out); err != nil {
				t.Fatal(err)
			}
			return out.Labels
		case http.StatusConflict:
			time.Sleep(5 * time.Millisecond)
		default:
			t.Fatalf("job result: %d %s", resp.StatusCode, data)
		}
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

func TestStoreMetricsZeroConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, data := get(t, ts.URL+"/metrics")
	m := string(data)
	for _, want := range []string{
		"sfcpd_store_blob_reads_total 0",
		"sfcpd_store_blob_writes_total 0",
		"sfcpd_store_spilled_total 0",
		`sfcpd_store_recovered_jobs_total{outcome="requeued"} 0`,
		"sfcpd_store_journal_corrupt_total 0",
		"sfcpd_cache_bytes",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("zero-config metrics missing %q", want)
		}
	}
}

func TestCacheBytesGauge(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheBytes: 1 << 20, BatchMaxWait: -1})
	post(t, ts.URL+"/solve", `{"algorithm":"linear","f":[1,2,0],"b":[0,0,0]}`)
	_, data := get(t, ts.URL+"/metrics")
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "sfcpd_cache_bytes "); ok {
			if rest == "0" {
				t.Fatalf("cache bytes gauge still zero after a cached solve")
			}
			return
		}
	}
	t.Fatal("sfcpd_cache_bytes not in /metrics")
}
