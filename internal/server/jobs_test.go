package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sfcp"
	"sfcp/internal/jobs"
	"sfcp/internal/workload"
)

func submitJSONJob(t *testing.T, ts *httptest.Server, body string) (jobs.Snapshot, *http.Response, []byte) {
	t.Helper()
	resp, data := post(t, ts.URL+"/jobs", body)
	var snap jobs.Snapshot
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatalf("submit response %s: %v", data, err)
		}
	}
	return snap, resp, data
}

func getJob(t *testing.T, ts *httptest.Server, id string) (jobs.Snapshot, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap jobs.Snapshot
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Fatalf("status response %s: %v", data, err)
		}
	}
	return snap, resp.StatusCode
}

func pollJob(t *testing.T, ts *httptest.Server, id string, want jobs.State) jobs.Snapshot {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		snap, code := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("job %s: status code %d while polling", id, code)
		}
		if snap.State == want {
			return snap
		}
		if snap.State.Terminal() {
			t.Fatalf("job %s: terminal %s (error %q), want %s", id, snap.State, snap.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobs.Snapshot{}
}

func TestJobLifecycleJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	snap, resp, data := submitJSONJob(t, ts, `{"algorithm":"linear","f":[1,0,0],"b":[0,1,0],"priority":3}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	if snap.State != jobs.StateQueued || snap.ID == "" || snap.Priority != 3 || snap.N != 3 {
		t.Fatalf("submit snapshot: %+v", snap)
	}
	done := pollJob(t, ts, snap.ID, jobs.StateDone)
	if done.NumClasses == 0 || done.Algorithm != "linear" {
		t.Fatalf("done snapshot: %+v", done)
	}

	// JSON result.
	resp2, err := http.Get(ts.URL + "/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var res SolveResponse
	if err := json.NewDecoder(resp2.Body).Decode(&res); err != nil || resp2.StatusCode != 200 {
		t.Fatalf("result: code %d err %v", resp2.StatusCode, err)
	}
	want, err := sfcp.SolveWith(sfcp.Instance{F: []int{1, 0, 0}, B: []int{0, 1, 0}},
		sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
	if err != nil {
		t.Fatal(err)
	}
	if !sfcp.SamePartition(res.Labels, want.Labels) {
		t.Fatalf("job labels %v disagree with local solve %v", res.Labels, want.Labels)
	}

	// Binary result of the same job.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/jobs/"+snap.ID+"/result", nil)
	req.Header.Set("Accept", sfcp.BinaryMediaType)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if ct := resp3.Header.Get("Content-Type"); ct != sfcp.BinaryMediaType {
		t.Fatalf("binary result content type %q", ct)
	}
	labels, err := sfcp.DecodeLabelsBinary(resp3.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !sfcp.SamePartition(labels, want.Labels) {
		t.Fatalf("binary labels %v disagree with local solve", labels)
	}

	// The job's solve warmed the shared result cache: the synchronous
	// endpoint answers from cache.
	respSync, dataSync := post(t, ts.URL+"/solve", `{"algorithm":"linear","f":[1,0,0],"b":[0,1,0]}`)
	if respSync.StatusCode != 200 || !strings.Contains(string(dataSync), `"cached":true`) {
		t.Errorf("sync solve after job not cached: %d %s", respSync.StatusCode, dataSync)
	}
}

func TestJobSubmitBinary(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ins := sfcp.Instance(workload.RandomFunction(42, 300, 3))
	var wire bytes.Buffer
	if err := ins.EncodeBinary(&wire); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs?algorithm=hopcroft&priority=7", sfcp.BinaryMediaType,
		bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("binary submit: %d %s", resp.StatusCode, data)
	}
	var snap jobs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Priority != 7 || snap.Algorithm != "hopcroft" || snap.N != 300 {
		t.Fatalf("binary submit snapshot: %+v", snap)
	}
	done := pollJob(t, ts, snap.ID, jobs.StateDone)
	want, err := sfcp.SolveWith(ins, sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
	if err != nil {
		t.Fatal(err)
	}
	if done.NumClasses != want.NumClasses {
		t.Fatalf("num_classes %d, want %d", done.NumClasses, want.NumClasses)
	}
}

func TestJobErrorsAndEdges(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxN: 8})
	cases := []struct {
		name     string
		body     string
		wantCode int
		wantSub  string
	}{
		{"unknown algorithm", `{"algorithm":"quantum","f":[0],"b":[0]}`, 400, "unknown algorithm"},
		{"oversized", fmt.Sprintf(`{"f":[%s0],"b":[%s0]}`,
			strings.Repeat("0,", 8), strings.Repeat("0,", 8)), 400, "exceeds limit 8"},
		{"malformed json", `{"f":[1`, 400, "invalid JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := post(t, ts.URL+"/jobs", tc.body)
			if resp.StatusCode != tc.wantCode || !strings.Contains(string(data), tc.wantSub) {
				t.Errorf("%d %s, want %d containing %q", resp.StatusCode, data, tc.wantCode, tc.wantSub)
			}
		})
	}

	// An invalid instance is accepted at submit and surfaces as a failed job.
	snap, resp, data := submitJSONJob(t, ts, `{"f":[5],"b":[0]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("invalid-instance submit: %d %s", resp.StatusCode, data)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, code := getJob(t, ts, snap.ID)
		if code != 200 {
			t.Fatalf("poll code %d", code)
		}
		if got.State == jobs.StateFailed {
			if !strings.Contains(got.Error, "out of range") {
				t.Fatalf("failed job error %q", got.Error)
			}
			// Its result endpoint reports the conflict with the snapshot.
			r, err := http.Get(ts.URL + "/jobs/" + snap.ID + "/result")
			if err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			if r.StatusCode != http.StatusConflict {
				t.Fatalf("result of failed job: %d", r.StatusCode)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never failed")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Unknown ids.
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/jobs/deadbeef"},
		{http.MethodGet, "/jobs/deadbeef/result"},
		{http.MethodDelete, "/jobs/deadbeef"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: %d, want 404", probe.method, probe.path, r.StatusCode)
		}
	}
}

func TestJobCancelAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A parallel-pram simulation big enough to still be running when the
	// DELETE lands.
	ins := sfcp.Instance(workload.RandomFunction(3, 40_000, 3))
	body, err := json.Marshal(map[string]any{"algorithm": "parallel-pram", "f": ins.F, "b": ins.B})
	if err != nil {
		t.Fatal(err)
	}
	snap, resp, data := submitJSONJob(t, ts, string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	pollJob(t, ts, snap.ID, jobs.StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+snap.ID, nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", r.StatusCode)
	}
	cancelled := pollJob(t, ts, snap.ID, jobs.StateCancelled)
	if cancelled.FinishedAt == nil {
		t.Fatalf("cancelled snapshot has no finish time: %+v", cancelled)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	m, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"sfcpd_jobs_submitted_total 1",
		`sfcpd_jobs_finished_total{state="cancelled"} 1`,
		"sfcpd_jobs_queued 0",
		"sfcpd_jobs_running 0",
	} {
		if !strings.Contains(string(m), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestBatchBinaryDigestMismatchIsPositional uploads three concatenated
// members with the middle one's payload corrupted (framing intact): the
// response must carry per-member errors instead of a 400 for everyone.
func TestBatchBinaryDigestMismatchIsPositional(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	members := []sfcp.Instance{
		sfcp.Instance(workload.Star(1, 20, 2)),
		sfcp.Instance(workload.Star(2, 30, 2)),
		sfcp.Instance(workload.Star(3, 40, 2)),
	}
	var stream bytes.Buffer
	offsets := make([]int, len(members))
	for i, ins := range members {
		offsets[i] = stream.Len()
		if err := ins.EncodeBinary(&stream); err != nil {
			t.Fatal(err)
		}
	}
	wire := bytes.Clone(stream.Bytes())
	// Member 1's first F varint sits right after its 6-byte header and
	// 1-byte n varint; flipping a low bit keeps every varint's width.
	wire[offsets[1]+7] ^= 0x01

	resp, err := http.Post(ts.URL+"/solve/batch?algorithm=linear", sfcp.BinaryMediaType,
		bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 || br.Errors != 1 {
		t.Fatalf("results %d errors %d: %s", len(br.Results), br.Errors, data)
	}
	if !strings.Contains(br.Results[1].Error, "digest mismatch") {
		t.Errorf("member 1 error %q", br.Results[1].Error)
	}
	for _, i := range []int{0, 2} {
		if br.Results[i].Error != "" {
			t.Errorf("member %d failed: %q", i, br.Results[i].Error)
		}
		want, err := sfcp.SolveWith(members[i], sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
		if err != nil {
			t.Fatal(err)
		}
		if !sfcp.SamePartition(br.Results[i].Labels, want.Labels) {
			t.Errorf("member %d labels disagree with local solve", i)
		}
	}
}

// TestJobReportsResolvedAlgorithm: async jobs surface the planner's choice
// in the done snapshot and the JSON result, like the synchronous API.
func TestJobReportsResolvedAlgorithm(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	wl := workload.RandomFunction(13, 80, 3)
	snap, resp, data := submitJSONJob(t, ts,
		fmt.Sprintf(`{"f":%s,"b":%s}`, toJSON(t, wl.F), toJSON(t, wl.B)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, data)
	}
	if snap.ResolvedAlgorithm != "" {
		t.Errorf("queued snapshot already claims a resolved algorithm: %+v", snap)
	}
	done := pollJob(t, ts, snap.ID, jobs.StateDone)
	if done.Algorithm != "auto" || done.ResolvedAlgorithm != "linear" || done.PlanReason == "" {
		t.Fatalf("done snapshot: algorithm=%q resolved=%q reason=%q",
			done.Algorithm, done.ResolvedAlgorithm, done.PlanReason)
	}
	respRes, err := http.Get(ts.URL + "/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer respRes.Body.Close()
	var res SolveResponse
	if err := json.NewDecoder(respRes.Body).Decode(&res); err != nil || respRes.StatusCode != 200 {
		t.Fatalf("result: code %d err %v", respRes.StatusCode, err)
	}
	if res.Algorithm != "auto" || res.ResolvedAlgorithm != "linear" {
		t.Errorf("result reports algorithm=%q resolved=%q", res.Algorithm, res.ResolvedAlgorithm)
	}
}
