package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sfcp/internal/intsort"
	"sfcp/internal/pram"
)

func newMachine() *pram.Machine { return pram.New(pram.ArbitraryCRCW) }

// refClasses computes dense class labels by direct comparison, ordered to
// match densify (by the algorithm's internal code order is not specified,
// so we compare partitions rather than labels).
func refPartition(flat []int, k, l int) []int {
	classes := make([]int, k)
	var reps [][]int
	for i := 0; i < k; i++ {
		row := flat[i*l : (i+1)*l]
		found := -1
		for ci, rep := range reps {
			same := true
			for t := range row {
				if rep[t] != row[t] {
					same = false
					break
				}
			}
			if same {
				found = ci
				break
			}
		}
		if found == -1 {
			found = len(reps)
			reps = append(reps, row)
		}
		classes[i] = found
	}
	return classes
}

// samePartition checks two labelings induce identical partitions.
func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if v, ok := fwd[a[i]]; ok && v != b[i] {
			return false
		}
		if v, ok := rev[b[i]]; ok && v != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

type method func(m *pram.Machine, labels *pram.Array, k, l int, strat intsort.Strategy) (*pram.Array, int64)

func methods(l int) map[string]method {
	ms := map[string]method{
		"pairing":  PairingPRAM,
		"allpairs": AllPairsPRAM,
	}
	if l > 0 && l&(l-1) == 0 {
		ms["bbtable"] = BBTablePRAM
	}
	return ms
}

func checkAll(t *testing.T, flat []int, k, l int) {
	t.Helper()
	want := refPartition(flat, k, l)
	wantClasses := 0
	for _, c := range want {
		if c+1 > wantClasses {
			wantClasses = c + 1
		}
	}
	for name, fn := range methods(l) {
		m := newMachine()
		labels := m.NewArrayFromInts(flat)
		classOf, num := fn(m, labels, k, l, intsort.Modeled)
		if int(num) != wantClasses {
			t.Fatalf("%s k=%d l=%d: numClasses = %d, want %d (flat=%v)", name, k, l, num, wantClasses, flat)
		}
		if !samePartition(classOf.Ints(), want) {
			t.Fatalf("%s k=%d l=%d: classes %v not equivalent to %v (flat=%v)", name, k, l, classOf.Ints(), want, flat)
		}
		// Labels must be dense in [0, num).
		for _, c := range classOf.Ints() {
			if c < 0 || int64(c) >= num {
				t.Fatalf("%s: label %d not dense in [0,%d)", name, c, num)
			}
		}
	}
}

func TestPartitionSmall(t *testing.T) {
	cases := []struct {
		flat []int
		k, l int
	}{
		{[]int{1, 2, 1, 2}, 2, 2}, // identical
		{[]int{1, 2, 2, 1}, 2, 2}, // distinct
		{[]int{5}, 1, 1},          // single
		{[]int{1, 1, 2}, 3, 1},    // unit strings
		{[]int{1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 5}, 3, 4},
		{[]int{0, 0, 0, 0, 0, 0}, 3, 2}, // all same
		{[]int{7, 7, 7}, 1, 3},          // one string
	}
	for _, tc := range cases {
		checkAll(t, tc.flat, tc.k, tc.l)
	}
}

func TestPartitionPaperExample31(t *testing.T) {
	// Example 3.1: cycles C and D both have smallest repeating prefix
	// equivalent to (1,2,1,3); after rotation to the m.s.p. both canonical
	// strings are (1,2,1,3), so the two cycles are equivalent.
	flat := []int{1, 2, 1, 3, 1, 2, 1, 3}
	checkAll(t, flat, 2, 4)
	m := newMachine()
	labels := m.NewArrayFromInts(flat)
	_, num := PairingPRAM(m, labels, 2, 4, intsort.Modeled)
	if num != 1 {
		t.Fatalf("cycles C and D must be equivalent; got %d classes", num)
	}
}

func TestPartitionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 80; trial++ {
		k := 1 + rng.Intn(12)
		l := 1 + rng.Intn(9)
		sigma := 1 + rng.Intn(3)
		flat := make([]int, k*l)
		for i := range flat {
			flat[i] = rng.Intn(sigma)
		}
		checkAll(t, flat, k, l)
	}
}

func TestPartitionOddLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, l := range []int{3, 5, 7, 9, 11, 13} {
		k := 6
		flat := make([]int, k*l)
		for i := range flat {
			flat[i] = rng.Intn(2)
		}
		checkAll(t, flat, k, l)
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(raw []uint8, lPick uint8) bool {
		l := int(lPick)%6 + 1
		k := len(raw) / l
		if k == 0 {
			return true
		}
		flat := make([]int, k*l)
		for i := range flat {
			flat[i] = int(raw[i] % 4)
		}
		m := newMachine()
		labels := m.NewArrayFromInts(flat)
		classOf, _ := PairingPRAM(m, labels, k, l, intsort.Modeled)
		return samePartition(classOf.Ints(), refPartition(flat, k, l))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPairingWorkLinearVsAllPairsQuadratic(t *testing.T) {
	// Lemma 3.11: pairing does O(n) work; all-pairs does O(nk). With
	// n fixed and k growing, the gap must widen.
	l := 8
	makeFlat := func(k int) []int {
		rng := rand.New(rand.NewSource(33))
		flat := make([]int, k*l)
		for i := range flat {
			flat[i] = rng.Intn(3)
		}
		return flat
	}
	work := func(fn method, k int) int64 {
		m := newMachine()
		labels := m.NewArrayFromInts(makeFlat(k))
		m.ResetStats()
		fn(m, labels, k, l, intsort.Modeled)
		return m.Stats().Work
	}
	k1, k2 := 64, 512
	growPairing := float64(work(PairingPRAM, k2)) / float64(work(PairingPRAM, k1))
	growAllPairs := float64(work(AllPairsPRAM, k2)) / float64(work(AllPairsPRAM, k1))
	if growAllPairs < 1.5*growPairing {
		t.Errorf("all-pairs growth %.1f should far exceed pairing growth %.1f (quadratic vs linear in k)",
			growAllPairs, growPairing)
	}
}

func TestBBTableRequiresPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	m := newMachine()
	labels := m.NewArrayFromInts([]int{1, 2, 3, 1, 2, 3})
	BBTablePRAM(m, labels, 2, 3, intsort.Modeled)
}

func TestBBTableMemoryQuadratic(t *testing.T) {
	// The E10 ablation claim: the literal BB table allocates Theta(n^2)
	// cells while pairing stays linear.
	flat := make([]int, 32*4)
	for i := range flat {
		flat[i] = i % 3
	}
	mBB := newMachine()
	labelsBB := mBB.NewArrayFromInts(flat)
	BBTablePRAM(mBB, labelsBB, 32, 4, intsort.Modeled)
	cellsBB := mBB.Stats().Cells

	mP := newMachine()
	labelsP := mP.NewArrayFromInts(flat)
	PairingPRAM(mP, labelsP, 32, 4, intsort.Modeled)
	cellsP := mP.Stats().Cells

	if cellsBB < 128*128 {
		t.Errorf("BB table cells = %d, expected at least n^2 = %d", cellsBB, 128*128)
	}
	if cellsP >= cellsBB/4 {
		t.Errorf("pairing cells = %d should be far below BB cells = %d", cellsP, cellsBB)
	}
}

func TestPartitionEmptyK(t *testing.T) {
	m := newMachine()
	labels := m.NewArray(0)
	classOf, num := PairingPRAM(m, labels, 0, 1, intsort.Modeled)
	if classOf.Len() != 0 || num != 0 {
		t.Fatal("k=0 should yield empty classes")
	}
}
