// Package partition groups k equal-length strings (the canonical B-label
// strings of cycles) into equality classes — Algorithm partition of
// JáJá & Ryu §3.2 (Lemma 3.11: O(log n) time, O(n) operations on the
// Arbitrary CRCW PRAM, versus the trivial O(1)-time O(nk)-operation
// all-pairs method).
//
// Three implementations are provided:
//
//   - PairingPRAM: the default. Pairs of adjacent symbols are replaced by
//     unique codes from a concurrent-write dictionary (pram.PairCode, the
//     space-reduced BB table), halving string length per round: O(log l)
//     rounds and O(n) work for any length l.
//   - BBTablePRAM: the literal Algorithm partition with an explicit
//     BB[1..B,1..B] array (power-of-two l only, Theta(B^2) memory) — kept
//     for the E10 memory ablation and as a fidelity witness.
//   - AllPairsPRAM: the trivial baseline, O(1) time and O(nk + k^2) work.
//
// All return dense class labels: classOf[i] == classOf[j] iff strings i and
// j are identical, with labels in [0, numClasses).
package partition

import (
	"sfcp/internal/intsort"
	"sfcp/internal/pram"
)

// validate panics unless labels holds k rows of length l.
func validate(labels *pram.Array, k, l int) {
	if k < 0 || l <= 0 || labels.Len() != k*l {
		panic("partition: labels must hold k strings of length l")
	}
}

// densify converts arbitrary per-string codes into dense class labels
// [0, numClasses) ordered by code value, via one integer sort.
func densify(m *pram.Machine, codes *pram.Array, maxCode int64, strat intsort.Strategy) (*pram.Array, int64) {
	perm := intsort.SortPRAM(m, codes, maxCode, strat)
	return intsort.RankDistinct(m, codes, perm, 0)
}

// PairingPRAM partitions the k strings of length l into equality classes by
// hierarchical pair coding. Symbols must be non-negative.
func PairingPRAM(m *pram.Machine, labels *pram.Array, k, l int, strat intsort.Strategy) (classOf *pram.Array, numClasses int64) {
	validate(labels, k, l)
	if k == 0 {
		return m.NewArray(0), 0
	}
	// Shift symbols +1 so 0 is the blank pad for odd tails.
	cur := m.NewArray(k * l)
	m.ParDo(k*l, func(c *pram.Ctx, p int) {
		c.Write(cur, p, c.Read(labels, p)+1)
	})
	lc := l
	for lc > 1 {
		half := (lc + 1) / 2
		a := m.NewArray(k * half)
		b := m.NewArray(k * half)
		m.ParDo(k*half, func(c *pram.Ctx, p int) {
			row, j := p/half, p%half
			c.Write(a, p, c.Read(cur, row*lc+2*j))
			if 2*j+1 < lc {
				c.Write(b, p, c.Read(cur, row*lc+2*j+1))
			} else {
				c.Write(b, p, 0)
			}
		})
		codes := pram.PairCode(m, a, b)
		// Re-shift: codes are >= 0; +1 keeps 0 free as the pad.
		cur = m.NewArray(k * half)
		m.ParDo(k*half, func(c *pram.Ctx, p int) {
			c.Write(cur, p, c.Read(codes, p)+1)
		})
		lc = half
	}
	return densify(m, cur, pram.TableSize(k*((l+1)/2))+1, strat)
}

// BBTablePRAM is the literal Algorithm partition: EQ doubling through an
// explicit two-dimensional table BB[1..B,1..B] written with arbitrary
// concurrent writes. It requires l to be a power of two and allocates
// Theta(B^2) memory where B = max(n, maxLabel+1); use only for modest n.
func BBTablePRAM(m *pram.Machine, labels *pram.Array, k, l int, strat intsort.Strategy) (classOf *pram.Array, numClasses int64) {
	validate(labels, k, l)
	if k == 0 {
		return m.NewArray(0), 0
	}
	if l&(l-1) != 0 {
		panic("partition: BBTablePRAM requires power-of-two cycle length")
	}
	n := k * l
	b := int(pram.ReduceMax(m, labels)) + 1
	if n > b {
		b = n
	}
	bb := m.NewArray(b * b)
	eq := m.NewArray(n)
	pram.Copy(m, eq, labels)
	for span := 1; span < l; span <<= 1 {
		step := 2 * span
		active := n / step // one position per 2*span block per cycle row
		m.ParDo(active, func(c *pram.Ctx, p int) {
			d1 := p * step
			d2 := d1 + span
			c.Write(bb, int(c.Read(eq, d1)*int64(b)+c.Read(eq, d2)), int64(d1))
		})
		m.ParDo(active, func(c *pram.Ctx, p int) {
			d1 := p * step
			d2 := d1 + span
			c.Write(eq, d1, c.Read(bb, int(c.Read(eq, d1)*int64(b)+c.Read(eq, d2))))
		})
	}
	// The starting positions of equivalent cycles now share an EQ label
	// (Corollary 3.10).
	codes := m.NewArray(k)
	m.ParDo(k, func(c *pram.Ctx, p int) {
		c.Write(codes, p, c.Read(eq, p*l))
	})
	return densify(m, codes, int64(b)*int64(b), strat)
}

// AllPairsPRAM is the trivial O(1)-time partition: compare every pair of
// strings at every offset concurrently (O(nk + k^2) operations), then read
// each string's class representative off the equality matrix with the
// constant-time segmented first-one.
func AllPairsPRAM(m *pram.Machine, labels *pram.Array, k, l int, strat intsort.Strategy) (classOf *pram.Array, numClasses int64) {
	validate(labels, k, l)
	if k == 0 {
		return m.NewArray(0), 0
	}
	neq := m.NewArray(k * k)
	pram.Fill(m, neq, 0)
	m.ParDo(k*k*l, func(c *pram.Ctx, p int) {
		t := p % l
		pair := p / l
		i, j := pair/k, pair%k
		if i >= j {
			return
		}
		if c.Read(labels, i*l+t) != c.Read(labels, j*l+t) {
			c.Write(neq, i*k+j, 1)
			c.Write(neq, j*k+i, 1)
		}
	})
	eqFlags := m.NewArray(k * k)
	m.ParDo(k*k, func(c *pram.Ctx, p int) {
		c.Write(eqFlags, p, 1-c.Read(neq, p))
	})
	// Row i's first equal column is its representative (always <= i).
	rep := pram.SegmentedFirstOne(m, eqFlags, k)
	return densify(m, rep, int64(k), strat)
}
