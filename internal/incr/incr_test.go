package incr

import (
	"math/rand"
	"testing"

	"sfcp/internal/coarsest"
	"sfcp/internal/workload"
)

// families are the workload shapes the differential suite sweeps; sizes
// stay small so each shape runs many delta rounds.
func families() map[string]coarsest.Instance {
	toIns := func(w workload.Instance) coarsest.Instance {
		return coarsest.Instance{F: w.F, B: w.B}
	}
	return map[string]coarsest.Instance{
		"random":          toIns(workload.RandomFunction(1, 240, 3)),
		"permutation":     toIns(workload.RandomPermutation(2, 210, 2)),
		"cycles":          toIns(workload.CycleFamily(3, 6, 24, 4)),
		"distinct-cycles": toIns(workload.DistinctCycles(4, 6, 18, 2)),
		"broom":           toIns(workload.Broom(5, 200, 12, 4)),
		"star":            toIns(workload.Star(6, 150, 3)),
		"dfa":             toIns(workload.UnaryDFA(7, 180, 300)),
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomEdits draws a burst of point mutations against an n-element
// instance: mostly retargets and small-label relabels, with occasional
// fresh large labels to churn the persistent B-rename map.
func randomEdits(rng *rand.Rand, n, count int) []Edit {
	edits := make([]Edit, count)
	for i := range edits {
		e := Edit{Node: rng.Intn(n)}
		switch rng.Intn(3) {
		case 0:
			e.SetF, e.F = true, rng.Intn(n)
		case 1:
			e.SetB, e.B = true, rng.Intn(5)
		default:
			e.SetF, e.F = true, rng.Intn(n)
			e.SetB, e.B = true, rng.Intn(1000)
		}
		edits[i] = e
	}
	return edits
}

// mirror applies the same edits to a plain instance copy, the oracle's
// input.
func mirror(ins coarsest.Instance, edits []Edit) {
	for _, e := range edits {
		if e.SetF {
			ins.F[e.Node] = e.F
		}
		if e.SetB {
			ins.B[e.Node] = e.B
		}
	}
}

func cloneIns(ins coarsest.Instance) coarsest.Instance {
	return coarsest.Instance{
		F: append([]int(nil), ins.F...),
		B: append([]int(nil), ins.B...),
	}
}

func TestBuildMatchesFullSolve(t *testing.T) {
	for name, ins := range families() {
		st, err := Build(ins)
		if err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		want := coarsest.LinearSequential(ins)
		if !equalInts(st.Labels(), want) {
			t.Errorf("%s: Build labels differ from full solve", name)
		}
		if st.NumClasses() != coarsest.NumClasses(want) {
			t.Errorf("%s: Build classes = %d, want %d", name, st.NumClasses(), coarsest.NumClasses(want))
		}
	}
}

// TestApplyDeltaMatchesFullSolve is the core differential property: after
// every burst of random edits, the incremental labels are byte-identical
// to a full solve of the edited instance.
func TestApplyDeltaMatchesFullSolve(t *testing.T) {
	for name, base := range families() {
		rng := rand.New(rand.NewSource(42))
		cur := cloneIns(base)
		st, err := Build(cur)
		if err != nil {
			t.Fatalf("%s: Build: %v", name, err)
		}
		n := len(cur.F)
		for round := 0; round < 40; round++ {
			burst := 1 + rng.Intn(4)
			edits := randomEdits(rng, n, burst)
			mirror(cur, edits)
			got, info, err := st.ApplyDelta(edits)
			if err != nil {
				t.Fatalf("%s round %d: ApplyDelta: %v", name, round, err)
			}
			want := coarsest.LinearSequential(cur)
			if !equalInts(got, want) {
				t.Fatalf("%s round %d: incremental labels differ from full solve (dirty %d/%d, rebuilt=%v)",
					name, round, info.DirtyNodes, n, info.Rebuilt)
			}
			if info.NumClasses != coarsest.NumClasses(want) {
				t.Fatalf("%s round %d: classes = %d, want %d", name, round, info.NumClasses, coarsest.NumClasses(want))
			}
			if info.DirtyFrac < 0 || info.DirtyFrac > 1 {
				t.Fatalf("%s round %d: dirty fraction %v out of [0,1]", name, round, info.DirtyFrac)
			}
		}
	}
}

// TestRebuildMatchesFullSolve pins the fallback path to the same oracle.
func TestRebuildMatchesFullSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := workload.RandomFunction(11, 300, 4)
	cur := coarsest.Instance{F: w.F, B: w.B}
	st, err := Build(cur)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		edits := randomEdits(rng, 300, 1+rng.Intn(8))
		mirror(cur, edits)
		got, info, err := st.Rebuild(edits)
		if err != nil {
			t.Fatalf("round %d: Rebuild: %v", round, err)
		}
		if !info.Rebuilt {
			t.Fatalf("round %d: Rebuild did not report Rebuilt", round)
		}
		if want := coarsest.LinearSequential(cur); !equalInts(got, want) {
			t.Fatalf("round %d: Rebuild labels differ from full solve", round)
		}
	}
}

// TestCodeExhaustionValve drives structural churn until the persistent
// code counter passes the rebuild bound, and checks the valve fires and
// the state stays correct afterwards.
func TestCodeExhaustionValve(t *testing.T) {
	// A chain (deep tree onto a self-loop) where every B relabel to a
	// fresh value mints fresh pair codes down the whole suffix.
	const n = 48
	f := make([]int, n)
	b := make([]int, n)
	for i := 1; i < n; i++ {
		f[i] = i - 1
	}
	cur := coarsest.Instance{F: f, B: b}
	st, err := Build(cur)
	if err != nil {
		t.Fatal(err)
	}
	fresh := 1000
	rebuilt := false
	for round := 0; round < 200 && !rebuilt; round++ {
		fresh++
		edits := []Edit{{Node: n / 2, SetB: true, B: fresh}}
		mirror(cur, edits)
		got, info, err := st.ApplyDelta(edits)
		if err != nil {
			t.Fatal(err)
		}
		if want := coarsest.LinearSequential(cur); !equalInts(got, want) {
			t.Fatalf("round %d: labels diverged (rebuilt=%v)", round, info.Rebuilt)
		}
		rebuilt = rebuilt || info.Rebuilt
	}
	if !rebuilt {
		t.Fatalf("valve never fired: nextCode=%d bound=%d", st.nextCode, codeSlack*n)
	}
	// The state remains usable and correct after the rebuild.
	edits := []Edit{{Node: 3, SetF: true, F: 40}}
	mirror(cur, edits)
	got, _, err := st.ApplyDelta(edits)
	if err != nil {
		t.Fatal(err)
	}
	if want := coarsest.LinearSequential(cur); !equalInts(got, want) {
		t.Fatal("labels diverged after valve rebuild")
	}
}

// TestCrossComponentRetarget splits and merges components explicitly:
// retargeting an edge into another component must dirty both and keep
// membership bookkeeping exact (later edits to migrated nodes still
// resolve correct dirty sets).
func TestCrossComponentRetarget(t *testing.T) {
	// Two disjoint 8-cycles, each with a 4-chain hanging off node 0.
	mk := func() coarsest.Instance {
		n := 24
		f := make([]int, n)
		b := make([]int, n)
		for c := 0; c < 2; c++ {
			base := c * 12
			for i := 0; i < 8; i++ {
				f[base+i] = base + (i+1)%8
				b[base+i] = i % 2
			}
			prev := base
			for i := 8; i < 12; i++ {
				f[base+i] = prev
				b[base+i] = i % 3
				prev = base + i
			}
		}
		return coarsest.Instance{F: f, B: b}
	}
	cur := mk()
	st, err := Build(cur)
	if err != nil {
		t.Fatal(err)
	}
	steps := [][]Edit{
		// Graft component 0's chain tip onto component 1's cycle.
		{{Node: 11, SetF: true, F: 14}},
		// Edit a migrated node: its current component is the merged one.
		{{Node: 11, SetB: true, B: 9}},
		// Break component 1's cycle into a tree onto component 0.
		{{Node: 14, SetF: true, F: 0}},
		// Relabel inside what used to be component 1.
		{{Node: 17, SetB: true, B: 7}},
		// Re-close a small cycle among migrated nodes.
		{{Node: 16, SetF: true, F: 14}},
	}
	for i, edits := range steps {
		mirror(cur, edits)
		got, _, err := st.ApplyDelta(edits)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if want := coarsest.LinearSequential(cur); !equalInts(got, want) {
			t.Fatalf("step %d: labels differ from full solve", i)
		}
	}
}

func TestDirtyStats(t *testing.T) {
	// Two disjoint 4-cycles.
	cur := coarsest.Instance{
		F: []int{1, 2, 3, 0, 5, 6, 7, 4},
		B: []int{0, 1, 0, 1, 0, 0, 1, 1},
	}
	st, err := Build(cur)
	if err != nil {
		t.Fatal(err)
	}
	nodes, comps, err := st.DirtyStats([]Edit{{Node: 1, SetB: true, B: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if nodes != 4 || comps != 1 {
		t.Fatalf("B edit: dirty = (%d nodes, %d comps), want (4, 1)", nodes, comps)
	}
	nodes, comps, err = st.DirtyStats([]Edit{{Node: 1, SetF: true, F: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if nodes != 8 || comps != 2 {
		t.Fatalf("cross retarget: dirty = (%d nodes, %d comps), want (8, 2)", nodes, comps)
	}
	// DirtyStats must not mutate.
	if got, want := st.Labels(), coarsest.LinearSequential(cur); !equalInts(got, want) {
		t.Fatal("DirtyStats mutated the state")
	}
}

func TestEditValidation(t *testing.T) {
	st, err := Build(coarsest.Instance{F: []int{0, 0}, B: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]Edit{
		{{Node: -1, SetB: true, B: 0}},
		{{Node: 2, SetB: true, B: 0}},
		{{Node: 0}},
		{{Node: 0, SetF: true, F: 2}},
		{{Node: 0, SetF: true, F: -1}},
		{{Node: 0, SetB: true, B: -3}},
	}
	for i, edits := range bad {
		if _, _, err := st.ApplyDelta(edits); err == nil {
			t.Errorf("case %d: ApplyDelta accepted invalid edit %+v", i, edits[0])
		}
		if _, _, err := st.DirtyStats(edits); err == nil {
			t.Errorf("case %d: DirtyStats accepted invalid edit %+v", i, edits[0])
		}
	}
}

func TestEmptyDeltaAndEmptyInstance(t *testing.T) {
	st, err := Build(coarsest.Instance{F: []int{}, B: []int{}})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Labels(); got == nil || len(got) != 0 {
		t.Fatalf("empty instance labels = %v, want []", got)
	}
	w := workload.RandomFunction(3, 50, 2)
	st2, err := Build(coarsest.Instance{F: w.F, B: w.B})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int(nil), st2.Labels()...)
	got, info, err := st2.ApplyDelta(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(got, before) || info.DirtyNodes != 0 {
		t.Fatal("empty delta changed labels or reported dirty work")
	}
}

func TestSnapshotTracksEdits(t *testing.T) {
	w := workload.RandomFunction(9, 40, 3)
	cur := coarsest.Instance{F: w.F, B: w.B}
	st, err := Build(cur)
	if err != nil {
		t.Fatal(err)
	}
	edits := []Edit{{Node: 5, SetF: true, F: 7}, {Node: 6, SetB: true, B: 9}}
	mirror(cur, edits)
	if _, _, err := st.ApplyDelta(edits); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if !equalInts(snap.F, cur.F) || !equalInts(snap.B, cur.B) {
		t.Fatal("Snapshot does not reflect applied edits")
	}
	// The snapshot is a copy: mutating it must not corrupt the state.
	snap.F[0] = (snap.F[0] + 1) % len(snap.F)
	if got := st.Snapshot(); !equalInts(got.F, cur.F) {
		t.Fatal("Snapshot aliases internal state")
	}
}

// TestDeterminism: identical build + delta sequences yield identical
// labels (the renumber canonicalizes away map iteration order).
func TestDeterminism(t *testing.T) {
	run := func() [][]int {
		rng := rand.New(rand.NewSource(77))
		w := workload.RandomFunction(13, 200, 3)
		cur := coarsest.Instance{F: append([]int(nil), w.F...), B: append([]int(nil), w.B...)}
		st, err := Build(cur)
		if err != nil {
			t.Fatal(err)
		}
		var all [][]int
		for round := 0; round < 15; round++ {
			edits := randomEdits(rng, 200, 1+rng.Intn(3))
			labels, _, err := st.ApplyDelta(edits)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, append([]int(nil), labels...))
		}
		return all
	}
	a, b := run(), run()
	for i := range a {
		if !equalInts(a[i], b[i]) {
			t.Fatalf("round %d: non-deterministic labels", i)
		}
	}
}
