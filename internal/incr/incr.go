// Package incr implements incremental re-solve for the single-function
// coarsest partition problem: a reusable decomposition State built by one
// full solve, plus ApplyDelta, which re-runs the cycle/tree machinery of
// the linear algorithm only on the components a batch of edits
// invalidates and splices the refreshed labels into the previous result
// under the canonical first-occurrence renumbering — so every version's
// labels are byte-identical to a full solve of the edited instance.
//
// Why component-scoped recompute is sound: a node's Q-label is a function
// of its forward orbit's B-signature (Lemma 2.1), and the orbit of a node
// outside the edited components never meets an edited node — components
// partition the pseudo-forest and orbits stay inside their component. So
// only the components containing edited nodes can change. The dirty
// region is widened to also include the components of the edits' new
// F-targets, which makes it closed under the edited function (every
// unedited edge stays inside its old component; every edited edge lands
// in an included component). Closure means the recompute needs no
// boundary handling at all: it is the full four-step decomposition run on
// the region as a standalone sub-pseudo-forest.
//
// Why spliced labels stay globally consistent: equivalence classes span
// components (two cycles in different components can share a canonical
// string; two trees can share pair structure), so the recompute codes
// through persistent injective maps — canonical cycle string -> class,
// (class, offset) -> code, cycle code -> anchor code, B label -> dense
// class, (parent code, B class) -> code — that retain every assignment
// ever made. A recomputed node whose structure matches a clean node's
// reaches the same map entry and gets the same code; a genuinely new
// structure gets a fresh code from the shared counter, so codes stay
// injective across the clean/dirty boundary. Recomputation is therefore
// idempotent on unchanged nodes, and one O(n) first-occurrence renumber
// of the raw codes reproduces exactly the canonical labels a full solve
// emits. Stale entries (structures that no longer occur) waste code
// space but never correctness; a rebuild valve re-founds the state when
// the counter outgrows codeSlack*n.
package incr

import (
	"fmt"

	"sfcp/internal/circ"
	"sfcp/internal/coarsest"
)

// Edit is one point mutation: retarget F[Node] and/or relabel B[Node].
// SetF/SetB say which halves apply; an edit setting neither is rejected.
type Edit struct {
	Node int  `json:"node"`
	F    int  `json:"f,omitempty"`
	B    int  `json:"b,omitempty"`
	SetF bool `json:"set_f,omitempty"`
	SetB bool `json:"set_b,omitempty"`
}

// Info reports what one delta application did.
type Info struct {
	// DirtyComponents and DirtyNodes size the invalidated region under
	// the pre-edit decomposition.
	DirtyComponents int
	DirtyNodes      int
	// DirtyFrac is DirtyNodes / n.
	DirtyFrac float64
	// Rebuilt reports that the call re-founded the whole state (the
	// Rebuild path, or ApplyDelta's code-exhaustion valve) instead of
	// recomputing only the dirty region.
	Rebuilt bool
	// NumClasses is the class count of the refreshed labeling.
	NumClasses int
}

// codeSlack bounds persistent code-space growth: a full solve needs at
// most 2n codes, and stale entries from superseded structures accumulate
// across deltas, so once the counter passes codeSlack*n the state is
// re-founded by a full rebuild (resetting it to <= 2n live codes).
const codeSlack = 4

// State is the reusable decomposition of one instance. It owns private
// copies of F and B and mutates them as deltas apply. Not safe for
// concurrent use; callers serialize access per state.
type State struct {
	f, b []int
	n    int

	// True cross-delta state: where each node lives and what it codes to.
	comp      []int         // node -> component leader (a cycle node)
	raw       []int         // node -> persistent dense Q-code (0-based)
	compNodes map[int][]int // leader -> member nodes

	// Persistent coder: injective structure -> code maps shared across
	// components and deltas (see package comment).
	canonCls  map[string]int // canonical cycle string -> class
	classBase []int          // class -> first slot in codeArr
	codeArr   []int          // class base + offset -> code+1 (0 unassigned)
	anchor    map[int]int    // cycle code -> anchor code (1-based)
	bRename   map[int]int    // B label -> dense class
	pairCodes map[int64]int  // parentCode<<32 | bclass -> code (1-based)
	nextCode  int

	// Epoch-scoped decomposition arrays: values are meaningful only for
	// nodes written during the current solveRegion pass (the region is
	// closed under F, so the pass never consults a stale entry).
	onCycle  []bool
	marked   []bool
	level    []int
	root     []int
	cycleOf  []int
	rankOf   []int
	cycleLen []int
	cycleCls []int
	cycleOff []int
	cyclePer []int
	cycStart []int

	// Epoch stamps avoid O(n) clears between deltas: a slot is "set this
	// pass" iff its stamp matches the current epoch.
	vstamp  []int
	lvstamp []int
	seen    []int
	epoch   int

	// Grown scratch, reused across passes.
	path   []int
	order  []int
	cycSeq []int
	bsBuf  []int
	cnt    []int
	starts []int
	region []int
	key    []byte

	// Renumber scratch: code -> (stamp, id), stamped per renumber pass.
	idStamp []int
	idVal   []int
	renum   int

	labels  []int // current canonical labels (first-occurrence renumbered)
	classes int
}

// Build runs one full solve of ins and returns its reusable
// decomposition state. The instance is copied; later edits to the
// caller's slices do not affect the state.
func Build(ins coarsest.Instance) (*State, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	s := &State{
		f: append([]int(nil), ins.F...),
		b: append([]int(nil), ins.B...),
	}
	s.init()
	return s, nil
}

// N returns the instance size.
func (s *State) N() int { return s.n }

// Labels returns the current canonical labels. The slice is owned by the
// state and overwritten by the next delta; callers that retain it must
// copy.
func (s *State) Labels() []int { return s.labels }

// NumClasses returns the current class count.
func (s *State) NumClasses() int { return s.classes }

// Snapshot returns a copy of the current (post-edit) instance.
func (s *State) Snapshot() coarsest.Instance {
	return coarsest.Instance{
		F: append([]int(nil), s.f...),
		B: append([]int(nil), s.b...),
	}
}

// DirtyStats sizes the region a delta would invalidate — the components
// of the edited nodes and of their new F-targets, under the current
// decomposition — without applying it. This is the planner's input for
// choosing between ApplyDelta and Rebuild.
func (s *State) DirtyStats(edits []Edit) (nodes, comps int, err error) {
	if err := s.validateEdits(edits); err != nil {
		return 0, 0, err
	}
	leaders := s.dirtyLeaders(edits)
	for l := range leaders {
		nodes += len(s.compNodes[l])
	}
	return nodes, len(leaders), nil
}

// ApplyDelta applies the edits and recomputes labels by re-running the
// decomposition on the dirty region only. Output labels are
// byte-identical to a full solve of the edited instance. The state's
// persistent code space grows with structural churn; when it passes
// codeSlack*n the call transparently rebuilds instead (Info.Rebuilt).
// The returned slice is owned by the state (see Labels).
func (s *State) ApplyDelta(edits []Edit) ([]int, Info, error) {
	if err := s.validateEdits(edits); err != nil {
		return nil, Info{}, err
	}
	if len(edits) == 0 {
		return s.labels, Info{NumClasses: s.classes}, nil
	}
	leaders := s.dirtyLeaders(edits)
	info := Info{DirtyComponents: len(leaders)}
	for l := range leaders {
		info.DirtyNodes += len(s.compNodes[l])
	}
	info.DirtyFrac = float64(info.DirtyNodes) / float64(s.n)

	s.applyEdits(edits)

	if s.nextCode > codeSlack*s.n {
		s.init()
		info.Rebuilt = true
		info.NumClasses = s.classes
		return s.labels, info, nil
	}

	region := s.region[:0]
	for l := range leaders {
		region = append(region, s.compNodes[l]...)
		delete(s.compNodes, l)
	}
	s.region = region
	s.solveRegion(region)
	s.renumber()
	info.NumClasses = s.classes
	return s.labels, info, nil
}

// Rebuild applies the edits and re-founds the whole state with a full
// solve — the planner's fallback when the dirty fraction makes the
// incremental path a loss. The returned slice is owned by the state.
func (s *State) Rebuild(edits []Edit) ([]int, Info, error) {
	if err := s.validateEdits(edits); err != nil {
		return nil, Info{}, err
	}
	leaders := s.dirtyLeaders(edits)
	info := Info{DirtyComponents: len(leaders), Rebuilt: true}
	for l := range leaders {
		info.DirtyNodes += len(s.compNodes[l])
	}
	if s.n > 0 {
		info.DirtyFrac = float64(info.DirtyNodes) / float64(s.n)
	}
	s.applyEdits(edits)
	s.init()
	info.NumClasses = s.classes
	return s.labels, info, nil
}

func (s *State) validateEdits(edits []Edit) error {
	for i, e := range edits {
		if e.Node < 0 || e.Node >= s.n {
			return fmt.Errorf("incr: edit %d: node %d out of range [0,%d)", i, e.Node, s.n)
		}
		if !e.SetF && !e.SetB {
			return fmt.Errorf("incr: edit %d: sets neither F nor B", i)
		}
		if e.SetF && (e.F < 0 || e.F >= s.n) {
			return fmt.Errorf("incr: edit %d: F target %d out of range [0,%d)", i, e.F, s.n)
		}
		if e.SetB && e.B < 0 {
			return fmt.Errorf("incr: edit %d: B label %d negative", i, e.B)
		}
	}
	return nil
}

// dirtyLeaders collects the component leaders a delta invalidates under
// the pre-edit decomposition: the edited nodes' components (which also
// cover the old F-targets — a node and its old target share a component)
// and the new F-targets' components (which closes the region under the
// edited function).
func (s *State) dirtyLeaders(edits []Edit) map[int]struct{} {
	leaders := make(map[int]struct{}, len(edits)*2)
	for _, e := range edits {
		leaders[s.comp[e.Node]] = struct{}{}
		if e.SetF {
			leaders[s.comp[e.F]] = struct{}{}
		}
	}
	return leaders
}

func (s *State) applyEdits(edits []Edit) {
	for _, e := range edits {
		if e.SetF {
			s.f[e.Node] = e.F
		}
		if e.SetB {
			s.b[e.Node] = e.B
		}
	}
}

// init (re)founds the state from the current f/b: fresh coder maps, one
// full-region solve, canonical renumber. Epoch counters are never reset
// — stamps stay monotonic so reused arrays need no clearing.
func (s *State) init() {
	n := len(s.f)
	s.n = n
	s.comp = sized(s.comp, n)
	s.raw = sized(s.raw, n)
	s.level = sized(s.level, n)
	s.root = sized(s.root, n)
	s.cycleOf = sized(s.cycleOf, n)
	s.rankOf = sized(s.rankOf, n)
	s.cycleLen = sized(s.cycleLen, n)
	s.cycleCls = sized(s.cycleCls, n)
	s.cycleOff = sized(s.cycleOff, n)
	s.cyclePer = sized(s.cyclePer, n)
	s.cycStart = sized(s.cycStart, n)
	s.vstamp = sized(s.vstamp, n)
	s.lvstamp = sized(s.lvstamp, n)
	s.seen = sized(s.seen, n)
	s.onCycle = sizedBool(s.onCycle, n)
	s.marked = sizedBool(s.marked, n)

	s.canonCls = make(map[string]int)
	s.classBase = s.classBase[:0]
	s.codeArr = s.codeArr[:0]
	s.anchor = make(map[int]int)
	s.bRename = make(map[int]int)
	s.pairCodes = make(map[int64]int)
	s.nextCode = 0
	s.compNodes = make(map[int][]int, 16)

	all := sized(s.region, n)
	for i := range all {
		all[i] = i
	}
	s.region = all
	s.solveRegion(all)
	s.renumber()
}

// solveRegion runs the four-step linear decomposition on a region that
// is closed under f — either the whole instance (init) or a dirty
// component union (ApplyDelta) — assigning raw codes through the
// persistent coder and refreshing comp/compNodes for the region's nodes.
// The caller must have removed the region's old leaders from compNodes.
// Region nodes must be distinct.
func (s *State) solveRegion(nodes []int) {
	f, b := s.f, s.b
	s.epoch += 2
	ep := s.epoch // vstamp: ep = on current walk, ep+1 = resolved

	// Step 1: cycle detection with visit stamps. Every region node gets
	// an explicit onCycle value this pass.
	path := s.path[:0]
	for _, start := range nodes {
		if s.vstamp[start] >= ep {
			continue
		}
		path = path[:0]
		x := start
		for s.vstamp[x] < ep {
			s.vstamp[x] = ep
			s.onCycle[x] = false
			path = append(path, x)
			x = f[x]
		}
		if s.vstamp[x] == ep {
			for i := len(path) - 1; i >= 0; i-- {
				s.onCycle[path[i]] = true
				if path[i] == x {
					break
				}
			}
		}
		for _, y := range path {
			s.vstamp[y] = ep + 1
		}
	}
	s.path = path[:0]

	// Step 2: canonical form per cycle; Q-codes for cycle nodes through
	// the persistent (class, offset) coder. The leader of a cycle is its
	// first node seen in region order.
	cycSeq := s.cycSeq[:0]
	key := s.key
	for _, start := range nodes {
		if !s.onCycle[start] || s.seen[start] == ep {
			continue
		}
		first := len(cycSeq)
		x := start
		for s.seen[x] != ep {
			s.seen[x] = ep
			cycSeq = append(cycSeq, x)
			x = f[x]
		}
		cyc := cycSeq[first:]
		s.cycStart[start] = first
		bs := s.bsBuf[:0]
		for _, y := range cyc {
			bs = append(bs, b[y])
		}
		s.bsBuf = bs
		p := circ.SmallestRepeatingPrefix(bs)
		prefix := bs[:p]
		msp := circ.BoothMSP(prefix)
		// Varint-encode the rotated prefix into the reusable key buffer;
		// the same B values always produce the same bytes, so classes
		// persist across deltas.
		key = key[:0]
		for i := 0; i < p; i++ {
			v := prefix[(msp+i)%p]
			for v >= 0x80 {
				key = append(key, byte(v)|0x80)
				v >>= 7
			}
			key = append(key, byte(v), 0xff)
		}
		cls, ok := s.canonCls[string(key)]
		if !ok {
			cls = len(s.canonCls)
			s.canonCls[string(key)] = cls
			s.classBase = append(s.classBase, len(s.codeArr))
			for i := 0; i < p; i++ {
				s.codeArr = append(s.codeArr, 0)
			}
		}
		base := s.classBase[cls]
		for i, y := range cyc {
			s.cycleOf[y] = start
			s.rankOf[y] = i
			s.cycleLen[y] = len(cyc)
			s.cycleCls[y] = cls
			s.cyclePer[y] = p
			s.cycleOff[y] = msp
			s.marked[y] = true
			off := ((i-msp)%p + p) % p
			code := s.codeArr[base+off]
			if code == 0 {
				s.nextCode++
				code = s.nextCode
				s.codeArr[base+off] = code
			}
			s.raw[y] = code - 1
		}
	}
	s.cycSeq = cycSeq
	s.key = key

	// Step 3: tree levels, iteratively (deep paths would overflow a
	// recursion stack): walk up to the first node resolved this pass,
	// then unwind.
	maxLevel := 0
	path = s.path[:0]
	for _, start := range nodes {
		x := start
		path = path[:0]
		for !s.onCycle[x] && s.lvstamp[x] != ep {
			path = append(path, x)
			x = f[x]
		}
		var base, r int
		if s.onCycle[x] {
			base, r = 0, x
		} else {
			base, r = s.level[x], s.root[x]
		}
		for i := len(path) - 1; i >= 0; i-- {
			base++
			y := path[i]
			s.level[y] = base
			s.root[y] = r
			s.lvstamp[y] = ep
			if base > maxLevel {
				maxLevel = base
			}
		}
	}
	s.path = path[:0]

	// Counting sort of the region's tree nodes by level.
	nTree := 0
	cnt := sizedZero(s.cnt, maxLevel+2)
	for _, x := range nodes {
		if !s.onCycle[x] {
			cnt[s.level[x]]++
			nTree++
		}
	}
	starts := sized(s.starts, maxLevel+2)
	sum := 0
	for l := 1; l <= maxLevel; l++ {
		starts[l] = sum
		sum += cnt[l]
	}
	starts[maxLevel+1] = sum
	order := sized(s.order, nTree)
	copy(cnt[1:maxLevel+1], starts[1:maxLevel+1]) // reuse cnt as fill cursors
	for _, x := range nodes {
		if !s.onCycle[x] {
			l := s.level[x]
			order[cnt[l]] = x
			cnt[l]++
		}
	}
	s.cnt, s.starts, s.order = cnt, starts, order

	// Step 4: mark tree nodes matching their cycle counterpart
	// (Lemma 4.1) top-down; matches inherit the cycle's (class, offset)
	// code, which step 2 assigned (a cycle covers every offset of its
	// class — possibly in an earlier pass, through the same codeArr).
	for l := 1; l <= maxLevel; l++ {
		for _, x := range order[starts[l]:starts[l+1]] {
			m := false
			if s.marked[f[x]] {
				r := s.root[x]
				k := s.cycleLen[r]
				cr := ((s.rankOf[r]-l)%k + k) % k
				if b[x] == b[cycSeq[s.cycStart[s.cycleOf[r]]+cr]] {
					p := s.cyclePer[r]
					off := ((cr-s.cycleOff[r])%p + p) % p
					m = true
					s.raw[x] = s.codeArr[s.classBase[s.cycleCls[r]]+off] - 1
				}
			}
			s.marked[x] = m
		}
	}

	// Step 5: unmarked nodes top-down with (B class, parent code) pairs
	// (Lemma 4.2). All three coders — B rename, marked-parent anchors,
	// pair codes — are the persistent maps, so structures recomputed
	// here meet the codes their clean twins already hold. Anchor codes
	// keep marked parents (cycle codes) from colliding with unmarked
	// parents (pair codes) in pair-key space.
	for l := 1; l <= maxLevel; l++ {
		for _, x := range order[starts[l]:starts[l+1]] {
			if s.marked[x] {
				continue
			}
			bc, ok := s.bRename[b[x]]
			if !ok {
				bc = len(s.bRename)
				s.bRename[b[x]] = bc
			}
			var parentCode int
			px := f[x]
			if s.marked[px] {
				a, ok := s.anchor[s.raw[px]]
				if !ok {
					s.nextCode++
					a = s.nextCode
					s.anchor[s.raw[px]] = a
				}
				parentCode = a - 1
			} else {
				parentCode = s.raw[px]
			}
			k := int64(parentCode)<<32 | int64(uint32(bc))
			code, ok := s.pairCodes[k]
			if !ok {
				s.nextCode++
				code = s.nextCode
				s.pairCodes[k] = code
			}
			s.raw[x] = code - 1
		}
	}

	// Refresh component membership. Region closure means every region
	// node's cycle is in-region, so its leader was set this pass.
	for _, x := range nodes {
		var leader int
		if s.onCycle[x] {
			leader = s.cycleOf[x]
		} else {
			leader = s.cycleOf[s.root[x]]
		}
		s.comp[x] = leader
		s.compNodes[leader] = append(s.compNodes[leader], x)
	}
}

// renumber converts the persistent raw codes into canonical
// first-occurrence labels — the same normal form every full solver
// emits, which is what makes spliced output byte-identical.
func (s *State) renumber() {
	if cap(s.idStamp) < s.nextCode {
		s.idStamp = make([]int, s.nextCode)
		s.idVal = make([]int, s.nextCode)
	}
	idStamp := s.idStamp[:s.nextCode]
	idVal := s.idVal[:s.nextCode]
	s.renum++
	rn := s.renum
	if s.labels == nil || len(s.labels) != s.n {
		s.labels = make([]int, s.n)
	}
	next := 0
	for i, c := range s.raw {
		if idStamp[c] != rn {
			idStamp[c] = rn
			idVal[c] = next
			next++
		}
		s.labels[i] = idVal[c]
	}
	s.classes = next
}

func sized(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func sizedZero(buf []int, n int) []int {
	buf = sized(buf, n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

func sizedBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}
