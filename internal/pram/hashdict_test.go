package pram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func checkPairCode(t *testing.T, as, bs []int) {
	t.Helper()
	m := New(ArbitraryCRCW)
	a := m.NewArrayFromInts(as)
	b := m.NewArrayFromInts(bs)
	codes := PairCode(m, a, b).Slice()
	seen := map[[2]int]int64{}
	usedBy := map[int64][2]int{}
	for i := range as {
		pair := [2]int{as[i], bs[i]}
		if prev, ok := seen[pair]; ok {
			if codes[i] != prev {
				t.Fatalf("pair %v got codes %d and %d", pair, prev, codes[i])
			}
		} else {
			seen[pair] = codes[i]
			if owner, clash := usedBy[codes[i]]; clash {
				t.Fatalf("distinct pairs %v and %v share code %d", owner, pair, codes[i])
			}
			usedBy[codes[i]] = pair
		}
		if codes[i] < 0 || codes[i] >= TableSize(len(as)) {
			t.Fatalf("code %d out of range [0,%d)", codes[i], TableSize(len(as)))
		}
	}
}

func TestPairCodeBasic(t *testing.T) {
	checkPairCode(t,
		[]int{1, 2, 1, 2, 3, 1},
		[]int{5, 5, 5, 6, 7, 5})
}

func TestPairCodeAllSame(t *testing.T) {
	n := 500
	as := make([]int, n)
	bs := make([]int, n)
	for i := range as {
		as[i] = 7
		bs[i] = 9
	}
	checkPairCode(t, as, bs)
}

func TestPairCodeAllDistinct(t *testing.T) {
	n := 2000
	as := make([]int, n)
	bs := make([]int, n)
	for i := range as {
		as[i] = i
		bs[i] = n - i
	}
	checkPairCode(t, as, bs)
}

func TestPairCodeEmpty(t *testing.T) {
	m := New(ArbitraryCRCW)
	if got := PairCode(m, m.NewArray(0), m.NewArray(0)); got.Len() != 0 {
		t.Fatal("empty PairCode should be empty")
	}
}

func TestPairCodeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(1000)
		vals := 1 + rng.Intn(50)
		as := make([]int, n)
		bs := make([]int, n)
		for i := range as {
			as[i] = rng.Intn(vals)
			bs[i] = rng.Intn(vals)
		}
		checkPairCode(t, as, bs)
	}
}

func TestPairCodeLargeComponents(t *testing.T) {
	checkPairCode(t,
		[]int{1 << 30, 1<<30 - 1, 1 << 30},
		[]int{1<<31 - 1, 0, 1<<31 - 1})
}

func TestPairCodeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		n := len(raw)
		as := make([]int, n)
		bs := make([]int, n)
		for i, v := range raw {
			as[i] = int(v % 64)
			bs[i] = int(v / 64 % 64)
		}
		m := New(ArbitraryCRCW)
		codes := PairCode(m, m.NewArrayFromInts(as), m.NewArrayFromInts(bs)).Slice()
		for i := range as {
			for j := range as {
				same := as[i] == as[j] && bs[i] == bs[j]
				if same != (codes[i] == codes[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPairCodeLinearWorkConstantRounds(t *testing.T) {
	n := 1 << 13
	rng := rand.New(rand.NewSource(14))
	as := make([]int, n)
	bs := make([]int, n)
	for i := range as {
		as[i] = rng.Intn(n)
		bs[i] = rng.Intn(n)
	}
	m := New(ArbitraryCRCW)
	a := m.NewArrayFromInts(as)
	b := m.NewArrayFromInts(bs)
	m.ResetStats()
	PairCode(m, a, b)
	s := m.Stats()
	if s.Rounds > 40 {
		t.Errorf("PairCode rounds = %d, want expected O(1) probing (few dozen)", s.Rounds)
	}
	if s.Work > int64(30*n) {
		t.Errorf("PairCode work = %d, want O(n) = %d", s.Work, 30*n)
	}
}

func TestPairCodeDeterministic(t *testing.T) {
	as := []int{3, 1, 4, 1, 5, 9, 2, 6}
	bs := []int{2, 7, 1, 8, 2, 8, 1, 8}
	run := func(workers int) []int64 {
		m := New(ArbitraryCRCW, WithWorkers(workers))
		return PairCode(m, m.NewArrayFromInts(as), m.NewArrayFromInts(bs)).Slice()
	}
	base := run(1)
	for w := 2; w <= 8; w *= 2 {
		got := run(w)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: codes differ at %d", w, i)
			}
		}
	}
}
