package pram

// Segmented primitives: the input array is viewed as a sequence of
// contiguous segments of equal length segLen; each segment is processed
// independently but within the same parallel steps. These power the
// candidate duels of Algorithm "simple m.s.p.", where every duel must find
// the first mismatching position of two rotations in O(1) time.

// InclusiveScanMax returns prefix with prefix[i] = max(a[0..i]).
// O(log n) rounds, O(n) work.
func InclusiveScanMax(m *Machine, a *Array) *Array {
	n := a.Len()
	out := m.NewArray(n)
	if n == 0 {
		return out
	}
	// Up-sweep of block maxima.
	levels := []*Array{m.NewArray(n)}
	Copy(m, levels[0], a)
	for levels[len(levels)-1].Len() > 1 {
		src := levels[len(levels)-1]
		half := (src.Len() + 1) / 2
		next := m.NewArray(half)
		m.ParDo(half, func(c *Ctx, p int) {
			x := c.Read(src, 2*p)
			if 2*p+1 < src.Len() {
				if y := c.Read(src, 2*p+1); y > x {
					x = y
				}
			}
			c.Write(next, p, x)
		})
		levels = append(levels, next)
	}
	// Down-sweep: pre[i] = max of everything before block i (or MinInt64).
	const negInf = int64(-1) << 62
	pre := m.NewArray(levels[len(levels)-1].Len())
	Fill(m, pre, negInf)
	for k := len(levels) - 2; k >= 0; k-- {
		src := levels[k]
		parentPre := pre
		cur := m.NewArray(src.Len())
		m.ParDo(src.Len(), func(c *Ctx, p int) {
			v := c.Read(parentPre, p/2)
			if p%2 == 1 {
				if x := c.Read(src, p-1); x > v {
					v = x
				}
			}
			c.Write(cur, p, v)
		})
		pre = cur
	}
	m.ParDo(n, func(c *Ctx, p int) {
		v := c.Read(pre, p)
		if x := c.Read(a, p); x > v {
			v = x
		}
		c.Write(out, p, v)
	})
	return out
}

// SegmentedFirstOne treats flags as ⌈len/segLen⌉ contiguous segments of
// length segLen and returns, per segment, the offset (within the segment)
// of its first non-zero flag, or -1 if the segment is all zero. It runs in
// O(1) rounds and O(len) work on the Common CRCW PRAM by applying the
// Fich–Ragde–Wigderson two-level scheme to every segment at once.
func SegmentedFirstOne(m *Machine, flags *Array, segLen int) *Array {
	if segLen <= 0 {
		panic("pram: segLen must be positive")
	}
	n := flags.Len()
	segs := (n + segLen - 1) / segLen
	result := m.NewArray(segs)
	if segs == 0 {
		return result
	}
	s := 1
	for s*s < segLen {
		s++
	}
	nb := (segLen + s - 1) / s

	blockFlag := m.NewArray(segs * nb)
	Fill(m, blockFlag, 0)
	m.ParDo(n, func(c *Ctx, p int) {
		if c.Read(flags, p) != 0 {
			seg, off := p/segLen, p%segLen
			c.Write(blockFlag, seg*nb+off/s, 1)
		}
	})

	notFirstB := m.NewArray(segs * nb)
	Fill(m, notFirstB, 0)
	m.ParDo(segs*nb*nb, func(c *Ctx, p int) {
		seg := p / (nb * nb)
		r := p % (nb * nb)
		i, j := r/nb, r%nb
		if i < j && c.Read(blockFlag, seg*nb+i) != 0 && c.Read(blockFlag, seg*nb+j) != 0 {
			c.Write(notFirstB, seg*nb+j, 1)
		}
	})
	firstBlk := m.NewArray(segs)
	Fill(m, firstBlk, -1)
	m.ParDo(segs*nb, func(c *Ctx, p int) {
		seg, b := p/nb, p%nb
		if c.Read(blockFlag, p) != 0 && c.Read(notFirstB, p) == 0 {
			c.Write(firstBlk, seg, int64(b))
		}
	})

	// Within each winning block, repeat with all-pairs over s positions.
	notFirstP := m.NewArray(segs * s)
	Fill(m, notFirstP, 0)
	m.ParDo(segs*s*s, func(c *Ctx, p int) {
		seg := p / (s * s)
		r := p % (s * s)
		i, j := r/s, r%s
		if i >= j {
			return
		}
		fb := c.Read(firstBlk, seg)
		if fb < 0 {
			return
		}
		lo := seg*segLen + int(fb)*s
		pi, pj := lo+i, lo+j
		if pj >= n || pj >= seg*segLen+segLen {
			return
		}
		if c.Read(flags, pi) != 0 && c.Read(flags, pj) != 0 {
			c.Write(notFirstP, seg*s+j, 1)
		}
	})
	Fill(m, result, -1)
	m.ParDo(segs*s, func(c *Ctx, p int) {
		seg, off := p/s, p%s
		fb := c.Read(firstBlk, seg)
		if fb < 0 {
			return
		}
		pos := seg*segLen + int(fb)*s + off
		if pos >= n || pos >= seg*segLen+segLen {
			return
		}
		if c.Read(flags, pos) != 0 && c.Read(notFirstP, seg*s+off) == 0 {
			c.Write(result, seg, int64(fb)*int64(s)+int64(off))
		}
	})
	return result
}
