package pram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInclusiveScanMax(t *testing.T) {
	cases := [][]int{
		{},
		{5},
		{1, 2, 3},
		{3, 2, 1},
		{-4, -9, -1, -7},
		{2, 9, 1, 9, 0, 12, 3},
	}
	for _, in := range cases {
		m := New(ArbitraryCRCW)
		a := m.NewArrayFromInts(in)
		out := InclusiveScanMax(m, a).Ints()
		best := int(-1) << 62
		for i, v := range in {
			if v > best {
				best = v
			}
			if out[i] != best {
				t.Fatalf("scanmax(%v) = %v, want prefix max %d at %d", in, out, best, i)
			}
		}
	}
}

func TestInclusiveScanMaxProperty(t *testing.T) {
	f := func(in []int32) bool {
		m := New(ArbitraryCRCW)
		a := m.NewArray(len(in))
		for i, v := range in {
			a.SetHost(i, int64(v))
		}
		out := InclusiveScanMax(m, a).Slice()
		best := int64(-1) << 62
		for i, v := range in {
			if int64(v) > best {
				best = int64(v)
			}
			if out[i] != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func segFirstOneRef(flags []int, segLen int) []int {
	segs := (len(flags) + segLen - 1) / segLen
	out := make([]int, segs)
	for s := 0; s < segs; s++ {
		out[s] = -1
		for off := 0; off < segLen && s*segLen+off < len(flags); off++ {
			if flags[s*segLen+off] != 0 {
				out[s] = off
				break
			}
		}
	}
	return out
}

func TestSegmentedFirstOne(t *testing.T) {
	cases := []struct {
		flags  []int
		segLen int
	}{
		{[]int{}, 4},
		{[]int{1}, 1},
		{[]int{0, 1, 0, 0, 1, 0, 0, 0}, 4},
		{[]int{0, 0, 0, 0}, 2},
		{[]int{1, 1, 1, 1, 1}, 2}, // ragged tail
		{[]int{0, 0, 0, 1}, 4},
	}
	for _, tc := range cases {
		m := New(CommonCRCW)
		flags := m.NewArrayFromInts(tc.flags)
		got := SegmentedFirstOne(m, flags, tc.segLen).Ints()
		want := segFirstOneRef(tc.flags, tc.segLen)
		if len(got) != len(want) {
			t.Fatalf("flags=%v segLen=%d: got %v, want %v", tc.flags, tc.segLen, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("flags=%v segLen=%d: got %v, want %v", tc.flags, tc.segLen, got, want)
			}
		}
	}
}

func TestSegmentedFirstOneRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		segLen := 1 + rng.Intn(33)
		n := rng.Intn(5 * segLen)
		flags := make([]int, n)
		for i := range flags {
			if rng.Intn(4) == 0 {
				flags[i] = 1
			}
		}
		m := New(CommonCRCW)
		fa := m.NewArrayFromInts(flags)
		got := SegmentedFirstOne(m, fa, segLen).Ints()
		want := segFirstOneRef(flags, segLen)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("segLen=%d flags=%v: got %v, want %v", segLen, flags, got, want)
			}
		}
	}
}

func TestSegmentedFirstOneConstantRounds(t *testing.T) {
	m := New(CommonCRCW)
	n := 1 << 12
	flags := m.NewArray(n)
	flags.SetHost(n-1, 1)
	m.ResetStats()
	SegmentedFirstOne(m, flags, 64)
	if r := m.Stats().Rounds; r > 12 {
		t.Errorf("SegmentedFirstOne used %d rounds, want O(1)", r)
	}
	if w := m.Stats().Work; w > int64(10*n) {
		t.Errorf("SegmentedFirstOne work = %d, want O(n)", w)
	}
}

func TestSegmentedFirstOneBadSegLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for segLen <= 0")
		}
	}()
	m := New(CommonCRCW)
	SegmentedFirstOne(m, m.NewArray(4), 0)
}
