package pram

// This file provides the standard work-optimal building blocks used by every
// algorithm in the repository: data movement, balanced-tree reductions,
// prefix sums (scan), stream compaction, and the constant-time first-one
// algorithm of Fich, Ragde and Wigderson. All run in O(log n) rounds and
// O(n) work unless stated otherwise; FirstOne runs in O(1) rounds.
//
// The primitives assume concurrent reads are permitted (CREW and stronger).

// Fill sets a[i] = v for all i. One round, O(n) work.
func Fill(m *Machine, a *Array, v int64) {
	m.ParDo(a.Len(), func(c *Ctx, p int) { c.Write(a, p, v) })
}

// Iota sets a[i] = start + i for all i. One round, O(n) work.
func Iota(m *Machine, a *Array, start int64) {
	m.ParDo(a.Len(), func(c *Ctx, p int) { c.Write(a, p, start+int64(p)) })
}

// Copy sets dst[i] = src[i]. One round, O(n) work.
func Copy(m *Machine, dst, src *Array) {
	if dst.Len() != src.Len() {
		panic("pram: Copy length mismatch")
	}
	m.ParDo(src.Len(), func(c *Ctx, p int) { c.Write(dst, p, c.Read(src, p)) })
}

// Gather sets dst[i] = src[idx[i]]. One round, O(n) work.
func Gather(m *Machine, dst, src, idx *Array) {
	if dst.Len() != idx.Len() {
		panic("pram: Gather length mismatch")
	}
	m.ParDo(dst.Len(), func(c *Ctx, p int) {
		c.Write(dst, p, c.Read(src, int(c.Read(idx, p))))
	})
}

// Scatter sets dst[idx[i]] = src[i]. One round, O(n) work. Distinct idx
// values give EREW-style writes; duplicates resolve under the machine model.
func Scatter(m *Machine, dst, src, idx *Array) {
	if src.Len() != idx.Len() {
		panic("pram: Scatter length mismatch")
	}
	m.ParDo(src.Len(), func(c *Ctx, p int) {
		c.Write(dst, int(c.Read(idx, p)), c.Read(src, p))
	})
}

// reduceOp folds a with a binary associative operator via a balanced tree:
// O(log n) rounds, O(n) work.
func reduceOp(m *Machine, a *Array, op func(x, y int64) int64) int64 {
	n := a.Len()
	if n == 0 {
		panic("pram: reduce of empty array")
	}
	cur := m.NewArray(n)
	Copy(m, cur, a)
	for cur.Len() > 1 {
		half := (cur.Len() + 1) / 2
		next := m.NewArray(half)
		src := cur
		m.ParDo(half, func(c *Ctx, p int) {
			x := c.Read(src, 2*p)
			if 2*p+1 < src.Len() {
				x = op(x, c.Read(src, 2*p+1))
			}
			c.Write(next, p, x)
		})
		cur = next
	}
	return cur.At(0)
}

// ReduceSum returns the sum of the array elements.
func ReduceSum(m *Machine, a *Array) int64 {
	return reduceOp(m, a, func(x, y int64) int64 { return x + y })
}

// ReduceMin returns the minimum element.
func ReduceMin(m *Machine, a *Array) int64 {
	return reduceOp(m, a, func(x, y int64) int64 {
		if y < x {
			return y
		}
		return x
	})
}

// ReduceMax returns the maximum element.
func ReduceMax(m *Machine, a *Array) int64 {
	return reduceOp(m, a, func(x, y int64) int64 {
		if y > x {
			return y
		}
		return x
	})
}

// ExclusiveScan returns prefix with prefix[i] = a[0] + ... + a[i-1] and the
// total sum. O(log n) rounds, O(n) work (balanced-tree up/down sweep).
func ExclusiveScan(m *Machine, a *Array) (prefix *Array, total int64) {
	n := a.Len()
	prefix = m.NewArray(n)
	if n == 0 {
		return prefix, 0
	}
	// Up-sweep: levels[k][i] = sum of a block of 2^k consecutive inputs.
	levels := []*Array{m.NewArray(n)}
	Copy(m, levels[0], a)
	for levels[len(levels)-1].Len() > 1 {
		src := levels[len(levels)-1]
		half := (src.Len() + 1) / 2
		next := m.NewArray(half)
		m.ParDo(half, func(c *Ctx, p int) {
			x := c.Read(src, 2*p)
			if 2*p+1 < src.Len() {
				x += c.Read(src, 2*p+1)
			}
			c.Write(next, p, x)
		})
		levels = append(levels, next)
	}
	total = levels[len(levels)-1].At(0)

	// Down-sweep: pre[k][i] = sum of all inputs before block i of level k.
	pre := m.NewArray(levels[len(levels)-1].Len())
	Fill(m, pre, 0)
	for k := len(levels) - 2; k >= 0; k-- {
		src := levels[k]
		parentPre := pre
		cur := m.NewArray(src.Len())
		m.ParDo(src.Len(), func(c *Ctx, p int) {
			v := c.Read(parentPre, p/2)
			if p%2 == 1 {
				v += c.Read(src, p-1)
			}
			c.Write(cur, p, v)
		})
		pre = cur
	}
	Copy(m, prefix, pre)
	return prefix, total
}

// InclusiveScan returns prefix with prefix[i] = a[0] + ... + a[i].
func InclusiveScan(m *Machine, a *Array) (prefix *Array, total int64) {
	ex, tot := ExclusiveScan(m, a)
	prefix = m.NewArray(a.Len())
	m.ParDo(a.Len(), func(c *Ctx, p int) {
		c.Write(prefix, p, c.Read(ex, p)+c.Read(a, p))
	})
	return prefix, tot
}

// Compact returns the elements data[i] with flags[i] != 0, in index order.
// O(log n) rounds, O(n) work.
func Compact(m *Machine, data, flags *Array) *Array {
	if data.Len() != flags.Len() {
		panic("pram: Compact length mismatch")
	}
	boolFlags := m.NewArray(flags.Len())
	m.ParDo(flags.Len(), func(c *Ctx, p int) {
		if c.Read(flags, p) != 0 {
			c.Write(boolFlags, p, 1)
		} else {
			c.Write(boolFlags, p, 0)
		}
	})
	pos, total := ExclusiveScan(m, boolFlags)
	out := m.NewArray(int(total))
	m.ParDo(data.Len(), func(c *Ctx, p int) {
		if c.Read(boolFlags, p) != 0 {
			c.Write(out, int(c.Read(pos, p)), c.Read(data, p))
		}
	})
	return out
}

// CompactIndices returns the indices i with flags[i] != 0, in increasing
// order. O(log n) rounds, O(n) work.
func CompactIndices(m *Machine, flags *Array) *Array {
	idx := m.NewArray(flags.Len())
	Iota(m, idx, 0)
	return Compact(m, idx, flags)
}

// FirstOne returns the least i with flags[i] != 0, or -1 if none, using the
// constant-time linear-work algorithm of Fich, Ragde and Wigderson on the
// Common CRCW PRAM: split into ~sqrt(n) blocks, knock out non-first blocks
// with all-pairs comparisons, then repeat inside the winning block.
func FirstOne(m *Machine, flags *Array) int {
	n := flags.Len()
	if n == 0 {
		return -1
	}
	s := 1
	for s*s < n {
		s++
	}
	nb := (n + s - 1) / s

	blockHasOne := m.NewArray(nb)
	Fill(m, blockHasOne, 0)
	m.ParDo(n, func(c *Ctx, p int) {
		if c.Read(flags, p) != 0 {
			c.Write(blockHasOne, p/s, 1)
		}
	})

	fb := firstOneAllPairs(m, blockHasOne)
	if fb < 0 {
		return -1
	}
	lo := fb * s
	hi := lo + s
	if hi > n {
		hi = n
	}
	block := m.NewArray(hi - lo)
	m.ParDo(hi-lo, func(c *Ctx, p int) { c.Write(block, p, c.Read(flags, lo+p)) })
	fi := firstOneAllPairs(m, block)
	return lo + fi
}

// firstOneAllPairs finds the first set flag with k^2 processors in O(1)
// rounds, where k = len(flags). Used on blocks of size ~sqrt(n) so the work
// stays linear in the original input.
func firstOneAllPairs(m *Machine, flags *Array) int {
	k := flags.Len()
	if k == 0 {
		return -1
	}
	notFirst := m.NewArray(k)
	Fill(m, notFirst, 0)
	m.ParDo(k*k, func(c *Ctx, p int) {
		i, j := p/k, p%k
		if i < j && c.Read(flags, i) != 0 && c.Read(flags, j) != 0 {
			c.Write(notFirst, j, 1)
		}
	})
	result := m.NewArray(1)
	result.SetHost(0, -1)
	m.ParDo(k, func(c *Ctx, p int) {
		if c.Read(flags, p) != 0 && c.Read(notFirst, p) == 0 {
			c.Write(result, 0, int64(p))
		}
	})
	return int(result.At(0))
}
