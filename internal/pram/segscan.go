package pram

// Segmented scans over ragged segments delimited by head flags. These let
// every cycle of the pseudo-forest be processed in the same parallel steps
// even though cycle lengths differ — the batching device behind the
// "for each cycle pardo" loops of JáJá & Ryu's Algorithm cycle node
// labeling. Classic head-flag segmented scan: O(log n) rounds, O(n) work.

// segPair is the (flag, value) element of the segmented-scan monoid.
type segPair struct {
	flag int64
	val  int64
}

// segmentedScan returns the inclusive segmented scan of a under op, where
// heads[i] != 0 marks the first element of each segment. Element i of the
// result is op-fold of a[j..i] with j the last head at or before i.
func segmentedScan(m *Machine, a, heads *Array, op func(x, y int64) int64) *Array {
	n := a.Len()
	if heads.Len() != n {
		panic("pram: segmented scan length mismatch")
	}
	out := m.NewArray(n)
	if n == 0 {
		return out
	}
	// combine implements the segmented monoid: a segment head blocks
	// accumulation from the left.
	combine := func(lf, lv, rf, rv int64) (int64, int64) {
		if rf != 0 {
			return 1, rv
		}
		return lf, op(lv, rv)
	}

	// Up-sweep over (flag, value) blocks.
	type level struct{ flags, vals *Array }
	l0 := level{m.NewArray(n), m.NewArray(n)}
	Copy(m, l0.flags, heads)
	Copy(m, l0.vals, a)
	levels := []level{l0}
	for levels[len(levels)-1].flags.Len() > 1 {
		src := levels[len(levels)-1]
		half := (src.flags.Len() + 1) / 2
		next := level{m.NewArray(half), m.NewArray(half)}
		m.ParDo(half, func(c *Ctx, p int) {
			f, v := c.Read(src.flags, 2*p), c.Read(src.vals, 2*p)
			if 2*p+1 < src.flags.Len() {
				f, v = combine(f, v, c.Read(src.flags, 2*p+1), c.Read(src.vals, 2*p+1))
			}
			c.Write(next.flags, p, f)
			c.Write(next.vals, p, v)
		})
		levels = append(levels, next)
	}

	// Down-sweep: pre[i] = fold of everything in i's block prefix, as a
	// (flag, value) pair; identity = (0, firstValue placeholder handled by
	// validity flags).
	top := levels[len(levels)-1]
	preF := m.NewArray(top.flags.Len())
	preV := m.NewArray(top.flags.Len())
	preOk := m.NewArray(top.flags.Len()) // 0 = identity (nothing before)
	Fill(m, preF, 0)
	Fill(m, preV, 0)
	Fill(m, preOk, 0)
	for k := len(levels) - 2; k >= 0; k-- {
		src := levels[k]
		pf, pv, pok := preF, preV, preOk
		nf := m.NewArray(src.flags.Len())
		nv := m.NewArray(src.flags.Len())
		nok := m.NewArray(src.flags.Len())
		m.ParDo(src.flags.Len(), func(c *Ctx, p int) {
			f, v, ok := c.Read(pf, p/2), c.Read(pv, p/2), c.Read(pok, p/2)
			if p%2 == 1 {
				sf, sv := c.Read(src.flags, p-1), c.Read(src.vals, p-1)
				if ok == 0 {
					f, v, ok = sf, sv, 1
				} else {
					f, v = combine(f, v, sf, sv)
					ok = 1
				}
			}
			c.Write(nf, p, f)
			c.Write(nv, p, v)
			c.Write(nok, p, ok)
		})
		preF, preV, preOk = nf, nv, nok
	}
	m.ParDo(n, func(c *Ctx, p int) {
		f, v := c.Read(heads, p), c.Read(a, p)
		if c.Read(preOk, p) != 0 {
			_, v2 := combine(c.Read(preF, p), c.Read(preV, p), f, v)
			v = v2
		}
		c.Write(out, p, v)
	})
	return out
}

// SegmentedScanSum returns the inclusive per-segment prefix sums.
func SegmentedScanSum(m *Machine, a, heads *Array) *Array {
	return segmentedScan(m, a, heads, func(x, y int64) int64 { return x + y })
}

// SegmentedScanMax returns the inclusive per-segment prefix maxima.
func SegmentedScanMax(m *Machine, a, heads *Array) *Array {
	return segmentedScan(m, a, heads, func(x, y int64) int64 {
		if y > x {
			return y
		}
		return x
	})
}

// SegmentedScanMin returns the inclusive per-segment prefix minima.
func SegmentedScanMin(m *Machine, a, heads *Array) *Array {
	return segmentedScan(m, a, heads, func(x, y int64) int64 {
		if y < x {
			return y
		}
		return x
	})
}
