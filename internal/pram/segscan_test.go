package pram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func segScanRef(a []int, heads []int, op func(x, y int) int) []int {
	out := make([]int, len(a))
	for i := range a {
		if i == 0 || heads[i] != 0 {
			out[i] = a[i]
		} else {
			out[i] = op(out[i-1], a[i])
		}
	}
	return out
}

func runSegScan(t *testing.T, a, heads []int) {
	t.Helper()
	m := New(ArbitraryCRCW)
	av := m.NewArrayFromInts(a)
	hv := m.NewArrayFromInts(heads)

	gotSum := SegmentedScanSum(m, av, hv).Ints()
	wantSum := segScanRef(a, heads, func(x, y int) int { return x + y })
	gotMax := SegmentedScanMax(m, av, hv).Ints()
	wantMax := segScanRef(a, heads, func(x, y int) int {
		if y > x {
			return y
		}
		return x
	})
	gotMin := SegmentedScanMin(m, av, hv).Ints()
	wantMin := segScanRef(a, heads, func(x, y int) int {
		if y < x {
			return y
		}
		return x
	})
	for i := range a {
		if gotSum[i] != wantSum[i] {
			t.Fatalf("sum: a=%v heads=%v got=%v want=%v", a, heads, gotSum, wantSum)
		}
		if gotMax[i] != wantMax[i] {
			t.Fatalf("max: a=%v heads=%v got=%v want=%v", a, heads, gotMax, wantMax)
		}
		if gotMin[i] != wantMin[i] {
			t.Fatalf("min: a=%v heads=%v got=%v want=%v", a, heads, gotMin, wantMin)
		}
	}
}

func TestSegmentedScanSmall(t *testing.T) {
	cases := []struct{ a, heads []int }{
		{[]int{}, []int{}},
		{[]int{5}, []int{1}},
		{[]int{1, 2, 3, 4}, []int{1, 0, 0, 0}},       // one segment
		{[]int{1, 2, 3, 4}, []int{1, 1, 1, 1}},       // all singletons
		{[]int{1, 2, 3, 4, 5}, []int{1, 0, 1, 0, 0}}, // two segments
		{[]int{-3, 7, 0, -1, 2, 2}, []int{1, 0, 0, 1, 0, 1}},
	}
	for _, tc := range cases {
		runSegScan(t, tc.a, tc.heads)
	}
}

func TestSegmentedScanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(200)
		a := make([]int, n)
		heads := make([]int, n)
		heads[0] = 1
		for i := range a {
			a[i] = rng.Intn(41) - 20
			if i > 0 && rng.Intn(5) == 0 {
				heads[i] = 1
			}
		}
		runSegScan(t, a, heads)
	}
}

func TestSegmentedScanProperty(t *testing.T) {
	f := func(raw []int16, headBits []bool) bool {
		n := len(raw)
		a := make([]int, n)
		heads := make([]int, n)
		for i := range a {
			a[i] = int(raw[i])
			if i == 0 || (i < len(headBits) && headBits[i]) {
				heads[i] = 1
			}
		}
		m := New(ArbitraryCRCW)
		av := m.NewArrayFromInts(a)
		hv := m.NewArrayFromInts(heads)
		got := SegmentedScanSum(m, av, hv).Ints()
		want := segScanRef(a, heads, func(x, y int) int { return x + y })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentedScanLinearWork(t *testing.T) {
	n := 1 << 13
	m := New(ArbitraryCRCW)
	a := m.NewArray(n)
	heads := m.NewArray(n)
	Fill(m, a, 1)
	m.ParDo(n, func(c *Ctx, p int) {
		if p%37 == 0 {
			c.Write(heads, p, 1)
		} else {
			c.Write(heads, p, 0)
		}
	})
	m.ResetStats()
	SegmentedScanSum(m, a, heads)
	if w := m.Stats().Work; w > int64(20*n) {
		t.Errorf("segmented scan work = %d, want O(n)", w)
	}
	if r := m.Stats().Rounds; r > 100 {
		t.Errorf("segmented scan rounds = %d, want O(log n)", r)
	}
}
