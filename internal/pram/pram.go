// Package pram implements a deterministic, instrumented simulator of the
// Parallel Random Access Machine in the five classical variants (EREW, CREW,
// and the Common, Arbitrary and Priority CRCW models).
//
// The simulator executes algorithms as a sequence of synchronous steps. A
// step is issued with (*Machine).ParDo: every virtual processor reads shared
// memory as it was at the beginning of the step, computes, and issues writes
// that are buffered and applied at the end of the step under the machine's
// write-conflict rule. This read-phase/write-phase discipline is exactly the
// textbook PRAM step (JáJá, "An Introduction to Parallel Algorithms", §1.3),
// and it makes every execution deterministic and independent of the host
// scheduler, including concurrent-write outcomes in the Arbitrary model
// (the winner is chosen by a seeded pseudo-random rule).
//
// The machine counts rounds (parallel time) and operations (work: the number
// of virtual processors activated, plus explicit charges), which are the two
// quantities all bounds in JáJá & Ryu (TCS 129, 1994) are stated in.
package pram

import (
	"fmt"
	"runtime"
	"sync"
)

// Model selects the memory-access discipline of the machine.
type Model uint8

// The five classical PRAM variants, from weakest to strongest.
const (
	// EREW forbids both concurrent reads and concurrent writes.
	EREW Model = iota
	// CREW allows concurrent reads, forbids concurrent writes.
	CREW
	// CommonCRCW allows concurrent writes only when all writers agree on
	// the value.
	CommonCRCW
	// ArbitraryCRCW lets an arbitrary single writer succeed on conflict.
	// The simulator picks the winner by a seeded hash so runs replay
	// identically, but algorithms must not rely on which writer wins.
	ArbitraryCRCW
	// PriorityCRCW lets the lowest-numbered processor win on conflict.
	PriorityCRCW
)

// String returns the conventional name of the model.
func (m Model) String() string {
	switch m {
	case EREW:
		return "EREW"
	case CREW:
		return "CREW"
	case CommonCRCW:
		return "Common CRCW"
	case ArbitraryCRCW:
		return "Arbitrary CRCW"
	case PriorityCRCW:
		return "Priority CRCW"
	}
	return fmt.Sprintf("Model(%d)", uint8(m))
}

// Stats accumulates the complexity measures of an execution.
type Stats struct {
	// Rounds is the number of synchronous parallel steps executed.
	Rounds int64
	// Work is the total number of operations: one per activated virtual
	// processor per step, plus any explicit Charge calls.
	Work int64
	// MaxProcs is the largest number of virtual processors activated in
	// any single step (the machine size a real PRAM would need).
	MaxProcs int64
	// Reads and Writes count shared-memory accesses.
	Reads, Writes int64
	// Cells is the high-water mark of allocated shared memory words.
	Cells int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Rounds += other.Rounds
	s.Work += other.Work
	if other.MaxProcs > s.MaxProcs {
		s.MaxProcs = other.MaxProcs
	}
	s.Reads += other.Reads
	s.Writes += other.Writes
	if other.Cells > s.Cells {
		s.Cells = other.Cells
	}
}

// Violation describes a memory-access conflict forbidden by the machine
// model. It is reported only when the machine was built WithStrict.
type Violation struct {
	Round int64
	Addr  int
	Kind  string // "concurrent-read", "concurrent-write", "common-value"
}

// Error implements the error interface.
func (v *Violation) Error() string {
	return fmt.Sprintf("pram: %s violation at address %d in round %d", v.Kind, v.Addr, v.Round)
}

// Machine is a simulated PRAM. Create one with New; the zero value is not
// usable. A Machine is safe for use by a single algorithm at a time; the
// internal goroutine pool is managed per step.
type Machine struct {
	model   Model
	seed    uint64
	workers int
	strict  bool
	cancel  func() error

	mem []int64

	stats Stats

	// Write-conflict resolution scratch, sized with mem.
	claimRound []int64 // round+1 when addr was last claimed (0 = never)
	claimKey   []uint64
	claimVal   []int64
	claimProc  []int64

	// Strict-mode read tracking scratch.
	readRound []int64

	touched   []int // addresses written this round
	violation *Violation
}

// Option configures a Machine.
type Option func(*Machine)

// WithSeed fixes the seed used to resolve Arbitrary CRCW write conflicts.
// Different seeds exercise different (but each deterministic) winners.
func WithSeed(seed uint64) Option {
	return func(m *Machine) { m.seed = seed }
}

// WithWorkers sets the number of host goroutines used to execute the virtual
// processors of each step. It defaults to runtime.NumCPU and never changes
// results, only host wall-clock.
func WithWorkers(w int) Option {
	return func(m *Machine) {
		if w > 0 {
			m.workers = w
		}
	}
}

// WithCancel installs a cooperative cancellation check (typically a
// context's Err method), polled once at the start of every synchronous
// step. When the check returns a non-nil error the machine aborts the step
// loop by panicking with a value recognized by Cancelled, so deeply nested
// algorithms unwind without threading an error through every subroutine.
// Callers at the algorithm boundary recover and convert it back to the
// error (see coarsest.ParallelPRAMContext).
func WithCancel(check func() error) Option {
	return func(m *Machine) { m.cancel = check }
}

// cancelPanic carries the cancellation cause through the unwinding stack.
type cancelPanic struct{ err error }

// Cancelled reports whether a recovered panic value marks a step-loop
// cancellation, returning the underlying cause (the cancel check's error).
func Cancelled(r any) (error, bool) {
	if c, ok := r.(cancelPanic); ok {
		return c.err, true
	}
	return nil, false
}

// WithStrict makes the machine detect and report model violations
// (concurrent reads on EREW, concurrent writes on EREW/CREW, disagreeing
// concurrent writes on Common CRCW). Violations surface via Err and also
// panic at the end of the offending step, since continuing would compute
// under a stronger model than requested.
func WithStrict() Option {
	return func(m *Machine) { m.strict = true }
}

// New returns a machine of the given model with no allocated memory.
func New(model Model, opts ...Option) *Machine {
	m := &Machine{
		model:   model,
		seed:    0x9e3779b97f4a7c15,
		workers: runtime.NumCPU(),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Model reports the machine's memory-access model.
func (m *Machine) Model() Model { return m.model }

// Stats returns the accumulated complexity counters.
func (m *Machine) Stats() Stats { return m.stats }

// ResetStats zeroes the complexity counters (memory contents are kept).
func (m *Machine) ResetStats() { m.stats = Stats{}; m.stats.Cells = int64(len(m.mem)) }

// ChargeModel adds rounds and work to the counters without executing steps.
// It is the escape hatch for subroutines that the simulator replaces with a
// host-side computation plus the published cost of the cited algorithm
// (e.g. the Bhatt et al. integer sorter used as a black box by JáJá & Ryu).
// Every use is documented in DESIGN.md.
func (m *Machine) ChargeModel(rounds, work int64) {
	m.stats.Rounds += rounds
	m.stats.Work += work
}

// Err returns the first model violation detected in strict mode, or nil.
func (m *Machine) Err() error {
	if m.violation == nil {
		return nil
	}
	return m.violation
}

// Array is a handle to a contiguous block of shared memory words.
type Array struct {
	m   *Machine
	off int
	n   int
}

// NewArray allocates n shared-memory words initialised to zero.
func (m *Machine) NewArray(n int) *Array {
	if n < 0 {
		panic("pram: negative array length")
	}
	off := len(m.mem)
	m.mem = append(m.mem, make([]int64, n)...)
	m.claimRound = append(m.claimRound, make([]int64, n)...)
	m.claimKey = append(m.claimKey, make([]uint64, n)...)
	m.claimVal = append(m.claimVal, make([]int64, n)...)
	m.claimProc = append(m.claimProc, make([]int64, n)...)
	if m.strict {
		m.readRound = append(m.readRound, make([]int64, n)...)
	}
	if c := int64(len(m.mem)); c > m.stats.Cells {
		m.stats.Cells = c
	}
	return &Array{m: m, off: off, n: n}
}

// NewArrayFrom allocates an array holding a copy of src. The copy is a host
// operation and is not charged to the machine; use it to load inputs.
func (m *Machine) NewArrayFrom(src []int64) *Array {
	a := m.NewArray(len(src))
	copy(m.mem[a.off:a.off+a.n], src)
	return a
}

// NewArrayFromInts is NewArrayFrom for int slices.
func (m *Machine) NewArrayFromInts(src []int) *Array {
	a := m.NewArray(len(src))
	dst := m.mem[a.off : a.off+a.n]
	for i, v := range src {
		dst[i] = int64(v)
	}
	return a
}

// Len returns the number of words in the array.
func (a *Array) Len() int { return a.n }

// Slice returns a host-side copy of the array contents. Not charged; use it
// to extract outputs.
func (a *Array) Slice() []int64 {
	out := make([]int64, a.n)
	copy(out, a.m.mem[a.off:a.off+a.n])
	return out
}

// Ints returns a host-side copy of the array contents as ints.
func (a *Array) Ints() []int {
	out := make([]int, a.n)
	for i, v := range a.m.mem[a.off : a.off+a.n] {
		out[i] = int(v)
	}
	return out
}

// Load copies src into the array outside any step (host operation, uncharged).
func (a *Array) Load(src []int64) {
	if len(src) != a.n {
		panic("pram: Load length mismatch")
	}
	copy(a.m.mem[a.off:a.off+a.n], src)
}

// At reads a single word outside any step (host operation, uncharged). It is
// intended for extracting scalar results between steps.
func (a *Array) At(i int) int64 {
	a.boundsCheck(i)
	return a.m.mem[a.off+i]
}

// SetHost writes a single word outside any step (host operation, uncharged).
// It is intended for loading scalar parameters between steps.
func (a *Array) SetHost(i int, v int64) {
	a.boundsCheck(i)
	a.m.mem[a.off+i] = v
}

func (a *Array) boundsCheck(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("pram: index %d out of range [0,%d)", i, a.n))
	}
}

// Ctx is the view a single virtual processor has of the machine during one
// step. Reads observe the memory as of the beginning of the step; writes are
// buffered and applied when the step ends.
type Ctx struct {
	proc  int
	w     *stepWorker
	reads int64
}

// Proc returns the index of this virtual processor within the current step.
func (c *Ctx) Proc() int { return c.proc }

// Read returns a[i] as of the beginning of the current step.
func (c *Ctx) Read(a *Array, i int) int64 {
	a.boundsCheck(i)
	c.reads++
	addr := a.off + i
	if c.w.m.strict && c.w.m.model == EREW {
		c.w.readAddrs = append(c.w.readAddrs, addr)
	}
	return c.w.m.mem[addr]
}

// Write schedules a[i] = v at the end of the current step, subject to the
// machine's write-conflict rule.
func (c *Ctx) Write(a *Array, i int, v int64) {
	a.boundsCheck(i)
	c.w.writes = append(c.w.writes, writeRec{addr: a.off + i, val: v, proc: int64(c.proc)})
}

// Charge adds ops extra units of work to the current step, for processor
// programs whose local computation exceeds O(1).
func (c *Ctx) Charge(ops int64) {
	c.w.charge += ops
}

type writeRec struct {
	addr int
	val  int64
	proc int64
}

type stepWorker struct {
	m         *Machine
	writes    []writeRec
	readAddrs []int
	charge    int64
	reads     int64
}

var workerPool = sync.Pool{New: func() any { return &stepWorker{} }}

// splitmix64 provides the deterministic tie-break keys for Arbitrary CRCW.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ParDo executes one synchronous step with nprocs virtual processors, p
// ranging over [0, nprocs). It charges one round and nprocs operations
// (plus explicit charges). nprocs == 0 is a no-op that charges nothing.
func (m *Machine) ParDo(nprocs int, body func(c *Ctx, p int)) {
	if nprocs < 0 {
		panic("pram: negative processor count")
	}
	if nprocs == 0 {
		return
	}
	// The cooperative cancellation point of the step loop: checked on the
	// host goroutine before processors launch, so the panic is recoverable
	// by the algorithm's caller (a panic inside a step worker would not be).
	if m.cancel != nil {
		if err := m.cancel(); err != nil {
			panic(cancelPanic{err: err})
		}
	}
	m.stats.Rounds++
	m.stats.Work += int64(nprocs)
	if int64(nprocs) > m.stats.MaxProcs {
		m.stats.MaxProcs = int64(nprocs)
	}

	nw := m.workers
	if nw > nprocs {
		nw = nprocs
	}
	workers := make([]*stepWorker, nw)
	if nw == 1 {
		w := workerPool.Get().(*stepWorker)
		w.reset(m)
		workers[0] = w
		c := Ctx{w: w}
		for p := 0; p < nprocs; p++ {
			c.proc = p
			body(&c, p)
		}
		w.reads = c.reads
	} else {
		var wg sync.WaitGroup
		chunk := (nprocs + nw - 1) / nw
		for wi := 0; wi < nw; wi++ {
			lo := wi * chunk
			hi := lo + chunk
			if hi > nprocs {
				hi = nprocs
			}
			w := workerPool.Get().(*stepWorker)
			w.reset(m)
			workers[wi] = w
			wg.Add(1)
			go func(w *stepWorker, lo, hi int) {
				defer wg.Done()
				c := Ctx{w: w}
				for p := lo; p < hi; p++ {
					c.proc = p
					body(&c, p)
				}
				w.reads = c.reads
			}(w, lo, hi)
		}
		wg.Wait()
	}

	m.commit(workers)
}

func (w *stepWorker) reset(m *Machine) {
	w.m = m
	w.writes = w.writes[:0]
	w.readAddrs = w.readAddrs[:0]
	w.charge = 0
	w.reads = 0
}

// commit applies buffered writes under the machine's conflict rule. It runs
// on the host after the step barrier; the outcome depends only on the write
// set and the seed, never on goroutine scheduling.
func (m *Machine) commit(workers []*stepWorker) {
	round := m.stats.Rounds
	for _, w := range workers {
		m.stats.Work += w.charge
		m.stats.Reads += w.reads
		if m.strict && m.model == EREW {
			for _, addr := range w.readAddrs {
				if m.readRound[addr] == round {
					m.fail(&Violation{Round: round, Addr: addr, Kind: "concurrent-read"})
				}
				m.readRound[addr] = round
			}
		}
	}
	for _, w := range workers {
		m.stats.Writes += int64(len(w.writes))
		for _, rec := range w.writes {
			if m.claimRound[rec.addr] != round {
				m.claimRound[rec.addr] = round
				m.claimVal[rec.addr] = rec.val
				m.claimProc[rec.addr] = rec.proc
				m.claimKey[rec.addr] = splitmix64(m.seed ^ uint64(round)<<32 ^ uint64(rec.addr)<<1 ^ uint64(rec.proc))
				m.touched = append(m.touched, rec.addr)
				continue
			}
			// Conflict.
			switch m.model {
			case EREW, CREW:
				if m.strict {
					m.fail(&Violation{Round: round, Addr: rec.addr, Kind: "concurrent-write"})
				}
				// Non-strict: fall through to arbitrary resolution.
				key := splitmix64(m.seed ^ uint64(round)<<32 ^ uint64(rec.addr)<<1 ^ uint64(rec.proc))
				if key < m.claimKey[rec.addr] {
					m.claimKey[rec.addr] = key
					m.claimVal[rec.addr] = rec.val
					m.claimProc[rec.addr] = rec.proc
				}
			case CommonCRCW:
				if rec.val != m.claimVal[rec.addr] {
					if m.strict {
						m.fail(&Violation{Round: round, Addr: rec.addr, Kind: "common-value"})
					}
					// Non-strict: keep deterministic arbitrary choice.
					key := splitmix64(m.seed ^ uint64(round)<<32 ^ uint64(rec.addr)<<1 ^ uint64(rec.proc))
					if key < m.claimKey[rec.addr] {
						m.claimKey[rec.addr] = key
						m.claimVal[rec.addr] = rec.val
						m.claimProc[rec.addr] = rec.proc
					}
				}
			case ArbitraryCRCW:
				key := splitmix64(m.seed ^ uint64(round)<<32 ^ uint64(rec.addr)<<1 ^ uint64(rec.proc))
				if key < m.claimKey[rec.addr] {
					m.claimKey[rec.addr] = key
					m.claimVal[rec.addr] = rec.val
					m.claimProc[rec.addr] = rec.proc
				}
			case PriorityCRCW:
				if rec.proc < m.claimProc[rec.addr] {
					m.claimProc[rec.addr] = rec.proc
					m.claimVal[rec.addr] = rec.val
				}
			}
		}
	}
	for _, addr := range m.touched {
		m.mem[addr] = m.claimVal[addr]
	}
	m.touched = m.touched[:0]
	for _, w := range workers {
		workerPool.Put(w)
	}
}

func (m *Machine) fail(v *Violation) {
	if m.violation == nil {
		m.violation = v
	}
	panic(v)
}
