package pram

// Concurrent-write dictionary: the PRAM realization of the BB[1..n, 1..n]
// table of Algorithm partition (JáJá & Ryu §3.2). The paper's table assigns
// a unique representative to every distinct pair (a, b) in O(1) time by
// letting all processors holding that pair write their position into
// BB[a][b] and read back the single arbitrary winner; the Remark notes the
// O(n^2) space can be reduced. PairCode implements the reduction as an
// open-addressing hash table driven entirely by arbitrary concurrent
// writes: each unresolved processor probes a deterministic slot sequence,
// writes its key, reads back the winner, and stops when its own key owns a
// slot. Expected O(1) probe rounds, O(n) work, O(n) cells.

const pairCodeMaxAttempts = 64

// PairCode assigns to every index i a code such that codes[i] == codes[j]
// iff (a[i], b[i]) == (a[j], b[j]). Codes are slot indices in the internal
// table, so they lie in [0, TableSize(n)) and are NOT dense; use
// RankDistinct-style renaming when density matters. Components must be
// non-negative and fit in 31 bits.
func PairCode(m *Machine, a, b *Array) *Array {
	if a.Len() != b.Len() {
		panic("pram: PairCode length mismatch")
	}
	n := a.Len()
	codes := m.NewArray(n)
	if n == 0 {
		return codes
	}
	size := tableSizeFor(n)

	// Slots hold key+1 (0 = empty). Keys pack the pair into one word.
	slots := m.NewArray(size)
	Fill(m, slots, 0)
	keys := m.NewArray(n)
	m.ParDo(n, func(c *Ctx, p int) {
		x, y := c.Read(a, p), c.Read(b, p)
		if x < 0 || y < 0 || x >= 1<<31 || y >= 1<<31 {
			panic("pram: PairCode component out of range")
		}
		c.Write(keys, p, x<<31|y)
	})
	Fill(m, codes, -1)

	// active[p] = current probe attempt, or -1 when resolved.
	attempt := m.NewArray(n)
	Fill(m, attempt, 0)
	for round := 0; round < pairCodeMaxAttempts; round++ {
		// Write phase: every unresolved processor claims its slot if it is
		// still empty (slots are write-once so earlier owners are safe).
		m.ParDo(n, func(c *Ctx, p int) {
			at := c.Read(attempt, p)
			if at < 0 {
				return
			}
			key := c.Read(keys, p)
			slot := probeSlot(key, at, size)
			if c.Read(slots, slot) == 0 {
				c.Write(slots, slot, key+1)
			}
		})
		// Read phase: check ownership; same-key processors always agree.
		unresolved := m.NewArray(1)
		m.ParDo(n, func(c *Ctx, p int) {
			at := c.Read(attempt, p)
			if at < 0 {
				return
			}
			key := c.Read(keys, p)
			slot := probeSlot(key, at, size)
			if c.Read(slots, slot) == key+1 {
				c.Write(codes, p, int64(slot))
				c.Write(attempt, p, -1)
				return
			}
			c.Write(attempt, p, at+1)
			c.Write(unresolved, 0, 1)
		})
		if unresolved.At(0) == 0 {
			return codes
		}
	}
	panic("pram: PairCode failed to place all pairs (table too loaded)")
}

// TableSize reports the code upper bound PairCode uses for n pairs.
func TableSize(n int) int64 { return int64(tableSizeFor(n)) }

func tableSizeFor(n int) int {
	size := 16
	for size < 4*n {
		size <<= 1
	}
	return size
}

func probeSlot(key int64, attempt int64, size int) int {
	h := splitmix64(uint64(key)*0x9e3779b97f4a7c15 + uint64(attempt)*0xda942042e4dd58b5)
	return int(h & uint64(size-1))
}
