package pram

import (
	"testing"
	"testing/quick"
)

func TestParDoBasicWrite(t *testing.T) {
	m := New(ArbitraryCRCW)
	a := m.NewArray(10)
	m.ParDo(10, func(c *Ctx, p int) { c.Write(a, p, int64(p*p)) })
	for i, v := range a.Ints() {
		if v != i*i {
			t.Fatalf("a[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestParDoSnapshotReads(t *testing.T) {
	// Within a step every processor must read the pre-step value, so a
	// parallel shift does not cascade.
	m := New(ArbitraryCRCW)
	a := m.NewArrayFromInts([]int{1, 2, 3, 4, 5})
	m.ParDo(4, func(c *Ctx, p int) { c.Write(a, p, c.Read(a, p+1)) })
	got := a.Ints()
	want := []int{2, 3, 4, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after shift a = %v, want %v", got, want)
		}
	}
}

func TestParDoZeroProcs(t *testing.T) {
	m := New(ArbitraryCRCW)
	m.ParDo(0, func(c *Ctx, p int) { t.Fatal("body must not run") })
	if s := m.Stats(); s.Rounds != 0 || s.Work != 0 {
		t.Fatalf("zero-proc step charged rounds=%d work=%d", s.Rounds, s.Work)
	}
}

func TestStatsAccounting(t *testing.T) {
	m := New(ArbitraryCRCW)
	a := m.NewArray(8)
	m.ParDo(8, func(c *Ctx, p int) { c.Write(a, p, 1) })
	m.ParDo(4, func(c *Ctx, p int) { _ = c.Read(a, p); c.Charge(3) })
	s := m.Stats()
	if s.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", s.Rounds)
	}
	if s.Work != 8+4+4*3 {
		t.Errorf("Work = %d, want %d", s.Work, 8+4+12)
	}
	if s.MaxProcs != 8 {
		t.Errorf("MaxProcs = %d, want 8", s.MaxProcs)
	}
	if s.Writes != 8 {
		t.Errorf("Writes = %d, want 8", s.Writes)
	}
	if s.Reads != 4 {
		t.Errorf("Reads = %d, want 4", s.Reads)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Rounds: 3, Work: 10, MaxProcs: 4, Reads: 1, Writes: 2, Cells: 100}
	b := Stats{Rounds: 2, Work: 5, MaxProcs: 9, Reads: 3, Writes: 1, Cells: 50}
	a.Add(b)
	if a.Rounds != 5 || a.Work != 15 || a.MaxProcs != 9 || a.Reads != 4 || a.Writes != 3 || a.Cells != 100 {
		t.Fatalf("Stats.Add wrong: %+v", a)
	}
}

func TestArbitraryWriteDeterminism(t *testing.T) {
	run := func(seed uint64, workers int) int64 {
		m := New(ArbitraryCRCW, WithSeed(seed), WithWorkers(workers))
		a := m.NewArray(1)
		m.ParDo(64, func(c *Ctx, p int) { c.Write(a, 0, int64(p)) })
		return a.At(0)
	}
	base := run(7, 1)
	for workers := 1; workers <= 8; workers++ {
		if got := run(7, workers); got != base {
			t.Fatalf("workers=%d: winner %d, want %d (schedule-dependent outcome)", workers, got, base)
		}
	}
	// A different seed should usually give a different winner; check it is
	// at least a valid one.
	other := run(99, 4)
	if other < 0 || other >= 64 {
		t.Fatalf("winner %d out of range", other)
	}
}

func TestPriorityWriteLowestProcWins(t *testing.T) {
	m := New(PriorityCRCW)
	a := m.NewArray(1)
	a.SetHost(0, -1)
	m.ParDo(100, func(c *Ctx, p int) {
		if p >= 17 {
			c.Write(a, 0, int64(p))
		}
	})
	if got := a.At(0); got != 17 {
		t.Fatalf("priority winner = %d, want 17", got)
	}
}

func TestCommonWriteAgreement(t *testing.T) {
	m := New(CommonCRCW, WithStrict())
	a := m.NewArray(1)
	m.ParDo(50, func(c *Ctx, p int) { c.Write(a, 0, 42) })
	if got := a.At(0); got != 42 {
		t.Fatalf("common write = %d, want 42", got)
	}
	if err := m.Err(); err != nil {
		t.Fatalf("unexpected violation: %v", err)
	}
}

func TestCommonWriteDisagreementStrict(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on disagreeing common write")
		}
	}()
	m := New(CommonCRCW, WithStrict())
	a := m.NewArray(1)
	m.ParDo(2, func(c *Ctx, p int) { c.Write(a, 0, int64(p)) })
}

func TestCREWConcurrentWriteStrict(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on CREW concurrent write")
		}
	}()
	m := New(CREW, WithStrict())
	a := m.NewArray(1)
	m.ParDo(2, func(c *Ctx, p int) { c.Write(a, 0, 7) })
}

func TestEREWConcurrentReadStrict(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on EREW concurrent read")
		}
	}()
	m := New(EREW, WithStrict(), WithWorkers(1))
	a := m.NewArray(2)
	m.ParDo(2, func(c *Ctx, p int) { _ = c.Read(a, 0) })
}

func TestEREWExclusiveAccessOK(t *testing.T) {
	m := New(EREW, WithStrict(), WithWorkers(3))
	a := m.NewArray(16)
	b := m.NewArray(16)
	m.ParDo(16, func(c *Ctx, p int) { c.Write(a, p, int64(p)) })
	m.ParDo(16, func(c *Ctx, p int) { c.Write(b, p, c.Read(a, p)*2) })
	if err := m.Err(); err != nil {
		t.Fatalf("violation on exclusive access: %v", err)
	}
	for i, v := range b.Ints() {
		if v != 2*i {
			t.Fatalf("b[%d] = %d, want %d", i, v, 2*i)
		}
	}
}

func TestModelString(t *testing.T) {
	names := map[Model]string{
		EREW: "EREW", CREW: "CREW", CommonCRCW: "Common CRCW",
		ArbitraryCRCW: "Arbitrary CRCW", PriorityCRCW: "Priority CRCW",
	}
	for model, want := range names {
		if got := model.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", model, got, want)
		}
	}
	if got := Model(99).String(); got != "Model(99)" {
		t.Errorf("unknown model String() = %q", got)
	}
}

func TestArrayHostAccess(t *testing.T) {
	m := New(ArbitraryCRCW)
	a := m.NewArrayFrom([]int64{5, 6, 7})
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	a.SetHost(1, 60)
	if a.At(1) != 60 {
		t.Fatalf("At(1) = %d", a.At(1))
	}
	a.Load([]int64{1, 2, 3})
	got := a.Slice()
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Slice = %v", got)
	}
	// Slice must be a copy.
	got[0] = 100
	if a.At(0) != 1 {
		t.Fatal("Slice aliases machine memory")
	}
}

func TestArrayBounds(t *testing.T) {
	m := New(ArbitraryCRCW)
	a := m.NewArray(3)
	for _, f := range []func(){
		func() { a.At(3) },
		func() { a.At(-1) },
		func() { a.SetHost(3, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected bounds panic")
				}
			}()
			f()
		}()
	}
}

func TestFillIotaCopy(t *testing.T) {
	m := New(ArbitraryCRCW)
	a := m.NewArray(7)
	Fill(m, a, 9)
	for _, v := range a.Ints() {
		if v != 9 {
			t.Fatalf("Fill: %v", a.Ints())
		}
	}
	Iota(m, a, 3)
	for i, v := range a.Ints() {
		if v != 3+i {
			t.Fatalf("Iota: %v", a.Ints())
		}
	}
	b := m.NewArray(7)
	Copy(m, b, a)
	for i, v := range b.Ints() {
		if v != 3+i {
			t.Fatalf("Copy: %v", b.Ints())
		}
	}
}

func TestGatherScatter(t *testing.T) {
	m := New(ArbitraryCRCW)
	src := m.NewArrayFromInts([]int{10, 20, 30, 40})
	idx := m.NewArrayFromInts([]int{3, 0, 2, 1})
	dst := m.NewArray(4)
	Gather(m, dst, src, idx)
	want := []int{40, 10, 30, 20}
	for i, v := range dst.Ints() {
		if v != want[i] {
			t.Fatalf("Gather = %v, want %v", dst.Ints(), want)
		}
	}
	dst2 := m.NewArray(4)
	Scatter(m, dst2, src, idx)
	want2 := []int{20, 40, 30, 10}
	for i, v := range dst2.Ints() {
		if v != want2[i] {
			t.Fatalf("Scatter = %v, want %v", dst2.Ints(), want2)
		}
	}
}

func TestReduce(t *testing.T) {
	m := New(ArbitraryCRCW)
	a := m.NewArrayFromInts([]int{5, -2, 9, 3, 7, 1})
	if got := ReduceSum(m, a); got != 23 {
		t.Errorf("sum = %d, want 23", got)
	}
	if got := ReduceMin(m, a); got != -2 {
		t.Errorf("min = %d, want -2", got)
	}
	if got := ReduceMax(m, a); got != 9 {
		t.Errorf("max = %d, want 9", got)
	}
	single := m.NewArrayFromInts([]int{42})
	if got := ReduceSum(m, single); got != 42 {
		t.Errorf("singleton sum = %d", got)
	}
}

func TestReduceWorkIsLinear(t *testing.T) {
	// The balanced tree must do O(n) work, not O(n log n).
	m := New(ArbitraryCRCW)
	n := 1 << 12
	a := m.NewArray(n)
	Fill(m, a, 1)
	m.ResetStats()
	if got := ReduceSum(m, a); got != int64(n) {
		t.Fatalf("sum = %d", got)
	}
	if w := m.Stats().Work; w > int64(4*n) {
		t.Errorf("reduce work = %d, want <= %d (linear)", w, 4*n)
	}
}

func scanReference(in []int64) ([]int64, int64) {
	out := make([]int64, len(in))
	var acc int64
	for i, v := range in {
		out[i] = acc
		acc += v
	}
	return out, acc
}

func TestExclusiveScanSmall(t *testing.T) {
	for n := 0; n <= 20; n++ {
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(i*i - 3)
		}
		m := New(ArbitraryCRCW)
		a := m.NewArrayFrom(in)
		prefix, total := ExclusiveScan(m, a)
		wantPrefix, wantTotal := scanReference(in)
		if n > 0 && total != wantTotal {
			t.Fatalf("n=%d: total = %d, want %d", n, total, wantTotal)
		}
		got := prefix.Slice()
		for i := range wantPrefix {
			if got[i] != wantPrefix[i] {
				t.Fatalf("n=%d: prefix = %v, want %v", n, got, wantPrefix)
			}
		}
	}
}

func TestScanProperty(t *testing.T) {
	f := func(in []int64) bool {
		if len(in) == 0 {
			return true
		}
		// Bound the values so sums cannot overflow.
		for i := range in {
			in[i] %= 1 << 20
		}
		m := New(ArbitraryCRCW)
		a := m.NewArrayFrom(in)
		prefix, total := ExclusiveScan(m, a)
		wantPrefix, wantTotal := scanReference(in)
		if total != wantTotal {
			return false
		}
		got := prefix.Slice()
		for i := range wantPrefix {
			if got[i] != wantPrefix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInclusiveScan(t *testing.T) {
	m := New(ArbitraryCRCW)
	a := m.NewArrayFromInts([]int{1, 2, 3, 4})
	prefix, total := InclusiveScan(m, a)
	want := []int{1, 3, 6, 10}
	for i, v := range prefix.Ints() {
		if v != want[i] {
			t.Fatalf("inclusive scan = %v, want %v", prefix.Ints(), want)
		}
	}
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
}

func TestScanWorkIsLinear(t *testing.T) {
	m := New(ArbitraryCRCW)
	n := 1 << 12
	a := m.NewArray(n)
	Fill(m, a, 1)
	m.ResetStats()
	_, total := ExclusiveScan(m, a)
	if total != int64(n) {
		t.Fatalf("total = %d", total)
	}
	if w := m.Stats().Work; w > int64(10*n) {
		t.Errorf("scan work = %d, want <= %d (linear)", w, 10*n)
	}
}

func TestCompact(t *testing.T) {
	m := New(ArbitraryCRCW)
	data := m.NewArrayFromInts([]int{10, 11, 12, 13, 14, 15})
	flags := m.NewArrayFromInts([]int{1, 0, 0, 5, 1, 0})
	out := Compact(m, data, flags)
	want := []int{10, 13, 14}
	got := out.Ints()
	if len(got) != len(want) {
		t.Fatalf("Compact = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Compact = %v, want %v", got, want)
		}
	}
	idx := CompactIndices(m, flags)
	wantIdx := []int{0, 3, 4}
	gotIdx := idx.Ints()
	for i := range wantIdx {
		if gotIdx[i] != wantIdx[i] {
			t.Fatalf("CompactIndices = %v, want %v", gotIdx, wantIdx)
		}
	}
}

func TestCompactEmptyAndFull(t *testing.T) {
	m := New(ArbitraryCRCW)
	data := m.NewArrayFromInts([]int{1, 2, 3})
	none := m.NewArray(3)
	out := Compact(m, data, none)
	if out.Len() != 0 {
		t.Fatalf("empty compact has %d elements", out.Len())
	}
	all := m.NewArray(3)
	Fill(m, all, 1)
	out = Compact(m, data, all)
	if out.Len() != 3 {
		t.Fatalf("full compact has %d elements", out.Len())
	}
}

func TestFirstOne(t *testing.T) {
	cases := []struct {
		flags []int
		want  int
	}{
		{[]int{}, -1},
		{[]int{0}, -1},
		{[]int{1}, 0},
		{[]int{0, 0, 0}, -1},
		{[]int{0, 0, 1}, 2},
		{[]int{1, 1, 1}, 0},
		{[]int{0, 1, 0, 1}, 1},
	}
	for _, tc := range cases {
		m := New(CommonCRCW)
		flags := m.NewArrayFromInts(tc.flags)
		if got := FirstOne(m, flags); got != tc.want {
			t.Errorf("FirstOne(%v) = %d, want %d", tc.flags, got, tc.want)
		}
	}
}

func TestFirstOneLargeAndConstantTime(t *testing.T) {
	n := 1 << 14
	for _, pos := range []int{0, 1, 2000, n / 2, n - 1} {
		m := New(CommonCRCW)
		flags := m.NewArray(n)
		flags.SetHost(pos, 1)
		if pos+37 < n {
			flags.SetHost(pos+37, 1)
		}
		m.ResetStats()
		if got := FirstOne(m, flags); got != pos {
			t.Fatalf("FirstOne = %d, want %d", got, pos)
		}
		s := m.Stats()
		if s.Rounds > 12 {
			t.Errorf("FirstOne used %d rounds, want O(1)", s.Rounds)
		}
		if s.Work > int64(8*n) {
			t.Errorf("FirstOne work = %d, want O(n) = %d", s.Work, 8*n)
		}
	}
}

func TestFirstOneProperty(t *testing.T) {
	f := func(raw []bool) bool {
		m := New(CommonCRCW)
		flags := m.NewArray(len(raw))
		want := -1
		for i, b := range raw {
			if b {
				flags.SetHost(i, 1)
				if want == -1 {
					want = i
				}
			}
		}
		return FirstOne(m, flags) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewArrayFromIntsRoundTrip(t *testing.T) {
	m := New(ArbitraryCRCW)
	in := []int{-5, 0, 7}
	a := m.NewArrayFromInts(in)
	out := a.Ints()
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("round trip = %v, want %v", out, in)
		}
	}
}

func TestCellsHighWater(t *testing.T) {
	m := New(ArbitraryCRCW)
	m.NewArray(100)
	m.NewArray(50)
	if c := m.Stats().Cells; c != 150 {
		t.Fatalf("Cells = %d, want 150", c)
	}
	m.ResetStats()
	if c := m.Stats().Cells; c != 150 {
		t.Fatalf("Cells after reset = %d, want 150 (memory kept)", c)
	}
}
