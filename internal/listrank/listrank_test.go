package listrank

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sfcp/internal/pram"
)

// randomPermutation builds a permutation whose cycle structure is random.
func randomPermutation(rng *rand.Rand, n int) []int {
	p := rng.Perm(n)
	return p
}

// permWithCycles builds a permutation with the given cycle lengths.
func permWithCycles(lengths []int) []int {
	var next []int
	start := 0
	for _, l := range lengths {
		for i := 0; i < l; i++ {
			next = append(next, start+(i+1)%l)
		}
		start += l
	}
	return next
}

// referenceCycleRank computes leader/rank/length by direct traversal.
func referenceCycleRank(next []int) (leader, rank, length []int) {
	n := len(next)
	leader = make([]int, n)
	rank = make([]int, n)
	length = make([]int, n)
	seen := make([]bool, n)
	for i := 0; i < n; i++ {
		if seen[i] {
			continue
		}
		// Collect the cycle through i.
		var cyc []int
		j := i
		for !seen[j] {
			seen[j] = true
			cyc = append(cyc, j)
			j = next[j]
		}
		min := cyc[0]
		minPos := 0
		for pos, v := range cyc {
			if v < min {
				min, minPos = v, pos
			}
		}
		for pos, v := range cyc {
			leader[v] = min
			rank[v] = (pos - minPos + len(cyc)) % len(cyc)
			length[v] = len(cyc)
		}
	}
	return leader, rank, length
}

func checkCycleRank(t *testing.T, next []int, method Method) {
	t.Helper()
	m := pram.New(pram.ArbitraryCRCW)
	nx := m.NewArrayFromInts(next)
	leader, rank, length := CycleRank(m, nx, method)
	wl, wr, wn := referenceCycleRank(next)
	gl, gr, gn := leader.Ints(), rank.Ints(), length.Ints()
	for i := range next {
		if gl[i] != wl[i] || gr[i] != wr[i] || gn[i] != wn[i] {
			t.Fatalf("%v n=%d node %d: got (leader=%d rank=%d len=%d), want (%d %d %d)",
				method, len(next), i, gl[i], gr[i], gn[i], wl[i], wr[i], wn[i])
		}
	}
}

func TestCycleRankSmallCases(t *testing.T) {
	cases := [][]int{
		{0},          // self loop
		{1, 0},       // 2-cycle
		{1, 2, 0},    // 3-cycle
		{0, 1},       // two self loops
		{1, 0, 3, 2}, // two 2-cycles
		permWithCycles([]int{5, 1, 3}),
		permWithCycles([]int{12}),
		permWithCycles([]int{1, 1, 1, 1}),
	}
	for _, next := range cases {
		for _, method := range []Method{Wyllie, RulingSet} {
			checkCycleRank(t, next, method)
		}
	}
}

func TestCycleRankRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 5, 17, 64, 65, 200, 1000} {
		for trial := 0; trial < 3; trial++ {
			next := randomPermutation(rng, n)
			checkCycleRank(t, next, Wyllie)
			checkCycleRank(t, next, RulingSet)
		}
	}
}

func TestCycleRankSingleLongCycle(t *testing.T) {
	// A single cycle larger than the ruling-set small-input cutoff.
	for _, n := range []int{65, 128, 513, 2048} {
		next := permWithCycles([]int{n})
		checkCycleRank(t, next, Wyllie)
		checkCycleRank(t, next, RulingSet)
	}
}

func TestCycleRankManySmallCycles(t *testing.T) {
	// Many 2-cycles: most have no ruler, exercising the fallback path.
	lengths := make([]int, 100)
	for i := range lengths {
		lengths[i] = 2
	}
	next := permWithCycles(lengths)
	checkCycleRank(t, next, RulingSet)
}

func TestCycleRankEmpty(t *testing.T) {
	m := pram.New(pram.ArbitraryCRCW)
	nx := m.NewArray(0)
	leader, rank, length := CycleRank(m, nx, Wyllie)
	if leader.Len() != 0 || rank.Len() != 0 || length.Len() != 0 {
		t.Fatal("empty CycleRank should return empty arrays")
	}
}

func TestCycleRankProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%300 + 1
		rng := rand.New(rand.NewSource(seed))
		next := randomPermutation(rng, n)
		m := pram.New(pram.ArbitraryCRCW)
		nx := m.NewArrayFromInts(next)
		leader, rank, length := CycleRank(m, nx, RulingSet)
		wl, wr, wn := referenceCycleRank(next)
		gl, gr, gn := leader.Ints(), rank.Ints(), length.Ints()
		for i := range next {
			if gl[i] != wl[i] || gr[i] != wr[i] || gn[i] != wn[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRulingSetWorkBelowWyllie(t *testing.T) {
	// On a large single cycle the ruling set must do asymptotically less
	// work than pointer jumping.
	n := 1 << 14
	next := permWithCycles([]int{n})

	mW := pram.New(pram.ArbitraryCRCW)
	nxW := mW.NewArrayFromInts(next)
	mW.ResetStats()
	CycleRank(mW, nxW, Wyllie)
	workW := mW.Stats().Work

	mR := pram.New(pram.ArbitraryCRCW)
	nxR := mR.NewArrayFromInts(next)
	mR.ResetStats()
	CycleRank(mR, nxR, RulingSet)
	workR := mR.Stats().Work

	if workR >= workW {
		t.Errorf("ruling-set work %d should be below Wyllie %d on n=%d", workR, workW, n)
	}
}

func TestRankToEnd(t *testing.T) {
	// Two lists: 0 -> 1 -> 2 -> end, 3 -> end, and 4 -> 3.
	next := []int{1, 2, -1, -1, 3}
	m := pram.New(pram.ArbitraryCRCW)
	nx := m.NewArrayFromInts(next)
	dist := RankToEnd(m, nx)
	want := []int{2, 1, 0, 0, 1}
	for i, v := range dist.Ints() {
		if v != want[i] {
			t.Fatalf("RankToEnd = %v, want %v", dist.Ints(), want)
		}
	}
}

func TestRankToEndLongChain(t *testing.T) {
	n := 1000
	next := make([]int, n)
	for i := 0; i < n-1; i++ {
		next[i] = i + 1
	}
	next[n-1] = -1
	m := pram.New(pram.ArbitraryCRCW)
	nx := m.NewArrayFromInts(next)
	dist := RankToEnd(m, nx)
	for i, v := range dist.Ints() {
		if v != n-1-i {
			t.Fatalf("dist[%d] = %d, want %d", i, v, n-1-i)
		}
	}
}

func TestRankToEndEmpty(t *testing.T) {
	m := pram.New(pram.ArbitraryCRCW)
	nx := m.NewArray(0)
	if dist := RankToEnd(m, nx); dist.Len() != 0 {
		t.Fatal("empty RankToEnd should be empty")
	}
}

func TestCycleRankLogarithmicRounds(t *testing.T) {
	// Rounds must grow like log n, not n.
	for _, n := range []int{1 << 10, 1 << 14} {
		next := permWithCycles([]int{n})
		m := pram.New(pram.ArbitraryCRCW)
		nx := m.NewArrayFromInts(next)
		m.ResetStats()
		CycleRank(m, nx, Wyllie)
		rounds := m.Stats().Rounds
		if rounds > 200 {
			t.Errorf("n=%d: Wyllie CycleRank used %d rounds, want O(log n)", n, rounds)
		}
	}
}

func TestMethodString(t *testing.T) {
	if Wyllie.String() != "wyllie" || RulingSet.String() != "ruling-set" || Method(7).String() != "unknown" {
		t.Fatal("Method.String mismatch")
	}
}
