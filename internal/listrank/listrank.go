// Package listrank implements parallel list ranking, the workhorse of
// Step 1 of the JáJá–Ryu cycle-labeling algorithm ("label each cycle with
// one of the indices of the cycle, and then rank all the nodes in each
// cycle starting from the chosen index") and of the Euler-tour machinery.
//
// Two methods are provided:
//
//   - Wyllie: classic pointer jumping, O(log n) rounds and O(n log n) work.
//   - RulingSet: a randomized sparse-ruling-set contraction that does
//     O(n) expected work in O(log n) rounds, standing in for the optimal
//     deterministic algorithm of Anderson & Miller cited by the paper.
//     It falls back to Wyllie in the (exponentially unlikely) event that a
//     cycle receives no ruler or a walk overruns its high-probability cap.
//
// Ablation A2 in EXPERIMENTS.md measures the work gap between the two.
package listrank

import (
	"math/bits"

	"sfcp/internal/pram"
)

// Method selects the list-ranking algorithm.
type Method uint8

const (
	// Wyllie is plain pointer jumping (O(n log n) work).
	Wyllie Method = iota
	// RulingSet is sparse-ruling-set contraction (O(n) expected work).
	RulingSet
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Wyllie:
		return "wyllie"
	case RulingSet:
		return "ruling-set"
	}
	return "unknown"
}

// RankToEnd computes, for disjoint linked lists given by next[i] (terminator
// next[i] == -1), the number of edges from each node to its list's terminal
// node. Pointer jumping: O(log n) rounds, O(n log n) work.
func RankToEnd(m *pram.Machine, next *pram.Array) *pram.Array {
	n := next.Len()
	rank := m.NewArray(n)
	if n == 0 {
		return rank
	}
	jump := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(next, p) == -1 {
			c.Write(rank, p, 0)
		} else {
			c.Write(rank, p, 1)
		}
		c.Write(jump, p, c.Read(next, p))
	})
	for step := 0; step < bits.Len(uint(n)); step++ {
		m.ParDo(n, func(c *pram.Ctx, p int) {
			j := c.Read(jump, p)
			if j == -1 {
				return
			}
			c.Write(rank, p, c.Read(rank, p)+c.Read(rank, int(j)))
			c.Write(jump, p, c.Read(jump, int(j)))
		})
	}
	return rank
}

// CycleRank analyses a permutation given by successor pointers next (every
// node lies on exactly one cycle) and returns, for every node i:
//
//	leader[i]: the minimum-index node on i's cycle (a canonical label),
//	rank[i]:   the distance from leader[i] to i along next (leader gets 0),
//	length[i]: the length of i's cycle.
func CycleRank(m *pram.Machine, next *pram.Array, method Method) (leader, rank, length *pram.Array) {
	switch method {
	case Wyllie:
		ones := m.NewArray(next.Len())
		pram.Fill(m, ones, 1)
		return cycleRankWyllieWeighted(m, next, ones)
	case RulingSet:
		return cycleRankRulingSet(m, next)
	default:
		panic("listrank: unknown method")
	}
}

// cycleRankWyllieWeighted solves the weighted cycle-ranking problem: edge
// i -> next[i] has length weight[i]; rank is the weighted distance from the
// minimum-index node of the cycle; length is the cycle's total weight.
func cycleRankWyllieWeighted(m *pram.Machine, next, weight *pram.Array) (leader, rank, length *pram.Array) {
	n := next.Len()
	leader = m.NewArray(n)
	rank = m.NewArray(n)
	length = m.NewArray(n)
	if n == 0 {
		return leader, rank, length
	}

	// Min-doubling: after k iterations lead[i] is the minimum index in the
	// window of 2^k nodes starting at i; jump[i] points 2^k nodes ahead.
	lead := m.NewArray(n)
	pram.Iota(m, lead, 0)
	jump := m.NewArray(n)
	pram.Copy(m, jump, next)
	for step := 0; step < bits.Len(uint(n)); step++ {
		m.ParDo(n, func(c *pram.Ctx, p int) {
			j := int(c.Read(jump, p))
			lj := c.Read(lead, j)
			if lj < c.Read(lead, p) {
				c.Write(lead, p, lj)
			}
			c.Write(jump, p, c.Read(jump, j))
		})
	}
	pram.Copy(m, leader, lead)

	// Break the cycle at the leader and rank toward it to obtain weighted
	// distances and the exact cycle weight.
	broken := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		nx := c.Read(next, p)
		if c.Read(leader, int(nx)) == nx {
			c.Write(broken, p, -1) // predecessor of leader terminates
		} else {
			c.Write(broken, p, nx)
		}
	})
	// distTo[i]: weighted distance from i to the leader of its cycle going
	// forward (leader's predecessor has weight[pred], leader itself gets
	// the full cycle length by wrapping; handle it separately).
	distTo := m.NewArray(n)
	jump2 := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(broken, p) == -1 {
			c.Write(distTo, p, c.Read(weight, p))
			c.Write(jump2, p, -1)
		} else {
			c.Write(distTo, p, c.Read(weight, p))
			c.Write(jump2, p, c.Read(broken, p))
		}
	})
	for step := 0; step < bits.Len(uint(n)); step++ {
		m.ParDo(n, func(c *pram.Ctx, p int) {
			j := c.Read(jump2, p)
			if j == -1 {
				return
			}
			c.Write(distTo, p, c.Read(distTo, p)+c.Read(distTo, int(j)))
			c.Write(jump2, p, c.Read(jump2, int(j)))
		})
	}
	// Leader's distTo is the full cycle weight (it wraps around to itself).
	m.ParDo(n, func(c *pram.Ctx, p int) {
		ld := int(c.Read(leader, p))
		c.Write(length, p, c.Read(distTo, ld))
	})
	// rank[i] = length - distTo[i], except rank[leader] = 0.
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if int(c.Read(leader, p)) == p {
			c.Write(rank, p, 0)
		} else {
			c.Write(rank, p, c.Read(length, p)-c.Read(distTo, p))
		}
	})
	return leader, rank, length
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// cycleRankRulingSet contracts each cycle over a random ~1/log n sample of
// "rulers", solves the contracted weighted problem with Wyllie (now on
// O(n/log n) nodes, so O(n) work), and expands back. Expected O(n) work.
func cycleRankRulingSet(m *pram.Machine, next *pram.Array) (leader, rank, length *pram.Array) {
	n := next.Len()
	if n <= 64 {
		ones := m.NewArray(n)
		pram.Fill(m, ones, 1)
		return cycleRankWyllieWeighted(m, next, ones)
	}
	lg := bits.Len(uint(n))
	s := lg // expected segment length
	cap64 := int64(8 * s * lg)

	isRuler := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if splitmix64(0xabcdef12345^uint64(p))%uint64(s) == 0 {
			c.Write(isRuler, p, 1)
		} else {
			c.Write(isRuler, p, 0)
		}
	})

	owner := m.NewArray(n)
	pram.Fill(m, owner, -1)
	dist := m.NewArray(n)
	segMin := m.NewArray(n) // per ruler: min node index in its segment
	nextRuler := m.NewArray(n)
	gap := m.NewArray(n)
	fail := m.NewArray(1)

	rulers := pram.CompactIndices(m, isRuler)
	nr := rulers.Len()
	if nr == 0 {
		ones := m.NewArray(n)
		pram.Fill(m, ones, 1)
		return cycleRankWyllieWeighted(m, next, ones)
	}

	// Each ruler walks its segment sequentially. The walk bodies are
	// sequential loops; the parallel time of the step is the length of the
	// longest walk, charged honestly below from the measured maximum.
	walkLen := m.NewArray(nr)
	m.ParDo(nr, func(c *pram.Ctx, p int) {
		r := int(c.Read(rulers, p))
		c.Write(owner, r, int64(r))
		c.Write(dist, r, 0)
		mn := int64(r)
		j := int(c.Read(next, r))
		var d int64 = 1
		for ; d <= cap64; d++ {
			if c.Read(isRuler, j) != 0 {
				c.Write(nextRuler, r, int64(j))
				c.Write(gap, r, d)
				c.Write(segMin, r, mn)
				c.Write(walkLen, p, d)
				c.Charge(d)
				return
			}
			c.Write(owner, j, int64(r))
			c.Write(dist, j, d)
			if int64(j) < mn {
				mn = int64(j)
			}
			j = int(c.Read(next, j))
		}
		c.Write(fail, 0, 1)
		c.Write(walkLen, p, d)
		c.Charge(d)
	})
	if maxWalk := pram.ReduceMax(m, walkLen); maxWalk > 1 {
		m.ChargeModel(maxWalk-1, 0) // remaining depth of the longest walk
	}

	if fail.At(0) != 0 {
		ones := m.NewArray(n)
		pram.Fill(m, ones, 1)
		return cycleRankWyllieWeighted(m, next, ones)
	}
	// A cycle with no ruler leaves its nodes unvisited.
	unvisited := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(owner, p) == -1 {
			c.Write(unvisited, p, 1)
		} else {
			c.Write(unvisited, p, 0)
		}
	})
	if pram.ReduceSum(m, unvisited) != 0 {
		ones := m.NewArray(n)
		pram.Fill(m, ones, 1)
		return cycleRankWyllieWeighted(m, next, ones)
	}

	// Contract: index rulers densely.
	cidx := m.NewArray(n)
	m.ParDo(nr, func(c *pram.Ctx, p int) {
		c.Write(cidx, int(c.Read(rulers, p)), int64(p))
	})
	cnext := m.NewArray(nr)
	cweight := m.NewArray(nr)
	m.ParDo(nr, func(c *pram.Ctx, p int) {
		r := int(c.Read(rulers, p))
		c.Write(cnext, p, c.Read(cidx, int(c.Read(nextRuler, r))))
		c.Write(cweight, p, c.Read(gap, r))
	})

	_, cwrank, clen := cycleRankWyllieWeighted(m, cnext, cweight)

	// The contracted leader is the min contracted index, i.e. the ruler
	// with the smallest original index — not necessarily the cycle's true
	// minimum node, which may sit inside a segment. Recover the true
	// minimum by min-doubling segMin around the contracted cycle.
	cmin := m.NewArray(nr)
	m.ParDo(nr, func(c *pram.Ctx, p int) {
		c.Write(cmin, p, c.Read(segMin, int(c.Read(rulers, p))))
	})
	cjump := m.NewArray(nr)
	pram.Copy(m, cjump, cnext)
	for step := 0; step < bits.Len(uint(nr)); step++ {
		m.ParDo(nr, func(c *pram.Ctx, p int) {
			j := int(c.Read(cjump, p))
			if v := c.Read(cmin, j); v < c.Read(cmin, p) {
				c.Write(cmin, p, v)
			}
			c.Write(cjump, p, c.Read(cjump, j))
		})
	}

	// absPos[i]: distance from the contracted leader ruler to node i.
	absPos := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		ow := int(c.Read(owner, p))
		c.Write(absPos, p, c.Read(cwrank, int(c.Read(cidx, ow)))+c.Read(dist, p))
	})

	leader = m.NewArray(n)
	length = m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		ci := int(c.Read(cidx, int(c.Read(owner, p))))
		c.Write(leader, p, c.Read(cmin, ci))
		c.Write(length, p, c.Read(clen, ci))
	})

	// Shift ranks so the true leader is at 0: leaderPos[L] = absPos[L],
	// broadcast through the leader's own cell.
	leaderPos := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if int(c.Read(leader, p)) == p {
			c.Write(leaderPos, p, c.Read(absPos, p))
		}
	})
	rank = m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		l := int(c.Read(leader, p))
		ln := c.Read(length, p)
		v := (c.Read(absPos, p) - c.Read(leaderPos, l)) % ln
		if v < 0 {
			v += ln
		}
		c.Write(rank, p, v)
	})
	return leader, rank, length
}
