// Package store is sfcpd's pluggable persistence seam: two narrow
// interfaces — JobStore for job metadata records and BlobStore for
// content-addressed binary payloads — each shipped with an in-memory
// implementation (the zero-config default's behavior) and a durable
// file-backed one (what -data-dir selects).
//
// The split mirrors the layering the storage-backed services in the
// related work use: metadata records travel through a journal with an
// ordered scan for recovery, while bulk payloads (instance arrays,
// result labels) live in a content-addressed blob tier keyed by the
// digests the codec already computes — so the bytes on disk are the
// wire format and integrity checking is free on every read. The same
// seam is what a future multi-node mode will reuse: peer-fetching a
// cached result is a BlobStore.Get against a remote tier.
//
// Durability policy is deliberately lenient on the read side: a corrupt
// journal entry or an unreadable blob is logged and skipped, never a
// boot failure — a host that lost part of its state must come back up
// and keep serving what survived.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"
)

// JobRecord is the persisted view of one async job: everything a
// restart needs to re-queue a non-terminal job or serve a terminal
// one's snapshot, with bulk payloads held as blob keys rather than
// inline arrays. It is the journal's unit of write — one record per
// state transition, latest record per id wins.
type JobRecord struct {
	ID string `json:"id"`
	// Deleted marks a tombstone: the job was evicted or explicitly
	// deleted, and recovery must forget it. Tombstones carry no other
	// fields.
	Deleted bool `json:"deleted,omitempty"`
	// Seq preserves FIFO ordering within a priority across restarts.
	Seq       uint64  `json:"seq,omitempty"`
	Algorithm string  `json:"algorithm,omitempty"`
	Seed      *uint64 `json:"seed,omitempty"`
	Priority  int     `json:"priority,omitempty"`
	N         int     `json:"n,omitempty"`
	State     string  `json:"state,omitempty"`

	SubmittedAt time.Time `json:"submitted_at,omitzero"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`

	Error             string `json:"error,omitempty"`
	NumClasses        int    `json:"num_classes,omitempty"`
	Cached            bool   `json:"cached,omitempty"`
	ResolvedAlgorithm string `json:"resolved_algorithm,omitempty"`
	PlanReason        string `json:"plan_reason,omitempty"`
	PlanWorkers       int    `json:"plan_workers,omitempty"`

	// InstanceDigest is the blob key of the submitted instance (the
	// SHA-256 content address the result cache already uses); ResultKey
	// is the blob key of the finished labels (see ResultKey).
	InstanceDigest string `json:"instance_digest,omitempty"`
	ResultKey      string `json:"result_key,omitempty"`
}

// Terminal reports whether the recorded state will never change again.
func (r JobRecord) Terminal() bool {
	switch r.State {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// JobStore journals job records. Put appends (or supersedes) the record
// for rec.ID; Delete writes a tombstone; Scan visits the surviving
// records in submission order (ascending Seq) — the recovery walk.
// CorruptSkipped reports how many journal entries lenient recovery
// dropped at open (always 0 for the in-memory store); it is part of the
// interface because skipping corruption silently would defeat the
// logged-and-counted recovery contract the metrics expose.
type JobStore interface {
	Put(rec JobRecord) error
	Delete(id string) error
	Scan(fn func(JobRecord) error) error
	CorruptSkipped() int64
}

// BlobStore holds content-addressed binary payloads. Keys are lowercase
// hex digests (ValidKey); values stream through readers so a
// 10^8-element payload never needs a second in-memory copy. Put is
// idempotent for a given key — content addressing makes re-writing the
// same bytes harmless — and returns the byte count written. Get returns
// ErrNotFound (wrapped) for unknown keys.
type BlobStore interface {
	Put(key string, r io.Reader) (int64, error)
	Get(key string) (io.ReadCloser, error)
	Has(key string) (bool, error)
	Delete(key string) error
}

// ErrNotFound reports a Get/Delete against a key the store does not hold.
var ErrNotFound = errors.New("store: blob not found")

// ErrBadKey reports a key that is not a lowercase hex digest — the only
// shape the stores accept, which keeps file-backed keys path-safe by
// construction.
var ErrBadKey = errors.New("store: invalid blob key")

// ValidKey reports whether key is a plausible content-address: 16 to 64
// lowercase hex characters (XXH64 through SHA-256 sized digests).
func ValidKey(key string) bool {
	if len(key) < 16 || len(key) > 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func checkKey(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("%w: %q", ErrBadKey, key)
	}
	return nil
}

// ResultKey derives the blob key under which a solve result's labels are
// stored: a SHA-256 over (resolved algorithm, effective seed, instance
// content address). It is the durable twin of the server's in-memory
// cache key — the jobs manager persisting a result and the server
// consulting the blob tier before solving compute the same key, so each
// tier can serve the other's writes.
func ResultKey(algorithm string, seed uint64, instanceDigest string) string {
	h := sha256.New()
	io.WriteString(h, "sfcp-result\x00")
	io.WriteString(h, algorithm)
	h.Write([]byte{0})
	io.WriteString(h, strconv.FormatUint(seed, 10))
	h.Write([]byte{0})
	io.WriteString(h, instanceDigest)
	return hex.EncodeToString(h.Sum(nil))
}
