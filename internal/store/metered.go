package store

import (
	"io"
	"sync/atomic"
)

// BlobCounts is a point-in-time snapshot of a Metered blob store's
// traffic, in the shapes /metrics wants to expose.
type BlobCounts struct {
	Reads      int64
	Writes     int64
	Deletes    int64
	ReadBytes  int64
	WriteBytes int64
}

// Metered wraps a BlobStore and counts operations and bytes moved.
// The server puts one of these in front of whatever tier it is given so
// sfcpd_store_* metrics work identically for memory and file backends.
type Metered struct {
	inner BlobStore

	reads      atomic.Int64
	writes     atomic.Int64
	deletes    atomic.Int64
	readBytes  atomic.Int64
	writeBytes atomic.Int64
}

// NewMetered wraps inner with traffic counters.
func NewMetered(inner BlobStore) *Metered {
	return &Metered{inner: inner}
}

// Counts snapshots the traffic counters.
func (m *Metered) Counts() BlobCounts {
	return BlobCounts{
		Reads:      m.reads.Load(),
		Writes:     m.writes.Load(),
		Deletes:    m.deletes.Load(),
		ReadBytes:  m.readBytes.Load(),
		WriteBytes: m.writeBytes.Load(),
	}
}

// Put forwards to the inner store and counts the write.
func (m *Metered) Put(key string, r io.Reader) (int64, error) {
	n, err := m.inner.Put(key, r)
	if err != nil {
		return n, err
	}
	m.writes.Add(1)
	m.writeBytes.Add(n)
	return n, nil
}

// Get forwards to the inner store; bytes are counted as the caller
// drains the returned reader.
func (m *Metered) Get(key string) (io.ReadCloser, error) {
	rc, err := m.inner.Get(key)
	if err != nil {
		return nil, err
	}
	m.reads.Add(1)
	return &countedReadCloser{rc: rc, bytes: &m.readBytes}, nil
}

// Has forwards to the inner store.
func (m *Metered) Has(key string) (bool, error) { return m.inner.Has(key) }

// Delete forwards to the inner store and counts the delete.
func (m *Metered) Delete(key string) error {
	if err := m.inner.Delete(key); err != nil {
		return err
	}
	m.deletes.Add(1)
	return nil
}

type countedReadCloser struct {
	rc    io.ReadCloser
	bytes *atomic.Int64
}

func (c *countedReadCloser) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	if n > 0 {
		c.bytes.Add(int64(n))
	}
	return n, err
}

func (c *countedReadCloser) Close() error { return c.rc.Close() }
