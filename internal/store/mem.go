package store

import (
	"bytes"
	"io"
	"sort"
	"sync"
)

// MemJobStore is the in-memory JobStore: a map of latest records. It
// gives the zero-config deployment the same write-through code path as
// the durable one — the jobs manager journals identically either way —
// while surviving nothing, by design.
type MemJobStore struct {
	mu   sync.Mutex
	recs map[string]JobRecord
}

// NewMemJobStore returns an empty in-memory job store.
func NewMemJobStore() *MemJobStore {
	return &MemJobStore{recs: map[string]JobRecord{}}
}

// Put stores rec as the latest record for rec.ID.
func (s *MemJobStore) Put(rec JobRecord) error {
	s.mu.Lock()
	s.recs[rec.ID] = rec
	s.mu.Unlock()
	return nil
}

// Delete forgets the record for id (idempotent).
func (s *MemJobStore) Delete(id string) error {
	s.mu.Lock()
	delete(s.recs, id)
	s.mu.Unlock()
	return nil
}

// Scan visits the stored records in ascending Seq order. The snapshot
// is taken under the lock and visited outside it, so fn may call back
// into the store.
func (s *MemJobStore) Scan(fn func(JobRecord) error) error {
	s.mu.Lock()
	recs := make([]JobRecord, 0, len(s.recs))
	for _, r := range s.recs {
		recs = append(recs, r)
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// CorruptSkipped is always 0: memory does not rot.
func (s *MemJobStore) CorruptSkipped() int64 { return 0 }

// Len reports the number of stored records.
func (s *MemJobStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// MemBlobStore is the in-memory BlobStore: a map of byte slices. It
// backs tests and any deployment that wants payload spill semantics
// (RAM release on the job payload, re-load at dispatch) without a disk.
type MemBlobStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemBlobStore returns an empty in-memory blob store.
func NewMemBlobStore() *MemBlobStore {
	return &MemBlobStore{blobs: map[string][]byte{}}
}

// Put reads r to completion and stores the bytes under key.
func (s *MemBlobStore) Put(key string, r io.Reader) (int64, error) {
	if err := checkKey(key); err != nil {
		return 0, err
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.blobs[key] = data
	s.mu.Unlock()
	return int64(len(data)), nil
}

// Get returns a reader over the stored bytes.
func (s *MemBlobStore) Get(key string) (io.ReadCloser, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	data, ok := s.blobs[key]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// Has reports whether key is stored.
func (s *MemBlobStore) Has(key string) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	s.mu.Lock()
	_, ok := s.blobs[key]
	s.mu.Unlock()
	return ok, nil
}

// Delete forgets key (idempotent).
func (s *MemBlobStore) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	delete(s.blobs, key)
	s.mu.Unlock()
	return nil
}

// Len reports the number of stored blobs.
func (s *MemBlobStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs)
}
