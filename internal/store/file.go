package store

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// maxJournalLine bounds one journal entry; records are a few hundred
// bytes, so a line past this is corruption, not data.
const maxJournalLine = 1 << 20

// FileJobStore is the durable JobStore: an append-only JSONL journal,
// one record per line, latest record per id wins. Open replays the
// journal leniently — a torn or corrupt line is logged, counted and
// skipped, never a boot failure — and then compacts it (atomic
// temp+rename, like internal/calib's profile writes) so dead
// transitions do not accumulate across restarts. Appends during serving
// are compacted in place once the dead:live ratio grows large.
type FileJobStore struct {
	path string
	logf func(format string, args ...any)

	mu      sync.Mutex
	f       *os.File
	recs    map[string]JobRecord
	appends int64 // journal lines written since the last compaction

	skipped atomic.Int64
}

// OpenFileJobStore opens (creating if absent) the journal at path,
// replays and compacts it. logf receives one line per skipped corrupt
// entry (nil discards).
func OpenFileJobStore(path string, logf func(format string, args ...any)) (*FileJobStore, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("store: journal dir: %w", err)
	}
	s := &FileJobStore{path: path, logf: logf, recs: map[string]JobRecord{}}
	if err := s.replay(); err != nil {
		return nil, err
	}
	if err := s.compactLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// replay reads every journal line into the record map, skipping (and
// counting) lines that do not parse — the torn tail a kill -9 leaves,
// or bit rot anywhere else.
func (s *FileJobStore) replay() error {
	f, err := os.Open(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), maxJournalLine)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec JobRecord
		if err := json.Unmarshal(raw, &rec); err != nil || rec.ID == "" {
			s.skipped.Add(1)
			s.logf("store: journal %s line %d unreadable; skipping (%v)", s.path, line, err)
			continue
		}
		if rec.Deleted {
			delete(s.recs, rec.ID)
			continue
		}
		s.recs[rec.ID] = rec
	}
	if err := sc.Err(); err != nil {
		// An overlong or unreadable tail: everything before it replayed.
		s.skipped.Add(1)
		s.logf("store: journal %s truncated scan after line %d; keeping %d records (%v)", s.path, line, len(s.recs), err)
	}
	return nil
}

// compactLocked rewrites the journal to exactly the live records
// (ascending Seq) via a temporary sibling and an atomic rename, then
// reopens it for appending. Callers hold s.mu (or, at Open, have
// exclusive access).
func (s *FileJobStore) compactLocked() error {
	recs := make([]JobRecord, 0, len(s.recs))
	for _, r := range s.recs {
		recs = append(recs, r)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	tmp, err := os.CreateTemp(filepath.Dir(s.path), filepath.Base(s.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: compacting journal: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, r := range recs {
		data, err := json.Marshal(r)
		if err == nil {
			_, err = w.Write(append(data, '\n')) //sfcpvet:ignore lockhold -- compaction must rewrite under the journal mutex to keep appenders from racing the rename
		}
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("store: compacting journal: %w", err)
		}
	}
	err = w.Flush() //sfcpvet:ignore lockhold -- part of the same locked compaction rewrite
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), s.path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: compacting journal: %w", err)
	}
	if s.f != nil {
		s.f.Close()
	}
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening journal: %w", err)
	}
	s.f, s.appends = f, 0
	return nil
}

// appendLocked writes one journal line. Callers hold s.mu: the append
// order is the recovery order, so writes must serialize under the same
// lock that updates the record map.
func (s *FileJobStore) appendLocked(rec JobRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding record: %w", err)
	}
	_, err = s.f.Write(append(data, '\n')) //sfcpvet:ignore lockhold -- journal appends must serialize under the mutex so recovery replays transitions in order
	if err != nil {
		return fmt.Errorf("store: appending record: %w", err)
	}
	s.appends++
	// Compact once the dead:live ratio is clearly wasteful; the floor
	// keeps small stores from rewriting on every handful of puts.
	if s.appends > 1024 && s.appends > 8*int64(len(s.recs)) {
		return s.compactLocked()
	}
	return nil
}

// Put journals rec as the latest record for rec.ID.
func (s *FileJobStore) Put(rec JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs[rec.ID] = rec
	return s.appendLocked(rec)
}

// Delete journals a tombstone for id (idempotent).
func (s *FileJobStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[id]; !ok {
		return nil
	}
	delete(s.recs, id)
	return s.appendLocked(JobRecord{ID: id, Deleted: true})
}

// Scan visits the live records in ascending Seq order. The snapshot is
// taken under the lock and visited outside it.
func (s *FileJobStore) Scan(fn func(JobRecord) error) error {
	s.mu.Lock()
	recs := make([]JobRecord, 0, len(s.recs))
	for _, r := range s.recs {
		recs = append(recs, r)
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	for _, r := range recs {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// CorruptSkipped reports journal entries dropped by lenient replay.
func (s *FileJobStore) CorruptSkipped() int64 { return s.skipped.Load() }

// Close flushes and closes the journal file.
func (s *FileJobStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// FileBlobStore is the durable BlobStore: one file per blob under
// two-hex-character fanout directories keyed by the digest prefix
// (root/ab/abcdef…), so a directory never accumulates the whole
// keyspace. Writes go to a temporary sibling and rename into place —
// a crash mid-Put leaves a stray temp file, never a half-written blob
// under a valid key — and reads stream straight off the file, so the
// codec's digest trailer re-verifies content integrity on every
// decode.
type FileBlobStore struct {
	root string
}

// OpenFileBlobStore opens (creating if absent) a blob tier rooted at dir
// and sweeps temp files a previous crash may have stranded.
func OpenFileBlobStore(dir string) (*FileBlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: blob root: %w", err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	for _, m := range matches {
		os.Remove(m)
	}
	return &FileBlobStore{root: dir}, nil
}

// blobPath maps a validated key to its fanout location.
func (s *FileBlobStore) blobPath(key string) string {
	return filepath.Join(s.root, key[:2], key)
}

// Put streams r into a temp file and renames it to the key's fanout
// path. Re-putting an existing key atomically replaces it with
// identical bytes (keys are content addresses).
func (s *FileBlobStore) Put(key string, r io.Reader) (int64, error) {
	if err := checkKey(key); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(s.root, ".tmp-*")
	if err != nil {
		return 0, fmt.Errorf("store: blob temp: %w", err)
	}
	n, err := io.Copy(tmp, r)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		if err = os.MkdirAll(filepath.Join(s.root, key[:2]), 0o755); err == nil {
			err = os.Rename(tmp.Name(), s.blobPath(key))
		}
	}
	if err != nil {
		os.Remove(tmp.Name())
		return 0, fmt.Errorf("store: writing blob %s: %w", key, err)
	}
	return n, nil
}

// Get opens the blob for streaming; the caller closes it.
func (s *FileBlobStore) Get(key string) (io.ReadCloser, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	f, err := os.Open(s.blobPath(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading blob %s: %w", key, err)
	}
	return f, nil
}

// Has reports whether the blob exists without opening it.
func (s *FileBlobStore) Has(key string) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	_, err := os.Stat(s.blobPath(key))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("store: probing blob %s: %w", key, err)
	}
	return true, nil
}

// Delete removes the blob (idempotent).
func (s *FileBlobStore) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	err := os.Remove(s.blobPath(key))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("store: deleting blob %s: %w", key, err)
	}
	return nil
}
