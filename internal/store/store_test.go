package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testJobStores(t *testing.T) map[string]JobStore {
	t.Helper()
	fs, err := OpenFileJobStore(filepath.Join(t.TempDir(), "jobs.journal"), t.Logf)
	if err != nil {
		t.Fatalf("OpenFileJobStore: %v", err)
	}
	t.Cleanup(func() { fs.Close() })
	return map[string]JobStore{"mem": NewMemJobStore(), "file": fs}
}

func scanAll(t *testing.T, s JobStore) []JobRecord {
	t.Helper()
	var recs []JobRecord
	if err := s.Scan(func(r JobRecord) error { recs = append(recs, r); return nil }); err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return recs
}

func TestJobStoreRoundTrip(t *testing.T) {
	for name, s := range testJobStores(t) {
		t.Run(name, func(t *testing.T) {
			seed := uint64(42)
			recs := []JobRecord{
				{ID: "b", Seq: 2, Algorithm: "pram", State: "queued", N: 10},
				{ID: "a", Seq: 1, Algorithm: "linear", Seed: &seed, State: "done", NumClasses: 3},
				{ID: "c", Seq: 3, Algorithm: "auto", State: "running", Priority: -1},
			}
			for _, r := range recs {
				if err := s.Put(r); err != nil {
					t.Fatalf("Put(%s): %v", r.ID, err)
				}
			}
			got := scanAll(t, s)
			if len(got) != 3 {
				t.Fatalf("Scan returned %d records, want 3", len(got))
			}
			for i, want := range []string{"a", "b", "c"} {
				if got[i].ID != want {
					t.Errorf("scan order[%d] = %s, want %s (ascending Seq)", i, got[i].ID, want)
				}
			}
			if got[0].Seed == nil || *got[0].Seed != 42 {
				t.Errorf("record a lost its seed: %+v", got[0])
			}

			// Last record per id wins.
			if err := s.Put(JobRecord{ID: "b", Seq: 2, Algorithm: "pram", State: "done", NumClasses: 7}); err != nil {
				t.Fatalf("Put update: %v", err)
			}
			got = scanAll(t, s)
			if len(got) != 3 || got[1].State != "done" || got[1].NumClasses != 7 {
				t.Fatalf("updated record not latest-wins: %+v", got)
			}

			// Tombstone removes from scans; deleting again is a no-op.
			if err := s.Delete("a"); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if err := s.Delete("a"); err != nil {
				t.Fatalf("Delete (repeat): %v", err)
			}
			got = scanAll(t, s)
			if len(got) != 2 || got[0].ID != "b" || got[1].ID != "c" {
				t.Fatalf("after delete, scan = %+v", got)
			}
			if n := s.CorruptSkipped(); n != 0 {
				t.Errorf("CorruptSkipped = %d on a clean store", n)
			}
		})
	}
}

func TestJobStoreScanError(t *testing.T) {
	for name, s := range testJobStores(t) {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 3; i++ {
				if err := s.Put(JobRecord{ID: fmt.Sprintf("j%d", i), Seq: uint64(i)}); err != nil {
					t.Fatal(err)
				}
			}
			boom := errors.New("boom")
			visited := 0
			err := s.Scan(func(JobRecord) error { visited++; return boom })
			if !errors.Is(err, boom) {
				t.Fatalf("Scan error = %v, want boom", err)
			}
			if visited != 1 {
				t.Fatalf("Scan visited %d records after error, want 1", visited)
			}
		})
	}
}

func TestFileJobStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	s, err := OpenFileJobStore(path, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(JobRecord{ID: fmt.Sprintf("j%d", i), Seq: uint64(i), State: "queued"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(JobRecord{ID: "j2", Seq: 2, State: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("j4"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileJobStore(path, t.Logf)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	got := scanAll(t, s2)
	if len(got) != 4 {
		t.Fatalf("after reopen, %d records, want 4: %+v", len(got), got)
	}
	if got[2].ID != "j2" || got[2].State != "done" {
		t.Errorf("j2 lost its update across reopen: %+v", got[2])
	}
	for _, r := range got {
		if r.ID == "j4" {
			t.Errorf("tombstoned j4 resurrected: %+v", r)
		}
	}
	// Open compacted: the journal now holds exactly the live records.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 4 {
		t.Errorf("compacted journal has %d lines, want 4", lines)
	}
}

func TestFileJobStoreLenientReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	var lines []string
	lines = append(lines, `{"id":"good1","seq":1,"state":"queued"}`)
	lines = append(lines, `{"id":"good2","seq":2,`) // torn mid-write
	lines = append(lines, `not json at all`)
	lines = append(lines, `{"seq":9,"state":"queued"}`) // parses but no id
	lines = append(lines, `{"id":"good3","seq":3,"state":"done"}`)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var logged []string
	s, err := OpenFileJobStore(path, func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatalf("lenient open failed: %v", err)
	}
	defer s.Close()

	got := scanAll(t, s)
	if len(got) != 2 || got[0].ID != "good1" || got[1].ID != "good3" {
		t.Fatalf("lenient replay kept %+v, want good1+good3", got)
	}
	if n := s.CorruptSkipped(); n != 3 {
		t.Errorf("CorruptSkipped = %d, want 3", n)
	}
	if len(logged) != 3 {
		t.Errorf("logged %d skip lines, want 3: %q", len(logged), logged)
	}
	// The store stays writable after lenient recovery.
	if err := s.Put(JobRecord{ID: "after", Seq: 10, State: "queued"}); err != nil {
		t.Fatalf("Put after lenient recovery: %v", err)
	}
}

func TestFileJobStoreTornTailAfterCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	s, err := OpenFileJobStore(path, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(JobRecord{ID: "ok", Seq: 1, State: "done"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a kill -9 mid-append: valid journal plus a partial line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"torn","se`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenFileJobStore(path, t.Logf)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer s2.Close()
	got := scanAll(t, s2)
	if len(got) != 1 || got[0].ID != "ok" {
		t.Fatalf("after torn tail, records = %+v, want just ok", got)
	}
	if n := s2.CorruptSkipped(); n != 1 {
		t.Errorf("CorruptSkipped = %d, want 1", n)
	}
}

func TestFileJobStoreOnlineCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	s, err := OpenFileJobStore(path, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Hammer a handful of ids with updates: appends vastly exceed live
	// records, so the online threshold must fire and shrink the file.
	for i := 0; i < 2000; i++ {
		if err := s.Put(JobRecord{ID: fmt.Sprintf("j%d", i%4), Seq: uint64(i % 4), State: "queued", N: i}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines >= 2000 {
		t.Fatalf("journal never compacted online: %d lines", lines)
	}
	if got := scanAll(t, s); len(got) != 4 {
		t.Fatalf("live records = %d, want 4", len(got))
	}
}

const (
	testKeyA = "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	testKeyB = "fedcba9876543210fedcba9876543210"
)

func testBlobStores(t *testing.T) map[string]BlobStore {
	t.Helper()
	fs, err := OpenFileBlobStore(filepath.Join(t.TempDir(), "blobs"))
	if err != nil {
		t.Fatalf("OpenFileBlobStore: %v", err)
	}
	return map[string]BlobStore{"mem": NewMemBlobStore(), "file": fs}
}

func TestBlobStoreRoundTrip(t *testing.T) {
	for name, s := range testBlobStores(t) {
		t.Run(name, func(t *testing.T) {
			payload := strings.Repeat("sfcp blob payload ", 100)
			n, err := s.Put(testKeyA, strings.NewReader(payload))
			if err != nil {
				t.Fatalf("Put: %v", err)
			}
			if n != int64(len(payload)) {
				t.Errorf("Put wrote %d bytes, want %d", n, len(payload))
			}
			ok, err := s.Has(testKeyA)
			if err != nil || !ok {
				t.Fatalf("Has = %v, %v; want true", ok, err)
			}
			rc, err := s.Get(testKeyA)
			if err != nil {
				t.Fatalf("Get: %v", err)
			}
			data, err := io.ReadAll(rc)
			rc.Close()
			if err != nil || string(data) != payload {
				t.Fatalf("Get round-trip mismatch (err=%v, %d bytes)", err, len(data))
			}

			// Re-put replaces (content addressing makes this idempotent).
			if _, err := s.Put(testKeyA, strings.NewReader("shorter")); err != nil {
				t.Fatalf("re-Put: %v", err)
			}
			rc, _ = s.Get(testKeyA)
			data, _ = io.ReadAll(rc)
			rc.Close()
			if string(data) != "shorter" {
				t.Fatalf("re-Put did not replace: %q", data)
			}

			if err := s.Delete(testKeyA); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			if err := s.Delete(testKeyA); err != nil {
				t.Fatalf("Delete (repeat): %v", err)
			}
			if ok, _ := s.Has(testKeyA); ok {
				t.Error("Has true after Delete")
			}
			if _, err := s.Get(testKeyA); !errors.Is(err, ErrNotFound) {
				t.Errorf("Get after Delete = %v, want ErrNotFound", err)
			}
			if _, err := s.Get(testKeyB); !errors.Is(err, ErrNotFound) {
				t.Errorf("Get of never-stored key = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestBlobStoreRejectsBadKeys(t *testing.T) {
	bad := []string{
		"",
		"short",
		"UPPERCASE9876543210FEDCBA",
		"../../../../etc/passwd",
		"0123456789abcdeg0123456789abcdef", // 'g' is not hex
		strings.Repeat("a", 65),
	}
	for name, s := range testBlobStores(t) {
		t.Run(name, func(t *testing.T) {
			for _, key := range bad {
				if _, err := s.Put(key, strings.NewReader("x")); !errors.Is(err, ErrBadKey) {
					t.Errorf("Put(%q) = %v, want ErrBadKey", key, err)
				}
				if _, err := s.Get(key); !errors.Is(err, ErrBadKey) {
					t.Errorf("Get(%q) = %v, want ErrBadKey", key, err)
				}
				if _, err := s.Has(key); !errors.Is(err, ErrBadKey) {
					t.Errorf("Has(%q) = %v, want ErrBadKey", key, err)
				}
				if err := s.Delete(key); !errors.Is(err, ErrBadKey) {
					t.Errorf("Delete(%q) = %v, want ErrBadKey", key, err)
				}
			}
		})
	}
}

func TestFileBlobStoreLayoutAndCrashCleanup(t *testing.T) {
	root := filepath.Join(t.TempDir(), "blobs")
	s, err := OpenFileBlobStore(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(testKeyA, strings.NewReader("hello")); err != nil {
		t.Fatal(err)
	}
	// Fanout: blob lives under its two-hex-char prefix directory.
	want := filepath.Join(root, testKeyA[:2], testKeyA)
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("blob not at fanout path %s: %v", want, err)
	}

	// A stranded temp file (crash mid-Put) is swept at open and never
	// visible as a blob.
	stray := filepath.Join(root, ".tmp-12345")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileBlobStore(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stray temp file survived reopen: %v", err)
	}
	// And the real blob survived.
	rc, err := s2.Get(testKeyA)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if string(data) != "hello" {
		t.Fatalf("blob corrupted across reopen: %q", data)
	}
}

func TestMeteredCounts(t *testing.T) {
	m := NewMetered(NewMemBlobStore())
	payload := strings.Repeat("x", 1000)
	if _, err := m.Put(testKeyA, strings.NewReader(payload)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Put(testKeyB, strings.NewReader("yy")); err != nil {
		t.Fatal(err)
	}
	rc, err := m.Get(testKeyA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, rc); err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if err := m.Delete(testKeyB); err != nil {
		t.Fatal(err)
	}
	// Failed operations do not count.
	if _, err := m.Get(testKeyB); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get deleted = %v", err)
	}
	if _, err := m.Put("bad key", strings.NewReader("z")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("Put bad = %v", err)
	}

	got := m.Counts()
	want := BlobCounts{Reads: 1, Writes: 2, Deletes: 1, ReadBytes: 1000, WriteBytes: 1002}
	if got != want {
		t.Fatalf("Counts = %+v, want %+v", got, want)
	}
}

func TestValidKey(t *testing.T) {
	valid := []string{testKeyA, testKeyB, strings.Repeat("0", 16), strings.Repeat("f", 64)}
	for _, k := range valid {
		if !ValidKey(k) {
			t.Errorf("ValidKey(%q) = false, want true", k)
		}
	}
	invalid := []string{"", strings.Repeat("0", 15), strings.Repeat("0", 65), "ABCDEF0123456789", "0123456789abcdex", "..", "a/b"}
	for _, k := range invalid {
		if ValidKey(k) {
			t.Errorf("ValidKey(%q) = true, want false", k)
		}
	}
}

func TestResultKey(t *testing.T) {
	k1 := ResultKey("linear", 42, testKeyA)
	if !ValidKey(k1) || len(k1) != 64 {
		t.Fatalf("ResultKey produced invalid key %q", k1)
	}
	if k1 != ResultKey("linear", 42, testKeyA) {
		t.Error("ResultKey not deterministic")
	}
	distinct := []string{
		ResultKey("pram", 42, testKeyA),
		ResultKey("linear", 43, testKeyA),
		ResultKey("linear", 42, testKeyB),
	}
	for i, k := range distinct {
		if k == k1 {
			t.Errorf("ResultKey variant %d collided with base", i)
		}
	}
}
