package analysis

import "go/ast"

// ScratchAlias guards the scratch-arena contract: buffers handed out by
// a coarsest.Scratch (bufI32/bufI64/bufBool) are recycled by the next
// solve, so a slice derived from one must never outlive the call —
// returning it, storing it into a field, or sending it on a channel
// publishes memory that the arena will scribble over. Escaping data
// must be copied into a fresh allocation first.
//
// The taint tracking is syntactic and per-function: a variable assigned
// from an arena call (or sliced/appended from a tainted variable) is
// tainted; copy(dst, src) and fresh make()+copy idioms launder as
// expected because dst was never tainted.
var ScratchAlias = &Analyzer{
	Name: "scratchalias",
	Doc:  "forbid returning or storing slices derived from a Scratch arena without a copy",
	Run:  runScratchAlias,
}

var scratchBufFuncs = map[string]bool{"bufI32": true, "bufI64": true, "bufBool": true}

func runScratchAlias(p *Pass) error {
	for _, f := range p.Pkg.Files {
		if f.IsTest {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkScratchEscapes(p, fn.Body)
				}
			case *ast.FuncLit:
				checkScratchEscapes(p, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkScratchEscapes taints arena-derived variables within one body and
// flags returns, field stores and channel sends of tainted values.
func checkScratchEscapes(p *Pass, body *ast.BlockStmt) {
	tainted := map[string]bool{}
	isTainted := func(e ast.Expr) bool { return scratchTainted(e, tainted) }

	// Taint to a fixpoint: assignments can forward taint through
	// intermediate variables declared in any order within the body.
	for changed := true; changed; {
		changed = false
		inspectSameFunc(body, func(n ast.Node) {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" || tainted[id.Name] {
					continue
				}
				if isTainted(assign.Rhs[i]) {
					tainted[id.Name] = true
					changed = true
				}
			}
		})
	}

	inspectSameFunc(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if isTainted(res) {
					p.Reportf(res.Pos(),
						"returning a slice backed by the Scratch arena; the next solve reuses it — copy into a fresh slice first")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if _, isSel := lhs.(*ast.SelectorExpr); isSel && isTainted(n.Rhs[i]) {
					p.Reportf(n.Rhs[i].Pos(),
						"storing a Scratch-arena slice in a field; it outlives the solve — copy into a fresh slice first")
				}
			}
		case *ast.SendStmt:
			if isTainted(n.Value) {
				p.Reportf(n.Value.Pos(),
					"sending a Scratch-arena slice on a channel; the receiver outlives the solve — copy into a fresh slice first")
			}
		}
	})
}

// scratchTainted reports whether expr is arena-derived: a direct
// bufI32/bufI64/bufBool call, a tainted variable, or a slice/append/
// conversion built from one.
func scratchTainted(expr ast.Expr, tainted map[string]bool) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return tainted[e.Name]
	case *ast.ParenExpr:
		return scratchTainted(e.X, tainted)
	case *ast.SliceExpr:
		return scratchTainted(e.X, tainted)
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && scratchBufFuncs[sel.Sel.Name] {
			return true
		}
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" {
			for _, arg := range e.Args {
				if scratchTainted(arg, tainted) {
					return true
				}
			}
		}
		return false
	}
	return false
}
