package analysis

import "go/ast"

// CtxPath keeps the cancellation chain unbroken in request- and
// job-scoped code: inside internal/server, internal/jobs and cmd/sfcpd,
// a context.Background() or context.TODO() severs a solve from the
// request or daemon lifecycle that should be able to cancel it — the
// exact bug the job dispatcher shipped with, where daemon shutdown
// could not cancel running solves. Contexts there must derive from a
// caller's ctx, an *http.Request, or an explicitly-managed lifecycle
// context. func main is exempt: the process root context legitimately
// starts from Background. A deliberate root elsewhere (e.g. a manager's
// lifecycle context cancelled in Close) carries an //sfcpvet:ignore
// with its justification.
var CtxPath = &Analyzer{
	Name: "ctxpath",
	Doc:  "forbid context.Background/TODO in request- and job-scoped packages",
	Run:  runCtxPath,
}

// ctxScoped are the packages whose code runs per-request or per-job.
var ctxScoped = map[string]bool{
	"sfcp/internal/server":  true,
	"sfcp/internal/jobs":    true,
	"sfcp/internal/batcher": true,
	"sfcp/internal/store":   true,
	"sfcp/cmd/sfcpd":        true,
}

func runCtxPath(p *Pass) error {
	if !ctxScoped[p.Pkg.Path] {
		return nil
	}
	for _, f := range p.Pkg.Files {
		if f.IsTest {
			continue
		}
		local, ok := importName(f.AST, "context")
		if !ok || local == "." || local == "_" {
			continue
		}
		httpName, _ := importName(f.AST, "net/http")
		for _, decl := range f.AST.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil && fn.Name.Name == "main" && p.Pkg.Name == "main" {
				continue
			}
			inScope := callerCtxInScope(decl, local, httpName)
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, sym := range []string{"Background", "TODO"} {
					if isPkgSel(call.Fun, local, sym) {
						detail := "derive it from a lifecycle context cancelled on shutdown"
						if inScope {
							detail = "a caller context is in scope; use it"
						}
						p.Reportf(call.Pos(),
							"context.%s() in request/job-scoped package %s; %s", sym, p.Pkg.Path, detail)
					}
				}
				return true
			})
		}
	}
	return nil
}

// callerCtxInScope reports whether decl is a function with a
// context.Context or *http.Request parameter — i.e. a caller already
// handed it the context it should be deriving from.
func callerCtxInScope(decl ast.Decl, ctxName, httpName string) bool {
	fn, ok := decl.(*ast.FuncDecl)
	if !ok || fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		t := field.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if sel, ok := t.(*ast.SelectorExpr); ok {
			if isPkgSel(sel, ctxName, "Context") || (httpName != "" && isPkgSel(sel, httpName, "Request")) {
				return true
			}
		}
	}
	return false
}
