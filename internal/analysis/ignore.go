package analysis

import (
	"go/token"
	"strings"
)

// Suppression directives. A finding a human has judged acceptable is
// silenced where it occurs, with a mandatory reason:
//
//	//sfcpvet:ignore lockhold -- the send is to a buffered channel sized to the worker count
//	//sfcpvet:ignore-file enginedispatch -- the bench harness measures raw entry points
//
// An inline directive covers its own line and the line directly below it
// (so it can sit on its own line above the flagged statement); the file
// form covers the whole file. The analyzer list is comma-separated;
// "all" matches every analyzer. A directive missing the "-- reason"
// tail is reported as a finding instead of being honored.

const (
	ignorePrefix     = "//sfcpvet:ignore "
	ignoreFilePrefix = "//sfcpvet:ignore-file "
)

// ignoreSet indexes the package's directives for suppression checks.
type ignoreSet struct {
	// byLine maps filename -> line -> analyzer names covered on that line.
	byLine map[string]map[int][]string
	// byFile maps filename -> analyzer names covered file-wide.
	byFile map[string][]string
}

func (s *ignoreSet) suppressed(analyzer string, pos token.Position) bool {
	match := func(names []string) bool {
		for _, n := range names {
			if n == analyzer || n == "all" {
				return true
			}
		}
		return false
	}
	if match(s.byFile[pos.Filename]) {
		return true
	}
	lines := s.byLine[pos.Filename]
	return match(lines[pos.Line]) || match(lines[pos.Line-1])
}

// collectIgnores scans every comment of the package for directives.
// Malformed directives come back as findings under the "sfcpvet" name.
func collectIgnores(pkg *Package) (*ignoreSet, []Finding) {
	s := &ignoreSet{
		byLine: map[string]map[int][]string{},
		byFile: map[string][]string{},
	}
	var bad []Finding
	for _, f := range pkg.Files {
		for _, grp := range f.AST.Comments {
			for _, c := range grp.List {
				text, fileWide := "", false
				switch {
				case strings.HasPrefix(c.Text, ignoreFilePrefix):
					text, fileWide = c.Text[len(ignoreFilePrefix):], true
				case strings.HasPrefix(c.Text, ignorePrefix):
					text = c.Text[len(ignorePrefix):]
				default:
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				names, reason, ok := splitDirective(text)
				if !ok || reason == "" {
					bad = append(bad, Finding{
						Analyzer: "sfcpvet",
						Pos:      pos,
						Message:  `malformed suppression: want "//sfcpvet:ignore <analyzers> -- reason"`,
					})
					continue
				}
				if fileWide {
					s.byFile[pos.Filename] = append(s.byFile[pos.Filename], names...)
					continue
				}
				if s.byLine[pos.Filename] == nil {
					s.byLine[pos.Filename] = map[int][]string{}
				}
				s.byLine[pos.Filename][pos.Line] = append(s.byLine[pos.Filename][pos.Line], names...)
			}
		}
	}
	return s, bad
}

// splitDirective parses "<names> -- <reason>".
func splitDirective(text string) (names []string, reason string, ok bool) {
	head, tail, found := strings.Cut(text, "--")
	if !found {
		return nil, "", false
	}
	for _, n := range strings.Split(head, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, "", false
	}
	return names, strings.TrimSpace(tail), true
}
