package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
)

// MetricName keeps the /metrics exposition consistent with its
// increment sites. Every sfcpd_* metric family name must be a package
// constant (string-literal drift between a counter bump and its # TYPE
// line silently forks a family), each constant must flow through
// exactly one typeHeader(name, kind) call (one # TYPE line per family),
// and each must be emitted with a value at least once (a family with a
// TYPE line and no samples is dead). Two constants spelling the same
// family name are a collision.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "require sfcpd_* metric names to be constants with one # TYPE line and a sample site",
	Run:  runMetricName,
}

// A family name is the sfcpd_ prefix plus a non-empty stem; prose like
// "sfcpd_*" in documentation strings is not a name.
var (
	metricFamilyRE  = regexp.MustCompile(`^sfcpd_[a-z0-9_]*[a-z0-9]$`)
	metricMentionRE = regexp.MustCompile(`sfcpd_[a-z0-9]`)
)

func runMetricName(p *Pass) error {
	type metricConst struct {
		value    string
		pos      token.Pos
		typeUses int
		refs     int
	}
	consts := map[string]*metricConst{}    // const name -> info
	constLits := map[*ast.BasicLit]bool{}  // literals that *are* the const declarations
	declIdents := map[*ast.Ident]bool{}    // the declared names themselves
	typeArgIdents := map[*ast.Ident]bool{} // idents consumed as typeHeader name args
	var nonTest []*File
	for _, f := range p.Pkg.Files {
		if !f.IsTest {
			nonTest = append(nonTest, f)
		}
	}

	// Pass 1: the constant inventory.
	for _, f := range nonTest {
		for _, decl := range f.AST.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						break
					}
					lit, ok := vs.Values[i].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					val, err := strconv.Unquote(lit.Value)
					if err != nil || !metricFamilyRE.MatchString(val) {
						continue
					}
					constLits[lit] = true
					declIdents[name] = true
					for other, mc := range consts {
						if mc.value == val {
							p.Reportf(name.Pos(),
								"metric constants %s and %s both name family %q", other, name.Name, val)
						}
					}
					consts[name.Name] = &metricConst{value: val, pos: name.Pos()}
				}
			}
		}
	}

	// Pass 2: literals outside the const block, typeHeader calls, and
	// remaining references to the constants.
	for _, f := range nonTest {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if n.Kind != token.STRING || constLits[n] {
					return true
				}
				if val, err := strconv.Unquote(n.Value); err == nil && metricMentionRE.MatchString(val) {
					p.Reportf(n.Pos(),
						"metric family name in string literal %s; use the package constant so increment sites and # TYPE lines cannot drift", n.Value)
				}
			case *ast.CallExpr:
				name := ""
				switch fun := n.Fun.(type) {
				case *ast.Ident:
					name = fun.Name
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				}
				if name != "typeHeader" || len(n.Args) == 0 {
					return true
				}
				id, ok := n.Args[0].(*ast.Ident)
				if !ok {
					if _, isLit := n.Args[0].(*ast.BasicLit); !isLit { // literals are already flagged above
						p.Reportf(n.Args[0].Pos(), "non-constant metric name in typeHeader call")
					}
					return true
				}
				if mc, ok := consts[id.Name]; ok {
					mc.typeUses++
					typeArgIdents[id] = true
				}
			}
			return true
		})
	}
	for _, f := range nonTest {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || declIdents[id] || typeArgIdents[id] {
				return true
			}
			if mc, ok := consts[id.Name]; ok {
				mc.refs++
			}
			return true
		})
	}

	names := make([]string, 0, len(consts))
	for name := range consts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		mc := consts[name]
		switch {
		case mc.typeUses == 0:
			p.Reportf(mc.pos, "metric family %s (%q) has no # TYPE line: add one typeHeader call", name, mc.value)
		case mc.typeUses > 1:
			p.Reportf(mc.pos, "metric family %s (%q) has %d # TYPE lines; exposition format allows one per family", name, mc.value, mc.typeUses)
		}
		if mc.refs == 0 {
			p.Reportf(mc.pos, "metric family %s (%q) is never emitted with a value", name, mc.value)
		}
	}
	return nil
}
