// Fixture for the scratchalias analyzer: slices handed out by the
// arena escaping the solve that borrowed them.
package coarsest

type scratch struct{ i32 [][]int32 }

func (s *scratch) bufI32(n int) []int32 { return nil }

type holder struct{ kept []int32 }

func escapeReturn(sc *scratch, n int) []int32 {
	buf := sc.bufI32(n)
	fill(buf)
	return buf // want "returning a slice backed by the Scratch arena"
}

func escapeReslice(sc *scratch, n int) []int32 {
	buf := sc.bufI32(n)
	return buf[:n/2] // want "returning a slice backed by the Scratch arena"
}

func escapeThroughAppend(sc *scratch, n int) []int32 {
	buf := sc.bufI32(n)
	more := append(buf, 1)
	return more // want "returning a slice backed by the Scratch arena"
}

func escapeFieldStore(h *holder, sc *scratch, n int) {
	tmp := sc.bufI32(n)
	h.kept = tmp // want "storing a Scratch-arena slice in a field"
}

func escapeSend(sc *scratch, out chan []int32) {
	out <- sc.bufI32(8) // want "sending a Scratch-arena slice on a channel"
}

func fill(b []int32) {
	for i := range b {
		b[i] = int32(i)
	}
}
