// Fixture: arena buffers used inside the solve, or copied into fresh
// allocations before escaping — both fine.
package coarsest

type scratch struct{ i32 [][]int32 }

func (s *scratch) bufI32(n int) []int32 { return nil }

func copiedBeforeReturn(sc *scratch, n int) []int32 {
	buf := sc.bufI32(n)
	for i := range buf {
		buf[i] = int32(i)
	}
	out := make([]int32, n)
	copy(out, buf)
	return out
}

func internalUseOnly(sc *scratch, n int) int {
	buf := sc.bufI32(n)
	sum := 0
	for _, v := range buf {
		sum += int(v)
	}
	return sum
}

func freshAllocationEscapes(n int) []int32 {
	out := make([]int32, n)
	return out
}
