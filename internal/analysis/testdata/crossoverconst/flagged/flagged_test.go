// Test files are exempt: fixtures legitimately pin concrete sizes.
package engine

const testCrossover = 1 << 15

const testCrossoverDecimal = 32768
