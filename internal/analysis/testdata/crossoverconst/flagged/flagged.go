// Fixture for the crossoverconst analyzer, run under the
// "sfcp/internal/engine" import path: every respelling of the planner
// crossover value (decimal, hex, any constant shift that lands on it)
// is flagged, while neighbouring powers of two and the sanctioned named
// constant stay clean.
package engine

const minParallelN = 1 << 15 // want "literal 1<<15 is the planner crossover constant"

const crossoverDecimal = 32768 // want "literal 32768 is the planner crossover constant"

const crossoverHex = 0x8000 // want "literal 0x8000 is the planner crossover constant"

const crossoverDisguised = 2 << 14 // want "literal 2<<14 is the planner crossover constant"

// Neighbouring sizes are legitimate buffer and grain constants, not the
// crossover, and must not be flagged.
const (
	workerGrain = 1 << 14
	grainAlias  = 16384
	batchCap    = 32767
	bigBuffer   = 1 << 16
)

func thresholds() []int {
	//sfcpvet:ignore crossoverconst -- fixture: a justified suppression stays silent
	silenced := 32768
	return []int{minParallelN, silenced, workerGrain, grainAlias, batchCap, bigBuffer}
}
