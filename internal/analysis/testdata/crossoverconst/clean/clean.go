// Fixture for the crossoverconst analyzer, run under the
// "sfcp/internal/calib" import path: calib owns the crossover default,
// so the literal spellings that are findings everywhere else are the
// single sanctioned definition site here.
package calib

const DefaultMinParallelN = 1 << 15

const asDecimal = 32768

const asHex = 0x8000
