// Fixture analyzed under the package path "sfcp/internal/store": store
// operations run under job and request contexts; minting Background
// detaches a recovery scan or blob fetch from server shutdown.
package store

import "context"

type blobFetcher struct {
	lifecycle context.Context
}

func (b *blobFetcher) fetch(key string) error {
	ctx := context.Background() // want "context.Background.. in request/job-scoped package"
	_ = ctx
	_ = key
	return nil
}

func recoverScan(ctx context.Context) error {
	sub := context.TODO() // want "a caller context is in scope; use it"
	_ = sub
	return nil
}
