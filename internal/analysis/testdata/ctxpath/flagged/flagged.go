// Fixture analyzed under the package path "sfcp/internal/jobs".
package jobs

import (
	"context"
	"net/http"
)

type manager struct {
	lifecycle context.Context
}

// dispatch reproduces the pre-fix jobs.go dispatcher: the running
// job's context was minted from Background, detaching it from manager
// shutdown so Close could never cancel an in-flight solve.
func (m *manager) dispatch() {
	ctx, cancel := context.WithCancel(context.Background()) // want "context.Background.. in request/job-scoped package"
	defer cancel()
	_ = ctx
}

func handler(ctx context.Context, n int) int {
	sub := context.TODO() // want "context.TODO.. in request/job-scoped package sfcp/internal/jobs; a caller context is in scope; use it"
	_ = sub
	return n
}

func httpHandler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "a caller context is in scope; use it"
	_ = ctx
}

// newManager mirrors the real lifecycle root: the one sanctioned
// Background call, annotated with the reason it is exempt.
func newManager() *manager {
	//sfcpvet:ignore ctxpath -- fixture: the lifecycle root, cancelled in Close; job contexts derive from it
	ctx, cancel := context.WithCancel(context.Background())
	_ = cancel
	return &manager{lifecycle: ctx}
}
