// Fixture analyzed under the package path "sfcp/internal/jobs":
// contexts derived from the lifecycle root or a caller are fine.
package jobs

import (
	"context"
	"time"
)

type manager struct {
	lifecycle context.Context
}

func (m *manager) dispatch() {
	ctx, cancel := context.WithCancel(m.lifecycle)
	defer cancel()
	_ = ctx
}

func handler(ctx context.Context) error {
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return sub.Err()
}
