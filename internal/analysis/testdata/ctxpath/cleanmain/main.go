// Fixture analyzed under the package path "sfcp/cmd/sfcpd": main is
// the process entry point, the one place a root context is minted.
package main

import "context"

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_ = ctx
}
