// Fixture analyzed under the package path "sfcp/internal/store":
// contexts always derive from the caller or the store's lifecycle root.
package store

import (
	"context"
	"time"
)

type blobFetcher struct {
	lifecycle context.Context
}

func (b *blobFetcher) fetch(ctx context.Context, key string) error {
	sub, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	_ = key
	return sub.Err()
}

func (b *blobFetcher) sweep() error {
	ctx, cancel := context.WithCancel(b.lifecycle)
	defer cancel()
	return ctx.Err()
}
