// Fixture analyzed under the package path "sfcp/internal/store": the
// durable-store shapes lockhold must catch — journal file I/O and
// wire-codec encodes inside the store mutex.
package store

import (
	"encoding/json"
	"io"
	"sync"
)

type journal struct {
	mu   sync.Mutex
	f    io.Writer
	recs map[string]int
}

func (j *journal) appendUnderLock(line []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.f.Write(line) // want "I/O call Write while j.mu is locked"
}

func (j *journal) encodeUnderLock(rec any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	json.NewEncoder(j.f).Encode(rec) // want "I/O call Encode while j.mu is locked"
}

func (j *journal) copyUnderLock(dst io.Writer, src io.Reader) {
	j.mu.Lock()
	io.Copy(dst, src) // want "I/O call Copy while j.mu is locked"
	j.mu.Unlock()
}

func (j *journal) visitInsideLock(fn func(int) error, ch chan int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, r := range j.recs {
		ch <- r // want "channel send while j.mu is locked"
		_ = fn(r)
	}
}
