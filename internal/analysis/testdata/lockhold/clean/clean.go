// Fixture analyzed under the package path "sfcp/internal/server":
// blocking work kept outside the critical section.
package server

import "sync"

type state struct {
	mu   sync.Mutex
	cond *sync.Cond
	ch   chan int
	n    int
}

func (s *state) sendOutsideLock(v int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- v
}

func (s *state) condWait() {
	// Waiting on a sync.Cond with its mutex held is the condvar
	// protocol, not a convoy.
	s.mu.Lock()
	for s.n == 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

func (s *state) closureUnderLock() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The closure runs after the lock is released.
	return func() { s.ch <- s.n }
}

func (s *state) distinctMutexes(other *state, v int) {
	s.mu.Lock()
	s.n = v
	s.mu.Unlock()
	other.mu.Lock()
	other.n = v
	other.mu.Unlock()
}
