// Fixture analyzed under the package path "sfcp/internal/server".
package server

import (
	"io"
	"sync"
)

type state struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func (s *state) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while s.mu is locked"
	s.mu.Unlock()
}

func (s *state) recvUnderDeferredLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive while s.mu is locked"
}

func (s *state) solveUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.solve() // want "solver invocation solve while s.mu is locked"
}

func (s *state) waitUnderLock(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "blocking Wait while s.mu is locked"
	s.mu.Unlock()
}

func (s *state) writeUnderLock(w io.Writer, b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Write(b) // want "I/O call Write while s.mu is locked"
}

func (s *state) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select while s.mu is locked"
	case v := <-s.ch: // want "channel receive while s.mu is locked"
		s.n = v
	default:
	}
}

func (s *state) solve() {}
