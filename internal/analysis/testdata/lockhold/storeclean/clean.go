// Fixture analyzed under the package path "sfcp/internal/store": the
// sanctioned durable-store patterns — snapshot under the lock, visit
// and stream outside it, and the explicitly-annotated WAL append (a
// small buffered write taken under the mutex so one record's
// transitions can never reach the journal out of order).
package store

import (
	"io"
	"sort"
	"sync"
)

type journal struct {
	mu   sync.Mutex
	f    io.Writer
	recs map[string]int
}

// scan snapshots under the lock and visits outside it, so a slow
// callback never convoys writers.
func (j *journal) scan(fn func(int) error) error {
	j.mu.Lock()
	out := make([]int, 0, len(j.recs))
	for _, r := range j.recs {
		out = append(out, r)
	}
	j.mu.Unlock()
	sort.Ints(out)
	for _, r := range out {
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// put appends its journal line while holding the mutex — the write-ahead
// ordering guarantee — under an explicit suppression naming the reason.
func (j *journal) put(id string, v int, line []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs[id] = v
	//sfcpvet:ignore lockhold -- fixture: WAL append; the lock is what orders one record's transitions
	_, err := j.f.Write(line)
	return err
}

// persist streams a payload with no lock held at all.
func (j *journal) persist(w io.Writer, payload io.Reader) error {
	_, err := io.Copy(w, payload)
	return err
}
