// Fixture for the metricname analyzer (the analyzer is not
// package-scoped; the suite runs it under "sfcp/internal/server").
package server

import "fmt"

const (
	metricGoodTotal = "sfcpd_good_total"
	metricNoType    = "sfcpd_missing_type_total" // want "has no # TYPE line"
	metricDupType   = "sfcpd_dup_type_total"     // want "has 2 # TYPE lines"
	metricUnused    = "sfcpd_unused_total"       // want "never emitted with a value"
	metricCopy      = "sfcpd_good_total"         // want "metric constants metricGoodTotal and metricCopy both name family"
)

func render() string {
	var b []byte
	emit := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	emit(typeHeader(metricGoodTotal, "counter"))
	emit("%s %d\n", metricGoodTotal, 1)
	emit("%s %d\n", metricNoType, 2)
	emit(typeHeader(metricDupType, "counter"))
	emit(typeHeader(metricDupType, "counter"))
	emit("%s %d\n", metricDupType, 3)
	emit(typeHeader(metricUnused, "counter"))
	emit(typeHeader(metricCopy, "counter"))
	emit("%s %d\n", metricCopy, 4)
	emit("sfcpd_raw_literal_total 5\n")        // want "metric family name in string literal"
	emit("sfcpd_plan_calibrated 1\n")          // want "metric family name in string literal"
	emit(typeHeader(dynamicName(), "counter")) // want "non-constant metric name in typeHeader call"
	return string(b)
}

func dynamicName() string { return "dynamic" }

func typeHeader(name, kind string) string { return "# TYPE " + name + " " + kind + "\n" }
