// Fixture: every family is a constant with one # TYPE line and at
// least one sample site; prose mentions of the sfcpd_ prefix alone
// (as in this comment) are not names.
package server

import "fmt"

const (
	metricHitsTotal = "sfcpd_hits_total"
	metricQueueLen  = "sfcpd_queue_len"
	// The calibration family pair mirrors renderCalibration: a bare 0/1
	// gauge plus a labeled threshold gauge emitted once per field.
	metricPlanCalibrated = "sfcpd_plan_calibrated"
	metricPlanProfile    = "sfcpd_plan_profile"
)

func render() string {
	var b []byte
	emit := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	emit(typeHeader(metricHitsTotal, "counter"))
	emit("%s %d\n", metricHitsTotal, 10)
	emit(typeHeader(metricQueueLen, "gauge"))
	emit("%s{queue=%q} %d\n", metricQueueLen, "solve", 3)
	emit(typeHeader(metricPlanCalibrated, "gauge"))
	emit("%s %d\n", metricPlanCalibrated, 1)
	emit(typeHeader(metricPlanProfile, "gauge"))
	for _, field := range []string{"min_parallel_n", "worker_grain"} {
		emit("%s{field=%q} %d\n", metricPlanProfile, field, 1)
	}
	return string(b)
}

func typeHeader(name, kind string) string { return "# TYPE " + name + " " + kind + "\n" }
