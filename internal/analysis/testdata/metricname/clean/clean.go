// Fixture: every family is a constant with one # TYPE line and at
// least one sample site; prose mentions of the sfcpd_ prefix alone
// (as in this comment) are not names.
package server

import "fmt"

const (
	metricHitsTotal = "sfcpd_hits_total"
	metricQueueLen  = "sfcpd_queue_len"
)

func render() string {
	var b []byte
	emit := func(format string, args ...any) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	emit(typeHeader(metricHitsTotal, "counter"))
	emit("%s %d\n", metricHitsTotal, 10)
	emit(typeHeader(metricQueueLen, "gauge"))
	emit("%s{queue=%q} %d\n", metricQueueLen, "solve", 3)
	return string(b)
}

func typeHeader(name, kind string) string { return "# TYPE " + name + " " + kind + "\n" }
