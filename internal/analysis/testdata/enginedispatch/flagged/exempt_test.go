package other

import "sfcp/internal/coarsest"

// Test files may call solver entry points directly: differential tests
// compare the solvers against each other.
func compareForTest(in coarsest.Instance) bool {
	return coarsest.NumClasses(coarsest.Moore(in)) == coarsest.NumClasses(coarsest.Hopcroft(in))
}
