// Fixture analyzed under the package path "sfcp/internal/other": a
// package outside the engine reaching for solver entry points.
package other

import "sfcp/internal/coarsest"

func solveDirectly(in coarsest.Instance) []int {
	return coarsest.Hopcroft(in) // want "direct use of coarsest.Hopcroft"
}

func solverValueEscapes() func(coarsest.Instance) []int {
	f := coarsest.LinearSequential // want "direct use of coarsest.LinearSequential"
	return f
}

func helpersAreFine(labels []int) int {
	// Non-solver helpers stay usable everywhere.
	return coarsest.NumClasses(labels)
}

func suppressedBaseline(in coarsest.Instance) []int {
	//sfcpvet:ignore enginedispatch -- fixture: a measured baseline, like the bench harness
	return coarsest.Moore(in)
}
