// Fixture analyzed under the package path "sfcp/internal/other": the
// incremental entry point is guarded like the coarsest solvers.
package other

import "sfcp/internal/incr"

func buildDirectly(f, b []int) (*incr.State, error) {
	return incr.Build(struct{ F, B []int }{f, b}) // want "direct use of incr.Build"
}

func buildValueEscapes() any {
	g := incr.Build // want "direct use of incr.Build"
	return g
}

func typesAreFine(e incr.Edit) incr.Info {
	// The Edit/Info value types stay usable everywhere; only the
	// state constructor is the engine's.
	return incr.Info{DirtyNodes: e.Node}
}

func suppressedBuild(f, b []int) (*incr.State, error) {
	//sfcpvet:ignore enginedispatch -- fixture: calibration fits the raw machinery
	return incr.Build(struct{ F, B []int }{f, b})
}
