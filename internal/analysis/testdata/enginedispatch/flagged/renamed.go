package other

import cp "sfcp/internal/coarsest"

func renamedImport(in cp.Instance) []int {
	return cp.Moore(in) // want "direct use of cp.Moore"
}
