// Fixture analyzed under the package path "sfcp/internal/engine": the
// engine owns the incremental entry point too.
package engine

import "sfcp/internal/incr"

func newIncrementalRow(f, b []int) (*incr.State, error) {
	return incr.Build(struct{ F, B []int }{f, b})
}
