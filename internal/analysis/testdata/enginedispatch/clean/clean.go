// Fixture analyzed under the package path "sfcp/internal/engine": the
// dispatch table owner may invoke any solver entry point.
package engine

import "sfcp/internal/coarsest"

func dispatchRow(in coarsest.Instance) []int {
	return coarsest.Hopcroft(in)
}

func anotherRow(in coarsest.Instance, workers int) []int {
	return coarsest.NativeParallel(in, workers)
}
