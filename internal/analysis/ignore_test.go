package analysis

import (
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

func parseFixture(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return &Package{
		Path:  "sfcp/internal/server",
		Name:  f.Name.Name,
		Fset:  fset,
		Files: []*File{{AST: f, Name: "fixture.go"}},
	}
}

func TestSplitDirective(t *testing.T) {
	cases := []struct {
		in     string
		names  []string
		reason string
		ok     bool
	}{
		{"lockhold -- buffered channel sized to workers", []string{"lockhold"}, "buffered channel sized to workers", true},
		{"lockhold, ctxpath -- two at once", []string{"lockhold", "ctxpath"}, "two at once", true},
		{"all -- fixture file", []string{"all"}, "fixture file", true},
		{"lockhold", nil, "", false},       // no reason separator
		{"-- reason only", nil, "", false}, // no analyzer names
	}
	for _, c := range cases {
		names, reason, ok := splitDirective(c.in)
		if ok != c.ok || reason != c.reason || !reflect.DeepEqual(names, c.names) {
			t.Errorf("splitDirective(%q) = %v, %q, %v; want %v, %q, %v",
				c.in, names, reason, ok, c.names, c.reason, c.ok)
		}
	}
}

func TestMalformedDirectiveIsReported(t *testing.T) {
	pkg := parseFixture(t, `package server

//sfcpvet:ignore lockhold
var x = 1
`)
	set, bad := collectIgnores(pkg)
	if len(bad) != 1 {
		t.Fatalf("got %d malformed-directive findings, want 1: %v", len(bad), bad)
	}
	if bad[0].Analyzer != "sfcpvet" || bad[0].Pos.Line != 3 {
		t.Errorf("finding = %+v; want analyzer sfcpvet at line 3", bad[0])
	}
	// A malformed directive must not suppress anything.
	if set.suppressed("lockhold", token.Position{Filename: "fixture.go", Line: 4}) {
		t.Error("malformed directive still suppressed the line below it")
	}
}

func TestDirectiveCoverage(t *testing.T) {
	pkg := parseFixture(t, `package server

//sfcpvet:ignore lockhold -- reason one
var a = 1

var b = 2 //sfcpvet:ignore ctxpath, metricname -- reason two

var c = 3
`)
	set, bad := collectIgnores(pkg)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed findings: %v", bad)
	}
	at := func(line int) token.Position { return token.Position{Filename: "fixture.go", Line: line} }

	if !set.suppressed("lockhold", at(3)) || !set.suppressed("lockhold", at(4)) {
		t.Error("inline directive should cover its own line and the next")
	}
	if set.suppressed("lockhold", at(5)) {
		t.Error("inline directive leaked past the line below it")
	}
	if set.suppressed("ctxpath", at(4)) {
		t.Error("wrong analyzer suppressed")
	}
	if !set.suppressed("ctxpath", at(6)) || !set.suppressed("metricname", at(6)) {
		t.Error("comma-separated analyzer list not honored")
	}
}

func TestFileWideDirectiveAndAllWildcard(t *testing.T) {
	pkg := parseFixture(t, `package server

//sfcpvet:ignore-file all -- generated fixture
var a = 1
`)
	set, bad := collectIgnores(pkg)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed findings: %v", bad)
	}
	pos := token.Position{Filename: "fixture.go", Line: 42}
	if !set.suppressed("lockhold", pos) || !set.suppressed("scratchalias", pos) {
		t.Error("file-wide all directive should suppress every analyzer on every line")
	}
	if set.suppressed("lockhold", token.Position{Filename: "other.go", Line: 42}) {
		t.Error("file-wide directive leaked into a different file")
	}
}
