package analysis_test

import (
	"testing"

	"sfcp/internal/analysis"
	"sfcp/internal/analysis/analysistest"
)

// The fixtures live in testdata and are analyzed under the package
// paths the analyzers key on, so each flagged fixture reproduces the
// exact shape of a violation in the scoped package (including the
// pre-fix jobs.go dispatcher) and each clean fixture pins the sanctioned
// pattern.

func TestEngineDispatch(t *testing.T) {
	analysistest.Run(t, analysis.EngineDispatch, "sfcp/internal/other", "testdata/enginedispatch/flagged")
	analysistest.Run(t, analysis.EngineDispatch, "sfcp/internal/engine", "testdata/enginedispatch/clean")
}

func TestCtxPath(t *testing.T) {
	analysistest.Run(t, analysis.CtxPath, "sfcp/internal/jobs", "testdata/ctxpath/flagged")
	analysistest.Run(t, analysis.CtxPath, "sfcp/internal/jobs", "testdata/ctxpath/clean")
	analysistest.Run(t, analysis.CtxPath, "sfcp/cmd/sfcpd", "testdata/ctxpath/cleanmain")
	analysistest.Run(t, analysis.CtxPath, "sfcp/internal/store", "testdata/ctxpath/storeflagged")
	analysistest.Run(t, analysis.CtxPath, "sfcp/internal/store", "testdata/ctxpath/storeclean")
}

// TestCtxPathOutOfScope runs the flagged fixture under an unscoped
// package path: the same Background calls draw no findings there.
func TestCtxPathOutOfScope(t *testing.T) {
	root, modPath, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.LoadDir(root, modPath, "testdata/ctxpath/flagged")
	if err != nil {
		t.Fatal(err)
	}
	pkg.Path = "sfcp/internal/bench"
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{analysis.CtxPath})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected finding outside scoped packages: %s", f)
	}
}

func TestLockHold(t *testing.T) {
	analysistest.Run(t, analysis.LockHold, "sfcp/internal/server", "testdata/lockhold/flagged")
	analysistest.Run(t, analysis.LockHold, "sfcp/internal/server", "testdata/lockhold/clean")
	analysistest.Run(t, analysis.LockHold, "sfcp/internal/store", "testdata/lockhold/storeflagged")
	analysistest.Run(t, analysis.LockHold, "sfcp/internal/store", "testdata/lockhold/storeclean")
}

func TestMetricName(t *testing.T) {
	analysistest.Run(t, analysis.MetricName, "sfcp/internal/server", "testdata/metricname/flagged")
	analysistest.Run(t, analysis.MetricName, "sfcp/internal/server", "testdata/metricname/clean")
}

func TestCrossoverConst(t *testing.T) {
	analysistest.Run(t, analysis.CrossoverConst, "sfcp/internal/engine", "testdata/crossoverconst/flagged")
	analysistest.Run(t, analysis.CrossoverConst, "sfcp/internal/calib", "testdata/crossoverconst/clean")
}

func TestScratchAlias(t *testing.T) {
	analysistest.Run(t, analysis.ScratchAlias, "sfcp/internal/coarsest", "testdata/scratchalias/flagged")
	analysistest.Run(t, analysis.ScratchAlias, "sfcp/internal/coarsest", "testdata/scratchalias/clean")
}

// TestTreeClean is the in-repo gate: the full module must pass every
// analyzer, so `go test` fails the moment an invariant regresses even
// before CI runs the sfcpvet binary.
func TestTreeClean(t *testing.T) {
	root, modPath, err := analysis.FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadTree(root, modPath, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages from module tree")
	}
	findings, err := analysis.Run(pkgs, analysis.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
}
