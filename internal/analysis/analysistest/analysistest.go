// Package analysistest runs one analyzer over a fixture directory and
// checks its findings against // want annotations — a dependency-free
// miniature of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture file marks each expected finding with a comment on the
// offending line:
//
//	ch <- v // want "channel send"
//
// The quoted string is a regular expression matched against the
// finding's message; several strings expect several findings on the
// line. Lines without a want comment must produce no findings, so every
// fixture is simultaneously a flagged and a clean case for its lines.
// Suppression directives (//sfcpvet:ignore) are honored, letting
// fixtures assert that silenced findings stay silent.
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"sfcp/internal/analysis"
)

// Run analyzes the single package in dir under the import path pkgPath
// (fixtures sit in testdata, so the path the analyzer keys on must be
// supplied) and reports mismatches against the // want annotations.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath, dir string) {
	t.Helper()
	root, modPath, err := analysis.FindModule(dir)
	if err != nil {
		t.Fatalf("locating module: %v", err)
	}
	pkg, err := analysis.LoadDir(root, modPath, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("no Go files in %s", dir)
	}
	pkg.Path = pkgPath
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))
	for _, f := range findings {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants parses every `// want "re" ["re" ...]` comment of the
// fixture package.
func collectWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, grp := range f.AST.Comments {
			for _, c := range grp.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitQuoted(rest)
				if err != nil || len(patterns) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted extracts the double-quoted strings of a want comment.
func splitQuoted(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		if s[0] != '"' {
			return nil, fmt.Errorf("expected quoted pattern at %q", s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		out = append(out, strings.ReplaceAll(s[1:end], `\"`, `"`))
		s = s[end+1:]
	}
}
