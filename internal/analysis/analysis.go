// Package analysis is sfcpvet's analyzer suite: project-specific static
// checks that turn the codebase's concurrency and dispatch conventions
// into mechanically enforced invariants. The six analyzers are
//
//	enginedispatch — internal/coarsest solver entry points may only be
//	                 invoked from internal/engine's dispatch table
//	ctxpath        — request- and job-scoped packages must not mint
//	                 context.Background()/TODO() detached from a caller
//	                 or lifecycle context
//	lockhold       — no channel operations, solver invocations or I/O
//	                 while a sync.Mutex/RWMutex is held
//	metricname     — every sfcpd_* metric family name is a package
//	                 constant with exactly one # TYPE line and at least
//	                 one sample site
//	scratchalias   — slices handed out by a coarsest.Scratch arena must
//	                 not be returned or stored without a copy
//	crossoverconst — the planner's 1<<15 crossover default may be
//	                 spelled literally only in internal/calib; everyone
//	                 else consumes the named constant or the active
//	                 calibration profile
//
// The module is deliberately dependency-free, so instead of building on
// golang.org/x/tools/go/analysis this package carries a minimal clone of
// that API's shape (Analyzer/Pass/Diagnostic) driven purely by the
// standard library's parser. The analyzers are syntactic: they resolve
// package identity from import paths and spelling rather than go/types,
// which keeps them fast and hermetic at the cost of being heuristics —
// a renamed import is followed, but an aliased type is not. Findings a
// human has judged acceptable are silenced in place with
//
//	//sfcpvet:ignore <analyzer>[,<analyzer>] -- reason
//
// on (or immediately above) the offending line, or file-wide with
// //sfcpvet:ignore-file. A directive without a reason is itself a
// finding: suppressions must say why.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Analyzer is one named check. Run inspects a package and reports
// findings through the pass; it returns an error only for internal
// failures, never for findings.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// File is one parsed source file plus the metadata analyzers key on.
type File struct {
	AST    *ast.File
	Name   string // file name as given to the parser
	IsTest bool   // *_test.go — most analyzers exempt tests
}

// Package is the unit an analyzer runs over: every file of one
// directory, test files included, under the directory's import path.
type Package struct {
	Path  string // import path, e.g. "sfcp/internal/server"
	Name  string // package name of the non-test files
	Fset  *token.FileSet
	Files []*File
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet
	report   func(Diagnostic)
}

// Diagnostic is a single finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: analyzer name plus concrete position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzers returns the full suite in canonical order.
func Analyzers() []*Analyzer {
	return []*Analyzer{EngineDispatch, CtxPath, LockHold, MetricName, ScratchAlias, CrossoverConst}
}

// Run executes the analyzers over the packages, applies //sfcpvet:ignore
// suppressions, and returns the surviving findings sorted by position.
// Malformed directives (no reason) surface as findings themselves.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		ign, bad := collectIgnores(pkg)
		findings = append(findings, bad...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Fset: pkg.Fset}
			pass.report = func(d Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				if ign.suppressed(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// importName returns the local name under which f imports path, or
// "", false when it does not. Renamed imports follow the rename; dot
// and blank imports return their spelling so callers can reject them.
func importName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name, true
		}
		if i := strings.LastIndex(p, "/"); i >= 0 {
			p = p[i+1:]
		}
		return p, true
	}
	return "", false
}

// isPkgSel reports whether expr is pkgName.sym where pkgName is a bare
// package identifier (not a field access on a local variable).
func isPkgSel(expr ast.Expr, pkgName, sym string) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != sym {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkgName && id.Obj == nil
}

// exprString renders a small expression (a lock receiver, a callee) the
// way it is spelled, for matching and messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	}
	return "<expr>"
}
