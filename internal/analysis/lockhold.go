package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// LockHold flags work performed while a sync.Mutex/RWMutex is held in
// internal/server and internal/jobs: channel sends/receives, selects,
// solver invocations, blocking waits, sleeps and I/O. Mutexes there
// guard in-memory maps and counters on request hot paths — holding one
// across anything that can block turns every other request into a
// convoy (or, with channels, a deadlock).
//
// The check is syntactic and per-function: a region starts at a
// x.Lock()/x.RLock() call and ends at the next x.Unlock()/x.RUnlock()
// with the same spelled receiver (a deferred unlock extends the region
// to the end of the function). Nested function literals are analyzed as
// their own bodies — a closure defined under a lock usually runs
// elsewhere. sync.Cond receivers are exempt from the Wait rule: waiting
// with the mutex held is the condvar protocol.
var LockHold = &Analyzer{
	Name: "lockhold",
	Doc:  "forbid channel operations, solver calls and I/O while a mutex is held",
	Run:  runLockHold,
}

var lockScoped = map[string]bool{
	"sfcp/internal/server":  true,
	"sfcp/internal/jobs":    true,
	"sfcp/internal/batcher": true,
	"sfcp/internal/store":   true,
}

// lockBlockingIO names callees that perform (or can perform) blocking
// I/O or scheduling waits when reached with a lock held.
var lockBlockingIO = map[string]bool{
	"Read": true, "Write": true, "ReadAll": true, "ReadFull": true,
	"Copy": true, "WriteString": true, "WriteTo": true, "ReadFrom": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true, "Flush": true,
	"Do": true, "Encode": true, "Decode": true, "Sleep": true,
}

func runLockHold(p *Pass) error {
	if !lockScoped[p.Pkg.Path] {
		return nil
	}
	for _, f := range p.Pkg.Files {
		if f.IsTest {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkLockRegions(p, fn.Body)
				}
			case *ast.FuncLit:
				checkLockRegions(p, fn.Body)
			}
			return true
		})
	}
	return nil
}

type lockEvent struct {
	pos    token.Pos
	recv   string
	unlock bool
}

type lockRegion struct {
	recv     string
	from, to token.Pos
}

// checkLockRegions computes the held intervals of one function body and
// flags blocking work inside them. Nested function literals are skipped
// here (the caller visits them as separate bodies).
func checkLockRegions(p *Pass, body *ast.BlockStmt) {
	deferred := map[*ast.CallExpr]bool{}
	var events []lockEvent
	inspectSameFunc(body, func(n ast.Node) {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		switch sel.Sel.Name {
		case "Lock", "RLock":
			events = append(events, lockEvent{pos: call.Pos(), recv: exprString(sel.X)})
		case "Unlock", "RUnlock":
			if !deferred[call] {
				events = append(events, lockEvent{pos: call.Pos(), recv: exprString(sel.X), unlock: true})
			}
		}
	})
	if len(events) == 0 {
		return
	}
	var regions []lockRegion
	used := make([]bool, len(events))
	for i, ev := range events {
		if ev.unlock {
			continue
		}
		region := lockRegion{recv: ev.recv, from: ev.pos, to: body.End()}
		for j := i + 1; j < len(events); j++ {
			if events[j].unlock && !used[j] && events[j].recv == ev.recv {
				region.to = events[j].pos
				used[j] = true
				break
			}
		}
		regions = append(regions, region)
	}
	held := func(pos token.Pos) (string, bool) {
		for _, r := range regions {
			if pos > r.from && pos < r.to {
				return r.recv, true
			}
		}
		return "", false
	}
	flag := func(pos token.Pos, what string) {
		if recv, ok := held(pos); ok {
			p.Reportf(pos, "%s while %s is locked; shrink the critical section", what, recv)
		}
	}
	inspectSameFunc(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SendStmt:
			flag(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				flag(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			flag(n.Pos(), "select")
		case *ast.CallExpr:
			if what, ok := blockingCall(n); ok {
				flag(n.Pos(), what)
			}
		}
	})
}

// blockingCall classifies a call as blocking work by callee name.
func blockingCall(call *ast.CallExpr) (string, bool) {
	var name, recv string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		recv = exprString(fun.X)
	default:
		return "", false
	}
	lower := strings.ToLower(name)
	switch {
	case strings.HasPrefix(lower, "solve"):
		return "solver invocation " + name, true
	case lower == "submit":
		return "pool submission", true
	case name == "Wait":
		// cond.Wait with the mutex held is the sync.Cond protocol.
		if strings.HasSuffix(strings.ToLower(recv), "cond") {
			return "", false
		}
		return "blocking Wait", true
	case lockBlockingIO[name]:
		return "I/O call " + name, true
	}
	return "", false
}

// inspectSameFunc visits every node of body without descending into
// nested function literals.
func inspectSameFunc(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
