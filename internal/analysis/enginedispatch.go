package analysis

import "go/ast"

// EngineDispatch enforces the PR-4 unification: internal/engine's
// dispatch table is the only place a coarsest-partition solver may be
// invoked. Outside internal/engine, the solver packages themselves and
// test files, any reference to a solver entry point — call, function
// value, anything — is a finding. Non-solver helpers (Instance, Scratch,
// NumClasses, SamePartition, the incr.Edit/Info types, ...) stay free to
// use. The same rule covers the incremental path: incr.Build constructs
// live decomposition state, so it must flow through engine.NewIncremental
// where the planner and calibration profile see it.
var EngineDispatch = &Analyzer{
	Name: "enginedispatch",
	Doc:  "forbid direct use of solver entry points (coarsest solvers, incr.Build) outside internal/engine",
	Run:  runEngineDispatch,
}

// dispatchRule scopes one guarded package: its solver entry points and
// the packages allowed to touch them directly.
type dispatchRule struct {
	path    string          // guarded import path
	entries map[string]bool // entry-point identifiers in that package
	exempt  map[string]bool // packages allowed direct use
}

// dispatchRules lists every guarded solver surface. Adding a solver
// means adding its name here alongside its engine dispatch row.
var dispatchRules = []dispatchRule{
	{
		path: "sfcp/internal/coarsest",
		entries: map[string]bool{
			"Moore":                   true,
			"Hopcroft":                true,
			"LinearSequential":        true,
			"NativeParallel":          true,
			"NativeParallelScratch":   true,
			"NativeParallelCtx":       true,
			"ParallelPRAM":            true,
			"ParallelPRAMContext":     true,
			"DoublingHashPRAM":        true,
			"DoublingHashPRAMContext": true,
			"DoublingSortPRAM":        true,
			"DoublingSortPRAMContext": true,
			"ChoHuynhPRAM":            true,
		},
		exempt: map[string]bool{
			"sfcp/internal/engine":   true,
			"sfcp/internal/coarsest": true,
		},
	},
	{
		path:    "sfcp/internal/incr",
		entries: map[string]bool{"Build": true},
		exempt: map[string]bool{
			"sfcp/internal/engine":   true,
			"sfcp/internal/coarsest": true,
			"sfcp/internal/incr":     true,
		},
	},
}

func runEngineDispatch(p *Pass) error {
	for _, rule := range dispatchRules {
		if rule.exempt[p.Pkg.Path] {
			continue
		}
		for _, f := range p.Pkg.Files {
			if f.IsTest {
				continue
			}
			local, ok := importName(f.AST, rule.path)
			if !ok {
				continue
			}
			if local == "." {
				// A dot import makes entry-point references untrackable.
				p.Reportf(f.AST.Name.Pos(), "dot import of %s hides solver entry points; import it by name", rule.path)
				continue
			}
			ast.Inspect(f.AST, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !rule.entries[sel.Sel.Name] || !isPkgSel(sel, local, sel.Sel.Name) {
					return true
				}
				p.Reportf(sel.Pos(),
					"direct use of %s.%s outside internal/engine; route the solve through the engine dispatch table",
					local, sel.Sel.Name)
				return true
			})
		}
	}
	return nil
}
