package analysis

import "go/ast"

// EngineDispatch enforces the PR-4 unification: internal/engine's
// dispatch table is the only place a coarsest-partition solver may be
// invoked. Outside internal/engine, internal/coarsest itself and test
// files, any reference to a solver entry point of internal/coarsest —
// call, function value, anything — is a finding. Non-solver helpers
// (Instance, Scratch, NumClasses, SamePartition, ...) stay free to use.
var EngineDispatch = &Analyzer{
	Name: "enginedispatch",
	Doc:  "forbid direct use of internal/coarsest solver entry points outside internal/engine",
	Run:  runEngineDispatch,
}

const coarsestPath = "sfcp/internal/coarsest"

// coarsestEntryPoints are the solver entry points of internal/coarsest:
// the functions the engine's dispatch table maps Algorithm values to.
// Adding a solver means adding its names here alongside the dispatch row.
var coarsestEntryPoints = map[string]bool{
	"Moore":                   true,
	"Hopcroft":                true,
	"LinearSequential":        true,
	"NativeParallel":          true,
	"NativeParallelScratch":   true,
	"NativeParallelCtx":       true,
	"ParallelPRAM":            true,
	"ParallelPRAMContext":     true,
	"DoublingHashPRAM":        true,
	"DoublingHashPRAMContext": true,
	"DoublingSortPRAM":        true,
	"DoublingSortPRAMContext": true,
	"ChoHuynhPRAM":            true,
}

// dispatchExempt lists the packages allowed to touch the entry points:
// the engine (it owns the dispatch table) and coarsest itself.
var dispatchExempt = map[string]bool{
	"sfcp/internal/engine":   true,
	"sfcp/internal/coarsest": true,
}

func runEngineDispatch(p *Pass) error {
	if dispatchExempt[p.Pkg.Path] {
		return nil
	}
	for _, f := range p.Pkg.Files {
		if f.IsTest {
			continue
		}
		local, ok := importName(f.AST, coarsestPath)
		if !ok {
			continue
		}
		if local == "." {
			// A dot import makes entry-point references untrackable.
			p.Reportf(f.AST.Name.Pos(), "dot import of %s hides solver entry points; import it by name", coarsestPath)
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !coarsestEntryPoints[sel.Sel.Name] || !isPkgSel(sel, local, sel.Sel.Name) {
				return true
			}
			p.Reportf(sel.Pos(),
				"direct use of %s.%s outside internal/engine; route the solve through the engine dispatch table",
				local, sel.Sel.Name)
			return true
		})
	}
	return nil
}
