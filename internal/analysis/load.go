package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The loader is a minimal, network-free stand-in for go/packages: it
// walks the module tree, parses every .go file with comments, and groups
// files by directory under the directory's import path. No type checking
// happens — the suite is syntactic by design — so a package with files
// that merely parse is enough to analyze.

// FindModule ascends from dir to the enclosing go.mod and returns the
// module root directory and module path.
func FindModule(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}

// LoadTree parses every package under root (the module root) whose
// directory lies inside subtree (absolute; equal to root for "./...").
// Directories the go tool ignores — testdata, vendor, hidden and
// underscore-prefixed names — are skipped.
func LoadTree(root, modulePath, subtree string) ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !withinDir(subtree, path) {
			return nil
		}
		pkg, err := loadDir(root, modulePath, path)
		if err != nil {
			return err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses the single package in dir (absolute or relative).
func LoadDir(root, modulePath, dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return loadDir(root, modulePath, abs)
}

func withinDir(parent, child string) bool {
	rel, err := filepath.Rel(parent, child)
	return err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator))
}

// loadDir parses dir's .go files into one Package, or nil when the
// directory holds no Go source.
func loadDir(root, modulePath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pkg := &Package{Fset: fset}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		file := &File{AST: f, Name: path, IsTest: strings.HasSuffix(e.Name(), "_test.go")}
		if !file.IsTest && pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		pkg.Files = append(pkg.Files, file)
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	if pkg.Name == "" { // test-only directory
		pkg.Name = strings.TrimSuffix(pkg.Files[0].AST.Name.Name, "_test")
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	pkg.Path = modulePath
	if rel != "." {
		pkg.Path = modulePath + "/" + filepath.ToSlash(rel)
	}
	return pkg, nil
}
