package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
)

// CrossoverConst keeps the planner's linear→parallel crossover
// threshold in exactly one place. 32768 (1<<15) is not an arbitrary
// buffer size here: it is the measured break-even instance size the
// adaptive planner defaults to, owned by internal/calib as
// DefaultMinParallelN and overridden at runtime by fitted calibration
// profiles. A literal respelling anywhere else re-freezes that measured
// quantity where no calibration can reach it — the threshold then forks
// silently the first time a fit or a default change moves the real one.
// Code outside internal/calib must consume calib.DefaultMinParallelN,
// engine.MinParallelN, or the active profile's MinParallelN instead.
// Tests are exempt: fixtures legitimately pin concrete sizes.
var CrossoverConst = &Analyzer{
	Name: "crossoverconst",
	Doc:  "forbid literal 1<<15/32768 crossover constants outside internal/calib",
	Run:  runCrossoverConst,
}

// crossoverN is the value being policed. Spelled as a computation from
// the exponent so this file does not itself contain the forbidden
// spelling in executable form, and does not depend on internal/calib
// (the analysis module is dependency-free).
const crossoverN = 1 << crossoverExp

const crossoverExp = 15

func runCrossoverConst(p *Pass) error {
	if p.Pkg.Path == "sfcp/internal/calib" {
		return nil
	}
	for _, f := range p.Pkg.Files {
		if f.IsTest {
			continue
		}
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				// A constant shift that lands on the crossover value
				// (1<<15, 2<<14, ...) is the same respelling in disguise.
				if n.Op != token.SHL {
					return true
				}
				base, ok1 := intLit(n.X)
				shift, ok2 := intLit(n.Y)
				if ok1 && ok2 && shift < 63 && base<<shift == crossoverN {
					p.Reportf(n.Pos(),
						"literal %d<<%d is the planner crossover constant; use calib.DefaultMinParallelN or the active profile's MinParallelN", base, shift)
					return false // the operand literals are part of this finding
				}
			case *ast.BasicLit:
				if v, ok := intLitValue(n); ok && v == crossoverN {
					p.Reportf(n.Pos(),
						"literal %s is the planner crossover constant; use calib.DefaultMinParallelN or the active profile's MinParallelN", n.Value)
				}
			}
			return true
		})
	}
	return nil
}

// intLit unwraps expr to a plain integer literal (parens allowed).
func intLit(expr ast.Expr) (int64, bool) {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return intLit(e.X)
	case *ast.BasicLit:
		return intLitValue(e)
	}
	return 0, false
}

// intLitValue parses an INT literal in any Go base (decimal, 0x, 0o,
// 0b, underscores).
func intLitValue(lit *ast.BasicLit) (int64, bool) {
	if lit.Kind != token.INT {
		return 0, false
	}
	v, err := strconv.ParseInt(lit.Value, 0, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}
