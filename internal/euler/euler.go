// Package euler implements the Euler-tour technique of Tarjan & Vishkin on
// the pseudo-forest induced by a function f, as used by JáJá & Ryu:
//
//   - Algorithm "finding cycle nodes" (Section 5): double every edge
//     (x, f(x)) with a buddy (f(x), x), build the dart-successor function,
//     and decompose it into Euler tours. Each pseudo-tree yields exactly two
//     tours; a cycle edge and its buddy land in different tours while a tree
//     edge and its buddy share a tour, which identifies the cycle nodes.
//   - Tree rooting, levels and subtree intervals (Section 4): the forest of
//     non-cycle nodes is toured tree by tree, giving each node Euler in/out
//     times, its root (the cycle node its path enters) and its level, all in
//     O(log n) time and O(n) work beyond list ranking.
package euler

import (
	"sfcp/internal/intsort"
	"sfcp/internal/listrank"
	"sfcp/internal/pram"
)

// Options configures the substrate algorithms used by the tour machinery.
type Options struct {
	// Sort selects the integer-sorting strategy for building dart
	// adjacency lists. Defaults to intsort.Modeled (the paper treats the
	// sorter as a black box; see DESIGN.md).
	Sort intsort.Strategy
	// Rank selects the list-ranking method for touring. Defaults to
	// listrank.RulingSet (work-optimal, standing in for Anderson–Miller).
	Rank listrank.Method
}

// Forest is the fully analysed pseudo-forest of a function f.
type Forest struct {
	// N is the number of nodes.
	N int
	// OnCycle[x] = 1 iff x lies on a cycle of f.
	OnCycle *pram.Array
	// Root[x] is the cycle node at which the tree path from x enters the
	// cycle; Root[x] = x for cycle nodes.
	Root *pram.Array
	// Level[x] is the distance from x to Root[x]; 0 for cycle nodes.
	Level *pram.Array
	// In and Out are global Euler-tour timestamps of the tree nodes.
	// Tree node y is a descendant-or-self of tree node x iff
	// In[x] <= In[y] && In[y] <= Out[x]. Nodes that are not part of any
	// tree tour (cycle nodes without tree children get In = Out = -1 too)
	// carry -1.
	In, Out *pram.Array
	// TourLen is the total length of all tree tours (2 x tree edges).
	TourLen int

	m *pram.Machine
}

// dartTours builds the dart-successor permutation for a set of darts and
// returns the tour decomposition. Darts are given by their tails; twins are
// paired as (2i, 2i+1). It returns, per dart, the tour leader (canonical
// tour id), the rank within the tour starting from the tour's minimum dart,
// the tour length, and the adjacency bookkeeping needed to pick root darts:
// pos (sorted position of each dart) and groupStart (first sorted position
// per tail vertex, -1 if the vertex has no dart).
func dartTours(m *pram.Machine, tails *pram.Array, n int, opts Options) (leader, rank, length, pos, groupStart *pram.Array) {
	nd := tails.Len()
	perm := intsort.SortPRAM(m, tails, int64(n-1), opts.Sort)
	pos = m.NewArray(nd)
	m.ParDo(nd, func(c *pram.Ctx, p int) {
		c.Write(pos, int(c.Read(perm, p)), int64(p))
	})
	groupStart = m.NewArray(n)
	groupEnd := m.NewArray(n)
	pram.Fill(m, groupStart, -1)
	pram.Fill(m, groupEnd, -1)
	m.ParDo(nd, func(c *pram.Ctx, p int) {
		v := int(c.Read(tails, int(c.Read(perm, p))))
		if p == 0 || int(c.Read(tails, int(c.Read(perm, p-1)))) != v {
			c.Write(groupStart, v, int64(p))
		}
		if p == nd-1 || int(c.Read(tails, int(c.Read(perm, p+1)))) != v {
			c.Write(groupEnd, v, int64(p))
		}
	})
	// succ(d) = the dart after twin(d), cyclically, in the adjacency list
	// of twin(d)'s tail (= head of d). Twin pairing: twin(d) = d^1.
	succ := m.NewArray(nd)
	m.ParDo(nd, func(c *pram.Ctx, p int) {
		twin := p ^ 1
		v := int(c.Read(tails, twin))
		j := c.Read(pos, twin)
		if j == c.Read(groupEnd, v) {
			j = c.Read(groupStart, v)
		} else {
			j++
		}
		c.Write(succ, p, c.Read(perm, int(j)))
	})
	leader, rank, length = listrank.CycleRank(m, succ, opts.Rank)
	return leader, rank, length, pos, groupStart
}

// FindCycleNodes marks the nodes of f lying on cycles (Algorithm "finding
// cycle nodes"). It returns a 0/1 flag array. O(log n) time; work is O(n)
// beyond the integer sort and list ranking chosen in opts.
func FindCycleNodes(m *pram.Machine, f *pram.Array, opts Options) *pram.Array {
	n := f.Len()
	onCycle := m.NewArray(n)
	if n == 0 {
		return onCycle
	}
	// Dart 2x = (x, f(x)); dart 2x+1 = its buddy (f(x), x).
	tails := m.NewArray(2 * n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		c.Write(tails, 2*p, int64(p))
		c.Write(tails, 2*p+1, c.Read(f, p))
	})
	leader, _, _, _, _ := dartTours(m, tails, n, opts)
	// Edge (x, f(x)) is a cycle edge iff it and its buddy lie in different
	// Euler tours; every cycle node owns exactly one outgoing cycle edge.
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(leader, 2*p) != c.Read(leader, 2*p+1) {
			c.Write(onCycle, p, 1)
		} else {
			c.Write(onCycle, p, 0)
		}
	})
	return onCycle
}

// Analyze runs the complete pseudo-forest analysis for f: cycle nodes, tree
// roots, levels, and global Euler-tour subtree intervals.
func Analyze(m *pram.Machine, f *pram.Array, opts Options) *Forest {
	n := f.Len()
	fr := &Forest{N: n, m: m}
	fr.OnCycle = FindCycleNodes(m, f, opts)
	fr.Root = m.NewArray(n)
	fr.Level = m.NewArray(n)
	fr.In = m.NewArray(n)
	fr.Out = m.NewArray(n)
	if n == 0 {
		return fr
	}
	pram.Fill(m, fr.In, -1)
	pram.Fill(m, fr.Out, -1)
	// Cycle nodes are their own roots at level 0.
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(fr.OnCycle, p) != 0 {
			c.Write(fr.Root, p, int64(p))
		} else {
			c.Write(fr.Root, p, -1)
		}
		c.Write(fr.Level, p, 0)
	})

	// Tree darts: for every tree node x, up-dart (x, f(x)) and down-dart
	// (f(x), x), compactly indexed as (2i, 2i+1) over tree nodes.
	notCycle := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		c.Write(notCycle, p, 1-c.Read(fr.OnCycle, p))
	})
	treeNodes := pram.CompactIndices(m, notCycle)
	nt := treeNodes.Len()
	if nt == 0 {
		return fr // pure cycles: nothing else to do
	}
	tails := m.NewArray(2 * nt)
	m.ParDo(nt, func(c *pram.Ctx, p int) {
		x := int(c.Read(treeNodes, p))
		c.Write(tails, 2*p, int64(x))
		c.Write(tails, 2*p+1, c.Read(f, x))
	})
	leader, rank, length, pos, groupStart := dartTours(m, tails, n, opts)
	nd := 2 * nt

	// The unique "root dart" of each tree tour is the first adjacency-list
	// dart of the tour's root vertex (the only cycle node in the tour).
	// Shift tour ranks so it gets rank 0, and record the root identity.
	shift := m.NewArray(nd)  // indexed by tour leader dart
	rootOf := m.NewArray(nd) // indexed by tour leader dart
	m.ParDo(nd, func(c *pram.Ctx, p int) {
		v := int(c.Read(tails, p))
		if c.Read(fr.OnCycle, v) != 0 && c.Read(pos, p) == c.Read(groupStart, v) {
			l := int(c.Read(leader, p))
			c.Write(shift, l, c.Read(rank, p))
			c.Write(rootOf, l, int64(v))
		}
	})
	localRank := m.NewArray(nd)
	m.ParDo(nd, func(c *pram.Ctx, p int) {
		l := int(c.Read(leader, p))
		ln := c.Read(length, p)
		v := (c.Read(rank, p) - c.Read(shift, l)) % ln
		if v < 0 {
			v += ln
		}
		c.Write(localRank, p, v)
	})

	// Lay the tours out in one global sequence: leaders in index order,
	// each tour occupying a contiguous block of its length.
	isLeader := m.NewArray(nd)
	m.ParDo(nd, func(c *pram.Ctx, p int) {
		if int(c.Read(leader, p)) == p {
			c.Write(isLeader, p, c.Read(length, p))
		} else {
			c.Write(isLeader, p, 0)
		}
	})
	offsets, total := pram.ExclusiveScan(m, isLeader)
	fr.TourLen = int(total)
	globalRank := m.NewArray(nd)
	m.ParDo(nd, func(c *pram.Ctx, p int) {
		l := int(c.Read(leader, p))
		c.Write(globalRank, p, c.Read(offsets, l)+c.Read(localRank, p))
	})

	// In/out timestamps: in(x) = global rank of the down-dart (f(x), x),
	// out(x) = global rank of the up-dart (x, f(x)). Roots span their
	// whole tour block.
	m.ParDo(nt, func(c *pram.Ctx, p int) {
		x := int(c.Read(treeNodes, p))
		c.Write(fr.In, x, c.Read(globalRank, 2*p+1))
		c.Write(fr.Out, x, c.Read(globalRank, 2*p))
		l := int(c.Read(leader, 2*p))
		c.Write(fr.Root, x, c.Read(rootOf, l))
	})
	m.ParDo(nd, func(c *pram.Ctx, p int) {
		l := int(c.Read(leader, p))
		r := int(c.Read(rootOf, l))
		c.Write(fr.In, r, c.Read(offsets, l))
		c.Write(fr.Out, r, c.Read(offsets, l)+c.Read(length, p)-1)
	})

	// Levels by ancestor counting: every tree node contributes +1 over its
	// subtree interval; the prefix sum at in(x) counts x's tree ancestors
	// including itself, which is exactly its level.
	ones := m.NewArray(n)
	pram.Copy(m, ones, notCycle)
	lv := fr.countFlaggedAncestors(ones)
	pram.Copy(m, fr.Level, lv)
	return fr
}

// CountFlaggedAncestors returns cnt[x] = the number of tree nodes y with
// flag[y] != 0 that are ancestors of x within its tree, counting x itself.
// Cycle nodes always get 0. O(log n) time, O(n) work.
func (fr *Forest) CountFlaggedAncestors(flag *pram.Array) *pram.Array {
	return fr.countFlaggedAncestors(flag)
}

func (fr *Forest) countFlaggedAncestors(flag *pram.Array) *pram.Array {
	m := fr.m
	n := fr.N
	cnt := m.NewArray(n)
	if fr.TourLen == 0 {
		return cnt
	}
	delta := m.NewArray(fr.TourLen + 1)
	pram.Fill(m, delta, 0)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(fr.OnCycle, p) != 0 || c.Read(flag, p) == 0 {
			return
		}
		c.Write(delta, int(c.Read(fr.In, p)), 1)
	})
	// Separate step for the -1 endpoints: +1 and -1 can target the same
	// position (in(sibling) == out(y)+1), so accumulate in two passes.
	minus := m.NewArray(fr.TourLen + 1)
	pram.Fill(m, minus, 0)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(fr.OnCycle, p) != 0 || c.Read(flag, p) == 0 {
			return
		}
		c.Write(minus, int(c.Read(fr.Out, p))+1, 1)
	})
	net := m.NewArray(fr.TourLen + 1)
	m.ParDo(fr.TourLen+1, func(c *pram.Ctx, p int) {
		c.Write(net, p, c.Read(delta, p)-c.Read(minus, p))
	})
	prefix, _ := pram.InclusiveScan(m, net)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if c.Read(fr.OnCycle, p) != 0 {
			c.Write(cnt, p, 0)
			return
		}
		c.Write(cnt, p, c.Read(prefix, int(c.Read(fr.In, p))))
	})
	return cnt
}
