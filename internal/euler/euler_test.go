package euler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sfcp/internal/intsort"
	"sfcp/internal/listrank"
	"sfcp/internal/pram"
)

// seqCycleNodes marks cycle nodes by the standard two-pass sequential method:
// follow f from every node with visit stamps.
func seqCycleNodes(f []int) []bool {
	n := len(f)
	state := make([]int8, n) // 0 unvisited, 1 in progress, 2 done
	onCycle := make([]bool, n)
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		var path []int
		x := s
		for state[x] == 0 {
			state[x] = 1
			path = append(path, x)
			x = f[x]
		}
		if state[x] == 1 {
			// Found a new cycle; mark from x to the end of path.
			for i := len(path) - 1; i >= 0; i-- {
				onCycle[path[i]] = true
				if path[i] == x {
					break
				}
			}
		}
		for _, y := range path {
			state[y] = 2
		}
	}
	return onCycle
}

// seqRootsLevels computes root and level for every node sequentially.
func seqRootsLevels(f []int, onCycle []bool) (root, level []int) {
	n := len(f)
	root = make([]int, n)
	level = make([]int, n)
	for x := 0; x < n; x++ {
		if onCycle[x] {
			root[x] = x
			continue
		}
		d := 0
		y := x
		for !onCycle[y] {
			y = f[y]
			d++
		}
		root[x] = y
		level[x] = d
	}
	return root, level
}

func defaultOpts() Options {
	return Options{Sort: intsort.Modeled, Rank: listrank.Wyllie}
}

func checkForest(t *testing.T, f []int, opts Options) *Forest {
	t.Helper()
	m := pram.New(pram.ArbitraryCRCW)
	fa := m.NewArrayFromInts(f)
	fr := Analyze(m, fa, opts)

	wantCycle := seqCycleNodes(f)
	gotCycle := fr.OnCycle.Ints()
	for i := range f {
		if (gotCycle[i] != 0) != wantCycle[i] {
			t.Fatalf("f=%v node %d: onCycle=%v, want %v", f, i, gotCycle[i] != 0, wantCycle[i])
		}
	}
	wantRoot, wantLevel := seqRootsLevels(f, wantCycle)
	gotRoot, gotLevel := fr.Root.Ints(), fr.Level.Ints()
	for i := range f {
		if gotRoot[i] != wantRoot[i] {
			t.Fatalf("f=%v node %d: root=%d, want %d", f, i, gotRoot[i], wantRoot[i])
		}
		if gotLevel[i] != wantLevel[i] {
			t.Fatalf("f=%v node %d: level=%d, want %d", f, i, gotLevel[i], wantLevel[i])
		}
	}

	// Interval invariants: tree node intervals nest exactly per ancestry.
	in, out := fr.In.Ints(), fr.Out.Ints()
	for x := range f {
		if wantCycle[x] {
			continue
		}
		if in[x] < 0 || out[x] < in[x] || out[x] >= fr.TourLen {
			t.Fatalf("node %d: bad interval [%d,%d] tourLen=%d", x, in[x], out[x], fr.TourLen)
		}
	}
	for x := range f {
		if wantCycle[x] {
			continue
		}
		for y := range f {
			if wantCycle[y] || x == y {
				continue
			}
			// Is y a proper descendant of x (following f from y reaches x
			// before leaving the tree)?
			desc := false
			z := y
			for !wantCycle[z] {
				z = f[z]
				if z == x {
					desc = true
					break
				}
			}
			contained := in[x] <= in[y] && in[y] <= out[x]
			if desc != contained {
				t.Fatalf("f=%v: descendant(%d of %d)=%v but interval containment=%v (in/out x=[%d,%d] y=[%d,%d])",
					f, y, x, desc, contained, in[x], out[x], in[y], out[y])
			}
		}
	}
	return fr
}

func TestAnalyzeSmallShapes(t *testing.T) {
	cases := [][]int{
		{0},                   // self loop
		{1, 0},                // 2-cycle
		{0, 0},                // self loop with one tree node
		{1, 2, 0},             // 3-cycle
		{1, 2, 0, 0, 3},       // 3-cycle with chain 4->3->0
		{0, 0, 0, 0},          // star into self loop
		{1, 0, 1, 2, 3},       // 2-cycle with path 4->3->2->1
		{3, 3, 3, 3},          // 3 tree nodes into self loop 3
		{1, 2, 3, 4, 0, 0, 5}, // 5-cycle, tree nodes 5,6
		{2, 2, 3, 2},          // cycle {2,3}, trees 0,1 -> 2
	}
	for _, f := range cases {
		checkForest(t, f, defaultOpts())
	}
}

func TestAnalyzeRandomFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 8, 20, 50, 120} {
		for trial := 0; trial < 4; trial++ {
			f := make([]int, n)
			for i := range f {
				f[i] = rng.Intn(n)
			}
			checkForest(t, f, defaultOpts())
		}
	}
}

func TestAnalyzePurePermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := rng.Perm(60)
	fr := checkForest(t, f, defaultOpts())
	for i, v := range fr.OnCycle.Ints() {
		if v != 1 {
			t.Fatalf("permutation node %d not on cycle", i)
		}
	}
	if fr.TourLen != 0 {
		t.Fatalf("pure permutation has tour length %d, want 0", fr.TourLen)
	}
}

func TestAnalyzeLongPathIntoSelfLoop(t *testing.T) {
	n := 300
	f := make([]int, n)
	f[0] = 0
	for i := 1; i < n; i++ {
		f[i] = i - 1
	}
	fr := checkForest(t, f, defaultOpts())
	levels := fr.Level.Ints()
	if levels[n-1] != n-1 {
		t.Fatalf("deep path level = %d, want %d", levels[n-1], n-1)
	}
}

func TestAnalyzeAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := make([]int, 40)
	for i := range f {
		f[i] = rng.Intn(40)
	}
	for _, sortStrat := range []intsort.Strategy{intsort.Modeled, intsort.BitSplit, intsort.Grouped} {
		for _, rankMethod := range []listrank.Method{listrank.Wyllie, listrank.RulingSet} {
			checkForest(t, f, Options{Sort: sortStrat, Rank: rankMethod})
		}
	}
}

func TestFindCycleNodesProperty(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		n := int(sz)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		f := make([]int, n)
		for i := range f {
			f[i] = rng.Intn(n)
		}
		m := pram.New(pram.ArbitraryCRCW)
		fa := m.NewArrayFromInts(f)
		got := FindCycleNodes(m, fa, defaultOpts()).Ints()
		want := seqCycleNodes(f)
		for i := range f {
			if (got[i] != 0) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFindCycleNodesEmpty(t *testing.T) {
	m := pram.New(pram.ArbitraryCRCW)
	fa := m.NewArray(0)
	if got := FindCycleNodes(m, fa, defaultOpts()); got.Len() != 0 {
		t.Fatal("empty input should give empty output")
	}
}

func TestCountFlaggedAncestors(t *testing.T) {
	// Tree: 5 -> 4 -> 3 -> 0 (self loop), 2 -> 0, 1 -> 0.
	f := []int{0, 0, 0, 0, 3, 4}
	m := pram.New(pram.ArbitraryCRCW)
	fa := m.NewArrayFromInts(f)
	fr := Analyze(m, fa, defaultOpts())

	// Flag node 4 only: counts must be 1 for 4 and 5, 0 elsewhere.
	flag := m.NewArray(6)
	flag.SetHost(4, 1)
	cnt := fr.CountFlaggedAncestors(flag).Ints()
	want := []int{0, 0, 0, 0, 1, 1}
	for i := range want {
		if cnt[i] != want[i] {
			t.Fatalf("cnt = %v, want %v", cnt, want)
		}
	}

	// Flag nodes 3 and 5: node 5 sees both (3 is an ancestor, 5 is self).
	flag2 := m.NewArray(6)
	flag2.SetHost(3, 1)
	flag2.SetHost(5, 1)
	cnt2 := fr.CountFlaggedAncestors(flag2).Ints()
	want2 := []int{0, 0, 0, 1, 1, 2}
	for i := range want2 {
		if cnt2[i] != want2[i] {
			t.Fatalf("cnt2 = %v, want %v", cnt2, want2)
		}
	}
}

func TestAnalyzeComplexityShape(t *testing.T) {
	// Rounds must stay logarithmic and work per node bounded by a constant
	// (the asymptotic separation from n log n is established over a wide
	// sweep by experiment E2; at a single size only gross blowups are
	// detectable).
	measure := func(n int) pram.Stats {
		rng := rand.New(rand.NewSource(5))
		f := make([]int, n)
		for i := range f {
			f[i] = rng.Intn(n)
		}
		m := pram.New(pram.ArbitraryCRCW)
		fa := m.NewArrayFromInts(f)
		m.ResetStats()
		Analyze(m, fa, Options{Sort: intsort.Modeled, Rank: listrank.RulingSet})
		return m.Stats()
	}
	s13 := measure(1 << 13)
	if s13.Rounds > 1500 {
		t.Errorf("n=2^13: %d rounds, want O(log n)-ish (few hundred)", s13.Rounds)
	}
	if perNode := s13.Work / (1 << 13); perNode > 600 {
		t.Errorf("n=2^13: %d work per node, want bounded constant", perNode)
	}
	// Doubling n should roughly double work (near-linear scaling).
	s14 := measure(1 << 14)
	if ratio := float64(s14.Work) / float64(s13.Work); ratio > 2.6 {
		t.Errorf("work ratio for doubling n = %.2f, want close to 2", ratio)
	}
}
