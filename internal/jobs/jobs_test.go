package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sfcp"
)

// instantSolve resolves immediately with a one-class result.
func instantSolve(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (sfcp.Result, bool, error) {
	return sfcp.Result{Labels: make([]int, len(ins.F)), NumClasses: 1}, false, nil
}

func tinyInstance() sfcp.Instance {
	return sfcp.Instance{F: []int{0, 1}, B: []int{0, 1}}
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want State) Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished while waiting for %s", id, want)
		}
		if s.State == want {
			return s
		}
		if s.State.Terminal() {
			t.Fatalf("job %s reached terminal %s (error %q), want %s", id, s.State, s.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return Snapshot{}
}

func TestSubmitRunsToDone(t *testing.T) {
	m := New(Config{}, instantSolve)
	defer m.Close()
	snap, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateQueued || snap.ID == "" || snap.N != 2 {
		t.Fatalf("submit snapshot: %+v", snap)
	}
	done := waitState(t, m, snap.ID, StateDone)
	if done.NumClasses != 1 || done.FinishedAt == nil || done.StartedAt == nil {
		t.Fatalf("done snapshot: %+v", done)
	}
	res, s, err := m.Result(snap.ID)
	if err != nil || s.State != StateDone || len(res.Labels) != 2 {
		t.Fatalf("result: err=%v state=%s labels=%v", err, s.State, res.Labels)
	}
	c := m.Counts()
	if c.Submitted != 1 || c.Done != 1 || c.Queued != 0 || c.Running != 0 {
		t.Fatalf("counts: %+v", c)
	}
}

func TestFailedJob(t *testing.T) {
	boom := errors.New("solver exploded")
	m := New(Config{}, func(context.Context, sfcp.Algorithm, *uint64, sfcp.Instance) (sfcp.Result, bool, error) {
		return sfcp.Result{}, false, boom
	})
	defer m.Close()
	snap, err := m.Submit(sfcp.AlgorithmMoore, nil, 0, tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	failed := waitState(t, m, snap.ID, StateFailed)
	if failed.Error != boom.Error() {
		t.Fatalf("error %q, want %q", failed.Error, boom)
	}
	if _, s, err := m.Result(snap.ID); err != nil || s.State != StateFailed {
		t.Fatalf("result of failed job: err=%v state=%s", err, s.State)
	}
}

// TestPriorityOrder blocks the single dispatcher, queues jobs with mixed
// priorities, and checks execution order: priority desc, FIFO within.
func TestPriorityOrder(t *testing.T) {
	gate := make(chan struct{})
	var order []int
	var mu sync.Mutex
	m := New(Config{DispatchersPerAlgorithm: 1}, func(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (sfcp.Result, bool, error) {
		<-gate
		mu.Lock()
		order = append(order, len(ins.F))
		mu.Unlock()
		return sfcp.Result{NumClasses: 1}, false, nil
	})
	defer m.Close()

	// First job occupies the dispatcher regardless of priority.
	first, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, sfcp.Instance{F: []int{0}, B: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, first.ID, StateRunning)

	// n encodes submission order; priorities say run 3rd, 1st, 2nd.
	sizes := []struct{ n, prio int }{{2, 0}, {3, 5}, {4, 5}}
	var ids []string
	for _, s := range sizes {
		ins := sfcp.Instance{F: make([]int, s.n), B: make([]int, s.n)}
		snap, err := m.Submit(sfcp.AlgorithmLinear, nil, s.prio, ins)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	close(gate)
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []int{1, 3, 4, 2} // first, then prio 5 FIFO (3 before 4), then prio 0
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want %v", order, want)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	m := New(Config{DispatchersPerAlgorithm: 1}, func(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (sfcp.Result, bool, error) {
		select {
		case <-gate:
			return sfcp.Result{}, false, nil
		case <-ctx.Done():
			return sfcp.Result{}, false, ctx.Err()
		}
	})
	defer m.Close()
	blocker, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	queued, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := m.Cancel(queued.ID)
	if !ok || snap.State != StateCancelled {
		t.Fatalf("cancel queued: ok=%v state=%s", ok, snap.State)
	}
	if c := m.Counts(); c.Cancelled != 1 || c.Queued != 0 {
		t.Fatalf("counts after cancel: %+v", c)
	}
	// Idempotent.
	if snap, ok := m.Cancel(queued.ID); !ok || snap.State != StateCancelled {
		t.Fatalf("repeat cancel: ok=%v state=%s", ok, snap.State)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	m := New(Config{}, func(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (sfcp.Result, bool, error) {
		started <- struct{}{}
		<-ctx.Done() // a cooperative solver: returns on cancellation
		return sfcp.Result{}, false, ctx.Err()
	})
	defer m.Close()
	snap, err := m.Submit(sfcp.AlgorithmParallelPRAM, nil, 0, tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if s, ok := m.Cancel(snap.ID); !ok || s.State != StateRunning {
		t.Fatalf("cancel running: ok=%v state=%s (cancellation is cooperative)", ok, s.State)
	}
	waitState(t, m, snap.ID, StateCancelled)
}

// TestCancelBeatsCompletedSolve pins the race rule: a DELETE that lands
// while the solve finishes still yields cancelled, never a ghost result.
func TestCancelBeatsCompletedSolve(t *testing.T) {
	proceed := make(chan struct{})
	started := make(chan struct{}, 1)
	m := New(Config{}, func(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (sfcp.Result, bool, error) {
		started <- struct{}{}
		<-proceed // ignores ctx: simulates a solve past its last check
		return sfcp.Result{NumClasses: 42}, false, nil
	})
	defer m.Close()
	snap, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	m.Cancel(snap.ID)
	close(proceed)
	got := waitState(t, m, snap.ID, StateCancelled)
	if got.NumClasses != 0 {
		t.Fatalf("cancelled job leaked a result: %+v", got)
	}
}

func TestQueueFull(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	m := New(Config{MaxQueued: 2, DispatchersPerAlgorithm: 1}, func(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (sfcp.Result, bool, error) {
		select {
		case <-gate:
			return sfcp.Result{}, false, nil
		case <-ctx.Done():
			return sfcp.Result{}, false, ctx.Err()
		}
	})
	defer m.Close()
	blocker, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, blocker.ID, StateRunning)
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, tinyInstance()); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, tinyInstance()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
}

func TestTTLEviction(t *testing.T) {
	var clock atomic.Int64 // seconds
	cfg := Config{
		TTL:  30 * time.Second,
		Tick: time.Millisecond,
		now:  func() time.Time { return time.Unix(clock.Load(), 0) },
	}
	m := New(cfg, instantSolve)
	defer m.Close()
	snap, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateDone)

	// Still inside the TTL: survives janitor ticks.
	time.Sleep(20 * time.Millisecond)
	if _, ok := m.Get(snap.ID); !ok {
		t.Fatal("job evicted before TTL")
	}
	clock.Store(31)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := m.Get(snap.ID); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job not evicted after TTL")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if c := m.Counts(); c.Evicted != 1 {
		t.Fatalf("evicted count %d, want 1", c.Evicted)
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	m := New(Config{DispatchersPerAlgorithm: 1}, func(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (sfcp.Result, bool, error) {
		select {
		case <-ctx.Done():
			return sfcp.Result{}, false, ctx.Err()
		case <-gate:
			return sfcp.Result{}, false, nil
		}
	})
	running, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, running.ID, StateRunning)
	queued, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	for _, id := range []string{running.ID, queued.ID} {
		if s, ok := m.Get(id); !ok || s.State != StateCancelled {
			t.Errorf("job %s after close: ok=%v state=%s", id, ok, s.State)
		}
	}
	if _, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, tinyInstance()); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
}

// TestShutdownCancelsInFlightSolve pins the lifecycle-context contract:
// a running job's context derives from the scheduler's lifecycle context,
// so daemon shutdown (Close) cancels the solve itself — the dispatcher is
// not waiting politely for a minutes-long solve nobody can fetch.
func TestShutdownCancelsInFlightSolve(t *testing.T) {
	sawErr := make(chan error, 1)
	m := New(Config{DispatchersPerAlgorithm: 1}, func(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (sfcp.Result, bool, error) {
		<-ctx.Done() // block until cancelled, like a long cooperative solve
		sawErr <- ctx.Err()
		return sfcp.Result{}, false, ctx.Err()
	})
	snap, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateRunning)
	m.Close() // returns only after the dispatcher finished the cancelled solve
	select {
	case err := <-sawErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("solve context ended with %v, want context.Canceled", err)
		}
	default:
		t.Fatal("Close returned but the in-flight solve never saw its context cancelled")
	}
	if s, ok := m.Get(snap.ID); !ok || s.State != StateCancelled {
		t.Errorf("job after shutdown: ok=%v state=%s, want cancelled", ok, s.State)
	}
}

func TestUnknownIDs(t *testing.T) {
	m := New(Config{}, instantSolve)
	defer m.Close()
	if _, ok := m.Get("nope"); ok {
		t.Error("Get of unknown id succeeded")
	}
	if _, _, err := m.Result("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Result of unknown id: %v, want ErrNotFound", err)
	}
	if _, ok := m.Cancel("nope"); ok {
		t.Error("Cancel of unknown id succeeded")
	}
}
