package jobs

import (
	"context"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"sfcp"
	"sfcp/internal/store"
)

// modSolve labels element i with i%3 — deterministic and a function of
// the instance, so a re-solved job reproduces its labels exactly.
func modSolve(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (sfcp.Result, bool, error) {
	labels := make([]int, len(ins.F))
	for i := range labels {
		labels[i] = i % 3
	}
	return sfcp.Result{Labels: labels, NumClasses: min(3, len(labels))}, false, nil
}

func sizedInstance(n int) sfcp.Instance {
	f := make([]int, n)
	b := make([]int, n)
	for i := range f {
		f[i] = (i + 1) % n
		b[i] = i % 2
	}
	return sfcp.Instance{F: f, B: b}
}

func TestDurableSubmitSpillsAndJournals(t *testing.T) {
	journal := store.NewMemJobStore()
	blobs := store.NewMemBlobStore()
	m := New(Config{Journal: journal, Blobs: blobs, SpillN: 4, Logf: t.Logf}, modSolve)
	defer m.Close()

	snap, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, sizedInstance(8))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateDone)

	res, s, err := m.Result(snap.ID)
	if err != nil || s.State != StateDone {
		t.Fatalf("result: err=%v state=%s", err, s.State)
	}
	want := []int{0, 1, 2, 0, 1, 2, 0, 1}
	if !reflect.DeepEqual(res.Labels, want) {
		t.Fatalf("labels %v, want %v (spilled payload must reload for the solve)", res.Labels, want)
	}

	// The terminal record carries the result key, and the labels blob is
	// really in the tier.
	var rec store.JobRecord
	found := false
	journal.Scan(func(r store.JobRecord) error {
		if r.ID == snap.ID {
			rec, found = r, true
		}
		return nil
	})
	if !found || rec.State != string(StateDone) {
		t.Fatalf("journal record: found=%v %+v", found, rec)
	}
	if rec.ResultKey == "" || rec.InstanceDigest == "" {
		t.Fatalf("record missing blob keys: %+v", rec)
	}
	if has, _ := blobs.Has(rec.ResultKey); !has {
		t.Fatal("result blob not in the tier")
	}
	// The instance blob was released when its only job finished.
	if has, _ := blobs.Has(rec.InstanceDigest); has {
		t.Fatal("instance blob not released after the job finished")
	}
	// Instance spill + result spill (n=8 >= SpillN=4).
	if c := m.Counts(); c.Spilled != 2 {
		t.Fatalf("spilled count %d, want 2: %+v", c.Spilled, c)
	}
}

func TestSmallJobStaysResidentButPersists(t *testing.T) {
	journal := store.NewMemJobStore()
	blobs := store.NewMemBlobStore()
	m := New(Config{Journal: journal, Blobs: blobs, SpillN: 1 << 16, Logf: t.Logf}, modSolve)
	defer m.Close()

	snap, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, sizedInstance(6))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateDone)
	if c := m.Counts(); c.Spilled != 0 {
		t.Fatalf("small job spilled: %+v", c)
	}
	// Durability does not depend on size: the result is in the tier.
	var rec store.JobRecord
	journal.Scan(func(r store.JobRecord) error {
		if r.ID == snap.ID {
			rec = r
		}
		return nil
	})
	if rec.ResultKey == "" {
		t.Fatalf("small done job has no persisted result: %+v", rec)
	}
	if has, _ := blobs.Has(rec.ResultKey); !has {
		t.Fatal("small job's result blob missing from the tier")
	}
}

// TestRestartRecovery is the jobs-layer crash/restart contract: close a
// manager with work in every state, reopen over the same stores, and
// check non-terminal jobs re-run to completion while terminal results
// come back byte-identical from disk.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	openStores := func() (*store.FileJobStore, *store.FileBlobStore) {
		j, err := store.OpenFileJobStore(filepath.Join(dir, "jobs.journal"), t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		b, err := store.OpenFileBlobStore(filepath.Join(dir, "blobs"))
		if err != nil {
			t.Fatal(err)
		}
		return j, b
	}

	journal1, blobs1 := openStores()
	gate := make(chan struct{})
	// Blocks on instances bigger than 2 elements until gated — lets the
	// test pin jobs in running/queued while tiny jobs complete.
	blockingSolve := func(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (sfcp.Result, bool, error) {
		if len(ins.F) > 2 {
			select {
			case <-gate:
			case <-ctx.Done():
				return sfcp.Result{}, false, ctx.Err()
			}
		}
		return modSolve(ctx, algo, seed, ins)
	}
	m1 := New(Config{
		Journal: journal1, Blobs: blobs1, SpillN: 4,
		DispatchersPerAlgorithm: 1, Logf: t.Logf,
	}, blockingSolve)

	doneSnap, err := m1.Submit(sfcp.AlgorithmLinear, nil, 0, sizedInstance(2))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, doneSnap.ID, StateDone)
	wantDone, _, err := m1.Result(doneSnap.ID)
	if err != nil {
		t.Fatal(err)
	}

	runningSnap, err := m1.Submit(sfcp.AlgorithmLinear, nil, 0, sizedInstance(5))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m1, runningSnap.ID, StateRunning)
	queuedSnap, err := m1.Submit(sfcp.AlgorithmLinear, nil, 0, sizedInstance(7))
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": close without releasing the gate. Durable close leaves the
	// running and queued jobs' journal records non-terminal.
	m1.Close()
	journal1.Close()

	journal2, blobs2 := openStores()
	m2 := New(Config{
		Journal: journal2, Blobs: blobs2, SpillN: 4,
		DispatchersPerAlgorithm: 1, Logf: t.Logf,
	}, modSolve)
	defer func() { m2.Close(); journal2.Close() }()

	if c := m2.Counts(); c.Requeued != 2 || c.Restored != 1 {
		t.Fatalf("recovery counts: %+v, want 2 requeued / 1 restored", c)
	}

	// The interrupted jobs complete on the new manager.
	for _, snap := range []Snapshot{runningSnap, queuedSnap} {
		got := waitState(t, m2, snap.ID, StateDone)
		if got.NumClasses == 0 {
			t.Fatalf("recovered job %s: %+v", snap.ID, got)
		}
		res, _, err := m2.Result(snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Labels) != snap.N {
			t.Fatalf("recovered job %s labels %d, want %d", snap.ID, len(res.Labels), snap.N)
		}
	}

	// The pre-crash done job is served from disk, byte-identical.
	gotDone, s, err := m2.Result(doneSnap.ID)
	if err != nil || s.State != StateDone {
		t.Fatalf("restored result: err=%v state=%s", err, s.State)
	}
	if !reflect.DeepEqual(gotDone.Labels, wantDone.Labels) {
		t.Fatalf("restored labels %v != original %v", gotDone.Labels, wantDone.Labels)
	}
	if s.NumClasses != wantDone.NumClasses {
		t.Fatalf("restored snapshot lost fields: %+v", s)
	}
}

func TestRecoveryMissingPayloadFailsJob(t *testing.T) {
	journal := store.NewMemJobStore()
	journal.Put(store.JobRecord{
		ID: "ghost", Seq: 1, Algorithm: "linear", State: "queued", N: 100,
		SubmittedAt:    time.Now(),
		InstanceDigest: strings.Repeat("ab", 32),
	})
	m := New(Config{Journal: journal, Blobs: store.NewMemBlobStore(), Logf: t.Logf}, modSolve)
	defer m.Close()

	s, ok := m.Get("ghost")
	if !ok || s.State != StateFailed {
		t.Fatalf("ghost job: ok=%v %+v, want failed", ok, s)
	}
	if !strings.Contains(s.Error, "missing") {
		t.Fatalf("ghost job error %q does not name the missing payload", s.Error)
	}
	// The failure was journaled: a second boot restores it as failed.
	var rec store.JobRecord
	journal.Scan(func(r store.JobRecord) error { rec = r; return nil })
	if rec.State != string(StateFailed) {
		t.Fatalf("journal record after recovery: %+v", rec)
	}
}

// TestDeleteTerminalReleasesResultMemory pins the DELETE semantics: a
// terminal job's labels are freed the moment the client deletes it, not
// a TTL later. The oracle is the heap itself.
func TestDeleteTerminalReleasesResultMemory(t *testing.T) {
	const n = 8 << 20 // 64 MB of labels
	m := New(Config{TTL: time.Hour}, func(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (sfcp.Result, bool, error) {
		return sfcp.Result{Labels: make([]int, n), NumClasses: 1}, false, nil
	})
	defer m.Close()

	snap, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, tinyInstance())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateDone)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	got, ok := m.Cancel(snap.ID) // DELETE on a terminal job
	if !ok || got.State != StateDone {
		t.Fatalf("delete snapshot: ok=%v %+v (must reflect pre-delete state)", ok, got)
	}
	if _, ok := m.Get(snap.ID); ok {
		t.Fatal("deleted job still visible")
	}
	if c := m.Counts(); c.Evicted != 1 {
		t.Fatalf("evicted count %d, want 1", c.Evicted)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	released := int64(before.HeapInuse) - int64(after.HeapInuse)
	if released < int64(n)*4 { // 64 MB held; demand at least half back
		t.Fatalf("DELETE released %d bytes of a %d-byte result; payload still pinned", released, n*8)
	}
}

func TestDeleteTerminalDropsJournalRecordKeepsResultBlob(t *testing.T) {
	journal := store.NewMemJobStore()
	blobs := store.NewMemBlobStore()
	m := New(Config{Journal: journal, Blobs: blobs, Logf: t.Logf}, modSolve)
	defer m.Close()

	snap, err := m.Submit(sfcp.AlgorithmLinear, nil, 0, sizedInstance(4))
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, snap.ID, StateDone)
	var rec store.JobRecord
	journal.Scan(func(r store.JobRecord) error { rec = r; return nil })
	if rec.ResultKey == "" {
		t.Fatalf("no result key journaled: %+v", rec)
	}

	if _, ok := m.Cancel(snap.ID); !ok {
		t.Fatal("delete failed")
	}
	if journal.Len() != 0 {
		t.Fatalf("journal still holds %d records after delete", journal.Len())
	}
	// The result blob outlives the job: it is the content-addressed tier,
	// not per-job state.
	if has, _ := blobs.Has(rec.ResultKey); !has {
		t.Fatal("result blob deleted with the job")
	}
}
