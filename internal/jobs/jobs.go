// Package jobs implements sfcpd's asynchronous job subsystem: a job
// store plus a scheduler that feeds the server's per-algorithm solver
// pools. A client submits an instance and gets a job id back
// immediately; the solve runs in the background while the client polls
// status and fetches the result when it is done — so a 10^8-element
// upload no longer ties an HTTP connection to a minutes-long synchronous
// solve, and a client timeout no longer silently wastes the work.
//
// Lifecycle:
//
//	queued ──▶ running ──▶ done | failed | cancelled
//	   └──────────────────────────────────▶ cancelled
//
// Jobs wait in one priority queue per algorithm (higher Priority first,
// FIFO within a priority), mirroring the per-algorithm isolation of the
// solver pools: a burst of slow simulator jobs cannot delay cheap
// sequential ones. Each algorithm has a fixed crew of dispatchers that pop
// the queue and execute the solve through the SolveFunc the server wires
// in (cache, pool scheduling and metrics stay in one place).
//
// Cancellation is cooperative: cancelling a queued job removes it from the
// queue; cancelling a running job cancels its context, which the solvers
// poll between refinement rounds / simulated PRAM steps, so the job
// reaches the cancelled state within one round. Deleting a terminal job
// releases its result payload immediately; otherwise terminal jobs (and
// their results) are evicted TTL seconds after finishing by a janitor
// tick.
//
// # Durability
//
// With Config.Journal set, every state transition is journaled as a
// store.JobRecord, and with Config.Blobs set, instance payloads and
// result labels live in the content-addressed blob tier (codec wire
// bytes, so integrity rides on the digest trailer). Payloads at or above
// Config.SpillN elements are released from RAM once safely in the tier.
// At construction the manager replays the journal: terminal jobs are
// restored (results served from their blobs), queued and running jobs
// are re-queued — a crash or restart loses no accepted work. Close in
// durable mode deliberately leaves non-terminal jobs' records untouched
// so the next boot re-runs them. Without a journal (the zero-config
// default) behavior is exactly the historical in-memory semantics.
package jobs

import (
	"container/heap"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sfcp"
	"sfcp/internal/store"
)

// State is a job's position in the lifecycle.
type State string

// The five job states. Done, Failed and Cancelled are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in this state will never change again
// (until eviction removes it entirely).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SolveFunc executes one job's solve under ctx. The server wires in its
// cache + per-algorithm pool path, so async jobs and synchronous requests
// share scheduling, memoization and metrics. cached reports a memoized
// result (surfaced in the job snapshot).
type SolveFunc func(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (res sfcp.Result, cached bool, err error)

// Config sizes the manager. Zero values select the documented defaults.
type Config struct {
	// MaxQueued bounds jobs waiting across all algorithms (default 1024).
	// Submit fails once the bound is hit — the backpressure signal.
	MaxQueued int
	// DispatchersPerAlgorithm is how many jobs of one algorithm may be in
	// flight at once (default 2, matching the solver pool's worker crews).
	DispatchersPerAlgorithm int
	// TTL is how long terminal jobs (and their results) are retained
	// before eviction (default 10 minutes).
	TTL time.Duration
	// Tick is the janitor's eviction interval (default 1 second).
	Tick time.Duration

	// Journal, when non-nil, receives every job state transition and is
	// replayed at construction to recover jobs across restarts. nil (the
	// zero-config default) keeps the historical in-memory semantics.
	Journal store.JobStore
	// Blobs, when non-nil, holds instance payloads and result labels
	// content-addressed by the digests the codec already computes.
	Blobs store.BlobStore
	// SpillN is the element count at or above which payloads are released
	// from RAM once persisted to Blobs (default 65536). Results of done
	// jobs are always persisted when Blobs is set — SpillN only decides
	// whether the RAM copy is dropped too.
	SpillN int
	// DefaultSeed is the seed the solve path applies when a submission
	// carries none. The manager needs it so persisted result keys match
	// the keys the server derives for its cache tiers.
	DefaultSeed uint64
	// Logf receives recovery and persistence diagnostics (default: discard).
	Logf func(format string, args ...any)

	// now is the test hook for eviction clocks (default time.Now).
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxQueued <= 0 {
		c.MaxQueued = 1024
	}
	if c.DispatchersPerAlgorithm <= 0 {
		c.DispatchersPerAlgorithm = 2
	}
	if c.TTL <= 0 {
		c.TTL = 10 * time.Minute
	}
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.SpillN <= 0 {
		c.SpillN = 1 << 16
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// ErrQueueFull is returned by Submit when MaxQueued jobs are waiting.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: manager closed")

// ErrNotFound is returned by Result for an unknown job id.
var ErrNotFound = errors.New("jobs: unknown job id")

// ErrResultUnavailable is returned by Result for a done job whose label
// payload was released from RAM and cannot be read back from the blob
// tier (deleted out of band, or corrupted — the codec trailer catches
// the latter).
var ErrResultUnavailable = errors.New("jobs: result payload unavailable")

// job is the internal record; all fields are guarded by the manager mutex
// except ins/algo/seed/priority, which are immutable after Submit.
type job struct {
	id       string
	algo     sfcp.Algorithm
	seed     *uint64
	priority int
	n        int
	ins      sfcp.Instance // released in finishLocked; n survives for snapshots

	state     State
	seq       uint64 // FIFO tie-break within a priority
	heapIndex int    // position in its queue, -1 when not queued

	submitted time.Time
	started   time.Time
	finished  time.Time

	res    sfcp.Result
	cached bool
	errMsg string

	// insDigest is the instance's content address (set in durable mode);
	// spilled means the payload lives only in the blob tier and must be
	// reloaded before solving. blobRef marks that this job holds a
	// reference in the manager's instance-blob refcount.
	insDigest string
	spilled   bool
	blobRef   bool
	// resultKey is the blob key of the persisted labels; resultSpilled
	// means the RAM copy was released and Result reloads from the tier.
	resultKey     string
	resultSpilled bool

	cancelRequested bool
	cancel          context.CancelFunc // non-nil while running
}

// Snapshot is the externally visible, JSON-serializable view of a job.
// Labels are deliberately absent — status polls stay cheap; results travel
// through Result.
type Snapshot struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Algorithm is what the submission asked for; ResolvedAlgorithm (set
	// once the job is done) is what the planner actually ran, with
	// PlanReason explaining the choice and PlanWorkers the resolved
	// worker count — the same plan fields a synchronous response carries.
	Algorithm         string      `json:"algorithm"`
	ResolvedAlgorithm string      `json:"resolved_algorithm,omitempty"`
	PlanReason        string      `json:"plan_reason,omitempty"`
	PlanWorkers       int         `json:"plan_workers,omitempty"`
	Priority          int         `json:"priority,omitempty"`
	N                 int         `json:"n"`
	SubmittedAt       time.Time   `json:"submitted_at"`
	StartedAt         *time.Time  `json:"started_at,omitempty"`
	FinishedAt        *time.Time  `json:"finished_at,omitempty"`
	ElapsedMS         float64     `json:"elapsed_ms,omitempty"`
	NumClasses        int         `json:"num_classes,omitempty"`
	Cached            bool        `json:"cached,omitempty"`
	Error             string      `json:"error,omitempty"`
	Stats             *sfcp.Stats `json:"stats,omitempty"`
	// ResolveMS is the delta-apply wall clock when the result came from
	// an incremental re-solve (Result.Resolve set); zero otherwise.
	ResolveMS float64 `json:"resolve_ms,omitempty"`
}

// Counts is a point-in-time tally of the store, for metrics export.
type Counts struct {
	Queued, Running                    int
	Submitted, Done, Failed, Cancelled int64
	Evicted                            int64
	// Requeued and Restored tally journal recovery at boot: non-terminal
	// jobs put back on their queues, and terminal jobs whose snapshots
	// (and results, via the blob tier) remain fetchable. Spilled counts
	// payloads released from RAM into the blob tier.
	Requeued, Restored, Spilled int64
}

// Manager owns the job store, the per-algorithm queues and the dispatcher
// and janitor goroutines. Create one with New; Close releases it.
type Manager struct {
	cfg   Config
	solve SolveFunc

	mu     sync.Mutex
	cond   *sync.Cond // signals dispatchers: queue non-empty or closing
	jobs   map[string]*job
	queues map[sfcp.Algorithm]*jobQueue
	queued int
	seq    uint64
	closed bool
	// insRefs counts live (non-terminal) jobs per instance blob, so a
	// shared payload is deleted from the tier only when its last job
	// finishes — and never during shutdown, when the next boot needs it.
	insRefs map[string]int

	submitted, done, failed, cancelled, evicted int64
	requeued, restored, spilled                 int64
	running                                     int

	// lifecycle is the root context every running job's context derives
	// from; shutdown cancels it, so closing the manager cancels every
	// in-flight solve in one stroke — a daemon shutdown never waits on
	// (or leaks) a minutes-long solve nobody can fetch anymore.
	lifecycle context.Context
	shutdown  context.CancelFunc

	stop chan struct{}
	wg   sync.WaitGroup
}

// New starts a manager with one dispatcher crew per algorithm plus the
// eviction janitor. solve must be non-nil. With a journal configured,
// recovery runs here — before any dispatcher can race it.
func New(cfg Config, solve SolveFunc) *Manager {
	m := &Manager{
		cfg:     cfg.withDefaults(),
		solve:   solve,
		jobs:    map[string]*job{},
		queues:  map[sfcp.Algorithm]*jobQueue{},
		insRefs: map[string]int{},
		stop:    make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	//sfcpvet:ignore ctxpath -- the scheduler's lifecycle root, cancelled in Close; job contexts derive from it
	m.lifecycle, m.shutdown = context.WithCancel(context.Background())
	// The queues map is complete before any dispatcher starts: dispatchers
	// read it under the mutex, but New writes it outside (nothing else can
	// hold a *Manager yet), so interleaving spawn with population would race.
	for _, algo := range sfcp.Algorithms() {
		m.queues[algo] = &jobQueue{}
	}
	if m.cfg.Journal != nil {
		m.recoverFromJournal()
	}
	for _, algo := range sfcp.Algorithms() {
		for d := 0; d < m.cfg.DispatchersPerAlgorithm; d++ {
			m.wg.Add(1)
			go m.dispatch(algo)
		}
	}
	m.wg.Add(1)
	go m.janitor()
	return m
}

// recoverFromJournal replays the journal into the store: terminal jobs
// come back as fetchable snapshots (labels stay in the blob tier),
// non-terminal jobs go back on their queues with payloads reloaded from
// the tier at dispatch. Runs before the dispatchers exist, so no lock is
// needed. Recovery is lenient all the way down: an unreadable record or
// a missing payload downgrades one job, never the boot.
func (m *Manager) recoverFromJournal() {
	err := m.cfg.Journal.Scan(func(rec store.JobRecord) error {
		if rec.ID == "" || rec.Deleted {
			return nil
		}
		if rec.Seq > m.seq {
			m.seq = rec.Seq
		}
		algo, aerr := sfcp.ParseAlgorithm(rec.Algorithm)
		if aerr != nil {
			m.cfg.Logf("jobs: recovery: job %s has unknown algorithm %q; dropping", rec.ID, rec.Algorithm)
			return nil
		}
		j := &job{
			id:        rec.ID,
			algo:      algo,
			seed:      rec.Seed,
			priority:  rec.Priority,
			n:         rec.N,
			seq:       rec.Seq,
			heapIndex: -1,
			submitted: rec.SubmittedAt,
			insDigest: rec.InstanceDigest,
		}
		if st := State(rec.State); st.Terminal() {
			j.state = st
			j.errMsg = rec.Error
			j.started = rec.StartedAt
			j.finished = rec.FinishedAt
			if st == StateDone {
				j.cached = rec.Cached
				j.res.NumClasses = rec.NumClasses
				if rec.ResolvedAlgorithm != "" {
					if ra, perr := sfcp.ParseAlgorithm(rec.ResolvedAlgorithm); perr == nil {
						j.res.Plan = &sfcp.Plan{Algorithm: ra, Workers: rec.PlanWorkers, Reason: rec.PlanReason}
					}
				}
				j.resultKey = rec.ResultKey
				j.resultSpilled = true // labels live in the blob tier, not RAM
			}
			m.jobs[rec.ID] = j
			m.restored++
			return nil
		}
		// Queued or running at shutdown: run it (again). The payload must
		// come from the blob tier — RAM did not survive.
		j.state = StateQueued
		j.spilled = true
		has := false
		if m.cfg.Blobs != nil && rec.InstanceDigest != "" {
			ok, herr := m.cfg.Blobs.Has(rec.InstanceDigest)
			has = herr == nil && ok
		}
		m.jobs[rec.ID] = j
		if !has {
			m.cfg.Logf("jobs: recovery: job %s instance payload %s missing; failing it", rec.ID, rec.InstanceDigest)
			m.finishLocked(j, StateFailed, "instance payload missing after restart", m.cfg.now())
			if perr := m.cfg.Journal.Put(m.recordLocked(j)); perr != nil {
				m.cfg.Logf("jobs: recovery: journaling failed job %s: %v", rec.ID, perr)
			}
			return nil
		}
		j.blobRef = true
		m.insRefs[rec.InstanceDigest]++
		heap.Push(m.queues[algo], j)
		m.queued++
		m.requeued++
		return nil
	})
	if err != nil {
		m.cfg.Logf("jobs: recovery: journal scan: %v", err)
	}
	if n := m.cfg.Journal.CorruptSkipped(); n > 0 {
		m.cfg.Logf("jobs: recovery: journal had %d unreadable entries (skipped)", n)
	}
	if m.requeued > 0 || m.restored > 0 {
		m.cfg.Logf("jobs: recovery: re-queued %d jobs, restored %d terminal snapshots", m.requeued, m.restored)
	}
}

// Close cancels running jobs, stops the dispatchers and janitor, and waits
// for them. Submit fails afterwards. In zero-config mode queued jobs
// transition to cancelled; in durable mode their journal records stay
// non-terminal on purpose, so the next boot re-queues and completes them.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	durable := m.cfg.Journal != nil
	now := m.cfg.now()
	for _, j := range m.jobs {
		switch j.state {
		case StateQueued:
			if durable {
				continue // the journal record outlives the process
			}
			m.queues[j.algo].remove(j)
			m.queued--
			m.finishLocked(j, StateCancelled, "server shutting down", now)
		case StateRunning:
			// Zero-config: marked here so the dispatcher records the job as
			// cancelled. Durable mode skips the mark — if the solve outruns
			// the lifecycle shutdown below it is recorded as done (work not
			// wasted), and if interrupted the dispatcher leaves the journal
			// record non-terminal so the next boot re-runs it.
			if !durable {
				j.cancelRequested = true
			}
		}
	}
	m.shutdown()
	close(m.stop)
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// Submit enqueues one job and returns its snapshot (the id is fresh and
// unguessable). It fails fast with ErrQueueFull or ErrClosed; instance
// validity is the solver's concern and surfaces as a failed job. In
// durable mode the payload is content-addressed and persisted before the
// job becomes visible, and the submission is journaled.
func (m *Manager) Submit(algo sfcp.Algorithm, seed *uint64, priority int, ins sfcp.Instance) (Snapshot, error) {
	id, err := newID()
	if err != nil {
		return Snapshot{}, err
	}
	var digest string
	blobbed := false
	if m.cfg.Journal != nil {
		// Fail fast before hashing a payload we would then throw away.
		m.mu.Lock()
		err := m.admitLocked(algo)
		m.mu.Unlock()
		if err != nil {
			return Snapshot{}, err
		}
		// Hashing and blob I/O scale with n — strictly outside the mutex.
		digest = ins.Digest()
		if m.cfg.Blobs != nil {
			if err := m.ensureInstanceBlob(digest, ins); err != nil {
				m.cfg.Logf("jobs: persisting instance %s for job %s: %v (payload stays RAM-resident)", digest, id, err)
			} else {
				blobbed = true
			}
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.admitLocked(algo); err != nil {
		return Snapshot{}, err
	}
	m.seq++
	j := &job{
		id:        id,
		algo:      algo,
		seed:      seed,
		priority:  priority,
		n:         len(ins.F),
		ins:       ins,
		state:     StateQueued,
		seq:       m.seq,
		submitted: m.cfg.now(),
		insDigest: digest,
	}
	if blobbed {
		j.blobRef = true
		m.insRefs[digest]++
		if j.n >= m.cfg.SpillN {
			j.ins = sfcp.Instance{}
			j.spilled = true
			m.spilled++
		}
	}
	m.jobs[id] = j
	heap.Push(m.queues[algo], j)
	m.queued++
	m.submitted++
	m.journalLocked(j)
	m.cond.Broadcast()
	return m.snapshotLocked(j), nil
}

// admitLocked is the Submit admission check: open, under the queue
// bound, and a known algorithm.
func (m *Manager) admitLocked(algo sfcp.Algorithm) error {
	if m.closed {
		return ErrClosed
	}
	if m.queued >= m.cfg.MaxQueued {
		return fmt.Errorf("%w: %d jobs waiting", ErrQueueFull, m.queued)
	}
	if _, ok := m.queues[algo]; !ok {
		return fmt.Errorf("jobs: no queue for algorithm %v", algo)
	}
	return nil
}

// Get returns a job's snapshot.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return m.snapshotLocked(j), true
}

// Result returns a done job's result alongside its snapshot. Unknown ids
// return ErrNotFound; a known job that is not done returns a zero Result
// and a nil error — callers branch on Snapshot.State. A done job whose
// labels were spilled is reloaded from the blob tier (outside the
// manager mutex); a payload that cannot be read back surfaces as
// ErrResultUnavailable with the snapshot still valid.
func (m *Manager) Result(id string) (sfcp.Result, Snapshot, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return sfcp.Result{}, Snapshot{}, ErrNotFound
	}
	snap := m.snapshotLocked(j)
	res := j.res
	spilled, key := j.resultSpilled, j.resultKey
	m.mu.Unlock()
	if snap.State != StateDone {
		return sfcp.Result{}, snap, nil
	}
	if !spilled {
		return res, snap, nil
	}
	if m.cfg.Blobs == nil || key == "" {
		return sfcp.Result{}, snap, fmt.Errorf("%w: job %s has no persisted labels", ErrResultUnavailable, id)
	}
	rc, err := m.cfg.Blobs.Get(key)
	if err != nil {
		return sfcp.Result{}, snap, fmt.Errorf("%w: job %s: %v", ErrResultUnavailable, id, err)
	}
	labels, err := sfcp.DecodeLabelsBinary(rc)
	rc.Close()
	if err != nil {
		return sfcp.Result{}, snap, fmt.Errorf("%w: job %s: %v", ErrResultUnavailable, id, err)
	}
	res.Labels = labels
	return res, snap, nil
}

// Cancel requests cancellation — and, on a terminal job, deletion.
// Queued jobs are removed and become cancelled immediately; running jobs
// have their context cancelled and reach the cancelled state when the
// solver's next cooperative check fires. A terminal job is evicted on
// the spot: its result payload is released immediately rather than
// waiting for the TTL janitor, and the returned snapshot is its final
// pre-deletion state.
func (m *Manager) Cancel(id string) (Snapshot, bool) {
	var releaseBlob, dropID string
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Snapshot{}, false
	}
	var snap Snapshot
	switch j.state {
	case StateQueued:
		m.queues[j.algo].remove(j)
		m.queued--
		releaseBlob = m.finishLocked(j, StateCancelled, "cancelled before start", m.cfg.now())
		m.journalLocked(j)
		snap = m.snapshotLocked(j)
	case StateRunning:
		if !j.cancelRequested {
			j.cancelRequested = true
			if j.cancel != nil {
				j.cancel()
			}
		}
		snap = m.snapshotLocked(j)
	default:
		// Terminal: delete now. The labels (RAM and, for the snapshot, the
		// reference) go immediately; the result blob stays — it is the
		// durable tier, addressed by content, not by job.
		snap = m.snapshotLocked(j)
		j.res = sfcp.Result{}
		delete(m.jobs, id)
		m.evicted++
		dropID = id
	}
	m.mu.Unlock()
	m.deleteInstanceBlob(releaseBlob)
	if dropID != "" && m.cfg.Journal != nil {
		if err := m.cfg.Journal.Delete(dropID); err != nil {
			m.cfg.Logf("jobs: deleting journal record %s: %v", dropID, err)
		}
	}
	return snap, true
}

// Counts tallies the store for metrics export.
func (m *Manager) Counts() Counts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Counts{
		Queued:    m.queued,
		Running:   m.running,
		Submitted: m.submitted,
		Done:      m.done,
		Failed:    m.failed,
		Cancelled: m.cancelled,
		Evicted:   m.evicted,
		Requeued:  m.requeued,
		Restored:  m.restored,
		Spilled:   m.spilled,
	}
}

// dispatch is one dispatcher goroutine: pop the algorithm's queue, reload
// a spilled payload, run the solve under the job's cancellable context,
// persist the result, finalize.
func (m *Manager) dispatch(algo sfcp.Algorithm) {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		q := m.queues[algo]
		for q.Len() == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := heap.Pop(q).(*job)
		m.queued--
		j.state = StateRunning
		j.started = m.cfg.now()
		m.running++
		ctx, cancel := context.WithCancel(m.lifecycle)
		j.cancel = cancel
		m.journalLocked(j)
		ins, spilled, digest := j.ins, j.spilled, j.insDigest
		m.mu.Unlock()

		var res sfcp.Result
		var cached bool
		var err error
		if spilled {
			ins, err = m.loadInstance(digest)
			if err != nil {
				err = fmt.Errorf("jobs: reloading instance %s: %w", digest, err)
			}
		}
		if err == nil {
			res, cached, err = m.solve(ctx, j.algo, j.seed, ins)
		}
		cancel()

		// Persist the labels before finalizing, so a journaled done record
		// never points at a result key that is not yet on disk.
		var resultKey string
		if err == nil && m.cfg.Journal != nil && m.cfg.Blobs != nil && digest != "" {
			var perr error
			resultKey, perr = m.persistResult(j, res)
			if perr != nil {
				m.cfg.Logf("jobs: persisting result for job %s: %v (labels stay RAM-resident)", j.id, perr)
			}
		}

		m.mu.Lock()
		m.running--
		j.cancel = nil
		now := m.cfg.now()
		var releaseBlob string
		switch {
		case j.cancelRequested:
			// The client's DELETE wins even over a solve that slipped past
			// the last cooperative check: the result is discarded.
			releaseBlob = m.finishLocked(j, StateCancelled, context.Canceled.Error(), now)
			m.journalLocked(j)
		case err != nil:
			state := StateFailed
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				state = StateCancelled
			}
			releaseBlob = m.finishLocked(j, state, err.Error(), now)
			if state == StateCancelled && m.closed {
				// Shutdown interrupted the solve. Leaving the journal record
				// non-terminal is deliberate: the next boot re-queues the job
				// instead of reporting a cancellation nobody asked for.
			} else {
				m.journalLocked(j)
			}
		default:
			j.res = res
			j.cached = cached
			j.resultKey = resultKey
			if resultKey != "" && j.n >= m.cfg.SpillN {
				j.res.Labels = nil
				j.resultSpilled = true
				m.spilled++
			}
			releaseBlob = m.finishLocked(j, StateDone, "", now)
			m.journalLocked(j)
		}
		m.mu.Unlock()
		m.deleteInstanceBlob(releaseBlob)
	}
}

// ensureInstanceBlob writes the instance under its content address
// unless already present. The bytes are the codec wire format, streamed
// through a pipe so a 10^8-element payload never needs a second
// in-memory copy.
func (m *Manager) ensureInstanceBlob(digest string, ins sfcp.Instance) error {
	if has, err := m.cfg.Blobs.Has(digest); err == nil && has {
		return nil
	}
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(ins.EncodeBinary(pw)) }()
	_, err := m.cfg.Blobs.Put(digest, pr)
	if err != nil {
		pr.CloseWithError(err) // unblock the encoder if Put bailed early
	}
	return err
}

// loadInstance streams a spilled payload back from the blob tier. The
// codec's digest trailer makes a corrupted blob a decode error here —
// the job fails with a precise message instead of solving garbage.
func (m *Manager) loadInstance(digest string) (sfcp.Instance, error) {
	rc, err := m.cfg.Blobs.Get(digest)
	if err != nil {
		return sfcp.Instance{}, err
	}
	defer rc.Close()
	return sfcp.DecodeBinary(rc)
}

// persistResult writes the labels under the result key derived from the
// resolved plan — the durable twin of the server's cache key, so the
// server's blob read-through finds job results and vice versa. Already
// present (the server's write-through got there first) is success.
func (m *Manager) persistResult(j *job, res sfcp.Result) (string, error) {
	resolved := j.algo
	if res.Plan != nil {
		resolved = res.Plan.Algorithm
	}
	seed := m.cfg.DefaultSeed
	if j.seed != nil {
		seed = *j.seed
	}
	key := store.ResultKey(resolved.String(), seed, j.insDigest)
	if has, err := m.cfg.Blobs.Has(key); err == nil && has {
		return key, nil
	}
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(sfcp.EncodeLabelsBinary(pw, res.Labels)) }()
	if _, err := m.cfg.Blobs.Put(key, pr); err != nil {
		pr.CloseWithError(err)
		return "", err
	}
	return key, nil
}

// deleteInstanceBlob removes a released instance payload from the tier
// (no-op for an empty key). Called outside the manager mutex.
func (m *Manager) deleteInstanceBlob(key string) {
	if key == "" || m.cfg.Blobs == nil {
		return
	}
	if err := m.cfg.Blobs.Delete(key); err != nil {
		m.cfg.Logf("jobs: deleting instance blob %s: %v", key, err)
	}
}

// journalLocked appends j's current state to the journal. Callers hold
// m.mu — the append is a single buffered line, taken under the lock so
// one job's transitions can never reach the journal out of order.
func (m *Manager) journalLocked(j *job) {
	if m.cfg.Journal == nil {
		return
	}
	if err := m.cfg.Journal.Put(m.recordLocked(j)); err != nil {
		m.cfg.Logf("jobs: journaling job %s (%s): %v", j.id, j.state, err)
	}
}

// recordLocked builds the persisted view of j.
func (m *Manager) recordLocked(j *job) store.JobRecord {
	rec := store.JobRecord{
		ID:             j.id,
		Seq:            j.seq,
		Algorithm:      j.algo.String(),
		Seed:           j.seed,
		Priority:       j.priority,
		N:              j.n,
		State:          string(j.state),
		SubmittedAt:    j.submitted,
		StartedAt:      j.started,
		FinishedAt:     j.finished,
		Error:          j.errMsg,
		InstanceDigest: j.insDigest,
	}
	if j.state == StateDone {
		rec.NumClasses = j.res.NumClasses
		rec.Cached = j.cached
		rec.ResultKey = j.resultKey
		if j.res.Plan != nil {
			rec.ResolvedAlgorithm = j.res.Plan.Algorithm.String()
			rec.PlanReason = j.res.Plan.Reason
			rec.PlanWorkers = j.res.Plan.Workers
		}
	}
	return rec
}

// finishLocked moves a job to a terminal state and bumps the tallies. The
// input arrays are released here rather than at eviction: a finished
// 10^8-element job would otherwise pin gigabytes of dead F+B for the whole
// TTL window (only n is needed for later snapshots). If this was the last
// live job referencing its instance blob, the blob key is returned for
// deletion outside the lock — except during shutdown, when the next boot
// still needs it.
func (m *Manager) finishLocked(j *job, state State, errMsg string, now time.Time) (releaseBlob string) {
	j.state = state
	j.errMsg = errMsg
	j.finished = now
	j.ins = sfcp.Instance{}
	switch state {
	case StateDone:
		m.done++
	case StateFailed:
		m.failed++
	case StateCancelled:
		m.cancelled++
	}
	if j.blobRef {
		j.blobRef = false
		if m.insRefs[j.insDigest]--; m.insRefs[j.insDigest] <= 0 {
			delete(m.insRefs, j.insDigest)
			if !m.closed {
				releaseBlob = j.insDigest
			}
		}
	}
	return releaseBlob
}

// janitor evicts terminal jobs TTL after they finished, every Tick.
func (m *Manager) janitor() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.evictExpired()
		}
	}
}

// evictExpired drops expired terminal jobs and their journal records.
// Result blobs are deliberately retained: they are the durable result
// tier, keyed by content, and the server's read-through serves them long
// after the job that computed them is gone.
func (m *Manager) evictExpired() {
	cutoff := m.cfg.now().Add(-m.cfg.TTL)
	var dropped []string
	m.mu.Lock()
	for id, j := range m.jobs {
		if j.state.Terminal() && j.finished.Before(cutoff) {
			delete(m.jobs, id)
			m.evicted++
			dropped = append(dropped, id)
		}
	}
	m.mu.Unlock()
	if m.cfg.Journal == nil {
		return
	}
	for _, id := range dropped {
		if err := m.cfg.Journal.Delete(id); err != nil {
			m.cfg.Logf("jobs: evicting journal record %s: %v", id, err)
		}
	}
}

func (m *Manager) snapshotLocked(j *job) Snapshot {
	s := Snapshot{
		ID:          j.id,
		State:       j.state,
		Algorithm:   j.algo.String(),
		Priority:    j.priority,
		N:           j.n,
		SubmittedAt: j.submitted,
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
		end := j.finished
		if end.IsZero() {
			end = m.cfg.now()
		}
		s.ElapsedMS = float64(end.Sub(j.started)) / float64(time.Millisecond)
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	if j.state == StateDone {
		s.NumClasses = j.res.NumClasses
		s.Cached = j.cached
		s.Stats = j.res.Stats
		if j.res.Plan != nil {
			s.ResolvedAlgorithm = j.res.Plan.Algorithm.String()
			s.PlanReason = j.res.Plan.Reason
			s.PlanWorkers = j.res.Plan.Workers
		}
		if j.res.Resolve != nil {
			s.ResolveMS = float64(j.res.Resolve.Duration) / float64(time.Millisecond)
		}
	}
	return s
}

// newID returns a fresh 128-bit hex job id.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: id generation: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// jobQueue is a max-heap by (priority, then submission order). It
// implements heap.Interface; the manager mutex guards every access.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }

func (q jobQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}

func (q jobQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIndex = i
	q[j].heapIndex = j
}

func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.heapIndex = len(*q)
	*q = append(*q, j)
}

func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIndex = -1
	*q = old[:n-1]
	return j
}

// remove deletes a specific job from the queue (for cancellation).
func (q *jobQueue) remove(j *job) {
	if j.heapIndex >= 0 && j.heapIndex < q.Len() && (*q)[j.heapIndex] == j {
		heap.Remove(q, j.heapIndex)
	}
}
