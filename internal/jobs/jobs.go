// Package jobs implements sfcpd's asynchronous job subsystem: a
// durable-in-memory job store plus a scheduler that feeds the server's
// per-algorithm solver pools. A client submits an instance and gets a job
// id back immediately; the solve runs in the background while the client
// polls status and fetches the result when it is done — so a 10^8-element
// upload no longer ties an HTTP connection to a minutes-long synchronous
// solve, and a client timeout no longer silently wastes the work.
//
// Lifecycle:
//
//	queued ──▶ running ──▶ done | failed | cancelled
//	   └──────────────────────────────────▶ cancelled
//
// Jobs wait in one priority queue per algorithm (higher Priority first,
// FIFO within a priority), mirroring the per-algorithm isolation of the
// solver pools: a burst of slow simulator jobs cannot delay cheap
// sequential ones. Each algorithm has a fixed crew of dispatchers that pop
// the queue and execute the solve through the SolveFunc the server wires
// in (cache, pool scheduling and metrics stay in one place).
//
// Cancellation is cooperative: cancelling a queued job removes it from the
// queue; cancelling a running job cancels its context, which the solvers
// poll between refinement rounds / simulated PRAM steps, so the job
// reaches the cancelled state within one round. Terminal jobs (and their
// results) are evicted TTL seconds after finishing by a janitor tick.
package jobs

import (
	"container/heap"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"sfcp"
)

// State is a job's position in the lifecycle.
type State string

// The five job states. Done, Failed and Cancelled are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in this state will never change again
// (until eviction removes it entirely).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SolveFunc executes one job's solve under ctx. The server wires in its
// cache + per-algorithm pool path, so async jobs and synchronous requests
// share scheduling, memoization and metrics. cached reports a memoized
// result (surfaced in the job snapshot).
type SolveFunc func(ctx context.Context, algo sfcp.Algorithm, seed *uint64, ins sfcp.Instance) (res sfcp.Result, cached bool, err error)

// Config sizes the manager. Zero values select the documented defaults.
type Config struct {
	// MaxQueued bounds jobs waiting across all algorithms (default 1024).
	// Submit fails once the bound is hit — the backpressure signal.
	MaxQueued int
	// DispatchersPerAlgorithm is how many jobs of one algorithm may be in
	// flight at once (default 2, matching the solver pool's worker crews).
	DispatchersPerAlgorithm int
	// TTL is how long terminal jobs (and their results) are retained
	// before eviction (default 10 minutes).
	TTL time.Duration
	// Tick is the janitor's eviction interval (default 1 second).
	Tick time.Duration

	// now is the test hook for eviction clocks (default time.Now).
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxQueued <= 0 {
		c.MaxQueued = 1024
	}
	if c.DispatchersPerAlgorithm <= 0 {
		c.DispatchersPerAlgorithm = 2
	}
	if c.TTL <= 0 {
		c.TTL = 10 * time.Minute
	}
	if c.Tick <= 0 {
		c.Tick = time.Second
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// ErrQueueFull is returned by Submit when MaxQueued jobs are waiting.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: manager closed")

// job is the internal record; all fields are guarded by the manager mutex
// except ins/algo/seed/priority, which are immutable after Submit.
type job struct {
	id       string
	algo     sfcp.Algorithm
	seed     *uint64
	priority int
	n        int
	ins      sfcp.Instance // released in finishLocked; n survives for snapshots

	state     State
	seq       uint64 // FIFO tie-break within a priority
	heapIndex int    // position in its queue, -1 when not queued

	submitted time.Time
	started   time.Time
	finished  time.Time

	res    sfcp.Result
	cached bool
	errMsg string

	cancelRequested bool
	cancel          context.CancelFunc // non-nil while running
}

// Snapshot is the externally visible, JSON-serializable view of a job.
// Labels are deliberately absent — status polls stay cheap; results travel
// through Result.
type Snapshot struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Algorithm is what the submission asked for; ResolvedAlgorithm (set
	// once the job is done) is what the planner actually ran, with
	// PlanReason explaining the choice and PlanWorkers the resolved
	// worker count — the same plan fields a synchronous response carries.
	Algorithm         string      `json:"algorithm"`
	ResolvedAlgorithm string      `json:"resolved_algorithm,omitempty"`
	PlanReason        string      `json:"plan_reason,omitempty"`
	PlanWorkers       int         `json:"plan_workers,omitempty"`
	Priority          int         `json:"priority,omitempty"`
	N                 int         `json:"n"`
	SubmittedAt       time.Time   `json:"submitted_at"`
	StartedAt         *time.Time  `json:"started_at,omitempty"`
	FinishedAt        *time.Time  `json:"finished_at,omitempty"`
	ElapsedMS         float64     `json:"elapsed_ms,omitempty"`
	NumClasses        int         `json:"num_classes,omitempty"`
	Cached            bool        `json:"cached,omitempty"`
	Error             string      `json:"error,omitempty"`
	Stats             *sfcp.Stats `json:"stats,omitempty"`
}

// Counts is a point-in-time tally of the store, for metrics export.
type Counts struct {
	Queued, Running                    int
	Submitted, Done, Failed, Cancelled int64
	Evicted                            int64
}

// Manager owns the job store, the per-algorithm queues and the dispatcher
// and janitor goroutines. Create one with New; Close releases it.
type Manager struct {
	cfg   Config
	solve SolveFunc

	mu     sync.Mutex
	cond   *sync.Cond // signals dispatchers: queue non-empty or closing
	jobs   map[string]*job
	queues map[sfcp.Algorithm]*jobQueue
	queued int
	seq    uint64
	closed bool

	submitted, done, failed, cancelled, evicted int64
	running                                     int

	// lifecycle is the root context every running job's context derives
	// from; shutdown cancels it, so closing the manager cancels every
	// in-flight solve in one stroke — a daemon shutdown never waits on
	// (or leaks) a minutes-long solve nobody can fetch anymore.
	lifecycle context.Context
	shutdown  context.CancelFunc

	stop chan struct{}
	wg   sync.WaitGroup
}

// New starts a manager with one dispatcher crew per algorithm plus the
// eviction janitor. solve must be non-nil.
func New(cfg Config, solve SolveFunc) *Manager {
	m := &Manager{
		cfg:    cfg.withDefaults(),
		solve:  solve,
		jobs:   map[string]*job{},
		queues: map[sfcp.Algorithm]*jobQueue{},
		stop:   make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	//sfcpvet:ignore ctxpath -- the scheduler's lifecycle root, cancelled in Close; job contexts derive from it
	m.lifecycle, m.shutdown = context.WithCancel(context.Background())
	// The queues map is complete before any dispatcher starts: dispatchers
	// read it under the mutex, but New writes it outside (nothing else can
	// hold a *Manager yet), so interleaving spawn with population would race.
	for _, algo := range sfcp.Algorithms() {
		m.queues[algo] = &jobQueue{}
	}
	for _, algo := range sfcp.Algorithms() {
		for d := 0; d < m.cfg.DispatchersPerAlgorithm; d++ {
			m.wg.Add(1)
			go m.dispatch(algo)
		}
	}
	m.wg.Add(1)
	go m.janitor()
	return m
}

// Close cancels running jobs, stops the dispatchers and janitor, and waits
// for them. Queued jobs transition to cancelled; Submit fails afterwards.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	now := m.cfg.now()
	for _, j := range m.jobs {
		switch j.state {
		case StateQueued:
			m.queues[j.algo].remove(j)
			m.queued--
			m.finishLocked(j, StateCancelled, "server shutting down", now)
		case StateRunning:
			// Marked here so the dispatcher records the job as cancelled;
			// the actual cancellation is the lifecycle shutdown below.
			j.cancelRequested = true
		}
	}
	m.shutdown()
	close(m.stop)
	m.cond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// Submit enqueues one job and returns its snapshot (the id is fresh and
// unguessable). It fails fast with ErrQueueFull or ErrClosed; instance
// validity is the solver's concern and surfaces as a failed job.
func (m *Manager) Submit(algo sfcp.Algorithm, seed *uint64, priority int, ins sfcp.Instance) (Snapshot, error) {
	id, err := newID()
	if err != nil {
		return Snapshot{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Snapshot{}, ErrClosed
	}
	if m.queued >= m.cfg.MaxQueued {
		return Snapshot{}, fmt.Errorf("%w: %d jobs waiting", ErrQueueFull, m.queued)
	}
	q, ok := m.queues[algo]
	if !ok {
		return Snapshot{}, fmt.Errorf("jobs: no queue for algorithm %v", algo)
	}
	m.seq++
	j := &job{
		id:        id,
		algo:      algo,
		seed:      seed,
		priority:  priority,
		n:         len(ins.F),
		ins:       ins,
		state:     StateQueued,
		seq:       m.seq,
		submitted: m.cfg.now(),
	}
	m.jobs[id] = j
	heap.Push(q, j)
	m.queued++
	m.submitted++
	m.cond.Broadcast()
	return m.snapshotLocked(j), nil
}

// Get returns a job's snapshot.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return m.snapshotLocked(j), true
}

// Result returns a done job's result alongside its snapshot. ok is false
// for unknown ids; a known job that is not done returns ok with a zero
// Result — callers branch on Snapshot.State.
func (m *Manager) Result(id string) (sfcp.Result, Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return sfcp.Result{}, Snapshot{}, false
	}
	if j.state != StateDone {
		return sfcp.Result{}, m.snapshotLocked(j), true
	}
	return j.res, m.snapshotLocked(j), true
}

// Cancel requests cancellation. Queued jobs are removed and become
// cancelled immediately; running jobs have their context cancelled and
// reach the cancelled state when the solver's next cooperative check
// fires. Terminal jobs are unchanged (cancel is idempotent).
func (m *Manager) Cancel(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	switch j.state {
	case StateQueued:
		m.queues[j.algo].remove(j)
		m.queued--
		m.finishLocked(j, StateCancelled, "cancelled before start", m.cfg.now())
	case StateRunning:
		if !j.cancelRequested {
			j.cancelRequested = true
			j.cancel()
		}
	}
	return m.snapshotLocked(j), true
}

// Counts tallies the store for metrics export.
func (m *Manager) Counts() Counts {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Counts{
		Queued:    m.queued,
		Running:   m.running,
		Submitted: m.submitted,
		Done:      m.done,
		Failed:    m.failed,
		Cancelled: m.cancelled,
		Evicted:   m.evicted,
	}
}

// dispatch is one dispatcher goroutine: pop the algorithm's queue, run the
// solve under the job's cancellable context, finalize.
func (m *Manager) dispatch(algo sfcp.Algorithm) {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		q := m.queues[algo]
		for q.Len() == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := heap.Pop(q).(*job)
		m.queued--
		j.state = StateRunning
		j.started = m.cfg.now()
		m.running++
		ctx, cancel := context.WithCancel(m.lifecycle)
		j.cancel = cancel
		m.mu.Unlock()

		res, cached, err := m.solve(ctx, j.algo, j.seed, j.ins)
		cancel()

		m.mu.Lock()
		m.running--
		j.cancel = nil
		now := m.cfg.now()
		switch {
		case j.cancelRequested:
			// The client's DELETE wins even over a solve that slipped past
			// the last cooperative check: the result is discarded.
			m.finishLocked(j, StateCancelled, context.Canceled.Error(), now)
		case err != nil:
			state := StateFailed
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				state = StateCancelled
			}
			m.finishLocked(j, state, err.Error(), now)
		default:
			j.res = res
			j.cached = cached
			m.finishLocked(j, StateDone, "", now)
		}
		m.mu.Unlock()
	}
}

// finishLocked moves a job to a terminal state and bumps the tallies. The
// input arrays are released here rather than at eviction: a finished
// 10^8-element job would otherwise pin gigabytes of dead F+B for the whole
// TTL window (only n is needed for later snapshots).
func (m *Manager) finishLocked(j *job, state State, errMsg string, now time.Time) {
	j.state = state
	j.errMsg = errMsg
	j.finished = now
	j.ins = sfcp.Instance{}
	switch state {
	case StateDone:
		m.done++
	case StateFailed:
		m.failed++
	case StateCancelled:
		m.cancelled++
	}
}

// janitor evicts terminal jobs TTL after they finished, every Tick.
func (m *Manager) janitor() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.Tick)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.evictExpired()
		}
	}
}

func (m *Manager) evictExpired() {
	cutoff := m.cfg.now().Add(-m.cfg.TTL)
	m.mu.Lock()
	for id, j := range m.jobs {
		if j.state.Terminal() && j.finished.Before(cutoff) {
			delete(m.jobs, id)
			m.evicted++
		}
	}
	m.mu.Unlock()
}

func (m *Manager) snapshotLocked(j *job) Snapshot {
	s := Snapshot{
		ID:          j.id,
		State:       j.state,
		Algorithm:   j.algo.String(),
		Priority:    j.priority,
		N:           j.n,
		SubmittedAt: j.submitted,
		Error:       j.errMsg,
	}
	if !j.started.IsZero() {
		t := j.started
		s.StartedAt = &t
		end := j.finished
		if end.IsZero() {
			end = m.cfg.now()
		}
		s.ElapsedMS = float64(end.Sub(j.started)) / float64(time.Millisecond)
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.FinishedAt = &t
	}
	if j.state == StateDone {
		s.NumClasses = j.res.NumClasses
		s.Cached = j.cached
		s.Stats = j.res.Stats
		if j.res.Plan != nil {
			s.ResolvedAlgorithm = j.res.Plan.Algorithm.String()
			s.PlanReason = j.res.Plan.Reason
			s.PlanWorkers = j.res.Plan.Workers
		}
	}
	return s
}

// newID returns a fresh 128-bit hex job id.
func newID() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: id generation: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

// jobQueue is a max-heap by (priority, then submission order). It
// implements heap.Interface; the manager mutex guards every access.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }

func (q jobQueue) Less(i, j int) bool {
	if q[i].priority != q[j].priority {
		return q[i].priority > q[j].priority
	}
	return q[i].seq < q[j].seq
}

func (q jobQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIndex = i
	q[j].heapIndex = j
}

func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.heapIndex = len(*q)
	*q = append(*q, j)
}

func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIndex = -1
	*q = old[:n-1]
	return j
}

// remove deletes a specific job from the queue (for cancellation).
func (q *jobQueue) remove(j *job) {
	if j.heapIndex >= 0 && j.heapIndex < q.Len() && (*q)[j.heapIndex] == j {
		heap.Remove(q, j.heapIndex)
	}
}
