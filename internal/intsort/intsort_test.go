package intsort

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sfcp/internal/pram"
)

func checkStablePerm(t *testing.T, keys []int64, perm []int) {
	t.Helper()
	if len(perm) != len(keys) {
		t.Fatalf("perm length %d, want %d", len(perm), len(keys))
	}
	seen := make([]bool, len(keys))
	for _, p := range perm {
		if p < 0 || p >= len(keys) || seen[p] {
			t.Fatalf("perm %v is not a permutation", perm)
		}
		seen[p] = true
	}
	for j := 1; j < len(perm); j++ {
		a, b := keys[perm[j-1]], keys[perm[j]]
		if a > b {
			t.Fatalf("not sorted at %d: %d > %d", j, a, b)
		}
		if a == b && perm[j-1] > perm[j] {
			t.Fatalf("not stable at %d: index %d before %d for equal key %d", j, perm[j-1], perm[j], a)
		}
	}
}

func TestStableRanks(t *testing.T) {
	keys := []int64{5, 3, 5, 1, 3, 3, 0}
	checkStablePerm(t, keys, StableRanks(keys))
}

func TestCountingRanksMatchesStable(t *testing.T) {
	f := func(raw []uint16) bool {
		keys := make([]int64, len(raw))
		var max int64
		for i, v := range raw {
			keys[i] = int64(v % 997)
			if keys[i] > max {
				max = keys[i]
			}
		}
		a := StableRanks(keys)
		b := CountingRanks(keys, max)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCountingRanksEmpty(t *testing.T) {
	if got := CountingRanks(nil, 10); len(got) != 0 {
		t.Fatalf("CountingRanks(nil) = %v", got)
	}
}

func allStrategies() []Strategy { return []Strategy{Modeled, BitSplit, Grouped} }

func TestSortPRAMAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, strat := range allStrategies() {
		for _, n := range []int{0, 1, 2, 3, 7, 16, 100, 257} {
			keys := make([]int64, n)
			for i := range keys {
				keys[i] = int64(rng.Intn(3 * (n + 1)))
			}
			m := pram.New(pram.ArbitraryCRCW)
			a := m.NewArrayFrom(keys)
			perm := SortPRAM(m, a, int64(3*(n+1)), strat)
			checkStablePerm(t, keys, perm.Ints())
		}
	}
}

func TestSortPRAMAlreadySortedAndReversed(t *testing.T) {
	n := 64
	asc := make([]int64, n)
	desc := make([]int64, n)
	for i := 0; i < n; i++ {
		asc[i] = int64(i)
		desc[i] = int64(n - i)
	}
	for _, strat := range allStrategies() {
		for _, keys := range [][]int64{asc, desc} {
			m := pram.New(pram.ArbitraryCRCW)
			a := m.NewArrayFrom(keys)
			perm := SortPRAM(m, a, int64(n+1), strat)
			checkStablePerm(t, keys, perm.Ints())
		}
	}
}

func TestSortPRAMAllEqual(t *testing.T) {
	keys := make([]int64, 50)
	for i := range keys {
		keys[i] = 7
	}
	for _, strat := range allStrategies() {
		m := pram.New(pram.ArbitraryCRCW)
		a := m.NewArrayFrom(keys)
		perm := SortPRAM(m, a, 7, strat)
		// Stability forces the identity permutation.
		for i, p := range perm.Ints() {
			if p != i {
				t.Fatalf("%v: perm[%d] = %d, want identity", strat, i, p)
			}
		}
	}
}

func TestSortPRAMZeroMaxKey(t *testing.T) {
	keys := []int64{0, 0, 0}
	for _, strat := range allStrategies() {
		m := pram.New(pram.ArbitraryCRCW)
		a := m.NewArrayFrom(keys)
		perm := SortPRAM(m, a, 0, strat)
		checkStablePerm(t, keys, perm.Ints())
	}
}

func TestSortPRAMProperty(t *testing.T) {
	f := func(raw []uint16, pick uint8) bool {
		strat := allStrategies()[int(pick)%3]
		keys := make([]int64, len(raw))
		var max int64
		for i, v := range raw {
			keys[i] = int64(v)
			if keys[i] > max {
				max = keys[i]
			}
		}
		m := pram.New(pram.ArbitraryCRCW)
		a := m.NewArrayFrom(keys)
		perm := SortPRAM(m, a, max, strat).Ints()
		want := StableRanks(keys)
		for i := range want {
			if perm[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortPairsPRAM(t *testing.T) {
	as := []int64{3, 1, 3, 1, 2}
	bs := []int64{0, 5, 0, 2, 9}
	type pair struct {
		a, b int64
		idx  int
	}
	pairs := make([]pair, len(as))
	for i := range as {
		pairs[i] = pair{as[i], bs[i], i}
	}
	sort.SliceStable(pairs, func(x, y int) bool {
		if pairs[x].a != pairs[y].a {
			return pairs[x].a < pairs[y].a
		}
		return pairs[x].b < pairs[y].b
	})
	for _, strat := range allStrategies() {
		m := pram.New(pram.ArbitraryCRCW)
		aArr := m.NewArrayFrom(as)
		bArr := m.NewArrayFrom(bs)
		permArr, _ := SortPairsPRAM(m, aArr, bArr, 9, strat)
		perm := permArr.Ints()
		for i := range pairs {
			if perm[i] != pairs[i].idx {
				t.Fatalf("%v: perm = %v, want order %v", strat, perm, pairs)
			}
		}
	}
}

func TestRankDistinct(t *testing.T) {
	keys := []int64{50, 10, 50, 30, 10}
	m := pram.New(pram.ArbitraryCRCW)
	a := m.NewArrayFrom(keys)
	perm := SortPRAM(m, a, 50, Modeled)
	ranks, distinct := RankDistinct(m, a, perm, 1)
	if distinct != 3 {
		t.Fatalf("distinct = %d, want 3", distinct)
	}
	want := []int{3, 1, 3, 2, 1}
	for i, r := range ranks.Ints() {
		if r != want[i] {
			t.Fatalf("ranks = %v, want %v", ranks.Ints(), want)
		}
	}
}

func TestRankDistinctEmpty(t *testing.T) {
	m := pram.New(pram.ArbitraryCRCW)
	a := m.NewArray(0)
	perm := SortPRAM(m, a, 0, Modeled)
	ranks, distinct := RankDistinct(m, a, perm, 0)
	if ranks.Len() != 0 || distinct != 0 {
		t.Fatalf("empty RankDistinct: len=%d distinct=%d", ranks.Len(), distinct)
	}
}

func TestRankDistinctBase(t *testing.T) {
	keys := []int64{2, 2, 2}
	m := pram.New(pram.ArbitraryCRCW)
	a := m.NewArrayFrom(keys)
	perm := SortPRAM(m, a, 2, Modeled)
	ranks, distinct := RankDistinct(m, a, perm, 10)
	if distinct != 1 {
		t.Fatalf("distinct = %d", distinct)
	}
	for _, r := range ranks.Ints() {
		if r != 10 {
			t.Fatalf("ranks = %v, want all 10", ranks.Ints())
		}
	}
}

func TestModeledWorkCheaperThanBitSplit(t *testing.T) {
	// The entire point of the Bhatt et al. substitution: modeled work is
	// O(n log log n) while bit-split is O(n log n).
	n := 1 << 12
	rng := rand.New(rand.NewSource(2))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(rng.Intn(n))
	}
	work := map[Strategy]int64{}
	for _, strat := range allStrategies() {
		m := pram.New(pram.ArbitraryCRCW)
		a := m.NewArrayFrom(keys)
		m.ResetStats()
		SortPRAM(m, a, int64(n), strat)
		work[strat] = m.Stats().Work
	}
	if work[Modeled] >= work[BitSplit] {
		t.Errorf("modeled work %d should be below bit-split %d", work[Modeled], work[BitSplit])
	}
	if work[Grouped] >= work[BitSplit] {
		t.Errorf("grouped work %d should be below bit-split %d", work[Grouped], work[BitSplit])
	}
}

func TestStrategyString(t *testing.T) {
	if Modeled.String() != "modeled-bhatt" || BitSplit.String() != "bit-split" ||
		Grouped.String() != "grouped-counting" || Strategy(9).String() != "unknown" {
		t.Fatal("Strategy.String mismatch")
	}
}
