// Package intsort provides stable integer sorting over polynomial ranges,
// the only super-linear-work component of the JáJá–Ryu pipeline.
//
// The paper invokes the deterministic parallel integer sorter of Bhatt,
// Diks, Hagerup, Prasad, Radzik and Saxena (Inform. and Comput. 94, 1991) as
// a black box: O(log n / log log n) time and O(n log log n) operations on
// the Arbitrary CRCW PRAM for keys in [0, n^O(1)]. Reimplementing that
// algorithm is a paper-sized project of its own, so this package offers
// three strategies:
//
//   - Modeled: the sort is carried out on the host (stable) and the
//     machine is charged exactly the published Bhatt et al. costs. This is
//     the default and mirrors how the paper itself accounts for sorting.
//   - BitSplit: a genuinely step-by-step PRAM radix sort, one bit per pass
//     via prefix sums: O(log n log K) rounds and O(n log K) work for K-bit
//     keys. This is the sorting cost the pre-1991 algorithms (e.g.
//     Galley–Iliopoulos) paid.
//   - Grouped: a genuinely step-by-step counting sort with radix R and
//     per-group sequential loops of length s (rounds charged honestly):
//     O((s + log n)·⌈K/log R⌉) rounds and O(n·⌈K/log R⌉) work.
//
// Ablation A1 in EXPERIMENTS.md contrasts the three.
package intsort

import (
	"math/bits"
	"sort"

	"sfcp/internal/pram"
)

// Strategy selects how SortPRAM executes and charges the sort.
type Strategy uint8

const (
	// Modeled charges the Bhatt et al. published costs and sorts on the
	// host. Default.
	Modeled Strategy = iota
	// BitSplit runs a real one-bit-per-pass PRAM radix sort.
	BitSplit
	// Grouped runs a real counting-sort-per-digit PRAM radix sort with
	// logarithmic group size.
	Grouped
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Modeled:
		return "modeled-bhatt"
	case BitSplit:
		return "bit-split"
	case Grouped:
		return "grouped-counting"
	}
	return "unknown"
}

// StableRanks sorts keys stably on the host and returns perm such that
// keys[perm[0]] <= keys[perm[1]] <= ... with ties in index order.
func StableRanks(keys []int64) []int {
	perm := make([]int, len(keys))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return keys[perm[a]] < keys[perm[b]] })
	return perm
}

// CountingRanks is a linear-time host-side stable counting sort for keys in
// [0, maxKey]. It returns the same permutation as StableRanks.
func CountingRanks(keys []int64, maxKey int64) []int {
	if maxKey < 0 {
		maxKey = 0
	}
	count := make([]int, maxKey+2)
	for _, k := range keys {
		count[k+1]++
	}
	for v := int64(1); v < maxKey+2; v++ {
		count[v] += count[v-1]
	}
	perm := make([]int, len(keys))
	for i, k := range keys {
		perm[count[k]] = i
		count[k]++
	}
	return perm
}

// bhattCost returns the modeled (rounds, work) of the Bhatt et al. sorter
// for n keys: O(log n / log log n) rounds and O(n log log n) work. The
// constants are taken as 1 so measured curves expose the asymptotic shape.
func bhattCost(n int) (rounds, work int64) {
	if n <= 1 {
		return 1, int64(n)
	}
	lg := int64(bits.Len(uint(n - 1))) // ceil(log2 n)
	lglg := int64(bits.Len(uint(lg)))  // ~log log n
	if lglg < 1 {
		lglg = 1
	}
	rounds = lg / lglg
	if rounds < 1 {
		rounds = 1
	}
	work = int64(n) * lglg
	return rounds, work
}

// SortPRAM stably sorts the array of keys in [0, maxKey] on machine m and
// returns the permutation perm with keys[perm[0]] <= keys[perm[1]] <= ...,
// ties in index order. Costs are charged per the chosen strategy.
func SortPRAM(m *pram.Machine, keys *pram.Array, maxKey int64, strat Strategy) *pram.Array {
	n := keys.Len()
	perm := m.NewArray(n)
	if n == 0 {
		return perm
	}
	switch strat {
	case Modeled:
		host := keys.Slice()
		p := StableRanks(host)
		hostPerm := make([]int64, n)
		for i, v := range p {
			hostPerm[i] = int64(v)
		}
		perm.Load(hostPerm)
		r, w := bhattCost(n)
		m.ChargeModel(r, w)
	case BitSplit:
		bitSplitSort(m, keys, maxKey, perm)
	case Grouped:
		groupedSort(m, keys, maxKey, perm)
	default:
		panic("intsort: unknown strategy")
	}
	return perm
}

// bitSplitSort is a real PRAM LSD radix sort, one bit per pass. Each pass is
// a stable two-way split computed with prefix sums: O(log n) rounds and
// O(n) work per bit of the key range.
func bitSplitSort(m *pram.Machine, keys *pram.Array, maxKey int64, perm *pram.Array) {
	n := keys.Len()
	nbits := bits.Len64(uint64(maxKey))
	if nbits == 0 {
		nbits = 1
	}
	pram.Iota(m, perm, 0)
	cur := m.NewArray(n) // keys permuted by perm
	pram.Copy(m, cur, keys)

	for b := 0; b < nbits; b++ {
		bit := int64(1) << uint(b)
		zeros := m.NewArray(n)
		m.ParDo(n, func(c *pram.Ctx, p int) {
			if c.Read(cur, p)&bit == 0 {
				c.Write(zeros, p, 1)
			} else {
				c.Write(zeros, p, 0)
			}
		})
		zeroPos, numZeros := pram.ExclusiveScan(m, zeros)
		onesFlags := m.NewArray(n)
		m.ParDo(n, func(c *pram.Ctx, p int) {
			c.Write(onesFlags, p, 1-c.Read(zeros, p))
		})
		onePos, _ := pram.ExclusiveScan(m, onesFlags)
		newPerm := m.NewArray(n)
		newKeys := m.NewArray(n)
		m.ParDo(n, func(c *pram.Ctx, p int) {
			var dst int
			if c.Read(zeros, p) != 0 {
				dst = int(c.Read(zeroPos, p))
			} else {
				dst = int(numZeros + c.Read(onePos, p))
			}
			c.Write(newPerm, dst, c.Read(perm, p))
			c.Write(newKeys, dst, c.Read(cur, p))
		})
		pram.Copy(m, perm, newPerm)
		pram.Copy(m, cur, newKeys)
	}
}

// groupedSort is a real PRAM LSD radix sort processing w = ceil(log2 log2 n)
// bits per pass with a counting sort: the input is cut into groups of size
// s = R = 2^w; one virtual processor per group counts and scatters its group
// sequentially (charging s rounds honestly), and a global prefix sum over
// the R x G counter matrix provides stable bucket bases.
func groupedSort(m *pram.Machine, keys *pram.Array, maxKey int64, perm *pram.Array) {
	n := keys.Len()
	nbits := bits.Len64(uint64(maxKey))
	if nbits == 0 {
		nbits = 1
	}
	lg := bits.Len(uint(n))
	w := bits.Len(uint(lg)) // ~ log log n bits per pass
	if w < 1 {
		w = 1
	}
	r := 1 << uint(w) // radix = bucket count = group size
	g := (n + r - 1) / r

	pram.Iota(m, perm, 0)
	cur := m.NewArray(n)
	pram.Copy(m, cur, keys)

	for lo := 0; lo < nbits; lo += w {
		mask := int64(r - 1)
		shift := uint(lo)

		// Count phase: counters in column-major order cnt[v*g + grp] so
		// the exclusive scan yields stable global bucket bases.
		cnt := m.NewArray(r * g)
		pram.Fill(m, cnt, 0)
		m.ParDo(g, func(c *pram.Ctx, grp int) {
			start, end := grp*r, (grp+1)*r
			if end > n {
				end = n
			}
			local := make([]int64, r)
			for i := start; i < end; i++ {
				v := (c.Read(cur, i) >> shift) & mask
				local[v]++
			}
			for v := 0; v < r; v++ {
				if local[v] != 0 {
					c.Write(cnt, v*g+grp, local[v])
				}
			}
			c.Charge(int64(end - start))
		})
		m.ChargeModel(int64(r), 0) // sequential group loop depth

		base, _ := pram.ExclusiveScan(m, cnt)

		newPerm := m.NewArray(n)
		newKeys := m.NewArray(n)
		m.ParDo(g, func(c *pram.Ctx, grp int) {
			start, end := grp*r, (grp+1)*r
			if end > n {
				end = n
			}
			offset := make([]int64, r)
			for i := start; i < end; i++ {
				v := (c.Read(cur, i) >> shift) & mask
				dst := int(c.Read(base, int(v)*g+grp) + offset[v])
				offset[v]++
				c.Write(newPerm, dst, c.Read(perm, i))
				c.Write(newKeys, dst, c.Read(cur, i))
			}
			c.Charge(int64(end - start))
		})
		m.ChargeModel(int64(r), 0)

		pram.Copy(m, perm, newPerm)
		pram.Copy(m, cur, newKeys)
	}
}

// SortPairsPRAM stably sorts pairs (a[i], b[i]) lexicographically, with both
// components in [0, maxVal], returning the stable permutation and the packed
// single-word keys (useful for rank assignment). The pair is packed into a
// key of 2x the bit width, exactly as the paper's Step 3 requires.
func SortPairsPRAM(m *pram.Machine, a, b *pram.Array, maxVal int64, strat Strategy) (perm, packed *pram.Array) {
	if a.Len() != b.Len() {
		panic("intsort: pair length mismatch")
	}
	n := a.Len()
	shift := uint(bits.Len64(uint64(maxVal)))
	if shift == 0 {
		shift = 1
	}
	packed = m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		c.Write(packed, p, c.Read(a, p)<<shift|c.Read(b, p))
	})
	perm = SortPRAM(m, packed, maxVal<<shift|maxVal, strat)
	return perm, packed
}

// RankDistinct assigns to each element of keys the rank of its value among
// the distinct sorted values (dense ranks starting at `base`), stably using
// the given permutation from SortPRAM over the same keys. Returns the rank
// array and the number of distinct values. O(log n) rounds, O(n) work on
// top of the sort.
func RankDistinct(m *pram.Machine, keys, perm *pram.Array, base int64) (*pram.Array, int64) {
	n := keys.Len()
	ranks := m.NewArray(n)
	if n == 0 {
		return ranks, 0
	}
	// headFlags[j] = 1 if sorted position j starts a new distinct value.
	headFlags := m.NewArray(n)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		if p == 0 {
			c.Write(headFlags, p, 1)
			return
		}
		kp := c.Read(keys, int(c.Read(perm, p)))
		kq := c.Read(keys, int(c.Read(perm, p-1)))
		if kp != kq {
			c.Write(headFlags, p, 1)
		} else {
			c.Write(headFlags, p, 0)
		}
	})
	pos, distinct := pram.InclusiveScan(m, headFlags)
	m.ParDo(n, func(c *pram.Ctx, p int) {
		c.Write(ranks, int(c.Read(perm, p)), base+c.Read(pos, p)-1)
	})
	return ranks, distinct
}
