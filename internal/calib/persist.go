package calib

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Decode parses and validates one persisted profile. It is strict —
// unknown fields, trailing data, version skew and out-of-range values all
// fail — because a profile steers every plan the host resolves: a file
// the decoder is unsure about must fall back to defaults, not half-apply.
func Decode(data []byte) (*Profile, error) {
	var p Profile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("calib: decoding profile: %w", err)
	}
	if dec.More() {
		return nil, errors.New("calib: trailing data after profile")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Load reads and decodes a profile file. Errors are the caller's policy
// decision: binaries that must never fail startup on a bad profile use
// LoadLenient instead.
func Load(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// LoadLenient loads a profile for serving: a missing, corrupt or
// version-skewed file degrades to the default profile with one warning
// through logf (never a startup failure), because a host that lost its
// calibration must keep answering queries — just with the stock
// thresholds until it is re-fitted.
func LoadLenient(path string, logf func(format string, args ...any)) *Profile {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	p, err := Load(path)
	switch {
	case err == nil:
		return p
	case errors.Is(err, os.ErrNotExist):
		logf("calibration file %s not found; using default profile", path)
	default:
		logf("calibration file unusable (%v); falling back to default profile", err)
	}
	return Default()
}

// Save persists the profile with an atomic rewrite: the JSON is written
// to a temporary sibling and renamed over the target, so a crash
// mid-write can never leave a truncated file for the next startup to
// trip over, and a concurrent reader sees either the old profile or the
// new one, never a mix.
func (p *Profile) Save(path string) error {
	if err := p.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("calib: encoding profile: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("calib: saving profile: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("calib: saving profile: %w", werr)
	}
	return nil
}
