// Package calib is the planner's calibration subsystem: the one home of
// the crossover constants the adaptive planner keys on, a fitted Profile
// that replaces them on the deployment host, and the condensed A4-style
// experiment that fits one.
//
// The constants below were measured once on one machine; "as fast as the
// hardware allows" means re-measuring where the workload actually runs —
// a laptop's crossover is not a 64-core server's, and worker scaling
// saturates on memory bandwidth long before core count on most hosts.
// Calibrate runs a bounded crossover sweep (sequential linear-time solver
// vs the goroutine-parallel one across an n-bracket) plus a worker-scaling
// sweep that detects the bandwidth knee, and fits a Profile the engine's
// planner consults in place of the defaults. Profiles persist as JSON
// (atomic rewrite) and carry a host fingerprint, so a checked-in or
// copied profile is always attributable to the hardware that fitted it.
package calib

import (
	"fmt"
	"os"
	"runtime"
	"strings"
)

// The default planner thresholds — the package-wide fallback when no
// fitted profile is injected, and the seed values a truncated calibration
// falls back to field by field. Every crossover constant in the codebase
// lives here; the sfcpvet crossoverconst analyzer flags stray literals.
const (
	// DefaultMinParallelN is the instance size below which Auto never
	// picks the goroutine-parallel solver: below it the goroutine fan-out
	// and barrier overhead dominate regardless of core count.
	DefaultMinParallelN = 1 << 15
	// DefaultBreakEvenLogDivisor: the parallel solver's pointer-doubling
	// structure discovery does ~log2(n) near-linear passes, each costing
	// roughly a third of the linear solver's single pass — it needs about
	// log2(n)/3 effective cores to break even.
	DefaultBreakEvenLogDivisor = 3
	// DefaultWorkerGrain is the target elements per worker; spreading
	// fewer than this across extra goroutines costs more in startup and
	// barriers than the added parallelism returns.
	DefaultWorkerGrain = 1 << 14
	// DefaultIncrMaxDirtyFrac is the dirty fraction above which an Auto
	// re-solve falls back from the incremental path to a full solve: the
	// incremental recompute codes through persistent maps (several times
	// the full solver's array-backed per-node cost), so past roughly a
	// third of the instance the full solve wins. Refit per host with the
	// incremental sweep (`sfcpbench -calibrate`).
	DefaultIncrMaxDirtyFrac = 0.3
)

// ProfileVersion is the persisted profile format version. Load rejects
// files whose version does not match — a skewed profile must fall back to
// defaults, never steer the planner with fields it misreads.
const ProfileVersion = 1

// HostFingerprint identifies the hardware a profile was fitted on, so
// checked-in trajectory snapshots and copied profile files are
// attributable.
type HostFingerprint struct {
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	// CPUModel is the "model name" line of /proc/cpuinfo when readable,
	// empty elsewhere (the field is best-effort by design).
	CPUModel string `json:"cpu_model,omitempty"`
}

// Fingerprint captures the current host.
func Fingerprint() HostFingerprint {
	return HostFingerprint{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUModel:   cpuModel(),
	}
}

// cpuModel extracts the first "model name" value from /proc/cpuinfo.
// Any failure (non-Linux, restricted /proc) yields "".
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		key, val, ok := strings.Cut(line, ":")
		if ok && strings.TrimSpace(key) == "model name" {
			return strings.TrimSpace(val)
		}
	}
	return ""
}

// Profile is a fitted set of planner thresholds. The zero value is not
// usable — construct via Default or Calibrate, or decode a persisted file
// through Load.
type Profile struct {
	// Version pins the persisted format (ProfileVersion).
	Version int `json:"version"`
	// MinParallelN is the instance size at which Auto starts considering
	// the goroutine-parallel solver.
	MinParallelN int `json:"min_parallel_n"`
	// BreakEvenLogDivisor d models the parallel solver's break-even core
	// count as ~log2(n)/d: larger d means parallel pays off with fewer
	// cores on this host.
	BreakEvenLogDivisor int `json:"break_even_log_divisor"`
	// WorkerGrain is the target elements per worker when sizing the
	// goroutine count to an instance.
	WorkerGrain int `json:"worker_grain"`
	// MaxUsefulWorkers caps the default worker budget where the
	// worker-scaling sweep found the memory-bandwidth knee — the point
	// where marginal throughput per added worker collapses even though
	// cores remain. 0 means no measured cap (budget stays GOMAXPROCS).
	MaxUsefulWorkers int `json:"max_useful_workers"`
	// IncrMaxDirtyFrac is the dirty fraction above which an Auto delta
	// re-solve abandons the incremental path for a full solve. 0 means
	// unfitted (profiles persisted before the incremental sweep existed);
	// IncrCrossover resolves it to the package default. Stays within the
	// version-1 format: old files decode with the field at 0.
	IncrMaxDirtyFrac float64 `json:"incr_max_dirty_frac,omitempty"`
	// Host fingerprints the hardware that fitted this profile.
	Host HostFingerprint `json:"host"`
	// FittedAt is the RFC 3339 fit time (empty for the default profile).
	FittedAt string `json:"fitted_at,omitempty"`
	// Calibrated distinguishes a measured profile from the built-in
	// defaults; Plan.Reason and the sfcpd_plan_calibrated gauge report it.
	Calibrated bool `json:"calibrated"`
}

// Default returns the built-in profile: the package constants, stamped
// with the current host fingerprint and Calibrated=false.
func Default() *Profile {
	return &Profile{
		Version:             ProfileVersion,
		MinParallelN:        DefaultMinParallelN,
		BreakEvenLogDivisor: DefaultBreakEvenLogDivisor,
		WorkerGrain:         DefaultWorkerGrain,
		IncrMaxDirtyFrac:    DefaultIncrMaxDirtyFrac,
		Host:                Fingerprint(),
	}
}

// IncrCrossover resolves the effective incremental-vs-full crossover
// fraction: the fitted field when set, the package default for profiles
// persisted before the incremental sweep existed.
func (p *Profile) IncrCrossover() float64 {
	if p != nil && p.IncrMaxDirtyFrac > 0 {
		return p.IncrMaxDirtyFrac
	}
	return DefaultIncrMaxDirtyFrac
}

// Source names where the profile's thresholds came from, for plan
// reasons and metrics: "calibrated" or "default".
func (p *Profile) Source() string {
	if p != nil && p.Calibrated {
		return "calibrated"
	}
	return "default"
}

// Validate rejects profiles whose fields would make the planner
// nonsensical (zero grain divides by zero; a negative crossover turns
// every solve parallel). Bounds are deliberately loose — synthetic
// extreme profiles are legitimate test inputs — but every field must be
// usable as-is.
func (p *Profile) Validate() error {
	if p.Version != ProfileVersion {
		return fmt.Errorf("calib: profile version %d, want %d", p.Version, ProfileVersion)
	}
	if p.MinParallelN < 1 {
		return fmt.Errorf("calib: min_parallel_n = %d, want >= 1", p.MinParallelN)
	}
	if p.BreakEvenLogDivisor < 1 || p.BreakEvenLogDivisor > 64 {
		return fmt.Errorf("calib: break_even_log_divisor = %d, want 1..64", p.BreakEvenLogDivisor)
	}
	if p.WorkerGrain < 1 {
		return fmt.Errorf("calib: worker_grain = %d, want >= 1", p.WorkerGrain)
	}
	if p.MaxUsefulWorkers < 0 {
		return fmt.Errorf("calib: max_useful_workers = %d, want >= 0", p.MaxUsefulWorkers)
	}
	if p.IncrMaxDirtyFrac < 0 || p.IncrMaxDirtyFrac > 1 {
		return fmt.Errorf("calib: incr_max_dirty_frac = %v, want 0..1", p.IncrMaxDirtyFrac)
	}
	return nil
}
