// The calibration experiment times the raw solver entry points against
// each other — routing them through the engine would measure the planner
// being fitted, a circular experiment (and an import cycle).
//
//sfcpvet:ignore-file enginedispatch -- calibration measures the raw solvers to fit the planner's thresholds; going through the engine would measure the planner instead (and cycle the import graph)
package calib

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/bits"
	"runtime"
	"time"

	"sfcp/internal/coarsest"
	"sfcp/internal/incr"
	"sfcp/internal/workload"
)

// Options configures a calibration run.
type Options struct {
	// Budget bounds the whole fit's wall clock (default 3s). A fit that
	// runs out of budget keeps the defaults for whatever it had not yet
	// measured and marks the report truncated — a bounded startup fit
	// must never hold a server hostage.
	Budget time.Duration
	// Seed drives the measurement workloads (default 1993).
	Seed int64
	// MaxN caps the largest instance the sweeps allocate (default 1<<17;
	// the floor is 1<<12). Smaller caps make quicker, coarser fits.
	MaxN int
	// Log, when non-nil, receives one line per measurement.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Budget <= 0 {
		o.Budget = 3 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1993
	}
	if o.MaxN <= 0 {
		o.MaxN = 1 << 17
	}
	if o.MaxN < 1<<12 {
		o.MaxN = 1 << 12
	}
	return o
}

// CrossoverPoint is one row of the crossover sweep: the best-of-reps
// wall time of the sequential linear solver and of the native-parallel
// solver (at the worker count the planner would grant) on one instance
// size.
type CrossoverPoint struct {
	N          int   `json:"n"`
	Workers    int   `json:"workers"`
	LinearNS   int64 `json:"linear_ns"`
	ParallelNS int64 `json:"parallel_ns"`
}

// WorkerPoint is one row of the worker-scaling sweep at the fixed sweep
// size: wall time and throughput with the given goroutine count.
type WorkerPoint struct {
	Workers        int     `json:"workers"`
	NS             int64   `json:"ns"`
	ElementsPerSec float64 `json:"elements_per_sec"`
}

// IncrPoint is one row of the incremental re-solve sweep: best-of-reps
// wall time of a component-scoped delta application dirtying DirtyNodes
// of an n-element instance, against a full re-solve of the same edited
// instance.
type IncrPoint struct {
	N          int     `json:"n"`
	DirtyNodes int     `json:"dirty_nodes"`
	DirtyFrac  float64 `json:"dirty_frac"`
	IncrNS     int64   `json:"incr_ns"`
	FullNS     int64   `json:"full_ns"`
}

// Report is a full calibration outcome: the fitted profile plus the raw
// measurements behind it, so a checked-in BENCH_A6.json snapshot shows
// not just the thresholds but the curve they were read off.
type Report struct {
	Profile   Profile          `json:"profile"`
	Crossover []CrossoverPoint `json:"crossover"`
	Workers   []WorkerPoint    `json:"worker_scaling"`
	Incr      []IncrPoint      `json:"incr_resolve,omitempty"`
	// Truncated reports that the budget expired before every sweep
	// finished; unfitted fields kept their defaults.
	Truncated bool `json:"truncated"`
	// Elapsed is the fit's total wall clock.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Calibrate runs the condensed A4-style crossover experiment and the
// worker-scaling sweep on this host and fits a Profile. It respects ctx
// and the budget: whatever is unmeasured when either expires stays at
// the default value. The returned error is non-nil only when not a
// single measurement completed (ctx already cancelled, or a pathological
// budget) — a partial fit is a valid, truncated report.
func Calibrate(ctx context.Context, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	start := time.Now()
	deadline := start.Add(opts.Budget)
	rep := &Report{}

	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}
	expired := func() bool {
		return ctx.Err() != nil || time.Now().After(deadline)
	}

	// Sweep sizes: a geometric n-bracket straddling the default
	// crossover, clipped to MaxN. Reps shrink as n grows so the sweep's
	// cost stays roughly linear in its largest size.
	var ns []int
	for n := 1 << 12; n <= opts.MaxN; n <<= 1 {
		ns = append(ns, n)
	}
	procs := runtime.GOMAXPROCS(0)
	sc := &coarsest.Scratch{}

	// Crossover sweep: linear vs native-parallel (at the worker count a
	// default-profile planner would grant) on the random-function family
	// at every bracketed size.
	for _, n := range ns {
		if expired() {
			rep.Truncated = true
			break
		}
		wl := workload.RandomFunction(opts.Seed, n, 3)
		in := coarsest.Instance{F: wl.F, B: wl.B}
		reps := repsFor(n)
		workers := grantedWorkers(n, procs, DefaultWorkerGrain)
		linNS := bestOf(reps, func() {
			coarsest.LinearSequentialScratch(in, sc)
		})
		parNS := bestOf(reps, func() {
			_, _ = coarsest.NativeParallelCtx(ctx, in, workers, sc)
		})
		rep.Crossover = append(rep.Crossover, CrossoverPoint{
			N: n, Workers: workers, LinearNS: linNS, ParallelNS: parNS,
		})
		logf("calib: crossover n=%d workers=%d linear=%v parallel=%v",
			n, workers, time.Duration(linNS), time.Duration(parNS))
	}
	if len(rep.Crossover) == 0 {
		return nil, fmt.Errorf("calib: no measurements inside budget %v: %w", opts.Budget, ctxErrOr(ctx))
	}

	// Worker-scaling sweep at the largest measured size: doubling worker
	// counts up to GOMAXPROCS, watching for the memory-bandwidth knee.
	sweepN := rep.Crossover[len(rep.Crossover)-1].N
	wl := workload.RandomFunction(opts.Seed+1, sweepN, 3)
	in := coarsest.Instance{F: wl.F, B: wl.B}
	for w := 1; w <= procs; w <<= 1 {
		if expired() {
			rep.Truncated = true
			break
		}
		nsBest := bestOf(2, func() {
			_, _ = coarsest.NativeParallelCtx(ctx, in, w, sc)
		})
		rep.Workers = append(rep.Workers, WorkerPoint{
			Workers:        w,
			NS:             nsBest,
			ElementsPerSec: float64(sweepN) / (float64(nsBest) / float64(time.Second)),
		})
		logf("calib: workers=%d n=%d wall=%v", w, sweepN, time.Duration(nsBest))
	}

	// Incremental re-solve sweep: DistinctCycles gives components of
	// uniform size, so dirtying ceil(frac*k) of k components hits each
	// target dirty fraction exactly. The same edit batch re-applies every
	// rep (recomputing an already-applied delta is idempotent and costs
	// the same region work), and the full-solve baseline runs on the
	// edited instance — both sides solve the same version.
	const incrCycleLen = 64
	incrN := sweepN
	if k := incrN / incrCycleLen; k >= 2 {
		iwl := workload.DistinctCycles(opts.Seed+2, k, incrCycleLen, 3)
		iin := coarsest.Instance{F: iwl.F, B: iwl.B}
		st, buildErr := incr.Build(iin)
		if buildErr == nil {
			for _, frac := range []float64{0.01, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75} {
				if expired() {
					rep.Truncated = true
					break
				}
				dirty := int(frac * float64(k))
				if dirty < 1 {
					dirty = 1
				}
				edits := make([]incr.Edit, dirty)
				for c := range edits {
					edits[c] = incr.Edit{Node: c * incrCycleLen, SetB: true, B: 7}
				}
				for _, e := range edits {
					iin.B[e.Node] = e.B
				}
				reps := repsFor(incrN)
				incrNS := bestOf(reps, func() {
					_, _, _ = st.ApplyDelta(edits)
				})
				fullNS := bestOf(reps, func() {
					coarsest.LinearSequentialScratch(iin, sc)
				})
				measured := float64(dirty*incrCycleLen) / float64(incrN)
				rep.Incr = append(rep.Incr, IncrPoint{
					N: incrN, DirtyNodes: dirty * incrCycleLen, DirtyFrac: measured,
					IncrNS: incrNS, FullNS: fullNS,
				})
				logf("calib: incr n=%d dirty=%.2f incr=%v full=%v",
					incrN, measured, time.Duration(incrNS), time.Duration(fullNS))
			}
		}
	}

	p := Default()
	p.Calibrated = true
	p.FittedAt = start.UTC().Format(time.RFC3339)
	p.MinParallelN = FitCrossover(rep.Crossover)
	if d, ok := FitBreakEvenDivisor(rep.Crossover, rep.Workers); ok {
		p.BreakEvenLogDivisor = d
	}
	if maxW, grain, ok := FitWorkers(sweepN, rep.Workers); ok {
		p.MaxUsefulWorkers = maxW
		p.WorkerGrain = grain
	}
	if frac, ok := FitIncrCrossover(rep.Incr); ok {
		p.IncrMaxDirtyFrac = frac
	}
	rep.Profile = *p
	rep.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	logf("calib: fitted min_parallel_n=%d divisor=%d grain=%d max_workers=%d truncated=%v",
		p.MinParallelN, p.BreakEvenLogDivisor, p.WorkerGrain, p.MaxUsefulWorkers, rep.Truncated)
	return rep, nil
}

func ctxErrOr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.DeadlineExceeded
}

// repsFor shrinks best-of repetitions as instances grow: small solves
// are noisy and cheap to repeat, large ones are stable and expensive.
func repsFor(n int) int {
	switch {
	case n <= 1<<14:
		return 5
	case n <= 1<<16:
		return 3
	default:
		return 2
	}
}

// grantedWorkers mirrors the planner's size-scaled worker grant: one
// worker per grain elements, within the host budget.
func grantedWorkers(n, budget, grain int) int {
	w := n / grain
	if w < 1 {
		w = 1
	}
	if w > budget {
		w = budget
	}
	return w
}

// bestOf runs fn reps times and returns the fastest wall time in
// nanoseconds — min-of-reps sheds scheduler noise the same way the A4/A5
// experiments do.
func bestOf(reps int, fn func()) int64 {
	best := int64(math.MaxInt64)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		fn()
		if el := int64(time.Since(t0)); el < best {
			best = el
		}
	}
	return best
}

// FitCrossover reads MinParallelN off the crossover sweep: the smallest
// measured n from which the parallel solver wins at every larger
// measured size too (a single noisy win below a loss does not move the
// crossover). If parallel never sustainedly wins, the crossover is
// pushed past the sweep (2x the largest measured n) — on this hardware
// the sequential solver is the right call for everything the sweep
// covered, and honesty beats extrapolation. Exposed (with FitWorkers and
// FitBreakEvenDivisor) so the fitting rules are unit-testable on
// synthetic measurements, independent of wall clocks.
func FitCrossover(points []CrossoverPoint) int {
	if len(points) == 0 {
		return DefaultMinParallelN
	}
	fitted := 2 * points[len(points)-1].N
	for i := len(points) - 1; i >= 0; i-- {
		if points[i].ParallelNS >= points[i].LinearNS {
			break
		}
		fitted = points[i].N
	}
	return fitted
}

// FitBreakEvenDivisor fits d in "parallel needs ~log2(n)/d cores to
// break even" from the single-worker slowdown at the sweep's largest
// size: if one worker is r times slower than linear, it needs about r
// effective cores, so d ≈ log2(n)/r. Returns ok=false when the sweep
// lacks a single-worker point (the default stands).
func FitBreakEvenDivisor(cross []CrossoverPoint, workers []WorkerPoint) (int, bool) {
	if len(cross) == 0 || len(workers) == 0 || workers[0].Workers != 1 {
		return 0, false
	}
	largest := cross[len(cross)-1]
	if largest.LinearNS <= 0 || workers[0].NS <= 0 {
		return 0, false
	}
	ratio := float64(workers[0].NS) / float64(largest.LinearNS)
	if ratio < 1 {
		ratio = 1
	}
	log2n := bits.Len(uint(largest.N)) - 1
	d := int(math.Round(float64(log2n) / ratio))
	if d < 1 {
		d = 1
	}
	if d > 64 {
		d = 64
	}
	return d, true
}

// FitIncrCrossover reads IncrMaxDirtyFrac off the incremental sweep:
// walking the ascending measured dirty fractions, the crossover is the
// midpoint between the last fraction where the incremental path still
// won and the first where the full solve did. If incremental wins at
// every measured fraction the crossover is the largest one measured (no
// extrapolation past the sweep); if it never wins the crossover collapses
// to the floor. Returns ok=false on an empty sweep (the default stands).
func FitIncrCrossover(points []IncrPoint) (float64, bool) {
	if len(points) == 0 {
		return 0, false
	}
	const floor, ceil = 0.01, 0.95
	lastWin := 0.0
	for _, pt := range points {
		if pt.IncrNS >= pt.FullNS {
			if lastWin == 0 {
				return floor, true
			}
			return clampFrac((lastWin+pt.DirtyFrac)/2, floor, ceil), true
		}
		lastWin = pt.DirtyFrac
	}
	return clampFrac(lastWin, floor, ceil), true
}

func clampFrac(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// kneeGain is the minimum throughput multiple a doubling of workers must
// deliver to count as scaling; below it the added workers are queueing
// on memory bandwidth, not computing.
const kneeGain = 1.15

// FitWorkers reads the bandwidth knee off the worker-scaling sweep:
// walking the doubling worker counts, scaling stops at the last point
// whose throughput still beat its predecessor by kneeGain. Past the knee
// more workers burn cache and bandwidth for nothing — the fitted cap is
// deliberately below core count when the memory system saturates first.
// WorkerGrain refits so the planner's size-scaled grant reaches the knee
// exactly at the sweep size. Returns ok=false on an empty sweep.
func FitWorkers(sweepN int, points []WorkerPoint) (maxUseful, grain int, ok bool) {
	if len(points) == 0 || sweepN <= 0 {
		return 0, 0, false
	}
	maxUseful = points[0].Workers
	best := points[0].ElementsPerSec
	for _, pt := range points[1:] {
		if pt.ElementsPerSec < best*kneeGain {
			break
		}
		maxUseful, best = pt.Workers, pt.ElementsPerSec
	}
	grain = sweepN / maxUseful
	if grain < 1<<12 {
		grain = 1 << 12
	}
	return maxUseful, grain, true
}
