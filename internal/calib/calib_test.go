package calib

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDefaultProfileValidates(t *testing.T) {
	p := Default()
	if err := p.Validate(); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
	if p.Calibrated {
		t.Error("default profile claims to be calibrated")
	}
	if p.Source() != "default" {
		t.Errorf("Source() = %q, want default", p.Source())
	}
	if p.MinParallelN != DefaultMinParallelN || p.WorkerGrain != DefaultWorkerGrain {
		t.Errorf("default profile does not carry the default constants: %+v", p)
	}
	var nilProfile *Profile
	if nilProfile.Source() != "default" {
		t.Error("nil profile must read as default")
	}
}

func TestFingerprintSane(t *testing.T) {
	fp := Fingerprint()
	if fp.GOMAXPROCS < 1 || fp.NumCPU < 1 {
		t.Errorf("implausible fingerprint: %+v", fp)
	}
	if fp.GOOS == "" || fp.GOARCH == "" {
		t.Errorf("fingerprint missing GOOS/GOARCH: %+v", fp)
	}
}

func TestValidateBounds(t *testing.T) {
	bad := []func(*Profile){
		func(p *Profile) { p.Version = ProfileVersion + 1 },
		func(p *Profile) { p.MinParallelN = 0 },
		func(p *Profile) { p.BreakEvenLogDivisor = 0 },
		func(p *Profile) { p.BreakEvenLogDivisor = 65 },
		func(p *Profile) { p.WorkerGrain = 0 },
		func(p *Profile) { p.MaxUsefulWorkers = -1 },
	}
	for i, mutate := range bad {
		p := Default()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: invalid profile passed validation: %+v", i, p)
		}
	}
}

// TestFitCrossover pins the sustained-win rule on synthetic sweeps: one
// noisy parallel win below a loss must not move the crossover, and a
// sweep where parallel never wins pushes the crossover past the bracket.
func TestFitCrossover(t *testing.T) {
	pt := func(n int, lin, par int64) CrossoverPoint {
		return CrossoverPoint{N: n, LinearNS: lin, ParallelNS: par}
	}
	cases := []struct {
		name   string
		points []CrossoverPoint
		want   int
	}{
		{"empty sweep keeps default", nil, DefaultMinParallelN},
		{"clean crossover at 1<<14",
			[]CrossoverPoint{pt(1<<12, 100, 300), pt(1<<13, 200, 250), pt(1<<14, 400, 350), pt(1<<15, 800, 500)},
			1 << 14},
		{"noisy early win ignored",
			[]CrossoverPoint{pt(1<<12, 100, 90), pt(1<<13, 200, 250), pt(1<<14, 400, 350), pt(1<<15, 800, 500)},
			1 << 14},
		{"parallel never wins: crossover past the sweep",
			[]CrossoverPoint{pt(1<<12, 100, 300), pt(1<<13, 200, 400), pt(1<<14, 400, 900)},
			1 << 15},
		{"parallel always wins: crossover at the sweep floor",
			[]CrossoverPoint{pt(1<<12, 300, 100), pt(1<<13, 500, 200)},
			1 << 12},
	}
	for _, tc := range cases {
		if got := FitCrossover(tc.points); got != tc.want {
			t.Errorf("%s: FitCrossover = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestFitWorkers pins the bandwidth-knee rule: scaling stops at the last
// doubling that still delivered kneeGain, not at core count.
func TestFitWorkers(t *testing.T) {
	wp := func(w int, eps float64) WorkerPoint {
		return WorkerPoint{Workers: w, ElementsPerSec: eps}
	}
	// Perfect scaling 1->2->4, saturation at 8 (gain < kneeGain).
	maxW, grain, ok := FitWorkers(1<<17, []WorkerPoint{
		wp(1, 100), wp(2, 195), wp(4, 380), wp(8, 400),
	})
	if !ok || maxW != 4 {
		t.Fatalf("knee at 4 workers not found: maxW=%d ok=%v", maxW, ok)
	}
	if want := 1 << 15; grain != want {
		t.Errorf("grain = %d, want %d (sweepN/maxUseful)", grain, want)
	}
	// Single-core sweep: cap is 1, grain clamps to the sweep size.
	maxW, grain, ok = FitWorkers(1<<17, []WorkerPoint{wp(1, 100)})
	if !ok || maxW != 1 || grain != 1<<17 {
		t.Errorf("single-point sweep: maxW=%d grain=%d ok=%v", maxW, grain, ok)
	}
	// Immediate saturation: adding the 2nd worker gains nothing.
	maxW, _, _ = FitWorkers(1<<17, []WorkerPoint{wp(1, 100), wp(2, 101), wp(4, 300)})
	if maxW != 1 {
		t.Errorf("immediate knee: maxW = %d, want 1 (later recovery is past the knee)", maxW)
	}
	// Tiny grain clamps at the floor.
	_, grain, _ = FitWorkers(1<<12, []WorkerPoint{wp(1, 100), wp(2, 300)})
	if grain != 1<<12 {
		t.Errorf("grain floor: %d, want %d", grain, 1<<12)
	}
	if _, _, ok := FitWorkers(0, nil); ok {
		t.Error("empty sweep must not fit")
	}
}

// TestFitBreakEvenDivisor pins the slowdown-ratio rule on synthetic
// measurements: one worker 4x slower than linear at n=2^17 (log2 ≈ 17)
// needs ~4 cores, so d ≈ 17/4 ≈ 4.
func TestFitBreakEvenDivisor(t *testing.T) {
	cross := []CrossoverPoint{{N: 1 << 17, LinearNS: 1000}}
	workers := []WorkerPoint{{Workers: 1, NS: 4000}}
	d, ok := FitBreakEvenDivisor(cross, workers)
	if !ok || d != 4 {
		t.Errorf("divisor = %d ok=%v, want 4 true", d, ok)
	}
	// A parallel solver faster than linear on one worker clamps the
	// ratio at 1: the divisor saturates at log2(n) capped to 64.
	d, ok = FitBreakEvenDivisor(cross, []WorkerPoint{{Workers: 1, NS: 500}})
	if !ok || d != 17 {
		t.Errorf("clamped ratio: divisor = %d ok=%v, want 17 true", d, ok)
	}
	if _, ok := FitBreakEvenDivisor(nil, workers); ok {
		t.Error("no crossover points must not fit")
	}
	if _, ok := FitBreakEvenDivisor(cross, nil); ok {
		t.Error("no worker points must not fit")
	}
	if _, ok := FitBreakEvenDivisor(cross, []WorkerPoint{{Workers: 2, NS: 100}}); ok {
		t.Error("sweep without a single-worker point must not fit")
	}
}

// TestCalibrateQuick runs a real (tiny) fit end to end: the profile must
// validate, be marked calibrated, and carry this host's fingerprint.
func TestCalibrateQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("timing fit skipped in -short")
	}
	rep, err := Calibrate(context.Background(), Options{Budget: 500 * time.Millisecond, MaxN: 1 << 13})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Profile
	if err := p.Validate(); err != nil {
		t.Fatalf("fitted profile invalid: %v\n%+v", err, p)
	}
	if !p.Calibrated || p.Source() != "calibrated" {
		t.Errorf("fitted profile not marked calibrated: %+v", p)
	}
	if p.Host.GOMAXPROCS == 0 || p.FittedAt == "" {
		t.Errorf("fitted profile missing host stamp or fit time: %+v", p)
	}
	if len(rep.Crossover) == 0 {
		t.Error("report carries no crossover measurements")
	}
}

// TestCalibrateCancelled: a context dead on arrival yields an error, not
// a fabricated profile.
func TestCalibrateCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Calibrate(ctx, Options{Budget: time.Second}); err == nil {
		t.Fatal("cancelled calibration returned a profile")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profile.json")
	p := Default()
	p.Calibrated = true
	p.MinParallelN = 12345
	p.MaxUsefulWorkers = 6
	p.FittedAt = "2026-08-07T00:00:00Z"
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if *back != *p {
		t.Errorf("round trip mismatch:\nsaved  %+v\nloaded %+v", p, back)
	}
	// Atomic rewrite: saving over an existing file replaces it wholesale
	// and leaves no temporary siblings behind.
	p.MinParallelN = 54321
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.MinParallelN != 54321 {
		t.Errorf("rewrite not visible: %+v", back)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("stray files after atomic rewrites: %v", names)
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	p := Default()
	p.WorkerGrain = 0
	if err := p.Save(filepath.Join(t.TempDir(), "p.json")); err == nil {
		t.Fatal("invalid profile persisted")
	}
}

// TestLoadLenientFallbacks: every way a profile file can be wrong
// degrades to the default profile with a logged warning — never an
// error the caller could turn into a startup failure.
func TestLoadLenientFallbacks(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name    string
		prepare func(path string)
		wantLog string
	}{
		{"missing file", func(string) {}, "not found"},
		{"corrupt JSON", func(path string) {
			os.WriteFile(path, []byte("{nope"), 0o644)
		}, "unusable"},
		{"trailing garbage", func(path string) {
			p := Default()
			p.Save(path)
			f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			f.WriteString("{}")
			f.Close()
		}, "unusable"},
		{"version skew", func(path string) {
			os.WriteFile(path, []byte(`{"version":99,"min_parallel_n":1,"break_even_log_divisor":3,"worker_grain":1,"max_useful_workers":0,"host":{"gomaxprocs":1,"num_cpu":1,"goos":"linux","goarch":"amd64"},"calibrated":true}`), 0o644)
		}, "unusable"},
		{"out-of-range field", func(path string) {
			os.WriteFile(path, []byte(`{"version":1,"min_parallel_n":0,"break_even_log_divisor":3,"worker_grain":1,"max_useful_workers":0,"host":{"gomaxprocs":1,"num_cpu":1,"goos":"linux","goarch":"amd64"},"calibrated":true}`), 0o644)
		}, "unusable"},
		{"unknown field", func(path string) {
			os.WriteFile(path, []byte(`{"version":1,"surprise":true}`), 0o644)
		}, "unusable"},
	}
	for i, tc := range cases {
		path := filepath.Join(dir, tc.name+".json")
		_ = i
		tc.prepare(path)
		var logged strings.Builder
		p := LoadLenient(path, func(format string, args ...any) {
			logged.WriteString(format)
		})
		if p == nil || p.Calibrated {
			t.Errorf("%s: lenient load did not fall back to defaults: %+v", tc.name, p)
		}
		if !strings.Contains(logged.String(), tc.wantLog) {
			t.Errorf("%s: warning %q does not mention %q", tc.name, logged.String(), tc.wantLog)
		}
	}
	// A good file loads without any warning.
	good := filepath.Join(dir, "good.json")
	p := Default()
	p.Calibrated = true
	if err := p.Save(good); err != nil {
		t.Fatal(err)
	}
	var logged strings.Builder
	loaded := LoadLenient(good, func(format string, args ...any) { logged.WriteString(format) })
	if !loaded.Calibrated || logged.Len() > 0 {
		t.Errorf("clean load: profile %+v, warnings %q", loaded, logged.String())
	}
	// And a nil logf must not panic.
	LoadLenient(filepath.Join(dir, "nowhere.json"), nil)
}
