package calib

import (
	"encoding/json"
	"testing"
)

// FuzzProfileDecode hammers the strict profile decoder: whatever the
// bytes, Decode must either return an error or a profile that passes
// Validate — never a half-applied threshold set.
func FuzzProfileDecode(f *testing.F) {
	good := Default()
	good.Calibrated = true
	if data, err := json.Marshal(good); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"version":1,"min_parallel_n":32768,"break_even_log_divisor":3,"worker_grain":16384,"max_useful_workers":0,"host":{"gomaxprocs":1,"num_cpu":1,"goos":"linux","goarch":"amd64"},"calibrated":false}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"version":1,"surprise":true}`))
	f.Add([]byte(`{}{}`))
	f.Add([]byte(`{nope`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"version":1,"min_parallel_n":-5}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("nil profile with nil error")
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Decode accepted an invalid profile: %v\n%+v", verr, p)
		}
	})
}
