package engine

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"sfcp/internal/calib"
	"sfcp/internal/coarsest"
)

// synthetic extreme profiles for the differential suite: one that turns
// everything parallel, one that never parallelizes.
func extremeProfiles() map[string]*calib.Profile {
	alwaysPar := calib.Default()
	alwaysPar.Calibrated = true
	alwaysPar.MinParallelN = 1
	alwaysPar.BreakEvenLogDivisor = 64 // break-even at the 2-core floor
	alwaysPar.WorkerGrain = 1
	neverPar := calib.Default()
	neverPar.Calibrated = true
	neverPar.MinParallelN = 1 << 30
	neverPar.BreakEvenLogDivisor = 1
	neverPar.MaxUsefulWorkers = 1
	return map[string]*calib.Profile{
		"always-parallel": alwaysPar,
		"never-parallel":  neverPar,
	}
}

// fittedLikeProfile mimics what Calibrate produces on a
// bandwidth-starved host: crossover pushed up, worker cap below cores.
func fittedLikeProfile() *calib.Profile {
	p := calib.Default()
	p.Calibrated = true
	p.MinParallelN = 1 << 18
	p.BreakEvenLogDivisor = 4
	p.WorkerGrain = 1 << 16
	p.MaxUsefulWorkers = 2
	p.FittedAt = "2026-08-07T00:00:00Z"
	return p
}

// TestDifferentialUnderProfiles is the conformance gate the calibration
// refactor must clear: whatever profile steers the planner — default,
// fitted-like, or either synthetic extreme — every family on both sides
// of each profile's crossover must still produce labels identical to the
// sequential linear reference. Profiles may change *which* solver runs,
// never *what* it computes.
func TestDifferentialUnderProfiles(t *testing.T) {
	profs := extremeProfiles()
	profs["default"] = nil
	profs["fitted-like"] = fittedLikeProfile()
	for pname, prof := range profs {
		for _, n := range []int{1 << 10, MinParallelN} {
			for fname, in := range families(1993, n) {
				want := coarsest.LinearSequential(in)
				plan, err := MakePlanWithProfile(in, Request{Algorithm: Auto, Workers: 8}, prof)
				if err != nil {
					t.Fatalf("%s/%s n=%d: %v", pname, fname, n, err)
				}
				if plan.Algorithm == Auto {
					t.Fatalf("%s/%s: plan not resolved past Auto", pname, fname)
				}
				got, _, err := Execute(context.Background(), in, plan, 0, nil)
				if err != nil {
					t.Fatalf("%s/%s n=%d (%s): %v", pname, fname, n, plan.Algorithm, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s/%s n=%d: %s disagrees with linear reference",
						pname, fname, n, plan.Algorithm)
				}
			}
		}
	}
}

// TestProfileMovesCrossover pins that the injected profile — not the
// package default — decides the crossover, and that plan reasons name
// their threshold source.
func TestProfileMovesCrossover(t *testing.T) {
	in := families(3, MinParallelN)["random-function"]
	req := Request{Algorithm: Auto, Workers: 8}

	def, err := MakePlanWithProfile(in, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if def.Algorithm != NativeParallel {
		t.Fatalf("default profile at n=crossover: %s, want native-parallel", def.Algorithm)
	}
	if def.ProfileSource != "default" || !strings.Contains(def.Reason, "[default profile]") {
		t.Errorf("default plan does not name its source: %+v", def)
	}

	raised := calib.Default()
	raised.Calibrated = true
	raised.MinParallelN = 4 * MinParallelN
	cal, err := MakePlanWithProfile(in, req, raised)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Algorithm != Linear {
		t.Fatalf("raised crossover ignored: %s, want linear", cal.Algorithm)
	}
	if cal.ProfileSource != "calibrated" || !strings.Contains(cal.Reason, "[calibrated profile]") {
		t.Errorf("calibrated plan does not name its source: %+v", cal)
	}
}

// TestBatchPlanUsesProfile is the satellite regression: MakeBatchPlan
// compares the batch's largest member against the *injected* crossover,
// so a calibrated MinParallelN must move the batch decision exactly as it
// moves per-instance ones.
func TestBatchPlanUsesProfile(t *testing.T) {
	small := families(5, 1<<10)["random-function"]
	big := families(5, MinParallelN)["random-function"]
	batch := []coarsest.Instance{small, big, small}
	req := Request{Algorithm: Auto, Workers: 8}

	def, err := MakeBatchPlanWithProfile(batch, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if def.Algorithm != NativeParallel {
		t.Fatalf("default profile: batch with max n=%d planned %s, want native-parallel", len(big.F), def.Algorithm)
	}

	raised := calib.Default()
	raised.Calibrated = true
	raised.MinParallelN = 4 * MinParallelN
	cal, err := MakeBatchPlanWithProfile(batch, req, raised)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Algorithm != Linear {
		t.Fatalf("calibrated MinParallelN=%d did not move the batch decision: %s", raised.MinParallelN, cal.Algorithm)
	}
	if cal.ProfileSource != "calibrated" || !strings.Contains(cal.Reason, "[calibrated profile]") {
		t.Errorf("batch plan does not name its source: %+v", cal)
	}

	// Lowering the crossover under the members flips the batch the other
	// way even when every member is below the default crossover.
	lowered := calib.Default()
	lowered.Calibrated = true
	lowered.MinParallelN = 1 << 9
	low, err := MakeBatchPlanWithProfile([]coarsest.Instance{small, small}, req, lowered)
	if err != nil {
		t.Fatal(err)
	}
	if low.Algorithm != NativeParallel {
		t.Errorf("lowered crossover ignored by batch planner: %s", low.Algorithm)
	}
}

// TestMaxUsefulWorkersCap: the fitted bandwidth knee caps the default
// worker budget, but an explicit worker request remains an instruction.
func TestMaxUsefulWorkersCap(t *testing.T) {
	in := families(7, 4*MinParallelN)["random-function"]
	capped := calib.Default()
	capped.Calibrated = true
	capped.MaxUsefulWorkers = 2
	capped.WorkerGrain = 1 << 12 // small grain so the cap, not the grain, binds

	auto, err := MakePlanWithProfile(in, Request{Algorithm: Auto}, capped)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Algorithm == NativeParallel && auto.Workers > 2 {
		t.Errorf("default budget ignores the bandwidth knee: %d workers > cap 2", auto.Workers)
	}

	explicit, err := MakePlanWithProfile(in, Request{Algorithm: NativeParallel, Workers: 6}, capped)
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Workers != 6 {
		t.Errorf("explicit worker instruction capped: %d, want 6", explicit.Workers)
	}
}

// TestSetProfileSteersRun: the process-wide profile installed via
// SetProfile steers Run and MakePlan, and nil reverts to defaults.
func TestSetProfileSteersRun(t *testing.T) {
	defer SetProfile(nil)
	in := families(9, MinParallelN)["random-function"]

	never := calib.Default()
	never.Calibrated = true
	never.MinParallelN = 1 << 30
	SetProfile(never)
	if got := ActiveProfile(); !got.Calibrated {
		t.Fatal("ActiveProfile does not reflect SetProfile")
	}
	out, err := Run(context.Background(), in, Request{Algorithm: Auto, Workers: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Plan.Algorithm != Linear || out.Plan.ProfileSource != "calibrated" {
		t.Errorf("installed profile not consulted: %+v", out.Plan)
	}

	SetProfile(nil)
	if got := ActiveProfile(); got.Calibrated || got.MinParallelN != MinParallelN {
		t.Errorf("nil SetProfile did not revert to defaults: %+v", got)
	}
}
