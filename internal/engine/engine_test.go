package engine

import (
	"context"
	"reflect"
	"testing"

	"sfcp/internal/calib"
	"sfcp/internal/coarsest"
	"sfcp/internal/workload"
)

// families builds one instance of every internal/workload coarsest-
// partition family at (roughly) n elements.
func families(seed int64, n int) map[string]coarsest.Instance {
	k := n / 16
	if k < 1 {
		k = 1
	}
	wl := map[string]workload.Instance{
		"random-function": workload.RandomFunction(seed, n, 3),
		"permutation":     workload.RandomPermutation(seed, n, 3),
		"cycle-family":    workload.CycleFamily(seed, k, 16, 4),
		"distinct-cycles": workload.DistinctCycles(seed, k, 16, 3),
		"broom":           workload.Broom(seed, n, 16, 8),
		"star":            workload.Star(seed, n, 3),
		"unary-dfa":       workload.UnaryDFA(seed, n, 300),
	}
	out := make(map[string]coarsest.Instance, len(wl))
	for name, ins := range wl {
		out[name] = coarsest.Instance{F: ins.F, B: ins.B}
	}
	return out
}

// TestPlannerAgreesWithLinear is the differential gate on the planner:
// whatever Auto resolves to — on either side of the crossover, with a
// budget that forces the sequential branch and one that allows the
// parallel branch — the labels must equal the linear reference exactly
// (all solvers normalize by first occurrence, so equality is slice-wise).
func TestPlannerAgreesWithLinear(t *testing.T) {
	for _, n := range []int{MinParallelN / 2, MinParallelN} {
		for name, in := range families(1993, n) {
			want := coarsest.LinearSequential(in)
			for _, workers := range []int{1, 16} {
				out, err := Run(context.Background(), in, Request{Algorithm: Auto, Workers: workers}, nil)
				if err != nil {
					t.Fatalf("n=%d %s workers=%d: %v", n, name, workers, err)
				}
				if !reflect.DeepEqual(out.Labels, want) {
					t.Errorf("n=%d %s workers=%d: auto (resolved %s) disagrees with linear",
						n, name, workers, out.Plan.Algorithm)
				}
				if out.Plan.Algorithm == Auto {
					t.Errorf("n=%d %s: plan not resolved past Auto", n, name)
				}
			}
		}
	}
}

// TestPlanDeterminism: identical instances and requests always yield
// identical plans — reason string, features and all.
func TestPlanDeterminism(t *testing.T) {
	for name, in := range families(7, MinParallelN/2) {
		for _, req := range []Request{
			{Algorithm: Auto},
			{Algorithm: Auto, Workers: 16},
			{Algorithm: NativeParallel},
			{Algorithm: Linear},
		} {
			first, err := MakePlan(in, req)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, req, err)
			}
			for i := 0; i < 3; i++ {
				again, err := MakePlan(in, req)
				if err != nil {
					t.Fatalf("%s %+v: %v", name, req, err)
				}
				if !reflect.DeepEqual(first, again) {
					t.Fatalf("%s %+v: plan not deterministic:\n%+v\n%+v", name, req, first, again)
				}
			}
		}
	}
}

// TestCrossoverRules pins the planner's decision table: linear below the
// crossover or under a starved budget, native-parallel (with size-scaled
// workers) above it with budget to spare.
func TestCrossoverRules(t *testing.T) {
	small := families(3, MinParallelN/2)["random-function"]
	big := families(3, 4*MinParallelN)["random-function"]

	cases := []struct {
		name        string
		in          coarsest.Instance
		workers     int
		wantAlgo    Algorithm
		wantWorkers int
	}{
		{"below crossover, wide budget", small, 64, Linear, 1},
		{"above crossover, single core", big, 1, Linear, 1},
		{"above crossover, wide budget", big, 64, NativeParallel, 4 * MinParallelN / calib.DefaultWorkerGrain},
	}
	for _, tc := range cases {
		plan, err := MakePlan(tc.in, Request{Algorithm: Auto, Workers: tc.workers})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if plan.Algorithm != tc.wantAlgo || plan.Workers != tc.wantWorkers {
			t.Errorf("%s: plan = %s/%d workers, want %s/%d (reason %q)",
				tc.name, plan.Algorithm, plan.Workers, tc.wantAlgo, tc.wantWorkers, plan.Reason)
		}
		if plan.Reason == "" || !plan.Features.Probed {
			t.Errorf("%s: auto plan missing reason or probe: %+v", tc.name, plan)
		}
	}
}

// TestExplicitPlans: explicit algorithm requests are honored verbatim; an
// explicit worker count on native-parallel is an instruction, while an
// unstated one is scaled to the instance.
func TestExplicitPlans(t *testing.T) {
	in := families(5, 4*MinParallelN)["random-function"]
	for _, algo := range []Algorithm{Moore, Hopcroft, Linear, ParallelPRAM, NativeParallel, DoublingHash, DoublingSort} {
		plan, err := MakePlan(in, Request{Algorithm: algo, Workers: 3})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if plan.Algorithm != algo {
			t.Errorf("explicit %v request resolved to %v", algo, plan.Algorithm)
		}
		if plan.Features.Probed {
			t.Errorf("%v: explicit request ran the probe", algo)
		}
	}
	explicit, _ := MakePlan(in, Request{Algorithm: NativeParallel, Workers: 64})
	if explicit.Workers != 64 {
		t.Errorf("explicit worker count overridden: %d", explicit.Workers)
	}
	scaled, _ := MakePlan(in, Request{Algorithm: NativeParallel})
	if want := scaleWorkers(len(in.F), 1<<30, calib.Default()); scaled.Workers > want {
		t.Errorf("unstated worker budget not size-scaled: %d > %d", scaled.Workers, want)
	}
}

// TestProbeFeatures sanity-checks the structure probe on instances whose
// shape is known by construction.
func TestProbeFeatures(t *testing.T) {
	n := 1 << 12
	shortCycles := workload.CycleFamily(11, n/16, 16, 4)
	ft := Probe(coarsest.Instance{F: shortCycles.F, B: shortCycles.B})
	if ft.ShortCycleFrac != 1.0 {
		t.Errorf("16-cycles family: ShortCycleFrac = %v, want 1.0", ft.ShortCycleFrac)
	}
	star := workload.Star(11, n, 3)
	if ft := Probe(coarsest.Instance{F: star.F, B: star.B}); ft.ShortCycleFrac != 1.0 {
		t.Errorf("star: ShortCycleFrac = %v, want 1.0 (every walk hits the self-loop)", ft.ShortCycleFrac)
	}
	perm := workload.RandomPermutation(11, n, 3)
	if ft := Probe(coarsest.Instance{F: perm.F, B: perm.B}); ft.ShortCycleFrac > 0.25 {
		t.Errorf("random permutation: ShortCycleFrac = %v, want near 0 (cycles are long)", ft.ShortCycleFrac)
	}
	if ft := Probe(coarsest.Instance{}); ft.N != 0 || !ft.Probed {
		t.Errorf("empty instance probe = %+v", ft)
	}
	uniform := coarsest.Instance{F: []int{1, 2, 0}, B: []int{5, 5, 5}}
	if ft := Probe(uniform); ft.SampledLabels != 1 {
		t.Errorf("uniform labels: SampledLabels = %d, want 1", ft.SampledLabels)
	}
}

// TestUnknownAlgorithm: planning and execution both reject values outside
// the dispatch table.
func TestUnknownAlgorithm(t *testing.T) {
	in := coarsest.Instance{F: []int{0}, B: []int{0}}
	if _, err := MakePlan(in, Request{Algorithm: Algorithm(99)}); err == nil {
		t.Error("MakePlan accepted Algorithm(99)")
	}
	if _, _, err := Execute(context.Background(), in, Plan{Algorithm: Auto}, 0, nil); err == nil {
		t.Error("Execute accepted an unresolved Auto plan")
	}
}

// TestAlgorithmTextRoundTrip covers the JSON-facing text codec.
func TestAlgorithmTextRoundTrip(t *testing.T) {
	for _, a := range Algorithms() {
		text, err := a.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Algorithm
		if err := back.UnmarshalText(text); err != nil || back != a {
			t.Errorf("round trip %v -> %s -> %v (%v)", a, text, back, err)
		}
	}
	var a Algorithm
	if err := a.UnmarshalText([]byte("nope")); err == nil {
		t.Error("UnmarshalText accepted an unknown name")
	}
}
