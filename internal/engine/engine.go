// Package engine is the unified execution layer of the library: the one
// place an Algorithm is chosen and the one place it is invoked.
//
// Every solve entry point — Solve/SolveWith/SolveWithContext, the reusable
// Solver and its batches, sfcpd's synchronous handlers and async job
// dispatchers, and the sfcp CLI — routes through Run, which
//
//  1. computes cheap instance features (size, a sampled initial-label
//     count, a sampled cycle/tree structure probe),
//  2. resolves the request to an explainable Plan{Algorithm, Workers,
//     Reason} — Auto picks the sequential linear-time solver below a
//     benchmark-calibrated crossover and the goroutine-parallel solver
//     above it, with the worker count scaled to the instance instead of
//     always GOMAXPROCS — and
//  3. executes the plan through the single dispatch table mapping each
//     Algorithm to its internal/coarsest entry point.
//
// Plans are deterministic: identical instances with identical requests
// yield identical plans (the probe samples by fixed stride, never by RNG).
package engine

import (
	"context"
	"fmt"

	"sfcp/internal/coarsest"
	"sfcp/internal/pram"
)

// Algorithm selects a solver. The zero value Auto defers the choice to the
// planner, which resolves it per instance.
type Algorithm uint8

// The solver catalogue, in canonical presentation order.
const (
	// Auto lets the planner pick per instance: the sequential linear-time
	// solver below the calibrated crossover, NativeParallel above it.
	Auto Algorithm = iota
	// Moore is naive iterative refinement (O(n^2) worst case).
	Moore
	// Hopcroft is partition refinement, O(n log n).
	Hopcroft
	// Linear is the sequential linear-time cycle/tree solution.
	Linear
	// ParallelPRAM is the paper's algorithm on the instrumented CRCW PRAM
	// simulator (Theorem 5.1).
	ParallelPRAM
	// NativeParallel runs goroutines on real cores.
	NativeParallel
	// DoublingHash is the O(n log n)-work parallel baseline on the simulator.
	DoublingHash
	// DoublingSort is the O(n log^2 n)-work parallel baseline on the
	// simulator.
	DoublingSort
)

// Algorithms lists every solver in declaration order — the canonical
// enumeration for CLIs, servers and tests.
func Algorithms() []Algorithm {
	return []Algorithm{
		Auto, Moore, Hopcroft, Linear,
		ParallelPRAM, NativeParallel, DoublingHash, DoublingSort,
	}
}

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case Moore:
		return "moore"
	case Hopcroft:
		return "hopcroft"
	case Linear:
		return "linear"
	case ParallelPRAM:
		return "parallel-pram"
	case NativeParallel:
		return "native-parallel"
	case DoublingHash:
		return "doubling-hash"
	case DoublingSort:
		return "doubling-sort"
	}
	return fmt.Sprintf("Algorithm(%d)", uint8(a))
}

// MarshalText encodes the algorithm as its name, so JSON bodies carry
// "linear" rather than an opaque enum ordinal.
func (a Algorithm) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText parses an algorithm name (the inverse of MarshalText).
func (a *Algorithm) UnmarshalText(text []byte) error {
	for _, cand := range Algorithms() {
		if cand.String() == string(text) {
			*a = cand
			return nil
		}
	}
	return fmt.Errorf("unknown algorithm %q", text)
}

// entry executes one concrete algorithm on a validated instance. The
// dispatch table below is the only mapping from Algorithm values to
// internal/coarsest entry points in the codebase — adding a solver means
// adding one constant and one row here.
type entry func(ctx context.Context, in coarsest.Instance, plan Plan, seed uint64, sc *coarsest.Scratch) ([]int, *pram.Stats, error)

var dispatch = map[Algorithm]entry{
	Moore: func(_ context.Context, in coarsest.Instance, _ Plan, _ uint64, _ *coarsest.Scratch) ([]int, *pram.Stats, error) {
		return coarsest.Moore(in), nil, nil
	},
	Hopcroft: func(_ context.Context, in coarsest.Instance, _ Plan, _ uint64, _ *coarsest.Scratch) ([]int, *pram.Stats, error) {
		return coarsest.Hopcroft(in), nil, nil
	},
	Linear: func(_ context.Context, in coarsest.Instance, _ Plan, _ uint64, sc *coarsest.Scratch) ([]int, *pram.Stats, error) {
		return coarsest.LinearSequentialScratch(in, sc), nil, nil
	},
	NativeParallel: func(ctx context.Context, in coarsest.Instance, plan Plan, _ uint64, sc *coarsest.Scratch) ([]int, *pram.Stats, error) {
		labels, err := coarsest.NativeParallelCtx(ctx, in, plan.Workers, sc)
		return labels, nil, err
	},
	ParallelPRAM: func(ctx context.Context, in coarsest.Instance, plan Plan, seed uint64, _ *coarsest.Scratch) ([]int, *pram.Stats, error) {
		res, err := coarsest.ParallelPRAMContext(ctx, in, coarsest.ParallelOptions{Workers: plan.Workers, Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return res.Labels, &res.Stats, nil
	},
	DoublingHash: func(ctx context.Context, in coarsest.Instance, plan Plan, seed uint64, _ *coarsest.Scratch) ([]int, *pram.Stats, error) {
		res, err := coarsest.DoublingHashPRAMContext(ctx, in, coarsest.ParallelOptions{Workers: plan.Workers, Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return res.Labels, &res.Stats, nil
	},
	DoublingSort: func(ctx context.Context, in coarsest.Instance, plan Plan, seed uint64, _ *coarsest.Scratch) ([]int, *pram.Stats, error) {
		res, err := coarsest.DoublingSortPRAMContext(ctx, in, coarsest.ParallelOptions{Workers: plan.Workers, Seed: seed})
		if err != nil {
			return nil, nil, err
		}
		return res.Labels, &res.Stats, nil
	},
}

// Execute runs a resolved plan on a validated instance. plan.Algorithm must
// be concrete (MakePlan never returns Auto); sc may be nil — the linear and
// native-parallel solvers use it, the rest ignore it.
func Execute(ctx context.Context, in coarsest.Instance, plan Plan, seed uint64, sc *coarsest.Scratch) ([]int, *pram.Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	run, ok := dispatch[plan.Algorithm]
	if !ok {
		return nil, nil, fmt.Errorf("sfcp: no solver for algorithm %v", plan.Algorithm)
	}
	return run(ctx, in, plan, seed, sc)
}
