package engine

import (
	"fmt"
	"time"

	"sfcp/internal/calib"
	"sfcp/internal/coarsest"
	"sfcp/internal/incr"
)

// Resolve modes: how a delta was (or will be) applied. The names are the
// metric label values of sfcpd_resolve_total{mode=...}.
const (
	// ResolveIncremental recomputes only the dirty components and splices.
	ResolveIncremental = "incremental"
	// ResolveFullFallback rebuilds the whole decomposition — chosen when
	// the dirty fraction crosses the calibrated threshold, or forced by
	// the state's code-exhaustion valve mid-delta.
	ResolveFullFallback = "full_fallback"
)

// ResolvePlan is the planner's explainable decision for one delta,
// mirroring Plan for solves: a concrete mode, the dirty-set measurements
// behind it, and the threshold source.
type ResolvePlan struct {
	Mode            string  `json:"mode"`
	Reason          string  `json:"reason"`
	DirtyComponents int     `json:"dirty_components"`
	DirtyNodes      int     `json:"dirty_nodes"`
	DirtyFrac       float64 `json:"dirty_frac"`
	ProfileSource   string  `json:"profile_source,omitempty"`
}

// ResolveOutcome is ResolveDelta's full result: the refreshed labels
// (owned by the state — copy to retain), class count, the plan, what the
// application actually did, and the wall time of the apply stage.
type ResolveOutcome struct {
	Labels     []int
	NumClasses int
	Plan       ResolvePlan
	Info       incr.Info
	Duration   time.Duration
}

// NewIncremental builds the reusable decomposition state for an
// instance — the engine's only construction point for the incremental
// solver (sfcpvet enginedispatch enforces this).
func NewIncremental(in coarsest.Instance) (*incr.State, error) {
	return incr.Build(in)
}

// PlanResolve sizes a delta's dirty set against the state's current
// decomposition and resolves incremental-vs-full from the process-wide
// profile's crossover. Deterministic in (state, edits, profile).
func PlanResolve(st *incr.State, edits []incr.Edit) (ResolvePlan, error) {
	return PlanResolveWithProfile(st, edits, ActiveProfile())
}

// PlanResolveWithProfile is PlanResolve against an explicit profile, for
// callers and tests that must not depend on process-wide state. A nil
// profile means the built-in defaults.
func PlanResolveWithProfile(st *incr.State, edits []incr.Edit, prof *calib.Profile) (ResolvePlan, error) {
	if prof == nil {
		prof = calib.Default()
	}
	nodes, comps, err := st.DirtyStats(edits)
	if err != nil {
		return ResolvePlan{}, err
	}
	n := st.N()
	frac := 0.0
	if n > 0 {
		frac = float64(nodes) / float64(n)
	}
	crossover := prof.IncrCrossover()
	src := prof.Source()
	rp := ResolvePlan{
		DirtyComponents: comps,
		DirtyNodes:      nodes,
		DirtyFrac:       frac,
		ProfileSource:   src,
	}
	if frac > crossover {
		rp.Mode = ResolveFullFallback
		rp.Reason = fmt.Sprintf("auto: dirty fraction %.3f (%d/%d nodes across %d components) above crossover %.2f [%s profile]; full re-solve rebuilds the decomposition",
			frac, nodes, n, comps, crossover, src)
	} else {
		rp.Mode = ResolveIncremental
		rp.Reason = fmt.Sprintf("auto: dirty fraction %.3f (%d/%d nodes across %d components) within crossover %.2f [%s profile]; component-scoped incremental re-solve",
			frac, nodes, n, comps, crossover, src)
	}
	return rp, nil
}

// ResolveDelta plans and applies one delta against the state: the
// engine's front door for mutation, as Run is for solves. The state is
// consumed forward — it afterwards describes the edited instance.
func ResolveDelta(st *incr.State, edits []incr.Edit) (ResolveOutcome, error) {
	plan, err := PlanResolve(st, edits)
	if err != nil {
		return ResolveOutcome{}, err
	}
	t0 := time.Now()
	var labels []int
	var info incr.Info
	if plan.Mode == ResolveIncremental {
		labels, info, err = st.ApplyDelta(edits)
		if err == nil && info.Rebuilt {
			// The code-exhaustion valve overrode the incremental choice;
			// report what actually ran.
			plan.Mode = ResolveFullFallback
			plan.Reason += "; persistent code space exhausted, state rebuilt"
		}
	} else {
		labels, info, err = st.Rebuild(edits)
	}
	if err != nil {
		return ResolveOutcome{}, err
	}
	return ResolveOutcome{
		Labels:     labels,
		NumClasses: info.NumClasses,
		Plan:       plan,
		Info:       info,
		Duration:   time.Since(t0),
	}, nil
}
