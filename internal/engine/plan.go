package engine

import (
	"context"
	"fmt"
	"math/bits"
	"time"

	"sfcp/internal/coarsest"
	"sfcp/internal/par"
	"sfcp/internal/pram"
)

// Planner calibration. The crossover model comes from measuring
// LinearSequential against NativeParallel on random-function and
// permutation workloads (regenerate with `sfcpbench -exp A4`): on one core
// the parallel solver is 1.9–2.1x slower at n=2^10 and 5–7.6x slower at
// n=2^20 — its pointer-doubling structure discovery does ~log2(n)
// near-linear passes, each costing roughly a third of the linear solver's
// single pass. It therefore needs about log2(n)/3 effective cores to break
// even, and below MinParallelN the goroutine fan-out and barrier overhead
// dominate regardless of core count.
const (
	// MinParallelN is the instance size below which Auto never picks the
	// goroutine-parallel solver.
	MinParallelN = 1 << 15
	// breakEvenLogDivisor: NativeParallel needs ~log2(n)/3 effective cores
	// to match the sequential linear-time solver's O(n) single pass.
	breakEvenLogDivisor = 3
	// minParallelCores is the floor on that break-even estimate: with
	// fewer than two cores the parallel solver cannot win at any size.
	minParallelCores = 2
	// workerGrain is the target elements per worker; spreading fewer than
	// this across extra goroutines costs more in startup and barriers than
	// the added parallelism returns.
	workerGrain = 1 << 14
)

// Probe sampling budgets. Sampling is by fixed stride — never randomized —
// so identical instances always produce identical features and plans.
const (
	probeLabelSamples = 256
	probeWalks        = 64
)

// Features are the cheap instance measurements the planner reads: O(probe
// budget) work, independent of instance size.
type Features struct {
	// N is the instance size.
	N int `json:"n"`
	// SampledLabels counts distinct initial-partition labels among up to
	// probeLabelSamples stride-sampled elements — a lower bound on |B|.
	SampledLabels int `json:"sampled_labels,omitempty"`
	// ShortCycleFrac is the fraction of stride-sampled walks that closed a
	// cycle within ~2 log2(n) steps: near 1.0 for short-cycle families
	// (the Section 3 regime), near 0 for trees and long random cycles.
	ShortCycleFrac float64 `json:"short_cycle_frac,omitempty"`
	// Probed reports whether the sampled probe ran; explicit algorithm
	// requests skip it and only record N.
	Probed bool `json:"probed,omitempty"`
}

// Probe computes the planner's features for a validated instance.
func Probe(in coarsest.Instance) Features {
	n := len(in.F)
	ft := Features{N: n, Probed: true}
	if n == 0 {
		return ft
	}

	stride := n / probeLabelSamples
	if stride < 1 {
		stride = 1
	}
	labels := make(map[int]struct{}, 8)
	for i, taken := 0, 0; i < n && taken < probeLabelSamples; i, taken = i+stride, taken+1 {
		labels[in.B[i]] = struct{}{}
	}
	ft.SampledLabels = len(labels)

	walks := probeWalks
	if walks > n {
		walks = n
	}
	wstride := n / walks
	if wstride < 1 {
		wstride = 1
	}
	maxSteps := 2*bits.Len(uint(n)) + 8
	closed := 0
	for s, done := 0, 0; done < walks; s, done = s+wstride, done+1 {
		if brentShortCycle(in.F, s, maxSteps) {
			closed++
		}
	}
	ft.ShortCycleFrac = float64(closed) / float64(walks)
	return ft
}

// brentShortCycle reports whether the walk from start closes a cycle
// within maxSteps applications of f, using Brent's power-of-two teleport
// (O(maxSteps) time, O(1) space — the probe runs on every Auto solve, so
// a quadratic visited-scan would eat the planning budget it guards).
func brentShortCycle(f []int, start, maxSteps int) bool {
	power, lam := 1, 1
	tortoise, hare := start, f[start]
	for step := 1; step < maxSteps; step++ {
		if tortoise == hare {
			return true
		}
		if power == lam {
			tortoise = hare
			power <<= 1
			lam = 0
		}
		hare = f[hare]
		lam++
	}
	return tortoise == hare
}

// Request is what a caller asks the engine for: an algorithm (possibly
// Auto), a host-goroutine budget (0 = NumCPU) and a simulator seed.
type Request struct {
	Algorithm Algorithm
	Workers   int
	Seed      uint64
}

// Plan is a resolved, explainable execution decision. Algorithm is always
// concrete (never Auto) and Workers is the exact goroutine count the
// parallel solvers will use.
type Plan struct {
	Algorithm Algorithm `json:"algorithm"`
	Workers   int       `json:"workers"`
	Reason    string    `json:"reason"`
	Features  Features  `json:"features"`
}

// Timings reports where a solve spent its time, stage by stage.
type Timings struct {
	// Plan covers feature probing and algorithm resolution.
	Plan time.Duration `json:"plan_ns"`
	// Solve covers the dispatched algorithm itself.
	Solve time.Duration `json:"solve_ns"`
}

// Outcome is Run's full result: the labels, the simulator counters for the
// PRAM algorithms (nil otherwise), the plan that produced them and the
// per-stage timings.
type Outcome struct {
	Labels  []int
	Stats   *pram.Stats
	Plan    Plan
	Timings Timings
}

// coresToBreakEven estimates how many effective cores NativeParallel needs
// to match the sequential linear solver on an n-element instance.
func coresToBreakEven(n int) int {
	need := bits.Len(uint(n)) / breakEvenLogDivisor
	if need < minParallelCores {
		need = minParallelCores
	}
	return need
}

// scaleWorkers sizes the goroutine count to the instance: one worker per
// workerGrain elements, within the budget.
func scaleWorkers(n, budget int) int {
	w := n / workerGrain
	if w < 1 {
		w = 1
	}
	if w > budget {
		w = budget
	}
	return w
}

// MakePlan resolves a request against a validated instance. Explicit
// algorithm choices are honored as-is (only the worker count is resolved);
// Auto runs the probe and applies the calibrated crossover. Plans are
// deterministic in (instance, request).
func MakePlan(in coarsest.Instance, req Request) (Plan, error) {
	n := len(in.F)
	if req.Algorithm != Auto {
		if _, ok := dispatch[req.Algorithm]; !ok {
			return Plan{}, fmt.Errorf("sfcp: unknown algorithm %v", req.Algorithm)
		}
		p := Plan{
			Algorithm: req.Algorithm,
			Workers:   1,
			Reason:    fmt.Sprintf("explicit %s request", req.Algorithm),
			Features:  Features{N: n},
		}
		switch req.Algorithm {
		case NativeParallel:
			budget := par.Workers(req.Workers)
			if req.Workers == 0 {
				// An unstated budget is scaled to the instance; an explicit
				// one is an instruction, not a hint.
				p.Workers = scaleWorkers(n, budget)
			} else {
				p.Workers = budget
			}
		case ParallelPRAM, DoublingHash, DoublingSort:
			p.Workers = par.Workers(req.Workers)
		}
		return p, nil
	}

	ft := Probe(in)
	budget := par.Workers(req.Workers)
	need := coresToBreakEven(n)
	switch {
	case n < MinParallelN:
		return Plan{
			Algorithm: Linear,
			Workers:   1,
			Reason: fmt.Sprintf("auto: n=%d below parallel crossover %d; sequential linear-time solver avoids goroutine fan-out",
				n, MinParallelN),
			Features: ft,
		}, nil
	case budget < need:
		return Plan{
			Algorithm: Linear,
			Workers:   1,
			Reason: fmt.Sprintf("auto: worker budget %d under break-even ~log2(n)/%d = %d cores at n=%d; sequential linear-time solver",
				budget, breakEvenLogDivisor, need, n),
			Features: ft,
		}, nil
	default:
		w := scaleWorkers(n, budget)
		return Plan{
			Algorithm: NativeParallel,
			Workers:   w,
			Reason: fmt.Sprintf("auto: n=%d at or above crossover %d and budget %d covers break-even %d cores; native-parallel with %d workers (~%d elements each)",
				n, MinParallelN, budget, need, w, n/w),
			Features: ft,
		}, nil
	}
}

// MakeBatchPlan resolves one plan for a coalesced batch of instances: the
// batch — not each member — is the planning unit, so N tiny requests pay
// for one resolution instead of N probes. Auto plans by the largest member
// (a batch of all-small instances runs one sequential linear pass per
// member under a shared scratch arena; if any member reaches the parallel
// crossover the whole batch gets the parallel plan that member needs);
// explicit algorithms are honored as in MakePlan, with workers resolved
// against the largest member. Features.N reports the batch's total
// elements. Plans are deterministic in (instances, request).
func MakeBatchPlan(ins []coarsest.Instance, req Request) (Plan, error) {
	if len(ins) == 0 {
		return Plan{}, fmt.Errorf("sfcp: empty batch")
	}
	maxN, totalN := 0, 0
	for _, in := range ins {
		n := len(in.F)
		totalN += n
		if n > maxN {
			maxN = n
		}
	}
	if req.Algorithm != Auto {
		largest := ins[0]
		for _, in := range ins[1:] {
			if len(in.F) > len(largest.F) {
				largest = in
			}
		}
		p, err := MakePlan(largest, req)
		if err != nil {
			return Plan{}, err
		}
		p.Reason = fmt.Sprintf("explicit %s request for coalesced batch of %d members (total n=%d)",
			req.Algorithm, len(ins), totalN)
		p.Features = Features{N: totalN}
		return p, nil
	}
	ft := Features{N: totalN}
	if maxN < MinParallelN {
		return Plan{
			Algorithm: Linear,
			Workers:   1,
			Reason: fmt.Sprintf("auto: coalesced batch of %d members (max n=%d, total n=%d) below parallel crossover %d; one sequential linear pass per member under a shared scratch arena",
				len(ins), maxN, totalN, MinParallelN),
			Features: ft,
		}, nil
	}
	budget := par.Workers(req.Workers)
	need := coresToBreakEven(maxN)
	if budget < need {
		return Plan{
			Algorithm: Linear,
			Workers:   1,
			Reason: fmt.Sprintf("auto: coalesced batch of %d members; worker budget %d under break-even %d cores at max n=%d; sequential linear-time solver",
				len(ins), budget, need, maxN),
			Features: ft,
		}, nil
	}
	w := scaleWorkers(maxN, budget)
	return Plan{
		Algorithm: NativeParallel,
		Workers:   w,
		Reason: fmt.Sprintf("auto: coalesced batch of %d members with max n=%d at or above crossover %d; native-parallel with %d workers per member",
			len(ins), maxN, MinParallelN, w),
		Features: ft,
	}, nil
}

// Run is the engine's front door: probe, plan, dispatch, with per-stage
// timings. The instance must already be validated; sc may be nil.
func Run(ctx context.Context, in coarsest.Instance, req Request, sc *coarsest.Scratch) (Outcome, error) {
	t0 := time.Now()
	plan, err := MakePlan(in, req)
	planDur := time.Since(t0)
	if err != nil {
		return Outcome{}, err
	}
	t1 := time.Now()
	labels, stats, err := Execute(ctx, in, plan, req.Seed, sc)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Labels:  labels,
		Stats:   stats,
		Plan:    plan,
		Timings: Timings{Plan: planDur, Solve: time.Since(t1)},
	}, nil
}
