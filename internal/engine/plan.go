package engine

import (
	"context"
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"sfcp/internal/calib"
	"sfcp/internal/coarsest"
	"sfcp/internal/par"
	"sfcp/internal/pram"
)

// Planner calibration. The crossover model comes from measuring
// LinearSequential against NativeParallel on random-function and
// permutation workloads (regenerate with `sfcpbench -exp A4`, or re-fit
// for this host with `sfcpbench -calibrate`): on one core the parallel
// solver is 1.9–2.1x slower at n=2^10 and 5–7.6x slower at n=2^20 — its
// pointer-doubling structure discovery does ~log2(n) near-linear passes,
// each costing roughly a third of the linear solver's single pass. It
// therefore needs about log2(n)/divisor effective cores to break even,
// and below the crossover size the goroutine fan-out and barrier overhead
// dominate regardless of core count.
//
// The default thresholds live in internal/calib (the one home of the
// crossover constants); a host-fitted calib.Profile injected via
// SetProfile — or passed directly to MakePlanWithProfile — replaces them.
const (
	// MinParallelN is the default instance size below which Auto never
	// picks the goroutine-parallel solver. A calibrated profile overrides
	// it per host; this constant remains the zero-config fallback and the
	// public crossover landmark (sfcp.LinearCrossoverN).
	MinParallelN = calib.DefaultMinParallelN
	// minParallelCores is the floor on the break-even estimate: with
	// fewer than two cores the parallel solver cannot win at any size.
	minParallelCores = 2
)

// activeProfile is the process-wide planner profile. Nil means the
// built-in defaults; SetProfile stores a fitted one. Reads are on every
// Auto plan, so the pointer is atomic rather than locked.
var activeProfile atomic.Pointer[calib.Profile]

// SetProfile installs the planner profile consulted by MakePlan,
// MakeBatchPlan and Run. Passing nil reverts to the built-in defaults.
// The profile must be valid (calib.Profile.Validate) — planners divide
// by its fields.
func SetProfile(p *calib.Profile) {
	activeProfile.Store(p)
}

// ActiveProfile returns the profile the planner is currently consulting;
// never nil (the default profile stands in when none was injected).
func ActiveProfile() *calib.Profile {
	if p := activeProfile.Load(); p != nil {
		return p
	}
	return calib.Default()
}

// InstalledProfile returns exactly what SetProfile last stored — nil when
// the planner is on its built-in defaults. ActiveProfile is the consulting
// accessor; this one exists so a caller can save and restore the installed
// state without turning "defaults" into a pinned copy.
func InstalledProfile() *calib.Profile {
	return activeProfile.Load()
}

// Probe sampling budgets. Sampling is by fixed stride — never randomized —
// so identical instances always produce identical features and plans.
const (
	probeLabelSamples = 256
	probeWalks        = 64
)

// Features are the cheap instance measurements the planner reads: O(probe
// budget) work, independent of instance size.
type Features struct {
	// N is the instance size.
	N int `json:"n"`
	// SampledLabels counts distinct initial-partition labels among up to
	// probeLabelSamples stride-sampled elements — a lower bound on |B|.
	SampledLabels int `json:"sampled_labels,omitempty"`
	// ShortCycleFrac is the fraction of stride-sampled walks that closed a
	// cycle within ~2 log2(n) steps: near 1.0 for short-cycle families
	// (the Section 3 regime), near 0 for trees and long random cycles.
	ShortCycleFrac float64 `json:"short_cycle_frac,omitempty"`
	// Probed reports whether the sampled probe ran; explicit algorithm
	// requests skip it and only record N.
	Probed bool `json:"probed,omitempty"`
}

// Probe computes the planner's features for a validated instance.
func Probe(in coarsest.Instance) Features {
	n := len(in.F)
	ft := Features{N: n, Probed: true}
	if n == 0 {
		return ft
	}

	stride := n / probeLabelSamples
	if stride < 1 {
		stride = 1
	}
	labels := make(map[int]struct{}, 8)
	for i, taken := 0, 0; i < n && taken < probeLabelSamples; i, taken = i+stride, taken+1 {
		labels[in.B[i]] = struct{}{}
	}
	ft.SampledLabels = len(labels)

	walks := probeWalks
	if walks > n {
		walks = n
	}
	wstride := n / walks
	if wstride < 1 {
		wstride = 1
	}
	maxSteps := 2*bits.Len(uint(n)) + 8
	closed := 0
	for s, done := 0, 0; done < walks; s, done = s+wstride, done+1 {
		if brentShortCycle(in.F, s, maxSteps) {
			closed++
		}
	}
	ft.ShortCycleFrac = float64(closed) / float64(walks)
	return ft
}

// brentShortCycle reports whether the walk from start closes a cycle
// within maxSteps applications of f, using Brent's power-of-two teleport
// (O(maxSteps) time, O(1) space — the probe runs on every Auto solve, so
// a quadratic visited-scan would eat the planning budget it guards).
func brentShortCycle(f []int, start, maxSteps int) bool {
	power, lam := 1, 1
	tortoise, hare := start, f[start]
	for step := 1; step < maxSteps; step++ {
		if tortoise == hare {
			return true
		}
		if power == lam {
			tortoise = hare
			power <<= 1
			lam = 0
		}
		hare = f[hare]
		lam++
	}
	return tortoise == hare
}

// Request is what a caller asks the engine for: an algorithm (possibly
// Auto), a host-goroutine budget (0 = NumCPU) and a simulator seed.
type Request struct {
	Algorithm Algorithm
	Workers   int
	Seed      uint64
}

// Plan is a resolved, explainable execution decision. Algorithm is always
// concrete (never Auto) and Workers is the exact goroutine count the
// parallel solvers will use. ProfileSource names the threshold source the
// decision consulted ("calibrated" or "default").
type Plan struct {
	Algorithm     Algorithm `json:"algorithm"`
	Workers       int       `json:"workers"`
	Reason        string    `json:"reason"`
	ProfileSource string    `json:"profile_source,omitempty"`
	Features      Features  `json:"features"`
}

// Timings reports where a solve spent its time, stage by stage.
type Timings struct {
	// Plan covers feature probing and algorithm resolution.
	Plan time.Duration `json:"plan_ns"`
	// Solve covers the dispatched algorithm itself.
	Solve time.Duration `json:"solve_ns"`
}

// Outcome is Run's full result: the labels, the simulator counters for the
// PRAM algorithms (nil otherwise), the plan that produced them and the
// per-stage timings.
type Outcome struct {
	Labels  []int
	Stats   *pram.Stats
	Plan    Plan
	Timings Timings
}

// coresToBreakEven estimates how many effective cores NativeParallel needs
// to match the sequential linear solver on an n-element instance, using
// the profile's fitted log-divisor.
func coresToBreakEven(n int, p *calib.Profile) int {
	need := bits.Len(uint(n)) / p.BreakEvenLogDivisor
	if need < minParallelCores {
		need = minParallelCores
	}
	return need
}

// scaleWorkers sizes the goroutine count to the instance: one worker per
// profile-grain elements, within the budget.
func scaleWorkers(n, budget int, p *calib.Profile) int {
	w := n / p.WorkerGrain
	if w < 1 {
		w = 1
	}
	if w > budget {
		w = budget
	}
	return w
}

// workerBudget resolves the goroutine budget for a request under a
// profile: an explicit request is an instruction and passes through
// untouched; an unstated one (Workers==0) starts at the host core count
// and is capped at the profile's measured bandwidth knee — past
// MaxUsefulWorkers, added goroutines queue on memory, not compute.
func workerBudget(reqWorkers int, p *calib.Profile) int {
	budget := par.Workers(reqWorkers)
	if reqWorkers == 0 && p.MaxUsefulWorkers > 0 && budget > p.MaxUsefulWorkers {
		budget = p.MaxUsefulWorkers
	}
	return budget
}

// MakePlan resolves a request against a validated instance using the
// process-wide active profile (SetProfile). Explicit algorithm choices
// are honored as-is (only the worker count is resolved); Auto runs the
// probe and applies the profile's crossover. Plans are deterministic in
// (instance, request, profile).
func MakePlan(in coarsest.Instance, req Request) (Plan, error) {
	return MakePlanWithProfile(in, req, ActiveProfile())
}

// MakePlanWithProfile is MakePlan against an explicit profile, for
// callers (and tests) that must not depend on process-wide state. A nil
// profile means the built-in defaults.
func MakePlanWithProfile(in coarsest.Instance, req Request, prof *calib.Profile) (Plan, error) {
	if prof == nil {
		prof = calib.Default()
	}
	n := len(in.F)
	if req.Algorithm != Auto {
		if _, ok := dispatch[req.Algorithm]; !ok {
			return Plan{}, fmt.Errorf("sfcp: unknown algorithm %v", req.Algorithm)
		}
		p := Plan{
			Algorithm:     req.Algorithm,
			Workers:       1,
			Reason:        fmt.Sprintf("explicit %s request", req.Algorithm),
			ProfileSource: prof.Source(),
			Features:      Features{N: n},
		}
		switch req.Algorithm {
		case NativeParallel:
			if req.Workers == 0 {
				// An unstated budget is scaled to the instance; an explicit
				// one is an instruction, not a hint.
				p.Workers = scaleWorkers(n, workerBudget(0, prof), prof)
			} else {
				p.Workers = par.Workers(req.Workers)
			}
		case ParallelPRAM, DoublingHash, DoublingSort:
			p.Workers = par.Workers(req.Workers)
		}
		return p, nil
	}

	ft := Probe(in)
	budget := workerBudget(req.Workers, prof)
	need := coresToBreakEven(n, prof)
	src := prof.Source()
	switch {
	case n < prof.MinParallelN:
		return Plan{
			Algorithm:     Linear,
			Workers:       1,
			ProfileSource: src,
			Reason: fmt.Sprintf("auto: n=%d below parallel crossover %d [%s profile]; sequential linear-time solver avoids goroutine fan-out",
				n, prof.MinParallelN, src),
			Features: ft,
		}, nil
	case budget < need:
		return Plan{
			Algorithm:     Linear,
			Workers:       1,
			ProfileSource: src,
			Reason: fmt.Sprintf("auto: worker budget %d under break-even ~log2(n)/%d = %d cores at n=%d [%s profile]; sequential linear-time solver",
				budget, prof.BreakEvenLogDivisor, need, n, src),
			Features: ft,
		}, nil
	default:
		w := scaleWorkers(n, budget, prof)
		return Plan{
			Algorithm:     NativeParallel,
			Workers:       w,
			ProfileSource: src,
			Reason: fmt.Sprintf("auto: n=%d at or above crossover %d and budget %d covers break-even %d cores [%s profile]; native-parallel with %d workers (~%d elements each)",
				n, prof.MinParallelN, budget, need, src, w, n/w),
			Features: ft,
		}, nil
	}
}

// MakeBatchPlan resolves one plan for a coalesced batch of instances
// using the process-wide active profile: the batch — not each member — is
// the planning unit, so N tiny requests pay for one resolution instead of
// N probes. Auto plans by the largest member (a batch of all-small
// instances runs one sequential linear pass per member under a shared
// scratch arena; if any member reaches the parallel crossover the whole
// batch gets the parallel plan that member needs); explicit algorithms
// are honored as in MakePlan, with workers resolved against the largest
// member. Features.N reports the batch's total elements. Plans are
// deterministic in (instances, request, profile).
func MakeBatchPlan(ins []coarsest.Instance, req Request) (Plan, error) {
	return MakeBatchPlanWithProfile(ins, req, ActiveProfile())
}

// MakeBatchPlanWithProfile is MakeBatchPlan against an explicit profile.
// A nil profile means the built-in defaults.
func MakeBatchPlanWithProfile(ins []coarsest.Instance, req Request, prof *calib.Profile) (Plan, error) {
	if prof == nil {
		prof = calib.Default()
	}
	if len(ins) == 0 {
		return Plan{}, fmt.Errorf("sfcp: empty batch")
	}
	maxN, totalN := 0, 0
	for _, in := range ins {
		n := len(in.F)
		totalN += n
		if n > maxN {
			maxN = n
		}
	}
	if req.Algorithm != Auto {
		largest := ins[0]
		for _, in := range ins[1:] {
			if len(in.F) > len(largest.F) {
				largest = in
			}
		}
		p, err := MakePlanWithProfile(largest, req, prof)
		if err != nil {
			return Plan{}, err
		}
		p.Reason = fmt.Sprintf("explicit %s request for coalesced batch of %d members (total n=%d)",
			req.Algorithm, len(ins), totalN)
		p.Features = Features{N: totalN}
		return p, nil
	}
	ft := Features{N: totalN}
	src := prof.Source()
	if maxN < prof.MinParallelN {
		return Plan{
			Algorithm:     Linear,
			Workers:       1,
			ProfileSource: src,
			Reason: fmt.Sprintf("auto: coalesced batch of %d members (max n=%d, total n=%d) below parallel crossover %d [%s profile]; one sequential linear pass per member under a shared scratch arena",
				len(ins), maxN, totalN, prof.MinParallelN, src),
			Features: ft,
		}, nil
	}
	budget := workerBudget(req.Workers, prof)
	need := coresToBreakEven(maxN, prof)
	if budget < need {
		return Plan{
			Algorithm:     Linear,
			Workers:       1,
			ProfileSource: src,
			Reason: fmt.Sprintf("auto: coalesced batch of %d members; worker budget %d under break-even %d cores at max n=%d [%s profile]; sequential linear-time solver",
				len(ins), budget, need, maxN, src),
			Features: ft,
		}, nil
	}
	w := scaleWorkers(maxN, budget, prof)
	return Plan{
		Algorithm:     NativeParallel,
		Workers:       w,
		ProfileSource: src,
		Reason: fmt.Sprintf("auto: coalesced batch of %d members with max n=%d at or above crossover %d [%s profile]; native-parallel with %d workers per member",
			len(ins), maxN, prof.MinParallelN, src, w),
		Features: ft,
	}, nil
}

// Run is the engine's front door: probe, plan, dispatch, with per-stage
// timings. The instance must already be validated; sc may be nil.
func Run(ctx context.Context, in coarsest.Instance, req Request, sc *coarsest.Scratch) (Outcome, error) {
	t0 := time.Now()
	plan, err := MakePlan(in, req)
	planDur := time.Since(t0)
	if err != nil {
		return Outcome{}, err
	}
	t1 := time.Now()
	labels, stats, err := Execute(ctx, in, plan, req.Seed, sc)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Labels:  labels,
		Stats:   stats,
		Plan:    plan,
		Timings: Timings{Plan: planDur, Solve: time.Since(t1)},
	}, nil
}
