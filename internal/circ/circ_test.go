package circ

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBruteMSPBasics(t *testing.T) {
	cases := []struct {
		s    []int
		want int
	}{
		{[]int{}, -1},
		{[]int{5}, 0},
		{[]int{2, 1}, 1},
		{[]int{1, 2}, 0},
		{[]int{3, 1, 2}, 1},
		{[]int{2, 2, 1, 2}, 2},
		{[]int{1, 1, 1}, 0},    // repeating: smallest index
		{[]int{2, 1, 2, 1}, 1}, // repeating: smallest index among {1,3}
		{[]int{1, 0, 1, 1}, 1},
	}
	for _, tc := range cases {
		if got := BruteMSP(tc.s); got != tc.want {
			t.Errorf("BruteMSP(%v) = %d, want %d", tc.s, got, tc.want)
		}
	}
}

func TestBoothAndDuvalAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(24)
		sigma := 1 + rng.Intn(4)
		s := make([]int, n)
		for i := range s {
			s[i] = rng.Intn(sigma)
		}
		want := BruteMSP(s)
		if got := BoothMSP(s); got != want {
			t.Fatalf("BoothMSP(%v) = %d, want %d", s, got, want)
		}
		if got := DuvalMSP(s); got != want {
			t.Fatalf("DuvalMSP(%v) = %d, want %d", s, got, want)
		}
	}
}

func TestBoothMSPLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 500 + rng.Intn(1000)
		s := make([]int, n)
		for i := range s {
			s[i] = rng.Intn(3)
		}
		if got, want := BoothMSP(s), DuvalMSP(s); got != want {
			t.Fatalf("n=%d: Booth=%d Duval=%d", n, got, want)
		}
	}
}

func TestMSPProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		s := make([]int, len(raw))
		for i, v := range raw {
			s[i] = int(v % 5)
		}
		want := BruteMSP(s)
		return BoothMSP(s) == want && DuvalMSP(s) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSmallestRepeatingPrefix(t *testing.T) {
	cases := []struct {
		s    []int
		want int
	}{
		{[]int{}, 0},
		{[]int{7}, 1},
		{[]int{1, 1, 1, 1}, 1},
		{[]int{1, 2, 1, 2}, 2},
		{[]int{1, 2, 3}, 3},
		{[]int{1, 2, 1}, 3}, // period 2 does not divide 3
		{[]int{1, 2, 1, 3, 1, 2, 1, 3}, 4},
		{[]int{1, 2, 1, 1, 2, 1}, 3},
	}
	for _, tc := range cases {
		if got := SmallestRepeatingPrefix(tc.s); got != tc.want {
			t.Errorf("SmallestRepeatingPrefix(%v) = %d, want %d", tc.s, got, tc.want)
		}
	}
}

func TestSmallestRepeatingPrefixPaperExample(t *testing.T) {
	// Example 3.1: B-label string of cycle C has smallest repeating prefix
	// (1,2,1,3) of length 4.
	bc := []int{1, 2, 1, 3, 1, 2, 1, 3, 1, 2, 1, 3}
	if got := SmallestRepeatingPrefix(bc); got != 4 {
		t.Fatalf("period = %d, want 4", got)
	}
}

func periodRef(s []int) int {
	n := len(s)
	for p := 1; p < n; p++ {
		if n%p != 0 {
			continue
		}
		ok := true
		for i := 0; i+p < n; i++ {
			if s[i] != s[i+p] {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
	if n == 0 {
		return 0
	}
	return n
}

func TestSmallestRepeatingPrefixProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		s := make([]int, len(raw))
		for i, v := range raw {
			s[i] = int(v % 3) // small alphabet encourages periodicity
		}
		return SmallestRepeatingPrefix(s) == periodRef(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIsRotationOf(t *testing.T) {
	if !IsRotationOf([]int{1, 2, 3}, []int{3, 1, 2}) {
		t.Error("rotations not detected")
	}
	if IsRotationOf([]int{1, 2, 3}, []int{1, 3, 2}) {
		t.Error("non-rotation accepted")
	}
	if IsRotationOf([]int{1, 2}, []int{1, 2, 3}) {
		t.Error("length mismatch accepted")
	}
	if !IsRotationOf(nil, nil) {
		t.Error("empty strings are rotations of each other")
	}
	if !IsRotationOf([]int{2, 1, 2, 1}, []int{1, 2, 1, 2}) {
		t.Error("repeating rotations not detected")
	}
}

func TestCanonical(t *testing.T) {
	got := Canonical([]int{3, 1, 2})
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Canonical = %v, want %v", got, want)
		}
	}
	if len(Canonical(nil)) != 0 {
		t.Fatal("Canonical(nil) should be empty")
	}
}
