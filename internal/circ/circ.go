// Package circ provides algorithms on circular strings: minimal starting
// point (m.s.p., the lexicographically least rotation) and smallest
// repeating prefix. These are the Section 3.1 subproblems of JáJá & Ryu,
// stated there as results of independent interest.
//
// Sequential algorithms (host-side, used as baselines and references):
//
//   - BruteMSP: O(n^2), the correctness oracle for tests.
//   - BoothMSP: Booth's failure-function algorithm, O(n) (cited as [5]).
//   - DuvalMSP: the three-pointer least-rotation algorithm in the style of
//     Shiloach's fast canonization (cited as [17]), O(n).
//   - SmallestRepeatingPrefix: KMP-based period computation, O(n).
//
// Parallel algorithms live in msp_pram.go.
package circ

// BruteMSP returns the minimal starting point of the circular string s by
// comparing all rotations pairwise in O(n^2) time. Among equivalent minimal
// rotations (repeating strings) it returns the smallest index.
func BruteMSP(s []int) int {
	n := len(s)
	if n == 0 {
		return -1
	}
	best := 0
	for j := 1; j < n; j++ {
		for l := 0; l < n; l++ {
			a, b := s[(j+l)%n], s[(best+l)%n]
			if a < b {
				best = j
				break
			}
			if a > b {
				break
			}
		}
	}
	return best
}

// BoothMSP returns the minimal starting point of s in O(n) time using
// Booth's least-rotation algorithm (a KMP failure function over the doubled
// string). Among equivalent minimal rotations it returns the smallest index.
func BoothMSP(s []int) int {
	n := len(s)
	if n == 0 {
		return -1
	}
	f := make([]int, 2*n)
	for i := range f {
		f[i] = -1
	}
	k := 0
	for j := 1; j < 2*n; j++ {
		sj := s[j%n]
		i := f[j-k-1]
		for i != -1 && sj != s[(k+i+1)%n] {
			if sj < s[(k+i+1)%n] {
				k = j - i - 1
			}
			i = f[i]
		}
		if i == -1 && sj != s[k%n] {
			if sj < s[k%n] {
				k = j
			}
			f[j-k] = -1
		} else {
			f[j-k] = i + 1
		}
	}
	return k % n
}

// DuvalMSP returns the minimal starting point of s in O(n) time with the
// classic two-candidate three-pointer scan. Among equivalent minimal
// rotations it returns the smallest index.
func DuvalMSP(s []int) int {
	n := len(s)
	if n == 0 {
		return -1
	}
	i, j, k := 0, 1, 0
	for i < n && j < n && k < n {
		a, b := s[(i+k)%n], s[(j+k)%n]
		if a == b {
			k++
			continue
		}
		if a > b {
			i += k + 1
		} else {
			j += k + 1
		}
		if i == j {
			j++
		}
		k = 0
	}
	if i < j {
		return i
	}
	return j
}

// SmallestRepeatingPrefix returns the length p of the shortest prefix P of
// s with P^(n/p) == s. For a primitive (nonrepeating) string it returns n.
// O(n) time via the KMP failure function.
func SmallestRepeatingPrefix(s []int) int {
	n := len(s)
	if n == 0 {
		return 0
	}
	fail := make([]int, n)
	for i := 1; i < n; i++ {
		j := fail[i-1]
		for j > 0 && s[i] != s[j] {
			j = fail[j-1]
		}
		if s[i] == s[j] {
			j++
		}
		fail[i] = j
	}
	p := n - fail[n-1]
	if n%p == 0 {
		return p
	}
	return n
}

// IsRotationOf reports whether circular strings a and b are cyclic shifts of
// one another, in O(n) time (canonical rotations compared).
func IsRotationOf(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	n := len(a)
	if n == 0 {
		return true
	}
	ia, ib := BoothMSP(a), BoothMSP(b)
	for l := 0; l < n; l++ {
		if a[(ia+l)%n] != b[(ib+l)%n] {
			return false
		}
	}
	return true
}

// Canonical returns the lexicographically least rotation of s as a new
// slice, the canonical form of the circular string.
func Canonical(s []int) []int {
	n := len(s)
	out := make([]int, n)
	if n == 0 {
		return out
	}
	j := BoothMSP(s)
	for l := 0; l < n; l++ {
		out[l] = s[(j+l)%n]
	}
	return out
}
