package circ

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sfcp/internal/intsort"
	"sfcp/internal/pram"
)

func newMachine() *pram.Machine { return pram.New(pram.ArbitraryCRCW) }

func TestPeriodPRAMBothModes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(48)
		s := make([]int, n)
		for i := range s {
			s[i] = rng.Intn(3)
		}
		want := SmallestRepeatingPrefix(s)
		for _, mode := range []PeriodMode{PeriodModeled, PeriodDivisors} {
			m := newMachine()
			c := m.NewArrayFromInts(s)
			if got := PeriodPRAM(m, c, mode); got != want {
				t.Fatalf("PeriodPRAM(%v, mode=%d) = %d, want %d", s, mode, got, want)
			}
		}
	}
}

func TestPeriodPRAMTrivial(t *testing.T) {
	m := newMachine()
	if got := PeriodPRAM(m, m.NewArray(0), PeriodDivisors); got != 0 {
		t.Fatalf("period of empty = %d", got)
	}
	if got := PeriodPRAM(m, m.NewArrayFromInts([]int{9}), PeriodDivisors); got != 1 {
		t.Fatalf("period of singleton = %d", got)
	}
}

// primitiveRandom returns a random nonrepeating circular string.
func primitiveRandom(rng *rand.Rand, n, sigma int) []int {
	for {
		s := make([]int, n)
		for i := range s {
			s[i] = rng.Intn(sigma)
		}
		if SmallestRepeatingPrefix(s) == n {
			return s
		}
	}
}

func TestSimpleMSPPRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(40)
		s := primitiveRandom(rng, n, 2+rng.Intn(3))
		m := newMachine()
		c := m.NewArrayFromInts(s)
		if got, want := SimpleMSPPRAM(m, c), BruteMSP(s); got != want {
			t.Fatalf("SimpleMSPPRAM(%v) = %d, want %d", s, got, want)
		}
	}
}

func TestSimpleMSPPRAMEdges(t *testing.T) {
	m := newMachine()
	if got := SimpleMSPPRAM(m, m.NewArray(0)); got != -1 {
		t.Fatalf("empty = %d", got)
	}
	if got := SimpleMSPPRAM(m, m.NewArrayFromInts([]int{3})); got != 0 {
		t.Fatalf("singleton = %d", got)
	}
	if got := SimpleMSPPRAM(m, m.NewArrayFromInts([]int{2, 1})); got != 1 {
		t.Fatalf("pair = %d", got)
	}
}

func TestSimpleMSPPRAMNonPowerOfTwo(t *testing.T) {
	// Lengths straddling powers of two.
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{3, 5, 7, 9, 15, 17, 31, 33, 63, 65, 100} {
		for trial := 0; trial < 5; trial++ {
			s := primitiveRandom(rng, n, 3)
			m := newMachine()
			c := m.NewArrayFromInts(s)
			if got, want := SimpleMSPPRAM(m, c), BruteMSP(s); got != want {
				t.Fatalf("n=%d: SimpleMSPPRAM(%v) = %d, want %d", n, s, got, want)
			}
		}
	}
}

func allOpts() []Options {
	var out []Options
	for _, pad := range []Pad{PadMin, PadBlank} {
		for _, strat := range []intsort.Strategy{intsort.Modeled, intsort.BitSplit} {
			out = append(out, Options{Sort: strat, Pad: pad})
		}
	}
	return out
}

func TestEfficientMSPPRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, opts := range allOpts() {
		for trial := 0; trial < 120; trial++ {
			n := 2 + rng.Intn(60)
			s := primitiveRandom(rng, n, 2+rng.Intn(4))
			m := newMachine()
			c := m.NewArrayFromInts(s)
			if got, want := EfficientMSPPRAM(m, c, opts), BruteMSP(s); got != want {
				t.Fatalf("opts=%+v: EfficientMSPPRAM(%v) = %d, want %d", opts, s, got, want)
			}
		}
	}
}

func TestEfficientMSPPRAMLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{128, 257, 512, 1000, 2048} {
		s := primitiveRandom(rng, n, 3)
		want := BoothMSP(s)
		for _, pad := range []Pad{PadMin, PadBlank} {
			m := newMachine()
			c := m.NewArrayFromInts(s)
			if got := EfficientMSPPRAM(m, c, Options{Pad: pad}); got != want {
				t.Fatalf("n=%d pad=%d: got %d, want %d", n, pad, got, want)
			}
		}
	}
}

func TestEfficientMSPPRAMAdversarial(t *testing.T) {
	// Strings with long runs of the minimum and heavy repetition pressure.
	cases := [][]int{
		{1, 1, 2, 1, 1, 1, 2, 2},             // runs of min
		{2, 1, 1, 1, 1, 1, 1, 1, 1, 3},       // almost-constant
		{1, 2, 1, 2, 1, 2, 1, 2, 1, 3},       // near-periodic
		{5, 4, 3, 2, 1, 2, 3, 4, 5, 6},       // valley
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 0},       // all distinct
		{0, 1, 0, 0, 1, 0, 1, 0, 0, 1, 0, 0}, // binary with min runs
	}
	for _, s := range cases {
		if SmallestRepeatingPrefix(s) != len(s) {
			t.Fatalf("test case %v is repeating; fix the case", s)
		}
		want := BruteMSP(s)
		for _, opts := range allOpts() {
			m := newMachine()
			c := m.NewArrayFromInts(s)
			if got := EfficientMSPPRAM(m, c, opts); got != want {
				t.Fatalf("opts=%+v s=%v: got %d, want %d", opts, s, got, want)
			}
		}
	}
}

func TestMSPPRAMHandlesRepeating(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 150; trial++ {
		// Build a repeating string: random primitive prefix repeated.
		p := 1 + rng.Intn(8)
		reps := 1 + rng.Intn(4)
		prefix := primitiveRandom(rng, p, 3)
		var s []int
		for r := 0; r < reps; r++ {
			s = append(s, prefix...)
		}
		want := BruteMSP(s)
		m := newMachine()
		c := m.NewArrayFromInts(s)
		if got := MSPPRAM(m, c, Options{}); got != want {
			t.Fatalf("MSPPRAM(%v) = %d, want %d", s, got, want)
		}
	}
}

func TestMSPPRAMProperty(t *testing.T) {
	f := func(raw []uint8, padPick bool) bool {
		if len(raw) == 0 {
			return true
		}
		s := make([]int, len(raw))
		for i, v := range raw {
			s[i] = int(v % 4)
		}
		pad := PadMin
		if padPick {
			pad = PadBlank
		}
		m := newMachine()
		c := m.NewArrayFromInts(s)
		return MSPPRAM(m, c, Options{Pad: pad}) == BruteMSP(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestEfficientReduceStepPaperExample34(t *testing.T) {
	// Example 3.4: one reduction of (3,2,1,3,2,3,4,3,1,2,3,4,2,1,1,1,3,2,2)
	// yields the circular string (7,3,6,9,2,8,4,1,3,5). Our implementation
	// rotates so the first marked position (original index 2) comes first,
	// so we expect the rotation (3,6,9,2,8,4,1,3,5,7) with matching starts.
	s := []int{3, 2, 1, 3, 2, 3, 4, 3, 1, 2, 3, 4, 2, 1, 1, 1, 3, 2, 2}
	m := newMachine()
	// Shift +1 as EfficientMSPPRAM does internally (blank pad headroom).
	shifted := make([]int, len(s))
	for i, v := range s {
		shifted[i] = v + 1
	}
	c := m.NewArrayFromInts(shifted)
	derived, starts, done, _ := EfficientReduceStep(m, c, Options{Pad: PadBlank})
	if done {
		t.Fatal("reduction decided m.s.p. prematurely")
	}
	wantDerived := []int{3, 6, 9, 2, 8, 4, 1, 3, 5, 7}
	wantStarts := []int{2, 4, 6, 8, 10, 12, 13, 15, 17, 0}
	if derived.Len() != len(wantDerived) {
		t.Fatalf("derived length = %d, want %d", derived.Len(), len(wantDerived))
	}
	gd, gs := derived.Ints(), starts.Ints()
	for i := range wantDerived {
		if gd[i] != wantDerived[i] {
			t.Fatalf("derived = %v, want %v (paper Example 3.4 rotated)", gd, wantDerived)
		}
		if gs[i] != wantStarts[i] {
			t.Fatalf("starts = %v, want %v", gs, wantStarts)
		}
	}
}

func TestEfficientShrinksByTwoThirds(t *testing.T) {
	// Lemma 3.6: derived length <= 2n/3.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(200)
		s := primitiveRandom(rng, n, 3)
		m := newMachine()
		c := m.NewArrayFromInts(s)
		derived, _, done, _ := EfficientReduceStep(m, c, Options{})
		if done {
			continue
		}
		if got, limit := derived.Len(), 2*n/3+1; got > limit {
			t.Fatalf("n=%d: derived length %d > 2n/3 = %d (s=%v)", n, got, limit, s)
		}
	}
}

func TestEfficientMSPWorkGrowsSlowerThanSimple(t *testing.T) {
	// Lemma 3.7 vs the simple algorithm: simple does Theta(n log n) work
	// while efficient does Theta(n log log n), so growing n by 8x must
	// inflate simple's work by a visibly larger factor (~8 * 15/12) than
	// efficient's (~8). Absolute crossover depends on constants and is
	// explored by experiment E3.
	rng := rand.New(rand.NewSource(10))
	measure := func(n int) (workSimple, workEff int64) {
		s := primitiveRandom(rng, n, 4)
		want := BoothMSP(s)

		mS := newMachine()
		cS := mS.NewArrayFromInts(s)
		mS.ResetStats()
		if got := SimpleMSPPRAM(mS, cS); got != want {
			t.Fatalf("n=%d: simple msp = %d, want %d", n, got, want)
		}
		workSimple = mS.Stats().Work

		mE := newMachine()
		cE := mE.NewArrayFromInts(s)
		mE.ResetStats()
		if got := EfficientMSPPRAM(mE, cE, Options{}); got != want {
			t.Fatalf("n=%d: efficient msp = %d, want %d", n, got, want)
		}
		workEff = mE.Stats().Work
		return workSimple, workEff
	}
	s12, e12 := measure(1 << 12)
	s15, e15 := measure(1 << 15)
	ratioSimple := float64(s15) / float64(s12)
	ratioEff := float64(e15) / float64(e12)
	if ratioSimple <= ratioEff {
		t.Errorf("simple work growth %.2f should exceed efficient growth %.2f over 8x input",
			ratioSimple, ratioEff)
	}
}
