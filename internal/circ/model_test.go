package circ

import (
	"math/rand"
	"testing"

	"sfcp/internal/pram"
)

// The paper states Algorithm simple m.s.p. runs on the COMMON CRCW PRAM
// ("finds the m.s.p. ... on the common CRCW PRAM"). Verify on a strict
// machine that rejects disagreeing concurrent writes.
func TestSimpleMSPRunsOnStrictCommonCRCW(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(50)
		s := primitiveRandom(rng, n, 3)
		m := pram.New(pram.CommonCRCW, pram.WithStrict())
		c := m.NewArrayFromInts(s)
		got := SimpleMSPPRAM(m, c)
		if err := m.Err(); err != nil {
			t.Fatalf("simple m.s.p. violated the Common CRCW model: %v", err)
		}
		if want := BruteMSP(s); got != want {
			t.Fatalf("wrong msp on strict common machine: %d vs %d", got, want)
		}
	}
}

// The efficient algorithm needs the Arbitrary model (its dictionary writes
// disagree); verify it is correct there under every seed.
func TestEfficientMSPSeedRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	s := primitiveRandom(rng, 300, 3)
	want := BruteMSP(s)
	for seed := uint64(1); seed <= 8; seed++ {
		m := pram.New(pram.ArbitraryCRCW, pram.WithSeed(seed))
		c := m.NewArrayFromInts(s)
		if got := EfficientMSPPRAM(m, c, Options{}); got != want {
			t.Fatalf("seed %d: msp = %d, want %d", seed, got, want)
		}
	}
}

// Priority CRCW is stronger than Arbitrary: everything must still work.
func TestMSPOnPriorityCRCW(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(80)
		s := primitiveRandom(rng, n, 4)
		m := pram.New(pram.PriorityCRCW)
		c := m.NewArrayFromInts(s)
		if got, want := EfficientMSPPRAM(m, c, Options{}), BruteMSP(s); got != want {
			t.Fatalf("priority model: msp = %d, want %d (s=%v)", got, want, s)
		}
	}
}
