package circ

import (
	"math/bits"

	"sfcp/internal/intsort"
	"sfcp/internal/pram"
)

// Pad selects the convention for padding the odd trailing element of a
// block when grouping into ordered pairs (Step 2 of Algorithm efficient
// m.s.p.).
type Pad uint8

const (
	// PadMin pads a trailing element c as the pair (c, m) where m is the
	// minimum symbol, exactly as the paper's Step 2 states.
	PadMin Pad = iota
	// PadBlank pads with a blank that precedes every symbol, the
	// convention of Algorithm "sorting strings" (and of the worked
	// Example 3.4, which sorts the singleton pair first among its group).
	PadBlank
)

// PeriodMode selects how PeriodPRAM computes the smallest repeating prefix.
type PeriodMode uint8

const (
	// PeriodModeled computes the period on the host with KMP and charges
	// the machine the published O(log n) time / O(n) operations of the
	// parallel string matching algorithms the paper cites ([6] Breslauer &
	// Galil, [20] Vishkin). See DESIGN.md substitutions.
	PeriodModeled PeriodMode = iota
	// PeriodDivisors runs a real step-by-step PRAM computation testing
	// every divisor d | n for cyclic-shift invariance in parallel:
	// O(1) rounds beyond a reduction and O(n·d(n)) work.
	PeriodDivisors
)

// Options configures the parallel circular-string algorithms.
type Options struct {
	// Sort is the integer-sorting strategy (default intsort.Modeled).
	Sort intsort.Strategy
	// Pad is the odd-block padding convention (default PadMin, the paper's).
	Pad Pad
	// Period selects the period subroutine (default PeriodModeled).
	Period PeriodMode
}

// PeriodPRAM returns the length of the smallest repeating prefix of the
// circular string held in c (see SmallestRepeatingPrefix).
func PeriodPRAM(m *pram.Machine, c *pram.Array, mode PeriodMode) int {
	n := c.Len()
	if n <= 1 {
		return n
	}
	switch mode {
	case PeriodModeled:
		p := SmallestRepeatingPrefix(c.Ints())
		m.ChargeModel(int64(bits.Len(uint(n))), int64(n))
		return p
	case PeriodDivisors:
		// d | n is a period iff s[i] == s[(i+d) mod n] for all i. Check
		// all divisors at once with common concurrent writes.
		var divs []int
		for d := 1; d*d <= n; d++ {
			if n%d == 0 {
				divs = append(divs, d)
				if d != n/d {
					divs = append(divs, n/d)
				}
			}
		}
		nd := len(divs)
		divArr := m.NewArrayFromInts(divs)
		viol := m.NewArray(nd)
		pram.Fill(m, viol, 0)
		m.ParDo(nd*n, func(ctx *pram.Ctx, p int) {
			di, l := p/n, p%n
			d := int(ctx.Read(divArr, di))
			if ctx.Read(c, l) != ctx.Read(c, (l+d)%n) {
				ctx.Write(viol, di, 1)
			}
		})
		best := n
		v := viol.Ints()
		for i, d := range divs {
			if v[i] == 0 && d < best {
				best = d
			}
		}
		return best
	default:
		panic("circ: unknown period mode")
	}
}

// SimpleMSPPRAM implements Algorithm "simple m.s.p." (Section 3.1): a
// knockout tournament over blocks of doubling size, where each round
// compares the two surviving candidates of sibling blocks over a window of
// the block size and applies the Lemma 3.3 tie-break (keep the earlier
// candidate). O(log n) rounds, O(n log n) work on the Common CRCW PRAM;
// the first mismatch of each duel is found in O(1) time with the segmented
// Fich–Ragde–Wigderson scheme.
//
// The input must be nonrepeating (primitive); use MSPPRAM for general
// strings.
func SimpleMSPPRAM(m *pram.Machine, c *pram.Array) int {
	n := c.Len()
	if n == 0 {
		return -1
	}
	if n == 1 {
		return 0
	}
	bigN := 1
	for bigN < n {
		bigN <<= 1
	}
	cand := m.NewArray(bigN)
	m.ParDo(bigN, func(ctx *pram.Ctx, p int) {
		if p < n {
			ctx.Write(cand, p, int64(p))
		} else {
			ctx.Write(cand, p, -1)
		}
	})
	for size := 1; size < bigN; size <<= 1 {
		nb := bigN / (2 * size)
		window := 2 * size // paper: strings of length 2^i in blocks of 2^i

		hasDuel := m.NewArray(nb)
		newCand := m.NewArray(nb)
		m.ParDo(nb, func(ctx *pram.Ctx, b int) {
			p, q := ctx.Read(cand, 2*b), ctx.Read(cand, 2*b+1)
			switch {
			case p == -1:
				ctx.Write(newCand, b, q)
				ctx.Write(hasDuel, b, 0)
			case q == -1:
				ctx.Write(newCand, b, p)
				ctx.Write(hasDuel, b, 0)
			default:
				ctx.Write(newCand, b, -2)
				ctx.Write(hasDuel, b, 1)
			}
		})
		duels := pram.CompactIndices(m, hasDuel)
		nDuels := duels.Len()
		if nDuels > 0 {
			diff := m.NewArray(nDuels * window)
			m.ParDo(nDuels*window, func(ctx *pram.Ctx, t int) {
				pi, l := t/window, t%window
				if l >= n {
					ctx.Write(diff, t, 0)
					return
				}
				b := int(ctx.Read(duels, pi))
				p := int(ctx.Read(cand, 2*b))
				q := int(ctx.Read(cand, 2*b+1))
				if ctx.Read(c, (p+l)%n) != ctx.Read(c, (q+l)%n) {
					ctx.Write(diff, t, 1)
				} else {
					ctx.Write(diff, t, 0)
				}
			})
			firstDiff := pram.SegmentedFirstOne(m, diff, window)
			m.ParDo(nDuels, func(ctx *pram.Ctx, pi int) {
				b := int(ctx.Read(duels, pi))
				p := int(ctx.Read(cand, 2*b))
				q := int(ctx.Read(cand, 2*b+1))
				fd := ctx.Read(firstDiff, pi)
				winner := p // tie: Lemma 3.3 keeps the earlier candidate
				if fd >= 0 {
					l := int(fd)
					if ctx.Read(c, (q+l)%n) < ctx.Read(c, (p+l)%n) {
						winner = q
					}
				}
				ctx.Write(newCand, b, int64(winner))
			})
		}
		cand = newCand
	}
	return int(cand.At(0))
}

// reduceState carries one level of the efficient-m.s.p. recursion: the
// current circular string, the map from its positions to starting positions
// in the original string, and an upper bound on its symbol values.
type reduceState struct {
	cur    *pram.Array
	origin *pram.Array
	maxVal int64
}

// EfficientReduceStep performs one iteration of Steps 1–3 of Algorithm
// "efficient m.s.p.": mark the first element of every maximal run of the
// minimum symbol, group each block into ordered pairs (padding per opts),
// sort the pairs, and replace them by their dense ranks (1-based). It
// returns the derived circular string, the positions each derived element
// starts at in cur, and whether the m.s.p. was already determined (one
// candidate), in which case mspIndex is its index in cur.
//
// Exported so tests and the experiment harness can replay the paper's
// worked Example 3.4 step by step.
func EfficientReduceStep(m *pram.Machine, cur *pram.Array, opts Options) (derived, starts *pram.Array, done bool, mspIndex int) {
	maxVal := pram.ReduceMax(m, cur)
	origin := m.NewArray(cur.Len())
	pram.Iota(m, origin, 0)
	st := reduceState{cur: cur, origin: origin, maxVal: maxVal}
	next, done, mspIndex := reduceOnce(m, st, opts)
	if done {
		return nil, nil, true, mspIndex
	}
	return next.cur, next.origin, false, -1
}

// reduceOnce runs one shrink iteration. When the m.s.p. is decided it
// returns done=true with the index in the ORIGINAL string (via origin).
func reduceOnce(m *pram.Machine, st reduceState, opts Options) (reduceState, bool, int) {
	cur, origin := st.cur, st.origin
	l := cur.Len()

	mn := pram.ReduceMin(m, cur)
	marked := m.NewArray(l)
	m.ParDo(l, func(ctx *pram.Ctx, p int) {
		prev := ctx.Read(cur, (p-1+l)%l)
		if ctx.Read(cur, p) == mn && prev != mn {
			ctx.Write(marked, p, 1)
		} else {
			ctx.Write(marked, p, 0)
		}
	})
	t := pram.ReduceSum(m, marked)
	if t == 0 {
		// Constant string: every rotation equal; the earliest origin wins.
		return st, true, int(pram.ReduceMin(m, origin))
	}
	if t == 1 {
		idx := pram.FirstOne(m, marked)
		return st, true, int(origin.At(idx))
	}

	// Rotate so position 0 is marked; all blocks are then contiguous.
	r0 := pram.FirstOne(m, marked)
	rot := m.NewArray(l)
	rorigin := m.NewArray(l)
	rmarked := m.NewArray(l)
	m.ParDo(l, func(ctx *pram.Ctx, p int) {
		src := (p + r0) % l
		ctx.Write(rot, p, ctx.Read(cur, src))
		ctx.Write(rorigin, p, ctx.Read(origin, src))
		ctx.Write(rmarked, p, ctx.Read(marked, src))
	})

	// Block decomposition: start[p] = nearest marked position <= p.
	markPos := m.NewArray(l)
	m.ParDo(l, func(ctx *pram.Ctx, p int) {
		if ctx.Read(rmarked, p) != 0 {
			ctx.Write(markPos, p, int64(p))
		} else {
			ctx.Write(markPos, p, -1)
		}
	})
	start := pram.InclusiveScanMax(m, markPos)

	// Pair heads sit at even offsets within their block.
	head := m.NewArray(l)
	second := m.NewArray(l)
	var padVal int64
	if opts.Pad == PadMin {
		padVal = mn
	} else {
		padVal = 0 // symbols are shifted to be >= 1 by callers
	}
	m.ParDo(l, func(ctx *pram.Ctx, p int) {
		off := int64(p) - ctx.Read(start, p)
		if off%2 != 0 {
			ctx.Write(head, p, 0)
			return
		}
		ctx.Write(head, p, 1)
		if p+1 < l && ctx.Read(start, p+1) == ctx.Read(start, p) {
			ctx.Write(second, p, ctx.Read(rot, p+1))
		} else {
			ctx.Write(second, p, padVal)
		}
	})
	firsts := pram.Compact(m, rot, head)
	seconds := pram.Compact(m, second, head)
	norigin := pram.Compact(m, rorigin, head)

	perm, packed := intsort.SortPairsPRAM(m, firsts, seconds, st.maxVal, opts.Sort)
	ranks, distinct := intsort.RankDistinct(m, packed, perm, 1)

	return reduceState{cur: ranks, origin: norigin, maxVal: distinct}, false, -1
}

// EfficientMSPPRAM implements Algorithm "efficient m.s.p." (Section 3.1):
// repeatedly shrink the string to at most 2/3 of its length by pairing and
// rank-renaming (Steps 1–4), then finish with the simple algorithm on the
// remaining <= n / log n symbols (Step 5). O(log n) time and O(n log log n)
// operations on the Arbitrary CRCW PRAM (Lemma 3.7).
//
// The input must be nonrepeating (primitive); use MSPPRAM for general
// strings. Symbols must be non-negative.
func EfficientMSPPRAM(m *pram.Machine, c *pram.Array, opts Options) int {
	n := c.Len()
	lg := bits.Len(uint(n))
	cutoff := 4
	if lg > 0 && n/lg > 4 {
		cutoff = n / lg
	}
	return EfficientMSPPRAMWithCutoff(m, c, opts, cutoff)
}

// EfficientMSPPRAMWithCutoff is EfficientMSPPRAM with an explicit switch
// point to the simple algorithm (Step 4's "until the length of the
// resulting string is at most n/log n"). Exposed for ablation A3: cutoff=0
// runs the pair-rank reduction to exhaustion, cutoff>=n skips it entirely
// and runs only Algorithm simple m.s.p.
func EfficientMSPPRAMWithCutoff(m *pram.Machine, c *pram.Array, opts Options, cutoff int) int {
	n := c.Len()
	if n == 0 {
		return -1
	}
	if n == 1 {
		return 0
	}
	if cutoff < 1 {
		cutoff = 1
	}

	// Shift symbols by +1 so 0 is free for the blank pad.
	cur := m.NewArray(n)
	m.ParDo(n, func(ctx *pram.Ctx, p int) {
		ctx.Write(cur, p, ctx.Read(c, p)+1)
	})
	origin := m.NewArray(n)
	pram.Iota(m, origin, 0)
	st := reduceState{cur: cur, origin: origin, maxVal: pram.ReduceMax(m, cur)}

	for st.cur.Len() > cutoff {
		next, done, idx := reduceOnce(m, st, opts)
		if done {
			return idx
		}
		st = next
	}
	idx := SimpleMSPPRAM(m, st.cur)
	return int(st.origin.At(idx))
}

// MSPPRAM returns the minimal starting point of an arbitrary circular
// string (repeating or not) with non-negative symbols: it first reduces the
// string to its smallest repeating prefix (whose m.s.p. is also an m.s.p.
// of the original, and the smallest-index one) and then runs the efficient
// algorithm. This is the complete Lemma 3.7 pipeline.
func MSPPRAM(m *pram.Machine, c *pram.Array, opts Options) int {
	n := c.Len()
	if n == 0 {
		return -1
	}
	p := PeriodPRAM(m, c, opts.Period)
	if p == n {
		return EfficientMSPPRAM(m, c, opts)
	}
	prefix := m.NewArray(p)
	m.ParDo(p, func(ctx *pram.Ctx, i int) {
		ctx.Write(prefix, i, ctx.Read(c, i))
	})
	return EfficientMSPPRAM(m, prefix, opts)
}
