package strsort

import (
	"sfcp/internal/pram"
)

// Parallel mergesort of strings — the Step 5 base case of Algorithm
// sorting strings. The paper invokes Cole's pipelined mergesort (O(log m)
// time, O(m log m) comparisons) and notes that "any two strings can be
// compared in O(1) time with linear work" on the Common CRCW PRAM. We
// substitute the simpler merge-path scheme: ceil(log2 m) rounds of pairwise
// run merging, where every element finds its rank in the opposite run by
// binary search over charged string comparisons. Same O(m log m)
// comparison count; time O(log^2 m) instead of O(log m) — the documented
// deviation in DESIGN.md.
//
// Strings live on the machine in flattened CSR form.

// csrStrings is the device-side representation of a string list.
type csrStrings struct {
	vals   *pram.Array // all symbols, concatenated
	starts *pram.Array // m+1 offsets
	m      int
}

// newCSR loads strs onto the machine.
func newCSR(m *pram.Machine, strs [][]int) csrStrings {
	total := 0
	for _, s := range strs {
		total += len(s)
	}
	vals := make([]int64, 0, total)
	starts := make([]int64, len(strs)+1)
	for i, s := range strs {
		starts[i] = int64(len(vals))
		for _, v := range s {
			vals = append(vals, int64(v))
		}
	}
	starts[len(strs)] = int64(len(vals))
	return csrStrings{vals: m.NewArrayFrom(vals), starts: m.NewArrayFrom(starts), m: len(strs)}
}

// compareCtx lexicographically compares strings i and j inside a step body,
// charging the inspected symbols (a real PRAM would use the constant-time
// segmented first-diff with linear processors; the charge matches).
func (cs csrStrings) compareCtx(c *pram.Ctx, i, j int) int {
	si, ei := c.Read(cs.starts, i), c.Read(cs.starts, i+1)
	sj, ej := c.Read(cs.starts, j), c.Read(cs.starts, j+1)
	li, lj := ei-si, ej-sj
	min := li
	if lj < min {
		min = lj
	}
	c.Charge(min + 1)
	for t := int64(0); t < min; t++ {
		a, b := c.Read(cs.vals, int(si+t)), c.Read(cs.vals, int(sj+t))
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
	}
	switch {
	case li < lj:
		return -1
	case li > lj:
		return 1
	}
	return 0
}

// MergeSortPRAM sorts the strings with genuine step-by-step parallel
// mergesort and returns the stable permutation. O(log^2 m) rounds,
// O(n log m) comparison work for total symbol count n.
func MergeSortPRAM(mach *pram.Machine, strs [][]int) []int {
	m := len(strs)
	if m == 0 {
		return nil
	}
	cs := newCSR(mach, strs)
	order := mach.NewArray(m)
	pram.Iota(mach, order, 0)

	// less folds the stability tiebreak (original index) into the order.
	less := func(c *pram.Ctx, a, b int64) bool {
		if cmp := cs.compareCtx(c, int(a), int(b)); cmp != 0 {
			return cmp < 0
		}
		return a < b
	}

	for width := 1; width < m; width <<= 1 {
		next := mach.NewArray(m)
		w := width
		mach.ParDo(m, func(c *pram.Ctx, p int) {
			blockStart := p / (2 * w) * (2 * w)
			mid := blockStart + w
			hi := blockStart + 2*w
			if mid > m {
				mid = m
			}
			if hi > m {
				hi = m
			}
			me := c.Read(order, p)
			// Partner run bounds.
			var start2, end2 int
			if p < mid {
				start2, end2 = mid, hi
			} else {
				start2, end2 = blockStart, mid
			}
			// Rank of me within the partner run: partner elements that
			// precede me in the total order.
			lo2, hi2 := start2, end2
			for lo2 < hi2 {
				probe := (lo2 + hi2) / 2
				if less(c, c.Read(order, probe), me) {
					lo2 = probe + 1
				} else {
					hi2 = probe
				}
			}
			count := lo2 - start2
			var pos int
			if p < mid {
				pos = blockStart + (p - blockStart) + count
			} else {
				pos = blockStart + (p - mid) + count
			}
			c.Write(next, pos, me)
		})
		order = next
	}
	out := make([]int, m)
	for i, v := range order.Ints() {
		out[i] = int(v)
	}
	return out
}
