// Package strsort sorts a list of variable-length strings over an integer
// alphabet lexicographically — Algorithm "sorting strings" of JáJá & Ryu
// (§3.1, Lemma 3.8): O(log n) time and O(n log log n) operations on the
// Arbitrary CRCW PRAM for m strings of total length n, improving the
// O(log^2 n / log log n)-time algorithm of Hagerup & Petersson.
//
// The algorithm repeatedly replaces every string by the string of ranks of
// its consecutive symbol pairs (odd tails padded with a blank # that
// precedes every symbol), shrinking the total symbol count by a constant
// factor per round while preserving relative order, until the list is small
// enough to finish with a comparison mergesort (Cole's algorithm in the
// paper; modeled here — see DESIGN.md).
package strsort

import (
	"math/bits"
	"sort"

	"sfcp/internal/intsort"
	"sfcp/internal/pram"
)

// Base selects the Step-5 base-case sorter.
type Base uint8

const (
	// BaseModeledCole charges Cole's published O(log m) time and O(n)
	// operations while sorting on the host (default; the paper cites Cole
	// as a black box).
	BaseModeledCole Base = iota
	// BaseMergeSort runs the real step-by-step merge-path mergesort
	// (O(log^2 m) rounds, O(n log m) comparison work) — no modeling.
	BaseMergeSort
)

// Options configures the parallel string sort.
type Options struct {
	// Sort selects the pair-sorting strategy (default intsort.Modeled).
	Sort intsort.Strategy
	// BaseCase selects the final sorter (default BaseModeledCole).
	BaseCase Base
}

// Compare returns -1, 0 or +1 for the lexicographic order of a and b
// (shorter strings precede their extensions).
func Compare(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// HostSort sorts the strings sequentially (stable) and returns the
// permutation perm with strs[perm[0]] <= strs[perm[1]] <= ... It is the
// O(n log m)-comparison baseline.
func HostSort(strs [][]int) []int {
	perm := make([]int, len(strs))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(x, y int) bool {
		return Compare(strs[perm[x]], strs[perm[y]]) < 0
	})
	return perm
}

// SortPRAM sorts the strings on machine m per Algorithm "sorting strings"
// and returns the stable permutation. Symbols must be non-negative.
func SortPRAM(mach *pram.Machine, strs [][]int, opts Options) []int {
	k := len(strs)
	if k == 0 {
		return nil
	}
	total := 0
	maxSym := 0
	for _, s := range strs {
		total += len(s)
		for _, v := range s {
			if v < 0 {
				panic("strsort: negative symbol")
			}
			if v > maxSym {
				maxSym = v
			}
		}
	}
	if total == 0 {
		// All strings empty: identity is the stable sorted order.
		perm := make([]int, k)
		for i := range perm {
			perm[i] = i
		}
		return perm
	}

	// Flatten (strings concatenated in index order; symbols shifted +1 so
	// 0 serves as the blank #).
	flatVals := make([]int64, 0, total)
	flatSid := make([]int64, 0, total)
	flatPos := make([]int64, 0, total)
	lens := make([]int64, k)
	for i, s := range strs {
		lens[i] = int64(len(s))
		for p, v := range s {
			flatVals = append(flatVals, int64(v+1))
			flatSid = append(flatSid, int64(i))
			flatPos = append(flatPos, int64(p))
		}
	}
	vals := mach.NewArrayFrom(flatVals)
	sid := mach.NewArrayFrom(flatSid)
	pos := mach.NewArrayFrom(flatPos)
	lenArr := mach.NewArrayFrom(lens)
	maxVal := int64(maxSym + 1)

	lg := bits.Len(uint(total))
	cutoff := total / lg
	if cutoff < 2 {
		cutoff = 2
	}

	for vals.Len() > cutoff {
		maxLen := pram.ReduceMax(mach, lenArr)
		if maxLen <= 1 {
			break
		}
		n := vals.Len()
		head := mach.NewArray(n)
		second := mach.NewArray(n)
		mach.ParDo(n, func(c *pram.Ctx, p int) {
			myPos := c.Read(pos, p)
			if myPos%2 != 0 {
				c.Write(head, p, 0)
				return
			}
			c.Write(head, p, 1)
			if myPos+1 < c.Read(lenArr, int(c.Read(sid, p))) {
				c.Write(second, p, c.Read(vals, p+1))
			} else {
				c.Write(second, p, 0) // blank #
			}
		})
		firsts := pram.Compact(mach, vals, head)
		seconds := pram.Compact(mach, second, head)
		newSid := pram.Compact(mach, sid, head)
		oldPos := pram.Compact(mach, pos, head)

		perm, packed := intsort.SortPairsPRAM(mach, firsts, seconds, maxVal, opts.Sort)
		ranks, distinct := intsort.RankDistinct(mach, packed, perm, 1)

		newPos := mach.NewArray(oldPos.Len())
		mach.ParDo(oldPos.Len(), func(c *pram.Ctx, p int) {
			c.Write(newPos, p, c.Read(oldPos, p)/2)
		})
		newLens := mach.NewArray(k)
		mach.ParDo(k, func(c *pram.Ctx, p int) {
			c.Write(newLens, p, (c.Read(lenArr, p)+1)/2)
		})
		vals, sid, pos, lenArr, maxVal = ranks, newSid, newPos, newLens, distinct
	}

	// Base case (Step 5): Cole's mergesort in the paper. Either modeled
	// (host sort charged O(log k) time and O(n + k log k) operations,
	// using the fact that two reduced strings compare in O(1) time with
	// linear work) or the real step-by-step merge-path mergesort.
	reduced := make([][]int, k)
	hSid := sid.Ints()
	hVals := vals.Ints()
	for i, s := range hVals {
		id := hSid[i]
		reduced[id] = append(reduced[id], s)
	}
	if opts.BaseCase == BaseMergeSort {
		return MergeSortPRAM(mach, reduced)
	}
	perm := HostSort(reduced)
	lgk := int64(bits.Len(uint(k)))
	mach.ChargeModel(2*lgk, int64(vals.Len())+int64(k)*lgk)
	return perm
}

// BatcherComparePRAM is the comparison-based parallel baseline: Batcher's
// odd-even mergesort network over the string ids, with every
// compare-exchange performing a full lexicographic comparison (charged by
// symbols actually inspected; the network needs O(log^2 m) stages). Ties
// break by string index, so the result equals the stable permutation.
func BatcherComparePRAM(mach *pram.Machine, strs [][]int) []int {
	k := len(strs)
	if k == 0 {
		return nil
	}
	np := 1
	for np < k {
		np <<= 1
	}
	order := mach.NewArray(np)
	mach.ParDo(np, func(c *pram.Ctx, p int) {
		if p < k {
			c.Write(order, p, int64(p))
		} else {
			c.Write(order, p, -1) // +infinity sentinel
		}
	})

	exchange := func(pairs [][2]int) {
		if len(pairs) == 0 {
			return
		}
		flat := make([]int64, 2*len(pairs))
		for i, pr := range pairs {
			flat[2*i] = int64(pr[0])
			flat[2*i+1] = int64(pr[1])
		}
		pairArr := mach.NewArrayFrom(flat)
		mach.ParDo(len(pairs), func(c *pram.Ctx, p int) {
			i := int(c.Read(pairArr, 2*p))
			j := int(c.Read(pairArr, 2*p+1))
			a, b := c.Read(order, i), c.Read(order, j)
			if a == -1 {
				// a is +inf: always out of order unless b is too.
				if b != -1 {
					c.Write(order, i, b)
					c.Write(order, j, a)
				}
				return
			}
			if b == -1 {
				return
			}
			sa, sb := strs[a], strs[b]
			inspected := len(sa)
			if len(sb) < inspected {
				inspected = len(sb)
			}
			c.Charge(int64(inspected) + 1)
			cmp := Compare(sa, sb)
			if cmp > 0 || (cmp == 0 && a > b) {
				c.Write(order, i, b)
				c.Write(order, j, a)
			}
		})
	}

	// Batcher odd-even mergesort stage generation.
	for p := 1; p < np; p <<= 1 {
		for q := p; q >= 1; q >>= 1 {
			var pairs [][2]int
			for j := q % p; j+q < np; j += 2 * q {
				for i := 0; i < q && i+j+q < np; i++ {
					if (i+j)/(2*p) == (i+j+q)/(2*p) {
						pairs = append(pairs, [2]int{i + j, i + j + q})
					}
				}
			}
			exchange(pairs)
		}
	}

	out := make([]int, 0, k)
	for _, v := range order.Ints() {
		if v >= 0 {
			out = append(out, v)
		}
	}
	return out
}
