package strsort

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sfcp/internal/intsort"
	"sfcp/internal/pram"
)

func newMachine() *pram.Machine { return pram.New(pram.ArbitraryCRCW) }

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{nil, nil, 0},
		{nil, []int{1}, -1},
		{[]int{1}, nil, 1},
		{[]int{1, 2}, []int{1, 2}, 0},
		{[]int{1, 2}, []int{1, 3}, -1},
		{[]int{2}, []int{1, 9}, 1},
		{[]int{1, 2}, []int{1, 2, 0}, -1},
	}
	for _, tc := range cases {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func checkSorted(t *testing.T, strs [][]int, perm []int, stable bool) {
	t.Helper()
	if len(perm) != len(strs) {
		t.Fatalf("perm length %d, want %d", len(perm), len(strs))
	}
	seen := make([]bool, len(strs))
	for _, p := range perm {
		if p < 0 || p >= len(strs) || seen[p] {
			t.Fatalf("perm %v is not a permutation", perm)
		}
		seen[p] = true
	}
	for i := 1; i < len(perm); i++ {
		cmp := Compare(strs[perm[i-1]], strs[perm[i]])
		if cmp > 0 {
			t.Fatalf("not sorted at %d: %v > %v", i, strs[perm[i-1]], strs[perm[i]])
		}
		if stable && cmp == 0 && perm[i-1] > perm[i] {
			t.Fatalf("not stable at %d: %d before %d", i, perm[i-1], perm[i])
		}
	}
}

func randomStrings(rng *rand.Rand, k, maxLen, sigma int) [][]int {
	strs := make([][]int, k)
	for i := range strs {
		l := rng.Intn(maxLen + 1)
		s := make([]int, l)
		for j := range s {
			s[j] = rng.Intn(sigma)
		}
		strs[i] = s
	}
	return strs
}

func TestHostSort(t *testing.T) {
	strs := [][]int{{2, 1}, {1}, {2}, {1, 0}, {}, {1}}
	perm := HostSort(strs)
	checkSorted(t, strs, perm, true)
	// Expected order: {}, {1}#1, {1}#5, {1,0}, {2}, {2,1}.
	want := []int{4, 1, 5, 3, 2, 0}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
}

func TestSortPRAMSmall(t *testing.T) {
	cases := [][][]int{
		{},
		{{}},
		{{1}},
		{{}, {}},
		{{2}, {1}},
		{{1, 2, 3}, {1, 2}, {1}},
		{{0, 0}, {0}, {0, 0, 0}},
		{{5, 4}, {5, 4}, {5, 3}},
	}
	for _, strs := range cases {
		m := newMachine()
		perm := SortPRAM(m, strs, Options{})
		checkSorted(t, strs, perm, true)
	}
}

func TestSortPRAMRandomAgainstHost(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 120; trial++ {
		k := 1 + rng.Intn(30)
		strs := randomStrings(rng, k, 12, 3)
		m := newMachine()
		perm := SortPRAM(m, strs, Options{})
		want := HostSort(strs)
		for i := range want {
			if perm[i] != want[i] {
				t.Fatalf("strs=%v: perm=%v want=%v", strs, perm, want)
			}
		}
	}
}

func TestSortPRAMAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	strs := randomStrings(rng, 40, 20, 4)
	want := HostSort(strs)
	for _, strat := range []intsort.Strategy{intsort.Modeled, intsort.BitSplit, intsort.Grouped} {
		m := newMachine()
		perm := SortPRAM(m, strs, Options{Sort: strat})
		for i := range want {
			if perm[i] != want[i] {
				t.Fatalf("strategy %v: wrong order", strat)
			}
		}
	}
}

func TestSortPRAMLongStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	strs := [][]int{}
	// A few very long strings sharing long prefixes.
	base := make([]int, 2000)
	for i := range base {
		base[i] = rng.Intn(2)
	}
	for trial := 0; trial < 6; trial++ {
		s := make([]int, len(base))
		copy(s, base)
		if trial > 0 {
			s[1500+trial*17] ^= 1
		}
		strs = append(strs, s)
	}
	m := newMachine()
	perm := SortPRAM(m, strs, Options{})
	checkSorted(t, strs, perm, true)
}

func TestSortPRAMSingleLongString(t *testing.T) {
	s := make([]int, 777)
	for i := range s {
		s[i] = i % 7
	}
	m := newMachine()
	perm := SortPRAM(m, [][]int{s}, Options{})
	if len(perm) != 1 || perm[0] != 0 {
		t.Fatalf("perm = %v", perm)
	}
}

func TestSortPRAMProperty(t *testing.T) {
	f := func(raw [][]byte) bool {
		strs := make([][]int, len(raw))
		for i, r := range raw {
			s := make([]int, len(r))
			for j, v := range r {
				s[j] = int(v % 8)
			}
			strs[i] = s
		}
		m := newMachine()
		perm := SortPRAM(m, strs, Options{})
		want := HostSort(strs)
		for i := range want {
			if perm[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBatcherComparePRAM(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(25)
		strs := randomStrings(rng, k, 10, 3)
		m := newMachine()
		perm := BatcherComparePRAM(m, strs)
		want := HostSort(strs)
		for i := range want {
			if perm[i] != want[i] {
				t.Fatalf("strs=%v: perm=%v want=%v", strs, perm, want)
			}
		}
	}
}

func TestBatcherEmpty(t *testing.T) {
	m := newMachine()
	if got := BatcherComparePRAM(m, nil); got != nil {
		t.Fatalf("empty batcher = %v", got)
	}
}

func TestSortPRAMWorkGrowsSlowerThanBatcher(t *testing.T) {
	// The paper's algorithm is O(n log log n) work; the comparison network
	// pays O(log^2 m) stages with real symbol inspections. Compare growth
	// over a 8x size increase.
	rng := rand.New(rand.NewSource(25))
	measure := func(k int) (int64, int64) {
		strs := randomStrings(rng, k, 16, 3)
		for i := range strs {
			if len(strs[i]) == 0 {
				strs[i] = []int{1}
			}
		}
		m1 := newMachine()
		m1.ResetStats()
		SortPRAM(m1, strs, Options{})
		m2 := newMachine()
		m2.ResetStats()
		BatcherComparePRAM(m2, strs)
		return m1.Stats().Work, m2.Stats().Work
	}
	ours512, batcher512 := measure(512)
	ours4k, batcher4k := measure(4096)
	ratioOurs := float64(ours4k) / float64(ours512)
	ratioBatcher := float64(batcher4k) / float64(batcher512)
	if ratioOurs >= ratioBatcher {
		t.Errorf("paper-sort growth %.2f should be below Batcher growth %.2f", ratioOurs, ratioBatcher)
	}
}

func TestSortPRAMLogarithmicRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	strs := randomStrings(rng, 2000, 12, 4)
	m := newMachine()
	m.ResetStats()
	SortPRAM(m, strs, Options{})
	// Note: the simulator's prefix sums are plain O(log n)-round trees, so
	// the measured total is O(log n * log log n) rounds, a log log factor
	// above the paper's bound (which assumes O(log n / log log n)-time CRCW
	// prefix sums). See EXPERIMENTS.md. This test only excludes gross
	// (polynomial) blowups.
	if r := m.Stats().Rounds; r > 1500 {
		t.Errorf("SortPRAM rounds = %d, want polylogarithmic", r)
	}
}
