package strsort

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sfcp/internal/intsort"
	"sfcp/internal/pram"
)

func TestMergeSortPRAMSmall(t *testing.T) {
	cases := [][][]int{
		{},
		{{1}},
		{{2}, {1}},
		{{1, 2}, {1}, {}},
		{{3}, {1}, {2}, {0}},
		{{1, 1}, {1, 1}, {1}},
		{{5, 4, 3}, {5, 4}, {5, 4, 2}, {5}},
	}
	for _, strs := range cases {
		m := newMachine()
		got := MergeSortPRAM(m, strs)
		want := HostSort(strs)
		if len(got) != len(want) {
			t.Fatalf("strs=%v: got %v, want %v", strs, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("strs=%v: got %v, want %v", strs, got, want)
			}
		}
	}
}

func TestMergeSortPRAMRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 80; trial++ {
		k := 1 + rng.Intn(40)
		strs := randomStrings(rng, k, 8, 3)
		m := newMachine()
		got := MergeSortPRAM(m, strs)
		want := HostSort(strs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("strs=%v: got %v, want %v", strs, got, want)
			}
		}
	}
}

func TestMergeSortPRAMNonPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for _, k := range []int{3, 5, 7, 9, 17, 33, 100} {
		strs := randomStrings(rng, k, 6, 2)
		m := newMachine()
		got := MergeSortPRAM(m, strs)
		want := HostSort(strs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: wrong order", k)
			}
		}
	}
}

func TestMergeSortPRAMStability(t *testing.T) {
	// All-equal strings must keep index order.
	strs := [][]int{{7, 7}, {7, 7}, {7, 7}, {7, 7}, {7, 7}}
	m := newMachine()
	got := MergeSortPRAM(m, strs)
	for i, v := range got {
		if v != i {
			t.Fatalf("unstable: %v", got)
		}
	}
}

func TestMergeSortPRAMProperty(t *testing.T) {
	f := func(raw [][]byte) bool {
		strs := make([][]int, len(raw))
		for i, r := range raw {
			s := make([]int, len(r))
			for j, v := range r {
				s[j] = int(v % 6)
			}
			strs[i] = s
		}
		m := newMachine()
		got := MergeSortPRAM(m, strs)
		want := HostSort(strs)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSortPRAMWithRealBase(t *testing.T) {
	// The full pipeline with the un-modeled base case: no ChargeModel from
	// Step 5 (pair sorting may still model Bhatt; use BitSplit to make the
	// whole run genuinely step-by-step).
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(25)
		strs := randomStrings(rng, k, 10, 3)
		m := newMachine()
		got := SortPRAM(m, strs, Options{Sort: intsort.BitSplit, BaseCase: BaseMergeSort})
		want := HostSort(strs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("strs=%v: got %v, want %v", strs, got, want)
			}
		}
	}
}

func TestMergeSortRoundsPolylog(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	strs := randomStrings(rng, 1024, 4, 3)
	m := pram.New(pram.ArbitraryCRCW)
	m.ResetStats()
	MergeSortPRAM(m, strs)
	if r := m.Stats().Rounds; r > 64 {
		t.Errorf("mergesort rounds = %d, want ~log^2(m)/... small", r)
	}
}
