package sfcp

import (
	"bytes"
	"testing"

	"sfcp/internal/codec"
)

// FuzzSolve cross-checks the paper's parallel algorithm against naive
// refinement on arbitrary byte-derived instances. Run longer with:
//
//	go test -fuzz=FuzzSolve -fuzztime 30s
func FuzzSolve(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{0, 1, 0, 1})
	f.Add([]byte{1, 0}, []byte{0, 0})
	f.Add([]byte{0}, []byte{5})
	f.Add([]byte{3, 3, 3, 3, 2, 1, 0, 7}, []byte{1, 1, 2, 2, 1, 1, 2, 2})
	f.Fuzz(func(t *testing.T, rawF, rawB []byte) {
		n := len(rawF)
		if n == 0 || n > 300 {
			return
		}
		ins := Instance{F: make([]int, n), B: make([]int, n)}
		for i := range rawF {
			ins.F[i] = int(rawF[i]) % n
			if i < len(rawB) {
				ins.B[i] = int(rawB[i] % 5)
			}
		}
		ref, err := SolveWith(ins, Options{Algorithm: AlgorithmMoore})
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{AlgorithmParallelPRAM, AlgorithmLinear, AlgorithmNativeParallel, AlgorithmHopcroft} {
			res, err := SolveWith(ins, Options{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			if !SamePartition(res.Labels, ref.Labels) {
				t.Fatalf("%v disagrees with moore on F=%v B=%v", alg, ins.F, ins.B)
			}
		}
	})
}

// FuzzResolveMatchesFullSolve drives an Incremental session through random
// edit bursts and demands labels byte-identical to a from-scratch solve of
// the edited instance after every burst — the incremental path's one
// correctness contract. Run longer with:
//
//	go test -fuzz=FuzzResolveMatchesFullSolve -fuzztime 30s
func FuzzResolveMatchesFullSolve(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{0, 1, 0, 1}, []byte{1, 0, 5, 2, 2, 3})
	f.Add([]byte{1, 0}, []byte{0, 0}, []byte{0, 1, 1})
	f.Add([]byte{3, 3, 3, 3, 2, 1, 0, 7}, []byte{1, 1, 2, 2, 1, 1, 2, 2}, []byte{7, 0, 0, 4, 1, 9, 2, 2, 1})
	f.Add([]byte{0}, []byte{5}, []byte{0, 2, 1})
	f.Fuzz(func(t *testing.T, rawF, rawB, rawEdits []byte) {
		n := len(rawF)
		if n == 0 || n > 300 || len(rawEdits) > 120 {
			return
		}
		ins := Instance{F: make([]int, n), B: make([]int, n)}
		for i := range rawF {
			ins.F[i] = int(rawF[i]) % n
			if i < len(rawB) {
				ins.B[i] = int(rawB[i] % 5)
			}
		}
		inc, err := NewIncremental(ins)
		if err != nil {
			t.Fatal(err)
		}
		// edited shadows the session's current version so every burst can be
		// cross-checked against a full solve of exactly that version.
		edited := Instance{F: append([]int{}, ins.F...), B: append([]int{}, ins.B...)}
		// Each triple of fuzz bytes is one edit: (node, which halves, value).
		var delta Delta
		flush := func() {
			if len(delta.Edits) == 0 {
				return
			}
			res, err := Resolve(inc, delta)
			if err != nil {
				t.Fatal(err)
			}
			full, err := SolveWith(edited, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.NumClasses != full.NumClasses {
				t.Fatalf("resolve found %d classes, full solve %d", res.NumClasses, full.NumClasses)
			}
			for i := range res.Labels {
				if res.Labels[i] != full.Labels[i] {
					t.Fatalf("labels[%d] = %d after delta, full solve says %d (F=%v B=%v)",
						i, res.Labels[i], full.Labels[i], edited.F, edited.B)
				}
			}
			delta.Edits = delta.Edits[:0]
		}
		for i := 0; i+2 < len(rawEdits); i += 3 {
			node := int(rawEdits[i]) % n
			kind := rawEdits[i+1] % 3
			val := int(rawEdits[i+2])
			e := Edit{Node: node}
			if kind != 1 { // F edit (alone or with B)
				fv := val % n
				e.F = &fv
				edited.F[node] = fv
			}
			if kind != 0 { // B edit (alone or with F)
				bv := val % 5
				e.B = &bv
				edited.B[node] = bv
			}
			delta.Edits = append(delta.Edits, e)
			// Burst boundary roughly every third edit, so one run exercises
			// both multi-edit batches and chained re-resolves.
			if len(delta.Edits) == 3 {
				flush()
			}
		}
		flush()
	})
}

// FuzzCodecRoundTrip checks the binary wire format is lossless and
// canonical: every instance decodes back identical and re-encodes to the
// exact same bytes, with a stable digest. Run longer with:
//
//	go test -fuzz=FuzzCodecRoundTrip -fuzztime 30s
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{0, 1, 0, 1})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0}, []byte{255})
	f.Add([]byte{200, 100, 0, 50}, []byte{9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, rawF, rawB []byte) {
		if len(rawF) > 1000 {
			return
		}
		ins := Instance{F: make([]int, len(rawF)), B: make([]int, len(rawF))}
		for i, v := range rawF {
			// Arbitrary non-negative values: the codec is agnostic to the
			// F-range invariant the solvers demand.
			ins.F[i] = int((uint64(v) << (uint(i) % 40)) & (uint64(^uint(0)) >> 1))
			if i < len(rawB) {
				ins.B[i] = int(rawB[i])
			}
		}
		var buf bytes.Buffer
		if err := ins.EncodeBinary(&buf); err != nil {
			t.Fatal(err)
		}
		encoded := buf.Bytes()
		if got, want := len(encoded), codec.EncodedSize(ins.F, ins.B); got != want {
			t.Fatalf("emitted %d bytes, EncodedSize says %d", got, want)
		}
		dec := codec.NewReader(bytes.NewReader(encoded))
		df, db, err := dec.Decode()
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		digest := dec.Digest()
		back := Instance{F: df, B: db}
		for i := range ins.F {
			if df[i] != ins.F[i] || db[i] != ins.B[i] {
				t.Fatalf("element %d: decoded (%d,%d), want (%d,%d)",
					i, df[i], db[i], ins.F[i], ins.B[i])
			}
		}
		var again bytes.Buffer
		if err := back.EncodeBinary(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(again.Bytes(), encoded) {
			t.Fatal("decoded-then-encoded bytes differ from the original encoding")
		}
		dec2 := codec.NewReader(bytes.NewReader(again.Bytes()))
		if _, _, err := dec2.Decode(); err != nil {
			t.Fatal(err)
		}
		if dec2.Digest() != digest {
			t.Fatalf("digest not stable: %s vs %s", dec2.Digest(), digest)
		}
	})
}

// FuzzCodecDecode feeds arbitrary bytes to the streaming decoder: malformed
// headers, truncated bodies and corrupt trailers must come back as errors,
// never panics or misdecodes — and anything that does decode must re-encode
// to exactly the bytes consumed.
func FuzzCodecDecode(f *testing.F) {
	var valid bytes.Buffer
	if err := (Instance{F: []int{1, 2, 0}, B: []int{0, 1, 0}}).EncodeBinary(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:5])
	f.Add([]byte("SFCP"))
	f.Add([]byte("SFCP\x01\x00\xff\xff\xff\xff\xff\xff\xff\xff\xff\x02"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		dec := codec.NewReaderSize(bytes.NewReader(raw), 128)
		dec.MaxN = 1 << 16 // keep hostile element counts cheap to reject
		df, db, err := dec.Decode()
		if err != nil {
			return
		}
		var again bytes.Buffer
		if err := (Instance{F: df, B: db}).EncodeBinary(&again); err != nil {
			t.Fatalf("re-encoding a decoded instance: %v", err)
		}
		size := codec.EncodedSize(df, db)
		if size > len(raw) || !bytes.Equal(again.Bytes(), raw[:size]) {
			t.Fatalf("accepted %d bytes that do not round-trip", size)
		}
	})
}

// FuzzMinimalRotation cross-checks the parallel m.s.p. against Booth's
// algorithm.
func FuzzMinimalRotation(f *testing.F) {
	f.Add([]byte{3, 1, 2})
	f.Add([]byte{1, 1, 1})
	f.Add([]byte{2, 1, 2, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 400 {
			return
		}
		s := make([]int, len(raw))
		for i, v := range raw {
			s[i] = int(v % 6)
		}
		want := MinimalRotation(s)
		got, _ := MinimalRotationPRAM(s)
		if got != want {
			t.Fatalf("MinimalRotationPRAM(%v) = %d, want %d", s, got, want)
		}
	})
}
