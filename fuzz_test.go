package sfcp

import (
	"testing"
)

// FuzzSolve cross-checks the paper's parallel algorithm against naive
// refinement on arbitrary byte-derived instances. Run longer with:
//
//	go test -fuzz=FuzzSolve -fuzztime 30s
func FuzzSolve(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{0, 1, 0, 1})
	f.Add([]byte{1, 0}, []byte{0, 0})
	f.Add([]byte{0}, []byte{5})
	f.Add([]byte{3, 3, 3, 3, 2, 1, 0, 7}, []byte{1, 1, 2, 2, 1, 1, 2, 2})
	f.Fuzz(func(t *testing.T, rawF, rawB []byte) {
		n := len(rawF)
		if n == 0 || n > 300 {
			return
		}
		ins := Instance{F: make([]int, n), B: make([]int, n)}
		for i := range rawF {
			ins.F[i] = int(rawF[i]) % n
			if i < len(rawB) {
				ins.B[i] = int(rawB[i] % 5)
			}
		}
		ref, err := SolveWith(ins, Options{Algorithm: AlgorithmMoore})
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{AlgorithmParallelPRAM, AlgorithmLinear, AlgorithmNativeParallel, AlgorithmHopcroft} {
			res, err := SolveWith(ins, Options{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			if !SamePartition(res.Labels, ref.Labels) {
				t.Fatalf("%v disagrees with moore on F=%v B=%v", alg, ins.F, ins.B)
			}
		}
	})
}

// FuzzMinimalRotation cross-checks the parallel m.s.p. against Booth's
// algorithm.
func FuzzMinimalRotation(f *testing.F) {
	f.Add([]byte{3, 1, 2})
	f.Add([]byte{1, 1, 1})
	f.Add([]byte{2, 1, 2, 1})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 400 {
			return
		}
		s := make([]int, len(raw))
		for i, v := range raw {
			s[i] = int(v % 6)
		}
		want := MinimalRotation(s)
		got, _ := MinimalRotationPRAM(s)
		if got != want {
			t.Fatalf("MinimalRotationPRAM(%v) = %d, want %d", s, got, want)
		}
	})
}
