package sfcp_test

import (
	"fmt"

	"sfcp"
)

// The paper's Example 2.2: a function whose graph is two cycles, with a
// three-block initial partition. The coarsest partition has four blocks.
func ExampleSolve() {
	// f in 0-based form (paper's A_f minus one).
	f := []int{1, 3, 5, 7, 9, 11, 0, 2, 4, 6, 8, 10, 13, 14, 15, 12}
	b := []int{1, 2, 1, 1, 2, 2, 3, 3, 1, 1, 3, 1, 1, 2, 1, 3}
	labels, err := sfcp.Solve(f, b)
	if err != nil {
		panic(err)
	}
	fmt.Println(labels)
	fmt.Println("classes:", sfcp.NumClasses(labels))
	// Output:
	// [0 1 0 2 1 1 3 3 0 2 3 2 0 1 2 3]
	// classes: 4
}

func ExampleSolveWith() {
	f := []int{1, 2, 0, 0, 3}
	b := []int{0, 1, 0, 1, 0}
	res, err := sfcp.SolveWith(sfcp.Instance{F: f, B: b},
		sfcp.Options{Algorithm: sfcp.AlgorithmParallelPRAM})
	if err != nil {
		panic(err)
	}
	fmt.Println("classes:", res.NumClasses)
	fmt.Println("simulated PRAM rounds > 0:", res.Stats.Rounds > 0)
	// Output:
	// classes: 5
	// simulated PRAM rounds > 0: true
}

func ExampleMinimalRotation() {
	fmt.Println(sfcp.MinimalRotation([]int{3, 1, 2, 3, 1, 1}))
	fmt.Println(sfcp.CanonicalRotation([]int{3, 1, 2}))
	// Output:
	// 4
	// [1 2 3]
}

func ExampleSortStrings() {
	strs := [][]int{{2, 1}, {1}, {1, 0}, {}}
	fmt.Println(sfcp.SortStrings(strs))
	// Output:
	// [3 1 2 0]
}
