package sfcp

import (
	"fmt"
	"sync"
	"time"

	"sfcp/internal/coarsest"
	"sfcp/internal/engine"
	"sfcp/internal/incr"
)

// Edit is one point mutation of an instance: retarget F[Node] and/or
// relabel B[Node]. A nil field leaves that half unchanged; an edit with
// both nil is rejected.
type Edit struct {
	Node int  `json:"node"`
	F    *int `json:"f,omitempty"`
	B    *int `json:"b,omitempty"`
}

// Delta is a batch of edits Resolve applies atomically: the dirty set is
// computed for the batch as a whole and the solve runs once.
type Delta struct {
	Edits []Edit `json:"edits"`
}

// Resolve modes reported in ResolveInfo.Mode and the
// sfcpd_resolve_total{mode=...} metric.
const (
	// ResolveModeIncremental recomputed only the dirty components.
	ResolveModeIncremental = engine.ResolveIncremental
	// ResolveModeFullFallback rebuilt the whole decomposition (dirty
	// fraction above the calibrated crossover, or code-space exhaustion).
	ResolveModeFullFallback = engine.ResolveFullFallback
)

// ResolveInfo explains how a delta was applied — the mutation-side
// counterpart of Result.Plan.
type ResolveInfo struct {
	// Mode is ResolveModeIncremental or ResolveModeFullFallback.
	Mode string `json:"mode"`
	// Reason is the planner's human-readable decision trace.
	Reason string `json:"reason"`
	// DirtyComponents and DirtyNodes size the region the delta
	// invalidated under the pre-edit decomposition; DirtyFrac is
	// DirtyNodes over the instance size.
	DirtyComponents int     `json:"dirty_components"`
	DirtyNodes      int     `json:"dirty_nodes"`
	DirtyFrac       float64 `json:"dirty_frac"`
	// Duration is the apply stage's wall clock.
	Duration time.Duration `json:"resolve_ns"`
}

// Incremental is a versioned solve session: the reusable decomposition
// state of one instance, advanced in place by Resolve. Labels at every
// version are byte-identical to a full solve of that version. Methods
// are safe for concurrent use; Resolve calls serialize.
type Incremental struct {
	mu sync.Mutex
	st *incr.State
}

// NewIncremental solves ins once and returns the session holding its
// decomposition state. The instance is copied.
func NewIncremental(ins Instance) (*Incremental, error) {
	st, err := engine.NewIncremental(coarsest.Instance{F: ins.F, B: ins.B})
	if err != nil {
		return nil, err
	}
	return &Incremental{st: st}, nil
}

// N returns the instance size.
func (inc *Incremental) N() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.st.N()
}

// Labels returns a copy of the current version's canonical labels.
func (inc *Incremental) Labels() []int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return append([]int{}, inc.st.Labels()...)
}

// NumClasses returns the current version's class count.
func (inc *Incremental) NumClasses() int {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	return inc.st.NumClasses()
}

// Instance returns a copy of the current (post-edit) instance — the
// version whose digest addresses this session's latest labels.
func (inc *Incremental) Instance() Instance {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	snap := inc.st.Snapshot()
	return Instance{F: snap.F, B: snap.B}
}

// Resolve applies a delta to the session and returns the refreshed
// result. The planner resolves between the component-scoped incremental
// path and a full re-solve from the delta's dirty fraction against the
// calibrated crossover (Result.Resolve reports the decision); either way
// the labels are byte-identical to a full solve of the edited instance.
// The session advances in place: after Resolve it describes the edited
// version (re-resolving an old version needs a session rebuilt from that
// version's instance).
func Resolve(prev *Incremental, delta Delta) (Result, error) {
	if prev == nil {
		return Result{}, fmt.Errorf("sfcp: Resolve on nil session")
	}
	edits, err := toIncrEdits(delta.Edits)
	if err != nil {
		return Result{}, err
	}
	prev.mu.Lock()
	defer prev.mu.Unlock()
	out, err := engine.ResolveDelta(prev.st, edits)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Labels:     append([]int{}, out.Labels...),
		NumClasses: out.NumClasses,
		Resolve: &ResolveInfo{
			Mode:            out.Plan.Mode,
			Reason:          out.Plan.Reason,
			DirtyComponents: out.Plan.DirtyComponents,
			DirtyNodes:      out.Plan.DirtyNodes,
			DirtyFrac:       out.Plan.DirtyFrac,
			Duration:        out.Duration,
		},
		Timings: Timings{Solve: out.Duration},
	}, nil
}

// toIncrEdits converts the public pointer-style edits to the solver's
// flag-style form, rejecting empty edits up front.
func toIncrEdits(edits []Edit) ([]incr.Edit, error) {
	out := make([]incr.Edit, len(edits))
	for i, e := range edits {
		if e.F == nil && e.B == nil {
			return nil, fmt.Errorf("sfcp: delta edit %d (node %d) sets neither F nor B", i, e.Node)
		}
		ie := incr.Edit{Node: e.Node}
		if e.F != nil {
			ie.SetF, ie.F = true, *e.F
		}
		if e.B != nil {
			ie.SetB, ie.B = true, *e.B
		}
		out[i] = ie
	}
	return out, nil
}
