package sfcp

// One testing.B benchmark per experiment of EXPERIMENTS.md. Wall-clock is
// host time of the simulation; for the PRAM algorithms the interesting
// quantities are the custom metrics rounds and work (ops), reported via
// b.ReportMetric. Run with:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"testing"

	"sfcp/internal/circ"
	"sfcp/internal/coarsest"
	"sfcp/internal/intsort"
	"sfcp/internal/listrank"
	"sfcp/internal/partition"
	"sfcp/internal/pram"
	"sfcp/internal/strsort"
	"sfcp/internal/workload"
)

const benchSeed = 1993

// BenchmarkPlannerAuto measures what the adaptive planner buys on
// below-crossover instances: AlgorithmAuto (resolved to the sequential
// linear solver) against the seed behavior of always running
// native-parallel. Regenerate the full sweep with `sfcpbench -exp A4`.
func BenchmarkPlannerAuto(b *testing.B) {
	wl := workload.RandomFunction(benchSeed, 1<<12, 3)
	ins := Instance{F: wl.F, B: wl.B}
	b.Run("auto-small", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveWith(ins, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("seed-native-parallel-small", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SolveWith(ins, Options{Algorithm: AlgorithmNativeParallel}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func reportPRAM(b *testing.B, stats pram.Stats, n int) {
	b.ReportMetric(float64(stats.Rounds), "rounds")
	b.ReportMetric(float64(stats.Work), "work")
	b.ReportMetric(float64(stats.Work)/float64(n), "work/n")
}

// BenchmarkE1ParallelTime regenerates experiment E1: parallel rounds of
// the full solver across sizes (Theorem 5.1, time bound).
func BenchmarkE1ParallelTime(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		wl := workload.RandomFunction(benchSeed, n, 3)
		ins := coarsest.Instance{F: wl.F, B: wl.B}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var stats pram.Stats
			for i := 0; i < b.N; i++ {
				stats = coarsest.ParallelPRAM(ins, coarsest.ParallelOptions{}).Stats
			}
			reportPRAM(b, stats, n)
		})
	}
}

// BenchmarkE2Work regenerates E2: operation counts (Theorem 5.1, work
// bound) on permutation inputs, the cycle-heavy regime.
func BenchmarkE2Work(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14} {
		wl := workload.RandomPermutation(benchSeed, n, 3)
		ins := coarsest.Instance{F: wl.F, B: wl.B}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var stats pram.Stats
			for i := 0; i < b.N; i++ {
				stats = coarsest.ParallelPRAM(ins, coarsest.ParallelOptions{}).Stats
			}
			reportPRAM(b, stats, n)
		})
	}
}

// BenchmarkE3MSP regenerates E3: the three m.s.p. algorithms (Lemma 3.7).
func BenchmarkE3MSP(b *testing.B) {
	n := 1 << 14
	s := workload.CircularString(benchSeed, n, 4)
	if circ.SmallestRepeatingPrefix(s) != n {
		s[0]++
	}
	b.Run("simple", func(b *testing.B) {
		var stats pram.Stats
		for i := 0; i < b.N; i++ {
			m := pram.New(pram.ArbitraryCRCW)
			c := m.NewArrayFromInts(s)
			m.ResetStats()
			circ.SimpleMSPPRAM(m, c)
			stats = m.Stats()
		}
		reportPRAM(b, stats, n)
	})
	b.Run("efficient", func(b *testing.B) {
		var stats pram.Stats
		for i := 0; i < b.N; i++ {
			m := pram.New(pram.ArbitraryCRCW)
			c := m.NewArrayFromInts(s)
			m.ResetStats()
			circ.EfficientMSPPRAM(m, c, circ.Options{})
			stats = m.Stats()
		}
		reportPRAM(b, stats, n)
	})
	b.Run("booth-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			circ.BoothMSP(s)
		}
	})
	b.Run("duval-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			circ.DuvalMSP(s)
		}
	})
}

// BenchmarkE4StringSort regenerates E4: Algorithm sorting strings vs the
// comparison network (Lemma 3.8).
func BenchmarkE4StringSort(b *testing.B) {
	n := 1 << 13
	strs := workload.StringList(benchSeed, n/16, n, 5)
	b.Run("paper", func(b *testing.B) {
		var stats pram.Stats
		for i := 0; i < b.N; i++ {
			m := pram.New(pram.ArbitraryCRCW)
			m.ResetStats()
			strsort.SortPRAM(m, strs, strsort.Options{})
			stats = m.Stats()
		}
		reportPRAM(b, stats, n)
	})
	b.Run("batcher", func(b *testing.B) {
		var stats pram.Stats
		for i := 0; i < b.N; i++ {
			m := pram.New(pram.ArbitraryCRCW)
			m.ResetStats()
			strsort.BatcherComparePRAM(m, strs)
			stats = m.Stats()
		}
		reportPRAM(b, stats, n)
	})
	b.Run("host", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			strsort.HostSort(strs)
		}
	})
}

// BenchmarkE5CyclePartition regenerates E5: Algorithm partition vs
// all-pairs across cycle counts (Lemma 3.11).
func BenchmarkE5CyclePartition(b *testing.B) {
	n := 1 << 12
	for _, k := range []int{16, 128, 1024} {
		l := n / k
		ins := workload.DistinctCycles(benchSeed, k, l, 3)
		b.Run(fmt.Sprintf("pairing/k=%d", k), func(b *testing.B) {
			var stats pram.Stats
			for i := 0; i < b.N; i++ {
				m := pram.New(pram.ArbitraryCRCW)
				a := m.NewArrayFromInts(ins.B)
				m.ResetStats()
				partition.PairingPRAM(m, a, k, l, intsort.Modeled)
				stats = m.Stats()
			}
			reportPRAM(b, stats, n)
		})
		b.Run(fmt.Sprintf("allpairs/k=%d", k), func(b *testing.B) {
			var stats pram.Stats
			for i := 0; i < b.N; i++ {
				m := pram.New(pram.ArbitraryCRCW)
				a := m.NewArrayFromInts(ins.B)
				m.ResetStats()
				partition.AllPairsPRAM(m, a, k, l, intsort.Modeled)
				stats = m.Stats()
			}
			reportPRAM(b, stats, n)
		})
	}
}

// BenchmarkE6TreeLabel regenerates E6: forest shapes (Lemma 4.3).
func BenchmarkE6TreeLabel(b *testing.B) {
	n := 1 << 12
	shapes := map[string]workload.Instance{
		"star":   workload.Star(benchSeed, n, 3),
		"random": workload.RandomFunction(benchSeed, n, 3),
		"broom":  workload.Broom(benchSeed, n, 16, 8),
		"chain":  workload.Broom(benchSeed, n, 4, 1),
	}
	for name, wl := range shapes {
		ins := coarsest.Instance{F: wl.F, B: wl.B}
		b.Run(name, func(b *testing.B) {
			var stats pram.Stats
			for i := 0; i < b.N; i++ {
				stats = coarsest.ParallelPRAM(ins, coarsest.ParallelOptions{}).Stats
			}
			reportPRAM(b, stats, n)
		})
	}
}

// BenchmarkE7AlgorithmComparison regenerates E7: the paper vs the prior
// parallel baselines vs the sequential solvers.
func BenchmarkE7AlgorithmComparison(b *testing.B) {
	n := 1 << 12
	wl := workload.RandomFunction(benchSeed, n, 3)
	ins := coarsest.Instance{F: wl.F, B: wl.B}
	b.Run("paper-pram", func(b *testing.B) {
		var stats pram.Stats
		for i := 0; i < b.N; i++ {
			stats = coarsest.ParallelPRAM(ins, coarsest.ParallelOptions{}).Stats
		}
		reportPRAM(b, stats, n)
	})
	b.Run("gi-shape", func(b *testing.B) {
		var stats pram.Stats
		for i := 0; i < b.N; i++ {
			stats = coarsest.DoublingHashPRAM(ins, coarsest.ParallelOptions{}).Stats
		}
		reportPRAM(b, stats, n)
	})
	b.Run("srikant-shape", func(b *testing.B) {
		var stats pram.Stats
		for i := 0; i < b.N; i++ {
			stats = coarsest.DoublingSortPRAM(ins, coarsest.ParallelOptions{}).Stats
		}
		reportPRAM(b, stats, n)
	})
	b.Run("moore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coarsest.Moore(ins)
		}
	})
	b.Run("hopcroft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coarsest.Hopcroft(ins)
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coarsest.LinearSequential(ins)
		}
	})
}

// BenchmarkE8Speedup regenerates E8: native goroutine solver wall-clock
// across worker counts vs the sequential linear algorithm.
func BenchmarkE8Speedup(b *testing.B) {
	n := 1 << 18
	wl := workload.RandomFunction(benchSeed, n, 3)
	ins := coarsest.Instance{F: wl.F, B: wl.B}
	b.Run("linear-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coarsest.LinearSequential(ins)
		}
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("native/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				coarsest.NativeParallel(ins, w)
			}
		})
	}
}

// BenchmarkE10BBMemory regenerates E10: cells of the literal BB table vs
// the dictionary (Remark §3.2).
func BenchmarkE10BBMemory(b *testing.B) {
	k, l := 64, 8
	ins := workload.DistinctCycles(benchSeed, k, l, 3)
	b.Run("bbtable", func(b *testing.B) {
		var cells int64
		for i := 0; i < b.N; i++ {
			m := pram.New(pram.ArbitraryCRCW)
			a := m.NewArrayFromInts(ins.B)
			m.ResetStats()
			partition.BBTablePRAM(m, a, k, l, intsort.Modeled)
			cells = m.Stats().Cells
		}
		b.ReportMetric(float64(cells), "cells")
	})
	b.Run("dictionary", func(b *testing.B) {
		var cells int64
		for i := 0; i < b.N; i++ {
			m := pram.New(pram.ArbitraryCRCW)
			a := m.NewArrayFromInts(ins.B)
			m.ResetStats()
			partition.PairingPRAM(m, a, k, l, intsort.Modeled)
			cells = m.Stats().Cells
		}
		b.ReportMetric(float64(cells), "cells")
	})
}

// BenchmarkA1RadixWidth regenerates ablation A1: integer sorting
// strategies.
func BenchmarkA1RadixWidth(b *testing.B) {
	n := 1 << 13
	raw := workload.CircularString(benchSeed, n, n)
	keys := make([]int64, n)
	for i, v := range raw {
		keys[i] = int64(v)
	}
	for _, strat := range []intsort.Strategy{intsort.Modeled, intsort.BitSplit, intsort.Grouped} {
		b.Run(strat.String(), func(b *testing.B) {
			var stats pram.Stats
			for i := 0; i < b.N; i++ {
				m := pram.New(pram.ArbitraryCRCW)
				a := m.NewArrayFrom(keys)
				m.ResetStats()
				intsort.SortPRAM(m, a, int64(n), strat)
				stats = m.Stats()
			}
			reportPRAM(b, stats, n)
		})
	}
}

// BenchmarkA2ListRank regenerates ablation A2: Wyllie vs ruling set.
func BenchmarkA2ListRank(b *testing.B) {
	n := 1 << 14
	next := make([]int, n)
	for i := range next {
		next[i] = (i + 1) % n
	}
	for _, method := range []listrank.Method{listrank.Wyllie, listrank.RulingSet} {
		b.Run(method.String(), func(b *testing.B) {
			var stats pram.Stats
			for i := 0; i < b.N; i++ {
				m := pram.New(pram.ArbitraryCRCW)
				a := m.NewArrayFromInts(next)
				m.ResetStats()
				listrank.CycleRank(m, a, method)
				stats = m.Stats()
			}
			reportPRAM(b, stats, n)
		})
	}
}

// BenchmarkA3Cutoff regenerates ablation A3: the Step-4 switch point.
func BenchmarkA3Cutoff(b *testing.B) {
	n := 1 << 13
	s := workload.CircularString(benchSeed, n, 4)
	if circ.SmallestRepeatingPrefix(s) != n {
		s[0]++
	}
	for _, co := range []struct {
		name string
		val  int
	}{{"simple-only", n}, {"paper-n-over-logn", n / 13}, {"exhaustive", 1}} {
		b.Run(co.name, func(b *testing.B) {
			var stats pram.Stats
			for i := 0; i < b.N; i++ {
				m := pram.New(pram.ArbitraryCRCW)
				c := m.NewArrayFromInts(s)
				m.ResetStats()
				circ.EfficientMSPPRAMWithCutoff(m, c, circ.Options{}, co.val)
				stats = m.Stats()
			}
			reportPRAM(b, stats, n)
		})
	}
}

// BenchmarkSolveFacade measures the public API end to end.
func BenchmarkSolveFacade(b *testing.B) {
	n := 1 << 16
	wl := workload.RandomFunction(benchSeed, n, 3)
	b.Run("auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Solve(wl.F, wl.B); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkInstanceDigest measures content-addressing throughput — the
// fixed cost every cache-hit request pays before it can be served.
func BenchmarkInstanceDigest(b *testing.B) {
	n := 1 << 18
	wl := workload.RandomFunction(benchSeed, n, 3)
	ins := Instance{F: wl.F, B: wl.B}
	b.ReportAllocs()
	b.SetBytes(int64(2 * n * 8))
	for i := 0; i < b.N; i++ {
		ins.Digest()
	}
}
