package sfcp

import (
	"math/rand"
	"testing"
)

func paperInstance() (Instance, []int) {
	af := []int{2, 4, 6, 8, 10, 12, 1, 3, 5, 7, 9, 11, 14, 15, 16, 13}
	ab := []int{1, 2, 1, 1, 2, 2, 3, 3, 1, 1, 3, 1, 1, 2, 1, 3}
	aq := []int{1, 2, 1, 3, 2, 2, 4, 4, 1, 3, 4, 3, 1, 2, 3, 4}
	f := make([]int, 16)
	for i, v := range af {
		f[i] = v - 1
	}
	return Instance{F: f, B: ab}, aq
}

func TestSolveDefault(t *testing.T) {
	ins, aq := paperInstance()
	labels, err := Solve(ins.F, ins.B)
	if err != nil {
		t.Fatal(err)
	}
	if !SamePartition(labels, aq) {
		t.Fatalf("Solve = %v, want partition of %v", labels, aq)
	}
}

func TestSolveWithEveryAlgorithm(t *testing.T) {
	ins, aq := paperInstance()
	algos := []Algorithm{
		AlgorithmAuto, AlgorithmMoore, AlgorithmHopcroft, AlgorithmLinear,
		AlgorithmParallelPRAM, AlgorithmNativeParallel,
		AlgorithmDoublingHash, AlgorithmDoublingSort,
	}
	for _, alg := range algos {
		res, err := SolveWith(ins, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if !SamePartition(res.Labels, aq) {
			t.Errorf("%v: wrong partition", alg)
		}
		if res.NumClasses != 4 {
			t.Errorf("%v: NumClasses = %d, want 4", alg, res.NumClasses)
		}
		isPRAM := alg == AlgorithmParallelPRAM || alg == AlgorithmDoublingHash || alg == AlgorithmDoublingSort
		if isPRAM && res.Stats == nil {
			t.Errorf("%v: missing PRAM stats", alg)
		}
		if !isPRAM && res.Stats != nil {
			t.Errorf("%v: unexpected stats", alg)
		}
	}
}

func TestSolveWithValidation(t *testing.T) {
	if _, err := SolveWith(Instance{F: []int{5}, B: []int{0}}, Options{}); err == nil {
		t.Error("out-of-range F accepted")
	}
	if _, err := SolveWith(Instance{F: []int{0}, B: []int{0, 1}}, Options{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SolveWith(Instance{F: []int{0}, B: []int{0}}, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		AlgorithmAuto: "auto", AlgorithmMoore: "moore", AlgorithmHopcroft: "hopcroft",
		AlgorithmLinear: "linear", AlgorithmParallelPRAM: "parallel-pram",
		AlgorithmNativeParallel: "native-parallel", AlgorithmDoublingHash: "doubling-hash",
		AlgorithmDoublingSort: "doubling-sort",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestMinimalRotation(t *testing.T) {
	if got := MinimalRotation([]int{3, 1, 2}); got != 1 {
		t.Errorf("MinimalRotation = %d, want 1", got)
	}
	if got := MinimalRotation(nil); got != -1 {
		t.Errorf("MinimalRotation(nil) = %d, want -1", got)
	}
	idx, stats := MinimalRotationPRAM([]int{3, 1, 2, 3, 1, 1})
	if idx != 4 {
		t.Errorf("MinimalRotationPRAM = %d, want 4", idx)
	}
	if stats.Work == 0 {
		t.Error("MinimalRotationPRAM reported no work")
	}
}

func TestCanonicalRotationAndPeriod(t *testing.T) {
	got := CanonicalRotation([]int{2, 3, 1})
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CanonicalRotation = %v", got)
		}
	}
	if p := SmallestRepeatingPrefix([]int{1, 2, 1, 2}); p != 2 {
		t.Errorf("period = %d, want 2", p)
	}
	if !IsRotationOf([]int{1, 2, 3}, []int{2, 3, 1}) {
		t.Error("IsRotationOf failed")
	}
}

func TestSortStringsFacade(t *testing.T) {
	strs := [][]int{{2, 1}, {1}, {1, 0}}
	want := []int{1, 2, 0}
	got := SortStrings(strs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortStrings = %v, want %v", got, want)
		}
	}
	gotP, stats := SortStringsPRAM(strs)
	for i := range want {
		if gotP[i] != want[i] {
			t.Fatalf("SortStringsPRAM = %v, want %v", gotP, want)
		}
	}
	if stats.Rounds == 0 {
		t.Error("SortStringsPRAM reported no rounds")
	}
}

func TestSolversAgreeRandomFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(80)
		f := make([]int, n)
		b := make([]int, n)
		for i := range f {
			f[i] = rng.Intn(n)
			b[i] = rng.Intn(3)
		}
		ins := Instance{F: f, B: b}
		ref, err := SolveWith(ins, Options{Algorithm: AlgorithmMoore})
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{AlgorithmLinear, AlgorithmParallelPRAM, AlgorithmNativeParallel} {
			res, err := SolveWith(ins, Options{Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			if !SamePartition(res.Labels, ref.Labels) {
				t.Fatalf("%v disagrees with moore on n=%d", alg, n)
			}
		}
	}
}
