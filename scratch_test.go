package sfcp_test

import (
	"sync"
	"testing"

	"sfcp"
	"sfcp/internal/workload"
)

// TestSolveLabelsNeverAliasScratch is the regression guard for the
// scratch-arena contract: the labels a Solver returns must be freshly
// allocated, never a view into the pooled coarsest.Scratch — otherwise the
// next solve that checks the same arena out of the sync.Pool would
// overwrite a result a previous caller still holds. The test snapshots one
// solve's labels, then hammers the same solver from many goroutines (so
// the arena is Put, re-Got and rewritten concurrently) and checks the
// snapshot never changes. Run under -race this also catches witnessed
// writes into retained memory.
func TestSolveLabelsNeverAliasScratch(t *testing.T) {
	s := sfcp.NewSolver(sfcp.Options{Algorithm: sfcp.AlgorithmNativeParallel, Workers: 2})
	held := wl(workload.RandomFunction(1, 3000, 4))
	res, err := s.Solve(held)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([]int, len(res.Labels))
	copy(snapshot, res.Labels)

	// Different sizes and shapes force the reused arena buffers through
	// regrowth and full rewrites.
	others := []sfcp.Instance{
		wl(workload.RandomFunction(2, 5000, 3)),
		wl(workload.CycleFamily(3, 4, 100, 7)),
		wl(workload.Broom(4, 2000, 50, 6)),
		wl(workload.Star(5, 800, 2)),
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ins := others[(g+i)%len(others)]
				if _, err := s.Solve(ins); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	for i := range snapshot {
		if res.Labels[i] != snapshot[i] {
			t.Fatalf("labels[%d] changed from %d to %d after concurrent solves: result aliases the pooled scratch arena",
				i, snapshot[i], res.Labels[i])
		}
	}

	// The same contract holds for batch members.
	batch := []sfcp.Instance{held, others[0], held}
	results, err := s.SolveBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	kept := make([]int, len(results[0].Labels))
	copy(kept, results[0].Labels)
	for i := 0; i < 30; i++ {
		if _, err := s.Solve(others[i%len(others)]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range kept {
		if results[0].Labels[i] != kept[i] {
			t.Fatalf("batch labels[%d] mutated by later solves", i)
		}
	}
}
