package sfcp

import (
	"sfcp/internal/calib"
	"sfcp/internal/engine"
)

// CalibrationProfile is a fitted set of planner thresholds: the parallel
// crossover size, the break-even core model, the per-worker grain and the
// measured useful-worker cap, stamped with the fingerprint of the host
// that fitted them. The zero value is unusable — obtain one from
// DefaultCalibrationProfile, LoadCalibrationProfile, or a
// `sfcpbench -calibrate` run.
type CalibrationProfile = calib.Profile

// DefaultCalibrationProfile returns the built-in planner thresholds
// (the zero-config fallback), stamped with this host's fingerprint.
func DefaultCalibrationProfile() *CalibrationProfile {
	return calib.Default()
}

// LoadCalibrationProfile reads and validates a persisted profile. A
// corrupt, unknown-field, or version-skewed file is an error — callers
// that must never fail on a bad profile should fall back to
// DefaultCalibrationProfile.
func LoadCalibrationProfile(path string) (*CalibrationProfile, error) {
	return calib.Load(path)
}

// SetCalibrationProfile installs the profile the adaptive planner
// consults process-wide for Solve, SolveWith, PlanWith and PlanBatch.
// Nil reverts to the built-in defaults. Plan.Reason and
// Plan.ProfileSource report which source steered each decision.
func SetCalibrationProfile(p *CalibrationProfile) {
	engine.SetProfile(p)
}

// ActiveCalibrationProfile returns the profile the planner is currently
// consulting; never nil.
func ActiveCalibrationProfile() *CalibrationProfile {
	return engine.ActiveProfile()
}
