// Quickstart: solve the paper's own instance (Example 2.2 / Fig. 1 of
// JáJá & Ryu) with the public API and compare every solver.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sfcp"
)

func main() {
	// Example 2.2, converted to 0-based indexing. The graph (Fig. 1) is
	// two cycles: C = (1 2 4 8 3 6 12 11 9 5 10 7) of length 12 and
	// D = (13 14 15 16) of length 4 (paper numbering).
	af := []int{2, 4, 6, 8, 10, 12, 1, 3, 5, 7, 9, 11, 14, 15, 16, 13}
	ab := []int{1, 2, 1, 1, 2, 2, 3, 3, 1, 1, 3, 1, 1, 2, 1, 3}
	f := make([]int, len(af))
	for i, v := range af {
		f[i] = v - 1
	}

	labels, err := sfcp.Solve(f, ab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("input f (1-based):", af)
	fmt.Println("input B labels:   ", ab)
	fmt.Println("coarsest partition labels:", labels)
	fmt.Println("number of classes:", sfcp.NumClasses(labels))

	// Every solver must produce the same partition; the PRAM solver also
	// reports the complexity counters of Theorem 5.1.
	for _, alg := range []sfcp.Algorithm{
		sfcp.AlgorithmMoore, sfcp.AlgorithmHopcroft, sfcp.AlgorithmLinear,
		sfcp.AlgorithmParallelPRAM, sfcp.AlgorithmNativeParallel,
	} {
		res, err := sfcp.SolveWith(sfcp.Instance{F: f, B: ab}, sfcp.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("%-16s -> %d classes, agrees=%v",
			alg, res.NumClasses, sfcp.SamePartition(res.Labels, labels))
		if res.Stats != nil {
			line += fmt.Sprintf(" (PRAM: %d rounds, %d operations)", res.Stats.Rounds, res.Stats.Work)
		}
		fmt.Println(line)
	}
}
