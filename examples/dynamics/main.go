// dynamics analyses a finite deterministic dynamical system: a map
// f: S -> S iterated from every state, with a coarse observation of each
// state. The coarsest partition groups states that are observationally
// indistinguishable under every number of steps — the exact notion of
// "probabilistic-free lumping" for deterministic chains, and the 0-player
// case of bisimulation minimization.
//
// The system here is an affine congruential map x -> (a*x + c) mod n with
// the observation "which quarter of the space x lies in". The example
// reports the pseudo-forest statistics that drive the paper's algorithm
// (cycle structure, tail depths), shows the PRAM cost scaling over two
// sizes, and then treats the system as a *live* one: a session of point
// mutations (re-observed states, rewired transitions) applied through the
// incremental re-solve API, each answered without re-solving the clean
// part of the space.
//
//	go run ./examples/dynamics
//
// With a running sfcpd, the same session can be driven over HTTP through
// the versioned-instance endpoints (each version is content-addressed by
// its instance digest):
//
//	go run ./cmd/sfcpd -addr localhost:8080 &
//	go run ./examples/dynamics -server http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"sfcp"
)

func analyse(n, a, c int) {
	f, b := affine(n, a, c)

	// Structure: count cycle states and the longest transient tail.
	onCycle := cycleStates(f)
	cycleCount := 0
	for _, v := range onCycle {
		if v {
			cycleCount++
		}
	}
	maxTail := 0
	for x := 0; x < n; x++ {
		d, y := 0, x
		for !onCycle[y] {
			y = f[y]
			d++
		}
		if d > maxTail {
			maxTail = d
		}
	}

	res, err := sfcp.SolveWith(sfcp.Instance{F: f, B: b},
		sfcp.Options{Algorithm: sfcp.AlgorithmParallelPRAM})
	if err != nil {
		log.Fatal(err)
	}
	seq, err := sfcp.SolveWith(sfcp.Instance{F: f, B: b},
		sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x -> (%d x + %d) mod %d:\n", a, c, n)
	fmt.Printf("  states on cycles: %d, longest transient: %d\n", cycleCount, maxTail)
	fmt.Printf("  observational classes: %d of %d states (agreement with sequential: %v)\n",
		res.NumClasses, n, sfcp.SamePartition(res.Labels, seq.Labels))
	fmt.Printf("  PRAM cost: %d rounds, %d operations (%.1f ops/state)\n\n",
		res.Stats.Rounds, res.Stats.Work, float64(res.Stats.Work)/float64(n))
}

// affine builds the map and its quarter-of-the-space observation.
func affine(n, a, c int) (f, b []int) {
	f = make([]int, n)
	b = make([]int, n)
	for x := 0; x < n; x++ {
		f[x] = (a*x + c) % n
		b[x] = x / (n / 4)
		if b[x] > 3 {
			b[x] = 3
		}
	}
	return f, b
}

func cycleStates(f []int) []bool {
	n := len(f)
	state := make([]int8, n)
	onCycle := make([]bool, n)
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		var path []int
		x := s
		for state[x] == 0 {
			state[x] = 1
			path = append(path, x)
			x = f[x]
		}
		if state[x] == 1 {
			for i := len(path) - 1; i >= 0; i-- {
				onCycle[path[i]] = true
				if path[i] == x {
					break
				}
			}
		}
		for _, y := range path {
			state[y] = 2
		}
	}
	return onCycle
}

// bank builds a system of k independent subsystems: block i is its own
// affine permutation of l states (5 is odd, so it is a bijection of the
// block), observed by position within the block. The global map never
// crosses block boundaries, so the decomposition has k components and a
// point mutation dirties only the blocks it touches — the regime where
// incremental re-solve wins.
func bank(k, l int) (f, b []int) {
	n := k * l
	f = make([]int, n)
	b = make([]int, n)
	for blk := 0; blk < k; blk++ {
		base := blk * l
		for i := 0; i < l; i++ {
			f[base+i] = base + (5*i+blk)%l
			b[base+i] = i % 4
		}
	}
	return f, b
}

// sessionEdits is the mutation script both the local and the HTTP
// walkthrough replay: a sensor recalibration (one state re-observed), a
// rewired transition, and a larger re-observation sweep.
func sessionEdits(n int) [][]sfcp.Edit {
	obs := func(node, b int) sfcp.Edit { return sfcp.Edit{Node: node, B: &b} }
	jump := func(node, f int) sfcp.Edit { return sfcp.Edit{Node: node, F: &f} }
	sweep := make([]sfcp.Edit, 16)
	for i := range sweep {
		sweep[i] = obs(i*(n/16), 3)
	}
	return [][]sfcp.Edit{
		{obs(7, 0)},             // one sensor reading corrected
		{jump(n/2, 1)},          // one transition rewired into the low orbit
		sweep,                   // a batch recalibration across the space
		{obs(7, 0), jump(3, 9)}, // mixed edit, both halves of one version
	}
}

// live drives the in-process incremental API: one session advanced
// through the mutation script, each step cross-checked against a full
// solve of the edited instance.
func live(k, l int) {
	f, b := bank(k, l)
	n := k * l
	ins := sfcp.Instance{F: f, B: b}
	inc, err := sfcp.NewIncremental(ins)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live session on a bank of %d independent %d-state subsystems (%d states):\n", k, l, n)
	for _, edits := range sessionEdits(n) {
		for _, e := range edits { // shadow the edits onto a flat copy
			if e.F != nil {
				ins.F[e.Node] = *e.F
			}
			if e.B != nil {
				ins.B[e.Node] = *e.B
			}
		}
		res, err := sfcp.Resolve(inc, sfcp.Delta{Edits: edits})
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		full, err := sfcp.SolveWith(ins, sfcp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fullDur := time.Since(t0)
		agree := len(res.Labels) == len(full.Labels)
		for i := range res.Labels {
			if res.Labels[i] != full.Labels[i] {
				agree = false
				break
			}
		}
		fmt.Printf("  %2d edit(s): %-13s dirty %5.1f%%  %8v vs full %8v  classes %d  identical: %v\n",
			len(edits), res.Resolve.Mode, 100*res.Resolve.DirtyFrac,
			res.Resolve.Duration.Round(time.Microsecond), fullDur.Round(time.Microsecond),
			res.NumClasses, agree)
	}
	fmt.Println()
}

// serve drives the same session against sfcpd's versioned-instance
// endpoints: POST /instances registers the system under its digest, and
// each POST /instances/{digest}/delta answers for the edited version and
// re-registers the session under the child digest.
func serve(base string, k, l int) {
	n := k * l
	f, b := bank(k, l)
	var created struct {
		Digest     string  `json:"digest"`
		N          int     `json:"n"`
		NumClasses int     `json:"num_classes"`
		SolveMS    float64 `json:"solve_ms"`
	}
	post(base+"/instances?labels=false", map[string]any{"f": f, "b": b}, &created)
	fmt.Printf("registered %d states as %s… (%d classes, solved in %.2fms)\n",
		created.N, created.Digest[:12], created.NumClasses, created.SolveMS)

	digest := created.Digest
	for _, edits := range sessionEdits(n) {
		var dr struct {
			ParentDigest   string            `json:"parent_digest"`
			Digest         string            `json:"digest"`
			NumClasses     int               `json:"num_classes"`
			Resolve        *sfcp.ResolveInfo `json:"resolve"`
			SessionRebuilt bool              `json:"session_rebuilt"`
			ResolveMS      float64           `json:"resolve_ms"`
		}
		post(base+"/instances/"+digest+"/delta?labels=false",
			sfcp.Delta{Edits: edits}, &dr)
		note := ""
		if dr.SessionRebuilt {
			note = "  (session rebuilt from blob tier)"
		}
		fmt.Printf("  %s… + %2d edit(s) -> %s…  %-13s dirty %5.1f%%  %.2fms  classes %d%s\n",
			digest[:12], len(edits), dr.Digest[:12],
			dr.Resolve.Mode, 100*dr.Resolve.DirtyFrac, dr.ResolveMS, dr.NumClasses, note)
		digest = dr.Digest
	}
	fmt.Printf("final version: %s\n", digest)
}

func post(url string, body, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %s: %s", url, resp.Status, bytes.TrimSpace(raw))
	}
	if err := json.Unmarshal(raw, out); err != nil {
		log.Fatalf("POST %s: decoding response: %v", url, err)
	}
}

func main() {
	server := flag.String("server", "",
		"drive a running sfcpd's /instances delta API instead of the in-process library (e.g. http://localhost:8080)")
	flag.Parse()

	if *server != "" {
		serve(*server, 256, 256)
		return
	}
	// A contracting map (many transients) and a bijective map (pure
	// cycles): the two structural regimes of Sections 4 and 3.
	analyse(4096, 6, 1)  // gcd(6,4096)>1: heavy tree structure
	analyse(4096, 5, 3)  // odd multiplier: a permutation of Z_4096
	analyse(16384, 6, 1) // same map, 4x larger: cost scaling
	live(256, 256)       // a many-component system, mutated in place
}
