// dynamics analyses a finite deterministic dynamical system: a map
// f: S -> S iterated from every state, with a coarse observation of each
// state. The coarsest partition groups states that are observationally
// indistinguishable under every number of steps — the exact notion of
// "probabilistic-free lumping" for deterministic chains, and the 0-player
// case of bisimulation minimization.
//
// The system here is an affine congruential map x -> (a*x + c) mod n with
// the observation "which quarter of the space x lies in". The example also
// reports the pseudo-forest statistics that drive the paper's algorithm
// (cycle structure, tail depths) and shows the PRAM cost scaling over two
// sizes.
//
//	go run ./examples/dynamics
package main

import (
	"fmt"
	"log"

	"sfcp"
)

func analyse(n, a, c int) {
	f := make([]int, n)
	b := make([]int, n)
	for x := 0; x < n; x++ {
		f[x] = (a*x + c) % n
		b[x] = x / (n / 4) // observation: quarter of the state space
		if b[x] > 3 {
			b[x] = 3
		}
	}

	// Structure: count cycle states and the longest transient tail.
	onCycle := cycleStates(f)
	cycleCount := 0
	for _, v := range onCycle {
		if v {
			cycleCount++
		}
	}
	maxTail := 0
	for x := 0; x < n; x++ {
		d, y := 0, x
		for !onCycle[y] {
			y = f[y]
			d++
		}
		if d > maxTail {
			maxTail = d
		}
	}

	res, err := sfcp.SolveWith(sfcp.Instance{F: f, B: b},
		sfcp.Options{Algorithm: sfcp.AlgorithmParallelPRAM})
	if err != nil {
		log.Fatal(err)
	}
	seq, err := sfcp.SolveWith(sfcp.Instance{F: f, B: b},
		sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x -> (%d x + %d) mod %d:\n", a, c, n)
	fmt.Printf("  states on cycles: %d, longest transient: %d\n", cycleCount, maxTail)
	fmt.Printf("  observational classes: %d of %d states (agreement with sequential: %v)\n",
		res.NumClasses, n, sfcp.SamePartition(res.Labels, seq.Labels))
	fmt.Printf("  PRAM cost: %d rounds, %d operations (%.1f ops/state)\n\n",
		res.Stats.Rounds, res.Stats.Work, float64(res.Stats.Work)/float64(n))
}

func cycleStates(f []int) []bool {
	n := len(f)
	state := make([]int8, n)
	onCycle := make([]bool, n)
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		var path []int
		x := s
		for state[x] == 0 {
			state[x] = 1
			path = append(path, x)
			x = f[x]
		}
		if state[x] == 1 {
			for i := len(path) - 1; i >= 0; i-- {
				onCycle[path[i]] = true
				if path[i] == x {
					break
				}
			}
		}
		for _, y := range path {
			state[y] = 2
		}
	}
	return onCycle
}

func main() {
	// A contracting map (many transients) and a bijective map (pure
	// cycles): the two structural regimes of Sections 4 and 3.
	analyse(4096, 6, 1)  // gcd(6,4096)>1: heavy tree structure
	analyse(4096, 5, 3)  // odd multiplier: a permutation of Z_4096
	analyse(16384, 6, 1) // same map, 4x larger: cost scaling
}
