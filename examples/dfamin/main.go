// dfamin minimizes a unary deterministic finite automaton — the motivating
// application of the coarsest partition problem (Srikant 1990; Paige,
// Tarjan & Bonic 1985). A DFA over a one-letter alphabet is exactly a
// function f (the transition map) plus an accept/reject partition B; two
// states are equivalent iff they accept the same language, i.e. iff they
// share a block of the coarsest partition.
//
// The example builds a deliberately redundant automaton recognizing
// "the number of letters is congruent to 0 or 3 mod 7" with many duplicated
// states, minimizes it, and verifies the minimal machine's behaviour.
//
//	go run ./examples/dfamin
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sfcp"
)

func main() {
	const mod = 7
	accepting := map[int]bool{0: true, 3: true}

	// Build a redundant automaton: `copies` chained duplicates of each
	// residue state, plus a tail of dead-ish states that still behave
	// like residues.
	const copies = 40
	n := mod * copies
	f := make([]int, n)
	b := make([]int, n)
	rng := rand.New(rand.NewSource(7))
	state := func(residue, copy int) int { return residue*copies + copy }
	for r := 0; r < mod; r++ {
		for c := 0; c < copies; c++ {
			// Each copy steps to a random copy of the next residue:
			// behaviourally identical, structurally messy.
			f[state(r, c)] = state((r+1)%mod, rng.Intn(copies))
			if accepting[r] {
				b[state(r, c)] = 1
			}
		}
	}

	res, err := sfcp.SolveWith(sfcp.Instance{F: f, B: b}, sfcp.Options{Algorithm: sfcp.AlgorithmHopcroft})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("states before minimization: %d\n", n)
	fmt.Printf("states after minimization:  %d (expected %d)\n", res.NumClasses, mod)

	// Build the minimal machine and cross-check: running w letters from
	// state 0 accepts iff w mod 7 is 0 or 3.
	minF := make([]int, res.NumClasses)
	minAcc := make([]bool, res.NumClasses)
	for s := 0; s < n; s++ {
		minF[res.Labels[s]] = res.Labels[f[s]]
		minAcc[res.Labels[s]] = b[s] == 1
	}
	start := res.Labels[state(0, 0)]
	ok := true
	cur := start
	for w := 0; w <= 30; w++ {
		want := accepting[w%mod]
		if minAcc[cur] != want {
			fmt.Printf("MISMATCH at length %d\n", w)
			ok = false
		}
		cur = minF[cur]
	}
	fmt.Println("minimal machine behaviour verified over 31 word lengths:", ok)

	// The same minimization through the paper's parallel algorithm.
	pres, err := sfcp.SolveWith(sfcp.Instance{F: f, B: b}, sfcp.Options{Algorithm: sfcp.AlgorithmParallelPRAM})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ParallelPRAM agrees: %v (%d rounds, %d operations on the simulated CRCW PRAM)\n",
		sfcp.SamePartition(pres.Labels, res.Labels), pres.Stats.Rounds, pres.Stats.Work)
}
