// necklace canonicalizes circular strings — the Section 3.1 subproblem of
// independent interest. Two necklaces (cyclic sequences of colored beads)
// are the same object iff one is a rotation of the other; the minimal
// starting point (m.s.p.) gives a canonical form, so grouping necklaces
// reduces to grouping canonical strings. The same operation canonicalizes
// chemical ring structures, cyclic gene orders, and polygon vertex lists.
//
//	go run ./examples/necklace
package main

import (
	"fmt"
	"math/rand"

	"sfcp"
)

func main() {
	rng := rand.New(rand.NewSource(3))

	// Generate a base set of necklaces, then hide each among random
	// rotations of itself.
	bases := [][]int{
		{1, 2, 1, 3},
		{2, 0, 2, 0, 1},
		{1, 1, 2, 3, 2, 1},
		{0, 1, 2},
	}
	var necklaces [][]int
	owner := map[int]int{}
	for id, base := range bases {
		for copies := 0; copies < 3; copies++ {
			shift := rng.Intn(len(base))
			rot := make([]int, len(base))
			for i := range base {
				rot[i] = base[(i+shift)%len(base)]
			}
			owner[len(necklaces)] = id
			necklaces = append(necklaces, rot)
		}
	}
	rng.Shuffle(len(necklaces), func(i, j int) {
		necklaces[i], necklaces[j] = necklaces[j], necklaces[i]
		owner[i], owner[j] = owner[j], owner[i]
	})

	// Canonicalize and group.
	groups := map[string][]int{}
	for i, nk := range necklaces {
		canon := sfcp.CanonicalRotation(nk)
		groups[fmt.Sprint(canon)] = append(groups[fmt.Sprint(canon)], i)
	}
	fmt.Printf("%d necklaces fell into %d groups (expected %d):\n",
		len(necklaces), len(groups), len(bases))
	for canon, members := range groups {
		fmt.Printf("  canonical %v <- necklaces %v\n", canon, members)
		// Sanity: all members really are rotations of each other.
		for _, m := range members[1:] {
			if !sfcp.IsRotationOf(necklaces[members[0]], necklaces[m]) {
				fmt.Println("  ERROR: grouped non-rotations!")
			}
		}
	}

	// The parallel m.s.p. (Lemma 3.7) on a large random necklace, with
	// the measured PRAM complexity.
	big := make([]int, 1<<14)
	for i := range big {
		big[i] = rng.Intn(4)
	}
	idx, stats := sfcp.MinimalRotationPRAM(big)
	fmt.Printf("\nlarge necklace (n=%d): m.s.p. at index %d\n", len(big), idx)
	fmt.Printf("parallel algorithm used %d rounds and %d operations "+
		"(Lemma 3.7: O(log n) time, O(n log log n) operations)\n", stats.Rounds, stats.Work)
	if idx != sfcp.MinimalRotation(big) {
		fmt.Println("ERROR: parallel and sequential m.s.p. disagree")
	}

	// Periodic necklaces: the smallest repeating prefix detects internal
	// symmetry (a bracelet stamped from a repeated motif).
	motif := []int{1, 3, 2, 2}
	stamped := make([]int, 0, 20)
	for r := 0; r < 5; r++ {
		stamped = append(stamped, motif...)
	}
	fmt.Printf("\nstamped necklace %v\n", stamped)
	fmt.Printf("smallest repeating motif length: %d (motif %v)\n",
		sfcp.SmallestRepeatingPrefix(stamped), motif)
}
