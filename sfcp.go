// Package sfcp solves the single function coarsest partition problem and
// exposes the companion circular-string algorithms, reproducing
//
//	J.F. JáJá and K.W. Ryu, "An efficient parallel algorithm for the single
//	function coarsest partition problem", SPAA 1993 / Theoretical Computer
//	Science 129 (1994) 293–307.
//
// Given a function f on {0..n-1} and an initial partition B (a label per
// element), the coarsest partition Q refines B, is closed under f (each
// block maps into a block), and has as few blocks as possible. The problem
// is equivalent to minimizing a Moore machine with a one-letter alphabet.
//
// The headline algorithm runs in O(log n) time using O(n log log n)
// operations on an Arbitrary CRCW PRAM, which this library executes on a
// deterministic instrumented simulator (AlgorithmParallelPRAM). Sequential
// solvers (Moore, Hopcroft, linear-time), the prior parallel baselines, and
// a goroutine-parallel implementation are included; all return identical
// normalized labels.
//
// The paper's subproblems of independent interest are exposed too: the
// minimal starting point of a circular string (Lemma 3.7), sorting
// variable-length strings (Lemma 3.8), and grouping equal-length strings
// into equivalence classes (Lemma 3.11).
package sfcp

import (
	"context"
	"sync"
	"time"

	"sfcp/internal/circ"
	"sfcp/internal/coarsest"
	"sfcp/internal/engine"
	"sfcp/internal/pram"
	"sfcp/internal/strsort"
)

// Instance is a single function coarsest partition problem: F[x] = f(x)
// with F[x] in [0, n), and B[x] >= 0 the initial-partition label of x.
type Instance struct {
	F []int
	B []int
}

// Validate checks the instance invariants (|F| == |B|, F values in range,
// B labels non-negative) without solving. Callers that route instances
// through deferred execution (a coalescing queue, an async job) use it to
// reject malformed input up front.
func (ins Instance) Validate() error {
	return coarsest.Instance{F: ins.F, B: ins.B}.Validate()
}

// LinearCrossoverN is the instance size below which the adaptive planner
// never picks a parallel solver for AlgorithmAuto — the "small request"
// regime where per-invocation overhead dominates and coalescing several
// requests into one planned batch pays off.
const LinearCrossoverN = engine.MinParallelN

// Algorithm selects a solver. It aliases the execution engine's type, so
// the engine's planner and dispatch table are the single source of truth
// for what each value means and how it runs.
type Algorithm = engine.Algorithm

const (
	// AlgorithmAuto defers the choice to the adaptive planner, which
	// resolves it per instance: the sequential linear-time solver below a
	// benchmark-calibrated crossover (where goroutine fan-out costs more
	// than it returns), NativeParallel with a size-scaled worker count
	// above it. Result.Plan reports the resolved algorithm and why.
	AlgorithmAuto = engine.Auto
	// AlgorithmMoore is naive iterative refinement (O(n^2) worst case).
	AlgorithmMoore = engine.Moore
	// AlgorithmHopcroft is partition refinement, O(n log n).
	AlgorithmHopcroft = engine.Hopcroft
	// AlgorithmLinear is the sequential linear-time cycle/tree solution.
	AlgorithmLinear = engine.Linear
	// AlgorithmParallelPRAM is the paper's algorithm on the instrumented
	// CRCW PRAM simulator (Theorem 5.1); Result.Stats reports its
	// parallel rounds and operations.
	AlgorithmParallelPRAM = engine.ParallelPRAM
	// AlgorithmNativeParallel runs goroutines on real cores.
	AlgorithmNativeParallel = engine.NativeParallel
	// AlgorithmDoublingHash is the O(n log n)-work parallel baseline
	// (Galley–Iliopoulos cost shape) on the simulator.
	AlgorithmDoublingHash = engine.DoublingHash
	// AlgorithmDoublingSort is the O(n log^2 n)-work parallel baseline
	// (Srikant cost shape) on the simulator.
	AlgorithmDoublingSort = engine.DoublingSort
)

// Stats reports the complexity counters of a simulated PRAM execution.
type Stats struct {
	// Rounds is the parallel time (number of synchronous steps).
	Rounds int64
	// Work is the operation count (processor activations plus charges).
	Work int64
	// MaxProcs is the largest processor count used in any single step.
	MaxProcs int64
	// Reads, Writes and Cells count shared-memory traffic and footprint.
	Reads, Writes, Cells int64
}

func fromPRAM(s pram.Stats) *Stats {
	return &Stats{Rounds: s.Rounds, Work: s.Work, MaxProcs: s.MaxProcs,
		Reads: s.Reads, Writes: s.Writes, Cells: s.Cells}
}

// Options configures SolveWith and NewSolver.
type Options struct {
	// Algorithm selects the solver (default AlgorithmAuto, resolved per
	// instance by the adaptive planner; see Result.Plan).
	Algorithm Algorithm
	// Workers bounds host goroutines for the parallel solvers. 0 lets the
	// engine choose: a NumCPU budget, scaled down to the instance size for
	// native-parallel solves (PlanWith reports the exact count).
	Workers int
	// Seed drives the simulator's deterministic arbitrary-write choices.
	Seed uint64
	// Parallelism bounds how many batch members a Solver runs concurrently
	// in SolveBatch (0 = NumCPU). Ignored by SolveWith.
	Parallelism int
}

// Plan is the execution decision the engine resolved for a solve: the
// concrete algorithm (never AlgorithmAuto), the exact worker count, a
// human-readable reason, and the instance features the planner read.
type Plan = engine.Plan

// Features are the cheap instance measurements behind a Plan: size, a
// sampled initial-label count and a sampled cycle/tree structure probe.
type Features = engine.Features

// Timings reports a solve's per-stage wall clock: planning (feature probe
// plus algorithm resolution) and the dispatched solve itself.
type Timings = engine.Timings

// Result is the output of SolveWith.
type Result struct {
	// Labels assigns each element its Q-block, dense in [0, NumClasses)
	// and normalized by first occurrence.
	Labels []int
	// NumClasses is the number of blocks of Q.
	NumClasses int
	// Stats holds simulator counters for the PRAM algorithms, nil
	// otherwise.
	Stats *Stats
	// Plan is the resolved execution plan — with AlgorithmAuto this is how
	// callers learn which solver actually ran and why.
	Plan *Plan
	// Resolve explains how a delta was applied (incremental vs full
	// fallback, dirty-set sizes); set only by Resolve, nil for plain
	// solves.
	Resolve *ResolveInfo
	// Timings is the per-stage wall clock of this solve.
	Timings Timings
}

// Solve computes the coarsest partition of (f, b) with the default solver
// and returns the dense Q-labels.
func Solve(f, b []int) ([]int, error) {
	res, err := SolveWith(Instance{F: f, B: b}, Options{})
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}

// SolveWith computes the coarsest partition with the selected algorithm.
func SolveWith(ins Instance, opts Options) (Result, error) {
	return SolveWithContext(context.Background(), ins, opts)
}

// SolveWithContext is SolveWith with cooperative cancellation. The parallel
// solvers (native-parallel and the PRAM simulations) poll ctx between
// refinement rounds / simulated steps and return ctx.Err() promptly; the
// sequential solvers (moore, hopcroft, linear) check it only on entry and
// then run to completion.
func SolveWithContext(ctx context.Context, ins Instance, opts Options) (Result, error) {
	in := coarsest.Instance{F: ins.F, B: ins.B}
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	return solveValidated(ctx, in, opts, nil)
}

// PlanWith resolves the execution plan for an instance without solving it:
// the algorithm that would run (AlgorithmAuto resolved by the adaptive
// planner), the worker count, and the reason. Planning is deterministic —
// identical instances and options always yield identical plans.
func PlanWith(ins Instance, opts Options) (Plan, error) {
	in := coarsest.Instance{F: ins.F, B: ins.B}
	if err := in.Validate(); err != nil {
		return Plan{}, err
	}
	return engine.MakePlan(in, engine.Request{Algorithm: opts.Algorithm, Workers: opts.Workers, Seed: opts.Seed})
}

// PlanBatch resolves one execution plan for a coalesced batch of
// instances: the batch is the planning unit, so N tiny requests share a
// single resolution instead of paying N probes. Instances are not
// validated here — batch execution (Solver.SolveBatchPlanned) validates
// and fails members individually. Plan.Features.N reports the batch's
// total elements.
func PlanBatch(instances []Instance, opts Options) (Plan, error) {
	// The conversion view is recycled: batch planning happens once per
	// coalesced flush, and MakeBatchPlan only reads it (plans carry
	// derived features, never instance slices).
	ip, _ := planBatchPool.Get().(*[]coarsest.Instance)
	if ip == nil {
		ip = new([]coarsest.Instance)
	}
	ins := (*ip)[:0]
	for _, m := range instances {
		ins = append(ins, coarsest.Instance{F: m.F, B: m.B})
	}
	plan, err := engine.MakeBatchPlan(ins, engine.Request{Algorithm: opts.Algorithm, Workers: opts.Workers, Seed: opts.Seed})
	clear(ins)
	*ip = ins[:0]
	planBatchPool.Put(ip)
	return plan, err
}

// planBatchPool recycles PlanBatch's []coarsest.Instance conversion
// views across flushes.
var planBatchPool sync.Pool

// SolvePlanned executes a plan previously resolved by PlanWith (or
// Solver.Plan) for this instance, without re-probing or re-planning — the
// path for callers that need the plan before the solve (to pick a queue or
// a cache key) and must then execute exactly what was promised. Only
// opts.Seed is consulted; the algorithm and worker count come from the
// plan. Result.Timings.Plan is zero: planning happened at PlanWith time.
func SolvePlanned(ctx context.Context, ins Instance, plan Plan, opts Options) (Result, error) {
	in := coarsest.Instance{F: ins.F, B: ins.B}
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	return executePlan(ctx, in, plan, opts.Seed, nil)
}

// executePlan dispatches a resolved plan through the engine and shapes the
// library Result.
func executePlan(ctx context.Context, in coarsest.Instance, plan Plan, seed uint64, sc *coarsest.Scratch) (Result, error) {
	start := time.Now()
	labels, stats, err := engine.Execute(ctx, in, plan, seed, sc)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Labels:     labels,
		NumClasses: coarsest.NumClasses(labels),
		Plan:       &plan,
		Timings:    Timings{Solve: time.Since(start)},
	}
	if stats != nil {
		res.Stats = fromPRAM(*stats)
	}
	return res, nil
}

// solveValidated hands a validated instance to the execution engine — the
// one place in the codebase an algorithm is chosen and dispatched. sc may
// be nil (only native-parallel solves use it).
func solveValidated(ctx context.Context, in coarsest.Instance, opts Options, sc *coarsest.Scratch) (Result, error) {
	out, err := engine.Run(ctx, in, engine.Request{Algorithm: opts.Algorithm, Workers: opts.Workers, Seed: opts.Seed}, sc)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Labels:     out.Labels,
		NumClasses: coarsest.NumClasses(out.Labels),
		Plan:       &out.Plan,
		Timings:    out.Timings,
	}
	if out.Stats != nil {
		res.Stats = fromPRAM(*out.Stats)
	}
	return res, nil
}

// MinimalRotation returns the index at which the lexicographically least
// rotation of the circular string s starts (its minimal starting point),
// computed sequentially in O(n) time. Returns -1 for an empty string; among
// equivalent minimal rotations it returns the smallest index.
func MinimalRotation(s []int) int { return circ.BoothMSP(s) }

// MinimalRotationPRAM computes the minimal starting point with the paper's
// parallel algorithm (Lemma 3.7: O(log n) time, O(n log log n) operations)
// on the simulator and reports the measured complexity. Symbols must be
// non-negative.
func MinimalRotationPRAM(s []int) (int, Stats) {
	m := pram.New(pram.ArbitraryCRCW)
	c := m.NewArrayFromInts(s)
	m.ResetStats()
	idx := circ.MSPPRAM(m, c, circ.Options{})
	return idx, *fromPRAM(m.Stats())
}

// CanonicalRotation returns the lexicographically least rotation of s,
// the canonical form of the circular string (e.g. for necklace or ring
// canonicalization).
func CanonicalRotation(s []int) []int { return circ.Canonical(s) }

// SmallestRepeatingPrefix returns the length of the shortest prefix P of s
// with s = P^k; for a primitive string it returns len(s).
func SmallestRepeatingPrefix(s []int) int { return circ.SmallestRepeatingPrefix(s) }

// IsRotationOf reports whether two circular strings are cyclic shifts of
// each other.
func IsRotationOf(a, b []int) bool { return circ.IsRotationOf(a, b) }

// SortStrings lexicographically sorts variable-length integer strings and
// returns the stable permutation (sequential baseline).
func SortStrings(strs [][]int) []int { return strsort.HostSort(strs) }

// SortStringsPRAM sorts the strings with the paper's parallel algorithm
// (Lemma 3.8) on the simulator, returning the stable permutation and the
// measured complexity. Symbols must be non-negative.
func SortStringsPRAM(strs [][]int) ([]int, Stats) {
	m := pram.New(pram.ArbitraryCRCW)
	m.ResetStats()
	perm := strsort.SortPRAM(m, strs, strsort.Options{})
	return perm, *fromPRAM(m.Stats())
}

// SamePartition reports whether two label slices induce the same partition
// (i.e. they are equal up to renaming).
func SamePartition(a, b []int) bool { return coarsest.SamePartition(a, b) }

// NumClasses returns the number of distinct labels in a labeling.
func NumClasses(labels []int) int { return coarsest.NumClasses(labels) }
