module sfcp

go 1.24
