package sfcp_test

import (
	"strings"
	"testing"

	"sfcp"
	"sfcp/internal/workload"
)

func wl(ins workload.Instance) sfcp.Instance {
	return sfcp.Instance{F: ins.F, B: ins.B}
}

func TestSolverMatchesSolveWithAllAlgorithms(t *testing.T) {
	instances := []sfcp.Instance{
		wl(workload.RandomFunction(1, 300, 3)),
		wl(workload.CycleFamily(2, 4, 25, 5)),
		wl(workload.Broom(3, 200, 20, 4)),
		wl(workload.Star(4, 100, 2)),
	}
	for _, algo := range sfcp.Algorithms() {
		s := sfcp.NewSolver(sfcp.Options{Algorithm: algo, Seed: 7})
		for i, ins := range instances {
			got, err := s.Solve(ins)
			if err != nil {
				t.Fatalf("%v instance %d: %v", algo, i, err)
			}
			want, err := sfcp.SolveWith(ins, sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
			if err != nil {
				t.Fatal(err)
			}
			if !sfcp.SamePartition(got.Labels, want.Labels) {
				t.Errorf("%v instance %d: partition mismatch", algo, i)
			}
			if got.NumClasses != want.NumClasses {
				t.Errorf("%v instance %d: classes %d, want %d", algo, i, got.NumClasses, want.NumClasses)
			}
		}
	}
}

func TestSolveBatchMatchesSequentialSolves(t *testing.T) {
	s := sfcp.NewSolver(sfcp.Options{Workers: 4, Parallelism: 3})
	var batch []sfcp.Instance
	for seed := int64(0); seed < 12; seed++ {
		batch = append(batch, wl(workload.RandomFunction(seed, 50+int(seed)*30, 2+int(seed)%3)))
	}
	// Run twice so scratch arenas are actually recycled between calls.
	for round := 0; round < 2; round++ {
		results, err := s.SolveBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(batch) {
			t.Fatalf("got %d results, want %d", len(results), len(batch))
		}
		for i, res := range results {
			want, err := s.Solve(batch[i])
			if err != nil {
				t.Fatal(err)
			}
			if !sfcp.SamePartition(res.Labels, want.Labels) {
				t.Errorf("round %d member %d: batch result diverges from single solve", round, i)
			}
		}
	}
}

func TestSolveBatchEmptyAndInvalid(t *testing.T) {
	s := sfcp.NewSolver(sfcp.Options{})
	if res, err := s.SolveBatch(nil); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
	bad := []sfcp.Instance{
		wl(workload.Star(1, 10, 2)),
		{F: []int{5}, B: []int{0}}, // F out of range
	}
	_, err := s.SolveBatch(bad)
	if err == nil {
		t.Fatal("invalid member accepted")
	}
	if !strings.Contains(err.Error(), "instance 1") {
		t.Errorf("error %q does not name the offending index", err)
	}
}

func TestSolverUnknownAlgorithm(t *testing.T) {
	s := sfcp.NewSolver(sfcp.Options{Algorithm: sfcp.Algorithm(99)})
	if _, err := s.Solve(wl(workload.Star(1, 5, 2))); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, a := range sfcp.Algorithms() {
		got, err := sfcp.ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := sfcp.ParseAlgorithm("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestInstanceDigest(t *testing.T) {
	a := sfcp.Instance{F: []int{0, 1}, B: []int{1, 0}}
	b := sfcp.Instance{F: []int{0, 1}, B: []int{1, 0}}
	if a.Digest() != b.Digest() {
		t.Error("equal instances digest differently")
	}
	// Moving an element across the F/B boundary must change the digest.
	c := sfcp.Instance{F: []int{0, 1, 1}, B: []int{0}}
	d := sfcp.Instance{F: []int{0, 1}, B: []int{1, 0}}
	if c.Digest() == d.Digest() {
		t.Error("F/B boundary not folded into digest")
	}
	if (sfcp.Instance{F: []int{0}, B: []int{5}}).Digest() == a.Digest() {
		t.Error("different instances share a digest")
	}
}
