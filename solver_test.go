package sfcp_test

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"strings"
	"testing"
	"time"

	"sfcp"
	"sfcp/internal/workload"
)

func wl(ins workload.Instance) sfcp.Instance {
	return sfcp.Instance{F: ins.F, B: ins.B}
}

func TestSolverMatchesSolveWithAllAlgorithms(t *testing.T) {
	instances := []sfcp.Instance{
		wl(workload.RandomFunction(1, 300, 3)),
		wl(workload.CycleFamily(2, 4, 25, 5)),
		wl(workload.Broom(3, 200, 20, 4)),
		wl(workload.Star(4, 100, 2)),
	}
	for _, algo := range sfcp.Algorithms() {
		s := sfcp.NewSolver(sfcp.Options{Algorithm: algo, Seed: 7})
		for i, ins := range instances {
			got, err := s.Solve(ins)
			if err != nil {
				t.Fatalf("%v instance %d: %v", algo, i, err)
			}
			want, err := sfcp.SolveWith(ins, sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
			if err != nil {
				t.Fatal(err)
			}
			if !sfcp.SamePartition(got.Labels, want.Labels) {
				t.Errorf("%v instance %d: partition mismatch", algo, i)
			}
			if got.NumClasses != want.NumClasses {
				t.Errorf("%v instance %d: classes %d, want %d", algo, i, got.NumClasses, want.NumClasses)
			}
		}
	}
}

func TestSolveBatchMatchesSequentialSolves(t *testing.T) {
	s := sfcp.NewSolver(sfcp.Options{Workers: 4, Parallelism: 3})
	var batch []sfcp.Instance
	for seed := int64(0); seed < 12; seed++ {
		batch = append(batch, wl(workload.RandomFunction(seed, 50+int(seed)*30, 2+int(seed)%3)))
	}
	// Run twice so scratch arenas are actually recycled between calls.
	for round := 0; round < 2; round++ {
		results, err := s.SolveBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != len(batch) {
			t.Fatalf("got %d results, want %d", len(results), len(batch))
		}
		for i, res := range results {
			want, err := s.Solve(batch[i])
			if err != nil {
				t.Fatal(err)
			}
			if !sfcp.SamePartition(res.Labels, want.Labels) {
				t.Errorf("round %d member %d: batch result diverges from single solve", round, i)
			}
		}
	}
}

func TestSolveBatchEmptyAndInvalid(t *testing.T) {
	s := sfcp.NewSolver(sfcp.Options{})
	if res, err := s.SolveBatch(nil); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
	bad := []sfcp.Instance{
		wl(workload.Star(1, 10, 2)),
		{F: []int{5}, B: []int{0}}, // F out of range
		wl(workload.Star(2, 8, 2)),
	}
	res, err := s.SolveBatch(bad)
	if err == nil {
		t.Fatal("invalid member accepted")
	}
	if !strings.Contains(err.Error(), "instance 1") {
		t.Errorf("error %q does not name the offending index", err)
	}
	if strings.Contains(err.Error(), "instance 0") || strings.Contains(err.Error(), "instance 2") {
		t.Errorf("error %q blames valid members", err)
	}
	// Valid siblings are solved despite the invalid member.
	if len(res) != len(bad) {
		t.Fatalf("got %d results, want %d", len(res), len(bad))
	}
	for _, i := range []int{0, 2} {
		want, werr := s.Solve(bad[i])
		if werr != nil {
			t.Fatal(werr)
		}
		if !sfcp.SamePartition(res[i].Labels, want.Labels) {
			t.Errorf("member %d not solved alongside invalid sibling", i)
		}
	}
	if res[1].Labels != nil || res[1].NumClasses != 0 {
		t.Errorf("invalid member carries a non-zero result: %+v", res[1])
	}
}

func TestSolveContextCancellation(t *testing.T) {
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	n := 5000
	if testing.Short() {
		n = 1500 // the full size is slow under -race; semantics are size-independent
	}
	big := wl(workload.RandomFunction(7, n, 3))
	for _, algo := range []sfcp.Algorithm{
		sfcp.AlgorithmNativeParallel, sfcp.AlgorithmParallelPRAM,
		sfcp.AlgorithmDoublingHash, sfcp.AlgorithmDoublingSort,
		sfcp.AlgorithmMoore, // sequential: entry check only
	} {
		s := sfcp.NewSolver(sfcp.Options{Algorithm: algo})
		if _, err := s.SolveContext(cancelled, big); !errors.Is(err, context.Canceled) {
			t.Errorf("%v: cancelled solve returned %v, want context.Canceled", algo, err)
		}
		// The same solver still works with a live context afterwards.
		res, err := s.SolveContext(context.Background(), big)
		if err != nil {
			t.Fatalf("%v after cancel: %v", algo, err)
		}
		want, err := sfcp.SolveWith(big, sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
		if err != nil {
			t.Fatal(err)
		}
		if !sfcp.SamePartition(res.Labels, want.Labels) {
			t.Errorf("%v after cancel: wrong partition", algo)
		}
	}
}

// TestSolveContextCancelMidSolve cancels while a parallel-pram solve is in
// flight and checks the step loop aborts with the context error.
func TestSolveContextCancelMidSolve(t *testing.T) {
	s := sfcp.NewSolver(sfcp.Options{Algorithm: sfcp.AlgorithmParallelPRAM})
	ins := wl(workload.RandomFunction(11, 60_000, 3))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.SolveContext(ctx, ins)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond) // let the simulation start stepping
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mid-solve cancel returned %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled solve did not return")
	}
}

func TestSolverUnknownAlgorithm(t *testing.T) {
	s := sfcp.NewSolver(sfcp.Options{Algorithm: sfcp.Algorithm(99)})
	if _, err := s.Solve(wl(workload.Star(1, 5, 2))); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, a := range sfcp.Algorithms() {
		got, err := sfcp.ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := sfcp.ParseAlgorithm("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestInstanceDigest(t *testing.T) {
	a := sfcp.Instance{F: []int{0, 1}, B: []int{1, 0}}
	b := sfcp.Instance{F: []int{0, 1}, B: []int{1, 0}}
	if a.Digest() != b.Digest() {
		t.Error("equal instances digest differently")
	}
	// Moving an element across the F/B boundary must change the digest.
	c := sfcp.Instance{F: []int{0, 1, 1}, B: []int{0}}
	d := sfcp.Instance{F: []int{0, 1}, B: []int{1, 0}}
	if c.Digest() == d.Digest() {
		t.Error("F/B boundary not folded into digest")
	}
	if (sfcp.Instance{F: []int{0}, B: []int{5}}).Digest() == a.Digest() {
		t.Error("different instances share a digest")
	}
}

// TestInstanceDigestGolden pins the digest byte stream: the buffered
// implementation must stay byte-identical to the original
// one-h.Write-per-int encoding (lengths and values as little-endian
// uint64), or every deployed cache keyed on it silently empties.
func TestInstanceDigestGolden(t *testing.T) {
	ins := sfcp.Instance{F: []int{1, 2, 0, 2}, B: []int{0, 1, 0, 1}}
	const want = "6587ecba422fc5924216859f13eb7d5a404c392da192079cec1cf1c7712520f1"
	if got := ins.Digest(); got != want {
		t.Fatalf("golden digest changed:\n got %s\nwant %s", got, want)
	}

	// Cross-check against an in-test reference of the original encoding on
	// sizes that straddle the internal buffer boundary (4096 bytes = 512
	// ints), including the exact-fill and fill+1 cases.
	ref := func(ins sfcp.Instance) string {
		h := sha256.New()
		var buf [8]byte
		writeInt := func(v int) {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
		}
		writeInt(len(ins.F))
		for _, v := range ins.F {
			writeInt(v)
		}
		writeInt(len(ins.B))
		for _, v := range ins.B {
			writeInt(v)
		}
		return hex.EncodeToString(h.Sum(nil))
	}
	for _, n := range []int{0, 1, 255, 256, 511, 512, 513, 1024, 3000} {
		w := workload.RandomFunction(int64(n), n+1, 3)
		ins := sfcp.Instance{F: w.F[:n], B: w.B[:n]}
		if got, want := ins.Digest(), ref(ins); got != want {
			t.Errorf("n=%d: digest %s, reference %s", n, got, want)
		}
	}
}
