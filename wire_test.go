package sfcp

import (
	"bytes"
	"io"
	"testing"
)

// TestBinaryDecoderStream drains concatenated instances through one
// BinaryDecoder and solves each — the supported pattern for multi-instance
// streams (SolveReader's chunked read-ahead makes it one-shot per reader).
func TestBinaryDecoderStream(t *testing.T) {
	instances := []Instance{
		{F: []int{1, 0}, B: []int{0, 1}},
		{F: []int{0}, B: []int{2}},
		{F: []int{2, 0, 1}, B: []int{0, 0, 1}},
	}
	var stream bytes.Buffer
	for _, ins := range instances {
		if err := ins.EncodeBinary(&stream); err != nil {
			t.Fatal(err)
		}
	}
	s := NewSolver(Options{Algorithm: AlgorithmLinear})
	dec := NewBinaryDecoder(&stream)
	var count int
	for {
		ins, err := dec.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("instance %d: %v", count, err)
		}
		if len(dec.Digest()) != 16 {
			t.Fatalf("instance %d: digest %q", count, dec.Digest())
		}
		want, err := SolveWith(instances[count], Options{Algorithm: AlgorithmMoore})
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Solve(ins)
		if err != nil {
			t.Fatal(err)
		}
		if !SamePartition(got.Labels, want.Labels) {
			t.Fatalf("instance %d: partition disagrees with moore", count)
		}
		count++
	}
	if count != len(instances) {
		t.Fatalf("decoded %d instances, want %d", count, len(instances))
	}
}

func TestSolveReaderOneShot(t *testing.T) {
	ins := Instance{F: []int{1, 2, 0}, B: []int{0, 1, 0}}
	var buf bytes.Buffer
	if err := ins.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	s := NewSolver(Options{})
	res, err := s.SolveReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := SolveWith(ins, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !SamePartition(res.Labels, want.Labels) {
		t.Error("SolveReader disagrees with SolveWith")
	}
	if _, err := s.SolveReader(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
	if _, err := s.SolveReader(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage stream accepted")
	}
}
