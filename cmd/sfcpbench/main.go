// Command sfcpbench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	sfcpbench -exp E1          # one experiment
//	sfcpbench -all             # everything
//	sfcpbench -all -quick      # smaller sweeps
//	sfcpbench -list            # show available experiments
//	sfcpbench -exp A4 -out BENCH_planner.json   # machine-readable crossover data
//	sfcpbench -calibrate -out profile.json      # fit this host's planner profile
//	sfcpbench -exp A4 -calibration-file profile.json   # re-run A4 under the fit
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"sfcp"
	"sfcp/internal/bench"
	"sfcp/internal/calib"
)

// errTrackWriter remembers the first write failure. The experiments write
// through fmt/tabwriter/json, which all discard errors — without this, a
// full disk would leave a truncated BENCH_*.json and still exit 0.
type errTrackWriter struct {
	w   io.Writer
	err error
}

func (e *errTrackWriter) Write(p []byte) (int, error) {
	n, err := e.w.Write(p)
	if err != nil && e.err == nil {
		e.err = err
	}
	return n, err
}

func main() {
	exp := flag.String("exp", "", "experiment id (E1..E10, A1..A8)")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "smaller sweeps")
	list := flag.Bool("list", false, "list experiments")
	seed := flag.Int64("seed", 1993, "workload seed")
	outPath := flag.String("out", "", "write results to this file instead of stdout (e.g. BENCH_planner.json for -exp A4)")
	calibrate := flag.Bool("calibrate", false, "fit a planner calibration profile on this host and write it as JSON (-out profile.json)")
	calibBudget := flag.Duration("calibrate-budget", 3*time.Second, "wall-clock budget for -calibrate (-quick shrinks it to 750ms)")
	calibFile := flag.String("calibration-file", "", "load a fitted profile before running experiments (steers the planner's auto arm, e.g. in A4)")
	flag.Parse()

	out := &errTrackWriter{w: os.Stdout}
	var sink *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfcpbench:", err)
			os.Exit(1)
		}
		sink = f
		out.w = f
	}
	finish := func() {
		err := out.err
		if sink != nil {
			if cerr := sink.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfcpbench: writing results:", err)
			os.Exit(1)
		}
	}
	if *calibFile != "" {
		prof, err := sfcp.LoadCalibrationProfile(*calibFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfcpbench:", err)
			os.Exit(1)
		}
		sfcp.SetCalibrationProfile(prof)
	}
	cfg := bench.Config{Out: out, Quick: *quick, Seed: *seed}
	switch {
	case *calibrate:
		budget := *calibBudget
		if *quick {
			budget = 750 * time.Millisecond
		}
		rep, err := calib.Calibrate(context.Background(), calib.Options{
			Budget: budget, Seed: *seed, Log: os.Stderr,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfcpbench:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(rep.Profile, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "sfcpbench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(out, string(data))
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
	case *all:
		bench.RunAll(cfg)
	case *exp != "":
		e, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "sfcpbench: unknown experiment %q; -list shows the catalogue\n", *exp)
			os.Exit(1)
		}
		bench.RunOne(e, cfg)
	default:
		flag.Usage()
		os.Exit(2)
	}
	finish()
}
