// Command sfcpbench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	sfcpbench -exp E1          # one experiment
//	sfcpbench -all             # everything
//	sfcpbench -all -quick      # smaller sweeps
//	sfcpbench -list            # show available experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"sfcp/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment id (E1..E10, A1..A3)")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "smaller sweeps")
	list := flag.Bool("list", false, "list experiments")
	seed := flag.Int64("seed", 1993, "workload seed")
	flag.Parse()

	cfg := bench.Config{Out: os.Stdout, Quick: *quick, Seed: *seed}
	switch {
	case *list:
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
	case *all:
		bench.RunAll(cfg)
	case *exp != "":
		e, ok := bench.Lookup(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "sfcpbench: unknown experiment %q; -list shows the catalogue\n", *exp)
			os.Exit(1)
		}
		e.Run(cfg)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
