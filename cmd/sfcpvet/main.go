// Command sfcpvet runs the project's own static analyzers — the
// concurrency and dispatch invariants the compiler cannot see — over
// the module. CI runs it as a required step; locally:
//
//	go run ./cmd/sfcpvet ./...          # whole module
//	go run ./cmd/sfcpvet ./internal/jobs
//	go run ./cmd/sfcpvet -list          # describe the analyzers
//
// Exit status is 0 when the tree is clean, 1 when findings exist, and
// 2 for usage or load errors. Findings print as
//
//	path/file.go:12:3: lockhold: channel send while m.mu is locked; ...
//
// and are suppressed in place with an //sfcpvet:ignore directive (see
// internal/analysis).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sfcp/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default all)")
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		var selected []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range analyzers {
				if a.Name == name {
					selected, found = append(selected, a), true
					break
				}
			}
			if !found {
				fatal(fmt.Errorf("unknown analyzer %q (-list shows the suite)", name))
			}
		}
		analyzers = selected
	}

	root, modPath, err := analysis.FindModule(".")
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*analysis.Package
	for _, pat := range patterns {
		loaded, err := load(root, modPath, pat)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, loaded...)
	}

	findings, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		rel := f
		if r, err := filepath.Rel(root, f.Pos.Filename); err == nil {
			rel.Pos.Filename = r
		}
		fmt.Println(rel)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// load resolves one package pattern: "dir/..." walks a subtree, a plain
// path names a single package directory.
func load(root, modPath, pattern string) ([]*analysis.Package, error) {
	if sub, ok := strings.CutSuffix(pattern, "/..."); ok {
		abs, err := filepath.Abs(sub)
		if err != nil {
			return nil, err
		}
		return analysis.LoadTree(root, modPath, abs)
	}
	pkg, err := analysis.LoadDir(root, modPath, pattern)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("no Go files in %s", pattern)
	}
	return []*analysis.Package{pkg}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sfcpvet:", err)
	os.Exit(2)
}
