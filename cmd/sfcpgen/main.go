// Command sfcpgen generates workload instances in the formats consumed by
// cmd/sfcp: the whitespace text format (default) or, with -format bin, the
// streaming binary wire format of internal/codec — the right choice for
// the 10^7+ element instances the binary codec exists for.
//
// Usage:
//
//	sfcpgen -kind random -n 65536 -blocks 3 -seed 7 > instance.txt
//	sfcpgen -kind random -n 10000000 -format bin > instance.sfcp
//	sfcpgen -kind cycles -k 64 -l 256 -period 8
//
// Kinds: random, permutation, cycles (k cycles of length l with equivalent
// rotated labels), distinct-cycles, broom, star, dfa.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"sfcp/internal/codec"
	"sfcp/internal/workload"
)

func main() {
	kind := flag.String("kind", "random", "workload kind")
	n := flag.Int("n", 1024, "instance size (random/permutation/broom/star/dfa)")
	blocks := flag.Int("blocks", 3, "number of initial-partition blocks")
	k := flag.Int("k", 8, "cycle count (cycles/distinct-cycles)")
	l := flag.Int("l", 16, "cycle length (cycles/distinct-cycles)")
	period := flag.Int("period", 4, "label period (cycles)")
	cyc := flag.Int("cyc", 16, "cycle length of the broom")
	paths := flag.Int("paths", 4, "number of chains of the broom")
	accept := flag.Int("accept", 300, "accepting density per mille (dfa)")
	seed := flag.Int64("seed", 1, "generator seed")
	format := flag.String("format", "text", "output format: text or bin (binary wire format)")
	flag.Parse()
	if *format != "text" && *format != "bin" {
		fmt.Fprintf(os.Stderr, "sfcpgen: unknown format %q (want text or bin)\n", *format)
		os.Exit(1)
	}

	var ins workload.Instance
	switch *kind {
	case "random":
		ins = workload.RandomFunction(*seed, *n, *blocks)
	case "permutation":
		ins = workload.RandomPermutation(*seed, *n, *blocks)
	case "cycles":
		ins = workload.CycleFamily(*seed, *k, *l, *period)
	case "distinct-cycles":
		ins = workload.DistinctCycles(*seed, *k, *l, *blocks)
	case "broom":
		ins = workload.Broom(*seed, *n, *cyc, *paths)
	case "star":
		ins = workload.Star(*seed, *n, *blocks)
	case "dfa":
		ins = workload.UnaryDFA(*seed, *n, *accept)
	default:
		fmt.Fprintf(os.Stderr, "sfcpgen: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *format == "bin" {
		if err := codec.Encode(w, ins.F, ins.B); err != nil {
			fmt.Fprintf(os.Stderr, "sfcpgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Fprintln(w, len(ins.F))
	for i, v := range ins.F {
		if i > 0 {
			fmt.Fprint(w, " ")
		}
		fmt.Fprint(w, v)
	}
	fmt.Fprintln(w)
	for i, v := range ins.B {
		if i > 0 {
			fmt.Fprint(w, " ")
		}
		fmt.Fprint(w, v)
	}
	fmt.Fprintln(w)
}
