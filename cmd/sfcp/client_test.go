package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"sfcp"
	"sfcp/internal/server"
	"sfcp/internal/workload"
)

func newJobServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func testClient(ts *httptest.Server, algo string) *jobClient {
	return &jobClient{
		base: ts.URL,
		http: http.DefaultClient,
		poll: 2 * time.Millisecond,
		algo: algo,
	}
}

func TestClientSubmitFireAndForget(t *testing.T) {
	ts := newJobServer(t)
	ins := sfcp.Instance(workload.RandomFunction(5, 200, 3))
	var out, errOut bytes.Buffer
	if err := runClient(testClient(ts, "linear"), ins, false, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	id := strings.TrimSpace(out.String())
	if len(id) != 32 { // 128-bit hex
		t.Fatalf("stdout %q is not a job id", out.String())
	}
	if !strings.Contains(errOut.String(), "submitted job "+id) {
		t.Errorf("stderr %q lacks the submit summary", errOut.String())
	}
	// The job is pollable afterwards and reaches done.
	c := testClient(ts, "linear")
	snap, err := c.wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != "done" {
		t.Fatalf("job state %s", snap.State)
	}
}

func TestClientSubmitWaitPrintsLabels(t *testing.T) {
	ts := newJobServer(t)
	ins := sfcp.Instance(workload.RandomFunction(9, 300, 3))
	want, err := sfcp.SolveWith(ins, sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if err := runClient(testClient(ts, "linear"), ins, true, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(out.String())
	if len(fields) != len(want.Labels) {
		t.Fatalf("printed %d labels, want %d", len(fields), len(want.Labels))
	}
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			t.Fatalf("label %d: %q", i, f)
		}
		if v != want.Labels[i] {
			t.Fatalf("label %d = %d, want %d", i, v, want.Labels[i])
		}
	}
	if !strings.Contains(errOut.String(), "classes=") || !strings.Contains(errOut.String(), "job=") {
		t.Errorf("stderr %q lacks the solve summary", errOut.String())
	}
}

func TestClientWaitSurfacesFailure(t *testing.T) {
	ts := newJobServer(t)
	bad := sfcp.Instance{F: []int{5}, B: []int{0}} // invalid: solver will fail the job
	var out, errOut bytes.Buffer
	err := runClient(testClient(ts, "linear"), bad, true, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("failed job returned %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("failed job printed to stdout: %q", out.String())
	}
}

func TestClientStatsForPRAMJob(t *testing.T) {
	ts := newJobServer(t)
	ins := sfcp.Instance(workload.RandomFunction(2, 64, 2))
	var out, errOut bytes.Buffer
	if err := runClient(testClient(ts, "parallel-pram"), ins, true, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "rounds=") {
		t.Errorf("stderr %q lacks PRAM stats for a simulator job", errOut.String())
	}
}

func TestClientSubmitServerErrors(t *testing.T) {
	ts := newJobServer(t)
	c := testClient(ts, "quantum") // unknown algorithm -> 400 at submit
	err := runClient(c, sfcp.Instance{F: []int{0}, B: []int{0}}, false, &bytes.Buffer{}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("submit error %v", err)
	}
}
