// Command sfcp solves single function coarsest partition instances.
//
// Input (stdin or -in file) is auto-detected: a stream beginning with the
// "SFCP" magic is decoded as the binary wire format of internal/codec
// (as emitted by sfcpgen -format bin), anything else parses as the
// whitespace text format:
//
//	n
//	f(0) f(1) ... f(n-1)      (0-based)
//	b(0) b(1) ... b(n-1)
//
// Output: one line with the n dense Q-labels, plus a summary on stderr.
//
// With -submit the instance is not solved locally: it is shipped (always
// as the binary wire format) to an sfcpd server's async job API. Alone,
// -submit prints the job id and returns immediately; with -wait the job is
// polled to a terminal state and its labels are fetched and printed
// exactly like a local solve (failed and cancelled jobs exit non-zero).
//
// Usage:
//
//	sfcp [-algo auto|moore|hopcroft|linear|parallel-pram|native-parallel|doubling-hash|doubling-sort]
//	     [-in file] [-stats] [-explain] [-workers n] [-seed s]
//	     [-calibration-file profile.json]
//	     [-submit -server http://host:8080 [-wait] [-poll 250ms] [-priority p]]
//
// The default -algo auto defers to the adaptive planner, which picks the
// sequential linear-time solver or the goroutine-parallel one per
// instance; the summary's ran= field reports the resolved choice and
// -explain prints the full plan (reason, active calibration profile,
// probe features, stage timings). -calibration-file steers the planner
// with a host-fitted profile from `sfcpbench -calibrate`.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"sfcp"
)

func main() {
	algoName := flag.String("algo", "auto", "solver algorithm")
	inPath := flag.String("in", "", "input file (default stdin)")
	stats := flag.Bool("stats", false, "print PRAM complexity counters to stderr")
	explain := flag.Bool("explain", false, "print the resolved execution plan (algorithm, workers, reason, probe, stage timings) to stderr")
	workers := flag.Int("workers", 0, "host goroutines for the parallel solvers (0 = NumCPU)")
	seed := flag.Uint64("seed", 0, "simulator seed for the PRAM algorithms")
	server := flag.String("server", "", "sfcpd base URL for -submit (e.g. http://localhost:8080)")
	submit := flag.Bool("submit", false, "submit the instance as an async job to -server instead of solving locally")
	wait := flag.Bool("wait", false, "with -submit: poll the job and print its labels when done")
	poll := flag.Duration("poll", 250*time.Millisecond, "status polling interval for -wait")
	priority := flag.Int("priority", 0, "job priority for -submit (higher runs sooner)")
	calibFile := flag.String("calibration-file", "", "planner calibration profile (sfcpbench -calibrate output) to steer local solves")
	flag.Parse()

	// Usage mistakes are reported before any input is read: a bad flag
	// combination must not block on stdin or decode a multi-GB file first.
	if *submit && *server == "" {
		fatal(errors.New("-submit requires -server"))
	}
	if *wait && !*submit {
		fatal(errors.New("-wait requires -submit"))
	}
	algo, err := parseAlgo(*algoName)
	if err != nil {
		fatal(err)
	}
	if *calibFile != "" {
		// A named profile is an explicit instruction — unlike sfcpd's
		// lenient startup load, a file the CLI cannot use is an error.
		prof, err := sfcp.LoadCalibrationProfile(*calibFile)
		if err != nil {
			fatal(err)
		}
		sfcp.SetCalibrationProfile(prof)
	}

	var in io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	ins, err := readAny(in)
	if err != nil {
		fatal(err)
	}

	if *submit {
		var seedOverride *uint64
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedOverride = seed
			}
		})
		c := &jobClient{
			base:     strings.TrimRight(*server, "/"),
			http:     http.DefaultClient,
			poll:     *poll,
			algo:     algo.String(),
			seed:     seedOverride,
			priority: *priority,
		}
		if err := runClient(c, ins, *wait, os.Stdout, os.Stderr); err != nil {
			fatal(err)
		}
		return
	}

	start := time.Now()
	res, err := sfcp.SolveWith(ins, sfcp.Options{Algorithm: algo, Workers: *workers, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	writeLabels(os.Stdout, res.Labels)

	ran := algo.String()
	if res.Plan != nil {
		ran = res.Plan.Algorithm.String()
	}
	fmt.Fprintf(os.Stderr, "n=%d classes=%d algo=%s ran=%s wall=%v\n",
		len(res.Labels), res.NumClasses, algo, ran, elapsed.Round(time.Microsecond))
	if *explain && res.Plan != nil {
		explainPlan(os.Stderr, algo, res)
	}
	if *stats {
		if res.Stats != nil {
			fmt.Fprintf(os.Stderr, "rounds=%d work=%d maxprocs=%d reads=%d writes=%d cells=%d\n",
				res.Stats.Rounds, res.Stats.Work, res.Stats.MaxProcs,
				res.Stats.Reads, res.Stats.Writes, res.Stats.Cells)
		} else {
			fmt.Fprintf(os.Stderr, "sfcp: -stats: algorithm %s reports no simulator stats (use parallel-pram, doubling-hash or doubling-sort)\n", algo)
		}
	}
}

// explainPlan prints the resolved execution plan: what the planner chose,
// why, which calibration profile steered it, what the probe saw, and
// where the time went.
func explainPlan(out io.Writer, requested sfcp.Algorithm, res sfcp.Result) {
	p := res.Plan
	fmt.Fprintf(out, "plan: requested=%s resolved=%s workers=%d\n", requested, p.Algorithm, p.Workers)
	fmt.Fprintf(out, "reason: %s\n", p.Reason)
	prof := sfcp.ActiveCalibrationProfile()
	fmt.Fprintf(out, "profile: source=%s min_parallel_n=%d break_even_log_divisor=%d worker_grain=%d max_useful_workers=%d",
		prof.Source(), prof.MinParallelN, prof.BreakEvenLogDivisor, prof.WorkerGrain, prof.MaxUsefulWorkers)
	if prof.FittedAt != "" {
		fmt.Fprintf(out, " fitted_at=%s", prof.FittedAt)
	}
	fmt.Fprintln(out)
	if p.Features.Probed {
		fmt.Fprintf(out, "probe: n=%d sampled_labels=%d short_cycle_frac=%.2f\n",
			p.Features.N, p.Features.SampledLabels, p.Features.ShortCycleFrac)
	}
	fmt.Fprintf(out, "timings: plan=%v solve=%v\n",
		res.Timings.Plan.Round(time.Microsecond), res.Timings.Solve.Round(time.Microsecond))
}

// writeLabels prints the dense Q-labels as one space-separated line.
func writeLabels(out io.Writer, labels []int) {
	w := bufio.NewWriter(out)
	for i, l := range labels {
		if i > 0 {
			fmt.Fprint(w, " ")
		}
		fmt.Fprint(w, l)
	}
	fmt.Fprintln(w)
	w.Flush()
}

func parseAlgo(name string) (sfcp.Algorithm, error) {
	a, err := sfcp.ParseAlgorithm(name)
	if err != nil {
		// fatal() prefixes "sfcp:" already; drop the library's.
		return 0, errors.New(strings.TrimPrefix(err.Error(), "sfcp: "))
	}
	return a, nil
}

// readAny sniffs the input format: the binary wire format is recognized by
// its 4-byte magic and streamed through the chunked decoder, anything else
// is parsed as the whitespace text format.
func readAny(r io.Reader) (sfcp.Instance, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	prefix, err := br.Peek(4)
	if err == nil && sfcp.DetectBinary(prefix) {
		return sfcp.DecodeBinary(br)
	}
	return readInstance(br)
}

func readInstance(r io.Reader) (sfcp.Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	sc.Split(bufio.ScanWords)
	next := func() (int, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return 0, err
			}
			return 0, io.ErrUnexpectedEOF
		}
		return strconv.Atoi(sc.Text())
	}
	n, err := next()
	if err != nil {
		return sfcp.Instance{}, fmt.Errorf("reading n: %w", err)
	}
	// Guard the allocation: a malformed header must error like any other
	// bad input, not panic makeslice or attempt an absurd allocation.
	// The bound fits a 32-bit int so the comparison compiles everywhere.
	const maxN = 1<<31 - 1
	if n < 0 || n > maxN {
		return sfcp.Instance{}, fmt.Errorf("n = %d out of range [0, %d]", n, maxN)
	}
	ins := sfcp.Instance{F: make([]int, n), B: make([]int, n)}
	for i := 0; i < n; i++ {
		if ins.F[i], err = next(); err != nil {
			return sfcp.Instance{}, fmt.Errorf("reading f(%d): %w", i, err)
		}
	}
	for i := 0; i < n; i++ {
		if ins.B[i], err = next(); err != nil {
			return sfcp.Instance{}, fmt.Errorf("reading b(%d): %w", i, err)
		}
	}
	return ins, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sfcp:", err)
	os.Exit(1)
}
