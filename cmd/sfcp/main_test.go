package main

import (
	"bytes"
	"strings"
	"testing"

	"sfcp"
)

func TestReadInstance(t *testing.T) {
	in := "3\n1 2 0\n0 0 1\n"
	ins, err := readInstance(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ins.F) != 3 || ins.F[0] != 1 || ins.F[2] != 0 || ins.B[2] != 1 {
		t.Fatalf("parsed %+v", ins)
	}
}

func TestReadInstanceWhitespaceAgnostic(t *testing.T) {
	in := "2 1 0 \t 1\n0"
	ins, err := readInstance(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ins.F[0] != 1 || ins.F[1] != 0 || ins.B[0] != 1 || ins.B[1] != 0 {
		t.Fatalf("parsed %+v", ins)
	}
}

func TestReadInstanceErrors(t *testing.T) {
	cases := []string{
		"",                        // no n
		"3\n1 2",                  // truncated f
		"2\n0 1\n0",               // truncated b
		"x",                       // not a number
		"2\n0 z\n0 0",             // bad f value
		"-1",                      // negative n must error, not panic makeslice
		"99999999999999999\n0\n0", // absurd n must error, not try to allocate
	}
	for _, in := range cases {
		if _, err := readInstance(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadAnyDetectsFormat(t *testing.T) {
	ins := sfcp.Instance{F: []int{1, 2, 0}, B: []int{0, 1, 0}}
	var bin bytes.Buffer
	if err := ins.EncodeBinary(&bin); err != nil {
		t.Fatal(err)
	}
	fromBin, err := readAny(&bin)
	if err != nil {
		t.Fatalf("binary input: %v", err)
	}
	fromText, err := readAny(strings.NewReader("3\n1 2 0\n0 1 0\n"))
	if err != nil {
		t.Fatalf("text input: %v", err)
	}
	for i := range ins.F {
		if fromBin.F[i] != ins.F[i] || fromText.F[i] != ins.F[i] ||
			fromBin.B[i] != ins.B[i] || fromText.B[i] != ins.B[i] {
			t.Fatalf("format mismatch at %d: bin=%+v text=%+v want=%+v", i, fromBin, fromText, ins)
		}
	}
	// Inputs shorter than the 4-byte magic still parse as text.
	if _, err := readAny(strings.NewReader("0")); err != nil {
		t.Errorf("tiny text input: %v", err)
	}
	// A corrupt binary stream errors instead of falling back to text.
	corrupt := bin // already drained; rebuild
	corrupt.Reset()
	if err := ins.EncodeBinary(&corrupt); err != nil {
		t.Fatal(err)
	}
	data := corrupt.Bytes()
	data[len(data)-1] ^= 0xff
	if _, err := readAny(bytes.NewReader(data)); err == nil {
		t.Error("corrupt binary input accepted")
	}
}

func TestParseAlgo(t *testing.T) {
	for _, name := range []string{"auto", "moore", "hopcroft", "linear",
		"parallel-pram", "native-parallel", "doubling-hash", "doubling-sort"} {
		if _, err := parseAlgo(name); err != nil {
			t.Errorf("parseAlgo(%q): %v", name, err)
		}
	}
	if _, err := parseAlgo("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestEndToEndSolve(t *testing.T) {
	// The paper instance through readInstance + SolveWith.
	in := "16\n2 4 6 8 10 12 1 3 5 7 9 11 14 15 16 13\n1 2 1 1 2 2 3 3 1 1 3 1 1 2 1 3\n"
	// Convert to 0-based: the file format is 0-based, so rebuild.
	ins, err := readInstance(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ins.F {
		ins.F[i]--
	}
	res, err := sfcp.SolveWith(ins, sfcp.Options{Algorithm: sfcp.AlgorithmParallelPRAM})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClasses != 4 {
		t.Fatalf("classes = %d, want 4", res.NumClasses)
	}
}
