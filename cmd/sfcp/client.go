package main

// The async client mode: -submit ships the instance to an sfcpd server's
// job API instead of solving locally, and -wait polls the job to a
// terminal state and prints the labels exactly like a local solve — so
//
//	sfcp -submit -server http://host:8080 -in big.bin -wait
//
// behaves like `sfcp -in big.bin` except the solve runs (and survives
// client hiccups) on the server. Instances always travel as the binary
// wire format regardless of the input format read.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"sfcp"
	"sfcp/internal/jobs"
)

// jobClient talks to one sfcpd server's /jobs API.
type jobClient struct {
	base     string // server base URL, no trailing slash
	http     *http.Client
	poll     time.Duration
	algo     string
	seed     *uint64
	priority int
}

// submit posts the instance as a binary-encoded job and returns the fresh
// job's snapshot.
func (c *jobClient) submit(ins sfcp.Instance) (jobs.Snapshot, error) {
	q := url.Values{"algorithm": {c.algo}}
	if c.seed != nil {
		q.Set("seed", strconv.FormatUint(*c.seed, 10))
	}
	if c.priority != 0 {
		q.Set("priority", strconv.Itoa(c.priority))
	}
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(ins.EncodeBinary(pw)) }()
	resp, err := c.http.Post(c.base+"/jobs?"+q.Encode(), sfcp.BinaryMediaType, pr)
	if err != nil {
		return jobs.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return jobs.Snapshot{}, httpError("submit", resp)
	}
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return jobs.Snapshot{}, fmt.Errorf("submit: decoding response: %w", err)
	}
	return snap, nil
}

// wait polls the job until it reaches a terminal state.
func (c *jobClient) wait(id string) (jobs.Snapshot, error) {
	for {
		resp, err := c.http.Get(c.base + "/jobs/" + id)
		if err != nil {
			return jobs.Snapshot{}, err
		}
		var snap jobs.Snapshot
		if resp.StatusCode != http.StatusOK {
			err = httpError("poll", resp)
		} else {
			err = json.NewDecoder(resp.Body).Decode(&snap)
			// Drain the trailing newline so the connection returns to the
			// keep-alive pool — a long poll loop must not open a fresh TCP
			// connection every interval.
			io.Copy(io.Discard, resp.Body)
		}
		resp.Body.Close()
		if err != nil {
			return jobs.Snapshot{}, err
		}
		if snap.State.Terminal() {
			return snap, nil
		}
		time.Sleep(c.poll)
	}
}

// fetchLabels downloads a done job's labels as the binary wire stream.
func (c *jobClient) fetchLabels(id string) ([]int, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", sfcp.BinaryMediaType)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError("result", resp)
	}
	return sfcp.DecodeLabelsBinary(resp.Body)
}

// httpError extracts the server's {"error": ...} body (or raw text) into a
// readable error.
func httpError(op string, resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var body struct {
		Error string     `json:"error"`
		State jobs.State `json:"state"`
	}
	msg := strings.TrimSpace(string(data))
	if err := json.Unmarshal(data, &body); err == nil {
		switch {
		case body.Error != "":
			msg = body.Error
		case body.State != "":
			msg = fmt.Sprintf("job is %s", body.State)
		}
	}
	return fmt.Errorf("%s: server returned %s: %s", op, resp.Status, msg)
}

// runClient drives the -submit [-wait] flow: submit, optionally poll to a
// terminal state, and print either the job id (fire-and-forget) or the
// labels (wait mode) to out, with the summary on errOut. It returns an
// error for failed/cancelled jobs.
func runClient(c *jobClient, ins sfcp.Instance, doWait bool, out, errOut io.Writer) error {
	start := time.Now()
	snap, err := c.submit(ins)
	if err != nil {
		return err
	}
	if !doWait {
		fmt.Fprintln(out, snap.ID)
		fmt.Fprintf(errOut, "submitted job %s: n=%d algo=%s state=%s\n",
			snap.ID, snap.N, snap.Algorithm, snap.State)
		return nil
	}
	snap, err = c.wait(snap.ID)
	if err != nil {
		return err
	}
	switch snap.State {
	case jobs.StateDone:
	case jobs.StateFailed:
		return fmt.Errorf("job %s failed: %s", snap.ID, snap.Error)
	default:
		return fmt.Errorf("job %s was %s", snap.ID, snap.State)
	}
	labels, err := c.fetchLabels(snap.ID)
	if err != nil {
		return err
	}
	writeLabels(out, labels)
	ran := snap.Algorithm
	if snap.ResolvedAlgorithm != "" {
		ran = snap.ResolvedAlgorithm
	}
	fmt.Fprintf(errOut, "n=%d classes=%d algo=%s ran=%s solve=%.3fms wall=%v cached=%v job=%s\n",
		snap.N, snap.NumClasses, snap.Algorithm, ran, snap.ElapsedMS,
		time.Since(start).Round(time.Microsecond), snap.Cached, snap.ID)
	if snap.Stats != nil {
		fmt.Fprintf(errOut, "rounds=%d work=%d maxprocs=%d reads=%d writes=%d cells=%d\n",
			snap.Stats.Rounds, snap.Stats.Work, snap.Stats.MaxProcs,
			snap.Stats.Reads, snap.Stats.Writes, snap.Stats.Cells)
	}
	return nil
}
