// Command sfcpd serves single function coarsest partition solving over
// HTTP. Each request's algorithm is resolved by the adaptive planner
// ("auto" picks a concrete solver per instance); instances are scheduled
// onto bounded per-algorithm worker pools and results are cached by
// (resolved algorithm, seed, instance digest).
//
// Endpoints:
//
//	POST   /solve            {"algorithm":"auto","f":[1,0],"b":[0,1],"seed":0}
//	POST   /solve/batch      {"algorithm":"auto","instances":[{...},...]}
//	POST   /jobs             async submit (same body plus "priority") -> 202 + job id
//	GET    /jobs/{id}        job status: queued|running|done|failed|cancelled
//	GET    /jobs/{id}/result labels (JSON, or binary with Accept: application/x-sfcp)
//	DELETE /jobs/{id}        cooperative cancel
//	POST   /instances        register a versioned instance -> digest + labels
//	POST   /instances/{digest}/delta  incremental re-solve of an edited version
//	POST   /calibrate        re-fit the planner profile on this host
//	GET    /healthz
//	GET    /metrics
//
// The POST routes also accept Content-Type: application/x-sfcp bodies in
// the binary wire format (sfcpgen -format bin emits it), with ?algorithm=,
// ?seed= (and for /jobs ?priority=) query parameters; /solve/batch takes
// concatenated instances and shards them into batch members as the upload
// streams. Jobs queue per algorithm by priority, run on the same solver
// pools as synchronous requests, and are evicted -job-ttl after finishing.
//
// Usage:
//
//	sfcpd [-addr :8080] [-pool-workers 2] [-queue 8] [-cache 1024]
//	      [-cache-bytes 0] [-max-n 1048576] [-max-batch 256] [-workers 0]
//	      [-seed 0] [-job-ttl 10m] [-job-queue 1024]
//	      [-batch-wait 1ms] [-batch-size 64] [-batch-max-n 32767]
//	      [-calibration-file profile.json] [-calibrate-on-start]
//	      [-calibrate-budget 3s] [-data-dir path] [-spill-n 65536]
//	      [-instance-sessions 32]
//
// Versioned instances give long-lived sessions sub-linear latency:
// POST /instances solves once and addresses the result by the
// instance's SHA-256 digest; POST /instances/{digest}/delta applies a
// batch of point edits (JSON {"edits":[{"node":0,"f":1,"b":2},...]} or
// the binary delta frame, Content-Type: application/x-sfcp-delta),
// re-solving only the dirty components when the planner's crossover
// allows, and re-registers the session under the edited instance's
// digest. Up to -instance-sessions sessions stay resident; evicted or
// restart-lost versions rebuild from the blob tier when -data-dir is
// set.
//
// Small solves (auto or linear requests up to -batch-max-n elements) are
// coalesced: concurrent requests accumulate for up to -batch-wait or
// -batch-size members and solve as one planned micro-batch under a shared
// scratch arena. Responses report "coalesced", "flush_reason" and
// "queue_ms"; a negative -batch-wait disables coalescing.
//
// The adaptive planner's crossover thresholds come from a calibration
// profile: -calibration-file loads a fitted profile at startup (a
// missing or corrupt file logs a warning and the built-in defaults
// serve), -calibrate-on-start re-fits on this host before serving (and
// persists to the calibration file when one is set), and POST /calibrate
// re-fits a running daemon. /metrics reports sfcpd_plan_calibrated and
// the active thresholds.
//
// -data-dir opts into tiered durable storage: async jobs journal to
// <dir>/jobs.journal, and instance payloads plus solved results persist
// content-addressed under <dir>/blobs. A restart over the same
// directory re-queues interrupted jobs and serves finished results from
// disk; instances of -spill-n or more elements release their payloads
// from RAM once persisted. Without -data-dir everything stays in memory
// exactly as before.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"sfcp/internal/server"
	"sfcp/internal/store"
)

// parseFlags binds sfcpd's command line to a listen address, a data
// directory (empty = in-memory only) and a server configuration. The
// caller opens the stores; this stays a pure flag mapping.
func parseFlags(fs *flag.FlagSet, args []string) (addr, dataDir string, cfg server.Config, err error) {
	a := fs.String("addr", ":8080", "listen address")
	poolWorkers := fs.Int("pool-workers", 2, "solver goroutines per algorithm queue")
	queue := fs.Int("queue", 0, "pending jobs per algorithm queue (0 = 4x pool-workers)")
	cacheSize := fs.Int("cache", 1024, "result cache entries (negative disables)")
	maxN := fs.Int("max-n", 1<<20, "largest accepted instance size")
	maxBatch := fs.Int("max-batch", 256, "largest accepted batch")
	workers := fs.Int("workers", 0, "host goroutines per solve (0 = NumCPU)")
	seed := fs.Uint64("seed", 0, "default simulator seed")
	maxBody := fs.Int64("max-body", 64<<20, "largest accepted request body in bytes")
	jobTTL := fs.Duration("job-ttl", 10*time.Minute, "how long finished async jobs are retained")
	jobQueue := fs.Int("job-queue", 1024, "largest accepted async job backlog")
	batchWait := fs.Duration("batch-wait", 0, "max coalescing wait for small solves (0 = 1ms default, negative disables)")
	batchSize := fs.Int("batch-size", 0, "coalescing micro-batch flush size (0 = 64 default)")
	batchMaxN := fs.Int("batch-max-n", 0, "largest instance eligible for coalescing (0 = planner's linear-crossover default)")
	calibFile := fs.String("calibration-file", "", "planner calibration profile to load at startup and persist fits to")
	calibOnStart := fs.Bool("calibrate-on-start", false, "run a bounded calibration fit before serving")
	calibBudget := fs.Duration("calibrate-budget", 0, "wall-clock budget per calibration fit (0 = 3s default)")
	dir := fs.String("data-dir", "", "directory for the durable job journal and blob tier (empty = in-memory only)")
	spillN := fs.Int("spill-n", 0, "instance size at which payloads and results spill to the blob tier (0 = 65536 default; needs -data-dir)")
	cacheBytes := fs.Int64("cache-bytes", 0, "result cache byte budget (0 = entry-count bound only)")
	instSessions := fs.Int("instance-sessions", 0, "resident incremental solve sessions (0 = 32 default, negative disables residency)")
	if err := fs.Parse(args); err != nil {
		return "", "", server.Config{}, err
	}
	return *a, *dir, server.Config{
		WorkersPerAlgorithm: *poolWorkers,
		QueueDepth:          *queue,
		CacheSize:           *cacheSize,
		MaxN:                *maxN,
		MaxBatch:            *maxBatch,
		Workers:             *workers,
		Seed:                *seed,
		MaxBodyBytes:        *maxBody,
		JobTTL:              *jobTTL,
		JobMaxQueued:        *jobQueue,
		BatchMaxWait:        *batchWait,
		BatchMaxSize:        *batchSize,
		BatchMaxN:           *batchMaxN,
		CalibrationFile:     *calibFile,
		CalibrateOnStart:    *calibOnStart,
		CalibrateBudget:     *calibBudget,
		SpillN:              *spillN,
		CacheBytes:          *cacheBytes,
		InstanceSessions:    *instSessions,
	}, nil
}

// openDataDir opens (creating as needed) the durable stores under dir:
// the append-only job journal and the content-addressed blob tier. The
// journal's Close flushes its file handle; the blob store needs no
// close (every write is temp+rename).
func openDataDir(dir string, logf func(string, ...any)) (*store.FileJobStore, *store.FileBlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	journal, err := store.OpenFileJobStore(filepath.Join(dir, "jobs.journal"), logf)
	if err != nil {
		return nil, nil, err
	}
	blobs, err := store.OpenFileBlobStore(filepath.Join(dir, "blobs"))
	if err != nil {
		journal.Close()
		return nil, nil, err
	}
	return journal, blobs, nil
}

func main() {
	addr, dataDir, cfg, err := parseFlags(flag.CommandLine, os.Args[1:])
	if err != nil {
		fatal(err)
	}
	var journal *store.FileJobStore
	if dataDir != "" {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "sfcpd: "+format+"\n", args...)
		}
		j, blobs, err := openDataDir(dataDir, cfg.Logf)
		if err != nil {
			fatal(err)
		}
		journal = j
		cfg.JobStore, cfg.BlobStore = journal, blobs
		fmt.Fprintf(os.Stderr, "sfcpd: durable storage at %s\n", dataDir)
	}
	srv := server.New(cfg)
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errC := make(chan error, 1)
	go func() { errC <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sfcpd: listening on %s\n", addr)

	select {
	case err := <-errC:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "sfcpd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	srv.Close()
	if journal != nil {
		if err := journal.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sfcpd:", err)
	os.Exit(1)
}
