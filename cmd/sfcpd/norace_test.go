//go:build !race

package main

// raceEnabled downsizes the huge end-to-end instance when the race
// detector multiplies memory and CPU cost; see race_test.go.
const raceEnabled = false
