//go:build race

package main

// raceEnabled downsizes the huge end-to-end instance: the race detector's
// memory and CPU multipliers turn a 10^7-element upload from seconds into
// minutes, and the concurrency coverage is identical at smaller n.
const raceEnabled = true
