package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sfcp"
	"sfcp/internal/codec"
	"sfcp/internal/server"
	"sfcp/internal/store"
	"sfcp/internal/workload"
)

func TestParseFlags(t *testing.T) {
	t.Run("defaults", func(t *testing.T) {
		addr, dataDir, cfg, err := parseFlags(flag.NewFlagSet("sfcpd", flag.ContinueOnError), nil)
		if err != nil {
			t.Fatal(err)
		}
		if addr != ":8080" {
			t.Errorf("addr = %q", addr)
		}
		if dataDir != "" {
			t.Errorf("dataDir = %q, want in-memory default", dataDir)
		}
		if cfg.WorkersPerAlgorithm != 2 || cfg.CacheSize != 1024 || cfg.MaxN != 1<<20 ||
			cfg.MaxBatch != 256 || cfg.MaxBodyBytes != 64<<20 || cfg.QueueDepth != 0 ||
			cfg.JobTTL != 10*time.Minute || cfg.JobMaxQueued != 1024 ||
			cfg.BatchMaxWait != 0 || cfg.BatchMaxSize != 0 || cfg.BatchMaxN != 0 ||
			cfg.SpillN != 0 || cfg.CacheBytes != 0 || cfg.JobStore != nil || cfg.BlobStore != nil {
			t.Errorf("defaults mis-mapped: %+v", cfg)
		}
	})
	t.Run("overrides", func(t *testing.T) {
		addr, dataDir, cfg, err := parseFlags(flag.NewFlagSet("sfcpd", flag.ContinueOnError), []string{
			"-addr", ":9999", "-pool-workers", "5", "-queue", "7", "-cache", "-1",
			"-max-n", "50", "-max-batch", "3", "-workers", "4", "-seed", "11",
			"-max-body", "1024", "-job-ttl", "90s", "-job-queue", "17",
			"-batch-wait", "250us", "-batch-size", "32", "-batch-max-n", "2048",
			"-data-dir", "/tmp/sfcpd-data", "-spill-n", "512", "-cache-bytes", "4096",
		})
		if err != nil {
			t.Fatal(err)
		}
		want := server.Config{
			WorkersPerAlgorithm: 5, QueueDepth: 7, CacheSize: -1, MaxN: 50,
			MaxBatch: 3, Workers: 4, Seed: 11, MaxBodyBytes: 1024,
			JobTTL: 90 * time.Second, JobMaxQueued: 17,
			BatchMaxWait: 250 * time.Microsecond, BatchMaxSize: 32, BatchMaxN: 2048,
			SpillN: 512, CacheBytes: 4096,
		}
		if addr != ":9999" || dataDir != "/tmp/sfcpd-data" || !reflect.DeepEqual(cfg, want) {
			t.Errorf("got addr=%q dataDir=%q cfg=%+v, want addr=\":9999\" cfg=%+v", addr, dataDir, cfg, want)
		}
	})
	t.Run("bad flag", func(t *testing.T) {
		fs := flag.NewFlagSet("sfcpd", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		if _, _, _, err := parseFlags(fs, []string{"-max-n", "lots"}); err == nil {
			t.Error("bad flag value accepted")
		}
	})
}

// newDaemon builds the daemon exactly as main does — command line through
// parseFlags (opening -data-dir stores when given) into server.New — and
// serves it over httptest.
func newDaemon(t *testing.T, args ...string) *httptest.Server {
	t.Helper()
	ts, _ := newDaemonCloser(t, args...)
	return ts
}

// newDaemonCloser is newDaemon plus an explicit shutdown for tests that
// restart the daemon mid-test; the returned func is idempotent and also
// registered as cleanup.
func newDaemonCloser(t *testing.T, args ...string) (*httptest.Server, func()) {
	t.Helper()
	fs := flag.NewFlagSet("sfcpd", flag.ContinueOnError)
	_, dataDir, cfg, err := parseFlags(fs, args)
	if err != nil {
		t.Fatal(err)
	}
	var journal *store.FileJobStore
	if dataDir != "" {
		cfg.Logf = t.Logf
		j, b, err := openDataDir(dataDir, cfg.Logf)
		if err != nil {
			t.Fatal(err)
		}
		journal = j
		cfg.JobStore, cfg.BlobStore = j, b
	}
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	var once sync.Once
	closer := func() {
		once.Do(func() {
			ts.Close()
			srv.Close()
			if journal != nil {
				journal.Close()
			}
		})
	}
	t.Cleanup(closer)
	return ts, closer
}

func encodeBinary(t *testing.T, ins sfcp.Instance) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ins.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postBinary(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, sfcp.BinaryMediaType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func metricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestE2EJSONAndBinary uploads the same instance as JSON and as binary
// wire format, checks both agree with a local solve, and confirms the
// binary path's cache and ingest metrics fire.
func TestE2EJSONAndBinary(t *testing.T) {
	ts := newDaemon(t)
	ins := sfcp.Instance(workload.RandomFunction(5, 500, 3))
	want, err := sfcp.SolveWith(ins, sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
	if err != nil {
		t.Fatal(err)
	}

	jsonBody, err := json.Marshal(map[string]any{"algorithm": "linear", "f": ins.F, "b": ins.B})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(jsonBody))
	if err != nil {
		t.Fatal(err)
	}
	var fromJSON server.SolveResponse
	err = json.NewDecoder(resp.Body).Decode(&fromJSON)
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("JSON solve: status %d, err %v", resp.StatusCode, err)
	}

	wire := encodeBinary(t, ins)
	resp, data := postBinary(t, ts.URL+"/solve?algorithm=linear", wire)
	if resp.StatusCode != 200 {
		t.Fatalf("binary solve: status %d: %s", resp.StatusCode, data)
	}
	var fromBin server.SolveResponse
	if err := json.Unmarshal(data, &fromBin); err != nil {
		t.Fatal(err)
	}
	for i := range want.Labels {
		if fromJSON.Labels[i] != want.Labels[i] || fromBin.Labels[i] != want.Labels[i] {
			t.Fatalf("labels[%d]: json=%d binary=%d local=%d",
				i, fromJSON.Labels[i], fromBin.Labels[i], want.Labels[i])
		}
	}
	// Formats share one content-address keyspace: the binary upload of the
	// instance the JSON request already solved is a cache hit.
	if !fromBin.Cached {
		t.Error("binary upload of a JSON-solved instance not served from cache")
	}

	// The identical binary body again: still a hit.
	resp, data = postBinary(t, ts.URL+"/solve?algorithm=linear", wire)
	if resp.StatusCode != 200 {
		t.Fatalf("repeat binary solve: status %d", resp.StatusCode)
	}
	var again server.SolveResponse
	if err := json.Unmarshal(data, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeated binary upload not served from cache")
	}
	// A different seed must miss the (algorithm, seed, digest) key.
	resp, data = postBinary(t, ts.URL+"/solve?algorithm=linear&seed=9", wire)
	var reseeded server.SolveResponse
	if err := json.Unmarshal(data, &reseeded); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || reseeded.Cached {
		t.Errorf("reseeded upload: status %d cached %v", resp.StatusCode, reseeded.Cached)
	}

	m := metricsBody(t, ts)
	for _, want := range []string{
		fmt.Sprintf(`sfcpd_ingest_bytes_total{format="binary"} %d`, 3*len(wire)),
		fmt.Sprintf(`sfcpd_ingest_bytes_total{format="json"} %d`, len(jsonBody)),
		"sfcpd_cache_hits_total 2",
		`sfcpd_requests_total{route="solve"} 4`,
		`sfcpd_solves_total{algorithm="linear"} 2`,
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
}

// TestE2EBinaryBatch streams concatenated instances into /solve/batch and
// exercises the sharded-ingest limits.
func TestE2EBinaryBatch(t *testing.T) {
	ts := newDaemon(t, "-max-batch", "3")
	members := []sfcp.Instance{
		sfcp.Instance(workload.RandomFunction(1, 60, 2)),
		sfcp.Instance(workload.CycleFamily(2, 3, 8, 4)),
		sfcp.Instance(workload.Star(3, 40, 2)),
	}
	var stream bytes.Buffer
	for _, ins := range members {
		if err := ins.EncodeBinary(&stream); err != nil {
			t.Fatal(err)
		}
	}
	resp, data := postBinary(t, ts.URL+"/solve/batch?algorithm=hopcroft", stream.Bytes())
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var br server.BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if br.Errors != 0 || len(br.Results) != len(members) {
		t.Fatalf("got %d results, %d errors: %s", len(br.Results), br.Errors, data)
	}
	for i, res := range br.Results {
		want, err := sfcp.SolveWith(members[i], sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
		if err != nil {
			t.Fatal(err)
		}
		if !sfcp.SamePartition(res.Labels, want.Labels) {
			t.Errorf("member %d: labels disagree with local solve", i)
		}
	}

	t.Run("limits and malformed bodies", func(t *testing.T) {
		fourth := encodeBinary(t, sfcp.Instance(workload.Star(4, 10, 2)))
		over := append(bytes.Clone(stream.Bytes()), fourth...)
		cases := []struct {
			name     string
			url      string
			body     []byte
			wantCode int
			wantSub  string
		}{
			{"batch over limit", "/solve/batch?algorithm=linear", over, 400, "exceeds limit 3"},
			{"empty batch", "/solve/batch", nil, 400, "empty batch"},
			{"corrupt member", "/solve/batch", stream.Bytes()[:40], 400, "instance 0"},
			{"trailing data on solve", "/solve", over[:len(stream.Bytes())], 400, "trailing data"},
			{"bad algorithm", "/solve?algorithm=quantum", fourth, 400, "unknown algorithm"},
			{"bad seed", "/solve?seed=minus-one", fourth, 400, "invalid seed"},
			{"bad magic", "/solve", []byte("not binary at all"), 400, "bad magic"},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				resp, data := postBinary(t, ts.URL+tc.url, tc.body)
				if resp.StatusCode != tc.wantCode {
					t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.wantCode, data)
				}
				if !bytes.Contains(data, []byte(tc.wantSub)) {
					t.Errorf("body %s missing %q", data, tc.wantSub)
				}
			})
		}
	})

	t.Run("body limit", func(t *testing.T) {
		small := newDaemon(t, "-max-body", "64")
		resp, _ := postBinary(t, small.URL+"/solve", stream.Bytes())
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("status %d, want 413", resp.StatusCode)
		}
	})

	t.Run("max-n enforced before allocation", func(t *testing.T) {
		capped := newDaemon(t, "-max-n", "16")
		resp, data := postBinary(t, capped.URL+"/solve", encodeBinary(t,
			sfcp.Instance(workload.RandomFunction(8, 100, 2))))
		if resp.StatusCode != 400 || !bytes.Contains(data, []byte("exceeds limit 16")) {
			t.Errorf("status %d body %s, want size-limit rejection", resp.StatusCode, data)
		}
	})
}

// TestE2EHugeBinary is the scale acceptance test: a 10^7-element instance
// travels sfcpgen-style generation → binary codec → HTTP upload → chunked
// server decode → solver, end to end. The race detector and -short
// downsize it; the wire format and code path are identical.
func TestE2EHugeBinary(t *testing.T) {
	n := 10_000_000
	// At full scale the expected class count is pinned rather than re-solved
	// locally (a second 10^7 solve would double the test's wall time on one
	// core): workload generation is deterministic, and 8529291 was
	// cross-checked by linear, hopcroft and native-parallel.
	wantClasses := 8529291
	if raceEnabled || testing.Short() {
		n = 200_000
	}
	ts := newDaemon(t, "-max-n", fmt.Sprint(32<<20), "-max-body", fmt.Sprint(256<<20))
	ins := sfcp.Instance(workload.RandomFunction(99, n, 4))
	if n != 10_000_000 {
		want, err := sfcp.SolveWith(ins, sfcp.Options{Algorithm: sfcp.AlgorithmLinear})
		if err != nil {
			t.Fatal(err)
		}
		wantClasses = want.NumClasses
	}

	var buf bytes.Buffer
	buf.Grow(codec.EncodedSize(ins.F, ins.B))
	if err := ins.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	t.Logf("n=%d wire=%d bytes", n, buf.Len())

	resp, err := http.Post(ts.URL+"/solve?algorithm=linear", sfcp.BinaryMediaType,
		bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Stream-decode the reply, skipping materialization of the 10^7-label
	// array: num_classes plus the library-level round-trip tests pin
	// correctness; this test pins the pipeline at scale.
	var got struct {
		NumClasses int    `json:"num_classes"`
		Cached     bool   `json:"cached"`
		Error      string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || got.Error != "" {
		t.Fatalf("status %d, error %q", resp.StatusCode, got.Error)
	}
	if got.NumClasses != wantClasses {
		t.Fatalf("num_classes = %d, want %d", got.NumClasses, wantClasses)
	}
	if !strings.Contains(metricsBody(t, ts),
		fmt.Sprintf(`sfcpd_ingest_bytes_total{format="binary"} %d`, buf.Len())) {
		t.Error("binary ingest bytes not recorded")
	}
}
